// Round-trip latency distribution per protocol (native, one client,
// pinned or not) — the tail-latency view the paper's throughput plots
// cannot show. Blocking protocols trade a little median latency (syscall
// on the miss path) for not burning the machine; the distribution shows
// where that cost actually lands.
//
// --batched [--window=N] switches the client to the windowed fast path:
// N requests per send_batch (one queue pass, one coalesced wake) with the
// replies collected off the SPSC ring. Reported latencies are then
// per-message (window time / N), and the wk/msg column shows the wake-up
// syscall coalescing. SYSV has no batched path and keeps its scalar loop
// as the kernel-mediated baseline. The scalar mode (no flags) remains the
// paper-faithful synchronous measurement.
//
// Wake-up accounting (wk/msg, coal/msg) is read from the channel's shared
// metrics registry after the children exit — the same numbers `ulipc-stat`
// shows on a live run. --registry-dump additionally prints one
// "[registry] {...}" JSON line per protocol for record_bench.sh; the line
// carries the span plane's per-phase percentiles (queue residency, wake in
// flight, service, reply path — sampled 1-in-2^ULIPC_SPAN_SHIFT) so the
// perf trajectory tracks WHERE round-trip time goes, not just how much.
// --phases additionally prints those phases as a human-readable table.
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "benchsupport/args.hpp"
#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/hooks.hpp"
#include "protocols/bsls.hpp"
#include "protocols/protocol_set.hpp"
#include "queue/msg_queue.hpp"
#include "queue/payload_pool.hpp"
#include "runtime/shm_channel.hpp"
#include "runtime/sysv_transport.hpp"
#include "runtime/waitset.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

using namespace ulipc;
using namespace ulipc::bench;

namespace {

struct LatencyReport {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
  double wakeups_per_msg = 0;    // client + server V() syscalls per message
  double coalesced_per_msg = 0;  // messages that rode an earlier wake
  // Registry-side view (read by the parent out of the shared metrics
  // slots after the children exit): the same round trips as sampled above,
  // but recorded by the protocol hooks into the shm histograms.
  obs::SlotSnapshot server_slot;
  obs::SlotSnapshot client_slot;
  bool ok = false;
};

LatencyReport run_protocol(ProtocolKind kind, std::uint64_t messages,
                           bool pin, std::uint32_t window) {
  ShmChannel::Config cc;
  cc.max_clients = 1;
  cc.queue_capacity = 256;  // >= the largest reply window
  cc.create_sysv_queues = (kind == ProtocolKind::kSysv);
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cc));
  ShmChannel channel = ShmChannel::create(region, cc);

  // Only the child-sampled scalars cross the process boundary; the (large)
  // registry snapshots are read by the parent directly from the channel's
  // metrics slots after join.
  struct SharedOut {
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double max = 0;
    bool ok = false;
  };
  static_assert(sizeof(SharedOut) <= 4096);
  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* out = new (out_region.base()) SharedOut{};

  ChildProcess server = ChildProcess::spawn([&] {
    if (pin) pin_to_cpu(0);
    if (kind == ProtocolKind::kSysv) {
      SysvTransport t(channel);
      t.run_server(1);
      return 0;
    }
    NativePlatform plat;
    channel.bind_server_obs(plat);
    with_protocol<NativePlatform>(kind, 20, [&](auto proto) {
      auto reply_ep = [&](std::uint32_t id) -> NativeEndpoint& {
        return channel.client_endpoint(id);
      };
      run_echo_server(plat, proto, channel.server_endpoint(), reply_ep, 1);
    });
    return 0;
  });

  ChildProcess client = ChildProcess::spawn([&] {
    if (pin) pin_to_cpu(0);
    SampleSet samples(messages);
    std::uint64_t expected_samples = messages;
    if (kind == ProtocolKind::kSysv) {
      SysvTransport t(channel);
      t.client_connect(0);
      for (std::uint64_t i = 0; i < messages; ++i) {
        Stopwatch sw;
        t.client_echo_loop(0, 1);
        samples.add(sw.elapsed_us());
      }
      t.client_disconnect(0);
    } else {
      NativePlatform plat;
      channel.bind_client_obs(plat, 0);
      with_protocol<NativePlatform>(kind, 20, [&](auto proto) {
        NativeEndpoint& srv = channel.server_endpoint();
        NativeEndpoint& mine = channel.client_endpoint(0);
        client_connect(plat, proto, srv, mine, 0);
        if (window <= 1) {
          for (std::uint64_t i = 0; i < messages; ++i) {
            Message ans;
            Stopwatch sw;
            proto.send(plat, srv, mine,
                       Message(Op::kEcho, 0, static_cast<double>(i)), &ans);
            const std::int64_t ns = sw.elapsed_ns();
            samples.add(static_cast<double>(ns) / 1e3);
            // Mirror the sample into the registry histogram: this scalar
            // loop bypasses client_echo_loop (whose hooks would do it), so
            // the registry's round-trip series must be fed here for
            // ulipc-stat to agree with the sampled percentiles.
            plat.obs_round_trip(ns, 1);
          }
        } else {
          // One sample per window; report per-message time so the columns
          // stay comparable with the scalar mode.
          const std::uint64_t batches = messages / window;
          expected_samples = batches;
          for (std::uint64_t b = 0; b < batches; ++b) {
            Stopwatch sw;
            client_echo_loop_batched(plat, proto, srv, mine, 0, window,
                                     window);
            samples.add(sw.elapsed_us() / static_cast<double>(window));
          }
        }
        client_disconnect(plat, proto, srv, mine, 0);
      });
    }
    out->p50 = samples.percentile(50);
    out->p95 = samples.percentile(95);
    out->p99 = samples.percentile(99);
    out->max = samples.stats().max();
    out->ok = samples.size() == expected_samples;
    return 0;
  });

  const bool children_ok = client.join() == 0 && server.join() == 0;

  LatencyReport report;
  report.p50 = out->p50;
  report.p95 = out->p95;
  report.p99 = out->p99;
  report.max = out->max;
  report.ok = out->ok && children_ok;

  // Wake-up accounting now comes from the shared metrics registry instead
  // of ad-hoc per-child plumbing, so scalar and --batched runs report
  // through the identical path (the batched run's coalesced messages were
  // previously invisible here). SYSV never binds a slot: both stay 0.
  const obs::ObsHeader& oh = channel.obs();
  (void)oh.slot(0).read_snapshot(&report.server_slot);
  (void)oh.slot(1).read_snapshot(&report.client_slot);
  const auto& sc = report.server_slot.counters;
  const auto& cc2 = report.client_slot.counters;
  const auto m = static_cast<double>(messages);
  report.wakeups_per_msg = static_cast<double>(sc.wakeups + cc2.wakeups) / m;
  report.coalesced_per_msg =
      static_cast<double>(sc.wakeups_coalesced + cc2.wakeups_coalesced) / m;
  return report;
}

/// --registry-dump: one machine-parseable line per protocol with the
/// registry's own view of the run (record_bench.sh folds these into the
/// perf snapshot).
void dump_registry_line(ProtocolKind kind, std::uint64_t messages,
                        std::uint32_t window, const LatencyReport& r) {
  const auto& sc = r.server_slot.counters;
  const auto& cc = r.client_slot.counters;
  const auto& rt = r.client_slot.h(obs::HistKind::kRoundTripNs);
  const auto& slp = r.server_slot.h(obs::HistKind::kSleepNs);
  // Span-plane phase histograms: the serving side records queue residency,
  // service time, and the request-leg wake in flight; the client side
  // records the reply path and the reply-leg wake in flight.
  const auto& qres = r.server_slot.h(obs::HistKind::kQueueResidencyNs);
  const auto& svc = r.server_slot.h(obs::HistKind::kServiceNs);
  const auto& wreq = r.server_slot.h(obs::HistKind::kWakeInFlightNs);
  const auto& rply = r.client_slot.h(obs::HistKind::kReplyPathNs);
  const auto& wrep = r.client_slot.h(obs::HistKind::kWakeInFlightNs);
  std::printf(
      "[registry] {\"protocol\":\"%s\",\"messages\":%llu,\"window\":%u,"
      "\"wakeups\":%llu,\"wakeups_coalesced\":%llu,\"server_blocks\":%llu,"
      "\"client_blocks\":%llu,\"spin_fallthroughs\":%llu,"
      "\"rt_count\":%llu,\"rt_p50_ns\":%.0f,\"rt_p99_ns\":%.0f,"
      "\"sleep_p50_ns\":%.0f,"
      "\"span_samples\":%llu,\"span_qres_p50_ns\":%.0f,"
      "\"span_qres_p99_ns\":%.0f,\"span_service_p50_ns\":%.0f,"
      "\"span_service_p99_ns\":%.0f,\"span_reply_p50_ns\":%.0f,"
      "\"span_reply_p99_ns\":%.0f,\"span_wake_req_p50_ns\":%.0f,"
      "\"span_wake_rep_p50_ns\":%.0f}\n",
      protocol_name(kind), static_cast<unsigned long long>(messages), window,
      static_cast<unsigned long long>(sc.wakeups + cc.wakeups),
      static_cast<unsigned long long>(sc.wakeups_coalesced +
                                      cc.wakeups_coalesced),
      static_cast<unsigned long long>(sc.blocks),
      static_cast<unsigned long long>(cc.blocks),
      static_cast<unsigned long long>(sc.spin_fallthroughs +
                                      cc.spin_fallthroughs),
      static_cast<unsigned long long>(rt.count), rt.percentile(50),
      rt.percentile(99), slp.percentile(50),
      static_cast<unsigned long long>(qres.count), qres.percentile(50),
      qres.percentile(99), svc.percentile(50), svc.percentile(99),
      rply.percentile(50), rply.percentile(99), wreq.percentile(50),
      wrep.percentile(50));
}

/// --phases: the span plane's per-phase latency breakdown as a table row
/// set per protocol — where each protocol's round trip spends its time
/// (sampled spans, 1-in-2^ULIPC_SPAN_SHIFT of sends). SYSV never binds
/// obs slots, so its rows would be all-zero and are skipped.
void add_phase_rows(TextTable& table, ProtocolKind kind,
                    const LatencyReport& r) {
  const auto row = [&](const char* phase, const auto& h) {
    table.add_row({protocol_name(kind), phase,
                   std::to_string(static_cast<unsigned long long>(h.count)),
                   TextTable::num(h.percentile(50) / 1e3, 2),
                   TextTable::num(h.percentile(95) / 1e3, 2),
                   TextTable::num(h.percentile(99) / 1e3, 2)});
  };
  row("queue-residency", r.server_slot.h(obs::HistKind::kQueueResidencyNs));
  row("wake-in-flight(req)", r.server_slot.h(obs::HistKind::kWakeInFlightNs));
  row("service", r.server_slot.h(obs::HistKind::kServiceNs));
  row("wake-in-flight(rep)", r.client_slot.h(obs::HistKind::kWakeInFlightNs));
  row("reply-path", r.client_slot.h(obs::HistKind::kReplyPathNs));
}

// ---- --payload: bytes/s over the zero-copy payload plane ----
//
// Two modes per payload size, identical protocol work (Bsls, one client,
// per-message loan/publish/release through the channel's plane):
//   loan: the client produces the payload IN PLACE in the loaned slot and
//         the server consumes it in place — the zero-copy path;
//   copy: the client produces into a private buffer and memcpys it through
//         the slot; the server memcpys it out before consuming — the
//         copy-through-slot baseline every conventional IPC design pays.
// The delta is pure memcpy cost, so bytes/s separates with payload size.

struct PayloadReport {
  double p50 = 0;
  double p99 = 0;
  double elapsed_ms = 0;
  double bytes_per_s = 0;
  bool ok = false;
};

PayloadReport run_payload_point(std::uint32_t payload_bytes,
                                std::uint64_t messages, bool pin,
                                bool copy_mode) {
  ShmChannel::Config cc;
  cc.max_clients = 1;
  cc.queue_capacity = 256;
  cc.payload_max_bytes = 1u << 20;
  cc.payload_slots_per_class = 4;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cc));
  ShmChannel channel = ShmChannel::create(region, cc);

  struct SharedOut {
    double p50 = 0;
    double p99 = 0;
    double elapsed_ms = 0;
    bool ok = false;
  };
  static_assert(sizeof(SharedOut) <= 4096);
  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* out = new (out_region.base()) SharedOut{};

  ChildProcess server = ChildProcess::spawn([&] {
    if (pin) pin_to_cpu(0);
    NativePlatform plat;
    channel.bind_server_obs(plat);
    Bsls<NativePlatform> proto(20);
    PayloadPool* plane = channel.payload_plane();
    NativeEndpoint& srv = channel.server_endpoint();
    std::vector<char> staging(payload_bytes > 0 ? payload_bytes : 1);
    std::uint64_t checksum = 0;
    for (;;) {
      Message msg;
      proto.receive(plat, srv, &msg);
      if (msg.opcode == Op::kEcho &&
          msg.ext_offset != PayloadPool::kNoPayload) {
        const std::string_view view = plane->read(msg.ext_offset);
        const char* data = view.data();
        if (copy_mode) {
          // Copy-through baseline: lift the payload out of the shared slot
          // before consuming it.
          std::memcpy(staging.data(), data, view.size());
          data = staging.data();
        }
        for (std::size_t i = 0; i < view.size(); i += 64) {
          checksum += static_cast<unsigned char>(data[i]);
        }
      }
      proto.reply(plat, channel.client_endpoint(msg.channel), msg);
      if (msg.opcode == Op::kDisconnect) break;
    }
    return checksum == 1 ? 1 : 0;  // keep the consume loop observable
  });

  ChildProcess client = ChildProcess::spawn([&] {
    if (pin) pin_to_cpu(0);
    NativePlatform plat;
    channel.bind_client_obs(plat, 0);
    Bsls<NativePlatform> proto(20);
    PayloadPool* plane = channel.payload_plane();
    NativeEndpoint& srv = channel.server_endpoint();
    NativeEndpoint& mine = channel.client_endpoint(0);
    client_connect(plat, proto, srv, mine, 0);
    SampleSet samples(messages);
    std::vector<char> staging(payload_bytes > 0 ? payload_bytes : 1);
    bool all_ok = true;
    Stopwatch total;
    for (std::uint64_t i = 0; i < messages && all_ok; ++i) {
      Stopwatch sw;
      const std::uint64_t token = plane->loan(payload_bytes);
      if (token == PayloadPool::kNoPayload) {
        all_ok = false;
        break;
      }
      const std::int64_t lt0 = obs::loan_made(plat);
      const auto fill = static_cast<int>('a' + i % 26);
      if (copy_mode) {
        // Produce privately, then pay the copy into the slot.
        std::memset(staging.data(), fill, payload_bytes);
        std::memcpy(plane->data(token), staging.data(), payload_bytes);
      } else {
        // Zero-copy: produce straight into the loaned slot.
        std::memset(plane->data(token), fill, payload_bytes);
      }
      plane->publish(token, payload_bytes);
      Message ans;
      proto.send(plat, srv, mine,
                 Message(Op::kEcho, 0, static_cast<double>(i), token), &ans);
      all_ok &= ans.ext_offset == token &&
                ans.value == static_cast<double>(i);
      plane->release(ans.ext_offset);
      obs::loan_released(plat, lt0);
      samples.add(sw.elapsed_us());
    }
    out->elapsed_ms = static_cast<double>(total.elapsed_ns()) / 1e6;
    client_disconnect(plat, proto, srv, mine, 0);
    out->p50 = samples.percentile(50);
    out->p99 = samples.percentile(99);
    out->ok = all_ok && samples.size() == messages;
    return 0;
  });

  const bool children_ok = client.join() == 0 && server.join() == 0;
  PayloadReport r;
  r.p50 = out->p50;
  r.p99 = out->p99;
  r.elapsed_ms = out->elapsed_ms;
  r.ok = out->ok && children_ok;
  if (r.elapsed_ms > 0) {
    r.bytes_per_s = static_cast<double>(payload_bytes) *
                    static_cast<double>(messages) / (r.elapsed_ms / 1e3);
  }
  return r;
}

int run_payload_bench(const std::string& payload_arg, std::uint64_t messages,
                      bool pin) {
  std::vector<std::uint32_t> sizes;
  if (payload_arg == "sweep") {
    for (std::uint32_t b = 64; b <= (1u << 20); b <<= 2) sizes.push_back(b);
    if (sizes.back() != (1u << 20)) sizes.push_back(1u << 20);
  } else {
    sizes.push_back(static_cast<std::uint32_t>(std::stoul(payload_arg)));
  }

  std::cout << "Payload plane bytes/s: loaned (in-place) vs copy-through "
               "(one client, Bsls"
            << (pin ? ", pinned" : "") << ")\n\n";
  TextTable table({"bytes", "mode", "msgs", "p50 us", "p99 us", "MB/s"});
  int failed = 0;
  for (const std::uint32_t bytes : sizes) {
    // Keep the per-size byte volume roughly level so the 1 MiB points do
    // not dominate wall clock: full message count up to 4 KiB, scaled
    // down (floor 64) above it.
    const std::uint64_t msgs = std::max<std::uint64_t>(
        bytes <= 4096 ? messages : messages * 4096 / bytes, 64);
    double loan_bps = 0.0;
    for (const bool copy_mode : {false, true}) {
      const PayloadReport r = run_payload_point(bytes, msgs, pin, copy_mode);
      const char* mode = copy_mode ? "copy" : "loan";
      if (!r.ok) {
        std::cout << "[shape MISMATCH] payload " << bytes << " " << mode
                  << " run failed\n";
        ++failed;
        continue;
      }
      if (!copy_mode) loan_bps = r.bytes_per_s;
      table.add_row({std::to_string(bytes), mode, std::to_string(msgs),
                     TextTable::num(r.p50, 2), TextTable::num(r.p99, 2),
                     TextTable::num(r.bytes_per_s / 1e6, 1)});
      std::printf(
          "[payload] {\"bytes\":%u,\"mode\":\"%s\",\"msgs\":%llu,"
          "\"elapsed_ms\":%.3f,\"p50_us\":%.3f,\"p99_us\":%.3f,"
          "\"bytes_per_s\":%.0f}\n",
          bytes, mode, static_cast<unsigned long long>(msgs), r.elapsed_ms,
          r.p50, r.p99, r.bytes_per_s);
      if (copy_mode && bytes >= 4096) {
        // The acceptance shape: at >= 4 KiB the zero-copy path should win
        // on bytes/s. Reported, not failed — perf ordering on a loaded
        // 1-CPU CI box is informative, not a correctness gate.
        std::cout << (loan_bps >= r.bytes_per_s ? "[shape OK]       "
                                                : "[shape MISMATCH] ")
                  << "loan >= copy at " << bytes << " B\n";
      }
    }
  }
  table.render(std::cout);
  return failed;
}

// ---- --fanin: one waitset worker serving N single-client channels ----
//
// The readiness-plane axis: 1 worker process parks one WaitSet
// (runtime/waitset.hpp) across N channels; N client processes each drive a
// synchronous echo loop on their own channel. Client 0 is the latency
// probe (per-round-trip samples); the rest are pure load. The [fanin] JSON
// line carries aggregate throughput (msgs/ms and message-header bytes/s),
// the wake-syscall rate, and the waitset's own counters (doorbell arms,
// spurious ungates) read from the shared metrics registry.

int run_fanin_bench(std::uint32_t channels, std::uint64_t messages,
                    bool pin) {
  if (channels == 0) {
    std::cerr << "--fanin needs at least one channel\n";
    return 1;
  }
  ShmChannel::Config cc;
  cc.max_clients = 1;
  cc.queue_capacity = 256;
  cc.payload_max_bytes = 0;
  std::vector<ShmRegion> regions;
  std::vector<ShmChannel> chans;
  regions.reserve(channels);
  chans.reserve(channels);
  for (std::uint32_t c = 0; c < channels; ++c) {
    regions.push_back(
        ShmRegion::create_anonymous(ShmChannel::required_bytes(cc)));
    chans.push_back(ShmChannel::create(regions.back(), cc));
  }

  struct SharedOut {
    double p50 = 0;
    double p99 = 0;
    double max = 0;
    double elapsed_ms = 0;
    std::atomic<std::uint64_t> verified{0};
    bool probe_ok = false;
  };
  static_assert(sizeof(SharedOut) <= 4096);
  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* out = new (out_region.base()) SharedOut{};

  ChildProcess server = ChildProcess::spawn([&] {
    if (pin) pin_to_cpu(0);
    NativePlatform plat;
    chans[0].bind_server_obs(plat);  // waitset counters -> channel 0's slot
    std::vector<ShmChannel*> ptrs;
    ptrs.reserve(channels);
    for (ShmChannel& ch : chans) ptrs.push_back(&ch);
    FaninOptions fo;
    fo.liveness_timeout_ns = 20'000'000'000;
    const FaninResult fr = run_waitset_fanin_server(plat, ptrs, channels, fo);
    return fr.gave_up || fr.disconnected != channels ? 1 : 0;
  });

  std::vector<ChildProcess> clients;
  clients.reserve(channels);
  Stopwatch total;
  for (std::uint32_t c = 0; c < channels; ++c) {
    clients.push_back(ChildProcess::spawn([&, c] {
      if (pin) pin_to_cpu(0);
      NativePlatform plat;
      chans[c].bind_client_obs(plat, 0);
      Bsw<NativePlatform> proto;
      NativeEndpoint& srv = chans[c].server_endpoint();
      NativeEndpoint& mine = chans[c].client_endpoint(0);
      client_connect(plat, proto, srv, mine, 0);
      std::uint64_t v = 0;
      if (c == 0) {
        // The probe client: per-round-trip latency samples.
        SampleSet samples(messages);
        Stopwatch run;
        for (std::uint64_t i = 0; i < messages; ++i) {
          Message ans;
          Stopwatch sw;
          proto.send(plat, srv, mine,
                     Message(Op::kEcho, 0, static_cast<double>(i)), &ans);
          const std::int64_t ns = sw.elapsed_ns();
          samples.add(static_cast<double>(ns) / 1e3);
          plat.obs_round_trip(ns, 1);
          if (ans.value == static_cast<double>(i)) ++v;
        }
        out->elapsed_ms = static_cast<double>(run.elapsed_ns()) / 1e6;
        out->p50 = samples.percentile(50);
        out->p99 = samples.percentile(99);
        out->max = samples.stats().max();
        out->probe_ok = samples.size() == messages;
      } else {
        v = client_echo_loop(plat, proto, srv, mine, 0, messages);
      }
      out->verified.fetch_add(v, std::memory_order_relaxed);
      client_disconnect(plat, proto, srv, mine, 0);
      return v == messages ? 0 : 1;
    }));
  }

  bool children_ok = true;
  for (ChildProcess& c : clients) children_ok &= c.join() == 0;
  const double elapsed_ms = static_cast<double>(total.elapsed_ns()) / 1e6;
  children_ok &= server.join() == 0;

  // Aggregate wake accounting across every channel's registry, plus the
  // waitset's own counters from channel 0's server slot.
  std::uint64_t wakeups = 0;
  obs::SlotSnapshot snap;
  for (std::uint32_t c = 0; c < channels; ++c) {
    for (const std::uint32_t slot : {0u, 1u}) {
      if (chans[c].obs().slot(slot).read_snapshot(&snap)) {
        wakeups += snap.counters.wakeups;
      }
    }
  }
  obs::SlotSnapshot server_slot;
  const bool have_server_slot =
      chans[0].obs().slot(0).read_snapshot(&server_slot);
  const std::uint64_t arms =
      have_server_slot ? server_slot.counters.doorbell_arms : 0;
  const std::uint64_t spurious =
      have_server_slot ? server_slot.counters.spurious_ungates : 0;

  const std::uint64_t verified =
      out->verified.load(std::memory_order_acquire);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(channels) * messages;
  const double m = static_cast<double>(expected);
  const double wk_per_msg = static_cast<double>(wakeups) / m;
  // Header bytes only (no payload plane): request + reply per round trip.
  const double bytes =
      static_cast<double>(verified) * 2.0 * sizeof(Message);
  const double msgs_per_ms =
      elapsed_ms > 0 ? static_cast<double>(verified) / elapsed_ms : 0.0;
  const double bytes_per_s =
      elapsed_ms > 0 ? bytes / (elapsed_ms / 1e3) : 0.0;

  const WaitSetBackend backend =
      WaitSet::resolve_backend(WaitSetBackend::kAuto);
  std::cout << "Fan-in over the readiness plane: 1 waitset worker ("
            << waitset_backend_name(backend) << "), " << channels
            << " channels x " << messages << " msgs"
            << (pin ? ", pinned" : "") << "\n\n";
  TextTable table({"channels", "msgs", "p50 us", "p99 us", "wk/msg",
                   "msgs/ms", "MB/s"});
  table.add_row({std::to_string(channels), std::to_string(expected),
                 TextTable::num(out->p50, 2), TextTable::num(out->p99, 2),
                 TextTable::num(wk_per_msg, 3),
                 TextTable::num(msgs_per_ms, 1),
                 TextTable::num(bytes_per_s / 1e6, 2)});
  table.render(std::cout);
  std::printf(
      "[fanin] {\"channels\":%u,\"messages\":%llu,\"verified\":%llu,"
      "\"backend\":\"%s\",\"elapsed_ms\":%.3f,\"msgs_per_ms\":%.2f,"
      "\"bytes_per_s\":%.0f,\"wk_per_msg\":%.3f,\"doorbell_arms\":%llu,"
      "\"spurious_ungates\":%llu,\"p50_us\":%.3f,\"p99_us\":%.3f}\n",
      channels, static_cast<unsigned long long>(expected),
      static_cast<unsigned long long>(verified),
      waitset_backend_name(backend), elapsed_ms, msgs_per_ms, bytes_per_s,
      wk_per_msg, static_cast<unsigned long long>(arms),
      static_cast<unsigned long long>(spurious), out->p50, out->p99);

  const bool ok = children_ok && out->probe_ok && verified == expected;
  std::cout << (ok ? "[shape OK]       " : "[shape MISMATCH] ")
            << "all " << expected << " fan-in round trips verified\n";
  return ok ? 0 : 1;
}

// ---- --engine: queue-engine bake-off (raw MsgQueue, cross-process) ----
//
// The per-topology numbers the engine policy decision rests on, measured
// through the MsgQueue facade so dispatch cost is included:
//   pair:     single-process enqueue+dequeue round trip, uncontended —
//             the engine's floor;
//   pingpong: two processes, request/reply queues, spin with yield —
//             the contended latency shape (the two-lock engine's known
//             weak spot: ~2.5 us/op on this box vs ~50 ns uncontended);
//   mpsc:     4 producer processes blasting one queue, one consumer —
//             the pool-shard topology under idle-steal-style contention.
// One "[engine] {...}" JSON line per engine for record_bench.sh.

struct EngineReport {
  double pair_ns = 0;
  double pingpong_msgs_per_ms = 0;
  double mpsc_msgs_per_ms = 0;
  bool ok = false;
};

EngineReport run_engine_point(QueueEngine engine, std::uint64_t messages,
                              bool pin) {
  EngineReport rep;
  rep.ok = true;

  {  // Uncontended pair.
    ShmRegion region = ShmRegion::create_anonymous(8 * 1024 * 1024);
    ShmArena arena = ShmArena::format(region);
    NodePool* pool = NodePool::create(arena, 4096);
    MsgQueue* q = MsgQueue::create(arena, pool, 0, engine);
    const Message msg(Op::kEcho, 0, 1.0);
    Message out;
    Stopwatch sw;
    for (std::uint64_t i = 0; i < messages; ++i) {
      rep.ok &= q->enqueue(msg);
      rep.ok &= q->dequeue(&out);
    }
    rep.pair_ns = static_cast<double>(sw.elapsed_ns()) /
                  static_cast<double>(messages);
  }

  {  // Cross-process ping-pong.
    ShmRegion region = ShmRegion::create_anonymous(8 * 1024 * 1024);
    ShmArena arena = ShmArena::format(region);
    NodePool* pool = NodePool::create(arena, 256);
    MsgQueue* request = MsgQueue::create(arena, pool, 64, engine);
    MsgQueue* reply = MsgQueue::create(arena, pool, 64, engine);
    ChildProcess server = ChildProcess::spawn([&] {
      if (pin) pin_to_cpu(0);
      Message m;
      for (std::uint64_t i = 0; i < messages; ++i) {
        while (!request->dequeue(&m)) sched_yield();
        while (!reply->enqueue(m)) sched_yield();
      }
      return 0;
    });
    if (pin) pin_to_cpu(0);
    Message m;
    Stopwatch sw;
    for (std::uint64_t i = 0; i < messages; ++i) {
      while (!request->enqueue(Message(Op::kEcho, 0,
                                       static_cast<double>(i)))) {
        sched_yield();
      }
      while (!reply->dequeue(&m)) sched_yield();
    }
    const double elapsed_ms = static_cast<double>(sw.elapsed_ns()) / 1e6;
    rep.ok &= server.join() == 0;
    if (elapsed_ms > 0) {
      rep.pingpong_msgs_per_ms =
          static_cast<double>(messages) / elapsed_ms;
    }
  }

  {  // MPSC: 4 producers, one consumer (the shard topology).
    constexpr std::uint32_t kProducers = 4;
    ShmRegion region = ShmRegion::create_anonymous(8 * 1024 * 1024);
    ShmArena arena = ShmArena::format(region);
    NodePool* pool = NodePool::create(arena, 1024);
    MsgQueue* q = MsgQueue::create(arena, pool, 512, engine);
    std::vector<ChildProcess> producers;
    for (std::uint32_t p = 0; p < kProducers; ++p) {
      producers.push_back(ChildProcess::spawn([&] {
        if (pin) pin_to_cpu(0);
        for (std::uint64_t i = 0; i < messages; ++i) {
          while (!q->enqueue(Message(Op::kEcho, 0,
                                     static_cast<double>(i)))) {
            sched_yield();
          }
        }
        return 0;
      }));
    }
    if (pin) pin_to_cpu(0);
    const std::uint64_t total = messages * kProducers;
    Message m;
    Stopwatch sw;
    for (std::uint64_t got = 0; got < total;) {
      if (q->dequeue(&m)) {
        ++got;
      } else {
        sched_yield();
      }
    }
    const double elapsed_ms = static_cast<double>(sw.elapsed_ns()) / 1e6;
    for (ChildProcess& p : producers) rep.ok &= p.join() == 0;
    if (elapsed_ms > 0) {
      rep.mpsc_msgs_per_ms = static_cast<double>(total) / elapsed_ms;
    }
  }
  return rep;
}

int run_engine_bench(const std::string& engine_arg, std::uint64_t messages,
                     bool pin) {
  std::vector<QueueEngine> engines;
  QueueEngine parsed = QueueEngine::kTwoLock;
  if (engine_arg == "both") {
    engines = {QueueEngine::kTwoLock, QueueEngine::kLockFree};
  } else if (parse_queue_engine(engine_arg, &parsed)) {
    engines = {parsed};
  } else {
    std::cerr << "--engine wants twolock|lockfree|both, got '" << engine_arg
              << "'\n";
    return 1;
  }

  std::cout << "Queue-engine bake-off (MsgQueue facade, " << messages
            << " msgs per point" << (pin ? ", pinned" : "") << ")\n\n";
  TextTable table({"engine", "pair ns", "pingpong msgs/ms", "mpsc4 msgs/ms"});
  int failed = 0;
  for (const QueueEngine engine : engines) {
    const EngineReport r = run_engine_point(engine, messages, pin);
    if (!r.ok) {
      std::cout << "[shape MISMATCH] engine " << queue_engine_name(engine)
                << " run failed\n";
      ++failed;
      continue;
    }
    table.add_row({queue_engine_name(engine), TextTable::num(r.pair_ns, 1),
                   TextTable::num(r.pingpong_msgs_per_ms, 1),
                   TextTable::num(r.mpsc_msgs_per_ms, 1)});
    std::printf(
        "[engine] {\"engine\":\"%s\",\"messages\":%llu,\"pair_ns\":%.1f,"
        "\"pingpong_msgs_per_ms\":%.1f,\"mpsc_producers\":4,"
        "\"mpsc_msgs_per_ms\":%.1f}\n",
        queue_engine_name(engine),
        static_cast<unsigned long long>(messages), r.pair_ns,
        r.pingpong_msgs_per_ms, r.mpsc_msgs_per_ms);
  }
  table.render(std::cout);
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(20'000);
  const bool pin = args.has_flag("pinned");
  const bool batched = args.has_flag("batched");
  const bool registry_dump = args.has_flag("registry-dump");
  const bool phases = args.has_flag("phases");
  // --engine=twolock|lockfree|both selects the raw queue-engine bake-off
  // axis (uncontended pair, contended ping-pong, 4-producer MPSC through
  // the MsgQueue facade) instead of the per-protocol latency table. To run
  // the PROTOCOL table under a pinned engine, use the ULIPC_QUEUE_ENGINE
  // env instead — it reaches every channel this binary (and its forked
  // children) builds.
  if (const auto engine = args.value("engine"); engine.has_value()) {
    return run_engine_bench(*engine,
                            static_cast<std::uint64_t>(args.value_or(
                                "messages", std::int64_t{20'000})),
                            pin);
  }
  // --payload=N|sweep selects the payload-plane bytes/s axis instead of
  // the per-protocol latency table.
  if (const auto payload = args.value("payload"); payload.has_value()) {
    return run_payload_bench(*payload, messages, pin);
  }
  // --fanin=N selects the readiness-plane axis: one waitset worker, N
  // channels. Messages default lower than the scalar mode — the volume is
  // per client and N clients multiply it.
  if (const auto fanin = args.value("fanin"); fanin.has_value()) {
    return run_fanin_bench(
        static_cast<std::uint32_t>(std::stoul(*fanin)),
        static_cast<std::uint64_t>(args.value_or("messages",
                                                 std::int64_t{200})),
        pin);
  }
  const std::uint32_t window =
      batched
          ? static_cast<std::uint32_t>(args.value_or("window", std::int64_t{16}))
          : 1;

  std::cout << "Round-trip latency percentiles per protocol (native, one "
               "client"
            << (pin ? ", pinned" : "")
            << (batched ? ", batched window=" + std::to_string(window) : "")
            << ", us)\n\n";

  TextTable table(
      {"protocol", "p50", "p95", "p99", "max", "wk/msg", "coal/msg"});
  TextTable phase_table(
      {"protocol", "phase", "samples", "p50 us", "p95 us", "p99 us"});
  int failed = 0;
  double bss_p50 = 0.0;
  double bsw_p50 = 0.0;
  for (const ProtocolKind kind :
       {ProtocolKind::kBss, ProtocolKind::kBsls, ProtocolKind::kBslsFixed,
        ProtocolKind::kBswy, ProtocolKind::kBsw, ProtocolKind::kSysv}) {
    const LatencyReport r = run_protocol(kind, messages, pin, window);
    if (!r.ok) {
      std::cout << "[shape MISMATCH] " << protocol_name(kind)
                << " run failed\n";
      ++failed;
      continue;
    }
    if (kind == ProtocolKind::kBss) bss_p50 = r.p50;
    if (kind == ProtocolKind::kBsw) bsw_p50 = r.p50;
    table.add_row({protocol_name(kind), TextTable::num(r.p50, 3),
                   TextTable::num(r.p95, 2), TextTable::num(r.p99, 2),
                   TextTable::num(r.max, 1),
                   TextTable::num(r.wakeups_per_msg, 3),
                   TextTable::num(r.coalesced_per_msg, 3)});
    if (registry_dump) dump_registry_line(kind, messages, window, r);
    if (phases && kind != ProtocolKind::kSysv) add_phase_rows(phase_table, kind, r);
  }
  table.render(std::cout);
  if (phases) {
    std::cout << "\nSpan phase breakdown (sampled spans, "
                 "1-in-2^ULIPC_SPAN_SHIFT of sends)\n\n";
    phase_table.render(std::cout);
  }

  const bool ordering = bss_p50 > 0.0 && bss_p50 <= bsw_p50 * 1.5;
  std::cout << (ordering ? "[shape OK]       " : "[shape MISMATCH] ")
            << "spinning median latency <= ~blocking median latency\n";
  if (!ordering) ++failed;
  return failed;
}
