// Round-trip latency distribution per protocol (native, one client,
// pinned or not) — the tail-latency view the paper's throughput plots
// cannot show. Blocking protocols trade a little median latency (syscall
// on the miss path) for not burning the machine; the distribution shows
// where that cost actually lands.
//
// --batched [--window=N] switches the client to the windowed fast path:
// N requests per send_batch (one queue pass, one coalesced wake) with the
// replies collected off the SPSC ring. Reported latencies are then
// per-message (window time / N), and the wk/msg column shows the wake-up
// syscall coalescing. SYSV has no batched path and keeps its scalar loop
// as the kernel-mediated baseline. The scalar mode (no flags) remains the
// paper-faithful synchronous measurement.
#include <algorithm>
#include <iostream>

#include "benchsupport/args.hpp"
#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "protocols/protocol_set.hpp"
#include "runtime/shm_channel.hpp"
#include "runtime/sysv_transport.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

using namespace ulipc;
using namespace ulipc::bench;

namespace {

struct LatencyReport {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
  double wakeups_per_msg = 0;  // client + server V() syscalls per message
  bool ok = false;
};

LatencyReport run_protocol(ProtocolKind kind, std::uint64_t messages,
                           bool pin, std::uint32_t window) {
  ShmChannel::Config cc;
  cc.max_clients = 1;
  cc.queue_capacity = 256;  // >= the largest reply window
  cc.create_sysv_queues = (kind == ProtocolKind::kSysv);
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cc));
  ShmChannel channel = ShmChannel::create(region, cc);

  struct SharedOut {
    LatencyReport report;
    std::uint64_t server_wakeups = 0;
  };
  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* out = new (out_region.base()) SharedOut{};

  ChildProcess server = ChildProcess::spawn([&] {
    if (pin) pin_to_cpu(0);
    if (kind == ProtocolKind::kSysv) {
      SysvTransport t(channel);
      t.run_server(1);
      return 0;
    }
    NativePlatform plat;
    with_protocol<NativePlatform>(kind, 20, [&](auto proto) {
      auto reply_ep = [&](std::uint32_t id) -> NativeEndpoint& {
        return channel.client_endpoint(id);
      };
      run_echo_server(plat, proto, channel.server_endpoint(), reply_ep, 1);
    });
    out->server_wakeups = plat.counters().wakeups;
    return 0;
  });

  ChildProcess client = ChildProcess::spawn([&] {
    if (pin) pin_to_cpu(0);
    SampleSet samples(messages);
    std::uint64_t expected_samples = messages;
    std::uint64_t client_wakeups = 0;
    if (kind == ProtocolKind::kSysv) {
      SysvTransport t(channel);
      t.client_connect(0);
      for (std::uint64_t i = 0; i < messages; ++i) {
        Stopwatch sw;
        t.client_echo_loop(0, 1);
        samples.add(sw.elapsed_us());
      }
      t.client_disconnect(0);
    } else {
      NativePlatform plat;
      with_protocol<NativePlatform>(kind, 20, [&](auto proto) {
        NativeEndpoint& srv = channel.server_endpoint();
        NativeEndpoint& mine = channel.client_endpoint(0);
        client_connect(plat, proto, srv, mine, 0);
        if (window <= 1) {
          for (std::uint64_t i = 0; i < messages; ++i) {
            Message ans;
            Stopwatch sw;
            proto.send(plat, srv, mine,
                       Message(Op::kEcho, 0, static_cast<double>(i)), &ans);
            samples.add(sw.elapsed_us());
          }
        } else {
          // One sample per window; report per-message time so the columns
          // stay comparable with the scalar mode.
          const std::uint64_t batches = messages / window;
          expected_samples = batches;
          for (std::uint64_t b = 0; b < batches; ++b) {
            Stopwatch sw;
            client_echo_loop_batched(plat, proto, srv, mine, 0, window,
                                     window);
            samples.add(sw.elapsed_us() / static_cast<double>(window));
          }
        }
        client_disconnect(plat, proto, srv, mine, 0);
      });
      client_wakeups = plat.counters().wakeups;
    }
    out->report.p50 = samples.percentile(50);
    out->report.p95 = samples.percentile(95);
    out->report.p99 = samples.percentile(99);
    out->report.max = samples.stats().max();
    out->report.wakeups_per_msg =
        static_cast<double>(client_wakeups) / static_cast<double>(messages);
    out->report.ok = samples.size() == expected_samples;
    return 0;
  });

  const bool children_ok = client.join() == 0 && server.join() == 0;
  out->report.ok = out->report.ok && children_ok;
  out->report.wakeups_per_msg +=
      static_cast<double>(out->server_wakeups) /
      static_cast<double>(messages);
  return out->report;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(20'000);
  const bool pin = args.has_flag("pinned");
  const bool batched = args.has_flag("batched");
  const std::uint32_t window =
      batched
          ? static_cast<std::uint32_t>(args.value_or("window", std::int64_t{16}))
          : 1;

  std::cout << "Round-trip latency percentiles per protocol (native, one "
               "client"
            << (pin ? ", pinned" : "")
            << (batched ? ", batched window=" + std::to_string(window) : "")
            << ", us)\n\n";

  TextTable table({"protocol", "p50", "p95", "p99", "max", "wk/msg"});
  int failed = 0;
  double bss_p50 = 0.0;
  double bsw_p50 = 0.0;
  for (const ProtocolKind kind :
       {ProtocolKind::kBss, ProtocolKind::kBsls, ProtocolKind::kBslsFixed,
        ProtocolKind::kBswy, ProtocolKind::kBsw, ProtocolKind::kSysv}) {
    const LatencyReport r = run_protocol(kind, messages, pin, window);
    if (!r.ok) {
      std::cout << "[shape MISMATCH] " << protocol_name(kind)
                << " run failed\n";
      ++failed;
      continue;
    }
    if (kind == ProtocolKind::kBss) bss_p50 = r.p50;
    if (kind == ProtocolKind::kBsw) bsw_p50 = r.p50;
    table.add_row({protocol_name(kind), TextTable::num(r.p50, 2),
                   TextTable::num(r.p95, 2), TextTable::num(r.p99, 2),
                   TextTable::num(r.max, 1),
                   TextTable::num(r.wakeups_per_msg, 3)});
  }
  table.render(std::cout);

  const bool ordering = bss_p50 > 0.0 && bss_p50 <= bsw_p50 * 1.5;
  std::cout << (ordering ? "[shape OK]       " : "[shape MISMATCH] ")
            << "spinning median latency <= ~blocking median latency\n";
  if (!ordering) ++failed;
  return failed;
}
