// Figure 6: Both Sides Wait — blocking via counting semaphores, no
// scheduling hints.
//
// Paper: "The performance more or less matches the performance of kernel
// mediated IPC. ... The result is four system calls per round-trip: two V
// operations and two P operations. Since we used System V semaphores, which
// are of similar weight to the four System V message queue calls, there is
// no advantage to the shared memory solution at all."
#include <iostream>

#include "benchsupport/args.hpp"
#include "sweep_util.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(1'500);
  const std::vector<int> clients = client_range(1, 6);

  print_header("Figure 6", "BSW vs BSS vs SYSV server throughput");

  int failed = 0;
  for (const auto& [label, machine] :
       {std::pair<const char*, Machine>{"SGI (IRIX 6.2)", Machine::sgi_indy()},
        std::pair<const char*, Machine>{"IBM (AIX 4.1)", Machine::ibm_p4()}}) {
    SimExperimentConfig cfg;
    cfg.machine = machine;
    cfg.policy = machine.default_policy;
    cfg.messages_per_client = messages;

    cfg.protocol = ProtocolKind::kBss;
    const std::vector<double> bss = sim_sweep(cfg, clients);
    cfg.protocol = ProtocolKind::kBsw;
    const std::vector<double> bsw = sim_sweep(cfg, clients);
    cfg.protocol = ProtocolKind::kSysv;
    const std::vector<double> sysv = sim_sweep(cfg, clients);

    FigureReport report("Figure 6", std::string("BSW throughput, ") + label,
                        "clients", "msgs/ms");
    fill_series(report.add_series("BSS"), clients, bss);
    fill_series(report.add_series("BSW"), clients, bsw);
    fill_series(report.add_series("SYSV"), clients, sysv);

    const double ratio1 = bsw.front() / sysv.front();
    report.check("BSW more or less matches SYSV at one client",
                 ratio1 > 0.8 && ratio1 < 1.3,
                 "BSW/SYSV = " + TextTable::num(ratio1, 2));
    report.check("BSW loses BSS's advantage (BSS > BSW at one client)",
                 bss.front() > bsw.front() * 1.2);
    bool near = true;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const double r = bsw[i] / sysv[i];
      if (r < 0.7 || r > 1.6) near = false;
    }
    report.check("BSW stays in SYSV's band across client counts", near);
    failed += report.render(std::cout);
  }

  // The 4-syscall accounting behind the result.
  {
    SimExperimentConfig cfg;
    cfg.machine = Machine::sgi_indy();
    cfg.protocol = ProtocolKind::kBsw;
    cfg.clients = 1;
    cfg.messages_per_client = messages;
    const auto r = run_sim_experiment(cfg);
    const double total_msgs = static_cast<double>(messages);
    const double syscalls_per_msg =
        static_cast<double>(r.client_stats_total.syscalls +
                            r.server_stats.syscalls) /
        total_msgs;
    std::cout << "syscalls per round trip (client+server): "
              << TextTable::num(syscalls_per_msg, 2) << " (paper: 4 — two V, "
              << "two P)\n";
    const bool ok = syscalls_per_msg >= 3.5 && syscalls_per_msg <= 4.6;
    std::cout << (ok ? "[shape OK]       " : "[shape MISMATCH] ")
              << "synchronous single-client BSW costs ~4 semaphore syscalls "
                 "per round trip\n";
    if (!ok) ++failed;
  }
  return failed;
}
