// Figure 3: the effect of non-degrading (fixed) priorities on BSS.
//
// Paper: setting both server and client to fixed priority increases
// throughput "by 50% on the SGIs, and 30% on the IBMs" — evidence that the
// default schedulers' priority aging keeps the yielding process on the CPU
// for ~2.5 yields per round trip.
#include <iostream>

#include "benchsupport/args.hpp"
#include "sweep_util.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(1'500);
  const std::vector<int> clients = client_range(1, 6);

  print_header("Figure 3", "BSS under default (aging) vs fixed priorities");

  int failed = 0;
  struct MachineCase {
    const char* label;
    Machine machine;
    double gain_lo;  // accepted single-client fixed-priority gain band
    double gain_hi;
    double paper_gain;
  };
  const MachineCase cases[] = {
      {"SGI (IRIX 6.2)", Machine::sgi_indy(), 1.25, 1.75, 1.50},
      {"IBM (AIX 4.1)", Machine::ibm_p4(), 1.15, 1.45, 1.30},
  };

  for (const auto& mc : cases) {
    SimExperimentConfig cfg;
    cfg.machine = mc.machine;
    cfg.protocol = ProtocolKind::kBss;
    cfg.messages_per_client = messages;

    cfg.policy = PolicyKind::kAging;
    const std::vector<double> aging = sim_sweep(cfg, clients);
    cfg.policy = PolicyKind::kFixed;
    const std::vector<double> fixed = sim_sweep(cfg, clients);
    cfg.policy = mc.machine.default_policy;
    cfg.protocol = ProtocolKind::kSysv;
    const std::vector<double> sysv = sim_sweep(cfg, clients);

    FigureReport report("Figure 3",
                        std::string("BSS aging vs fixed priority, ") +
                            mc.label,
                        "clients", "msgs/ms");
    fill_series(report.add_series("BSS fixed-priority"), clients, fixed);
    fill_series(report.add_series("BSS default (aging)"), clients, aging);
    fill_series(report.add_series("SYSV"), clients, sysv);

    const double gain = fixed.front() / aging.front();
    report.check("fixed priority improves single-client BSS by ~" +
                     TextTable::num((mc.paper_gain - 1.0) * 100.0, 0) +
                     "% (paper)",
                 gain >= mc.gain_lo && gain <= mc.gain_hi,
                 "measured " + TextTable::num((gain - 1.0) * 100.0, 0) + "%");
    report.check("fixed >= default at one client", fixed.front() > aging.front());
    failed += report.render(std::cout);
  }

  // The mechanism: under aging, a process performs >1 yields per switch;
  // under fixed priority, yield rotates immediately.
  {
    SimExperimentConfig cfg;
    cfg.machine = Machine::sgi_indy();
    cfg.protocol = ProtocolKind::kBss;
    cfg.clients = 1;
    cfg.messages_per_client = messages;
    cfg.policy = PolicyKind::kAging;
    const auto aging = run_sim_experiment(cfg);
    cfg.policy = PolicyKind::kFixed;
    const auto fixed = run_sim_experiment(cfg);
    const double y_aging = aging.client_yields_per_message(messages);
    const double y_fixed = fixed.client_yields_per_message(messages);
    std::cout << "client yields per round trip: aging = "
              << TextTable::num(y_aging, 2)
              << " (paper ~2.5), fixed = " << TextTable::num(y_fixed, 2)
              << "\n";
    const bool ok = y_aging > 1.5 && y_aging < 3.5 && y_fixed <= 1.5;
    std::cout << (ok ? "[shape OK]       " : "[shape MISMATCH] ")
              << "priority aging wastes ~2.5 yields per round trip; fixed "
                 "priority does not\n";
    if (!ok) return failed + 1;
  }
  return failed;
}
