#!/bin/sh
# bench_smoke wrapper: runs one bench binary briefly and decides pass/fail.
#
#   smoke_run.sh <binary> [args...]
#
# Purpose: keep perf binaries from rotting (crashes, aborts, hangs caught by
# the ctest timeout) without making their *statistical* shape checks a CI
# gate — at smoke-sized message counts those checks are noise. Bench mains
# return the number of failed shape checks (small, < 64); crashes surface as
# 126/127 (unrunnable) or 128+signal. So: exit codes below 64 pass, the rest
# fail.
set -u

"$@"
code=$?
if [ "$code" -ge 64 ]; then
  echo "smoke_run: '$*' exited with $code (crash/abort)" >&2
  exit 1
fi
if [ "$code" -ne 0 ]; then
  echo "smoke_run: '$*' exited with $code (shape checks only; ignored at smoke scale)" >&2
fi
exit 0
