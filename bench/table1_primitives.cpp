// Table 1: measured times for primitive operations.
//
// The paper reports, on the 133 MHz SGI: enqueue/dequeue pair 3 us,
// msgsnd/msgrcv pair 37 us, and concurrent-yield loop trip times of
// 16/18/45 us for 1/2/4 processes (IBM column lost in the source text).
//
// This bench measures the same primitives natively on the host (modern
// hardware: expect 1-2 orders of magnitude faster) and echoes the simulator
// cost model, which is what the figure benches actually consume.
#include <sched.h>

#include <iostream>
#include <vector>

#include "benchsupport/args.hpp"
#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "common/table.hpp"
#include "queue/ms_two_lock_queue.hpp"
#include "shm/futex_semaphore.hpp"
#include "shm/process.hpp"
#include "shm/shm_barrier.hpp"
#include "shm/shm_region.hpp"
#include "shm/sysv_msg_queue.hpp"
#include "shm/sysv_semaphore.hpp"
#include "sim/machine.hpp"

namespace {

using namespace ulipc;

double time_per_iter_us(std::uint64_t iters, const std::function<void()>& op) {
  // Warm up, then measure.
  for (int i = 0; i < 1'000; ++i) op();
  const std::int64_t t0 = now_ns();
  for (std::uint64_t i = 0; i < iters; ++i) op();
  return static_cast<double>(now_ns() - t0) / static_cast<double>(iters) /
         1e3;
}

/// The paper's concurrent-yield experiment: n processes pinned to one CPU,
/// barrier, then a tight sched_yield loop; report mean trip time.
double concurrent_yield_us(int procs, std::uint64_t iters) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  struct Shared {
    ShmBarrier barrier;
    std::atomic<std::int64_t> total_ns;
  };
  auto* shared = new (region.base()) Shared{};
  shared->barrier.init(static_cast<std::uint32_t>(procs));

  std::vector<ChildProcess> children;
  for (int p = 0; p < procs; ++p) {
    children.push_back(ChildProcess::spawn([&] {
      pin_to_cpu(0);
      shared->barrier.arrive_and_wait();
      const std::int64_t t0 = now_ns();
      for (std::uint64_t i = 0; i < iters; ++i) sched_yield();
      shared->total_ns.fetch_add(now_ns() - t0);
      return 0;
    }));
  }
  join_all(children);
  return static_cast<double>(shared->total_ns.load()) /
         static_cast<double>(procs) / static_cast<double>(iters) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const ulipc::bench::Args args(argc, argv);
  const std::uint64_t iters = args.messages(200'000);

  std::cout << "Table 1 — measured times for primitive operations\n"
            << "(native = this host; paper = 133 MHz SGI Indy / IRIX 6.2; "
               "sim = cost model in src/sim/machine.cpp)\n\n";

  // --- native measurements ---
  ShmRegion region = ShmRegion::create_anonymous(1 << 20);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(arena, 256);
  TwoLockQueue* queue = TwoLockQueue::create(arena, pool);

  const double enq_deq = time_per_iter_us(iters, [&] {
    queue->enqueue(Message(Op::kEcho, 0, 1.0));
    Message m;
    queue->dequeue(&m);
  });

  SysvMsgQueue msgq = SysvMsgQueue::create();
  const Message wire(Op::kEcho, 0, 1.0);
  const double snd_rcv = time_per_iter_us(iters / 10, [&] {
    msgq.send(1, &wire, sizeof(wire));
    Message m;
    msgq.receive(0, &m, sizeof(m));
  });

  FutexSemaphore fsem;
  const double futex_pv = time_per_iter_us(iters, [&] {
    fsem.post();
    fsem.wait();
  });

  SysvSemaphoreSet sems = SysvSemaphoreSet::create(1);
  const SysvSemHandle h = sems.handle(0);
  const double sysv_pv = time_per_iter_us(iters / 10, [&] {
    SysvSemaphoreSet::post(h);
    SysvSemaphoreSet::wait(h);
  });

  const double yield1 = concurrent_yield_us(1, iters / 4);
  const double yield2 = concurrent_yield_us(2, iters / 4);
  const double yield4 = concurrent_yield_us(4, iters / 8);

  const auto sgi = ulipc::sim::Machine::sgi_indy();
  auto sim_us = [](std::int64_t ns) {
    return static_cast<double>(ns) / 1e3;
  };

  TextTable table({"Primitive (pair/trip)", "native us", "paper SGI us",
                   "sim model us"});
  table.add_row({"enqueue/dequeue", TextTable::num(enq_deq, 3), "3",
                 TextTable::num(sim_us(sgi.costs.enqueue + sgi.costs.dequeue), 1)});
  table.add_row({"msgsnd/msgrcv", TextTable::num(snd_rcv, 3), "37",
                 TextTable::num(sim_us(sgi.costs.msgsnd + sgi.costs.msgrcv), 1)});
  table.add_row({"futex sem V/P", TextTable::num(futex_pv, 3), "-", "-"});
  table.add_row({"SysV sem V/P", TextTable::num(sysv_pv, 3),
                 "~36 (same weight as msgq ops)",
                 TextTable::num(sim_us(2 * sgi.costs.semop), 1)});
  table.add_row({"yield, 1 process", TextTable::num(yield1, 3), "16",
                 TextTable::num(sim_us(sgi.yield_cost(1)), 1)});
  table.add_row({"yield, 2 processes", TextTable::num(yield2, 3), "18",
                 TextTable::num(sim_us(sgi.yield_cost(2)), 1) + " (+switch)"});
  table.add_row({"yield, 4 processes", TextTable::num(yield4, 3), "45",
                 TextTable::num(sim_us(sgi.yield_cost(4)), 1) + " (+switch)"});
  table.render(std::cout);

  std::cout << "\nSanity checks (relative ordering the paper relies on):\n";
  int failed = 0;
  auto check = [&](const char* claim, bool ok) {
    std::cout << (ok ? "[shape OK]       " : "[shape MISMATCH] ") << claim
              << "\n";
    if (!ok) ++failed;
  };
  check("user-level enqueue/dequeue is much cheaper than msgsnd/msgrcv",
        enq_deq * 3.0 < snd_rcv);
  check("futex semaphore (no syscall uncontended) beats SysV semop",
        futex_pv < sysv_pv);
  check("concurrent yield cost grows with process count", yield1 < yield4);
  return failed;
}
