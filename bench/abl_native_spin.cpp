// Ablation B: the spin-then-block trade-off on a modern kernel, natively.
//
// Sweeps BSLS MAX_SPIN on real processes (this host, both cores), for both
// semaphore flavours — futex (V with no waiter costs no syscall) and SysV
// (the paper's primitive, a syscall either way). This is the 2025 rerun of
// the paper's Figure 10 question: how much spinning before sleeping?
#include <algorithm>
#include <iostream>
#include <vector>

#include "benchsupport/args.hpp"
#include "benchsupport/figure.hpp"
#include "common/table.hpp"
#include "common/affinity.hpp"
#include "runtime/harness.hpp"

using namespace ulipc;
using namespace ulipc::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(4'000);
  const std::vector<std::uint32_t> max_spins = {0, 1, 2, 5, 10, 20, 50};
  const bool pinned = args.has_flag("pinned");

  std::cout << "Ablation B — native spin-then-block threshold (this host, "
            << cpu_count() << " CPUs" << (pinned ? ", pinned to 1" : "")
            << ")\n\n";

  FigureReport report("Ablation B", "BSLS MAX_SPIN sweep, native",
                      "MAX_SPIN", "msgs/ms");
  int failed = 0;
  for (const SemKind sem : {SemKind::kFutex, SemKind::kSysv}) {
    Series& series = report.add_series(
        sem == SemKind::kFutex ? "futex semaphore" : "SysV semaphore");
    std::vector<double> curve;
    for (const std::uint32_t spin : max_spins) {
      NativeRunConfig cfg;
      cfg.protocol = ProtocolKind::kBslsFixed;  // the sweep needs the fixed bound
      cfg.sem = sem;
      cfg.clients = 1;
      cfg.messages_per_client = messages;
      cfg.max_spin = spin;
      cfg.pin_single_cpu = pinned;
      cfg.multiprocessor_waits = !pinned && cpu_count() > 1;
      const NativeRunResult r = run_native_experiment(cfg);
      if (!r.all_children_ok ||
          r.verified_replies != messages) {
        std::cout << "[shape MISMATCH] run failed at MAX_SPIN=" << spin
                  << "\n";
        ++failed;
        continue;
      }
      series.x.push_back(static_cast<double>(spin));
      series.y.push_back(r.throughput_msgs_per_ms);
      curve.push_back(r.throughput_msgs_per_ms);
    }
    // Some spinning should never be catastrophically worse than none; on a
    // multicore host, spinning typically wins outright.
    if (curve.size() >= 2) {
      const double best = *std::max_element(curve.begin(), curve.end());
      const bool ok = best >= curve.front() * 0.9;
      std::cout << (ok ? "[shape OK]       " : "[shape MISMATCH] ")
                << (sem == SemKind::kFutex ? "futex" : "SysV")
                << ": a nonzero spin budget is competitive with MAX_SPIN=0\n";
      if (!ok) ++failed;
    }
  }
  failed += report.render(std::cout);

  // The futex-vs-SysV comparison the paper could not make in 1998.
  std::cout << "Note: with futex semaphores an uncontended V costs no "
               "syscall, so the penalty for\nblocking early is far smaller "
               "than with SysV semop — the 1998 trade-off has softened.\n";
  return failed;
}
