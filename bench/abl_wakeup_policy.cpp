// Ablation A: what each race-condition fix of the wake-up protocol buys.
//
// Compares, on the simulator (SGI model, 1 and 4 clients):
//   * BSW            — the shipped protocol (tas-guarded V, C.3 recheck,
//                      absorb on the recheck-success path);
//   * BSW-alwaysV    — no awake flag at all: one V (and one P) per message;
//   * BSW via counters — how many wake-up syscalls the tas guard eliminates.
//
// DESIGN.md calls this out as the design choice behind Figure 4's
// discussion: the awake flag exists to keep V/P syscalls off the common
// path; without it, blocking user-level IPC degenerates to the 4-syscall
// regime on every message even when the queues never run dry.
#include <iostream>
#include <memory>
#include <vector>

#include "benchsupport/args.hpp"
#include "benchsupport/figure.hpp"
#include "common/table.hpp"
#include "protocols/broken.hpp"
#include "protocols/bsw.hpp"
#include "protocols/channel.hpp"
#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

namespace {

struct AblationResult {
  double throughput = 0.0;
  std::uint64_t server_posts = 0;  // V syscalls issued toward clients
  std::uint64_t client_posts = 0;  // V syscalls issued toward the server
};

template <typename Proto>
AblationResult run_case(std::uint32_t clients, std::uint64_t messages) {
  SimKernel kernel(Machine::sgi_indy());
  SimPlatform plat(kernel);
  Proto proto;

  auto srv = std::make_unique<SimEndpoint>(64);
  std::vector<std::unique_ptr<SimEndpoint>> eps;
  for (std::uint32_t i = 0; i < clients; ++i) {
    eps.push_back(std::make_unique<SimEndpoint>(64));
  }

  ServerResult server_result;
  kernel.spawn("server", [&] {
    auto reply_ep = [&](std::uint32_t ch) -> SimEndpoint& { return *eps[ch]; };
    server_result = run_echo_server(plat, proto, *srv, reply_ep, clients);
  });
  for (std::uint32_t i = 0; i < clients; ++i) {
    kernel.spawn("client", [&, i] {
      client_connect(plat, proto, *srv, *eps[i], i);
      client_echo_loop(plat, proto, *srv, *eps[i], i, messages);
      client_disconnect(plat, proto, *srv, *eps[i], i);
    });
  }
  kernel.run();

  AblationResult r;
  r.throughput = server_result.throughput_msgs_per_ms();
  r.client_posts = srv->sem.total_posts;
  for (const auto& ep : eps) r.server_posts += ep->sem.total_posts;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(1'500);

  std::cout << "Ablation A — wake-up policy: tas-guarded V vs V-per-message\n"
            << "(SGI model; V/P cost 18 us each — the guard's entire value "
               "is syscall avoidance)\n\n";

  int failed = 0;
  TextTable table({"clients", "variant", "msgs/ms", "client V() total",
                   "server V() total", "V per message"});
  for (const std::uint32_t clients : {1u, 4u}) {
    const std::uint64_t total = messages * clients;
    const AblationResult guarded =
        run_case<Bsw<SimPlatform>>(clients, messages);
    const AblationResult always =
        run_case<BswAlwaysWake<SimPlatform>>(clients, messages);

    for (const auto& [name, r] :
         {std::pair<const char*, const AblationResult&>{"BSW (tas guard)",
                                                        guarded},
          std::pair<const char*, const AblationResult&>{"BSW-alwaysV",
                                                        always}}) {
      table.add_row({std::to_string(clients), name,
                     TextTable::num(r.throughput, 2),
                     std::to_string(r.client_posts),
                     std::to_string(r.server_posts),
                     TextTable::num(static_cast<double>(r.client_posts +
                                                        r.server_posts) /
                                        static_cast<double>(total),
                                    2)});
    }

    // alwaysV pays >= 2 V per message by construction. With one synchronous
    // client the consumer really does sleep every message, so the guard can
    // only match it; with several clients the server batches, stays awake,
    // and the guard eliminates wake-ups outright.
    const double v_guarded =
        static_cast<double>(guarded.client_posts + guarded.server_posts) /
        static_cast<double>(total);
    const double v_always =
        static_cast<double>(always.client_posts + always.server_posts) /
        static_cast<double>(total);
    const bool fewer = clients == 1 ? v_guarded <= v_always * 1.02
                                    : v_guarded < v_always * 0.95;
    const bool faster = guarded.throughput >= always.throughput * 0.95;
    std::cout << (fewer ? "[shape OK]       " : "[shape MISMATCH] ")
              << clients << " client(s): tas guard wake-ups "
              << (clients == 1 ? "no worse than" : "fewer than")
              << " alwaysV (" << TextTable::num(v_guarded, 2) << " vs "
              << TextTable::num(v_always, 2) << " V/msg)\n";
    std::cout << (faster ? "[shape OK]       " : "[shape MISMATCH] ")
              << clients << " client(s): guarded throughput >= alwaysV\n";
    if (!fewer) ++failed;
    if (!faster) ++failed;
  }
  std::cout << "\n";
  table.render(std::cout);
  return failed;
}
