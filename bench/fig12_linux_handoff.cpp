// Figure 12: modified sched_yield and the handoff() syscall on Linux 1.0.32
// (66 MHz 486 model).
//
// Paper 6: the stock scheduler gave BSS a ~33 ms response time (yield never
// rotated; only quantum expiry switched). Patching sched_yield to "expire
// the caller's quantum and force a context switch" restored ~120 us. With
// that patch, "the BSWY algorithm — the one without any client side spinning
// — performs as well as the busy-waiting BSS algorithm", and the handoff
// syscall "matched the BSWY performance, but did not improve it further".
#include <iostream>

#include "benchsupport/args.hpp"
#include "sweep_util.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(1'000);
  const std::vector<int> clients = client_range(1, 6);

  print_header("Figure 12", "Linux 1.0.32 with modified sched_yield/handoff");

  int failed = 0;
  const Machine lin = Machine::linux_486();

  // --- the stock-kernel observation (single client; it is slow) ---
  {
    SimExperimentConfig cfg;
    cfg.machine = lin;
    cfg.policy = PolicyKind::kTickOnly;
    cfg.protocol = ProtocolKind::kBss;
    cfg.clients = 1;
    cfg.messages_per_client = std::min<std::uint64_t>(messages, 60);
    const auto r = run_sim_experiment(cfg);
    std::cout << "stock scheduler BSS response time: "
              << TextTable::num(r.round_trip_us / 1'000.0, 1)
              << " ms (paper: ~33 ms)\n";
    const bool ok = r.round_trip_us > 10'000.0 && r.round_trip_us < 80'000.0;
    std::cout << (ok ? "[shape OK]       " : "[shape MISMATCH] ")
              << "unpatched yield leaves BSS at millisecond latencies\n\n";
    if (!ok) ++failed;
  }

  // --- the patched kernel ---
  SimExperimentConfig cfg;
  cfg.machine = lin;
  cfg.policy = PolicyKind::kModYield;
  cfg.messages_per_client = messages;

  cfg.protocol = ProtocolKind::kBss;
  const std::vector<double> bss = sim_sweep(cfg, clients);
  cfg.protocol = ProtocolKind::kBswy;
  const std::vector<double> bswy = sim_sweep(cfg, clients);
  cfg.use_handoff = true;
  const std::vector<double> handoff = sim_sweep(cfg, clients);
  cfg.use_handoff = false;
  cfg.protocol = ProtocolKind::kBsw;
  const std::vector<double> bsw = sim_sweep(cfg, clients);
  cfg.protocol = ProtocolKind::kSysv;
  const std::vector<double> sysv = sim_sweep(cfg, clients);

  FigureReport report("Figure 12", "patched Linux: BSS vs BSWY vs handoff",
                      "clients", "msgs/ms");
  fill_series(report.add_series("BSS (mod yield)"), clients, bss);
  fill_series(report.add_series("BSWY (mod yield)"), clients, bswy);
  fill_series(report.add_series("BSWY (handoff syscall)"), clients, handoff);
  fill_series(report.add_series("BSW"), clients, bsw);
  fill_series(report.add_series("SYSV"), clients, sysv);

  const double rt = 1'000.0 / bss.front();
  report.check("modified yield restores ~120 us BSS round trip",
               rt > 60.0 && rt < 240.0,
               "measured " + TextTable::num(rt, 0) + " us");
  bool bswy_matches = true;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (bswy[i] < bss[i] * 0.9) bswy_matches = false;
  }
  report.check("BSWY (no client spinning) performs as well as BSS",
               bswy_matches);
  const double h_ratio = handoff.front() / bswy.front();
  report.check("handoff matches BSWY at one client, no further improvement",
               h_ratio > 0.9 && h_ratio < 1.1,
               "handoff/BSWY = " + TextTable::num(h_ratio, 2));
  report.check("blocking protocols still beat SYSV on the patched kernel",
               dominates(bswy, sysv, 1.0));
  failed += report.render(std::cout);
  return failed;
}
