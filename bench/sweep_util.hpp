// Shared helpers for the figure benches: client-count sweeps on the
// simulator, series filling, and uniform run notes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "benchsupport/figure.hpp"
#include "common/table.hpp"
#include "sim/sim_experiment.hpp"

namespace ulipc::bench {

/// Runs `cfg` for each client count in `clients`, returning throughputs in
/// msgs/ms (the paper's y-axis).
inline std::vector<double> sim_sweep(sim::SimExperimentConfig cfg,
                                     const std::vector<int>& clients) {
  std::vector<double> out;
  out.reserve(clients.size());
  for (const int n : clients) {
    cfg.clients = static_cast<std::uint32_t>(n);
    out.push_back(sim::run_sim_experiment(cfg).throughput_msgs_per_ms);
  }
  return out;
}

inline void fill_series(Series& series, const std::vector<int>& clients,
                        const std::vector<double>& values) {
  for (std::size_t i = 0; i < clients.size(); ++i) {
    series.x.push_back(static_cast<double>(clients[i]));
    series.y.push_back(values[i]);
  }
}

inline std::vector<int> client_range(int lo, int hi) {
  std::vector<int> v;
  for (int i = lo; i <= hi; ++i) v.push_back(i);
  return v;
}

inline void print_header(const char* id, const char* what) {
  std::printf("%s — %s\n", id, what);
  std::printf("(simulated machines; shapes, not absolute numbers, are the "
              "reproduction target — see DESIGN.md 6)\n\n");
}

}  // namespace ulipc::bench
