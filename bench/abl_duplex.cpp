// Ablation E: server architecture — one shared receive queue vs thread per
// client ("two queues per client to implement the full-duplex virtual
// connection", paper §2.1).
//
// Native, this host. The shared-queue single-threaded server batches all
// clients through one queue; the duplex server dedicates a thread (and a
// private request queue) to each client. On a small SMP the duplex server
// buys parallel request handling at the cost of threads competing for cores.
#include <algorithm>
#include <iostream>
#include <vector>

#include "benchsupport/args.hpp"
#include "benchsupport/figure.hpp"
#include "common/affinity.hpp"
#include "common/table.hpp"
#include "protocols/bsls.hpp"
#include "runtime/duplex_server.hpp"
#include "runtime/harness.hpp"
#include "shm/process.hpp"

using namespace ulipc;
using namespace ulipc::bench;

namespace {

double run_duplex(std::uint32_t clients, std::uint64_t messages) {
  ShmChannel::Config cfg;
  cfg.max_clients = clients;
  cfg.queue_capacity = 64;
  cfg.duplex = true;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);

  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* throughput = new (out_region.base()) double(0.0);

  ChildProcess server = ChildProcess::spawn([&] {
    const DuplexServerResult r =
        run_duplex_server(channel, Bsls<NativePlatform>(20), clients);
    *throughput = r.throughput_msgs_per_ms();
    return r.echo_messages == clients * messages ? 0 : 1;
  });
  std::vector<ChildProcess> client_procs;
  for (std::uint32_t i = 0; i < clients; ++i) {
    client_procs.push_back(ChildProcess::spawn([&, i] {
      NativePlatform plat;
      Bsls<NativePlatform> proto(20);
      NativeEndpoint& req = channel.client_request_endpoint(i);
      NativeEndpoint& mine = channel.client_endpoint(i);
      client_connect(plat, proto, req, mine, i);
      const std::uint64_t ok =
          client_echo_loop(plat, proto, req, mine, i, messages);
      client_disconnect(plat, proto, req, mine, i);
      return ok == messages ? 0 : 1;
    }));
  }
  bool ok = true;
  for (auto& c : client_procs) ok &= (c.join() == 0);
  ok &= (server.join() == 0);
  return ok ? *throughput : 0.0;
}

double run_shared(std::uint32_t clients, std::uint64_t messages) {
  NativeRunConfig cfg;
  cfg.protocol = ProtocolKind::kBsls;
  cfg.clients = clients;
  cfg.messages_per_client = messages;
  cfg.max_spin = 20;
  const NativeRunResult r = run_native_experiment(cfg);
  return r.all_children_ok ? r.throughput_msgs_per_ms : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(4'000);
  const std::vector<int> clients = {1, 2, 3, 4};

  std::cout << "Ablation E — shared-queue server vs thread-per-client duplex "
               "server (native, " << cpu_count() << " CPUs)\n\n";

  FigureReport report("Ablation E", "server architecture comparison",
                      "clients", "msgs/ms");
  Series& s_shared = report.add_series("shared queue, 1 thread");
  Series& s_duplex = report.add_series("duplex, thread per client");

  std::vector<double> shared;
  std::vector<double> duplex;
  for (const int n : clients) {
    shared.push_back(run_shared(static_cast<std::uint32_t>(n), messages));
    duplex.push_back(run_duplex(static_cast<std::uint32_t>(n), messages));
    s_shared.x.push_back(n);
    s_shared.y.push_back(shared.back());
    s_duplex.x.push_back(n);
    s_duplex.y.push_back(duplex.back());
  }

  report.check("both architectures complete every exchange",
               std::min(*std::min_element(shared.begin(), shared.end()),
                        *std::min_element(duplex.begin(), duplex.end())) >
                   0.0);
  // No universal winner is claimed; record the observed relationship.
  const double ratio = duplex.back() / shared.back();
  std::cout << "duplex/shared throughput at " << clients.back()
            << " clients: " << TextTable::num(ratio, 2) << "\n\n";
  return report.render(std::cout);
}
