// google-benchmark microbenchmarks for the synchronization substrate: the
// awake flag, spinlock, futex semaphore, SysV semaphore, SysV message
// queue, and sched_yield — the per-op costs behind Table 1 and the
// protocols' syscall accounting.
#include <benchmark/benchmark.h>
#include <sched.h>

#include "queue/message.hpp"
#include "shm/futex_semaphore.hpp"
#include "shm/spinlock.hpp"
#include "shm/sysv_msg_queue.hpp"
#include "shm/sysv_semaphore.hpp"
#include "shm/tas_flag.hpp"

namespace {

using namespace ulipc;

void BM_AwakeFlagTas(benchmark::State& state) {
  AwakeFlag flag;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flag.tas());
  }
}
BENCHMARK(BM_AwakeFlagTas);

void BM_AwakeFlagClearTas(benchmark::State& state) {
  // The consumer's C.2 + producer's P.2 pair.
  AwakeFlag flag;
  for (auto _ : state) {
    flag.clear();
    benchmark::DoNotOptimize(flag.tas());
  }
}
BENCHMARK(BM_AwakeFlagClearTas);

void BM_SpinlockUncontended(benchmark::State& state) {
  Spinlock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_SpinlockUncontended);

void BM_FutexSemUncontendedVP(benchmark::State& state) {
  // No waiter: V is a pure atomic add — the key cost difference vs SysV.
  FutexSemaphore sem;
  for (auto _ : state) {
    sem.post();
    sem.wait();
  }
}
BENCHMARK(BM_FutexSemUncontendedVP);

void BM_SysvSemVP(benchmark::State& state) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(1);
  const SysvSemHandle h = set.handle(0);
  for (auto _ : state) {
    SysvSemaphoreSet::post(h);
    SysvSemaphoreSet::wait(h);
  }
}
BENCHMARK(BM_SysvSemVP);

void BM_SysvMsgqSendRecv(benchmark::State& state) {
  SysvMsgQueue q = SysvMsgQueue::create();
  const Message msg(Op::kEcho, 0, 1.0);
  Message out;
  for (auto _ : state) {
    q.send(1, &msg, sizeof(msg));
    q.receive(0, &out, sizeof(out));
  }
}
BENCHMARK(BM_SysvMsgqSendRecv);

void BM_SchedYield(benchmark::State& state) {
  for (auto _ : state) {
    sched_yield();
  }
}
BENCHMARK(BM_SchedYield);

}  // namespace

BENCHMARK_MAIN();
