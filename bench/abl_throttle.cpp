// Ablation C: the paper's §5 future work, implemented.
//
//   "We could break the positive feedback in the BSLS algorithm by having
//    the server recognize the fact that it is overloaded, and limit the
//    number of clients it wakes up at any given time."
//
// Repeats the Figure 11 sweep (8-CPU Challenge model, 25 us/request) with
// BslsThrottled: replies defer their wake-up onto a FIFO the server drains
// in bounded batches while busy and completely while idle. Expectation:
// same pre-cliff performance, and a substantially softer collapse beyond
// the BSLS cliff.
#include <iostream>
#include <memory>
#include <vector>

#include "benchsupport/args.hpp"
#include "benchsupport/figure.hpp"
#include "common/table.hpp"
#include "protocols/bsls.hpp"
#include "protocols/bsls_throttled.hpp"
#include "protocols/channel.hpp"
#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

namespace {

template <typename Proto>
double run_mp(Proto proto, std::uint32_t clients, std::uint64_t messages,
              double work_us) {
  SimKernel kernel(Machine::sgi_challenge(8));
  SimPlatform plat(kernel);
  auto srv = std::make_unique<SimEndpoint>(256);
  std::vector<std::unique_ptr<SimEndpoint>> eps;
  for (std::uint32_t i = 0; i < clients; ++i) {
    eps.push_back(std::make_unique<SimEndpoint>(256));
  }
  ServerResult result;
  kernel.spawn("server", [&, proto]() mutable {
    auto reply_ep = [&](std::uint32_t ch) -> SimEndpoint& { return *eps[ch]; };
    result = run_echo_server(plat, proto, *srv, reply_ep, clients);
  });
  for (std::uint32_t i = 0; i < clients; ++i) {
    kernel.spawn("client", [&, proto, i]() mutable {
      client_connect(plat, proto, *srv, *eps[i], i);
      client_echo_loop(plat, proto, *srv, *eps[i], i, messages, work_us);
      client_disconnect(plat, proto, *srv, *eps[i], i);
    });
  }
  kernel.run();
  return result.throughput_msgs_per_ms();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(600);
  const double work_us = args.value_or("work", 25.0);
  const std::uint32_t max_spin = 5;  // the earliest-collapsing Figure 11 curve

  std::cout << "Ablation C — server wake-up throttling (the paper's 5 "
               "future work)\n"
            << "8-CPU Challenge model, " << work_us
            << " us/request, MAX_SPIN=" << max_spin << "\n\n";

  FigureReport report("Ablation C", "BSLS vs BSLS-throttled beyond the cliff",
                      "clients", "msgs/ms");
  Series& s_plain = report.add_series("BSLS");
  Series& s_throttled = report.add_series("BSLS-throttled (period=4)");

  std::vector<double> plain;
  std::vector<double> throttled;
  for (int n = 1; n <= 12; ++n) {
    plain.push_back(run_mp(Bsls<SimPlatform>(max_spin),
                           static_cast<std::uint32_t>(n), messages, work_us));
    throttled.push_back(run_mp(BslsThrottled<SimPlatform>(max_spin, 4),
                               static_cast<std::uint32_t>(n), messages,
                               work_us));
    s_plain.x.push_back(n);
    s_plain.y.push_back(plain.back());
    s_throttled.x.push_back(n);
    s_throttled.y.push_back(throttled.back());
  }

  // Pre-cliff: the two must match (throttling costs nothing when nobody
  // blocks). Post-cliff: throttling must recover throughput.
  report.check("equal performance before the cliff (n<=3)",
               throttled[1] > plain[1] * 0.9 && throttled[2] > plain[2] * 0.9);
  double plain_tail = 0.0;
  double throttled_tail = 0.0;
  for (int i = 7; i < 12; ++i) {
    plain_tail += plain[static_cast<std::size_t>(i)];
    throttled_tail += throttled[static_cast<std::size_t>(i)];
  }
  report.check("throttling recovers throughput beyond the cliff",
               throttled_tail > plain_tail * 1.1,
               "tail mean " + TextTable::num(throttled_tail / 5.0, 1) +
                   " vs " + TextTable::num(plain_tail / 5.0, 1) + " msgs/ms");
  return report.render(std::cout);
}
