// Native rerun of the paper's uniprocessor experiment on this host: every
// process pinned to one core, all five transports, 1-4 clients.
//
// This is real measured data (modern kernel, modern hardware) reported next
// to the simulator reproductions in EXPERIMENTS.md. Modern CFS sched_yield
// requeues the caller — behaviourally the paper's *modified* yield — so the
// expected ordering matches the paper's patched-Linux figure: user-level
// protocols comfortably above SysV message queues.
#include <iostream>
#include <vector>

#include "benchsupport/args.hpp"
#include "benchsupport/figure.hpp"
#include "common/table.hpp"
#include "common/affinity.hpp"
#include "runtime/harness.hpp"

using namespace ulipc;
using namespace ulipc::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(5'000);
  const std::vector<int> clients = {1, 2, 3, 4};

  std::cout << "Native uniprocessor rerun (all processes pinned to CPU 0, "
               "this host)\n\n";

  FigureReport report("Native", "pinned single-CPU server throughput",
                      "clients", "msgs/ms");
  std::vector<std::vector<double>> curves;
  const std::vector<std::pair<const char*, ProtocolKind>> protocols = {
      {"BSS", ProtocolKind::kBss},
      {"BSW", ProtocolKind::kBsw},
      {"BSWY", ProtocolKind::kBswy},
      {"BSLS(20)", ProtocolKind::kBslsFixed},  // paper-faithful row
      {"SYSV", ProtocolKind::kSysv},
  };

  int failed = 0;
  for (const auto& [name, proto] : protocols) {
    Series& series = report.add_series(name);
    std::vector<double> curve;
    for (const int n : clients) {
      NativeRunConfig cfg;
      cfg.protocol = proto;
      cfg.clients = static_cast<std::uint32_t>(n);
      cfg.messages_per_client = messages;
      cfg.max_spin = 20;
      cfg.pin_single_cpu = true;
      const NativeRunResult r = run_native_experiment(cfg);
      if (!r.all_children_ok) {
        std::cout << "[shape MISMATCH] " << name << " run failed at n=" << n
                  << "\n";
        ++failed;
        curve.push_back(0.0);
        continue;
      }
      series.x.push_back(static_cast<double>(n));
      series.y.push_back(r.throughput_msgs_per_ms);
      curve.push_back(r.throughput_msgs_per_ms);
    }
    curves.push_back(curve);
  }

  // Ordering checks on real hardware.
  const auto& bss = curves[0];
  const auto& bsls = curves[3];
  const auto& sysv = curves[4];
  const bool beats = bss[0] > sysv[0] && bsls[0] > sysv[0];
  report.check("user-level IPC beats SysV message queues at one client",
               beats,
               "BSS " + TextTable::num(bss[0], 0) + ", BSLS " +
                   TextTable::num(bsls[0], 0) + ", SYSV " +
                   TextTable::num(sysv[0], 0) + " msgs/ms");
  failed += report.render(std::cout);
  return failed;
}
