#!/bin/sh
# Records a machine-tagged perf snapshot so PRs can track the trajectory.
#
#   bench/record_bench.sh [build-dir] [out.json] [trajectory.jsonl]
#
# Runs the three perf anchors (micro_queue, micro_sync, latency_percentiles)
# from a Release build tree and writes one JSON document: a machine tag, the
# google-benchmark ns/op numbers, the per-protocol round-trip latency
# percentiles (plus the derived single-client round-trip throughput in
# msgs/ms), and the metrics-registry view of each run (wake-ups, coalesced
# messages, registry-side percentiles — the "[registry]" lines emitted by
# latency_percentiles --registry-dump). The first snapshot is committed as
# BENCH_baseline.json; every run also appends a one-line summary to the
# trajectory file (third argument; default BENCH_trajectory.jsonl next to
# the output file), so later PRs accumulate comparable points without
# rewriting the committed baseline.
#
# Requires python3 (parsing) and a build tree with the bench binaries built.
set -eu

BUILD_DIR="${1:-build-rel}"
OUT="${2:-BENCH_baseline.json}"
TRAJ="${3:-}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BENCH_DIR="$BUILD_DIR/bench"
for bin in micro_queue micro_sync latency_percentiles; do
  if [ ! -x "$BENCH_DIR/$bin" ]; then
    echo "error: $BENCH_DIR/$bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

MESSAGES="${ULIPC_BENCH_MESSAGES:-20000}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BENCH_DIR/micro_queue" --benchmark_format=json \
  > "$TMP/micro_queue.json" 2>"$TMP/micro_queue.err"
"$BENCH_DIR/micro_sync" --benchmark_format=json \
  > "$TMP/micro_sync.json" 2>"$TMP/micro_sync.err"
# || true: the bench's shape checks are advisory here; the numbers matter.
# Binaries from before --registry-dump / --batched ignore the flags (the
# parser then simply finds no "[registry]" lines — harmless).
"$BENCH_DIR/latency_percentiles" "--messages=$MESSAGES" --registry-dump \
  > "$TMP/latency.txt" 2>&1 || true
"$BENCH_DIR/latency_percentiles" "--messages=$MESSAGES" --batched \
  --registry-dump > "$TMP/latency_batched.txt" 2>&1 || true
# Payload-plane bytes/s sweep ("[payload]" JSON lines): loaned (zero-copy)
# vs copy-through-slot at each size, 64 B..1 MiB. Binaries from before
# --payload exit with "unknown"-free output containing no "[payload]" lines.
"$BENCH_DIR/latency_percentiles" "--messages=$MESSAGES" --payload=sweep \
  > "$TMP/payload.txt" 2>&1 || true
# Fan-in over the readiness plane ("[fanin]" JSON line): one waitset
# worker serving 64 channels. Messages are per client (64x multiplier), so
# the count is bounded separately from MESSAGES. Binaries from before
# --fanin contribute no "[fanin]" line.
FANIN_MESSAGES="${ULIPC_BENCH_FANIN_MESSAGES:-200}"
"$BENCH_DIR/latency_percentiles" --fanin=64 "--messages=$FANIN_MESSAGES" \
  > "$TMP/fanin.txt" 2>&1 || true
# Pool scale-out points ("[pool]" JSON lines), if the binary exists (trees
# built before fig11b simply contribute no pool section).
if [ -x "$BENCH_DIR/fig11b_server_pool" ]; then
  "$BENCH_DIR/fig11b_server_pool" "--messages=$MESSAGES" \
    > "$TMP/pool.txt" 2>&1 || true
  # Same shard topology with the lock-free engine pinned via env (inherited
  # by the forked workers/clients), so both engines' pool-shard numbers land
  # in the trajectory. Trees from before the engine axis run the default
  # engine twice — the parser tags the leg, not the binary.
  ULIPC_QUEUE_ENGINE=lockfree "$BENCH_DIR/fig11b_server_pool" \
    "--messages=$MESSAGES" > "$TMP/pool_lockfree.txt" 2>&1 || true
fi
# Queue-engine bake-off ("[engine]" JSON lines): uncontended pair ns,
# cross-process contended ping-pong, and 4-producer MPSC through the
# MsgQueue facade, one line per engine. Binaries from before --engine
# contribute no "[engine]" lines.
"$BENCH_DIR/latency_percentiles" --engine=both "--messages=$MESSAGES" \
  > "$TMP/engine.txt" 2>&1 || true
# Scenario engine ("[scenario]" JSON lines with per-run SLO pass/fail), if
# ulipc-perf is built. || true: a chaos SLO failure is a data point to
# record, not a reason to lose the rest of the snapshot — and a crashed run
# leaves at worst a truncated last line, which the parser below discards.
PERF_BIN="$BUILD_DIR/tools/ulipc-perf/ulipc-perf"
if [ -x "$PERF_BIN" ]; then
  "$PERF_BIN" --quick > "$TMP/scenarios.txt" 2>&1 || true
fi

python3 - "$TMP" "$OUT" "$MESSAGES" "$TRAJ" <<'EOF'
import json, os, platform, re, subprocess, sys, datetime

tmp, out, messages = sys.argv[1], sys.argv[2], int(sys.argv[3])
traj_arg = sys.argv[4] if len(sys.argv) > 4 else ""

def bench_json(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: round(b["real_time"], 2)
            for b in doc.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

def latency_table(path):
    # Rows look like: "| BSLS | 1.84 | 2.1 | ... |" (TextTable output).
    rows = {}
    if not os.path.exists(path):
        return rows
    with open(path) as f:
        for line in f:
            cells = [c.strip() for c in line.split("|") if c.strip()]
            if len(cells) < 5 or cells[0] not in (
                    "BSS", "BSW", "BSWY", "BSLS", "SYSV"):
                continue
            try:
                p50, p95, p99, mx = (float(c) for c in cells[1:5])
            except ValueError:
                continue
            rows[cells[0]] = {
                "p50_us": p50, "p95_us": p95, "p99_us": p99, "max_us": mx,
                # One synchronous round trip per message: msgs/ms = 1000/p50.
                "rt_throughput_msgs_per_ms": round(1000.0 / p50, 2) if p50 else 0.0,
            }
    return rows

def registry_lines(path):
    # "[registry] {...}" JSON lines from latency_percentiles --registry-dump.
    rows = {}
    if not os.path.exists(path):
        return rows
    with open(path) as f:
        for line in f:
            if not line.startswith("[registry] "):
                continue
            try:
                rec = json.loads(line[len("[registry] "):])
                rows[rec.pop("protocol")] = rec
            except (ValueError, KeyError):
                continue
    return rows

def payload_lines(path):
    # "[payload] {...}" JSON lines from latency_percentiles --payload=sweep:
    # one per (size, mode) run; mode is "loan" (in-place) or "copy"
    # (copy-through-slot baseline).
    rows = []
    if not os.path.exists(path):
        return rows
    with open(path) as f:
        for line in f:
            if not line.startswith("[payload] "):
                continue
            try:
                rows.append(json.loads(line[len("[payload] "):]))
            except ValueError:
                continue
    return rows

def pool_lines(path):
    # "[pool] {...}" JSON lines from fig11b_server_pool: one per worker
    # count, aggregate msgs/ms.
    rows = []
    if not os.path.exists(path):
        return rows
    with open(path) as f:
        for line in f:
            if not line.startswith("[pool] "):
                continue
            try:
                rows.append(json.loads(line[len("[pool] "):]))
            except ValueError:
                continue
    return rows

def engine_lines(path):
    # "[engine] {...}" JSON lines from latency_percentiles --engine=both:
    # one per queue engine (twolock/lockfree), bake-off numbers through the
    # MsgQueue facade. Validated per line; malformed lines are dropped.
    rows, dropped = {}, 0
    if not os.path.exists(path):
        return rows, dropped
    with open(path, errors="replace") as f:
        for line in f:
            if not line.startswith("[engine] "):
                continue
            try:
                rec = json.loads(line[len("[engine] "):])
                name = rec.pop("engine")
                for key in ("pair_ns", "pingpong_msgs_per_ms",
                            "mpsc_msgs_per_ms"):
                    if not isinstance(rec[key], (int, float)):
                        raise KeyError(key)
                rows[name] = rec
            except (ValueError, KeyError, TypeError):
                dropped += 1
    if dropped:
        print(f"warning: dropped {dropped} malformed [engine] line(s)",
              file=sys.stderr)
    return rows, dropped

def fanin_lines(path):
    # "[fanin] {...}" JSON lines from latency_percentiles --fanin=N: the
    # readiness-plane point (1 waitset worker, N channels). The run may
    # have crashed mid-bench, so each line is validated (parses AND has the
    # keys the trajectory folds) before it contributes; malformed lines are
    # counted and dropped.
    rows, dropped = [], 0
    if not os.path.exists(path):
        return rows, dropped
    with open(path, errors="replace") as f:
        for line in f:
            if not line.startswith("[fanin] "):
                continue
            try:
                rec = json.loads(line[len("[fanin] "):])
                if not isinstance(rec["channels"], int):
                    raise KeyError("channels")
                for key in ("bytes_per_s", "wk_per_msg", "msgs_per_ms"):
                    if not isinstance(rec[key], (int, float)):
                        raise KeyError(key)
                rows.append(rec)
            except (ValueError, KeyError, TypeError):
                dropped += 1
    if dropped:
        print(f"warning: dropped {dropped} malformed [fanin] line(s)",
              file=sys.stderr)
    return rows, dropped

def scenario_lines(path):
    # "[scenario] {...}" JSON lines from ulipc-perf: one per scenario run,
    # with nested SLO verdicts. The run may have crashed mid-scenario, so
    # every line is validated (parses AND has the keys we fold) before it
    # contributes; malformed/truncated lines are counted and dropped.
    rows, dropped = {}, 0
    if not os.path.exists(path):
        return rows, dropped
    with open(path, errors="replace") as f:
        for line in f:
            if not line.startswith("[scenario] "):
                continue
            try:
                rec = json.loads(line[len("[scenario] "):])
                name = rec["scenario"]
                slo = rec["slo"]
                if not isinstance(slo, dict) or "pass" not in slo:
                    raise KeyError("slo.pass")
                rows[name] = rec
            except (ValueError, KeyError, TypeError):
                dropped += 1
    if dropped:
        print(f"warning: dropped {dropped} malformed [scenario] line(s)",
              file=sys.stderr)
    return rows, dropped

def git(*args):
    try:
        return subprocess.check_output(("git",) + args, text=True).strip()
    except Exception:
        return "unknown"

doc = {
    "schema": "ulipc-bench-v1",
    "recorded_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "machine": {
        "hostname": platform.node(),
        "kernel": platform.release(),
        "arch": platform.machine(),
        "cpus": os.cpu_count(),
    },
    "git_rev": git("rev-parse", "--short", "HEAD"),
    "messages_per_protocol": messages,
    "micro_queue_ns": bench_json(os.path.join(tmp, "micro_queue.json")),
    "micro_sync_ns": bench_json(os.path.join(tmp, "micro_sync.json")),
    "latency_percentiles": latency_table(os.path.join(tmp, "latency.txt")),
}
batched = latency_table(os.path.join(tmp, "latency_batched.txt"))
if batched:
    doc["latency_percentiles_batched"] = batched
registry = registry_lines(os.path.join(tmp, "latency.txt"))
if registry:
    doc["registry"] = registry
registry_batched = registry_lines(os.path.join(tmp, "latency_batched.txt"))
if registry_batched:
    doc["registry_batched"] = registry_batched
payload = payload_lines(os.path.join(tmp, "payload.txt"))
if payload:
    doc["payload_plane"] = payload
pool = pool_lines(os.path.join(tmp, "pool.txt"))
if pool:
    doc["server_pool"] = pool
pool_lf = pool_lines(os.path.join(tmp, "pool_lockfree.txt"))
if pool_lf:
    doc["server_pool_lockfree"] = pool_lf
engines, _ = engine_lines(os.path.join(tmp, "engine.txt"))
if engines:
    doc["queue_engines"] = engines
fanin, _ = fanin_lines(os.path.join(tmp, "fanin.txt"))
if fanin:
    doc["fanin"] = fanin
scenarios, _ = scenario_lines(os.path.join(tmp, "scenarios.txt"))
if scenarios:
    doc["scenarios"] = scenarios

with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

# Trajectory: one compact line per snapshot, append-only.
point = {
    "recorded_utc": doc["recorded_utc"],
    "git_rev": doc["git_rev"],
    "cpus": doc["machine"]["cpus"],
    "rt_msgs_per_ms": {k: v["rt_throughput_msgs_per_ms"]
                       for k, v in doc["latency_percentiles"].items()},
}
if batched:
    point["rt_msgs_per_ms_batched"] = {
        k: v["rt_throughput_msgs_per_ms"] for k, v in batched.items()}
if registry_batched:
    point["wk_per_msg_batched"] = {
        k: round(v["wakeups"] / max(1, v["messages"]), 4)
        for k, v in registry_batched.items()}
    point["coal_per_msg_batched"] = {
        k: round(v["wakeups_coalesced"] / max(1, v["messages"]), 4)
        for k, v in registry_batched.items()}
if payload:
    point["payload_bytes_per_s"] = {
        f'{p["mode"]}@{p["bytes"]}': p["bytes_per_s"] for p in payload
        if "mode" in p and "bytes" in p
        and isinstance(p.get("bytes_per_s"), (int, float))}
if pool:
    point["pool_msgs_per_ms"] = {
        str(p["workers"]): p["msgs_per_ms"] for p in pool
        if "workers" in p and "msgs_per_ms" in p}
if pool_lf:
    point["pool_msgs_per_ms_lockfree"] = {
        str(p["workers"]): p["msgs_per_ms"] for p in pool_lf
        if "workers" in p and "msgs_per_ms" in p}
if engines:
    point["engine_pair_ns"] = {
        k: v["pair_ns"] for k, v in engines.items()}
    point["engine_pingpong_msgs_per_ms"] = {
        k: v["pingpong_msgs_per_ms"] for k, v in engines.items()}
    point["engine_mpsc_msgs_per_ms"] = {
        k: v["mpsc_msgs_per_ms"] for k, v in engines.items()}
if fanin:
    point["fanin_bytes_per_s"] = {
        str(p["channels"]): p["bytes_per_s"] for p in fanin}
    point["fanin_wk_per_msg"] = {
        str(p["channels"]): p["wk_per_msg"] for p in fanin}
    point["fanin_msgs_per_ms"] = {
        str(p["channels"]): p["msgs_per_ms"] for p in fanin}
if scenarios:
    point["scenario_slo"] = {
        name: bool(rec["slo"]["pass"]) for name, rec in scenarios.items()}
    point["scenario_msgs_per_ms"] = {
        name: rec["msgs_per_ms"] for name, rec in scenarios.items()
        if isinstance(rec.get("msgs_per_ms"), (int, float))}
traj = traj_arg or os.path.join(os.path.dirname(os.path.abspath(out)) or ".",
                                "BENCH_trajectory.jsonl")

# Append-only trajectory, hardened against crashed/partial runs:
#   1. the serialized point must round-trip through json before anything
#      touches the file (a bug here must not corrupt history);
#   2. if a previous run died mid-write and left the file without a
#      trailing newline, terminate that fragment first so it stays confined
#      to its own (invalid, hence skipped-by-readers) line;
#   3. the point goes out as ONE os.write on an O_APPEND fd — either the
#      whole line lands or (on a crash before the syscall) none of it.
line = json.dumps(point) + "\n"
json.loads(line)  # self-check: never append what a reader cannot parse
fd = os.open(traj, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
try:
    if os.fstat(fd).st_size > 0:
        with open(traj, "rb") as rf:
            rf.seek(-1, os.SEEK_END)
            if rf.read(1) != b"\n":
                os.write(fd, b"\n")
                print(f"warning: {traj} had a truncated last line; "
                      "terminated it", file=sys.stderr)
    os.write(fd, line.encode())
finally:
    os.close(fd)

print(f"wrote {out} and appended {traj}")
EOF
