// Figure 2: measured uniprocessor server throughput (messages/ms) for 1-6
// client processes — BSS vs SysV message queues, on the SGI (IRIX 6.2) and
// IBM (AIX 4.1) machine models.
//
// Paper claims reproduced as shape checks:
//  * SGI: BSS throughput *rises* with client count (fewer context switches
//    per message once the server batches its queue), ~119 us round trip and
//    ~2.5 yields per process per round trip at one client;
//  * IBM: the opposite trend — BSS rolls off from ~32 toward ~19 msgs/ms;
//  * user-level IPC beats kernel-mediated IPC by >1.5x (SGI) / ~1.8x (IBM).
#include <iostream>

#include "benchsupport/args.hpp"
#include "sweep_util.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(1'500);
  const std::vector<int> clients = client_range(1, 6);

  print_header("Figure 2", "uniprocessor BSS vs SYSV server throughput");

  int failed = 0;
  struct MachineCase {
    const char* label;
    Machine machine;
    bool expect_rising;
    double min_ratio;
  };
  const MachineCase cases[] = {
      {"SGI (IRIX 6.2)", Machine::sgi_indy(), true, 1.5},
      {"IBM (AIX 4.1)", Machine::ibm_p4(), false, 1.5},
  };

  for (const auto& mc : cases) {
    SimExperimentConfig cfg;
    cfg.machine = mc.machine;
    cfg.policy = mc.machine.default_policy;
    cfg.messages_per_client = messages;

    cfg.protocol = ProtocolKind::kBss;
    const std::vector<double> bss = sim_sweep(cfg, clients);
    cfg.protocol = ProtocolKind::kSysv;
    const std::vector<double> sysv = sim_sweep(cfg, clients);

    FigureReport report("Figure 2", std::string("server throughput, ") +
                                         mc.label,
                        "clients", "msgs/ms");
    fill_series(report.add_series("BSS"), clients, bss);
    fill_series(report.add_series("SYSV"), clients, sysv);

    if (mc.expect_rising) {
      report.check("BSS throughput rises with client count",
                   mostly_increasing(bss, 0.08));
      // Figure 2a: ~119 us round trip at one client.
      const double rt_us = 1'000.0 / bss.front();
      report.check("~119 us single-client round trip",
                   rt_us > 95.0 && rt_us < 145.0,
                   "measured " + TextTable::num(rt_us, 1) + " us");
    } else {
      report.check("BSS throughput falls with client count",
                   mostly_decreasing(bss, 0.08));
      report.check("single-client throughput ~32 msgs/ms",
                   bss.front() > 25.0 && bss.front() < 40.0,
                   "measured " + TextTable::num(bss.front(), 1));
      report.check("rolls off toward ~19 msgs/ms at 6 clients",
                   bss.back() > 13.0 && bss.back() < 24.0,
                   "measured " + TextTable::num(bss.back(), 1));
    }
    report.check("BSS dominates SYSV by >=" + TextTable::num(mc.min_ratio, 1) +
                     "x at one client",
                 bss.front() >= sysv.front() * mc.min_ratio,
                 "ratio " + TextTable::num(bss.front() / sysv.front(), 2));
    if (mc.expect_rising) {
      report.check("SYSV is the floor at every client count",
                   dominates(bss, sysv, 1.0));
    } else {
      // Figure 2b: "the performance of System V IPC does not roll off as
      // quickly as the user-level IPC protocol" — the curves converge.
      const double gap1 = bss.front() / sysv.front();
      const double gap6 = bss.back() / sysv.back();
      report.check("SYSV does not roll off as quickly as BSS (gap narrows)",
                   gap6 < gap1,
                   "ratio " + TextTable::num(gap1, 2) + " -> " +
                       TextTable::num(gap6, 2));
    }
    failed += report.render(std::cout);
  }

  // The paper's getrusage-based explanation: with more clients the server
  // performs fewer voluntary switches per message.
  {
    SimExperimentConfig cfg;
    cfg.machine = Machine::sgi_indy();
    cfg.protocol = ProtocolKind::kBss;
    cfg.messages_per_client = messages;
    cfg.clients = 1;
    const auto r1 = run_sim_experiment(cfg);
    cfg.clients = 6;
    const auto r6 = run_sim_experiment(cfg);
    const double spm1 = static_cast<double>(r1.server_stats.voluntary_switches) /
                        static_cast<double>(r1.server.echo_messages);
    const double spm6 = static_cast<double>(r6.server_stats.voluntary_switches) /
                        static_cast<double>(r6.server.echo_messages);
    std::cout << "server voluntary switches per message: 1 client = "
              << TextTable::num(spm1, 3) << ", 6 clients = "
              << TextTable::num(spm6, 3) << "\n";
    const bool ok = spm6 < spm1;
    std::cout << (ok ? "[shape OK]       " : "[shape MISMATCH] ")
              << "server batches: fewer switches per message with more "
                 "clients (paper 2.2 getrusage analysis)\n";
    if (!ok) ++failed;
  }

  return failed;
}
