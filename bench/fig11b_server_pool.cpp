// Figure 11b: multiprocessor scale-out with the NATIVE sharded server pool
// (companion to fig11_multiprocessor, which models the paper's 8-CPU
// Challenge in the simulator).
//
// The paper scales its server by running one server per processor; our
// ServerPool is that architecture on real hardware — W workers, each owning
// one receive-queue shard, clients spread by least-loaded placement.
// Requests carry a fixed compute cost (--work, default 5 us) so the server
// side is the bottleneck and adding workers is what buys throughput.
//
// Emits one machine-readable line per point for record_bench.sh:
//   [pool] {"workers":W,"clients":N,"msgs_per_ms":X,"cpus":C}
//
// The scaling shape checks (aggregate throughput must grow with workers,
// >= 2.5x at 4 workers) only make sense with >= 4 CPUs; on smaller hosts
// the numbers are still printed and recorded, the checks report as skipped.
#include <algorithm>
#include <iostream>
#include <vector>

#include "benchsupport/args.hpp"
#include "benchsupport/figure.hpp"
#include "common/affinity.hpp"
#include "common/table.hpp"
#include "protocols/bsls.hpp"
#include "runtime/server_pool.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

using namespace ulipc;
using namespace ulipc::bench;

namespace {

struct PoolPoint {
  double msgs_per_ms = 0.0;
  std::uint64_t steal_passes = 0;
  std::uint64_t stolen_messages = 0;
  bool ok = false;
};

PoolPoint run_pool(std::uint32_t workers, std::uint32_t clients,
                   std::uint64_t messages, double work_us) {
  ShmChannel::Config cfg;
  cfg.max_clients = clients;
  cfg.queue_capacity = 256;
  cfg.shards = workers;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);

  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* out = new (out_region.base()) PoolPoint();

  NativePlatform::Config pcfg;
  pcfg.multiprocessor = cpu_count() > 1;

  ChildProcess server = ChildProcess::spawn([&] {
    ServerPoolOptions opts;
    opts.expected_clients = clients;
    const ServerPoolResult r =
        run_server_pool(channel, Bsls<NativePlatform>(20), opts, pcfg,
                        /*pin_workers=*/true);
    out->msgs_per_ms = r.throughput_msgs_per_ms();
    out->steal_passes = r.steal_passes;
    out->stolen_messages = r.stolen_messages;
    return r.echo_messages ==
                   static_cast<std::uint64_t>(clients) * messages
               ? 0
               : 1;
  });

  std::vector<ChildProcess> client_procs;
  for (std::uint32_t i = 0; i < clients; ++i) {
    client_procs.push_back(ChildProcess::spawn([&, i] {
      // Workers own CPUs [0, W); clients share what is left (wrapped).
      pin_to_cpu_wrapped(static_cast<int>(workers + i));
      NativePlatform plat(pcfg);
      Bsls<NativePlatform> proto(20);
      pool_client_connect(plat, proto, channel, i,
                          PlacementPolicy::kLeastLoaded);
      const std::uint64_t ok = pool_client_echo_loop(plat, proto, channel, i,
                                                     messages, work_us);
      pool_client_disconnect(plat, proto, channel, i);
      return ok == messages ? 0 : 1;
    }));
  }

  bool ok = true;
  for (auto& c : client_procs) ok &= (c.join() == 0);
  ok &= (server.join() == 0);
  out->ok = ok;
  return *out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(2'000);
  const double work_us = args.value_or("work", 5.0);
  const auto clients = static_cast<std::uint32_t>(
      args.value_or("clients", std::int64_t{8}));
  const std::vector<std::uint32_t> worker_counts = {1, 2, 4};
  const int cpus = cpu_count();

  std::cout << "Figure 11b — sharded server pool scale-out (native, " << cpus
            << " CPUs, " << clients << " clients, work=" << work_us
            << " us)\n\n";

  FigureReport report("Figure 11b", "pool throughput vs worker count",
                      "workers", "msgs/ms");
  Series& series = report.add_series("BSLS pool, least-loaded");

  std::vector<PoolPoint> points;
  for (const std::uint32_t w : worker_counts) {
    points.push_back(run_pool(w, clients, messages, work_us));
    series.x.push_back(static_cast<int>(w));
    series.y.push_back(points.back().msgs_per_ms);
    std::cout << "[pool] {\"workers\":" << w << ",\"clients\":" << clients
              << ",\"msgs_per_ms\":"
              << TextTable::num(points.back().msgs_per_ms, 2)
              << ",\"cpus\":" << cpus << "}\n";
  }
  std::cout << "\n";

  report.check("every exchange completes and verifies at every width",
               std::all_of(points.begin(), points.end(),
                           [](const PoolPoint& p) {
                             return p.ok && p.msgs_per_ms > 0.0;
                           }));

  // The scale-out claims need real parallelism: workers pinned to distinct
  // CPUs. On narrower hosts the pool still has to be *correct* (checked
  // above), but more workers on one core cannot go faster.
  if (cpus >= 4) {
    const double base = points[0].msgs_per_ms;
    report.check("2 workers beat 1 (shards actually run in parallel)",
                 points[1].msgs_per_ms > base * 1.3,
                 TextTable::num(points[1].msgs_per_ms / base, 2) + "x");
    report.check("4 workers reach >= 2.5x aggregate throughput of 1",
                 points[2].msgs_per_ms >= base * 2.5,
                 TextTable::num(points[2].msgs_per_ms / base, 2) + "x");
  } else {
    std::cout << "scaling shape checks skipped: " << cpus
              << " CPU(s) < 4 (pool cannot outrun its own host)\n\n";
  }

  return report.render(std::cout);
}
