// Figure 8: Both Sides Wait and Yield — hand-off suggestions via
// busy_wait/yield around the BSW blocking protocol.
//
// Paper: "the busy_wait calls are effective for one or two clients, but ...
// the performance degrades as concurrency is increased further. The reason
// is that the yield contains no hint about which process should be favored."
// Under fixed-priority scheduling BSWY "basically matches the performance of
// the busy-waiting BSS algorithm under the same scheduling policy".
#include <iostream>

#include "benchsupport/args.hpp"
#include "sweep_util.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(1'500);
  const std::vector<int> clients = client_range(1, 6);

  print_header("Figure 8", "BSWY under default vs fixed-priority scheduling");

  int failed = 0;
  for (const auto& [label, machine] :
       {std::pair<const char*, Machine>{"SGI (IRIX 6.2)", Machine::sgi_indy()},
        std::pair<const char*, Machine>{"IBM (AIX 4.1)", Machine::ibm_p4()}}) {
    SimExperimentConfig cfg;
    cfg.machine = machine;
    cfg.messages_per_client = messages;

    cfg.policy = PolicyKind::kAging;
    cfg.protocol = ProtocolKind::kBswy;
    const std::vector<double> bswy = sim_sweep(cfg, clients);
    cfg.protocol = ProtocolKind::kBsw;
    const std::vector<double> bsw = sim_sweep(cfg, clients);
    cfg.protocol = ProtocolKind::kBss;
    const std::vector<double> bss = sim_sweep(cfg, clients);

    cfg.policy = PolicyKind::kFixed;
    cfg.protocol = ProtocolKind::kBswy;
    const std::vector<double> bswy_fixed = sim_sweep(cfg, clients);
    cfg.protocol = ProtocolKind::kBss;
    const std::vector<double> bss_fixed = sim_sweep(cfg, clients);

    FigureReport report("Figure 8", std::string("BSWY throughput, ") + label,
                        "clients", "msgs/ms");
    fill_series(report.add_series("BSWY fixed-priority"), clients, bswy_fixed);
    fill_series(report.add_series("BSWY default"), clients, bswy);
    fill_series(report.add_series("BSW default"), clients, bsw);

    report.check("hand-off hints help at one client (BSWY > BSW)",
                 bswy.front() > bsw.front() * 1.1,
                 "BSWY " + TextTable::num(bswy.front(), 2) + " vs BSW " +
                     TextTable::num(bsw.front(), 2));
    report.check("hand-off hints still help at two clients",
                 bswy[1] >= bsw[1]);
    report.check(
        "default-policy BSWY degrades: 6-client gain over BSW vanishes",
        bswy.back() <= bsw.back() * 1.1,
        "BSWY " + TextTable::num(bswy.back(), 2) + " vs BSW " +
            TextTable::num(bsw.back(), 2));
    report.check("BSWY never reaches default-policy BSS beyond 2 clients",
                 bswy[3] < bss[3] && bswy[5] < bss[5]);
    // Figure 8's dotted curve.
    bool matches_bss_fixed = true;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const double ratio = bswy_fixed[i] / bss_fixed[i];
      if (ratio < 0.85 || ratio > 1.15) matches_bss_fixed = false;
    }
    report.check("fixed-priority BSWY matches fixed-priority BSS (+-15%)",
                 matches_bss_fixed);
    failed += report.render(std::cout);
  }
  return failed;
}
