// Figure 10: Both Sides Limited Spin — sensitivity to MAX_SPIN on a
// uniprocessor.
//
// Paper: "performance generally improves as the number of tries is
// increased. ... At a MAX_SPIN value of 20, a single client only blocks 3%
// of the time, and gets an answer back within 2 iterations on average. Even
// with six clients, the numbers rise to: 10% of the loops fall-through; and
// 4 iterations of the loop are executed on average."
#include <iostream>

#include "benchsupport/args.hpp"
#include "sweep_util.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(1'500);
  const std::vector<int> clients = client_range(1, 6);
  const std::vector<std::uint32_t> max_spins = {1, 5, 10, 20};

  print_header("Figure 10", "BSLS sensitivity to MAX_SPIN (uniprocessor)");

  SimExperimentConfig cfg;
  cfg.machine = Machine::sgi_indy();
  cfg.policy = cfg.machine.default_policy;
  cfg.messages_per_client = messages;

  FigureReport report("Figure 10", "BSLS throughput vs MAX_SPIN, SGI model",
                      "clients", "msgs/ms");
  std::vector<std::vector<double>> curves;
  for (const std::uint32_t spin : max_spins) {
    cfg.protocol = ProtocolKind::kBslsFixed;  // the sweep needs the fixed bound
    cfg.max_spin = spin;
    curves.push_back(sim_sweep(cfg, clients));
    fill_series(report.add_series("MAX_SPIN=" + std::to_string(spin)),
                clients, curves.back());
  }
  cfg.protocol = ProtocolKind::kBss;
  const std::vector<double> bss = sim_sweep(cfg, clients);
  fill_series(report.add_series("BSS (reference)"), clients, bss);

  // Larger MAX_SPIN must not hurt: every curve >= the MAX_SPIN=1 curve.
  report.check("throughput improves (weakly) as MAX_SPIN grows",
               dominates(curves.back(), curves.front(), 0.98));
  // With enough spinning the protocol approaches BSS.
  bool near_bss = true;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (curves.back()[i] < bss[i] * 0.75) near_bss = false;
  }
  report.check("MAX_SPIN=20 approaches BSS performance", near_bss);
  int failed = report.render(std::cout);

  // The paper's fall-through statistics at MAX_SPIN=20.
  std::cout << "bounded-spin statistics at MAX_SPIN=20 (client side):\n";
  cfg.protocol = ProtocolKind::kBslsFixed;  // the sweep needs the fixed bound
  cfg.max_spin = 20;
  for (const int n : {1, 6}) {
    cfg.clients = static_cast<std::uint32_t>(n);
    const auto r = run_sim_experiment(cfg);
    const auto& c = r.client_counters_total;
    const double fall = c.spin_entries
                            ? 100.0 * static_cast<double>(c.spin_fallthroughs) /
                                  static_cast<double>(c.spin_entries)
                            : 0.0;
    const double avg_iters =
        c.spin_entries ? static_cast<double>(c.spin_iters) /
                             static_cast<double>(c.spin_entries)
                       : 0.0;
    std::cout << "  " << n << " client(s): fall-through "
              << TextTable::num(fall, 1) << "% (paper: " << (n == 1 ? 3 : 10)
              << "%), avg iterations " << TextTable::num(avg_iters, 2)
              << " (paper: " << (n == 1 ? 2 : 4) << ")\n";
    const bool ok = (n == 1) ? (fall <= 6.0 && avg_iters <= 4.0)
                             : (fall <= 15.0);
    std::cout << (ok ? "[shape OK]       " : "[shape MISMATCH] ")
              << "fall-through rate in the paper's regime\n";
    if (!ok) ++failed;
  }
  return failed;
}
