#include <algorithm>
// Ablation D: asynchronous IPC — pipeline-window sweep, native.
//
// The paper's introduction argues asynchronous IPC is where user-level
// queues shine: "a client process can enqueue multiple asynchronous
// messages ... the server can handle requests and respond without invoking
// kernel services until all pending requests are processed." This bench
// quantifies that on real processes: per-task cost as the number of
// in-flight requests grows from 1 (synchronous RPC) upward.
#include <iostream>
#include <vector>

#include "benchsupport/args.hpp"
#include "benchsupport/figure.hpp"
#include "common/clock.hpp"
#include "common/table.hpp"
#include "protocols/bsls.hpp"
#include "protocols/channel.hpp"
#include "runtime/native_platform.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

using namespace ulipc;
using namespace ulipc::bench;

namespace {

struct WindowResult {
  double us_per_task = 0.0;
  std::uint64_t client_blocks = 0;
  std::uint64_t ok = 0;
  double wakeups_per_task = 0.0;  // client V() syscalls per task
};

WindowResult run_window(std::uint64_t tasks, std::uint64_t window) {
  ShmChannel::Config cfg;
  cfg.max_clients = 1;
  cfg.queue_capacity = 512;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);

  struct Shared {
    double us_per_task;
    std::uint64_t blocks;
    std::uint64_t ok;
    std::uint64_t wakeups;
  };
  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* out = new (out_region.base()) Shared{};

  ChildProcess server = ChildProcess::spawn([&] {
    NativePlatform plat;
    Bsls<NativePlatform> proto(20);
    NativeEndpoint& srv = channel.server_endpoint();
    for (std::uint64_t i = 0; i < tasks; ++i) {
      Message m;
      proto.receive(plat, srv, &m);
      proto.reply(plat, channel.client_endpoint(0), m);
    }
    return 0;
  });

  ChildProcess client = ChildProcess::spawn([&] {
    NativePlatform plat;
    NativeEndpoint& srv = channel.server_endpoint();
    NativeEndpoint& mine = channel.client_endpoint(0);
    Stopwatch timer;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t ok = 0;
    Message burst[128];
    while (received < tasks) {
      // Fill the window with one batched enqueue: one queue pass and at
      // most one wake-up for the whole burst (the coalescing under test).
      std::uint32_t n = 0;
      while (sent + n < tasks && (sent + n) - received < window && n < 128) {
        burst[n] = Message(Op::kEcho, 0, static_cast<double>(sent + n));
        ++n;
      }
      if (n == 1) {
        async_send(plat, srv, burst[0]);
      } else if (n > 1) {
        async_send_batch(plat, srv, burst, n);
      }
      sent += n;
      const Message ans = collect_reply(plat, mine);
      if (ans.opcode == Op::kEcho) ++ok;
      ++received;
    }
    out->us_per_task = timer.elapsed_us() / static_cast<double>(tasks);
    out->blocks = plat.counters().blocks;
    out->wakeups = plat.counters().wakeups;
    out->ok = ok;
    return 0;
  });

  client.join();
  server.join();
  return WindowResult{out->us_per_task, out->blocks, out->ok,
                      static_cast<double>(out->wakeups) /
                          static_cast<double>(tasks)};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t tasks = args.messages(20'000);
  const std::vector<std::uint64_t> windows = {1, 2, 4, 8, 16, 32, 64, 128};

  std::cout << "Ablation D — asynchronous pipeline window sweep (native, "
               "echo server)\n\n";

  FigureReport report("Ablation D", "per-task latency vs in-flight window",
                      "window", "us/task");
  Series& series = report.add_series("us per task");
  std::vector<double> costs;
  TextTable table(
      {"window", "us/task", "client sleeps", "wk/task", "verified"});
  for (const std::uint64_t w : windows) {
    const WindowResult r = run_window(tasks, w);
    costs.push_back(r.us_per_task);
    series.x.push_back(static_cast<double>(w));
    series.y.push_back(r.us_per_task);
    table.add_row({std::to_string(w), TextTable::num(r.us_per_task, 2),
                   std::to_string(r.client_blocks),
                   TextTable::num(r.wakeups_per_task, 3),
                   std::to_string(r.ok) + "/" + std::to_string(tasks)});
  }
  table.render(std::cout);
  std::cout << "\n";

  const double best = *std::min_element(costs.begin(), costs.end());
  report.check("pipelining beats synchronous RPC (window 1) by >=2x",
               best * 2.0 <= costs.front(),
               TextTable::num(costs.front(), 2) + " -> " +
                   TextTable::num(best, 2) + " us/task");
  report.check("returns diminish: window 128 within 2x of the best",
               costs.back() <= best * 2.0);
  return report.render(std::cout);
}
