// Figure 11: multiprocessor server throughput on the 8-CPU SGI Challenge
// model.
//
// Paper: "System V Message Queues perform the worst and are unable to scale.
// The best performance is for the BSS algorithm, whose throughput increases
// rapidly until the server saturates, and then stays stable. The Both Sides
// Limited Spin algorithms have similar performance to BSS up to a point, and
// then performance degrades rapidly" — the positive-feedback collapse: one
// client exceeding MAX_SPIN forces a wake-up, which loads the server, which
// pushes more clients past MAX_SPIN.
//
// Per DESIGN.md, requests carry a fixed compute cost (kCompute, 25 us) so
// the server saturates within the plotted range, standing in for the
// Challenge-era coherence overheads the cost model cannot observe.
#include <algorithm>
#include <iostream>

#include "benchsupport/args.hpp"
#include "sweep_util.hpp"

using namespace ulipc;
using namespace ulipc::bench;
using namespace ulipc::sim;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::uint64_t messages = args.messages(800);
  const double work_us = args.value_or("work", 25.0);
  const std::vector<int> clients = client_range(1, 12);

  print_header("Figure 11",
               "multiprocessor (8-CPU Challenge model) server throughput");

  SimExperimentConfig cfg;
  cfg.machine = Machine::sgi_challenge(8);
  cfg.policy = cfg.machine.default_policy;
  cfg.messages_per_client = messages;
  cfg.server_work_us = work_us;

  FigureReport report("Figure 11", "BSS vs BSLS vs SYSV, 8 CPUs", "clients",
                      "msgs/ms");

  cfg.protocol = ProtocolKind::kBss;
  const std::vector<double> bss = sim_sweep(cfg, clients);
  fill_series(report.add_series("BSS"), clients, bss);

  cfg.protocol = ProtocolKind::kBslsFixed;  // paper-faithful MAX_SPIN
  std::vector<std::vector<double>> bsls;
  const std::vector<std::uint32_t> max_spins = {5, 10, 20};
  for (const std::uint32_t spin : max_spins) {
    cfg.max_spin = spin;
    bsls.push_back(sim_sweep(cfg, clients));
    fill_series(report.add_series("BSLS MAX_SPIN=" + std::to_string(spin)),
                clients, bsls.back());
  }

  cfg.protocol = ProtocolKind::kSysv;
  const std::vector<double> sysv = sim_sweep(cfg, clients);
  fill_series(report.add_series("SYSV"), clients, sysv);

  // --- shape checks ---
  const double bss_peak = *std::max_element(bss.begin(), bss.end());
  report.check("BSS rises rapidly then stays roughly stable after saturation",
               bss[3] > bss[0] * 1.5 && bss.back() > bss_peak * 0.6,
               "peak " + TextTable::num(bss_peak, 1) + ", tail " +
                   TextTable::num(bss.back(), 1));
  report.check("SYSV is worst pre-collapse and does not scale",
               sysv[2] < bss[2] && sysv.back() < bss_peak * 0.6);

  // Each BSLS curve: tracks BSS early, then collapses.
  for (std::size_t s = 0; s < max_spins.size(); ++s) {
    const auto& curve = bsls[s];
    report.check(
        "BSLS MAX_SPIN=" + std::to_string(max_spins[s]) +
            " tracks BSS at low client counts",
        curve[1] > bss[1] * 0.8);
    const double tail_ratio = curve.back() / bss.back();
    report.check("BSLS MAX_SPIN=" + std::to_string(max_spins[s]) +
                     " collapses under load (positive feedback)",
                 tail_ratio < 0.75,
                 "tail at " + TextTable::num(100.0 * tail_ratio, 0) +
                     "% of BSS");
  }
  // Smaller MAX_SPIN collapses no later than larger MAX_SPIN.
  auto collapse_point = [&](const std::vector<double>& curve) {
    for (std::size_t i = 1; i < curve.size(); ++i) {
      if (curve[i] < curve[i - 1] * 0.6) return static_cast<int>(i + 1);
    }
    return static_cast<int>(curve.size() + 1);
  };
  report.check("smaller MAX_SPIN collapses earlier (or equal)",
               collapse_point(bsls[0]) <= collapse_point(bsls[2]),
               "MAX_SPIN=5 at n=" + std::to_string(collapse_point(bsls[0])) +
                   ", MAX_SPIN=20 at n=" +
                   std::to_string(collapse_point(bsls[2])));

  const int failed = report.render(std::cout);

  // Show the feedback mechanism: server wake-ups per message before/after a
  // collapse point for MAX_SPIN=5.
  cfg.protocol = ProtocolKind::kBslsFixed;  // paper-faithful MAX_SPIN
  cfg.max_spin = 5;
  for (const int n : {3, 8}) {
    cfg.clients = static_cast<std::uint32_t>(n);
    const auto r = run_sim_experiment(cfg);
    const double wakes_per_msg =
        static_cast<double>(r.server_counters.wakeups) /
        static_cast<double>(r.server.echo_messages);
    std::cout << "  MAX_SPIN=5, " << n << " clients: server wake-ups/message = "
              << TextTable::num(wakes_per_msg, 3) << "\n";
  }
  return failed;
}
