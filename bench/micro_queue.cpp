// google-benchmark microbenchmarks for the queue substrate: the Michael &
// Scott two-lock queue, the SPSC ring, and the node pool, uncontended and
// under cross-thread contention.
#include <benchmark/benchmark.h>

#include <thread>

#include "queue/ms_two_lock_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "shm/shm_region.hpp"

namespace {

using namespace ulipc;

struct QueueFixture {
  QueueFixture()
      : region(ShmRegion::create_anonymous(8 * 1024 * 1024)),
        arena(ShmArena::format(region)),
        pool(NodePool::create(arena, 4096)),
        queue(TwoLockQueue::create(arena, pool)) {}

  ShmRegion region;
  ShmArena arena;
  NodePool* pool;
  TwoLockQueue* queue;
};

void BM_TwoLockEnqueueDequeuePair(benchmark::State& state) {
  QueueFixture f;
  const Message msg(Op::kEcho, 0, 1.0);
  Message out;
  for (auto _ : state) {
    f.queue->enqueue(msg);
    f.queue->dequeue(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLockEnqueueDequeuePair);

void BM_TwoLockEnqueueOnly(benchmark::State& state) {
  QueueFixture f;
  const Message msg(Op::kEcho, 0, 1.0);
  Message out;
  std::int64_t n = 0;
  for (auto _ : state) {
    if (!f.queue->enqueue(msg)) {
      state.PauseTiming();
      while (f.queue->dequeue(&out)) {
      }
      state.ResumeTiming();
    }
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_TwoLockEnqueueOnly);

void BM_TwoLockEmptyProbe(benchmark::State& state) {
  QueueFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.queue->empty());
  }
}
BENCHMARK(BM_TwoLockEmptyProbe);

void BM_TwoLockFailedDequeue(benchmark::State& state) {
  // The cost of the consumer's C.1/C.3 checks on an empty queue.
  QueueFixture f;
  Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.queue->dequeue(&out));
  }
}
BENCHMARK(BM_TwoLockFailedDequeue);

void BM_TwoLockContendedPingPong(benchmark::State& state) {
  // Two roles on two threads: producer enqueues, consumer dequeues. Measures
  // per-message cost under head/tail lock separation.
  QueueFixture f;
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    const Message msg(Op::kEcho, 0, 1.0);
    while (!stop.load(std::memory_order_relaxed)) {
      f.queue->enqueue(msg);
    }
  });
  Message out;
  std::int64_t received = 0;
  for (auto _ : state) {
    while (!f.queue->dequeue(&out)) {
    }
    ++received;
  }
  stop.store(true);
  producer.join();
  while (f.queue->dequeue(&out)) {
  }
  state.SetItemsProcessed(received);
}
BENCHMARK(BM_TwoLockContendedPingPong)->UseRealTime();

void BM_SpscRingPair(benchmark::State& state) {
  ShmRegion region = ShmRegion::create_anonymous(1 << 20);
  ShmArena arena = ShmArena::format(region);
  SpscRing* ring = SpscRing::create(arena, 1024);
  const Message msg(Op::kEcho, 0, 1.0);
  Message out;
  for (auto _ : state) {
    ring->enqueue(msg);
    ring->dequeue(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPair);

void BM_NodePoolAllocRelease(benchmark::State& state) {
  ShmRegion region = ShmRegion::create_anonymous(1 << 20);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(arena, 1024);
  for (auto _ : state) {
    const ShmIndex idx = pool->allocate();
    benchmark::DoNotOptimize(idx);
    pool->release(idx);
  }
}
BENCHMARK(BM_NodePoolAllocRelease);

}  // namespace

BENCHMARK_MAIN();
