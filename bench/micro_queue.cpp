// google-benchmark microbenchmarks for the queue substrate: both MsgQueue
// engines (the Michael & Scott two-lock queue and the lock-free M&S
// queue, measured through the dispatching facade so engine numbers stay
// comparable with what channels actually pay), the SPSC ring, and the
// node pool, uncontended and under cross-thread contention.
#include <benchmark/benchmark.h>

#include <thread>

#include "queue/msg_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "shm/shm_region.hpp"

namespace {

using namespace ulipc;

struct QueueFixture {
  explicit QueueFixture(QueueEngine engine)
      : region(ShmRegion::create_anonymous(8 * 1024 * 1024)),
        arena(ShmArena::format(region)),
        pool(NodePool::create(arena, 4096)),
        queue(MsgQueue::create(arena, pool, 0, engine)) {}

  ShmRegion region;
  ShmArena arena;
  NodePool* pool;
  MsgQueue* queue;
};

// Engine axis: each benchmark body is shared and registered once per
// engine under an explicit name — the historical BM_TwoLock* series keeps
// its exact names for bench_compare.py, and the BM_LockFree* twins land
// next to them (an Arg() would suffix names with "/0" and break matching).
void pair_body(benchmark::State& state, QueueEngine engine) {
  QueueFixture f(engine);
  const Message msg(Op::kEcho, 0, 1.0);
  Message out;
  for (auto _ : state) {
    f.queue->enqueue(msg);
    f.queue->dequeue(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_TwoLockEnqueueDequeuePair(benchmark::State& state) {
  pair_body(state, QueueEngine::kTwoLock);
}
void BM_LockFreeEnqueueDequeuePair(benchmark::State& state) {
  pair_body(state, QueueEngine::kLockFree);
}
BENCHMARK(BM_TwoLockEnqueueDequeuePair);
BENCHMARK(BM_LockFreeEnqueueDequeuePair);

void enqueue_only_body(benchmark::State& state, QueueEngine engine) {
  QueueFixture f(engine);
  const Message msg(Op::kEcho, 0, 1.0);
  Message out;
  std::int64_t n = 0;
  for (auto _ : state) {
    if (!f.queue->enqueue(msg)) {
      state.PauseTiming();
      while (f.queue->dequeue(&out)) {
      }
      state.ResumeTiming();
    }
    ++n;
  }
  state.SetItemsProcessed(n);
}
void BM_TwoLockEnqueueOnly(benchmark::State& state) {
  enqueue_only_body(state, QueueEngine::kTwoLock);
}
void BM_LockFreeEnqueueOnly(benchmark::State& state) {
  enqueue_only_body(state, QueueEngine::kLockFree);
}
BENCHMARK(BM_TwoLockEnqueueOnly);
BENCHMARK(BM_LockFreeEnqueueOnly);

void empty_probe_body(benchmark::State& state, QueueEngine engine) {
  QueueFixture f(engine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.queue->empty());
  }
}
void BM_TwoLockEmptyProbe(benchmark::State& state) {
  empty_probe_body(state, QueueEngine::kTwoLock);
}
void BM_LockFreeEmptyProbe(benchmark::State& state) {
  empty_probe_body(state, QueueEngine::kLockFree);
}
BENCHMARK(BM_TwoLockEmptyProbe);
BENCHMARK(BM_LockFreeEmptyProbe);

void failed_dequeue_body(benchmark::State& state, QueueEngine engine) {
  // The cost of the consumer's empty-queue checks (the two-lock engine's
  // C.1/C.3 lock round trip vs the lock-free engine's loads-only probe).
  QueueFixture f(engine);
  Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.queue->dequeue(&out));
  }
}
void BM_TwoLockFailedDequeue(benchmark::State& state) {
  failed_dequeue_body(state, QueueEngine::kTwoLock);
}
void BM_LockFreeFailedDequeue(benchmark::State& state) {
  failed_dequeue_body(state, QueueEngine::kLockFree);
}
BENCHMARK(BM_TwoLockFailedDequeue);
BENCHMARK(BM_LockFreeFailedDequeue);

void contended_pingpong_body(benchmark::State& state, QueueEngine engine) {
  // Two roles on two threads: producer enqueues, consumer dequeues.
  // Measures per-message cost under head/tail lock separation (two-lock)
  // vs CAS retry + helping (lock-free).
  QueueFixture f(engine);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    const Message msg(Op::kEcho, 0, 1.0);
    while (!stop.load(std::memory_order_relaxed)) {
      f.queue->enqueue(msg);
    }
  });
  Message out;
  std::int64_t received = 0;
  for (auto _ : state) {
    while (!f.queue->dequeue(&out)) {
    }
    ++received;
  }
  stop.store(true);
  producer.join();
  while (f.queue->dequeue(&out)) {
  }
  state.SetItemsProcessed(received);
}
void BM_TwoLockContendedPingPong(benchmark::State& state) {
  contended_pingpong_body(state, QueueEngine::kTwoLock);
}
void BM_LockFreeContendedPingPong(benchmark::State& state) {
  contended_pingpong_body(state, QueueEngine::kLockFree);
}
BENCHMARK(BM_TwoLockContendedPingPong)->UseRealTime();
BENCHMARK(BM_LockFreeContendedPingPong)->UseRealTime();

void BM_SpscRingPair(benchmark::State& state) {
  ShmRegion region = ShmRegion::create_anonymous(1 << 20);
  ShmArena arena = ShmArena::format(region);
  SpscRing* ring = SpscRing::create(arena, 1024);
  const Message msg(Op::kEcho, 0, 1.0);
  Message out;
  for (auto _ : state) {
    ring->enqueue(msg);
    ring->dequeue(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPair);

void BM_NodePoolAllocRelease(benchmark::State& state) {
  ShmRegion region = ShmRegion::create_anonymous(1 << 20);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(arena, 1024);
  for (auto _ : state) {
    const ShmIndex idx = pool->allocate();
    benchmark::DoNotOptimize(idx);
    pool->release(idx);
  }
}
BENCHMARK(BM_NodePoolAllocRelease);

}  // namespace

BENCHMARK_MAIN();
