#!/bin/sh
# Formatting gate: clang-format --dry-run -Werror over every tracked C++
# source. CI runs this with a pinned major (CLANG_FORMAT=clang-format-18);
# locally it uses whatever `clang-format` is on PATH, and — because many dev
# boxes (and the repro container) have none — SKIPS with exit 0 rather than
# failing, so the script is safe to call from any hook or wrapper.
#
#   usage: tools/format_check.sh [--fix]
#
# --fix rewrites the files in place instead of checking.
set -u

CF="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CF" >/dev/null 2>&1; then
  echo "format_check: '$CF' not found; skipping format check" >&2
  exit 0
fi

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

MODE="--dry-run -Werror"
if [ "${1:-}" = "--fix" ]; then
  MODE="-i"
fi

# shellcheck disable=SC2086
git ls-files '*.cpp' '*.hpp' | xargs -r "$CF" $MODE
code=$?
if [ "$code" -ne 0 ]; then
  echo "format_check: formatting differs; run 'tools/format_check.sh --fix'" >&2
fi
exit "$code"
