#!/usr/bin/env bash
# End-to-end observability smoke test (wired into ctest as `obs_smoke`).
#
#   1. run the quickstart echo server/client pair on a named shm channel,
#      with MAX_SPIN=0 so every receive exercises the full sleep/wake
#      protocol (trace rings fill with sleep/wake pairs);
#   2. attach `ulipc-stat` to the still-mapped region: table, JSON (shape-
#      checked), and a Chrome trace_event export;
#   3. validate the export with python3: well-formed JSON, and — when the
#      binary was built with ULIPC_TRACE=ON — at least one sleep span and
#      one wakeup-sent instant.
#
# usage: obs_smoke.sh <quickstart-binary> <ulipc-stat-binary>
set -euo pipefail

QUICKSTART=${1:?quickstart binary}
STAT=${2:?ulipc-stat binary}

WORK=$(mktemp -d)
SHM_NAME="/ulipc_obs_smoke_$$"
trap 'rm -rf "$WORK"; rm -f "/dev/shm$SHM_NAME"' EXIT

export ULIPC_QUICKSTART_SHM="$SHM_NAME"
export ULIPC_QUICKSTART_REQUESTS=20000
export ULIPC_QUICKSTART_SPIN=0        # force block-every-time
export ULIPC_QUICKSTART_LINGER_MS=20000

"$QUICKSTART" >"$WORK/quickstart.log" 2>&1 &
QS_PID=$!

# Wait for the run to finish; the parent then lingers with the shm mapped.
for _ in $(seq 1 200); do
  grep -q '\[main\] done' "$WORK/quickstart.log" 2>/dev/null && break
  kill -0 "$QS_PID" 2>/dev/null || break
  sleep 0.1
done
grep -q '\[main\] done' "$WORK/quickstart.log" || {
  echo "FAIL: quickstart did not complete"; cat "$WORK/quickstart.log"; exit 1
}
grep -q '\[client\] 20000/20000 replies verified' "$WORK/quickstart.log" || {
  echo "FAIL: not all replies verified"; cat "$WORK/quickstart.log"; exit 1
}

echo "== ulipc-stat table =="
"$STAT" "$SHM_NAME" | tee "$WORK/table.txt"
grep -q 'server' "$WORK/table.txt" || {
  echo "FAIL: no server row in the table"; exit 1
}

echo "== ulipc-stat --json =="
"$STAT" --json "$SHM_NAME" >"$WORK/stat.json"
python3 - "$WORK/stat.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
slots = {s["role"]: s for s in doc["slots"]}
assert "server" in slots and "client" in slots, f"missing roles: {list(slots)}"
srv, cli = slots["server"], slots["client"]
assert srv["counters"]["receives"] >= 20000, srv["counters"]
assert cli["counters"]["sends"] >= 20000, cli["counters"]
# MAX_SPIN=0: the consumer blocks on (nearly) every message, so sleeps and
# the wake-ups that end them must both be visible in the registry.
assert srv["counters"]["blocks"] > 0, srv["counters"]
assert cli["counters"]["wakeups"] > 0, cli["counters"]
assert cli["hist"]["round_trip_ns"]["count"] >= 20000, cli["hist"]
assert srv["hist"]["sleep_ns"]["count"] > 0, srv["hist"]
print("JSON registry shape OK:",
      f"srv blocks={srv['counters']['blocks']}",
      f"cli wakeups={cli['counters']['wakeups']}",
      f"rt p50={cli['hist']['round_trip_ns']['p50']:.0f}ns")
EOF

echo "== ulipc-stat --trace-export =="
"$STAT" --trace-export="$WORK/trace.json" "$SHM_NAME"
TRACE_ON=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['trace_compiled'])" "$WORK/stat.json")
python3 - "$WORK/trace.json" "$TRACE_ON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))     # must parse: well-formed JSON
events = doc["traceEvents"]
trace_on = sys.argv[2] == "True"
sleeps = [e for e in events if e["ph"] == "X" and e["name"] == "sleep"]
wakes = [e for e in events if e["name"] == "wakeup-sent"]
if trace_on:
    assert len(sleeps) > 0, "no sleep spans despite ULIPC_TRACE=ON"
    assert len(wakes) > 0, "no wakeup-sent instants despite ULIPC_TRACE=ON"
    assert all(e["dur"] >= 0 for e in sleeps)
print(f"Chrome trace OK: {len(events)} events, "
      f"{len(sleeps)} sleep spans, {len(wakes)} wakeups (trace_on={trace_on})")
EOF

kill "$QS_PID" 2>/dev/null || true
wait "$QS_PID" 2>/dev/null || true
echo "obs_smoke PASS"
