// ulipc-stat: attach read-only to a live channel's shared memory and report
// its telemetry — per-participant counters, wake-ups per message, latency
// percentiles, recovery totals — as a table, as JSON, continuously
// (--watch), or as a Chrome trace_event file (--trace-export).
//
// The mapping is PROT_READ: this tool physically cannot perturb the channel
// it observes. Everything it prints comes from the obs block the channel
// creator laid out (obs::ObsHeader -> MetricSlots -> TraceRings); consistency
// comes from the slots' seqlocks and the rings' per-record seqno validation,
// never from stopping the writers.
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "common/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/rate_tracker.hpp"
#include "obs/span.hpp"
#include "obs/trace_ring.hpp"
#include "queue/payload_pool.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/process.hpp"
#include "shm/shm_allocator.hpp"
#include "shm/shm_region.hpp"

namespace {

using namespace ulipc;

struct Options {
  std::string shm_name;
  bool json = false;
  bool watch = false;
  bool spans = false;
  int interval_ms = 1000;
  std::string trace_export;  // empty = no export
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] /shm_name\n"
               "\n"
               "Attaches read-only to a live ulipc channel and reports its\n"
               "metrics registry.\n"
               "\n"
               "  --json               one JSON document instead of the table\n"
               "  --spans              assemble cross-process spans from the\n"
               "                       trace rings and print a per-phase\n"
               "                       critical-path breakdown\n"
               "  --watch              redraw every interval until the server\n"
               "                       exits (or ^C)\n"
               "  --interval-ms=N      watch refresh period (default 1000)\n"
               "  --trace-export=FILE  write the trace rings as Chrome\n"
               "                       trace_event JSON (chrome://tracing,\n"
               "                       https://ui.perfetto.dev)\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      out->json = true;
    } else if (a == "--spans") {
      out->spans = true;
    } else if (a == "--watch") {
      out->watch = true;
    } else if (a.rfind("--interval-ms=", 0) == 0) {
      out->interval_ms = std::max(10, std::atoi(a.c_str() + 14));
    } else if (a.rfind("--trace-export=", 0) == 0) {
      out->trace_export = a.substr(15);
    } else if (!a.empty() && a[0] == '-') {
      return false;
    } else if (out->shm_name.empty()) {
      out->shm_name = a;
    } else {
      return false;
    }
  }
  return !out->shm_name.empty();
}

/// The read-only view over the mapped region. Offsets mirror what
/// ShmChannel::create laid out; nothing here mutates the mapping.
struct ChannelView {
  ShmRegion region;
  const ShmChannelHeader* channel = nullptr;
  const obs::ObsHeader* obs = nullptr;
  const PayloadPool* payload = nullptr;  // null: channel has no plane

  /// Attaching to a LIVE region that its creator may tear down at any
  /// moment: every offset is bounds-checked against the mapped size before
  /// it is dereferenced, and every magic mismatch produces a diagnostic
  /// (thrown, caught in main -> stderr + exit 1) rather than an invariant
  /// abort. A region zeroed or re-formatted mid-attach reads as garbage
  /// offsets, never as a wild pointer.
  static ChannelView open(const std::string& name) {
    ChannelView v;
    v.region = ShmRegion::open_named_readonly(name);
    const std::size_t size = v.region.size();
    const std::size_t hdr_off = align_up(sizeof(ArenaHeader), kCacheLineSize);
    if (size < hdr_off + sizeof(ShmChannelHeader)) {
      throw std::runtime_error(name + ": region too small for a channel (" +
                               std::to_string(size) +
                               " bytes) — torn down mid-attach?");
    }
    const auto* arena = v.region.at<const ArenaHeader>(0);
    if (arena->magic != ArenaHeader::kMagic) {
      throw std::runtime_error(
          name + ": bad arena magic — not a ulipc region, or the channel "
                 "was torn down mid-attach");
    }
    v.channel = v.region.at<const ShmChannelHeader>(hdr_off);
    if (v.channel->magic != ShmChannelHeader::kMagic) {
      throw std::runtime_error(
          name + ": bad channel magic — the region is not (or no longer) a "
                 "formatted ulipc channel");
    }
    if (v.channel->num_shards > kMaxShards ||
        v.channel->max_clients > kMaxClients) {
      throw std::runtime_error(name +
                               ": corrupt channel header (shard/client "
                               "counts out of range)");
    }
    for (std::uint32_t s = 0; s < v.channel->num_shards; ++s) {
      const std::uint64_t off = v.channel->shard_ep_offset[s];
      if (off == 0 || off + sizeof(NativeEndpoint) > size) {
        throw std::runtime_error(name + ": shard endpoint " +
                                 std::to_string(s) +
                                 " lies outside the mapping");
      }
    }
    if (v.channel->obs_offset == 0) {
      throw std::runtime_error(
          name + ": channel has no observability block (created by a "
                 "pre-observability binary?)");
    }
    if (v.channel->obs_offset + sizeof(obs::ObsHeader) > size) {
      throw std::runtime_error(name +
                               ": observability block lies outside the "
                               "mapping — truncated or mid-teardown");
    }
    v.obs = v.region.at<const obs::ObsHeader>(v.channel->obs_offset);
    if (v.obs->magic != obs::ObsHeader::kMagic) {
      throw std::runtime_error(name + ": bad observability block magic");
    }
    if (v.obs->version != obs::ObsHeader::kVersion) {
      throw std::runtime_error(
          name + ": observability block version " +
          std::to_string(v.obs->version) + " (this tool speaks version " +
          std::to_string(obs::ObsHeader::kVersion) + ")");
    }
    // Slot/ring arrays must fit inside the mapping: a half-initialized or
    // recycled region must not send the reader walking off the end.
    const std::uint64_t obs_base = v.channel->obs_offset;
    if (v.obs->slot_count > 4096 ||
        obs_base + v.obs->slots_offset +
                std::uint64_t{v.obs->slot_count} * sizeof(obs::MetricSlot) >
            size ||
        obs_base + v.obs->rings_offset +
                std::uint64_t{v.obs->ring_count()} * v.obs->ring_stride >
            size) {
      throw std::runtime_error(name +
                               ": observability slot/ring layout exceeds "
                               "the mapping — corrupt header");
    }
    // Payload plane (optional; channels created with payload_max_bytes=0
    // have none). All its stats accessors are plain racy loads, safe on a
    // PROT_READ mapping.
    if (v.channel->payload_plane_offset != 0) {
      if (v.channel->payload_plane_offset + sizeof(PayloadPool) > size) {
        throw std::runtime_error(name +
                                 ": payload plane lies outside the mapping "
                                 "— truncated or mid-teardown");
      }
      v.payload =
          v.region.at<const PayloadPool>(v.channel->payload_plane_offset);
      if (v.payload->class_count() > PayloadPool::kMaxClasses) {
        throw std::runtime_error(name +
                                 ": corrupt payload plane (class count out "
                                 "of range)");
      }
    }
    return v;
  }

  /// Cheap liveness re-check for --watch: the creator tearing the channel
  /// down (or recycling the region for something else) clobbers a magic.
  [[nodiscard]] bool still_valid() const noexcept {
    const auto* arena = region.at<const ArenaHeader>(0);
    return arena->magic == ArenaHeader::kMagic &&
           channel->magic == ShmChannelHeader::kMagic &&
           obs->magic == obs::ObsHeader::kMagic;
  }

  [[nodiscard]] const obs::TraceRing* ring(std::uint32_t i) const {
    return static_cast<const obs::TraceRing*>(obs->ring_blob(i));
  }

  /// Pool channels only: shard s's receive endpoint (read-only; OffsetPtr
  /// resolves relative to the mapping, so depth reads work from here too).
  [[nodiscard]] const NativeEndpoint* shard_ep(std::uint32_t s) const {
    return region.at<const NativeEndpoint>(channel->shard_ep_offset[s]);
  }

  [[nodiscard]] TscClock::Calibration calibration() const {
    TscClock::Calibration c;
    c.ns_per_tick = std::bit_cast<double>(
        obs->tsc_ns_per_tick_bits.load(std::memory_order_acquire));
    if (c.ns_per_tick <= 0.0) c.ns_per_tick = 1.0;
    c.tsc_epoch = obs->tsc_epoch.load(std::memory_order_acquire);
    c.mono_epoch_ns = obs->mono_epoch_ns.load(std::memory_order_acquire);
    return c;
  }
};

/// Messages this participant has moved: sends for clients, receives for a
/// server — max covers both (and duplex threads, which do both).
std::uint64_t slot_messages(const ProtocolCounters& c) {
  return std::max(c.sends, c.receives);
}

/// Total trace records lost to ring wrap across every ring. First-class
/// because span assembly silently degrades when records are overwritten —
/// a nonzero count tells the reader how much to trust the stitching.
std::uint64_t total_records_dropped(const ChannelView& v) {
  std::uint64_t dropped = 0;
  for (std::uint32_t r = 0; r < v.obs->ring_count(); ++r) {
    dropped += v.ring(r)->records_dropped();
  }
  return dropped;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

// ---- shard balance (pool channels) ----

const char* shard_state_name(std::uint32_t st) {
  switch (st) {
    case PoolShardMap::kActive: return "active";
    case PoolShardMap::kRetired: return "retired";
    default: return "vacant";
  }
}

void print_shards(const ChannelView& v) {
  const std::uint32_t n = v.channel->num_shards;
  if (n == 0) return;
  const PoolShardMap& map = v.channel->shard_map;
  std::printf("\nshards: %u  epoch=%u  departed=%u\n", n,
              map.epoch.load(std::memory_order_acquire),
              v.channel->pool_disconnected.load(std::memory_order_acquire));
  std::printf("%-5s %-8s %-8s %7s %8s %8s %8s %9s\n", "shard", "state",
              "wrk-pid", "depth", "clients", "steals", "stolen", "migrated");
  for (std::uint32_t s = 0; s < n; ++s) {
    const PoolShardMap::Shard& sh = map.shards[s];
    std::printf(
        "%-5u %-8s %-8u %7u %8u %8llu %8llu %9llu\n", s,
        shard_state_name(sh.state.load(std::memory_order_acquire)),
        v.channel->worker_peer[s].pid.load(std::memory_order_acquire),
        v.shard_ep(s)->queue.get()->size(),
        sh.assigned.load(std::memory_order_acquire),
        static_cast<unsigned long long>(
            sh.steal_passes.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            sh.stolen_msgs.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            sh.migrated_msgs.load(std::memory_order_relaxed)));
  }
}

// ---- payload plane (channels with a zero-copy payload plane) ----

void print_payload(const ChannelView& v) {
  const PayloadPool* p = v.payload;
  if (p == nullptr) return;
  std::printf("\npayload plane: %u classes, %u/%u slots free, %u loan(s) "
              "outstanding\n",
              p->class_count(), p->free_count(), p->capacity(),
              p->loans_outstanding());
  std::printf("%-5s %9s %6s %6s %6s %10s\n", "class", "slot-B", "slots",
              "free", "inuse", "high-water");
  for (std::uint32_t c = 0; c < p->class_count(); ++c) {
    const std::uint32_t cap = p->class_capacity(c);
    const std::uint32_t free = p->class_free(c);
    // Racy reads: free can transiently read past cap mid-update; clamp
    // rather than print a wrapped-around in-use count.
    std::printf("%-5u %9u %6u %6u %6u %10u\n", c, p->class_slot_bytes(c),
                cap, free, free <= cap ? cap - free : 0,
                p->class_high_water(c));
  }
}

// ---- table output ----

/// `rates` non-null only in --watch mode: rates need two snapshots of the
/// same series, and the tracker re-baselines (printing "-") for one
/// refresh whenever a slot's generation bumps (reset_series / re-bind)
/// instead of showing the delta across the reset as a giant spike.
void print_table(const ChannelView& v, obs::RateTracker* rates = nullptr,
                 std::int64_t now_ns = 0) {
  std::printf("%-4s %-7s %-8s %9s %7s %7s %9s %8s %8s %9s %9s %9s", "slot",
              "role", "pid", "msgs", "wk/msg", "coal", "sleeps", "spin-p50",
              "spin-p99", "rt-p50us", "rt-p99us", "slp-p50us");
  if (rates != nullptr) std::printf(" %9s", "msg/s");
  std::printf("\n");
  for (std::uint32_t i = 0; i < v.obs->slot_count; ++i) {
    obs::SlotSnapshot s;
    if (!v.obs->slot(i).read_snapshot(&s) || !s.bound()) continue;
    const std::uint64_t msgs = slot_messages(s.counters);
    std::printf(
        "%-4u %-7s %-8u %9llu %7.3f %7llu %9llu %8.0f %8.0f %9.2f %9.2f "
        "%9.1f",
        i, obs::slot_role_name(s.role), s.pid,
        static_cast<unsigned long long>(msgs),
        ratio(s.counters.wakeups, msgs),
        static_cast<unsigned long long>(s.counters.wakeups_coalesced),
        static_cast<unsigned long long>(s.counters.blocks),
        s.h(obs::HistKind::kSpinIters).percentile(50),
        s.h(obs::HistKind::kSpinIters).percentile(99),
        s.h(obs::HistKind::kRoundTripNs).percentile(50) / 1e3,
        s.h(obs::HistKind::kRoundTripNs).percentile(99) / 1e3,
        s.h(obs::HistKind::kSleepNs).percentile(50) / 1e3);
    if (rates != nullptr) {
      const obs::RateSample r = rates->update(i, s.generation, msgs,
                                              s.counters.wakeups, now_ns);
      if (r.valid) {
        std::printf(" %9.0f", r.msgs_per_s);
      } else {
        std::printf(" %9s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "recovery: sweeps=%llu drained=%llu nodes=%llu payloads=%llu   "
      "trace=%s (ring %u x %u rec, records_dropped=%llu)\n",
      static_cast<unsigned long long>(v.obs->recovery.sweeps.load()),
      static_cast<unsigned long long>(v.obs->recovery.drained_messages.load()),
      static_cast<unsigned long long>(v.obs->recovery.nodes_reclaimed.load()),
      static_cast<unsigned long long>(
          v.obs->recovery.payload_slots_reclaimed.load()),
      v.obs->trace_compiled ? "on" : "off", v.obs->ring_count(),
      v.obs->ring_capacity,
      static_cast<unsigned long long>(total_records_dropped(v)));
  print_payload(v);
  print_shards(v);
}

// ---- JSON output ----

void json_counters(std::FILE* f, const ProtocolCounters& c) {
  std::fprintf(
      f,
      "{\"sends\":%llu,\"receives\":%llu,\"replies\":%llu,\"blocks\":%llu,"
      "\"wakeups\":%llu,\"yields\":%llu,\"busy_waits\":%llu,\"polls\":%llu,"
      "\"spin_entries\":%llu,\"spin_iters\":%llu,\"spin_fallthroughs\":%llu,"
      "\"sem_absorbs\":%llu,\"full_sleeps\":%llu,\"timeouts\":%llu,"
      "\"batch_enqueues\":%llu,\"batch_dequeues\":%llu,"
      "\"wakeups_coalesced\":%llu,\"adaptive_updates\":%llu,"
      "\"steals\":%llu,\"stolen_msgs\":%llu,\"migrated_msgs\":%llu,"
      "\"retries\":%llu,\"sheds\":%llu,"
      "\"loans\":%llu,\"loan_releases\":%llu}",
      static_cast<unsigned long long>(c.sends),
      static_cast<unsigned long long>(c.receives),
      static_cast<unsigned long long>(c.replies),
      static_cast<unsigned long long>(c.blocks),
      static_cast<unsigned long long>(c.wakeups),
      static_cast<unsigned long long>(c.yields),
      static_cast<unsigned long long>(c.busy_waits),
      static_cast<unsigned long long>(c.polls),
      static_cast<unsigned long long>(c.spin_entries),
      static_cast<unsigned long long>(c.spin_iters),
      static_cast<unsigned long long>(c.spin_fallthroughs),
      static_cast<unsigned long long>(c.sem_absorbs),
      static_cast<unsigned long long>(c.full_sleeps),
      static_cast<unsigned long long>(c.timeouts),
      static_cast<unsigned long long>(c.batch_enqueues),
      static_cast<unsigned long long>(c.batch_dequeues),
      static_cast<unsigned long long>(c.wakeups_coalesced),
      static_cast<unsigned long long>(c.adaptive_updates),
      static_cast<unsigned long long>(c.steals),
      static_cast<unsigned long long>(c.stolen_msgs),
      static_cast<unsigned long long>(c.migrated_msgs),
      static_cast<unsigned long long>(c.retries),
      static_cast<unsigned long long>(c.sheds),
      static_cast<unsigned long long>(c.loans),
      static_cast<unsigned long long>(c.loan_releases));
}

void json_hist(std::FILE* f, const obs::HistogramSnapshot& h) {
  std::fprintf(f,
               "{\"count\":%llu,\"mean\":%.1f,\"p50\":%.1f,\"p95\":%.1f,"
               "\"p99\":%.1f,\"max\":%.1f}",
               static_cast<unsigned long long>(h.count), h.mean(),
               h.percentile(50), h.percentile(95), h.percentile(99),
               h.percentile(100));
}

void print_json(std::FILE* f, const ChannelView& v) {
  std::fprintf(f,
               "{\"slot_count\":%u,\"ring_capacity\":%u,\"trace_compiled\":%s,"
               "\"records_dropped\":%llu,"
               "\"recovery\":{\"sweeps\":%llu,\"drained_messages\":%llu,"
               "\"nodes_reclaimed\":%llu,\"payload_slots_reclaimed\":%llu},"
               "\"slots\":[",
               v.obs->slot_count, v.obs->ring_capacity,
               v.obs->trace_compiled ? "true" : "false",
               static_cast<unsigned long long>(total_records_dropped(v)),
               static_cast<unsigned long long>(v.obs->recovery.sweeps.load()),
               static_cast<unsigned long long>(
                   v.obs->recovery.drained_messages.load()),
               static_cast<unsigned long long>(
                   v.obs->recovery.nodes_reclaimed.load()),
               static_cast<unsigned long long>(
                   v.obs->recovery.payload_slots_reclaimed.load()));
  bool first = true;
  for (std::uint32_t i = 0; i < v.obs->slot_count; ++i) {
    obs::SlotSnapshot s;
    if (!v.obs->slot(i).read_snapshot(&s) || !s.bound()) continue;
    std::fprintf(f, "%s{\"slot\":%u,\"role\":\"%s\",\"pid\":%u,"
                    "\"generation\":%u,\"wk_per_msg\":%.6f,\"counters\":",
                 first ? "" : ",", i, obs::slot_role_name(s.role), s.pid,
                 s.generation,
                 ratio(s.counters.wakeups, slot_messages(s.counters)));
    first = false;
    json_counters(f, s.counters);
    std::fprintf(f, ",\"hist\":{");
    for (std::uint32_t k = 0; k < obs::kHistKinds; ++k) {
      std::fprintf(f, "%s\"%s\":", k == 0 ? "" : ",",
                   obs::hist_kind_name(static_cast<obs::HistKind>(k)));
      json_hist(f, s.hist[k]);
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "]");
  if (v.channel->num_shards > 0) {
    const PoolShardMap& map = v.channel->shard_map;
    std::fprintf(f, ",\"num_shards\":%u,\"shard_epoch\":%u,\"departed\":%u,"
                    "\"shards\":[",
                 v.channel->num_shards,
                 map.epoch.load(std::memory_order_acquire),
                 v.channel->pool_disconnected.load(std::memory_order_acquire));
    for (std::uint32_t s = 0; s < v.channel->num_shards; ++s) {
      const PoolShardMap::Shard& sh = map.shards[s];
      std::fprintf(
          f,
          "%s{\"shard\":%u,\"state\":\"%s\",\"worker_pid\":%u,\"depth\":%u,"
          "\"assigned\":%u,\"steal_passes\":%llu,\"stolen_msgs\":%llu,"
          "\"migrated_msgs\":%llu}",
          s == 0 ? "" : ",", s,
          shard_state_name(sh.state.load(std::memory_order_acquire)),
          v.channel->worker_peer[s].pid.load(std::memory_order_acquire),
          v.shard_ep(s)->queue.get()->size(),
          sh.assigned.load(std::memory_order_acquire),
          static_cast<unsigned long long>(
              sh.steal_passes.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              sh.stolen_msgs.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              sh.migrated_msgs.load(std::memory_order_relaxed)));
    }
    std::fprintf(f, "]");
  }
  if (v.payload != nullptr) {
    const PayloadPool* p = v.payload;
    std::fprintf(f,
                 ",\"payload\":{\"classes\":%u,\"slots\":%u,\"free\":%u,"
                 "\"loans_outstanding\":%u,\"class_stats\":[",
                 p->class_count(), p->capacity(), p->free_count(),
                 p->loans_outstanding());
    for (std::uint32_t c = 0; c < p->class_count(); ++c) {
      std::fprintf(f,
                   "%s{\"slot_bytes\":%u,\"slots\":%u,\"free\":%u,"
                   "\"high_water\":%u}",
                   c == 0 ? "" : ",", p->class_slot_bytes(c),
                   p->class_capacity(c), p->class_free(c),
                   p->class_high_water(c));
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "}\n");
}

// ---- span assembly (--spans) ----

/// Stitches every ring's span records into cross-process spans and prints
/// the critical-path phase breakdown. Phase durations come from COMPLETE
/// spans (all four backbone edges present and monotonic); the wake phases
/// additionally require both halves of their issue/deliver pair, which are
/// legitimately absent when the receiver never slept — their lower counts
/// are signal (that many wakes actually hit a sleeper), not loss.
int print_spans(const ChannelView& v) {
  if (!v.obs->trace_compiled) {
    std::fprintf(stderr,
                 "ulipc-stat: warning: trace rings compiled out in the "
                 "channel creator (ULIPC_TRACE=OFF) — no span records to "
                 "assemble\n");
  }
  std::vector<obs::TraceRecordView> records;
  std::vector<char> ring_has_spans(v.obs->ring_count(), 0);
  for (std::uint32_t r = 0; r < v.obs->ring_count(); ++r) {
    for (const obs::TraceRecordView& rec : v.ring(r)->read_all()) {
      if (!obs::is_span_event(rec.event)) continue;
      records.push_back(rec);
      ring_has_spans[r] = 1;
    }
  }
  const std::uint32_t rings_contributing = static_cast<std::uint32_t>(
      std::count(ring_has_spans.begin(), ring_has_spans.end(), 1));
  const std::vector<obs::Span> spans = obs::assemble_spans(std::move(records));

  std::uint64_t complete = 0;
  std::vector<std::uint64_t> queue_res, wake_req, service, wake_rep,
      reply_path, total;
  const double ns_per_tick = v.calibration().ns_per_tick;
  auto ns = [&](std::uint64_t ticks) {
    return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                      ns_per_tick);
  };
  for (const obs::Span& s : spans) {
    if (!s.complete()) continue;
    ++complete;
    queue_res.push_back(ns(s.queue_residency()));
    service.push_back(ns(s.service()));
    reply_path.push_back(ns(s.reply_path()));
    total.push_back(ns(s.total()));
    if (s.wake_in_flight_req() != 0) wake_req.push_back(ns(s.wake_in_flight_req()));
    if (s.wake_in_flight_rep() != 0) wake_rep.push_back(ns(s.wake_in_flight_rep()));
  }

  std::printf(
      "spans: %zu assembled (%llu complete, %llu partial) from %u ring(s); "
      "records_dropped=%llu\n",
      spans.size(), static_cast<unsigned long long>(complete),
      static_cast<unsigned long long>(spans.size() - complete),
      rings_contributing,
      static_cast<unsigned long long>(total_records_dropped(v)));
  if (complete == 0) {
    std::printf("(no complete spans — is the channel idle, or spans fully "
                "decimated? try ULIPC_SPAN_SHIFT=0 on the participants)\n");
    return v.obs->trace_compiled ? 0 : 1;
  }
  std::printf("%-18s %9s %10s %10s %10s\n", "phase", "count", "p50-us",
              "p95-us", "p99-us");
  auto row = [](const char* name, std::vector<std::uint64_t>& samples) {
    const std::size_t n = samples.size();
    const double p50 = static_cast<double>(obs::percentile_of(samples, 50));
    const double p95 = static_cast<double>(obs::percentile_of(samples, 95));
    const double p99 = static_cast<double>(obs::percentile_of(samples, 99));
    std::printf("%-18s %9zu %10.2f %10.2f %10.2f\n", name, n, p50 / 1e3,
                p95 / 1e3, p99 / 1e3);
  };
  row("queue-residency", queue_res);
  row("wake-in-flight", wake_req);
  row("service", service);
  row("reply-wake", wake_rep);
  row("reply-path", reply_path);
  row("total", total);
  return 0;
}

// ---- Chrome trace export ----

struct MergedRecord {
  obs::TraceRecordView rec;
  std::uint32_t ring = 0;
};

/// Writes every validated trace record as Chrome trace_event JSON. Sleep
/// begin/end pairs become "complete" (ph X) spans so the blocked intervals
/// are visible bars; everything else is an instant. pid groups by the
/// owning participant's recorded pid, tid is the obs slot index.
int export_trace(const ChannelView& v, const std::string& path) {
  std::vector<MergedRecord> all;
  for (std::uint32_t r = 0; r < v.obs->ring_count(); ++r) {
    for (const obs::TraceRecordView& rec : v.ring(r)->read_all()) {
      all.push_back({rec, r});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const MergedRecord& a, const MergedRecord& b) {
              return a.rec.tsc < b.rec.tsc;
            });

  const TscClock::Calibration cal = v.calibration();
  auto ts_us = [&](std::uint64_t tsc) {
    return static_cast<double>(cal.to_mono_ns(tsc)) / 1e3;
  };
  auto slot_pid = [&](std::uint16_t slot) -> std::uint32_t {
    if (slot >= v.obs->slot_count) return 0;  // recovery ring
    return v.obs->slot(slot).pid.load(std::memory_order_relaxed);
  };

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "ulipc-stat: cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";

  // In-flight sleep-begin per slot (single consumer per endpoint: sleeps
  // never nest within one slot).
  std::vector<double> sleep_begin_us(v.obs->slot_count + 1, -1.0);
  bool first = true;
  char buf[256];
  std::uint64_t spans = 0, instants = 0, flows = 0;
  for (const MergedRecord& m : all) {
    const obs::TraceRecordView& rec = m.rec;
    const std::uint16_t slot = rec.slot;
    const double t = ts_us(rec.tsc);
    if (rec.event == obs::TraceEvent::kSleepBegin && slot <= v.obs->slot_count) {
      sleep_begin_us[slot] = t;
      continue;  // materialized by the matching end
    }
    if (rec.event == obs::TraceEvent::kSleepEnd && slot <= v.obs->slot_count &&
        sleep_begin_us[slot] >= 0.0) {
      const double b = sleep_begin_us[slot];
      sleep_begin_us[slot] = -1.0;
      std::snprintf(buf, sizeof buf,
                    "%s{\"name\":\"sleep\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":%u,\"tid\":%u,\"args\":{"
                    "\"endpoint\":%u,\"timed_out\":%llu}}",
                    first ? "" : ",", b, std::max(0.0, t - b), slot_pid(slot),
                    slot, rec.arg_a,
                    static_cast<unsigned long long>(rec.arg_b));
      out << buf;
      first = false;
      ++spans;
      continue;
    }
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                  "\"pid\":%u,\"tid\":%u,\"args\":{\"a\":%u,\"b\":%llu}}",
                  first ? "" : ",", obs::trace_event_name(rec.event), t,
                  slot_pid(slot), slot, rec.arg_a,
                  static_cast<unsigned long long>(rec.arg_b));
    out << buf;
    first = false;
    ++instants;
    // Span records additionally become Chrome FLOW events keyed by the
    // span id, so one request draws as a connected arrow across the
    // participating processes' tracks: "s" opens the flow at send, "t"
    // steps it through every intermediate phase edge, and "f" (binding to
    // the enclosing slice) closes it at reply receipt.
    if (obs::is_span_event(rec.event)) {
      const char* ph = rec.event == obs::TraceEvent::kSpanSend ? "s"
                       : rec.event == obs::TraceEvent::kSpanReplyRecv ? "f"
                                                                      : "t";
      std::snprintf(buf, sizeof buf,
                    ",{\"name\":\"span\",\"cat\":\"span\",\"ph\":\"%s\","
                    "%s\"id\":\"0x%llx\",\"ts\":%.3f,\"pid\":%u,\"tid\":%u}",
                    ph,
                    rec.event == obs::TraceEvent::kSpanReplyRecv
                        ? "\"bp\":\"e\","
                        : "",
                    static_cast<unsigned long long>(rec.arg_b), t,
                    slot_pid(slot), slot);
      out << buf;
      ++flows;
    }
  }
  out << "]}\n";
  out.close();
  std::fprintf(stderr,
               "ulipc-stat: exported %llu sleep spans + %llu instants + "
               "%llu flow events -> %s\n",
               static_cast<unsigned long long>(spans),
               static_cast<unsigned long long>(instants),
               static_cast<unsigned long long>(flows), path.c_str());
  return 0;
}

bool server_alive(const ChannelView& v) {
  const std::uint32_t pid =
      v.channel->server_peer.pid.load(std::memory_order_acquire);
  return pid != 0 && process_alive(pid);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return usage(argv[0]);

  try {
    ChannelView view = ChannelView::open(opt.shm_name);

    if (!opt.trace_export.empty()) {
      return export_trace(view, opt.trace_export);
    }
    if (opt.spans) {
      return print_spans(view);
    }
    if (opt.watch) {
      obs::RateTracker rates;
      for (;;) {
        // The creator can tear the channel down (or recycle the region)
        // between refreshes; a clobbered magic means every offset we cached
        // is suspect, so bail with a diagnostic instead of reading garbage.
        if (!view.still_valid()) {
          std::fprintf(stderr,
                       "\nulipc-stat: %s: channel torn down or re-created "
                       "during --watch (header magic changed) — detaching\n",
                       opt.shm_name.c_str());
          return 1;
        }
        std::printf("\033[H\033[2J");  // clear + home
        std::printf("ulipc-stat %s  (refresh %d ms; ^C to quit)\n\n",
                    opt.shm_name.c_str(), opt.interval_ms);
        if (!view.obs->trace_compiled) {
          std::printf("warning: trace rings compiled out in the channel "
                      "creator (ULIPC_TRACE=OFF) — trace-derived data stays "
                      "empty\n\n");
        }
        const std::int64_t now_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        print_table(view, &rates, now_ns);
        std::fflush(stdout);
        if (!server_alive(view)) {
          std::printf("\n(server seat empty or dead — final snapshot)\n");
          return 0;
        }
        sleep_ns_eintr(static_cast<std::int64_t>(opt.interval_ms) * 1'000'000);
      }
    }
    if (opt.json) {
      print_json(stdout, view);
    } else {
      print_table(view);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ulipc-stat: %s\n", e.what());
    return 1;
  }
}
