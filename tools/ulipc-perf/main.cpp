// ulipc-perf: scenario-driven load generator over the pool stack.
//
// Runs the named workload scenarios (src/runtime/scenario.hpp) — steady
// request-response, windowed streaming, fan-in, bursty on/off arrivals,
// pareto-weighted compute, connect/disconnect churn — plus the churn+chaos
// scenario that SIGKILLs a worker and a client mid-load and asserts the
// recovery SLOs. One `[scenario] {json}` line per run is emitted for
// bench/record_bench.sh to fold into BENCH_trajectory.jsonl.
//
// This binary links ulipc_runtime_explore, so chaos victims SIGKILL
// themselves at an armed crash point (deterministic per process) instead of
// relying on parent timing.
//
// Usage:
//   ulipc-perf [--list] [--scenario=NAME] [--quick] [--seed=N]
//
// Exit status: 0 iff every executed scenario passed its SLOs.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/affinity.hpp"
#include "runtime/scenario.hpp"

using namespace ulipc;

namespace {

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "  --list            print the scenario names and exit\n"
      << "  --scenario=NAME   run only this scenario (default: all)\n"
      << "  --quick           shrink message counts (CI smoke runs)\n"
      << "  --seed=N          jitter/pareto RNG seed (default 42)\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool list = false;
  std::uint64_t seed = 42;
  std::string only;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      only = arg.substr(std::strlen("--scenario="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + std::strlen("--seed="), nullptr, 10);
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  const std::vector<ScenarioSpec> specs = builtin_scenarios(quick, seed);
  if (list) {
    for (const ScenarioSpec& s : specs) {
      std::cout << s.name << "  (" << workload_name(s.workload) << ", "
                << s.workers << " workers, " << s.clients << " clients"
                << (s.chaos.enabled() ? ", chaos" : "") << ")\n";
    }
    return 0;
  }

  bool matched = false;
  bool all_pass = true;
  std::cout << "ulipc-perf — scenario engine (" << cpu_count() << " CPUs, "
            << (quick ? "quick" : "full") << ", seed " << seed << ")\n\n";
  for (const ScenarioSpec& s : specs) {
    if (!only.empty() && s.name != only) continue;
    matched = true;
    std::cout << "== " << s.name << " ==\n" << std::flush;
    const ScenarioResult r = run_scenario(s);
    std::cout << "   verified " << r.verified << "/" << r.attempted
              << " requests";
    if (r.retries > 0) std::cout << ", " << r.retries << " retries";
    if (r.sheds > 0) std::cout << ", " << r.sheds << " sheds";
    if (r.stale_dropped > 0) {
      std::cout << ", " << r.stale_dropped << " stale replies dropped";
    }
    if (r.workers_killed > 0 || r.clients_killed > 0) {
      std::cout << "; killed " << r.workers_killed << " worker(s) + "
                << r.clients_killed << " client(s), orphan drain "
                << static_cast<double>(r.orphan_drain_ns) / 1e6 << " ms";
    }
    std::cout << "\n   SLO " << (r.slo_pass() ? "PASS" : "FAIL")
              << " (no_lost_replies=" << r.slo_no_lost_replies
              << " orphan_drain=" << r.slo_orphan_drain
              << " nodes_conserved=" << r.slo_nodes_conserved
              << " completed=" << r.completed << ")\n";
    std::cout << "[scenario] " << r.json() << "\n\n" << std::flush;
    all_pass &= r.slo_pass();
  }

  if (!matched) {
    std::cerr << "no scenario named '" << only << "' (try --list)\n";
    return 2;
  }
  return all_pass ? 0 : 1;
}
