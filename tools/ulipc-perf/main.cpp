// ulipc-perf: scenario-driven load generator over the pool stack.
//
// Runs the named workload scenarios (src/runtime/scenario.hpp) — steady
// request-response, windowed streaming, fan-in, bursty on/off arrivals,
// pareto-weighted compute, connect/disconnect churn — plus the churn+chaos
// scenario that SIGKILLs a worker and a client mid-load and asserts the
// recovery SLOs. One `[scenario] {json}` line per run is emitted for
// bench/record_bench.sh to fold into BENCH_trajectory.jsonl.
//
// This binary links ulipc_runtime_explore, so chaos victims SIGKILL
// themselves at an armed crash point (deterministic per process) instead of
// relying on parent timing.
//
// Usage:
//   ulipc-perf [--list] [--scenario=NAME] [--quick] [--seed=N]
//
// Exit status: 0 iff every executed scenario passed its SLOs.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/affinity.hpp"
#include "runtime/scenario.hpp"
#include "runtime/waitset.hpp"

using namespace ulipc;

namespace {

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "  --list            print the scenario names and exit\n"
      << "  --scenario=NAME   run only this scenario (default: all)\n"
      << "  --quick           shrink message counts (CI smoke runs)\n"
      << "  --seed=N          jitter/pareto RNG seed (default 42)\n"
      << "  --payload-dist=pareto:ALPHA,MIN,MAX\n"
      << "                    attach a pareto(ALPHA)-sized payload of\n"
      << "                    MIN..MAX bytes to every data request (loaned\n"
      << "                    from the channel's zero-copy payload plane);\n"
      << "                    bytes/s lands in the [scenario] json\n"
      << "environment:\n"
      << "  ULIPC_SCENARIO_SHM=/name    name the channel's shm region so\n"
      << "                              ulipc-stat can attach to the run\n"
      << "  ULIPC_SCENARIO_LINGER_MS=N  keep the region mapped N ms after\n"
      << "                              each scenario (post-hoc --spans)\n"
      << "  ULIPC_SPAN_SHIFT=N          trace 1 in 2^N sends (default 5)\n";
}

/// Parses "pareto:alpha,min,max" into the spec's payload fields.
bool parse_payload_dist(const std::string& v, double* alpha,
                        std::uint32_t* min_bytes, std::uint32_t* max_bytes) {
  if (v.rfind("pareto:", 0) != 0) return false;
  char* end = nullptr;
  const char* s = v.c_str() + std::strlen("pareto:");
  *alpha = std::strtod(s, &end);
  if (end == s || *end != ',' || *alpha <= 0.0) return false;
  s = end + 1;
  *min_bytes = static_cast<std::uint32_t>(std::strtoul(s, &end, 10));
  if (end == s || *end != ',') return false;
  s = end + 1;
  *max_bytes = static_cast<std::uint32_t>(std::strtoul(s, &end, 10));
  return end != s && *end == '\0' && *min_bytes > 0 &&
         *min_bytes <= *max_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool list = false;
  std::uint64_t seed = 42;
  std::string only;
  double payload_alpha = 0.0;
  std::uint32_t payload_min = 0;
  std::uint32_t payload_max = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      only = arg.substr(std::strlen("--scenario="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + std::strlen("--seed="), nullptr, 10);
    } else if (arg.rfind("--payload-dist=", 0) == 0) {
      if (!parse_payload_dist(arg.substr(std::strlen("--payload-dist=")),
                              &payload_alpha, &payload_min, &payload_max)) {
        std::cerr << "bad --payload-dist (want pareto:ALPHA,MIN,MAX with "
                     "0 < MIN <= MAX): "
                  << arg << "\n";
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<ScenarioSpec> specs = builtin_scenarios(quick, seed);
  if (payload_max > 0) {
    for (ScenarioSpec& s : specs) {
      s.payload_alpha = payload_alpha;
      s.payload_min = payload_min;
      s.payload_max = payload_max;
    }
  }
  // The fan-in waitset scenario rides alongside the pool scenarios: one
  // worker, one WaitSet, N single-client channels (runtime/waitset.hpp).
  FaninScenarioSpec fanin;
  fanin.messages = quick ? 25 : 150;
  fanin.seed = seed;

  if (list) {
    for (const ScenarioSpec& s : specs) {
      std::cout << s.name << "  (" << workload_name(s.workload) << ", "
                << s.workers << " workers, " << s.clients << " clients"
                << (s.chaos.enabled() ? ", chaos" : "") << ")\n";
    }
    std::cout << fanin.name << "  (fan-in over a waitset, 1 worker, "
              << fanin.channels << " channels)\n";
    return 0;
  }

  bool matched = false;
  bool all_pass = true;
  std::cout << "ulipc-perf — scenario engine (" << cpu_count() << " CPUs, "
            << (quick ? "quick" : "full") << ", seed " << seed << ")\n\n";
  for (const ScenarioSpec& s : specs) {
    if (!only.empty() && s.name != only) continue;
    matched = true;
    std::cout << "== " << s.name << " ==\n" << std::flush;
    const ScenarioResult r = run_scenario(s);
    std::cout << "   verified " << r.verified << "/" << r.attempted
              << " requests";
    if (r.retries > 0) std::cout << ", " << r.retries << " retries";
    if (r.sheds > 0) std::cout << ", " << r.sheds << " sheds";
    if (r.stale_dropped > 0) {
      std::cout << ", " << r.stale_dropped << " stale replies dropped";
    }
    if (r.workers_killed > 0 || r.clients_killed > 0) {
      std::cout << "; killed " << r.workers_killed << " worker(s) + "
                << r.clients_killed << " client(s), orphan drain "
                << static_cast<double>(r.orphan_drain_ns) / 1e6 << " ms";
    }
    if (r.payload_bytes > 0) {
      std::cout << "; " << r.payload_bytes << " payload bytes ("
                << r.bytes_per_s / 1e6 << " MB/s)";
    }
    std::cout << "\n   SLO " << (r.slo_pass() ? "PASS" : "FAIL")
              << " (no_lost_replies=" << r.slo_no_lost_replies
              << " orphan_drain=" << r.slo_orphan_drain
              << " nodes_conserved=" << r.slo_nodes_conserved
              << " payloads_conserved=" << r.slo_payloads_conserved
              << " completed=" << r.completed << ")\n";
    std::cout << "[scenario] " << r.json() << "\n\n" << std::flush;
    all_pass &= r.slo_pass();
  }

  if (only.empty() || only == fanin.name) {
    matched = true;
    std::cout << "== " << fanin.name << " ==\n" << std::flush;
    const ScenarioResult r = run_fanin_scenario(fanin);
    std::cout << "   verified " << r.verified << "/" << r.attempted
              << " requests across " << fanin.channels
              << " channels, 1 waitset worker ("
              << waitset_backend_name(
                     WaitSet::resolve_backend(WaitSetBackend::kAuto))
              << " backend)\n";
    std::cout << "   SLO " << (r.slo_pass() ? "PASS" : "FAIL")
              << " (no_lost_replies=" << r.slo_no_lost_replies
              << " nodes_conserved=" << r.slo_nodes_conserved
              << " completed=" << r.completed << ")\n";
    std::cout << "[scenario] " << r.json() << "\n\n" << std::flush;
    all_pass &= r.slo_pass();
  }

  if (!matched) {
    std::cerr << "no scenario named '" << only << "' (try --list)\n";
    return 2;
  }
  return all_pass ? 0 : 1;
}
