#!/usr/bin/env python3
"""Report-only comparison of a fresh bench run against BENCH_baseline.json.

    tools/bench_compare.py --build-dir <dir> [--baseline BENCH_baseline.json]
                           [--messages N] [--tolerance PCT] [--strict]

Runs the two perf anchors (latency_percentiles for round-trip medians,
micro_queue for queue-op ns) from the given build tree, then prints a
markdown table of current vs baseline with the relative delta. Rows whose
regression exceeds the tolerance (default 30%, or 10% under --strict) are
flagged.

By default this is diagnostics, NOT a gate: shared CI runners make perf
numbers weather, so the script exits 0 — the CI job additionally wraps it
in continue-on-error. --strict turns the flags into a gate (exit 1 when
any row regresses beyond tolerance, or when the baseline cannot be read)
for pinned local A/B runs where the machine IS controlled; CI stays
report-only. Machine differences are expected; the committed baseline
carries its machine tag for context.
"""

import argparse
import json
import os
import subprocess
import sys


def run(cmd):
    """Run a bench binary; on failure, say WHY (exit status, stderr tail).

    A crashed or killed benchmark still returns whatever stdout it produced
    — the table parsers validate every row, so partial output degrades to
    fewer rows, never to an exception.
    """
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=600
        )
    except (OSError, subprocess.SubprocessError) as e:
        print(f"bench_compare: failed to run {cmd[0]}: {e}", file=sys.stderr)
        return ""
    if proc.returncode != 0:
        tail = proc.stderr.strip().splitlines()[-3:]
        print(f"bench_compare: {cmd[0]} exited with status "
              f"{proc.returncode}" + (f"; stderr: {' / '.join(tail)}"
                                      if tail else ""),
              file=sys.stderr)
    return proc.stdout


def latency_medians(build_dir, messages):
    """protocol -> round-trip p50 in us, from the TextTable output."""
    binary = os.path.join(build_dir, "bench", "latency_percentiles")
    if not os.path.exists(binary):
        return {}
    rows = {}
    for line in run([binary, f"--messages={messages}"]).splitlines():
        cells = [c.strip() for c in line.split("|") if c.strip()]
        if len(cells) < 5 or cells[0] not in (
            "BSS", "BSW", "BSWY", "BSLS", "SYSV"
        ):
            continue
        try:
            rows[cells[0]] = float(cells[1])
        except ValueError:
            continue
    return rows


def micro_queue_ns(build_dir):
    """benchmark name -> ns/op from micro_queue's JSON reporter."""
    binary = os.path.join(build_dir, "bench", "micro_queue")
    if not os.path.exists(binary):
        return {}
    # Bare-double min_time: the "0.05s" spelling is rejected by older
    # google-benchmark releases, the bare form works on both.
    text = run([binary, "--benchmark_format=json",
                "--benchmark_min_time=0.05"])
    try:
        doc = json.loads(text)
    except ValueError:
        return {}
    return {
        b["name"]: b["real_time"]
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }


def payload_bytes_per_s(build_dir, messages):
    """'mode@bytes' -> bytes/s from latency_percentiles --payload=sweep.

    Returns {} when the binary predates --payload (it then prints the
    normal protocol table with no "[payload]" lines), which makes the
    section skip itself via compare()'s empty-side guard.
    """
    binary = os.path.join(build_dir, "bench", "latency_percentiles")
    if not os.path.exists(binary):
        return {}
    rows = {}
    for line in run([binary, f"--messages={messages}",
                     "--payload=sweep"]).splitlines():
        if not line.startswith("[payload] "):
            continue
        try:
            rec = json.loads(line[len("[payload] "):])
            rows[f'{rec["mode"]}@{rec["bytes"]}'] = float(rec["bytes_per_s"])
        except (ValueError, KeyError, TypeError):
            continue
    return rows


def fanin_msgs_per_ms(build_dir, messages):
    """'channels' -> msgs/ms from latency_percentiles --fanin=64.

    The readiness-plane point: one waitset worker serving 64 channels.
    Returns {} when the binary predates --fanin (it then reports an unknown
    option and prints no "[fanin]" line), which makes the section skip
    itself via compare()'s empty-side guard. Messages are per client, so
    the count is kept small regardless of --messages.
    """
    binary = os.path.join(build_dir, "bench", "latency_percentiles")
    if not os.path.exists(binary):
        return {}
    per_client = min(messages, 200)
    rows = {}
    for line in run([binary, "--fanin=64",
                     f"--messages={per_client}"]).splitlines():
        if not line.startswith("[fanin] "):
            continue
        try:
            rec = json.loads(line[len("[fanin] "):])
            rows[str(rec["channels"])] = float(rec["msgs_per_ms"])
        except (ValueError, KeyError, TypeError):
            continue
    return rows


def latest_scenario_slos(traj_path):
    """Most recent scenario_slo map from the trajectory file.

    Crashed record_bench runs can leave malformed lines; each line is
    validated independently and invalid ones are skipped (with a count) so
    one bad append never hides the history around it.
    """
    if not os.path.exists(traj_path):
        return {}, 0
    latest, bad = {}, 0
    with open(traj_path, errors="replace") as f:
        for line in f:
            if not line.strip():
                continue
            try:
                point = json.loads(line)
                slo = point.get("scenario_slo")
            except ValueError:
                bad += 1
                continue
            if isinstance(slo, dict) and slo:
                latest = slo  # later lines win: the file is append-only
    return latest, bad


def compare(title, current, baseline, tolerance, worse_when_higher=True):
    print(f"\n### {title}\n")
    if not current or not baseline:
        print("_(no data on one side; skipped)_")
        return 0
    print("| name | baseline | current | delta |")
    print("|---|---|---|---|")
    flagged = 0
    for name in sorted(baseline):
        if name not in current:
            continue
        base, cur = baseline[name], current[name]
        # A hand-edited or partially-written baseline can hold non-numeric
        # values; skip such rows rather than crash the whole report.
        if not isinstance(base, (int, float)) or \
                not isinstance(cur, (int, float)) or base <= 0:
            continue
        delta = (cur - base) / base * 100.0
        regressed = delta > tolerance if worse_when_higher else \
            delta < -tolerance
        mark = "  ⚠ regression?" if regressed else ""
        flagged += regressed
        print(f"| {name} | {base:.2f} | {cur:.2f} | {delta:+.1f}%{mark} |")
    return flagged


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default="BENCH_baseline.json")
    ap.add_argument("--messages", type=int, default=20000)
    ap.add_argument("--tolerance", type=float, default=None,
                    help="flag regressions beyond this %% "
                         "(default: 30, or 10 under --strict)")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when any row regresses beyond "
                         "tolerance (local A/B gate; CI stays report-only)")
    ap.add_argument("--trajectory", default="BENCH_trajectory.jsonl",
                    help="trajectory file to surface the latest scenario "
                         "SLO verdicts from (skipped if absent)")
    args = ap.parse_args()
    if args.tolerance is None:
        args.tolerance = 10.0 if args.strict else 30.0

    try:
        with open(args.baseline) as f:
            base = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {args.baseline}: {e}",
              file=sys.stderr)
        return 1 if args.strict else 0

    machine = base.get("machine", {})
    print("## Bench comparison vs committed baseline (report only)")
    print(f"baseline: rev {base.get('git_rev', '?')} on "
          f"{machine.get('hostname', '?')} ({machine.get('cpus', '?')} cpus)")

    flagged = 0
    lat = base.get("latency_percentiles", {})
    if not isinstance(lat, dict):
        print("bench_compare: baseline latency_percentiles is malformed; "
              "skipping that section", file=sys.stderr)
        lat = {}
    base_p50 = {k: v.get("p50_us", 0.0)
                for k, v in lat.items() if isinstance(v, dict)}
    cur_p50 = latency_medians(args.build_dir, args.messages)
    flagged += compare("round-trip p50 (us, lower is better)",
                       cur_p50, base_p50, args.tolerance)

    # Scalar round-trip throughput, the headline trajectory number
    # (rt_msgs_per_ms in BENCH_trajectory.jsonl; 1000/p50, same derivation
    # record_bench.sh uses). The coarse p50 section above tolerates 30%
    # because single-run medians on shared runners are weather — but the
    # trajectory has shown slow multi-PR drift (~10% over three points)
    # that such a tolerance never flags. This section compares the same
    # protocols at a tight, ALWAYS report-only threshold so creeping
    # scalar-path cost shows up in the PR report even when every other
    # section is quiet. It never gates (not even under --strict): at 8% a
    # noisy runner would cry wolf; the flag is a prompt to A/B on a quiet
    # machine, not a verdict.
    base_rt = {k: v.get("rt_throughput_msgs_per_ms", 0.0)
               for k, v in lat.items() if isinstance(v, dict)}
    cur_rt = {k: 1000.0 / p50 for k, p50 in cur_p50.items() if p50 > 0}
    drift = compare("scalar rt throughput (msgs/ms, higher is better; "
                    "drift watch, never a gate)",
                    cur_rt, base_rt, 8.0, worse_when_higher=False)
    if drift:
        print(f"\n_{drift} scalar-throughput row(s) drifted beyond 8% — "
              "informational; A/B on a quiet machine before acting._")
    mq = base.get("micro_queue_ns", {})
    if not isinstance(mq, dict):
        print("bench_compare: baseline micro_queue_ns is malformed; "
              "skipping that section", file=sys.stderr)
        mq = {}
    flagged += compare("micro_queue (ns/op, lower is better)",
                       micro_queue_ns(args.build_dir),
                       mq, args.tolerance)

    # Payload plane: bytes/s, higher is better. Baselines recorded before
    # the payload plane existed have no "payload_plane" key — compare()
    # then skips the section instead of failing.
    pp = base.get("payload_plane", [])
    base_bps = {}
    if isinstance(pp, list):
        for rec in pp:
            if isinstance(rec, dict) and "mode" in rec and "bytes" in rec \
                    and isinstance(rec.get("bytes_per_s"), (int, float)):
                base_bps[f'{rec["mode"]}@{rec["bytes"]}'] = rec["bytes_per_s"]
    flagged += compare("payload plane (bytes/s, higher is better)",
                       payload_bytes_per_s(args.build_dir, args.messages),
                       base_bps, args.tolerance, worse_when_higher=False)

    # Fan-in over the readiness plane: msgs/ms, higher is better. Baselines
    # recorded before the waitset existed have no "fanin" key — compare()
    # then skips the section instead of failing.
    fi = base.get("fanin", [])
    base_fanin = {}
    if isinstance(fi, list):
        for rec in fi:
            if isinstance(rec, dict) and "channels" in rec \
                    and isinstance(rec.get("msgs_per_ms"), (int, float)):
                base_fanin[str(rec["channels"])] = rec["msgs_per_ms"]
    flagged += compare("fan-in waitset (msgs/ms, higher is better)",
                       fanin_msgs_per_ms(args.build_dir, args.messages),
                       base_fanin, args.tolerance, worse_when_higher=False)

    slos, bad_lines = latest_scenario_slos(args.trajectory)
    if slos or bad_lines:
        print("\n### scenario SLOs (latest trajectory point)\n")
        if bad_lines:
            print(f"_skipped {bad_lines} malformed trajectory line(s)_")
        for name in sorted(slos):
            print(f"- {name}: {'PASS' if slos[name] else 'FAIL'}")

    if flagged:
        print(f"\n{flagged} row(s) beyond ±{args.tolerance:.0f}% — check "
              "whether the machine or the code changed.")
    else:
        print("\nno regressions beyond tolerance.")
    if args.strict and flagged:
        return 1  # opt-in gate for controlled machines
    return 0  # default: never a gate


if __name__ == "__main__":
    sys.exit(main())
