#!/usr/bin/env python3
"""Report-only comparison of a fresh bench run against BENCH_baseline.json.

    tools/bench_compare.py --build-dir <dir> [--baseline BENCH_baseline.json]
                           [--messages N] [--tolerance PCT] [--strict]

Runs the two perf anchors (latency_percentiles for round-trip medians,
micro_queue for queue-op ns) from the given build tree, then prints a
markdown table of current vs baseline with the relative delta. Rows whose
regression exceeds the tolerance (default 30%, or 10% under --strict) are
flagged.

By default this is diagnostics, NOT a gate: shared CI runners make perf
numbers weather, so the script exits 0 — the CI job additionally wraps it
in continue-on-error. --strict turns the flags into a gate (exit 1 when
any row regresses beyond tolerance, or when the baseline cannot be read)
for pinned local A/B runs where the machine IS controlled; CI stays
report-only. Machine differences are expected; the committed baseline
carries its machine tag for context.
"""

import argparse
import json
import os
import subprocess
import sys


def run(cmd):
    try:
        return subprocess.run(
            cmd, capture_output=True, text=True, timeout=600
        ).stdout
    except (OSError, subprocess.SubprocessError) as e:
        print(f"bench_compare: failed to run {cmd[0]}: {e}", file=sys.stderr)
        return ""


def latency_medians(build_dir, messages):
    """protocol -> round-trip p50 in us, from the TextTable output."""
    binary = os.path.join(build_dir, "bench", "latency_percentiles")
    if not os.path.exists(binary):
        return {}
    rows = {}
    for line in run([binary, f"--messages={messages}"]).splitlines():
        cells = [c.strip() for c in line.split("|") if c.strip()]
        if len(cells) < 5 or cells[0] not in (
            "BSS", "BSW", "BSWY", "BSLS", "SYSV"
        ):
            continue
        try:
            rows[cells[0]] = float(cells[1])
        except ValueError:
            continue
    return rows


def micro_queue_ns(build_dir):
    """benchmark name -> ns/op from micro_queue's JSON reporter."""
    binary = os.path.join(build_dir, "bench", "micro_queue")
    if not os.path.exists(binary):
        return {}
    # Bare-double min_time: the "0.05s" spelling is rejected by older
    # google-benchmark releases, the bare form works on both.
    text = run([binary, "--benchmark_format=json",
                "--benchmark_min_time=0.05"])
    try:
        doc = json.loads(text)
    except ValueError:
        return {}
    return {
        b["name"]: b["real_time"]
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }


def compare(title, current, baseline, tolerance, worse_when_higher=True):
    print(f"\n### {title}\n")
    if not current or not baseline:
        print("_(no data on one side; skipped)_")
        return 0
    print("| name | baseline | current | delta |")
    print("|---|---|---|---|")
    flagged = 0
    for name in sorted(baseline):
        if name not in current:
            continue
        base, cur = baseline[name], current[name]
        if base <= 0:
            continue
        delta = (cur - base) / base * 100.0
        regressed = delta > tolerance if worse_when_higher else \
            delta < -tolerance
        mark = "  ⚠ regression?" if regressed else ""
        flagged += regressed
        print(f"| {name} | {base:.2f} | {cur:.2f} | {delta:+.1f}%{mark} |")
    return flagged


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default="BENCH_baseline.json")
    ap.add_argument("--messages", type=int, default=20000)
    ap.add_argument("--tolerance", type=float, default=None,
                    help="flag regressions beyond this %% "
                         "(default: 30, or 10 under --strict)")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when any row regresses beyond "
                         "tolerance (local A/B gate; CI stays report-only)")
    args = ap.parse_args()
    if args.tolerance is None:
        args.tolerance = 10.0 if args.strict else 30.0

    try:
        with open(args.baseline) as f:
            base = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {args.baseline}: {e}",
              file=sys.stderr)
        return 1 if args.strict else 0

    machine = base.get("machine", {})
    print("## Bench comparison vs committed baseline (report only)")
    print(f"baseline: rev {base.get('git_rev', '?')} on "
          f"{machine.get('hostname', '?')} ({machine.get('cpus', '?')} cpus)")

    flagged = 0
    base_p50 = {k: v.get("p50_us", 0.0)
                for k, v in base.get("latency_percentiles", {}).items()}
    flagged += compare("round-trip p50 (us, lower is better)",
                       latency_medians(args.build_dir, args.messages),
                       base_p50, args.tolerance)
    flagged += compare("micro_queue (ns/op, lower is better)",
                       micro_queue_ns(args.build_dir),
                       base.get("micro_queue_ns", {}), args.tolerance)

    if flagged:
        print(f"\n{flagged} row(s) beyond ±{args.tolerance:.0f}% — check "
              "whether the machine or the code changed.")
    else:
        print("\nno regressions beyond tolerance.")
    if args.strict and flagged:
        return 1  # opt-in gate for controlled machines
    return 0  # default: never a gate


if __name__ == "__main__":
    sys.exit(main())
