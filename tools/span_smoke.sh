#!/usr/bin/env bash
# End-to-end span-plane smoke test (wired into ctest as `span_smoke`).
#
#   1. run the quickstart echo server/client pair with ULIPC_SPAN_SHIFT=0
#      (every send minted) and MAX_SPIN=0 (every receive exercises the full
#      sleep/wake protocol, so the wake-in-flight phase is populated);
#   2. attach `ulipc-stat --spans`: the assembler must stitch complete
#      cross-process spans out of BOTH participants' rings and print the
#      per-phase percentile table;
#   3. export the Chrome trace and validate with python3 that the span
#      records became flow events ("ph": s/t/f) correlated by span id.
#
# Every check degrades gracefully when the binaries were built with
# ULIPC_TRACE=OFF: the records simply do not exist, and the script only
# asserts that the tools say so instead of fabricating data.
#
# usage: span_smoke.sh <quickstart-binary> <ulipc-stat-binary>
set -euo pipefail

QUICKSTART=${1:?quickstart binary}
STAT=${2:?ulipc-stat binary}

WORK=$(mktemp -d)
SHM_NAME="/ulipc_span_smoke_$$"
trap 'rm -rf "$WORK"; rm -f "/dev/shm$SHM_NAME"' EXIT

export ULIPC_QUICKSTART_SHM="$SHM_NAME"
export ULIPC_QUICKSTART_REQUESTS=20000
export ULIPC_QUICKSTART_SPIN=0        # force block-every-time
export ULIPC_QUICKSTART_LINGER_MS=20000
export ULIPC_SPAN_SHIFT=0             # mint a span for every send

"$QUICKSTART" >"$WORK/quickstart.log" 2>&1 &
QS_PID=$!

for _ in $(seq 1 200); do
  grep -q '\[main\] done' "$WORK/quickstart.log" 2>/dev/null && break
  kill -0 "$QS_PID" 2>/dev/null || break
  sleep 0.1
done
grep -q '\[main\] done' "$WORK/quickstart.log" || {
  echo "FAIL: quickstart did not complete"; cat "$WORK/quickstart.log"; exit 1
}

TRACE_ON=$("$STAT" --json "$SHM_NAME" | python3 -c "import json,sys; print(json.load(sys.stdin)['trace_compiled'])")

echo "== ulipc-stat --spans (trace_compiled=$TRACE_ON) =="
"$STAT" --spans "$SHM_NAME" 2>"$WORK/spans.err" | tee "$WORK/spans.txt" || true
python3 - "$WORK/spans.txt" "$TRACE_ON" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
trace_on = sys.argv[2] == "True"
m = re.search(r"spans: (\d+) assembled \((\d+) complete, (\d+) partial\) "
              r"from (\d+) ring\(s\); records_dropped=(\d+)", text)
assert m, f"missing spans summary line in:\n{text}"
assembled, complete, partial, rings, dropped = map(int, m.groups())
if trace_on:
    assert complete > 0, "no complete spans despite ULIPC_SPAN_SHIFT=0"
    assert rings >= 2, f"spans must stitch across >=2 rings, got {rings}"
    # shift 0 at 20k requests wraps the 1024-record rings many times over:
    # the drop accounting must say so, and wrapped spans stay partial, not
    # corrupt (assembly succeeded above).
    assert dropped > 0, "rings wrapped but records_dropped==0"
    for phase in ("queue-residency", "wake-in-flight", "service",
                  "reply-path", "total"):
        assert re.search(rf"^{phase}\s+\d+", text, re.M), f"missing {phase} row"
else:
    assert assembled == 0, "span records present despite ULIPC_TRACE=OFF"
print(f"spans OK: {assembled} assembled, {complete} complete, "
      f"{rings} rings, {dropped} dropped (trace_on={trace_on})")
EOF

echo "== ulipc-stat --trace-export (flow events) =="
"$STAT" --trace-export="$WORK/trace.json" "$SHM_NAME"
python3 - "$WORK/trace.json" "$TRACE_ON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))     # must parse: well-formed JSON
trace_on = sys.argv[2] == "True"
flows = [e for e in doc["traceEvents"] if e.get("cat") == "span"]
starts = [e for e in flows if e["ph"] == "s"]
ends = [e for e in flows if e["ph"] == "f"]
if trace_on:
    assert starts, "no flow-start events despite ULIPC_TRACE=ON"
    assert ends, "no flow-end events despite ULIPC_TRACE=ON"
    assert all(e.get("bp") == "e" for e in ends), "flow ends need bp:e"
    # At least one span must flow start-to-finish across the export.
    assert {e["id"] for e in starts} & {e["id"] for e in ends}, \
        "no span id appears as both flow start and flow end"
else:
    assert not flows, "flow events present despite ULIPC_TRACE=OFF"
print(f"Chrome flow events OK: {len(flows)} span events, "
      f"{len(starts)} starts, {len(ends)} ends (trace_on={trace_on})")
EOF

kill "$QS_PID" 2>/dev/null || true
wait "$QS_PID" 2>/dev/null || true
echo "span_smoke PASS"
