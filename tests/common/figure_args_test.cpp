// benchsupport: FigureReport rendering/shape checks and the Args parser.
#include <gtest/gtest.h>

#include <sstream>

#include "benchsupport/args.hpp"
#include "benchsupport/figure.hpp"

namespace ulipc::bench {
namespace {

// ------------------------------------------------------------ FigureReport

TEST(FigureReport, RendersSeriesTable) {
  FigureReport r("Fig X", "test figure", "clients", "msgs/ms");
  Series& s = r.add_series("BSS");
  s.x = {1, 2, 3};
  s.y = {10.0, 20.0, 30.0};
  std::ostringstream os;
  EXPECT_EQ(r.render(os), 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("BSS"), std::string::npos);
  EXPECT_NE(out.find("20.00"), std::string::npos);
}

TEST(FigureReport, SeriesReferencesSurviveFurtherAdds) {
  // add_series must not invalidate previously returned references.
  FigureReport r("Fig", "t", "x", "y");
  Series& first = r.add_series("one");
  for (int i = 0; i < 20; ++i) r.add_series("filler" + std::to_string(i));
  first.x.push_back(1.0);
  first.y.push_back(2.0);
  EXPECT_EQ(first.label, "one");
}

TEST(FigureReport, FailedChecksCountAndRender) {
  FigureReport r("Fig", "t", "x", "y");
  r.check("passes", true, "detail-a");
  r.check("fails", false, "detail-b");
  std::ostringstream os;
  EXPECT_EQ(r.render(os), 1);
  EXPECT_EQ(r.failed_checks(), 1);
  EXPECT_NE(os.str().find("[shape OK]"), std::string::npos);
  EXPECT_NE(os.str().find("[shape MISMATCH]"), std::string::npos);
  EXPECT_NE(os.str().find("detail-b"), std::string::npos);
}

TEST(FigureReport, MissingPointsRenderDash) {
  FigureReport r("Fig", "t", "x", "y");
  Series& a = r.add_series("a");
  a.x = {1, 2};
  a.y = {1.0, 2.0};
  Series& b = r.add_series("b");
  b.x = {2};
  b.y = {5.0};
  std::ostringstream os;
  r.render(os);
  EXPECT_NE(os.str().find("| -"), std::string::npos);
}

// -------------------------------------------------------- shape predicates

TEST(ShapeHelpers, MostlyIncreasing) {
  EXPECT_TRUE(mostly_increasing({1, 2, 3}));
  EXPECT_TRUE(mostly_increasing({1, 2, 1.99, 3}, 0.05)) << "small dip ok";
  EXPECT_FALSE(mostly_increasing({3, 2, 1}));
  EXPECT_FALSE(mostly_increasing({1, 3, 2, 2.5}, 0.05)) << "big dip";
  EXPECT_FALSE(mostly_increasing({1, 2, 1.0})) << "must end above start";
  EXPECT_TRUE(mostly_increasing({})) << "trivially true";
}

TEST(ShapeHelpers, MostlyDecreasing) {
  EXPECT_TRUE(mostly_decreasing({3, 2, 1}));
  EXPECT_FALSE(mostly_decreasing({1, 2, 3}));
  EXPECT_TRUE(mostly_decreasing({3, 2.0, 2.05, 1}, 0.05));
}

TEST(ShapeHelpers, Dominates) {
  EXPECT_TRUE(dominates({2, 4}, {1, 2}, 1.0));
  EXPECT_TRUE(dominates({2, 4}, {1, 2}, 2.0));
  EXPECT_FALSE(dominates({2, 4}, {1, 3}, 2.0));
  EXPECT_FALSE(dominates({}, {}, 1.0)) << "no data cannot dominate";
}

// --------------------------------------------------------------------- Args

TEST(Args, FlagsAndValues) {
  const char* argv[] = {"prog", "--quick", "--messages=500", "--work=2.5"};
  Args args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has_flag("quick"));
  EXPECT_FALSE(args.has_flag("csv"));
  EXPECT_EQ(args.value_or("messages", std::int64_t{0}), 500);
  EXPECT_DOUBLE_EQ(args.value_or("work", 0.0), 2.5);
  EXPECT_EQ(args.value_or("missing", std::int64_t{7}), 7);
}

TEST(Args, QuickScalesMessages) {
  const char* argv[] = {"prog", "--quick"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.messages(1'000), 101u);  // 1000/10 + 1
  const char* argv2[] = {"prog"};
  Args plain(1, const_cast<char**>(argv2));
  EXPECT_EQ(plain.messages(1'000), 1'000u);
}

TEST(Args, ExplicitMessagesOverridesDefault) {
  const char* argv[] = {"prog", "--messages=42"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.messages(9'999), 42u);
}

TEST(Args, ValueReturnsNulloptWhenAbsent) {
  const char* argv[] = {"prog"};
  Args args(1, const_cast<char**>(argv));
  EXPECT_FALSE(args.value("anything").has_value());
}

}  // namespace
}  // namespace ulipc::bench
