#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ulipc {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22.5"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| longer-name | 22.5  |"), std::string::npos) << out;
  // Three rule lines: top, under header, bottom.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    if (out[pos] == '+') ++rules;  // rule lines start with '+'
    pos = out.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.render(os);
  EXPECT_NE(os.str().find("| only |"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(5.0, 0), "5");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCells) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(Csv, EmptyRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace ulipc
