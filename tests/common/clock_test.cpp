#include "common/clock.hpp"

#include <gtest/gtest.h>

namespace ulipc {
namespace {

TEST(Clock, MonotonicNonDecreasing) {
  std::int64_t prev = now_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t t = now_ns();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Clock, ThreadCpuAdvancesUnderWork) {
  // The thread CPU clock may be coarse on sandboxed kernels; spin in rounds
  // until it visibly advances (bounded by a generous total).
  const std::int64_t before = thread_cpu_ns();
  std::int64_t after = before;
  for (int round = 0; round < 100 && after <= before; ++round) {
    DelayLoop::spin_ns(2'000'000);  // 2 ms of spinning per round
    after = thread_cpu_ns();
  }
  EXPECT_GT(after, before);
}

TEST(DelayLoop, CalibrationIsPositiveAndCached) {
  const double a = DelayLoop::iters_per_ns();
  const double b = DelayLoop::iters_per_ns();
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b) << "calibration must be cached";
}

TEST(DelayLoop, SpinDurationRoughlyCalibrated) {
  // The calibration and this measurement both race with other load on a
  // shared CI box, so accept any of several attempts landing within a
  // factor of ~6 of the requested duration.
  constexpr std::int64_t kTarget = 5'000'000;  // 5 ms
  bool in_band = false;
  for (int attempt = 0; attempt < 5 && !in_band; ++attempt) {
    const std::int64_t t0 = now_ns();
    DelayLoop::spin_ns(kTarget);
    const std::int64_t elapsed = now_ns() - t0;
    in_band = elapsed > kTarget / 6 && elapsed < kTarget * 6;
  }
  EXPECT_TRUE(in_band);
}

TEST(TscClock, TicksAdvance) {
  const std::uint64_t a = TscClock::now();
  DelayLoop::spin_ns(100'000);
  EXPECT_GT(TscClock::now(), a);
}

TEST(TscClock, CalibrationConvertsTicksToMonotonicNs) {
  const TscClock::Calibration cal = TscClock::calibrate();
  EXPECT_GT(cal.ns_per_tick, 0.0);
  // Round trip: a fresh tick converted through the calibration must land
  // near the steady clock "now". 10 ms tolerance absorbs scheduling noise
  // on a loaded single-core host (the drift itself is microseconds).
  const std::uint64_t t = TscClock::now();
  const std::int64_t mono = now_ns();
  EXPECT_NEAR(static_cast<double>(cal.to_mono_ns(t)),
              static_cast<double>(mono), 10e6);
  // Epochs anchor the mapping: converting the epoch tick gives the epoch ns.
  EXPECT_EQ(cal.to_mono_ns(cal.tsc_epoch), cal.mono_epoch_ns);
}

TEST(TscClock, CachedCalibrationIsStable) {
  const TscClock::Calibration& a = TscClock::cached();
  const TscClock::Calibration& b = TscClock::cached();
  EXPECT_EQ(&a, &b) << "cached() must return one process-wide instance";
  EXPECT_GT(a.ns_per_tick, 0.0);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  DelayLoop::spin_ns(1'000'000);
  EXPECT_GT(sw.elapsed_ns(), 0);
  EXPECT_GT(sw.elapsed_us(), 0.0);
  EXPECT_GE(sw.elapsed_ms(), 0.0);
  const double before = sw.elapsed_ms();
  sw.reset();
  EXPECT_LE(sw.elapsed_ms(), before + 1.0);
}

}  // namespace
}  // namespace ulipc
