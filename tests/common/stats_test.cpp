#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ulipc {
namespace {

TEST(OnlineStats, EmptyState) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  Xoshiro256 rng(7);
  OnlineStats a;
  OnlineStats b;
  OnlineStats combined;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01() * 100.0;
    (i % 3 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a;
  OnlineStats b;
  b.add(3.0);
  a.merge(b);  // empty += non-empty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  OnlineStats c;
  a.merge(c);  // non-empty += empty
  EXPECT_EQ(a.count(), 1u);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(25.0), 25.75, 1e-12);
}

TEST(SampleSet, NanOnEmpty) {
  SampleSet s;
  EXPECT_TRUE(std::isnan(s.percentile(50.0)));
}

TEST(SampleSet, AddAfterSortStillCorrect) {
  SampleSet s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20.0);  // invalidates sorted state
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 100.0, 10);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(99.0);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[9], 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 20.0);
}

TEST(Histogram, OutOfRangeClampsToEndBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(1e9);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

}  // namespace
}  // namespace ulipc
