#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ulipc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

class RngBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundsTest, BelowStaysInRange) {
  Xoshiro256 rng(GetParam());
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST_P(RngBoundsTest, RangeInclusive) {
  Xoshiro256 rng(GetParam());
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all 7 values should appear in 500 draws";
}

TEST_P(RngBoundsTest, Uniform01HalfOpen) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundsTest,
                         ::testing::Values(0, 1, 42, 0xDEADBEEF, ~0ull));

TEST(Rng, Below1AlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, MeanRoughlyCentered) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

}  // namespace
}  // namespace ulipc
