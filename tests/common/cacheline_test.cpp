#include "common/cacheline.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace ulipc {
namespace {

TEST(AlignUp, Basics) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(63, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_up(7, 8), 8u);
}

TEST(CacheAligned, OccupiesFullLines) {
  EXPECT_EQ(sizeof(CacheAligned<char>), kCacheLineSize);
  EXPECT_EQ(sizeof(CacheAligned<std::uint64_t>), kCacheLineSize);
  EXPECT_EQ(alignof(CacheAligned<char>), kCacheLineSize);
  struct Big {
    char data[70];
  };
  EXPECT_EQ(sizeof(CacheAligned<Big>), 2 * kCacheLineSize);
}

TEST(CacheAligned, AccessorsWork) {
  CacheAligned<int> v(41);
  EXPECT_EQ(*v, 41);
  *v += 1;
  EXPECT_EQ(v.value, 42);
  const CacheAligned<int> c(7);
  EXPECT_EQ(*c, 7);
}

TEST(CacheAligned, ArrayElementsOnDistinctLines) {
  CacheAligned<int> arr[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&arr[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&arr[1]);
  EXPECT_GE(b - a, kCacheLineSize);
}

}  // namespace
}  // namespace ulipc
