#include "common/error.hpp"

#include <gtest/gtest.h>

#include <cerrno>

namespace ulipc {
namespace {

TEST(SysError, CarriesErrnoAndMessage) {
  const SysError e("opening widget", ENOENT);
  EXPECT_EQ(e.errno_value(), ENOENT);
  const std::string what = e.what();
  EXPECT_NE(what.find("opening widget"), std::string::npos);
  EXPECT_NE(what.find(std::to_string(ENOENT)), std::string::npos);
}

TEST(SysError, ThrowErrnoUsesCurrentErrno) {
  errno = EAGAIN;
  try {
    throw_errno("resource probe");
    FAIL() << "throw_errno must not return";
  } catch (const SysError& e) {
    EXPECT_EQ(e.errno_value(), EAGAIN);
  }
}

TEST(CheckErrno, PassesOnTrue) {
  EXPECT_NO_THROW(ULIPC_CHECK_ERRNO(true, "never fires"));
}

TEST(CheckErrno, ThrowsOnFalse) {
  errno = EPERM;
  EXPECT_THROW(ULIPC_CHECK_ERRNO(false, "fires"), SysError);
}

TEST(Invariant, PassesOnTrue) {
  EXPECT_NO_THROW(ULIPC_INVARIANT(1 + 1 == 2, "math"));
}

TEST(Invariant, MessageNamesFileAndText) {
  try {
    ULIPC_INVARIANT(false, "the-condition");
    FAIL() << "must throw";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the-condition"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Invariant, IsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(ULIPC_INVARIANT(false, "x"), std::logic_error);
}

}  // namespace
}  // namespace ulipc
