// The Figure-4 interleavings replayed against the BATCHED producer and
// consumer helpers (enqueue_batch_and_wake / dequeue_batch_or_sleep).
//
// Wake-up coalescing only changes WHO pays the tas/V — once per landed
// chunk instead of once per message — not the race structure: the producer
// still publishes, fences, and test-and-sets after every chunk, and the
// consumer's sleep path is literally the scalar C.1–C.5 protocol. These
// tests force the same schedules as race_interleavings_test.cpp and assert
// that (a) a burst costs exactly one V, (b) stray wake-ups are still
// absorbed, (c) the no-recheck deadlock schedule is still survived, and
// (d) a partial batch against a full queue wakes the consumer BEFORE the
// producer's flow-control sleep (the mutual-sleep hazard specific to
// batching).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "protocols/detail.hpp"
#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

namespace ulipc::sim {
namespace {

Machine fast_machine() {
  Machine m;
  m.name = "batched-race-test";
  m.cpus = 1;
  m.costs = Costs{};
  m.costs.quantum = 1'000'000'000;  // no spurious preemption
  m.yield_cost_points = {{1, 1'000}};
  m.default_policy = PolicyKind::kFixed;
  return m;
}

// ---------------------------------------------------------------------------
// Interleaving 2, batched: a whole burst aimed at a sleeping consumer must
// post exactly one V — the other n-1 messages ride that wake-up and are
// accounted as wakeups_coalesced.
TEST(BatchedFigure4, BurstCoalescesToSingleWakeup) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;
  ep.awake = 0;  // consumer is (about to be) asleep

  constexpr std::uint32_t kBurst = 8;
  const int producer_pid = k.spawn("producer", [&] {
    Message msgs[kBurst];
    for (std::uint32_t i = 0; i < kBurst; ++i) {
      msgs[i] = Message(Op::kEcho, 0, static_cast<double>(i));
    }
    detail::enqueue_batch_and_wake(plat, ep, msgs, kBurst);
  });
  k.run();

  EXPECT_EQ(ep.sem.total_posts, 1u)
      << "one coalesced V for the burst, not " << kBurst;
  EXPECT_EQ(ep.sem.count, 1) << "the V stays pending for the consumer";
  const ProtocolCounters& c = k.process(producer_pid).counters;
  EXPECT_EQ(c.batch_enqueues, 1u);
  EXPECT_EQ(c.wakeups_coalesced, kBurst - 1);
  EXPECT_EQ(c.wakeups, 1u);
}

// ---------------------------------------------------------------------------
// Interleaving 3, batched: the producer's (single, coalesced) wake-up lands
// on a consumer whose C.3 recheck succeeded — the success-path tas must
// still absorb it, and the non-blocking drain after the scalar sleep path
// must deliver the whole burst.
TEST(BatchedFigure4, Interleaving3_StrayWakeupAbsorbedOnBatchedPath) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;

  constexpr std::uint32_t kBurst = 4;
  int consumer_pid = -1;
  int producer_pid = -1;
  k.set_op_hook([&](OpKind kind, int pid) -> std::optional<int> {
    // The moment the consumer clears its awake flag (C.2), run the producer
    // to completion: the burst lands, awake==0, one V — a wake-up for a
    // consumer that will then find messages at C.3 and never sleep.
    if (pid == consumer_pid && kind == OpKind::kFlagStore && ep.awake == 0) {
      return producer_pid;
    }
    return std::nullopt;
  });

  ProtocolCounters* consumer_counters = nullptr;
  Message got[kBurst];
  std::uint32_t n_got = 0;
  consumer_pid = k.spawn("consumer", [&] {
    consumer_counters = &plat.counters();
    n_got = detail::dequeue_batch_or_sleep(plat, ep, got, kBurst,
                                           /*pre_busy_wait=*/false);
  });
  producer_pid = k.spawn("producer", [&] {
    Message msgs[kBurst];
    for (std::uint32_t i = 0; i < kBurst; ++i) {
      msgs[i] = Message(Op::kEcho, 0, static_cast<double>(i));
    }
    detail::enqueue_batch_and_wake(plat, ep, msgs, kBurst);
  });

  k.run();
  ASSERT_EQ(n_got, kBurst) << "the drain after C.3 collects the full burst";
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    EXPECT_DOUBLE_EQ(got[i].value, static_cast<double>(i));
  }
  ASSERT_NE(consumer_counters, nullptr);
  EXPECT_EQ(consumer_counters->sem_absorbs, 1u)
      << "consumer must detect and absorb the stray coalesced wake-up";
  EXPECT_EQ(ep.sem.count, 0) << "no count may be left behind";
}

// ---------------------------------------------------------------------------
// Interleaving 4's schedule, batched: producer reads the awake flag before
// the consumer clears it. The shipped batched consumer keeps the C.3
// recheck (its sleep path IS the scalar protocol), so the schedule that
// deadlocks a recheck-less consumer must terminate here with nothing lost.
TEST(BatchedFigure4, Interleaving4_BatchedPathSurvivesNoRecheckSchedule) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;

  constexpr std::uint32_t kBurst = 6;
  int consumer_pid = -1;
  int producer_pid = -1;
  bool forced = false;
  k.set_op_hook([&](OpKind kind, int pid) -> std::optional<int> {
    // After the consumer's first failed dequeue (C.1) — before it clears
    // the flag — run the producer: it enqueues the burst, reads awake==1,
    // and skips the V entirely.
    if (!forced && pid == consumer_pid && kind == OpKind::kDequeue &&
        ep.queue.empty()) {
      forced = true;
      return producer_pid;
    }
    return std::nullopt;
  });

  std::vector<double> values;
  consumer_pid = k.spawn("consumer", [&] {
    Message out[kBurst];
    while (values.size() < kBurst) {
      const std::uint32_t n = detail::dequeue_batch_or_sleep(
          plat, ep, out, kBurst, /*pre_busy_wait=*/false);
      for (std::uint32_t i = 0; i < n; ++i) values.push_back(out[i].value);
    }
  });
  producer_pid = k.spawn("producer", [&] {
    Message msgs[kBurst];
    for (std::uint32_t i = 0; i < kBurst; ++i) {
      msgs[i] = Message(Op::kEcho, 0, static_cast<double>(i));
    }
    detail::enqueue_batch_and_wake(plat, ep, msgs, kBurst);
  });

  k.run();  // must terminate: C.3 finds the burst, no sleep happens
  ASSERT_EQ(values.size(), kBurst);
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    EXPECT_DOUBLE_EQ(values[i], static_cast<double>(i));
  }
}

// ---------------------------------------------------------------------------
// The batching-specific hazard: a burst larger than the queue. The producer
// lands a partial chunk, the queue is full, and the consumer may already be
// committed to sleeping. The producer MUST issue the chunk's wake-up before
// its own flow-control sleep — sleeping first leaves both sides asleep with
// nobody to deliver either wake-up.
TEST(BatchedFigure4, PartialBatchWakesConsumerBeforeFlowControlSleep) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep(4);  // queue holds only 4 of the 10-message burst

  constexpr std::uint32_t kBurst = 10;
  std::vector<double> values;
  k.spawn("consumer", [&] {
    Message out[kBurst];
    while (values.size() < kBurst) {
      const std::uint32_t n = detail::dequeue_batch_or_sleep(
          plat, ep, out, kBurst, /*pre_busy_wait=*/false);
      for (std::uint32_t i = 0; i < n; ++i) values.push_back(out[i].value);
    }
  });
  const int producer_pid = k.spawn("producer", [&] {
    Message msgs[kBurst];
    for (std::uint32_t i = 0; i < kBurst; ++i) {
      msgs[i] = Message(Op::kEcho, 0, static_cast<double>(i));
    }
    detail::enqueue_batch_and_wake(plat, ep, msgs, kBurst);
  });

  k.run();  // would deadlock (or spin forever) if the wake came after the
            // producer's sleep
  ASSERT_EQ(values.size(), kBurst);
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    EXPECT_DOUBLE_EQ(values[i], static_cast<double>(i));
  }
  // Still coalesced: one V per landed chunk (at most ceil(10/4) = 3 chunks),
  // never one per message.
  EXPECT_LE(ep.sem.total_posts, 3u);
  EXPECT_GE(k.process(producer_pid).counters.wakeups_coalesced,
            kBurst - 3u);
}

}  // namespace
}  // namespace ulipc::sim
