// The protocol building blocks (detail::enqueue_and_wake /
// detail::dequeue_or_sleep) in isolation on the simulator: counter
// accounting, flow control, and the wake-guard economics.
#include "protocols/detail.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

namespace ulipc::sim {
namespace {

Machine tiny() {
  Machine m;
  m.name = "detail-test";
  m.cpus = 1;
  m.costs = Costs{};
  m.costs.quantum = 1'000'000'000;
  m.yield_cost_points = {{1, 1'000}};
  m.default_policy = PolicyKind::kFixed;
  return m;
}

TEST(DetailPrimitives, NoWakeupWhenConsumerAwake) {
  SimKernel k(tiny());
  SimPlatform plat(k);
  SimEndpoint ep;  // awake == 1
  k.spawn("producer", [&] {
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 1.0));
  });
  k.run();
  EXPECT_EQ(ep.sem.total_posts, 0u) << "awake consumer needs no V";
  EXPECT_EQ(k.process(0).counters.wakeups, 0u);
}

TEST(DetailPrimitives, WakeupWhenConsumerAsleep) {
  SimKernel k(tiny());
  SimPlatform plat(k);
  SimEndpoint ep;
  ep.awake = 0;
  k.spawn("producer", [&] {
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 1.0));
  });
  k.run();
  EXPECT_EQ(ep.sem.total_posts, 1u);
  EXPECT_EQ(ep.awake, 1) << "tas sets the flag";
  EXPECT_EQ(k.process(0).counters.wakeups, 1u);
}

TEST(DetailPrimitives, ImmediateDequeueTouchesNothing) {
  SimKernel k(tiny());
  SimPlatform plat(k);
  SimEndpoint ep;
  ep.queue.fifo.push_back(Message(Op::kEcho, 0, 5.0));
  k.spawn("consumer", [&] {
    Message m;
    detail::dequeue_or_sleep(plat, ep, &m, false);
    EXPECT_DOUBLE_EQ(m.value, 5.0);
  });
  k.run();
  EXPECT_EQ(k.process(0).counters.blocks, 0u);
  EXPECT_EQ(ep.awake, 1);
  EXPECT_EQ(ep.sem.total_waits, 0u);
}

TEST(DetailPrimitives, FullQueueSleepsAndRetries) {
  SimKernel k(tiny());
  SimPlatform plat(k);
  SimEndpoint ep(1);  // capacity 1
  ep.queue.fifo.push_back(Message(Op::kEcho, 0, 0.0));  // pre-filled: full
  k.spawn("producer", [&] {
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 1.0));
  });
  k.spawn("drainer", [&] {
    // Give the producer time to hit the full queue and sleep(1).
    k.sleep_ns(100'000'000);  // 0.1 virtual seconds
    Message m;
    plat.dequeue(ep, &m);
  });
  k.run();
  EXPECT_EQ(k.process(0).counters.full_sleeps, 1u);
  EXPECT_EQ(ep.queue.fifo.size(), 1u) << "retried enqueue landed";
  EXPECT_GE(k.now(), 1'000'000'000) << "the paper's sleep(1) is a full second";
}

TEST(DetailPrimitives, ConsumerIteratesExtraSemaphoreCounts) {
  // "the consumer will simply iterate until the semaphore count reaches
  // zero and then block" — pre-load stray counts and verify they are
  // consumed without losing the message.
  SimKernel k(tiny());
  SimPlatform plat(k);
  SimEndpoint ep;
  ep.sem.count = 3;  // stray accumulated wake-ups
  ep.awake = 0;
  Message got;
  k.spawn("consumer", [&] {
    detail::dequeue_or_sleep(plat, ep, &got, false);
  });
  k.spawn("producer", [&] {
    // Delay so the consumer burns the stray counts first.
    k.sleep_ns(1'000'000);
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 9.0));
  });
  k.run();
  EXPECT_DOUBLE_EQ(got.value, 9.0);
  EXPECT_EQ(ep.sem.count, 0) << "stray counts fully drained";
}

TEST(DetailPrimitives, PreBusyWaitHintCounts) {
  SimKernel k(tiny());
  SimPlatform plat(k);
  SimEndpoint ep;
  Message got;
  k.spawn("consumer", [&] {
    detail::dequeue_or_sleep(plat, ep, &got, /*pre_busy_wait=*/true);
  });
  k.spawn("producer", [&] {
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 2.0));
  });
  k.run();
  EXPECT_DOUBLE_EQ(got.value, 2.0);
  EXPECT_GE(k.process(0).counters.busy_waits, 1u)
      << "the BSWY hand-off hint must be recorded";
}

TEST(DetailPrimitives, SequentialProducersOneWakeupPerSleepCycle) {
  SimKernel k(tiny());
  SimPlatform plat(k);
  SimEndpoint ep;
  ep.awake = 0;  // consumer committed to sleeping
  for (int p = 0; p < 3; ++p) {
    k.spawn("producer", [&] {
      detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 1.0));
    });
  }
  k.run();
  EXPECT_EQ(ep.sem.total_posts, 1u)
      << "only the first producer to see awake==0 pays the V";
  EXPECT_EQ(ep.queue.fifo.size(), 3u);
}

}  // namespace
}  // namespace ulipc::sim
