#include "protocols/protocol_set.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

namespace ulipc {
namespace {

TEST(ProtocolSet, NamesRoundTripThroughParse) {
  for (const ProtocolKind kind :
       {ProtocolKind::kBss, ProtocolKind::kBsw, ProtocolKind::kBswy,
        ProtocolKind::kBsls, ProtocolKind::kBslsFixed, ProtocolKind::kSysv}) {
    const auto parsed = parse_protocol(protocol_name(kind));
    ASSERT_TRUE(parsed.has_value()) << protocol_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(ProtocolSet, ParseAcceptsLowercase) {
  EXPECT_EQ(parse_protocol("bsls"), ProtocolKind::kBsls);
  EXPECT_EQ(parse_protocol("bsls_fixed"), ProtocolKind::kBslsFixed);
  EXPECT_EQ(parse_protocol("sysv"), ProtocolKind::kSysv);
}

TEST(ProtocolSet, BslsDispatchSelectsSpinMode) {
  // kBsls is the adaptive variant; kBslsFixed pins the paper's constant
  // (what the MAX_SPIN-sweep figures need).
  using P = sim::SimPlatform;
  const auto mode_of = [](ProtocolKind kind) {
    return with_protocol<P>(kind, 20, [](auto proto) {
      if constexpr (requires { proto.mode(); }) {
        return proto.mode();
      } else {
        return SpinMode::kFixed;
      }
    });
  };
  EXPECT_EQ(mode_of(ProtocolKind::kBsls), SpinMode::kAdaptive);
  EXPECT_EQ(mode_of(ProtocolKind::kBslsFixed), SpinMode::kFixed);
}

TEST(ProtocolSet, ParseRejectsUnknown) {
  EXPECT_FALSE(parse_protocol("TCP").has_value());
  EXPECT_FALSE(parse_protocol("").has_value());
  EXPECT_FALSE(parse_protocol("Bss").has_value()) << "mixed case not accepted";
}

TEST(ProtocolSet, DispatchInstantiatesRequestedProtocol) {
  using P = sim::SimPlatform;
  EXPECT_STREQ(with_protocol<P>(ProtocolKind::kBss, 0,
                                [](auto proto) { return proto.kName; }),
               "BSS");
  EXPECT_STREQ(with_protocol<P>(ProtocolKind::kBsw, 0,
                                [](auto proto) { return proto.kName; }),
               "BSW");
  EXPECT_STREQ(with_protocol<P>(ProtocolKind::kBswy, 0,
                                [](auto proto) { return proto.kName; }),
               "BSWY");
  EXPECT_STREQ(with_protocol<P>(ProtocolKind::kBsls, 7,
                                [](auto proto) { return proto.kName; }),
               "BSLS");
}

TEST(ProtocolSet, DispatchPassesMaxSpinToBsls) {
  using P = sim::SimPlatform;
  const std::uint32_t spin = with_protocol<P>(
      ProtocolKind::kBsls, 13, [](auto proto) {
        if constexpr (requires { proto.max_spin(); }) {
          return proto.max_spin();
        } else {
          return 0u;
        }
      });
  EXPECT_EQ(spin, 13u);
}

TEST(ProtocolSet, DispatchRejectsSysv) {
  using P = sim::SimPlatform;
  EXPECT_THROW(with_protocol<P>(ProtocolKind::kSysv, 0, [](auto) {}),
               InvariantError);
}

}  // namespace
}  // namespace ulipc
