// The protocol building blocks on the native platform under real
// concurrency (threads sharing one address space — the harsher memory-model
// environment, since no fork serializes startup).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "protocols/bsls.hpp"
#include "protocols/bsw.hpp"
#include "protocols/channel.hpp"
#include "protocols/detail.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class NativeThreadsTest : public ::testing::Test {
 protected:
  NativeThreadsTest() {
    ShmChannel::Config cfg;
    cfg.max_clients = 4;
    cfg.queue_capacity = 16;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
};

TEST_F(NativeThreadsTest, ProducerConsumerSleepWake) {
  // The raw detail:: primitives: consumer sleeps, producer wakes, high
  // rate. The queue is small (16), so the producer hits the queue-full
  // path constantly — compress the paper's sleep(1) so the test is fast.
  NativeEndpoint& ep = channel_->server_endpoint();
  constexpr int kMessages = 20'000;
  NativePlatform::Config pc;
  pc.full_sleep_ns = 20'000;  // 20 us "seconds"
  std::thread producer([&] {
    NativePlatform plat(pc);
    for (int i = 0; i < kMessages; ++i) {
      detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, double(i)));
    }
  });
  NativePlatform plat;
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    detail::dequeue_or_sleep(plat, ep, &m, /*pre_busy_wait=*/false);
    ASSERT_DOUBLE_EQ(m.value, double(i));
  }
  producer.join();
  EXPECT_TRUE(ep.queue->empty());
  EXPECT_EQ(ep.fsem.value(), 0u) << "no semaphore residue";
}

TEST_F(NativeThreadsTest, ManyProducersOneSleepyConsumer) {
  // The interleaving-2 regime natively: several producers racing on the
  // awake flag. No lost wake-ups, no unbounded count accumulation.
  NativeEndpoint& ep = channel_->server_endpoint();
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  NativePlatform::Config pc;
  pc.full_sleep_ns = 20'000;  // 20 us "seconds" for queue-full backoff
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p, pc] {
      NativePlatform plat(pc);
      for (int i = 0; i < kPerProducer; ++i) {
        detail::enqueue_and_wake(
            plat, ep, Message(Op::kEcho, static_cast<std::uint32_t>(p), 1.0));
      }
    });
  }
  NativePlatform plat;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    Message m;
    detail::dequeue_or_sleep(plat, ep, &m, false);
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ep.queue->empty());
  // Any count left could only come from wake-ups the consumer absorbed
  // incorrectly; the protocol guarantees zero.
  EXPECT_EQ(ep.fsem.value(), 0u);
}

TEST_F(NativeThreadsTest, EchoSessionOverThreads) {
  // Full Send/Receive/Reply with server and clients as threads.
  constexpr std::uint32_t kClients = 3;
  constexpr std::uint64_t kMessages = 3'000;
  std::thread server([&] {
    NativePlatform plat;
    Bsls<NativePlatform> proto(10);
    auto reply_ep = [&](std::uint32_t id) -> NativeEndpoint& {
      return channel_->client_endpoint(id);
    };
    const ServerResult r = run_echo_server(
        plat, proto, channel_->server_endpoint(), reply_ep, kClients);
    EXPECT_EQ(r.echo_messages, kClients * kMessages);
  });
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> verified{0};
  for (std::uint32_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      NativePlatform plat;
      Bsls<NativePlatform> proto(10);
      NativeEndpoint& srv = channel_->server_endpoint();
      NativeEndpoint& mine = channel_->client_endpoint(i);
      client_connect(plat, proto, srv, mine, i);
      verified += client_echo_loop(plat, proto, srv, mine, i, kMessages);
      client_disconnect(plat, proto, srv, mine, i);
    });
  }
  for (auto& t : clients) t.join();
  server.join();
  EXPECT_EQ(verified.load(), kClients * kMessages);
}

TEST_F(NativeThreadsTest, QueueFullFlowControlUnderPressure) {
  // Queue capacity 16, async flood of 500: the producer must hit the
  // full-queue sleep path and still deliver everything in order.
  NativeEndpoint& ep = channel_->server_endpoint();
  constexpr int kMessages = 500;
  NativePlatform::Config pc;
  pc.full_sleep_ns = 100'000;  // 0.1 ms "seconds"
  std::thread producer([&] {
    NativePlatform plat(pc);
    for (int i = 0; i < kMessages; ++i) {
      detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, double(i)));
    }
    EXPECT_GT(plat.counters().full_sleeps, 0u)
        << "flood must exercise the queue-full path";
  });
  NativePlatform plat;
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    detail::dequeue_or_sleep(plat, ep, &m, false);
    ASSERT_DOUBLE_EQ(m.value, double(i));
    if (i % 64 == 0) {
      // Let the queue fill up between bursts.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  producer.join();
}

TEST_F(NativeThreadsTest, AsyncBatchThenCollect) {
  NativeEndpoint& srv = channel_->server_endpoint();
  NativeEndpoint& clnt = channel_->client_endpoint(0);
  constexpr std::uint64_t kBatch = 12;
  std::thread server([&] {
    NativePlatform plat;
    Bsw<NativePlatform> proto;
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      Message m;
      proto.receive(plat, srv, &m);
      proto.reply(plat, clnt, m);
    }
  });
  NativePlatform plat;
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    async_send(plat, srv, Message(Op::kEcho, 0, double(i)));
  }
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    EXPECT_DOUBLE_EQ(collect_reply(plat, clnt).value, double(i));
  }
  server.join();
}

}  // namespace
}  // namespace ulipc
