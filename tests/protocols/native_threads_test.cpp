// The protocol building blocks on the native platform under real
// concurrency (threads sharing one address space — the harsher memory-model
// environment, since no fork serializes startup).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "protocols/bss.hpp"
#include "protocols/bsls.hpp"
#include "protocols/bsw.hpp"
#include "protocols/bswy.hpp"
#include "protocols/channel.hpp"
#include "protocols/detail.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class NativeThreadsTest : public ::testing::Test {
 protected:
  NativeThreadsTest() {
    ShmChannel::Config cfg;
    cfg.max_clients = 4;
    cfg.queue_capacity = 16;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
};

TEST_F(NativeThreadsTest, ProducerConsumerSleepWake) {
  // The raw detail:: primitives: consumer sleeps, producer wakes, high
  // rate. The queue is small (16), so the producer hits the queue-full
  // path constantly — compress the paper's sleep(1) so the test is fast.
  NativeEndpoint& ep = channel_->server_endpoint();
  constexpr int kMessages = 20'000;
  NativePlatform::Config pc;
  pc.full_sleep_ns = 20'000;  // 20 us "seconds"
  std::thread producer([&] {
    NativePlatform plat(pc);
    for (int i = 0; i < kMessages; ++i) {
      detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, double(i)));
    }
  });
  NativePlatform plat;
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    detail::dequeue_or_sleep(plat, ep, &m, /*pre_busy_wait=*/false);
    ASSERT_DOUBLE_EQ(m.value, double(i));
  }
  producer.join();
  EXPECT_TRUE(ep.queue->empty());
  EXPECT_EQ(ep.fsem.value(), 0u) << "no semaphore residue";
}

TEST_F(NativeThreadsTest, ManyProducersOneSleepyConsumer) {
  // The interleaving-2 regime natively: several producers racing on the
  // awake flag. No lost wake-ups, no unbounded count accumulation.
  NativeEndpoint& ep = channel_->server_endpoint();
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  NativePlatform::Config pc;
  pc.full_sleep_ns = 20'000;  // 20 us "seconds" for queue-full backoff
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p, pc] {
      NativePlatform plat(pc);
      for (int i = 0; i < kPerProducer; ++i) {
        detail::enqueue_and_wake(
            plat, ep, Message(Op::kEcho, static_cast<std::uint32_t>(p), 1.0));
      }
    });
  }
  NativePlatform plat;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    Message m;
    detail::dequeue_or_sleep(plat, ep, &m, false);
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ep.queue->empty());
  // Any count left could only come from wake-ups the consumer absorbed
  // incorrectly; the protocol guarantees zero.
  EXPECT_EQ(ep.fsem.value(), 0u);
}

TEST_F(NativeThreadsTest, EchoSessionOverThreads) {
  // Full Send/Receive/Reply with server and clients as threads.
  constexpr std::uint32_t kClients = 3;
  constexpr std::uint64_t kMessages = 3'000;
  std::thread server([&] {
    NativePlatform plat;
    Bsls<NativePlatform> proto(10);
    auto reply_ep = [&](std::uint32_t id) -> NativeEndpoint& {
      return channel_->client_endpoint(id);
    };
    const ServerResult r = run_echo_server(
        plat, proto, channel_->server_endpoint(), reply_ep, kClients);
    EXPECT_EQ(r.echo_messages, kClients * kMessages);
  });
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> verified{0};
  for (std::uint32_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      NativePlatform plat;
      Bsls<NativePlatform> proto(10);
      NativeEndpoint& srv = channel_->server_endpoint();
      NativeEndpoint& mine = channel_->client_endpoint(i);
      client_connect(plat, proto, srv, mine, i);
      verified += client_echo_loop(plat, proto, srv, mine, i, kMessages);
      client_disconnect(plat, proto, srv, mine, i);
    });
  }
  for (auto& t : clients) t.join();
  server.join();
  EXPECT_EQ(verified.load(), kClients * kMessages);
}

TEST_F(NativeThreadsTest, QueueFullFlowControlUnderPressure) {
  // Queue capacity 16, async flood of 500: the producer must hit the
  // full-queue sleep path and still deliver everything in order.
  NativeEndpoint& ep = channel_->server_endpoint();
  constexpr int kMessages = 500;
  NativePlatform::Config pc;
  pc.full_sleep_ns = 100'000;  // 0.1 ms "seconds"
  std::thread producer([&] {
    NativePlatform plat(pc);
    for (int i = 0; i < kMessages; ++i) {
      detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, double(i)));
    }
    EXPECT_GT(plat.counters().full_sleeps, 0u)
        << "flood must exercise the queue-full path";
  });
  NativePlatform plat;
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    detail::dequeue_or_sleep(plat, ep, &m, false);
    ASSERT_DOUBLE_EQ(m.value, double(i));
    if (i % 64 == 0) {
      // Let the queue fill up between bursts.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  producer.join();
}

// ------------------------------------------------------------ timed waits

/// receive_until on a quiet endpoint must come back with kTimeout in
/// bounded time for every protocol, bumping the timeouts counter.
template <typename Proto>
void expect_receive_timeout(NativeEndpoint& ep, Proto proto) {
  NativePlatform plat;
  Message m;
  const std::int64_t t0 = plat.time_ns();
  const Status st = proto.receive_until(plat, ep, &m, t0 + 20'000'000);
  EXPECT_EQ(st, Status::kTimeout);
  const std::int64_t elapsed = plat.time_ns() - t0;
  EXPECT_GE(elapsed, 20'000'000);
  EXPECT_LT(elapsed, 2'000'000'000);
  EXPECT_GE(plat.counters().timeouts, 1u);
}

TEST_F(NativeThreadsTest, ReceiveUntilTimesOutOnQuietEndpoint) {
  NativeEndpoint& ep = channel_->server_endpoint();
  expect_receive_timeout(ep, Bsw<NativePlatform>());
  expect_receive_timeout(ep, Bswy<NativePlatform>());
  expect_receive_timeout(ep, Bsls<NativePlatform>(10));
  expect_receive_timeout(ep, Bss<NativePlatform>());
}

TEST_F(NativeThreadsTest, TimedOutReceiverStillSeesLateTraffic) {
  // After a timeout the consumer restored its awake flag, so a producer
  // arriving later takes the no-wake fast path and the message must still
  // be found at the next receive — the no-lost-wakeup guarantee holds
  // across the timeout path.
  NativeEndpoint& ep = channel_->server_endpoint();
  NativePlatform plat;
  Bsw<NativePlatform> proto;
  Message m;
  ASSERT_EQ(proto.receive_until(plat, ep, &m, plat.time_ns() + 5'000'000),
            Status::kTimeout);
  EXPECT_TRUE(ep.awake.is_set()) << "timeout must leave the flag awake";
  detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 42.0));
  ASSERT_EQ(proto.receive_until(plat, ep, &m, plat.time_ns() + 100'000'000),
            Status::kOk);
  EXPECT_DOUBLE_EQ(m.value, 42.0);
  EXPECT_EQ(ep.fsem.value(), 0u) << "no semaphore residue across timeout";
}

TEST_F(NativeThreadsTest, SendUntilTimesOutWithNoServer) {
  NativePlatform plat;
  Bsw<NativePlatform> proto;
  NativeEndpoint& srv = channel_->server_endpoint();
  NativeEndpoint& mine = channel_->client_endpoint(0);
  Message ans;
  const Status st = proto.send_until(plat, srv, mine,
                                     Message(Op::kEcho, 0, 1.0), &ans,
                                     plat.time_ns() + 20'000'000);
  EXPECT_EQ(st, Status::kTimeout);
  // The request itself was delivered (sends are enqueue-then-await-reply);
  // only the reply wait expired.
  EXPECT_EQ(srv.queue->size(), 1u);
  Message m;
  ASSERT_TRUE(srv.queue->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 1.0);
}

TEST_F(NativeThreadsTest, FullQueueTimedSendHonorsDeadline) {
  // The queue-full flow-control sleep is the paper's sleep(1) — a full
  // second by default. A timed send that hits a full queue used to park for
  // the whole quantum before looking at its deadline again, overshooting a
  // 30 ms budget by ~970 ms. sleep_capped() clamps each quantum to the
  // remaining budget, so the timeout lands within a timer tick.
  NativePlatform plat;  // DEFAULT config: full_sleep_ns = 1 s, the real one
  NativeEndpoint& ep = channel_->server_endpoint();
  while (plat.enqueue(ep, Message(Op::kEcho, 0, 0.0))) {
  }

  const auto t0 = std::chrono::steady_clock::now();
  const Status st = detail::enqueue_and_wake_until(
      plat, ep, Message(Op::kEcho, 0, 1.0), plat.time_ns() + 30'000'000);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_EQ(st, Status::kTimeout);
  EXPECT_GT(plat.counters().full_sleeps, 0u)
      << "the point is timing out FROM the flow-control sleep";
  EXPECT_EQ(plat.counters().timeouts, 1u);
  EXPECT_GE(elapsed, std::chrono::milliseconds(30));
  EXPECT_LT(elapsed, std::chrono::milliseconds(500))
      << "deadline overshot by a full sleep quantum";
}

TEST_F(NativeThreadsTest, ReceiveUntilReturnsOkWhenTrafficArrives) {
  NativeEndpoint& ep = channel_->server_endpoint();
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    NativePlatform plat;
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 9.0));
  });
  NativePlatform plat;
  Bsw<NativePlatform> proto;
  Message m;
  const Status st =
      proto.receive_until(plat, ep, &m, plat.time_ns() + 2'000'000'000);
  producer.join();
  EXPECT_EQ(st, Status::kOk);
  EXPECT_DOUBLE_EQ(m.value, 9.0);
  EXPECT_EQ(plat.counters().timeouts, 0u);
}

TEST_F(NativeThreadsTest, AsyncBatchThenCollect) {
  NativeEndpoint& srv = channel_->server_endpoint();
  NativeEndpoint& clnt = channel_->client_endpoint(0);
  constexpr std::uint64_t kBatch = 12;
  std::thread server([&] {
    NativePlatform plat;
    Bsw<NativePlatform> proto;
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      Message m;
      proto.receive(plat, srv, &m);
      proto.reply(plat, clnt, m);
    }
  });
  NativePlatform plat;
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    async_send(plat, srv, Message(Op::kEcho, 0, double(i)));
  }
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    EXPECT_DOUBLE_EQ(collect_reply(plat, clnt).value, double(i));
  }
  server.join();
}

}  // namespace
}  // namespace ulipc
