// Adaptive MAX_SPIN (BSLS SpinMode::kAdaptive): the bound follows
// EWMA(wake latency) / EWMA(poll cost), clamped to [kMinSpinBound,
// kMaxSpinBound]; fixed mode must never move off the paper's constant.
#include <gtest/gtest.h>

#include "protocols/bsls.hpp"
#include "sim/machine.hpp"
#include "sim/sim_experiment.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

namespace ulipc::sim {
namespace {

Machine fast_machine() {
  Machine m;
  m.name = "adaptive-bsls-test";
  m.cpus = 1;
  m.costs = Costs{};
  m.costs.quantum = 1'000'000'000;
  m.yield_cost_points = {{1, 1'000}};
  m.default_policy = PolicyKind::kFixed;
  return m;
}

using BslsSim = Bsls<SimPlatform>;

TEST(AdaptiveBsls, BoundIsWakeOverPollClamped) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  const int pid = k.spawn("tuner", [&] {
    // Cheap wake / expensive poll: ratio 0 clamps up to the minimum.
    BslsSim lo(20, SpinMode::kAdaptive);
    lo.seed_ewmas_for_test(plat, /*wake_ns=*/1, /*poll_ns=*/1000);
    EXPECT_EQ(lo.spin_bound(), BslsSim::kMinSpinBound);

    // Expensive wake / cheap poll: ratio 10^7 clamps down to the maximum.
    BslsSim hi(20, SpinMode::kAdaptive);
    hi.seed_ewmas_for_test(plat, /*wake_ns=*/10'000'000, /*poll_ns=*/1);
    EXPECT_EQ(hi.spin_bound(), BslsSim::kMaxSpinBound);

    // In range: exactly the competitive ratio.
    BslsSim mid(20, SpinMode::kAdaptive);
    mid.seed_ewmas_for_test(plat, /*wake_ns=*/1000, /*poll_ns=*/10);
    EXPECT_EQ(mid.spin_bound(), 100u);

    EXPECT_EQ(plat.counters().adaptive_updates, 3u);
  });
  k.run();
  EXPECT_EQ(k.process(pid).counters.adaptive_updates, 3u);
}

TEST(AdaptiveBsls, FixedModeNeverRetunes) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  k.spawn("tuner", [&] {
    BslsSim fixed(20);  // plain Bsls(n) defaults to the paper's fixed bound
    EXPECT_EQ(fixed.mode(), SpinMode::kFixed);
    fixed.seed_ewmas_for_test(plat, /*wake_ns=*/10'000'000, /*poll_ns=*/1);
    EXPECT_EQ(fixed.spin_bound(), 20u) << "MAX_SPIN is pinned in fixed mode";
    EXPECT_EQ(plat.counters().adaptive_updates, 0u);
  });
  k.run();
}

TEST(AdaptiveBsls, ZeroWakeEwmaLeavesBoundUntouched) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  k.spawn("tuner", [&] {
    // Until a block has actually been observed there is nothing to compare
    // against; the configured max_spin keeps serving as the bound.
    BslsSim proto(7, SpinMode::kAdaptive);
    proto.seed_ewmas_for_test(plat, /*wake_ns=*/0, /*poll_ns=*/50);
    EXPECT_EQ(proto.spin_bound(), 7u);
    EXPECT_EQ(plat.counters().adaptive_updates, 0u);
  });
  k.run();
}

TEST(AdaptiveBsls, UnsampledPollEwmaDoesNotPegBoundAtMax) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  k.spawn("tuner", [&] {
    // A wake sample can land before ANY poll-cost sample exists (every
    // spin pass so far had spincnt == 0). The retune used to substitute
    // poll = 1 ns, compute wake/1, and peg the bound at kMaxSpinBound —
    // a division artifact, not a measurement. The unsampled-poll retune
    // must keep the configured bound (floored at kMinSpinBound) instead.
    BslsSim proto(20, SpinMode::kAdaptive);
    proto.seed_ewmas_for_test(plat, /*wake_ns=*/10'000'000, /*poll_ns=*/0);
    EXPECT_EQ(proto.spin_bound(), 20u)
        << "unsampled poll EWMA must not manufacture a wake/1ns ratio";
    EXPECT_EQ(plat.counters().adaptive_updates, 1u);

    // A zero configured bound still gets floored so the spin loop can
    // eventually take a real poll sample and tune for real.
    BslsSim zero(0, SpinMode::kAdaptive);
    zero.seed_ewmas_for_test(plat, /*wake_ns=*/10'000'000, /*poll_ns=*/0);
    EXPECT_EQ(zero.spin_bound(), BslsSim::kMinSpinBound);
  });
  k.run();
}

TEST(AdaptiveBsls, ZeroBoundRecoversOnline) {
  // MAX_SPIN = 0 is the worst hand-tuning mistake: every receive falls
  // straight through to the 4-syscall blocking regime. Fixed mode stays
  // there (SimExperiment.BslsMaxSpinZeroActsLikeBswy asserts polls == 0);
  // adaptive mode must observe the wake latency and raise the bound.
  SimExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kBsls;  // dispatched as SpinMode::kAdaptive
  cfg.clients = 1;
  cfg.messages_per_client = 200;
  cfg.max_spin = 0;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_EQ(r.verified_replies, cfg.messages_per_client);
  // On a uniprocessor echo the SERVER is the blocking side (the client's
  // pre-sleep yield usually hands it the reply before C.3): its blocked
  // receives feed the wake EWMA and retune the bound.
  EXPECT_GT(r.server_counters.adaptive_updates, 0u)
      << "blocked receives must feed the wake EWMA";
  // The experiment harness shares one protocol instance across processes,
  // so the retuned bound is visible to every spinner: polls prove it rose
  // above the configured zero (contrast BslsMaxSpinZeroActsLikeBswy, where
  // fixed mode keeps polls at exactly 0).
  EXPECT_GT(r.server_counters.polls + r.client_counters_total.polls, 0u)
      << "the retuned bound must be above zero";
}

}  // namespace
}  // namespace ulipc::sim
