// Channel-layer behaviour on the simulator: connect/disconnect handshakes,
// unknown-opcode error replies, asynchronous sends, server measurement
// window, and protocol counters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "protocols/bsls.hpp"
#include "protocols/bsw.hpp"
#include "protocols/channel.hpp"
#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

namespace ulipc::sim {
namespace {

Machine small_machine() {
  Machine m;
  m.name = "channel-test";
  m.cpus = 1;
  m.costs = Costs{};
  m.costs.quantum = 1'000'000'000;
  m.yield_cost_points = {{1, 1'000}};
  m.default_policy = PolicyKind::kFixed;
  return m;
}

TEST(Channel, UnknownOpcodeGetsErrorReply) {
  SimKernel k(small_machine());
  SimPlatform plat(k);
  SimEndpoint srv;
  SimEndpoint clnt;
  Bsw<SimPlatform> proto;

  Message reply;
  k.spawn("server", [&] {
    auto reply_ep = [&](std::uint32_t) -> SimEndpoint& { return clnt; };
    run_echo_server(plat, proto, srv, reply_ep, 1);
  });
  k.spawn("client", [&] {
    client_connect(plat, proto, srv, clnt, 0);
    proto.send(plat, srv, clnt,
               Message(static_cast<Op>(200), 0, 5.0), &reply);
    client_disconnect(plat, proto, srv, clnt, 0);
  });
  k.run();
  EXPECT_EQ(reply.opcode, Op::kError);
  EXPECT_DOUBLE_EQ(reply.value, 5.0) << "error reply echoes the argument";
}

TEST(Channel, ServerCountsControlAndEchoSeparately) {
  SimKernel k(small_machine());
  SimPlatform plat(k);
  SimEndpoint srv;
  SimEndpoint clnt;
  Bsw<SimPlatform> proto;
  ServerResult result;

  k.spawn("server", [&] {
    auto reply_ep = [&](std::uint32_t) -> SimEndpoint& { return clnt; };
    result = run_echo_server(plat, proto, srv, reply_ep, 1);
  });
  k.spawn("client", [&] {
    client_connect(plat, proto, srv, clnt, 0);
    client_echo_loop(plat, proto, srv, clnt, 0, 25);
    client_disconnect(plat, proto, srv, clnt, 0);
  });
  k.run();
  EXPECT_EQ(result.echo_messages, 25u);
  EXPECT_EQ(result.control_messages, 2u);  // connect + disconnect
  EXPECT_GT(result.last_disconnect_ns, result.first_request_ns);
  EXPECT_GT(result.throughput_msgs_per_ms(), 0.0);
}

TEST(Channel, ThroughputZeroWithoutWindow) {
  ServerResult r;
  EXPECT_DOUBLE_EQ(r.throughput_msgs_per_ms(), 0.0);
}

TEST(Channel, ComputeOpcodeBurnsServerTime) {
  SimKernel k(small_machine());
  SimPlatform plat(k);
  SimEndpoint srv;
  SimEndpoint clnt;
  Bsw<SimPlatform> proto;
  int server_pid = -1;

  server_pid = k.spawn("server", [&] {
    auto reply_ep = [&](std::uint32_t) -> SimEndpoint& { return clnt; };
    run_echo_server(plat, proto, srv, reply_ep, 1);
  });
  k.spawn("client", [&] {
    client_connect(plat, proto, srv, clnt, 0);
    client_echo_loop(plat, proto, srv, clnt, 0, 10, /*work_us=*/500.0);
    client_disconnect(plat, proto, srv, clnt, 0);
  });
  k.run();
  // 10 requests x 500 us of modelled work.
  EXPECT_GE(k.process(server_pid).stats.cpu_ns, 5'000'000);
}

TEST(Channel, AsyncSendsBatchOnServerQueue) {
  SimKernel k(small_machine());
  SimPlatform plat(k);
  SimEndpoint srv(64);
  SimEndpoint clnt(64);
  constexpr std::uint64_t kBatch = 16;

  std::vector<double> replies;
  k.spawn("client", [&] {
    // Fire the whole batch before collecting any reply: the asynchronous
    // pattern from the paper's introduction.
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      async_send(plat, srv, Message(Op::kEcho, 0, static_cast<double>(i)));
    }
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      replies.push_back(collect_reply(plat, clnt).value);
    }
  });
  k.spawn("server", [&] {
    Bsw<SimPlatform> proto;
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      Message m;
      proto.receive(plat, srv, &m);
      proto.reply(plat, clnt, m);
    }
  });
  k.run();
  ASSERT_EQ(replies.size(), kBatch);
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    EXPECT_DOUBLE_EQ(replies[i], static_cast<double>(i)) << "reply order";
  }
  // The client never had to wait per message: with the whole batch queued,
  // the server drains it in one slice (few client blocks).
  EXPECT_LE(k.process(0).counters.blocks, 2u);
}

TEST(Channel, BatchedClientAgainstBatchedServer) {
  // The windowed client fast path against the server's receive_batch /
  // reply_batch loop: every reply verified, and the wake-up ledger shows
  // the coalescing (bursts share one V instead of paying one per message).
  SimKernel k(small_machine());
  SimPlatform plat(k);
  SimEndpoint srv(256);
  SimEndpoint clnt(256);
  Bsls<SimPlatform> proto(4, SpinMode::kAdaptive);
  constexpr std::uint64_t kMessages = 64;
  constexpr std::uint32_t kWindow = 16;
  ServerResult result;

  int client_pid = -1;
  int server_pid = -1;
  server_pid = k.spawn("server", [&] {
    auto reply_ep = [&](std::uint32_t) -> SimEndpoint& { return clnt; };
    result = run_echo_server(plat, proto, srv, reply_ep, 1);
  });
  std::uint64_t verified = 0;
  client_pid = k.spawn("client", [&] {
    client_connect(plat, proto, srv, clnt, 0);
    verified =
        client_echo_loop_batched(plat, proto, srv, clnt, 0, kMessages, kWindow);
    client_disconnect(plat, proto, srv, clnt, 0);
  });
  k.run();

  EXPECT_EQ(verified, kMessages) << "every batched reply matches its request";
  EXPECT_EQ(result.echo_messages, kMessages);
  EXPECT_EQ(result.control_messages, 2u);  // connect + disconnect
  const ProtocolCounters& c = k.process(client_pid).counters;
  const ProtocolCounters& s = k.process(server_pid).counters;
  EXPECT_EQ(c.sends, kMessages + 2);
  EXPECT_EQ(s.receives, kMessages + 2);
  EXPECT_EQ(s.replies, kMessages + 2);
  EXPECT_GT(c.batch_enqueues, 0u) << "requests went out in bursts";
  EXPECT_GT(c.wakeups_coalesced, 0u) << "bursts shared wake-ups";
  EXPECT_LT(c.wakeups + s.wakeups, kMessages)
      << "coalescing must beat one V per message";
}

TEST(Channel, BatchedClientRepliesStayInOrderAcrossClients) {
  // Two windowed clients: the server's contiguous-run grouping must never
  // reorder one client's replies, whatever interleaving arrives.
  SimKernel k(small_machine());
  SimPlatform plat(k);
  SimEndpoint srv(256);
  SimEndpoint clients[2] = {SimEndpoint(256), SimEndpoint(256)};
  Bsls<SimPlatform> proto(4, SpinMode::kAdaptive);
  constexpr std::uint64_t kMessages = 48;

  k.spawn("server", [&] {
    auto reply_ep = [&](std::uint32_t id) -> SimEndpoint& {
      return clients[id];
    };
    run_echo_server(plat, proto, srv, reply_ep, 2);
  });
  std::uint64_t verified[2] = {0, 0};
  for (std::uint32_t id = 0; id < 2; ++id) {
    k.spawn("client", [&, id] {
      client_connect(plat, proto, srv, clients[id], id);
      verified[id] = client_echo_loop_batched(plat, proto, srv, clients[id],
                                              id, kMessages, /*window=*/8);
      client_disconnect(plat, proto, srv, clients[id], id);
    });
  }
  k.run();
  // A misrouted or reordered reply would fail value/channel verification.
  EXPECT_EQ(verified[0], kMessages);
  EXPECT_EQ(verified[1], kMessages);
}

TEST(Channel, CountersAddUp) {
  SimKernel k(small_machine());
  SimPlatform plat(k);
  SimEndpoint srv;
  SimEndpoint clnt;
  Bsls<SimPlatform> proto(4);
  constexpr std::uint64_t kMessages = 30;

  int client_pid = -1;
  int server_pid = -1;
  server_pid = k.spawn("server", [&] {
    auto reply_ep = [&](std::uint32_t) -> SimEndpoint& { return clnt; };
    run_echo_server(plat, proto, srv, reply_ep, 1);
  });
  client_pid = k.spawn("client", [&] {
    client_connect(plat, proto, srv, clnt, 0);
    client_echo_loop(plat, proto, srv, clnt, 0, kMessages);
    client_disconnect(plat, proto, srv, clnt, 0);
  });
  k.run();

  const ProtocolCounters& c = k.process(client_pid).counters;
  const ProtocolCounters& s = k.process(server_pid).counters;
  EXPECT_EQ(c.sends, kMessages + 2);  // echoes + connect + disconnect
  EXPECT_EQ(s.receives, kMessages + 2);
  EXPECT_EQ(s.replies, kMessages + 2);
  // Every client block must have been paired with a server wake-up.
  EXPECT_LE(c.blocks, s.wakeups + s.replies);
  // ProtocolCounters::operator+= is exercised by aggregation.
  ProtocolCounters sum;
  sum += c;
  sum += s;
  EXPECT_EQ(sum.sends, c.sends + s.sends);
  EXPECT_EQ(sum.spin_entries, c.spin_entries + s.spin_entries);
}

}  // namespace
}  // namespace ulipc::sim
