// BslsThrottled (the paper's 5 future work): correctness and the deferred
// wake-up accounting, on the simulator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "protocols/bsls.hpp"
#include "protocols/bsls_throttled.hpp"
#include "protocols/channel.hpp"
#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

namespace ulipc::sim {
namespace {

struct RunOutcome {
  std::uint64_t verified = 0;
  std::uint64_t server_wakeups = 0;
  double throughput = 0.0;
  std::int64_t max_sem_count = 0;
};

template <typename Proto>
RunOutcome run(const Machine& machine, Proto proto, std::uint32_t clients,
               std::uint64_t messages, double work_us = 0.0) {
  SimKernel kernel(machine);
  SimPlatform plat(kernel);
  auto srv = std::make_unique<SimEndpoint>(64);
  std::vector<std::unique_ptr<SimEndpoint>> eps;
  for (std::uint32_t i = 0; i < clients; ++i) {
    eps.push_back(std::make_unique<SimEndpoint>(64));
  }

  RunOutcome out;
  ServerResult server_result;
  const int server_pid = kernel.spawn("server", [&, proto]() mutable {
    auto reply_ep = [&](std::uint32_t ch) -> SimEndpoint& { return *eps[ch]; };
    server_result = run_echo_server(plat, proto, *srv, reply_ep, clients);
  });
  for (std::uint32_t i = 0; i < clients; ++i) {
    eps[i]->partner_pid = server_pid;
    kernel.spawn("client", [&, proto, i]() mutable {
      client_connect(plat, proto, *srv, *eps[i], i);
      out.verified += client_echo_loop(plat, proto, *srv, *eps[i], i,
                                       messages, work_us);
      client_disconnect(plat, proto, *srv, *eps[i], i);
    });
  }
  kernel.run();
  out.server_wakeups = kernel.process(server_pid).counters.wakeups;
  out.throughput = server_result.throughput_msgs_per_ms();
  for (const auto& ep : eps) {
    out.max_sem_count = std::max(out.max_sem_count, ep->sem.max_count_seen);
    EXPECT_EQ(ep->sem.count, 0) << "leftover client semaphore count";
  }
  return out;
}

TEST(BslsThrottled, SingleClientAllRepliesDelivered) {
  const RunOutcome r = run(Machine::sgi_indy(),
                           BslsThrottled<SimPlatform>(20, 1), 1, 300);
  EXPECT_EQ(r.verified, 300u);
}

TEST(BslsThrottled, MultiClientAllRepliesDelivered) {
  const RunOutcome r = run(Machine::sgi_indy(),
                           BslsThrottled<SimPlatform>(20, 1), 4, 200);
  EXPECT_EQ(r.verified, 800u);
}

TEST(BslsThrottled, MultiprocessorAllRepliesDelivered) {
  const RunOutcome r = run(Machine::sgi_challenge(4),
                           BslsThrottled<SimPlatform>(5, 1), 6, 150, 25.0);
  EXPECT_EQ(r.verified, 900u);
}

TEST(BslsThrottled, ZeroMaxSpinStillLive) {
  const RunOutcome r = run(Machine::sgi_indy(),
                           BslsThrottled<SimPlatform>(0, 1), 2, 150);
  EXPECT_EQ(r.verified, 300u);
}

TEST(BslsThrottled, WakePeriodOneStaysCloseToBsls) {
  const RunOutcome throttled =
      run(Machine::sgi_indy(), BslsThrottled<SimPlatform>(20, 1), 3, 200);
  const RunOutcome plain =
      run(Machine::sgi_indy(), Bsls<SimPlatform>(20), 3, 200);
  EXPECT_EQ(throttled.verified, plain.verified);
  // With a wake every message, readmission is immediate; wake counts stay
  // within the eager protocol's ballpark.
  EXPECT_LE(throttled.server_wakeups,
            plain.server_wakeups + 200 * 3 / 4 + 8);
}

TEST(BslsThrottled, BreaksOverloadFeedbackOnMultiprocessor) {
  // The figure-11 collapse scenario: 8 CPUs, per-request work, MAX_SPIN=5,
  // enough clients that BSLS clients blow their spin budget. Throttling
  // must recover a meaningful part of the lost throughput.
  const Machine mp = Machine::sgi_challenge(8);
  const std::uint32_t clients = 8;
  const RunOutcome plain = run(mp, Bsls<SimPlatform>(5), clients, 150, 25.0);
  const RunOutcome throttled =
      run(mp, BslsThrottled<SimPlatform>(5, 4), clients, 150, 25.0);
  EXPECT_EQ(plain.verified, throttled.verified);
  EXPECT_GT(throttled.throughput, plain.throughput * 1.1)
      << "throttled " << throttled.throughput << " vs plain "
      << plain.throughput << " msgs/ms";
}

TEST(BslsThrottled, NoSemaphoreAccumulation) {
  const RunOutcome r = run(Machine::sgi_indy(),
                           BslsThrottled<SimPlatform>(10, 1), 4, 150);
  // Deferred wakes are still one-V-per-sleep: counts stay small.
  EXPECT_LE(r.max_sem_count, 2);
}

TEST(BslsThrottled, FlushClearsPending) {
  SimKernel kernel(Machine::sgi_indy());
  SimPlatform plat(kernel);
  SimEndpoint clnt;
  clnt.awake = 0;  // client committed to sleeping
  BslsThrottled<SimPlatform> proto(5, 1);
  kernel.spawn("server", [&] {
    proto.reply(plat, clnt, Message(Op::kEcho, 0, 1.0));
    EXPECT_EQ(proto.pending_wakes(), 1u);
    proto.flush(plat);
    EXPECT_EQ(proto.pending_wakes(), 0u);
  });
  kernel.run();
  EXPECT_EQ(clnt.sem.total_posts, 1u);
}

}  // namespace
}  // namespace ulipc::sim
