// Liveness under adversarial schedules: a seeded random preemption hook
// interferes at every operation boundary while full client/server sessions
// run. Whatever the interleaving, every protocol must deliver every reply
// and leave no semaphore residue — the property the paper's race-condition
// fixes exist to guarantee.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "protocols/channel.hpp"
#include "protocols/protocol_set.hpp"
#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

namespace ulipc::sim {
namespace {

Machine fuzz_machine() {
  Machine m;
  m.name = "fuzz";
  m.cpus = 1;
  m.costs = Costs{};
  m.costs.quantum = 1'000'000'000;  // preemption comes from the hook only
  m.yield_cost_points = {{1, 1'000}};
  m.default_policy = PolicyKind::kFixed;
  return m;
}

struct FuzzParam {
  ProtocolKind protocol;
  std::uint64_t seed;
  std::uint32_t clients;
};

class ScheduleFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(ScheduleFuzzTest, AllRepliesDeliveredUnderRandomPreemption) {
  const FuzzParam param = GetParam();
  constexpr std::uint64_t kMessages = 60;

  SimKernel k(fuzz_machine());
  SimPlatform plat(k);

  Xoshiro256 rng(param.seed);
  k.set_op_hook([&](OpKind, int) -> std::optional<int> {
    if (rng.chance(0.10)) return kPidAny;  // preempt at ~10% of ops
    return std::nullopt;
  });

  SimEndpoint srv(8);  // small queues: exercise the full-queue path too
  std::vector<std::unique_ptr<SimEndpoint>> clients;
  for (std::uint32_t i = 0; i < param.clients; ++i) {
    clients.push_back(std::make_unique<SimEndpoint>(8));
  }

  std::uint64_t verified_total = 0;
  with_protocol<SimPlatform>(param.protocol, 3, [&](auto proto) {
    k.spawn("server", [&, proto]() mutable {
      auto reply_ep = [&](std::uint32_t ch) -> SimEndpoint& {
        return *clients.at(ch);
      };
      run_echo_server(plat, proto, srv, reply_ep, param.clients);
    });
    for (std::uint32_t i = 0; i < param.clients; ++i) {
      k.spawn("client", [&, proto, i]() mutable {
        client_connect(plat, proto, srv, *clients[i], i);
        verified_total +=
            client_echo_loop(plat, proto, srv, *clients[i], i, kMessages);
        client_disconnect(plat, proto, srv, *clients[i], i);
      });
    }
    k.run();
  });

  EXPECT_EQ(verified_total, kMessages * param.clients);
  EXPECT_EQ(srv.sem.count, 0) << "server semaphore residue";
  for (const auto& c : clients) {
    EXPECT_EQ(c->sem.count, 0) << "client semaphore residue";
    EXPECT_TRUE(c->queue.empty());
  }
  EXPECT_TRUE(srv.queue.empty());
}

std::vector<FuzzParam> fuzz_matrix() {
  std::vector<FuzzParam> params;
  for (const ProtocolKind proto :
       {ProtocolKind::kBss, ProtocolKind::kBsw, ProtocolKind::kBswy,
        ProtocolKind::kBsls}) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99999ull}) {
      for (const std::uint32_t clients : {1u, 3u}) {
        params.push_back(FuzzParam{proto, seed, clients});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScheduleFuzzTest, ::testing::ValuesIn(fuzz_matrix()),
    [](const ::testing::TestParamInfo<FuzzParam>& pinfo) {
      return std::string(protocol_name(pinfo.param.protocol)) + "_s" +
             std::to_string(pinfo.param.seed) + "_c" +
             std::to_string(pinfo.param.clients);
    });

}  // namespace
}  // namespace ulipc::sim
