// Unit tests for the client-to-shard placement table (ShardMap): policy
// behavior, assigned-count maintenance, retire/re-place semantics. Pure
// in-memory — the map normally lives in channel shm, but nothing in it
// cares where it sits.
#include "protocols/shard_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace ulipc {
namespace {

using Map = ShardMap<8, 16>;

TEST(ShardMapTest, InitActivatesExactlyNShards) {
  Map m;
  m.init(3);
  EXPECT_EQ(m.count(), 3u);
  for (std::uint32_t s = 0; s < 3; ++s) EXPECT_EQ(m.state(s), Map::kActive);
  for (std::uint32_t s = 3; s < 8; ++s) EXPECT_EQ(m.state(s), Map::kVacant);
  for (std::uint32_t c = 0; c < 16; ++c) EXPECT_EQ(m.assignment(c), kNoShard);
}

TEST(ShardMapTest, LeastLoadedSpreadsClientsEvenly) {
  Map m;
  m.init(3);
  for (std::uint32_t c = 0; c < 8; ++c) {
    const std::uint32_t s = m.place(c, PlacementPolicy::kLeastLoaded);
    ASSERT_NE(s, kNoShard);
    EXPECT_EQ(m.assignment(c), s);
  }
  // 8 clients over 3 shards: loads must be {3, 3, 2} in some order.
  std::vector<std::uint32_t> loads;
  std::uint32_t total = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    const std::uint32_t a = m.shards[s].assigned.load();
    loads.push_back(a);
    total += a;
  }
  EXPECT_EQ(total, 8u);
  for (std::uint32_t a : loads) {
    EXPECT_GE(a, 2u);
    EXPECT_LE(a, 3u);
  }
}

TEST(ShardMapTest, RendezvousIsDeterministicAndUsesAllShardsEventually) {
  Map m;
  m.init(4);
  std::set<std::uint32_t> used;
  for (std::uint32_t c = 0; c < 16; ++c) {
    const std::uint32_t first = m.pick(c, PlacementPolicy::kRendezvous);
    const std::uint32_t second = m.pick(c, PlacementPolicy::kRendezvous);
    ASSERT_NE(first, kNoShard);
    EXPECT_EQ(first, second);  // pure function of (client, active set)
    used.insert(first);
  }
  // 16 clients over 4 shards under a decent hash: expect every shard hit.
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardMapTest, AssignMaintainsCountsAndEpoch) {
  Map m;
  m.init(2);
  const std::uint32_t e0 = m.epoch.load();
  m.assign(0, 0);
  m.assign(1, 0);
  EXPECT_EQ(m.shards[0].assigned.load(), 2u);
  m.assign(1, 1);  // move: old shard decremented, new incremented
  EXPECT_EQ(m.shards[0].assigned.load(), 1u);
  EXPECT_EQ(m.shards[1].assigned.load(), 1u);
  m.unplace(0);
  EXPECT_EQ(m.shards[0].assigned.load(), 0u);
  EXPECT_EQ(m.assignment(0), kNoShard);
  EXPECT_GT(m.epoch.load(), e0);
}

TEST(ShardMapTest, RetireIsCasOnActiveOnly) {
  Map m;
  m.init(2);
  EXPECT_TRUE(m.retire(1));
  EXPECT_EQ(m.state(1), Map::kRetired);
  EXPECT_FALSE(m.retire(1));  // already retired
  // pick() must never offer a retired shard.
  for (std::uint32_t c = 0; c < 16; ++c) {
    EXPECT_EQ(m.pick(c, PlacementPolicy::kRendezvous), 0u);
    EXPECT_EQ(m.pick(c, PlacementPolicy::kLeastLoaded), 0u);
  }
}

TEST(ShardMapTest, ReplaceMovesOnlyDeadShardsClients) {
  // The HRW property: retiring one shard re-places ONLY that shard's
  // clients; everyone else's rendezvous winner is unchanged.
  Map m;
  m.init(4);
  std::vector<std::uint32_t> before(16);
  for (std::uint32_t c = 0; c < 16; ++c) {
    before[c] = m.place(c, PlacementPolicy::kRendezvous);
  }
  const std::uint32_t dead = before[0];  // kill a shard that has clients
  std::uint32_t dead_clients = 0;
  for (std::uint32_t c = 0; c < 16; ++c) {
    if (before[c] == dead) ++dead_clients;
  }
  ASSERT_TRUE(m.retire(dead));
  const std::uint32_t moved =
      m.replace_clients_of(dead, PlacementPolicy::kRendezvous);
  EXPECT_EQ(moved, dead_clients);
  for (std::uint32_t c = 0; c < 16; ++c) {
    const std::uint32_t now = m.assignment(c);
    ASSERT_NE(now, kNoShard);
    EXPECT_NE(now, dead);
    if (before[c] != dead) {
      EXPECT_EQ(now, before[c]) << "survivor client " << c << " moved";
    }
  }
  // assigned counts stay consistent with the assignment cells.
  std::uint32_t total = 0;
  for (std::uint32_t s = 0; s < 4; ++s) total += m.shards[s].assigned.load();
  EXPECT_EQ(total, 16u);
  EXPECT_EQ(m.shards[dead].assigned.load(), 0u);
}

TEST(ShardMapTest, PickReturnsNoShardWhenAllRetired) {
  Map m;
  m.init(2);
  ASSERT_TRUE(m.retire(0));
  ASSERT_TRUE(m.retire(1));
  EXPECT_EQ(m.pick(0, PlacementPolicy::kLeastLoaded), kNoShard);
  EXPECT_EQ(m.pick(0, PlacementPolicy::kRendezvous), kNoShard);
  // replace_clients_of with no survivors leaves assignments untouched.
  m.assignment_of[3].store(0);
  EXPECT_EQ(m.replace_clients_of(0, PlacementPolicy::kRendezvous), 0u);
  EXPECT_EQ(m.assignment(3), 0u);
}

}  // namespace
}  // namespace ulipc
