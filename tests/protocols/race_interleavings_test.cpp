// The paper's Figure 4 execution interleavings, reproduced deterministically
// on the simulator.
//
// Each scenario builds a small producer/consumer pair over one endpoint and
// uses the kernel's op hook to force the exact preemption the paper draws,
// then asserts the outcome the paper predicts:
//   1. wake-up before sleep      -> safe, because counting semaphores keep
//                                   the wake-up pending;
//   2. multiple wake-ups         -> the producers' test-and-set admits only
//                                   one V per clearing (and the broken
//                                   plain-read variant accumulates counts);
//   3. wake-up without sleep     -> the consumer's recheck-path test-and-set
//                                   absorbs the stray V;
//   4. missing recheck (no C.3)  -> lost wake-up: the consumer sleeps
//                                   forever (deadlock).
#include <gtest/gtest.h>

#include <optional>

#include "protocols/broken.hpp"
#include "protocols/bsw.hpp"
#include "protocols/detail.hpp"
#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"
#include "sim/sim_platform.hpp"

namespace ulipc::sim {
namespace {

Machine fast_machine() {
  Machine m;
  m.name = "race-test";
  m.cpus = 1;
  m.costs = Costs{};
  m.costs.quantum = 1'000'000'000;  // no spurious preemption
  m.yield_cost_points = {{1, 1'000}};
  m.default_policy = PolicyKind::kFixed;
  return m;
}

// ---------------------------------------------------------------------------
// Interleaving 1: the producer's wake-up lands after the consumer committed
// to sleeping (C.3 saw empty) but before the block (C.4). With counting
// semaphores the V stays pending and the P returns immediately.
TEST(Figure4, Interleaving1_WakeupBeforeSleepIsSafe) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;

  // Force: preempt the consumer right after its C.2 clear_awake and its C.3
  // recheck dequeue, handing control to the producer both times.
  int consumer_pid = -1;
  int producer_pid = -1;
  int flag_clears = 0;
  k.set_op_hook([&](OpKind kind, int pid) -> std::optional<int> {
    if (pid == consumer_pid && kind == OpKind::kDequeue && flag_clears == 1 &&
        ep.queue.empty()) {
      // C.3 just failed; let the producer run before C.4's block.
      return producer_pid;
    }
    if (pid == consumer_pid && kind == OpKind::kFlagStore &&
        ep.awake == 0) {
      ++flag_clears;
    }
    return std::nullopt;
  });

  Message got;
  consumer_pid = k.spawn("consumer", [&] {
    detail::dequeue_or_sleep(plat, ep, &got, /*pre_busy_wait=*/false);
  });
  producer_pid = k.spawn("producer", [&] {
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 1.0));
  });

  k.run();  // must terminate: the pending V prevents the lost wake-up
  EXPECT_DOUBLE_EQ(got.value, 1.0);
  EXPECT_EQ(ep.sem.count, 0);
}

// ---------------------------------------------------------------------------
// Interleaving 2: multiple producers race on a cleared awake flag. The
// shipped protocol admits exactly one V; the broken plain-read variant lets
// every producer V, and the counts accumulate ("this happened in our first
// version of the algorithm!").
TEST(Figure4, Interleaving2_TasAdmitsSingleWakeup) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;
  ep.awake = 0;  // consumer is (about to be) asleep

  constexpr int kProducers = 4;
  for (int p = 0; p < kProducers; ++p) {
    k.spawn("producer", [&] {
      detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 1.0));
    });
  }
  k.run();
  EXPECT_EQ(ep.sem.total_posts, 1u)
      << "test-and-set must admit exactly one wake-up per clearing";
}

TEST(Figure4, Interleaving2_BrokenVariantAccumulatesPosts) {
  // The broken producer reads the flag non-atomically; every producer that
  // reads 0 posts. Force each producer to be preempted right between its
  // read (awake_is_set, an OpKind::kFlagStore op) and its set, so they all
  // read 0 — the paper's simultaneous-producers picture.
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;
  ep.awake = 0;

  k.set_op_hook([&](OpKind kind, int) -> std::optional<int> {
    if (kind == OpKind::kFlagStore && ep.awake == 0) return kPidAny;
    return std::nullopt;
  });

  constexpr int kProducers = 4;
  for (int p = 0; p < kProducers; ++p) {
    k.spawn("producer", [&] {
      // Reproduce just BswNoTasWake's broken wake path.
      while (!plat.enqueue(ep, Message(Op::kEcho, 0, 1.0))) {
        plat.sleep_seconds(1);
      }
      if (!plat.awake_is_set(ep)) {
        plat.set_awake(ep);
        plat.sem_v(ep);
      }
    });
  }
  k.run();
  EXPECT_GT(ep.sem.total_posts, 1u)
      << "without test-and-set, simultaneous producers all post";
  EXPECT_GT(ep.sem.max_count_seen, 1) << "semaphore count accumulates";
}

// ---------------------------------------------------------------------------
// Interleaving 3: the producer wakes a consumer whose C.3 recheck actually
// succeeded (no sleep happened). The consumer's tas on the success path
// detects this and absorbs the count.
TEST(Figure4, Interleaving3_StrayWakeupAbsorbed) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;

  int consumer_pid = -1;
  int producer_pid = -1;
  k.set_op_hook([&](OpKind kind, int pid) -> std::optional<int> {
    // The moment the consumer clears its awake flag (C.2), run the producer
    // to completion: it enqueues, sees awake==0, and V's — a wake-up for a
    // consumer that will then find the message at C.3 and not sleep.
    if (pid == consumer_pid && kind == OpKind::kFlagStore && ep.awake == 0) {
      return producer_pid;
    }
    return std::nullopt;
  });

  ProtocolCounters* consumer_counters = nullptr;
  Message got;
  consumer_pid = k.spawn("consumer", [&] {
    consumer_counters = &plat.counters();
    detail::dequeue_or_sleep(plat, ep, &got, /*pre_busy_wait=*/false);
  });
  producer_pid = k.spawn("producer", [&] {
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 3.0));
  });

  k.run();
  EXPECT_DOUBLE_EQ(got.value, 3.0);
  ASSERT_NE(consumer_counters, nullptr);
  EXPECT_EQ(consumer_counters->sem_absorbs, 1u)
      << "consumer must detect and absorb the stray wake-up";
  EXPECT_EQ(ep.sem.count, 0) << "no count may be left behind";
}

// ---------------------------------------------------------------------------
// Interleaving 4: why step C.3 exists. Without the recheck, a producer that
// read the awake flag before the consumer cleared it never wakes the
// consumer, and the consumer sleeps forever.
TEST(Figure4, Interleaving4_NoRecheckDeadlocks) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;

  int consumer_pid = -1;
  int producer_pid = -1;
  bool forced = false;
  k.set_op_hook([&](OpKind kind, int pid) -> std::optional<int> {
    // After the consumer's *first failed dequeue* (C.1) — before it clears
    // the flag — run the producer: it enqueues, reads awake==1, skips the V.
    if (!forced && pid == consumer_pid && kind == OpKind::kDequeue &&
        ep.queue.empty()) {
      forced = true;
      return producer_pid;
    }
    return std::nullopt;
  });

  Message got;
  consumer_pid = k.spawn("consumer", [&] {
    BswNoRecheck<SimPlatform> broken;
    broken.receive(plat, ep, &got);
  });
  producer_pid = k.spawn("producer", [&] {
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 4.0));
  });

  EXPECT_THROW(k.run(), SimDeadlock)
      << "omitting C.3 loses the wake-up exactly as the paper predicts";
}

TEST(Figure4, Interleaving4_ShippedProtocolSurvivesSameSchedule) {
  // Identical forced schedule, but with the real protocol (with C.3): the
  // recheck finds the message and no sleep happens.
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint ep;

  int consumer_pid = -1;
  int producer_pid = -1;
  bool forced = false;
  k.set_op_hook([&](OpKind kind, int pid) -> std::optional<int> {
    if (!forced && pid == consumer_pid && kind == OpKind::kDequeue &&
        ep.queue.empty()) {
      forced = true;
      return producer_pid;
    }
    return std::nullopt;
  });

  Message got;
  consumer_pid = k.spawn("consumer", [&] {
    detail::dequeue_or_sleep(plat, ep, &got, /*pre_busy_wait=*/false);
  });
  producer_pid = k.spawn("producer", [&] {
    detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 4.0));
  });

  k.run();
  EXPECT_DOUBLE_EQ(got.value, 4.0);
}

// ---------------------------------------------------------------------------
// The always-wake strawman is correct but pays a V per message.
TEST(Figure4, AlwaysWakePaysVPerMessage) {
  SimKernel k(fast_machine());
  SimPlatform plat(k);
  SimEndpoint srv;
  SimEndpoint clnt;
  constexpr std::uint64_t kMessages = 50;

  k.spawn("server", [&] {
    BswAlwaysWake<SimPlatform> proto;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      Message m;
      proto.receive(plat, srv, &m);
      proto.reply(plat, clnt, m);
    }
  });
  k.spawn("client", [&] {
    BswAlwaysWake<SimPlatform> proto;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      Message ans;
      proto.send(plat, srv, clnt, Message(Op::kEcho, 0, double(i)), &ans);
      ASSERT_DOUBLE_EQ(ans.value, double(i));
    }
  });
  k.run();
  EXPECT_EQ(srv.sem.total_posts, kMessages);
  EXPECT_EQ(clnt.sem.total_posts, kMessages);
}

}  // namespace
}  // namespace ulipc::sim
