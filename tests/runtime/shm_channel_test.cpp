#include "runtime/shm_channel.hpp"

#include <gtest/gtest.h>

#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

ShmChannel::Config small_config() {
  ShmChannel::Config cfg;
  cfg.max_clients = 3;
  cfg.queue_capacity = 16;
  return cfg;
}

TEST(ShmChannel, RequiredBytesSufficesForCreate) {
  for (std::uint32_t clients : {1u, 4u, kMaxClients}) {
    ShmChannel::Config cfg;
    cfg.max_clients = clients;
    cfg.queue_capacity = 128;
    cfg.create_sysv_queues = true;
    ShmRegion region =
        ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    EXPECT_NO_THROW({ ShmChannel ch = ShmChannel::create(region, cfg); });
  }
}

TEST(ShmChannel, EndpointsAreDistinctAndUsable) {
  const auto cfg = small_config();
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel ch = ShmChannel::create(region, cfg);

  NativeEndpoint& srv = ch.server_endpoint();
  EXPECT_TRUE(srv.queue->empty());
  for (std::uint32_t i = 0; i < cfg.max_clients; ++i) {
    NativeEndpoint& ep = ch.client_endpoint(i);
    EXPECT_NE(&ep, &srv);
    EXPECT_EQ(ep.id, i);
    EXPECT_TRUE(ep.queue->empty());
    ASSERT_TRUE(ep.queue->enqueue(Message(Op::kEcho, i, 1.0)));
    Message m;
    ASSERT_TRUE(ep.queue->dequeue(&m));
    EXPECT_EQ(m.channel, i);
  }
}

TEST(ShmChannel, QueueCapacityHonored) {
  const auto cfg = small_config();
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel ch = ShmChannel::create(region, cfg);
  MsgQueue& q = *ch.server_endpoint().queue;
  for (std::uint32_t i = 0; i < cfg.queue_capacity; ++i) {
    EXPECT_TRUE(q.enqueue(Message(Op::kEcho, 0, 0.0)));
  }
  EXPECT_FALSE(q.enqueue(Message(Op::kEcho, 0, 0.0)));
}

TEST(ShmChannel, AttachSeesSameStructures) {
  const auto cfg = small_config();
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel creator = ShmChannel::create(region, cfg);
  ASSERT_TRUE(creator.server_endpoint().queue->enqueue(
      Message(Op::kEcho, 0, 9.5)));

  ShmChannel attached = ShmChannel::attach(region);
  EXPECT_EQ(attached.header().max_clients, cfg.max_clients);
  Message m;
  ASSERT_TRUE(attached.server_endpoint().queue->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 9.5);
}

TEST(ShmChannel, AttachRejectsGarbageRegion) {
  ShmRegion region = ShmRegion::create_anonymous(1 << 16);
  EXPECT_THROW(ShmChannel::attach(region), InvariantError);
}

TEST(ShmChannel, SysvSemaphoresWiredToEndpoints) {
  const auto cfg = small_config();
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel ch = ShmChannel::create(region, cfg);
  const SysvSemHandle h = ch.server_endpoint().vsem;
  EXPECT_GE(h.sem_id, 0);
  SysvSemaphoreSet::post(h);
  EXPECT_EQ(SysvSemaphoreSet::value(h), 1);
  SysvSemaphoreSet::wait(h);
  // Distinct semaphores per endpoint.
  EXPECT_NE(ch.client_endpoint(0).vsem.index,
            ch.client_endpoint(1).vsem.index);
}

TEST(ShmChannel, SysvQueuesCreatedOnRequest) {
  auto cfg = small_config();
  cfg.create_sysv_queues = true;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel ch = ShmChannel::create(region, cfg);
  EXPECT_GE(ch.header().sysv_request_qid, 0);
  const Message m(Op::kEcho, 0, 4.0);
  ch.request_queue().send(1, &m, sizeof(m));
  Message got;
  ch.request_queue().receive(0, &got, sizeof(got));
  EXPECT_DOUBLE_EQ(got.value, 4.0);
}

TEST(ShmChannel, BarrierInitializedForMaxClients) {
  const auto cfg = small_config();
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel ch = ShmChannel::create(region, cfg);
  EXPECT_EQ(ch.barrier().parties(), cfg.max_clients);
}

}  // namespace
}  // namespace ulipc
