// Scenario engine, plain-runtime flavor: run_scenario() forks a real pool
// and real clients, so these tests exercise the same orchestration path as
// tools/ulipc-perf — minus the explore crash points (this binary links the
// uninstrumented runtime, so chaos uses the parent-kill trigger).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "runtime/scenario.hpp"

namespace ulipc {
namespace {

TEST(ScenarioTest, RequestResponsePassesAllSlos) {
  ScenarioSpec spec;
  spec.name = "rr-small";
  spec.workload = Workload::kRequestResponse;
  spec.workers = 2;
  spec.clients = 3;
  spec.messages = 60;

  const ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.attempted, 3u * 60u);
  EXPECT_EQ(r.verified, r.attempted) << "every round trip must verify";
  EXPECT_TRUE(r.slo_no_lost_replies);
  EXPECT_TRUE(r.slo_orphan_drain);
  EXPECT_TRUE(r.slo_nodes_conserved) << "node pool leaked across the run";
  EXPECT_TRUE(r.slo_pass());
  EXPECT_GT(r.msgs_per_ms, 0.0);
}

TEST(ScenarioTest, ChurnCyclesReconnectCleanly) {
  ScenarioSpec spec;
  spec.name = "churn-small";
  spec.workload = Workload::kChurn;
  spec.workers = 2;
  spec.clients = 4;
  spec.cycles = 3;
  spec.messages = 20;

  const ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(r.slo_pass());
  EXPECT_EQ(r.verified, 4u * 3u * 20u);
}

TEST(ScenarioTest, ChurnChaosKillsWorkerAndClientAndRecovers) {
  // The headline SLO scenario: one worker AND one client SIGKILLed
  // mid-load (parent-kill trigger in this binary). Survivors must lose
  // nothing, the dead shard must drain, and the node pool must balance.
  ScenarioSpec spec;
  spec.name = "chaos-small";
  spec.workload = Workload::kChurn;
  spec.workers = 2;
  spec.clients = 3;
  spec.cycles = 2;
  spec.messages = 30;
  spec.resilience.request_deadline_ns = 100'000'000;
  spec.chaos.kill_workers = 1;
  spec.chaos.kill_clients = 1;
  spec.chaos.kill_after_replies = 20;

  const ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.workers_killed, 1u);
  EXPECT_EQ(r.clients_killed, 1u);
  EXPECT_TRUE(r.slo_no_lost_replies) << "a surviving client lost a reply";
  EXPECT_TRUE(r.slo_orphan_drain)
      << "dead shard not retired+drained within the bound";
  EXPECT_TRUE(r.slo_nodes_conserved);
  EXPECT_TRUE(r.slo_pass());
  EXPECT_GT(r.orphan_drain_ns, 0);
  EXPECT_LT(r.orphan_drain_ns, spec.chaos.orphan_drain_bound_ns);
}

TEST(ScenarioTest, JsonLineCarriesSloVerdicts) {
  ScenarioSpec spec;
  spec.name = "json-shape";
  spec.workers = 1;
  spec.clients = 1;
  spec.messages = 10;

  const ScenarioResult r = run_scenario(spec);
  const std::string j = r.json();
  EXPECT_NE(j.find("\"scenario\":\"json-shape\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"workload\":\"request-response\""), std::string::npos);
  EXPECT_NE(j.find("\"slo\":{"), std::string::npos);
  EXPECT_NE(j.find("\"pass\":true"), std::string::npos) << j;
  EXPECT_NE(j.find("\"msgs_per_ms\":"), std::string::npos);
}

TEST(ScenarioTest, BuiltinSetCoversTheNamedWorkloads) {
  const auto specs = builtin_scenarios(/*quick=*/true, /*seed=*/42);
  ASSERT_GE(specs.size(), 6u) << ">=5 named scenarios plus churn-chaos";
  std::set<std::string> names;
  std::set<Workload> workloads;
  bool chaos = false;
  for (const auto& s : specs) {
    names.insert(s.name);
    workloads.insert(s.workload);
    chaos |= s.chaos.enabled();
  }
  EXPECT_EQ(names.size(), specs.size()) << "scenario names must be unique";
  EXPECT_GE(workloads.size(), 5u);
  EXPECT_TRUE(chaos) << "the set must include a chaos scenario";
}

}  // namespace
}  // namespace ulipc
