#include "runtime/sysv_transport.hpp"

#include <gtest/gtest.h>

#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class SysvTransportTest : public ::testing::Test {
 protected:
  SysvTransportTest() {
    ShmChannel::Config cfg;
    cfg.max_clients = 2;
    cfg.queue_capacity = 16;
    cfg.create_sysv_queues = true;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
};

TEST_F(SysvTransportTest, SingleClientEcho) {
  constexpr std::uint64_t kMessages = 1'000;
  ChildProcess server = ChildProcess::spawn([&] {
    SysvTransport t(*channel_);
    const ServerResult r = t.run_server(1);
    return r.echo_messages == kMessages ? 0 : 1;
  });
  SysvTransport t(*channel_);
  t.client_connect(0);
  const std::uint64_t verified = t.client_echo_loop(0, kMessages);
  t.client_disconnect(0);
  EXPECT_EQ(verified, kMessages);
  EXPECT_EQ(server.join(), 0);
}

TEST_F(SysvTransportTest, TwoClientsInterleave) {
  constexpr std::uint64_t kMessages = 500;
  ChildProcess server = ChildProcess::spawn([&] {
    SysvTransport t(*channel_);
    const ServerResult r = t.run_server(2);
    return r.echo_messages == 2 * kMessages ? 0 : 1;
  });
  ChildProcess other = ChildProcess::spawn([&] {
    SysvTransport t(*channel_);
    t.client_connect(1);
    const std::uint64_t ok = t.client_echo_loop(1, kMessages);
    t.client_disconnect(1);
    return ok == kMessages ? 0 : 1;
  });
  SysvTransport t(*channel_);
  t.client_connect(0);
  EXPECT_EQ(t.client_echo_loop(0, kMessages), kMessages);
  t.client_disconnect(0);
  EXPECT_EQ(other.join(), 0);
  EXPECT_EQ(server.join(), 0);
}

TEST_F(SysvTransportTest, ServerMeasurementWindowPopulated) {
  ChildProcess server = ChildProcess::spawn([&] {
    SysvTransport t(*channel_);
    const ServerResult r = t.run_server(1);
    const bool ok = r.echo_messages == 100 && r.control_messages == 2 &&
                    r.last_disconnect_ns > r.first_request_ns;
    return ok ? 0 : 1;
  });
  SysvTransport t(*channel_);
  t.client_connect(0);
  t.client_echo_loop(0, 100);
  t.client_disconnect(0);
  EXPECT_EQ(server.join(), 0);
}

}  // namespace
}  // namespace ulipc
