// End-to-end native experiments: real forked processes, real shared memory,
// real semaphores — the paper's rig on the host kernel. Every protocol must
// deliver every reply for every client count, with both semaphore kinds,
// pinned (uniprocessor emulation) and unpinned.
#include <gtest/gtest.h>

#include <sched.h>

#include <atomic>
#include <string>

#include "common/affinity.hpp"
#include "runtime/harness.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

struct EchoParam {
  ProtocolKind protocol;
  std::uint32_t clients;
  SemKind sem;
  bool pin;
};

class NativeEchoTest : public ::testing::TestWithParam<EchoParam> {};

TEST_P(NativeEchoTest, AllRepliesVerified) {
  const EchoParam param = GetParam();
  NativeRunConfig cfg;
  cfg.protocol = param.protocol;
  cfg.sem = param.sem;
  cfg.clients = param.clients;
  cfg.messages_per_client = 2'000;
  cfg.pin_single_cpu = param.pin;
  cfg.full_sleep_ns = 1'000'000;  // keep queue-full backoff test-friendly
  const NativeRunResult r = run_native_experiment(cfg);

  EXPECT_TRUE(r.all_children_ok);
  EXPECT_EQ(r.verified_replies,
            static_cast<std::uint64_t>(cfg.clients) * cfg.messages_per_client);
  EXPECT_EQ(r.server.echo_messages,
            static_cast<std::uint64_t>(cfg.clients) * cfg.messages_per_client);
  EXPECT_GT(r.throughput_msgs_per_ms, 0.0);
}

std::vector<EchoParam> echo_matrix() {
  std::vector<EchoParam> params;
  for (const ProtocolKind proto :
       {ProtocolKind::kBss, ProtocolKind::kBsw, ProtocolKind::kBswy,
        ProtocolKind::kBsls}) {
    for (const std::uint32_t clients : {1u, 2u, 4u}) {
      params.push_back(EchoParam{proto, clients, SemKind::kFutex, false});
    }
    // Pinned single-CPU run: the uniprocessor rig.
    params.push_back(EchoParam{proto, 2, SemKind::kFutex, true});
    // The paper's semaphore flavour.
    params.push_back(EchoParam{proto, 2, SemKind::kSysv, false});
  }
  // Kernel-mediated baseline.
  params.push_back(EchoParam{ProtocolKind::kSysv, 1, SemKind::kFutex, false});
  params.push_back(EchoParam{ProtocolKind::kSysv, 3, SemKind::kFutex, false});
  params.push_back(EchoParam{ProtocolKind::kSysv, 2, SemKind::kFutex, true});
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, NativeEchoTest, ::testing::ValuesIn(echo_matrix()),
    [](const ::testing::TestParamInfo<EchoParam>& pinfo) {
      return std::string(protocol_name(pinfo.param.protocol)) + "_c" +
             std::to_string(pinfo.param.clients) +
             (pinfo.param.sem == SemKind::kSysv ? "_sysv" : "_futex") +
             (pinfo.param.pin ? "_pinned" : "");
    });

TEST(NativeEcho, CountersTrackBlocksAndWakeups) {
  NativeRunConfig cfg;
  cfg.protocol = ProtocolKind::kBsw;
  cfg.clients = 1;
  cfg.messages_per_client = 2'000;
  cfg.pin_single_cpu = true;  // serialize: BSW must actually sleep
  const NativeRunResult r = run_native_experiment(cfg);
  ASSERT_TRUE(r.all_children_ok);
  EXPECT_GT(r.client_counters_total.blocks, 0u);
  EXPECT_GT(r.server_counters.wakeups, 0u);
  EXPECT_GT(r.client_counters_total.wakeups, 0u);
}

TEST(NativeEcho, BssBusyWaitsInsteadOfBlocking) {
  NativeRunConfig cfg;
  cfg.protocol = ProtocolKind::kBss;
  cfg.clients = 1;
  cfg.messages_per_client = 2'000;
  cfg.pin_single_cpu = true;
  const NativeRunResult r = run_native_experiment(cfg);
  ASSERT_TRUE(r.all_children_ok);
  EXPECT_EQ(r.client_counters_total.blocks, 0u);
  EXPECT_GT(r.client_counters_total.busy_waits, 0u);
}

TEST(NativeEcho, BslsRecordsSpinStatistics) {
  NativeRunConfig cfg;
  cfg.protocol = ProtocolKind::kBsls;
  cfg.clients = 2;
  cfg.messages_per_client = 2'000;
  cfg.max_spin = 10;
  const NativeRunResult r = run_native_experiment(cfg);
  ASSERT_TRUE(r.all_children_ok);
  EXPECT_GT(r.client_counters_total.spin_entries, 0u);
  EXPECT_GE(r.client_counters_total.spin_iters, 0u);
}

/// Some kernels (containers, sandboxes, certain CFS configurations) do not
/// reflect sched_yield-driven switches in getrusage's ru_nvcsw, which makes
/// the assertion below vacuous. Probe the exact mechanism the test relies
/// on: two processes pinned to one CPU, one yielding in a loop against the
/// other — wherever yield switches are accounted at all, the prober MUST
/// observe voluntary switches.
bool kernel_accounts_yield_switches() {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  auto* stop = new (region.base()) std::atomic<int>(0);
  ChildProcess spinner = ChildProcess::spawn([&] {
    pin_to_cpu(0);
    while (stop->load(std::memory_order_acquire) == 0) sched_yield();
    return 0;
  });
  ChildProcess prober = ChildProcess::spawn([&] {
    pin_to_cpu(0);
    for (int i = 0; i < 5'000; ++i) sched_yield();
    const long v = ctx_switches_self().voluntary;
    stop->store(1, std::memory_order_release);
    return v > 0 ? 0 : 1;  // exit code carries the probe verdict
  });
  const bool accounted = prober.join() == 0;
  stop->store(1, std::memory_order_release);
  spinner.join();
  return accounted;
}

TEST(NativeEcho, PinnedRunForcesContextSwitches) {
  // The paper confirmed the switch economics via getrusage. On this host
  // only sched_yield-style switches are reflected in ru_nvcsw (futex waits
  // are not counted by the sandbox kernel), so use the yield-based BSS.
  if (!kernel_accounts_yield_switches()) {
    GTEST_SKIP() << "this environment does not account sched_yield context "
                    "switches in getrusage ru_nvcsw (5000 contended yields "
                    "recorded 0 voluntary switches) — the assertion below "
                    "cannot be meaningful here";
  }
  NativeRunConfig cfg;
  cfg.protocol = ProtocolKind::kBss;
  cfg.clients = 1;
  cfg.messages_per_client = 1'000;
  cfg.pin_single_cpu = true;
  const NativeRunResult r = run_native_experiment(cfg);
  ASSERT_TRUE(r.all_children_ok);
  // Serialized on one CPU, a spinning client must yield at least once per
  // round trip.
  EXPECT_GT(r.client_ctx_total.voluntary, 500L);
}

TEST(NativeEcho, ServerWorkScalesLatency) {
  NativeRunConfig fast;
  fast.protocol = ProtocolKind::kBsls;
  fast.clients = 1;
  fast.messages_per_client = 300;
  NativeRunConfig slow = fast;
  slow.server_work_us = 300.0;
  const NativeRunResult rf = run_native_experiment(fast);
  const NativeRunResult rs = run_native_experiment(slow);
  ASSERT_TRUE(rf.all_children_ok);
  ASSERT_TRUE(rs.all_children_ok);
  EXPECT_LT(rs.throughput_msgs_per_ms, rf.throughput_msgs_per_ms);
}

TEST(NativeEcho, TinyQueueExercisesFlowControl) {
  NativeRunConfig cfg;
  cfg.protocol = ProtocolKind::kBsw;
  cfg.clients = 4;
  cfg.messages_per_client = 500;
  cfg.queue_capacity = 2;            // force queue-full on the server queue
  cfg.full_sleep_ns = 200'000;       // 0.2 ms "seconds"
  const NativeRunResult r = run_native_experiment(cfg);
  ASSERT_TRUE(r.all_children_ok);
  EXPECT_EQ(r.verified_replies, 4u * 500u);
}

TEST(NativeEcho, RejectsZeroOrTooManyClients) {
  NativeRunConfig cfg;
  cfg.clients = 0;
  EXPECT_THROW(run_native_experiment(cfg), InvariantError);
  cfg.clients = kMaxClients + 1;
  EXPECT_THROW(run_native_experiment(cfg), InvariantError);
}

}  // namespace
}  // namespace ulipc
