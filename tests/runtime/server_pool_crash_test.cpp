// Fault injection for the sharded pool: SIGKILL a worker and verify the
// survivor runs the full recovery ordering — retire the shard, re-place its
// clients, drain + serve the orphaned backlog (those requests came from
// live clients), sweep leaked nodes, vacate the seat — while every client
// still gets every reply. Workers run as real forked processes here:
// worker-death detection is pid-based, so thread workers (which share the
// test's pid) can never read as crashed.
//
// Not covered (by design): a request the victim had dequeued but not yet
// answered dies with it — at-most-once, exactly like a crashed single
// server. The tests below park the victim first so its backlog is still in
// the queue when it dies.
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "protocols/bsw.hpp"
#include "runtime/server_pool.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

/// Cross-process scratch: kill sequencing flags plus the survivor's
/// observations of the reap.
struct PoolCrashOut {
  std::atomic<std::uint32_t> victim_ready{0};
  std::atomic<std::uint32_t> burst1_done{0};
  std::atomic<std::uint32_t> resume{0};
  std::uint32_t reaped_workers = 0;
  std::uint32_t crashed_shard = 0;
  std::uint32_t crashed_pid = 0;
  std::uint32_t clients_replaced = 0;
  std::uint32_t migrated = 0;
  std::uint64_t survivor_echoes = 0;
};

class ServerPoolCrashTest : public ::testing::Test {
 protected:
  void build(std::uint32_t shards, std::uint32_t clients) {
    ShmChannel::Config cfg;
    cfg.max_clients = clients;
    cfg.queue_capacity = 64;
    cfg.shards = shards;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
    out_region_ = ShmRegion::create_anonymous(4096);
    out_ = new (out_region_.base()) PoolCrashOut();
  }

  void await_flag(std::atomic<std::uint32_t>& flag, std::uint32_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (flag.load(std::memory_order_acquire) < want) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "flag never reached " << want;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  /// Forks the survivor worker on shard 1 (stealing off, fast idle ticks:
  /// the reap path must do the work, not the steal path) and records what
  /// it reaped.
  ChildProcess spawn_survivor(std::uint32_t expected_clients) {
    ChildProcess w = ChildProcess::spawn([&, expected_clients] {
      ServerPoolOptions o;
      o.expected_clients = expected_clients;
      o.liveness_timeout_ns = 20'000'000;
      o.steal_batch = 0;
      const PoolWorkerResult r =
          run_pool_worker(*channel_, Bsw<NativePlatform>(), 1, o);
      out_->reaped_workers = r.reaped_workers;
      out_->survivor_echoes = r.server.echo_messages;
      if (!r.crash_events.empty()) {
        out_->crashed_shard = r.crash_events.front().shard;
        out_->crashed_pid = r.crash_events.front().pid;
        out_->clients_replaced = r.crash_events.front().clients_replaced;
        out_->migrated = r.crash_events.front().migrated_messages;
      }
      return r.reaped_workers == 1 ? 0 : 1;
    });
    channel_->register_worker_pid(1, static_cast<std::uint32_t>(w.pid()));
    return w;
  }

  ShmRegion region_;
  ShmRegion out_region_;
  std::optional<ShmChannel> channel_;
  PoolCrashOut* out_ = nullptr;
};

// Victim worker SIGKILLed with a known backlog: both clients are forced
// onto its shard, it parks after the first echo batch (raising the ready
// flag), and by kill time each blocked client has one request sitting in
// the dead queue. The survivor must retire the shard, move both clients,
// serve the orphaned requests, and vacate the seat — and the clients must
// see every single reply.
TEST_F(ServerPoolCrashTest, SurvivorReapsKilledWorkerAndServesBacklog) {
  build(2, 2);
  const std::uint32_t free0 = channel_->node_pool().free_count();
  constexpr std::uint64_t kMessages = 300;

  ChildProcess victim = ChildProcess::spawn([&] {
    ServerPoolOptions o;
    o.expected_clients = 2;
    o.steal_batch = 0;
    o.park_worker = 0;
    o.park_after_messages = 1;
    o.park_signal = &out_->victim_ready;
    (void)run_pool_worker(*channel_, Bsw<NativePlatform>(), 0, o);
    return 0;
  });
  channel_->register_worker_pid(0, static_cast<std::uint32_t>(victim.pid()));
  ChildProcess survivor = spawn_survivor(2);

  std::vector<ChildProcess> clients;
  for (std::uint32_t i = 0; i < 2; ++i) {
    clients.push_back(ChildProcess::spawn([&, i] {
      NativePlatform plat;
      Bsw<NativePlatform> proto;
      pool_client_connect(plat, proto, *channel_, i,
                          PlacementPolicy::kLeastLoaded, /*forced_shard=*/0);
      const std::uint64_t ok =
          pool_client_echo_loop(plat, proto, *channel_, i, kMessages);
      pool_client_disconnect(plat, proto, *channel_, i);
      return ok == kMessages ? 0 : 1;
    }));
    channel_->register_client_pid(
        i, static_cast<std::uint32_t>(clients.back().pid()));
  }

  await_flag(out_->victim_ready, 1);
  // Let both clients block on the parked shard: after this, each has
  // exactly one unanswered request in the victim's queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  victim.kill();
  EXPECT_LT(victim.join(), 0);  // -SIGKILL

  for (auto& c : clients) EXPECT_EQ(c.join(), 0) << "client lost replies";
  EXPECT_EQ(survivor.join(), 0) << "survivor failed to reap the worker";

  EXPECT_EQ(out_->reaped_workers, 1u);
  EXPECT_EQ(out_->crashed_shard, 0u);
  EXPECT_EQ(out_->clients_replaced, 2u);
  EXPECT_GE(out_->migrated, 1u) << "backlog was not drained into survivors";
  EXPECT_GT(out_->survivor_echoes, 0u);
  // Post-mortem shared state: shard retired, seat vacated, nothing leaked.
  EXPECT_EQ(channel_->shard_map().state(0), PoolShardMap::kRetired);
  EXPECT_EQ(channel_->worker_pid(0), 0u);
  EXPECT_EQ(channel_->shard_map().shards[0].migrated_msgs.load(),
            out_->migrated);
  EXPECT_EQ(channel_->node_pool().free_count(), free0)
      << "pool leaked nodes across the worker crash";
}

// Victim worker SIGKILLed while ASLEEP in its timed receive (huge liveness
// timeout, no traffic): its client's next burst initially lands in the dead
// shard's queue and must be recovered — by the migration drain or, if the
// client raced the retire, by the straggler re-drain one idle tick later.
TEST_F(ServerPoolCrashTest, WorkerKilledWhileAsleepIsReaped) {
  build(2, 2);
  const std::uint32_t free0 = channel_->node_pool().free_count();
  constexpr std::uint64_t kBurst = 100;

  ChildProcess victim = ChildProcess::spawn([&] {
    ServerPoolOptions o;
    o.expected_clients = 2;
    o.steal_batch = 0;
    o.liveness_timeout_ns = 10'000'000'000;  // sleeps until killed
    (void)run_pool_worker(*channel_, Bsw<NativePlatform>(), 0, o);
    return 0;
  });
  channel_->register_worker_pid(0, static_cast<std::uint32_t>(victim.pid()));
  ChildProcess survivor = spawn_survivor(2);

  std::vector<ChildProcess> clients;
  for (std::uint32_t i = 0; i < 2; ++i) {
    clients.push_back(ChildProcess::spawn([&, i] {
      NativePlatform plat;
      Bsw<NativePlatform> proto;
      // One client per shard, pinned (concurrent least-loaded placement
      // could race both clients onto shard 0).
      pool_client_connect(plat, proto, *channel_, i,
                          PlacementPolicy::kLeastLoaded, /*forced_shard=*/i);
      std::uint64_t ok =
          pool_client_echo_loop(plat, proto, *channel_, i, kBurst);
      out_->burst1_done.fetch_add(1, std::memory_order_acq_rel);
      while (out_->resume.load(std::memory_order_acquire) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ok += pool_client_echo_loop(plat, proto, *channel_, i, kBurst);
      pool_client_disconnect(plat, proto, *channel_, i);
      return ok == 2 * kBurst ? 0 : 1;
    }));
    channel_->register_client_pid(
        i, static_cast<std::uint32_t>(clients.back().pid()));
  }

  await_flag(out_->burst1_done, 2);
  // All quiet: the victim is now asleep in its timed receive.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  victim.kill();
  EXPECT_LT(victim.join(), 0);
  out_->resume.store(1, std::memory_order_release);

  for (auto& c : clients) EXPECT_EQ(c.join(), 0) << "client lost replies";
  EXPECT_EQ(survivor.join(), 0) << "survivor failed to reap the worker";

  EXPECT_EQ(out_->reaped_workers, 1u);
  EXPECT_EQ(out_->clients_replaced, 1u);  // only the victim's client moves
  EXPECT_EQ(channel_->shard_map().state(0), PoolShardMap::kRetired);
  EXPECT_EQ(channel_->worker_pid(0), 0u);
  EXPECT_EQ(channel_->node_pool().free_count(), free0);
}

}  // namespace
}  // namespace ulipc
