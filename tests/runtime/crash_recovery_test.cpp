// Fault-injection suite: SIGKILL channel participants at the worst points
// of the IPC protocols and verify the survivors recover — locks are stolen
// and repaired, leaked nodes swept, dead clients reaped by the duplex
// server — all within bounded time (no test sleeps anywhere near the ctest
// timeout; liveness timeouts are tens of milliseconds).
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>

#include <gtest/gtest.h>

#include "protocols/bsw.hpp"
#include "queue/queue_recovery.hpp"
#include "runtime/duplex_server.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

constexpr std::int64_t kLivenessTimeoutNs = 50'000'000;  // 50 ms

/// Cross-process scratch the duplex tests use to ship results and to
/// sequence the kill (the victim signals "ready to die" through it).
struct CrashOut {
  std::atomic<std::uint32_t> victim_ready{0};
  std::uint64_t echo_messages = 0;
  std::uint32_t crashed_clients = 0;
  std::uint32_t crashed_id = 0;
  std::uint32_t drained = 0;
};

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void build(std::uint32_t clients, bool duplex,
             std::optional<QueueEngine> pin_engine = std::nullopt) {
    ShmChannel::Config cfg;
    cfg.max_clients = clients;
    cfg.queue_capacity = 32;
    cfg.duplex = duplex;
    if (pin_engine) {
      // Lock-steal tests assert two-lock-specific recovery mechanics and
      // must not follow a CI-wide ULIPC_QUEUE_ENGINE pin; the lock-free
      // engine's analogous guarantees are covered by the engine-
      // parametrized suites.
      cfg.engines.server = cfg.engines.reply = cfg.engines.shard =
          *pin_engine;
    }
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
    out_region_ = ShmRegion::create_anonymous(4096);
    out_ = new (out_region_.base()) CrashOut();
  }

  /// Spins (bounded) until the victim reports it is parked and killable.
  void await_victim_ready() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(3);
    while (out_->victim_ready.load(std::memory_order_acquire) == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "victim never reached its kill point";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ShmRegion region_;
  ShmRegion out_region_;
  std::optional<ShmChannel> channel_;
  CrashOut* out_ = nullptr;
};

// A producer SIGKILLed between "link node" and "advance tail" leaves the
// tail lock held and tail_ lagging. The next enqueuer must steal the lock,
// repair the tail from head, and no message may be lost or duplicated.
TEST_F(CrashRecoveryTest, TailStealRepairsHalfFinishedEnqueue) {
  build(1, /*duplex=*/false, QueueEngine::kTwoLock);
  MsgQueue& q = *channel_->server_endpoint().queue;
  const std::uint32_t free0 = channel_->node_pool().free_count();

  ASSERT_TRUE(q.enqueue(Message(Op::kEcho, 0, 1.0)));
  ChildProcess victim = ChildProcess::spawn([&] {
    return q.crash_mid_enqueue_for_test(Message(Op::kEcho, 0, 2.0)) !=
                   kNullIndex
               ? 0
               : 1;
  });
  ASSERT_EQ(victim.join(), 0);

  // The corpse still owns the tail lock.
  EXPECT_NE(q.two_lock().tail_lock().owner(), 0u);
  EXPECT_NE(q.two_lock().tail_lock().owner(), robust_self_pid());

  // This enqueue must steal, repair, and append after the half-linked node.
  ASSERT_TRUE(q.enqueue(Message(Op::kEcho, 0, 3.0)));
  EXPECT_EQ(q.two_lock().tail_lock().steal_count(), 1u);

  Message m;
  ASSERT_TRUE(q.dequeue(&m));
  EXPECT_EQ(m.value, 1.0);
  ASSERT_TRUE(q.dequeue(&m));
  EXPECT_EQ(m.value, 2.0);  // linking is the commit point: not lost
  ASSERT_TRUE(q.dequeue(&m));
  EXPECT_EQ(m.value, 3.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(channel_->node_pool().free_count(), free0);
}

// A process dying between NodePool::allocate() and the queue link leaks a
// node invisible to every queue. reclaim_client() must sweep it back.
TEST_F(CrashRecoveryTest, LeakedNodeOfDeadClientIsSwept) {
  build(1, /*duplex=*/false);
  const std::uint32_t free0 = channel_->node_pool().free_count();

  ChildProcess victim = ChildProcess::spawn([&] {
    return channel_->node_pool().allocate() != kNullIndex ? 0 : 1;
  });
  channel_->register_client_pid(
      0, static_cast<std::uint32_t>(victim.pid()));
  ASSERT_EQ(victim.join(), 0);
  ASSERT_TRUE(channel_->client_crashed(0));

  const ShmChannel::ReclaimStats rs = channel_->reclaim_client(0);
  EXPECT_EQ(rs.nodes_reclaimed, 1u);
  EXPECT_EQ(channel_->node_pool().free_count(), free0);
  EXPECT_FALSE(channel_->client_crashed(0));  // seat vacated
}

// The sweep must NOT reclaim a node whose owner is alive — a live process
// may be microseconds away from linking it into a queue.
TEST_F(CrashRecoveryTest, SweepSparesNodesOfLiveOwners) {
  build(1, /*duplex=*/false);
  NodePool& pool = channel_->node_pool();
  const ShmIndex mine = pool.allocate();  // in flight, owner = this process
  ASSERT_NE(mine, kNullIndex);
  const std::uint32_t free_before = pool.free_count();

  ChildProcess victim = ChildProcess::spawn([] { return 0; });
  channel_->register_client_pid(
      0, static_cast<std::uint32_t>(victim.pid()));
  ASSERT_EQ(victim.join(), 0);

  const ShmChannel::ReclaimStats rs = channel_->reclaim_client(0);
  EXPECT_EQ(rs.nodes_reclaimed, 0u);
  EXPECT_EQ(pool.free_count(), free_before);
  pool.release(mine);
}

/// Shared duplex-crash rig: two clients, client 0 is the victim (runs
/// `victim_body` after connecting and is then SIGKILLed), client 1 runs a
/// full clean workload. The server runs with a 50 ms liveness timeout and
/// must reap exactly client 0 and end with every pool node recovered.
template <typename VictimBody>
void run_duplex_crash(ShmChannel& channel, CrashOut* out,
                      std::uint64_t clean_messages, VictimBody&& victim_body,
                      bool kill_after_ready,
                      const std::function<void()>& await_ready,
                      std::uint64_t min_echoes) {
  const std::uint32_t free0 = channel.node_pool().free_count();

  ChildProcess server = ChildProcess::spawn([&] {
    DuplexServerOptions opts;
    opts.liveness_timeout_ns = kLivenessTimeoutNs;
    const DuplexServerResult r = run_duplex_server(
        channel, Bsw<NativePlatform>(), 2, NativePlatform::Config{}, opts);
    out->echo_messages = r.echo_messages;
    out->crashed_clients = r.crashed_clients;
    if (!r.crash_events.empty()) {
      out->crashed_id = r.crash_events.front().client_id;
      out->drained = r.crash_events.front().drained_messages;
    }
    return r.crashed_clients == 1 ? 0 : 1;
  });

  ChildProcess victim = ChildProcess::spawn([&] {
    NativePlatform plat;
    Bsw<NativePlatform> proto;
    NativeEndpoint& req = channel.client_request_endpoint(0);
    NativeEndpoint& mine = channel.client_endpoint(0);
    client_connect(plat, proto, req, mine, 0);
    victim_body(plat, proto, req, mine);
    return 0;
  });
  channel.register_client_pid(0, static_cast<std::uint32_t>(victim.pid()));

  ChildProcess clean = ChildProcess::spawn([&] {
    NativePlatform plat;
    Bsw<NativePlatform> proto;
    NativeEndpoint& req = channel.client_request_endpoint(1);
    NativeEndpoint& mine = channel.client_endpoint(1);
    client_connect(plat, proto, req, mine, 1);
    const std::uint64_t ok =
        client_echo_loop(plat, proto, req, mine, 1, clean_messages);
    client_disconnect(plat, proto, req, mine, 1);
    return ok == clean_messages ? 0 : 1;
  });
  channel.register_client_pid(1, static_cast<std::uint32_t>(clean.pid()));

  if (kill_after_ready) {
    await_ready();
    victim.kill();
    EXPECT_LT(victim.join(), 0);  // -SIGKILL
  } else {
    EXPECT_EQ(victim.join(), 0);  // victim exits itself mid-operation
  }

  EXPECT_EQ(clean.join(), 0);
  EXPECT_EQ(server.join(), 0) << "server failed to reap the dead client";

  EXPECT_EQ(out->crashed_clients, 1u);
  EXPECT_EQ(out->crashed_id, 0u);
  EXPECT_GE(out->echo_messages, min_echoes);
  // Count free nodes only after every participant has joined: a client
  // releases its final reply node after the server has already finished,
  // so a server-side count would race with that release.
  EXPECT_EQ(channel.node_pool().free_count(), free0)
      << "pool leaked nodes across the crash";
}

// Victim killed while ASLEEP: it finishes a burst of echoes, parks in
// pause(), and is SIGKILLed. The server thread serving it is blocked in a
// timed receive; it must time out, probe, and reap.
TEST_F(CrashRecoveryTest, ServerReapsClientKilledWhileAsleep) {
  build(2, /*duplex=*/true);
  run_duplex_crash(
      *channel_, out_, /*clean_messages=*/500,
      [&](NativePlatform& plat, Bsw<NativePlatform>& proto,
          NativeEndpoint& req, NativeEndpoint& mine) {
        client_echo_loop(plat, proto, req, mine, 0, 100);
        out_->victim_ready.store(1, std::memory_order_release);
        for (;;) pause();
      },
      /*kill_after_ready=*/true, [&] { await_victim_ready(); },
      /*min_echoes=*/600);
}

// Victim dies MID-CRITICAL-SECTION: inside an enqueue on its request
// queue, after linking the node but before advancing the tail, still
// holding the tail lock. The linked request is either served (the link is
// the commit point) or drained during the reap — never stranded — and
// recovery must steal + repair the abandoned lock.
TEST_F(CrashRecoveryTest, ServerReapsClientKilledMidCriticalSection) {
  build(2, /*duplex=*/true, QueueEngine::kTwoLock);
  run_duplex_crash(
      *channel_, out_, /*clean_messages=*/500,
      [&](NativePlatform&, Bsw<NativePlatform>&, NativeEndpoint& req,
          NativeEndpoint&) {
        req.queue->crash_mid_enqueue_for_test(Message(Op::kEcho, 0, 7.0));
        // exits with the tail lock held
      },
      /*kill_after_ready=*/false, [] {},
      /*min_echoes=*/500);
  EXPECT_EQ(channel_->client_request_endpoint(0).queue->two_lock().tail_lock()
                .steal_count(),
            1u)
      << "recovery should have stolen the corpse's tail lock";
}

// Victim killed MID-SEND at an arbitrary instruction: it hammers echoes in
// an unbounded loop and is SIGKILLed after ~25 ms, landing wherever the
// scheduler put it (enqueueing, waking the server, sleeping on its reply
// semaphore, ...). Whatever the interleaving, the server must reap it and
// the pool must end whole.
TEST_F(CrashRecoveryTest, ServerReapsClientKilledMidSend) {
  build(2, /*duplex=*/true);
  run_duplex_crash(
      *channel_, out_, /*clean_messages=*/500,
      [&](NativePlatform& plat, Bsw<NativePlatform>& proto,
          NativeEndpoint& req, NativeEndpoint& mine) {
        out_->victim_ready.store(1, std::memory_order_release);
        for (std::uint64_t i = 0;; ++i) {
          Message ans;
          proto.send(plat, req, mine, Message(Op::kEcho, 0, double(i)),
                     &ans);
        }
      },
      /*kill_after_ready=*/true,
      [&] {
        await_victim_ready();
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      },
      /*min_echoes=*/500);
}

// Liveness timeouts must not misfire on healthy-but-slow clients: a client
// that stalls longer than the timeout (without dying) still completes.
TEST_F(CrashRecoveryTest, SlowLiveClientIsNotReaped) {
  build(2, /*duplex=*/true);
  const std::uint32_t free0 = channel_->node_pool().free_count();

  ChildProcess server = ChildProcess::spawn([&] {
    DuplexServerOptions opts;
    opts.liveness_timeout_ns = kLivenessTimeoutNs;
    const DuplexServerResult r = run_duplex_server(
        *channel_, Bsw<NativePlatform>(), 2, NativePlatform::Config{}, opts);
    out_->crashed_clients = r.crashed_clients;
    out_->echo_messages = r.echo_messages;
    return r.crashed_clients == 0 ? 0 : 1;
  });

  std::vector<ChildProcess> clients;
  for (std::uint32_t i = 0; i < 2; ++i) {
    clients.push_back(ChildProcess::spawn([&, i] {
      NativePlatform plat;
      Bsw<NativePlatform> proto;
      NativeEndpoint& req = channel_->client_request_endpoint(i);
      NativeEndpoint& mine = channel_->client_endpoint(i);
      client_connect(plat, proto, req, mine, i);
      client_echo_loop(plat, proto, req, mine, i, 50);
      // Stall for 4x the server's liveness timeout, then resume: the
      // server probes kill(pid, 0), finds us alive, and keeps waiting.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const std::uint64_t ok =
          client_echo_loop(plat, proto, req, mine, i, 50);
      client_disconnect(plat, proto, req, mine, i);
      return ok == 50 ? 0 : 1;
    }));
    channel_->register_client_pid(
        i, static_cast<std::uint32_t>(clients.back().pid()));
  }

  for (auto& c : clients) EXPECT_EQ(c.join(), 0);
  EXPECT_EQ(server.join(), 0) << "server reaped a live client";
  EXPECT_EQ(out_->crashed_clients, 0u);
  EXPECT_EQ(out_->echo_messages, 200u);
  // Counted after all joins — a server-side count would race with the
  // clients releasing their final disconnect-reply nodes.
  EXPECT_EQ(channel_->node_pool().free_count(), free0);
}

}  // namespace
}  // namespace ulipc
