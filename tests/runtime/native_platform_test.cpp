#include "runtime/native_platform.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "runtime/shm_channel.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class NativePlatformTest : public ::testing::Test {
 protected:
  NativePlatformTest() {
    ShmChannel::Config cfg;
    cfg.max_clients = 2;
    cfg.queue_capacity = 8;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
  }

  NativeEndpoint& srv() { return channel_->server_endpoint(); }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
};

TEST_F(NativePlatformTest, QueueOpsRoundTrip) {
  NativePlatform p;
  EXPECT_TRUE(p.queue_empty(srv()));
  EXPECT_TRUE(p.enqueue(srv(), Message(Op::kEcho, 1, 2.5)));
  EXPECT_FALSE(p.queue_empty(srv()));
  Message m;
  EXPECT_TRUE(p.dequeue(srv(), &m));
  EXPECT_DOUBLE_EQ(m.value, 2.5);
  EXPECT_FALSE(p.dequeue(srv(), &m));
}

TEST_F(NativePlatformTest, EnqueueReportsFull) {
  NativePlatform p;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(p.enqueue(srv(), Message(Op::kEcho, 0, 0.0)));
  }
  EXPECT_FALSE(p.enqueue(srv(), Message(Op::kEcho, 0, 0.0)));
}

TEST_F(NativePlatformTest, AwakeFlagSemantics) {
  NativePlatform p;
  EXPECT_TRUE(p.awake_is_set(srv()));
  p.clear_awake(srv());
  EXPECT_FALSE(p.awake_is_set(srv()));
  EXPECT_FALSE(p.tas_awake(srv())) << "first tas after clear returns 0";
  EXPECT_TRUE(p.tas_awake(srv())) << "second tas returns 1";
  p.set_awake(srv());
  EXPECT_TRUE(p.awake_is_set(srv()));
}

TEST_F(NativePlatformTest, FutexSemaphorePV) {
  NativePlatform::Config cfg;
  cfg.sem = SemKind::kFutex;
  NativePlatform p(cfg);
  p.sem_v(srv());
  p.sem_p(srv());  // must not block
  EXPECT_EQ(srv().fsem.value(), 0u);
}

TEST_F(NativePlatformTest, SysvSemaphorePV) {
  NativePlatform::Config cfg;
  cfg.sem = SemKind::kSysv;
  NativePlatform p(cfg);
  p.sem_v(srv());
  EXPECT_EQ(SysvSemaphoreSet::value(srv().vsem), 1);
  p.sem_p(srv());
  EXPECT_EQ(SysvSemaphoreSet::value(srv().vsem), 0);
}

TEST_F(NativePlatformTest, SemBlocksAcrossThreads) {
  NativePlatform p;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    NativePlatform p2;
    p2.sem_p(srv());
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  p.sem_v(srv());
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_F(NativePlatformTest, SleepSecondsHonorsConfiguredScale) {
  NativePlatform::Config cfg;
  cfg.full_sleep_ns = 2'000'000;  // "1 second" compressed to 2 ms for tests
  NativePlatform p(cfg);
  const std::int64_t t0 = p.time_ns();
  p.sleep_seconds(1);
  const std::int64_t elapsed = p.time_ns() - t0;
  EXPECT_GE(elapsed, 2'000'000);
  EXPECT_LT(elapsed, 500'000'000);
}

TEST_F(NativePlatformTest, WorkBurnsCpu) {
  NativePlatform p;
  const std::int64_t t0 = p.time_ns();
  p.work_us(2'000);  // 2 ms
  EXPECT_GE(p.time_ns() - t0, 500'000);
}

TEST_F(NativePlatformTest, TimeIsMonotonic) {
  NativePlatform p;
  const std::int64_t a = p.time_ns();
  const std::int64_t b = p.time_ns();
  EXPECT_GE(b, a);
}

TEST_F(NativePlatformTest, CountersAreProcessLocalState) {
  NativePlatform p;
  EXPECT_EQ(p.counters().sends, 0u);
  p.counters().sends = 5;
  NativePlatform q;
  EXPECT_EQ(q.counters().sends, 0u);
}

TEST_F(NativePlatformTest, YieldAndBusyWaitReturn) {
  NativePlatform p;          // uniprocessor flavour: busy_wait yields
  p.yield();
  p.busy_wait(srv());
  p.poll_queue(srv());
  NativePlatform::Config mp_cfg;
  mp_cfg.multiprocessor = true;
  mp_cfg.poll_slice_ns = 10'000;
  NativePlatform mp(mp_cfg);  // multiprocessor flavour: delay loop
  const std::int64_t t0 = now_ns();
  mp.busy_wait(srv());
  EXPECT_GE(now_ns() - t0, 2'000);
  SUCCEED();
}

}  // namespace
}  // namespace ulipc
