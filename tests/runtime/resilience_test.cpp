// ResilientPoolClient: the bounded-time client envelope that the scenario
// engine drives. Each test isolates one leg of the envelope —
//   * admission shedding (kOverloaded when the target shard is over the
//     watermark, request never enqueued),
//   * deadline + bounded retry (kTimedOut after exactly max_retries
//     re-sends when nothing ever answers),
//   * stale-reply dedup (a reply carrying another tag is dropped, never
//     returned as this request's answer),
//   * backoff shape (exponential growth, cap, jitter window),
//   * and the happy path against a real forked pool worker.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "protocols/bsw.hpp"
#include "runtime/resilience.hpp"
#include "runtime/server_pool.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class ResilienceTest : public ::testing::Test {
 protected:
  void build(std::uint32_t shards, std::uint32_t clients,
             std::uint32_t capacity = 64) {
    ShmChannel::Config cfg;
    cfg.max_clients = clients;
    cfg.queue_capacity = capacity;
    cfg.shards = shards;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
};

TEST_F(ResilienceTest, ShedsAtAdmissionWhenShardExceedsWatermark) {
  build(1, 1);
  NativePlatform plat;
  ResilienceConfig cfg;
  cfg.shed_watermark = 2;
  cfg.request_deadline_ns = 5'000'000;
  cfg.max_retries = 0;
  ResilientPoolClient client(*channel_, 0, cfg);

  // Pile three requests into the only shard: depth 3 > watermark 2.
  NativeEndpoint& shard = channel_->shard_endpoint(0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(shard.queue->enqueue(Message(Op::kEcho, 0, double(i))));
  }
  const std::uint64_t queued = shard.queue->size();

  Message ans;
  EXPECT_EQ(client.request(plat, Op::kEcho, 1.0, &ans),
            RequestOutcome::kOverloaded);
  EXPECT_EQ(client.stats().sheds, 1u);
  EXPECT_EQ(plat.counters().sheds, 1u);
  EXPECT_EQ(shard.queue->size(), queued)
      << "a shed request must never reach the shard queue";

  // Drain below the watermark: the same client is admitted again (and then
  // times out, because nobody serves — admission and service are separate).
  Message m;
  while (shard.queue->dequeue(&m)) {
  }
  EXPECT_EQ(client.request(plat, Op::kEcho, 1.0, &ans),
            RequestOutcome::kTimedOut);
  EXPECT_EQ(client.stats().sheds, 1u) << "no further shed after the drain";
}

TEST_F(ResilienceTest, TimesOutAfterBoundedRetriesWhenNobodyServes) {
  build(1, 1);
  NativePlatform plat;
  ResilienceConfig cfg;
  cfg.request_deadline_ns = 2'000'000;  // 2 ms per attempt
  cfg.max_retries = 3;
  cfg.backoff_base_ns = 50'000;
  cfg.backoff_cap_ns = 200'000;
  ResilientPoolClient client(*channel_, 0, cfg);

  Message ans;
  EXPECT_EQ(client.request(plat, Op::kEcho, 7.0, &ans),
            RequestOutcome::kTimedOut);
  EXPECT_EQ(client.stats().retries, 3u) << "one initial attempt + 3 retries";
  EXPECT_EQ(plat.counters().retries, 3u);
  EXPECT_EQ(client.stats().requests, 1u) << "one logical request";
  // All four attempts enqueued the same tagged message.
  EXPECT_EQ(channel_->shard_endpoint(0).queue->size(), 4u);
}

TEST_F(ResilienceTest, StaleReplyIsDroppedNotReturned) {
  build(1, 1);
  NativePlatform plat;
  ResilienceConfig cfg;
  cfg.request_deadline_ns = 5'000'000;
  cfg.max_retries = 0;
  ResilientPoolClient client(*channel_, 0, cfg);

  // A reply from a superseded attempt is already waiting in the client's
  // queue: right channel, wrong tag. The first real request uses tag 1, so
  // tag 999 can never match.
  NativeEndpoint& mine = channel_->client_endpoint(0);
  ASSERT_TRUE(mine.queue->enqueue(Message(Op::kEcho, 0, 42.0, 999)));

  Message ans;
  ans.value = -1.0;
  EXPECT_EQ(client.request(plat, Op::kEcho, 7.0, &ans),
            RequestOutcome::kTimedOut)
      << "the stale reply must not satisfy the request";
  EXPECT_EQ(client.stats().stale_dropped, 1u);
  EXPECT_TRUE(mine.queue->empty()) << "the stale reply was consumed";
}

TEST_F(ResilienceTest, BackoffGrowsExponentiallyCapsAndJittersDown) {
  build(1, 1);
  ResilienceConfig cfg;
  cfg.backoff_base_ns = 100'000;
  cfg.backoff_cap_ns = 1'000'000;
  cfg.backoff_jitter = 0.5;
  ResilientPoolClient client(*channel_, 0, cfg);

  for (int draw = 0; draw < 64; ++draw) {
    // attempt 1: [base/2, base].
    const std::int64_t d1 = client.backoff_ns(1);
    EXPECT_GE(d1, 50'000);
    EXPECT_LE(d1, 100'000);
    // attempt 3: nominal 400us, jittered down to at most half.
    const std::int64_t d3 = client.backoff_ns(3);
    EXPECT_GE(d3, 200'000);
    EXPECT_LE(d3, 400'000);
    // attempt 10: nominal 51.2ms, capped at 1ms before jitter.
    const std::int64_t d10 = client.backoff_ns(10);
    EXPECT_GE(d10, 500'000);
    EXPECT_LE(d10, 1'000'000);
  }
}

TEST_F(ResilienceTest, RoundTripsAgainstARealWorker) {
  build(1, 1);
  ChildProcess worker = ChildProcess::spawn([&] {
    ServerPoolOptions o;
    o.expected_clients = 1;
    o.liveness_timeout_ns = 20'000'000;
    const PoolWorkerResult r =
        run_pool_worker(*channel_, Bsw<NativePlatform>(), 0, o);
    return r.server.echo_messages >= 50 ? 0 : 1;
  });
  channel_->register_worker_pid(0, static_cast<std::uint32_t>(worker.pid()));

  NativePlatform plat;
  ResilientPoolClient client(*channel_, 0);
  ASSERT_EQ(client.connect(plat, PlacementPolicy::kLeastLoaded),
            RequestOutcome::kOk);
  for (int i = 0; i < 50; ++i) {
    Message ans;
    ASSERT_EQ(client.request(plat, Op::kEcho, double(i), &ans),
              RequestOutcome::kOk);
    EXPECT_DOUBLE_EQ(ans.value, double(i));
    EXPECT_EQ(ans.channel, 0u);
  }
  EXPECT_EQ(client.disconnect(plat), RequestOutcome::kOk);
  EXPECT_EQ(worker.join(), 0);
  EXPECT_EQ(client.stats().requests, 52u);  // connect + 50 echoes + disconnect
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().stale_dropped, 0u);
}

}  // namespace
}  // namespace ulipc
