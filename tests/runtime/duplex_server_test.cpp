#include "runtime/duplex_server.hpp"

#include <gtest/gtest.h>

#include "protocols/bsls.hpp"
#include "protocols/bsw.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class DuplexServerTest : public ::testing::Test {
 protected:
  void build(std::uint32_t clients) {
    ShmChannel::Config cfg;
    cfg.max_clients = clients;
    cfg.queue_capacity = 32;
    cfg.duplex = true;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
};

TEST_F(DuplexServerTest, RequestEndpointsDistinctFromReply) {
  build(2);
  EXPECT_NE(&channel_->client_request_endpoint(0),
            &channel_->client_endpoint(0));
  EXPECT_NE(&channel_->client_request_endpoint(0),
            &channel_->client_request_endpoint(1));
  // Semaphores must be distinct too.
  EXPECT_NE(channel_->client_request_endpoint(0).vsem.index,
            channel_->client_endpoint(0).vsem.index);
}

TEST_F(DuplexServerTest, NonDuplexChannelRejectsRequestEndpoint) {
  ShmChannel::Config cfg;
  cfg.max_clients = 1;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel ch = ShmChannel::create(region, cfg);
  EXPECT_THROW((void)ch.client_request_endpoint(0), InvariantError);
}

template <typename Proto>
void run_duplex_echo(ShmChannel& channel, std::uint32_t clients,
                     std::uint64_t messages, Proto proto) {
  ChildProcess server = ChildProcess::spawn([&] {
    const DuplexServerResult r =
        run_duplex_server(channel, proto, clients);
    return r.echo_messages ==
                   static_cast<std::uint64_t>(clients) * messages
               ? 0
               : 1;
  });
  std::vector<ChildProcess> client_procs;
  for (std::uint32_t i = 0; i < clients; ++i) {
    client_procs.push_back(ChildProcess::spawn([&, i] {
      NativePlatform plat;
      Proto p2 = proto;
      NativeEndpoint& req = channel.client_request_endpoint(i);
      NativeEndpoint& mine = channel.client_endpoint(i);
      client_connect(plat, p2, req, mine, i);
      const std::uint64_t ok =
          client_echo_loop(plat, p2, req, mine, i, messages);
      client_disconnect(plat, p2, req, mine, i);
      return ok == messages ? 0 : 1;
    }));
  }
  for (auto& c : client_procs) EXPECT_EQ(c.join(), 0);
  EXPECT_EQ(server.join(), 0);
}

TEST_F(DuplexServerTest, SingleClientEcho) {
  build(1);
  run_duplex_echo(*channel_, 1, 2'000, Bsls<NativePlatform>(10));
}

TEST_F(DuplexServerTest, FourClientsEcho) {
  build(4);
  run_duplex_echo(*channel_, 4, 1'000, Bsls<NativePlatform>(10));
}

TEST_F(DuplexServerTest, WorksWithBswToo) {
  build(2);
  run_duplex_echo(*channel_, 2, 1'000, Bsw<NativePlatform>());
}

TEST_F(DuplexServerTest, ReportsAggregateThroughput) {
  build(2);
  constexpr std::uint64_t kMessages = 1'000;
  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* throughput = new (out_region.base()) double(0.0);

  ChildProcess server = ChildProcess::spawn([&] {
    const DuplexServerResult r =
        run_duplex_server(*channel_, Bsls<NativePlatform>(10), 2);
    *throughput = r.throughput_msgs_per_ms();
    return 0;
  });
  std::vector<ChildProcess> clients;
  for (std::uint32_t i = 0; i < 2; ++i) {
    clients.push_back(ChildProcess::spawn([&, i] {
      NativePlatform plat;
      Bsls<NativePlatform> proto(10);
      NativeEndpoint& req = channel_->client_request_endpoint(i);
      NativeEndpoint& mine = channel_->client_endpoint(i);
      client_connect(plat, proto, req, mine, i);
      client_echo_loop(plat, proto, req, mine, i, kMessages);
      client_disconnect(plat, proto, req, mine, i);
      return 0;
    }));
  }
  join_all(clients);
  EXPECT_EQ(server.join(), 0);
  EXPECT_GT(*throughput, 0.0);
}

}  // namespace
}  // namespace ulipc
