// The PR-1 recovery sweep running CONCURRENTLY with connect/disconnect
// churn against the pool. The sweep's safety argument (queue_recovery.hpp)
// is that marking runs under the structures' own locks and a node is only
// reclaimed when its stamped owner is DEAD — so a sweep racing live
// clients mid-enqueue/mid-dequeue must reclaim nothing and perturb
// nothing. This test hammers that argument: four clients cycle
// connect → echo → disconnect while the parent sweeps in a tight loop the
// whole time. Every reply must verify, every sweep must come back empty,
// and the node pool must balance at the end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "protocols/bsw.hpp"
#include "queue/queue_recovery.hpp"
#include "runtime/server_pool.hpp"
#include "shm/process.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class RecoveryChurnTest : public ::testing::TestWithParam<QueueEngine> {};

TEST_P(RecoveryChurnTest, SweepRacingLiveChurnReclaimsNothingAndLosesNothing) {
  constexpr std::uint32_t kWorkers = 2;
  constexpr std::uint32_t kClients = 4;
  constexpr std::uint32_t kCycles = 4;
  constexpr std::uint64_t kMessages = 25;

  ShmChannel::Config cfg;
  cfg.max_clients = kClients;
  cfg.queue_capacity = 64;
  cfg.shards = kWorkers;
  cfg.engines.server = cfg.engines.reply = cfg.engines.shard = GetParam();
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  const std::uint32_t free0 = channel.node_pool().free_count();

  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* clients_done =
      new (out_region.base()) std::atomic<std::uint32_t>(0);

  std::vector<ChildProcess> workers;
  for (std::uint32_t s = 0; s < kWorkers; ++s) {
    workers.push_back(ChildProcess::spawn([&, s] {
      ServerPoolOptions o;
      o.expected_clients = kClients * kCycles;  // one departure per cycle
      o.liveness_timeout_ns = 20'000'000;
      (void)run_pool_worker(channel, Bsw<NativePlatform>(), s, o);
      return 0;
    }));
    channel.register_worker_pid(
        s, static_cast<std::uint32_t>(workers.back().pid()));
  }

  std::vector<ChildProcess> clients;
  for (std::uint32_t i = 0; i < kClients; ++i) {
    clients.push_back(ChildProcess::spawn([&, i] {
      NativePlatform plat;
      Bsw<NativePlatform> proto;
      std::uint64_t verified = 0;
      for (std::uint32_t cy = 0; cy < kCycles; ++cy) {
        channel.register_client(i);
        pool_client_connect(plat, proto, channel, i,
                            PlacementPolicy::kLeastLoaded);
        verified += pool_client_echo_loop(plat, proto, channel, i, kMessages);
        pool_client_disconnect(plat, proto, channel, i);
      }
      clients_done->fetch_add(1, std::memory_order_acq_rel);
      return verified == kCycles * kMessages ? 0 : 1;
    }));
    channel.register_client_pid(
        i, static_cast<std::uint32_t>(clients.back().pid()));
  }

  // Sweep continuously while the churn runs. Everyone is alive, so the
  // liveness gate must hold back every mark-missed node: cumulative
  // reclaims stay zero or the sweep just ate an in-flight message.
  std::uint64_t sweeps = 0;
  std::uint32_t reclaimed = 0;
  while (clients_done->load(std::memory_order_acquire) < kClients) {
    RobustGuard g(channel.header().recovery_lock);
    const RecoveryStats st = sweep_leaked_nodes(
        channel.node_pool(), channel.all_queues(), nullptr);
    reclaimed += st.nodes_reclaimed;
    ++sweeps;
  }

  for (auto& c : clients) EXPECT_EQ(c.join(), 0) << "client lost replies";
  for (auto& w : workers) EXPECT_EQ(w.join(), 0);

  EXPECT_GT(sweeps, 0u);
  EXPECT_EQ(reclaimed, 0u)
      << "a sweep reclaimed a node owned by a LIVE process";
  // One final serialized sweep on the quiesced channel, then the balance.
  {
    RobustGuard g(channel.header().recovery_lock);
    const RecoveryStats st = sweep_leaked_nodes(
        channel.node_pool(), channel.all_queues(), nullptr);
    EXPECT_EQ(st.nodes_reclaimed, 0u);
  }
  EXPECT_EQ(channel.node_pool().free_count(), free0)
      << "node pool did not balance after churn + concurrent sweeps";
}

INSTANTIATE_TEST_SUITE_P(Engines, RecoveryChurnTest,
                         ::testing::Values(QueueEngine::kTwoLock,
                                           QueueEngine::kLockFree),
                         [](const ::testing::TestParamInfo<QueueEngine>& i) {
                           return i.param == QueueEngine::kTwoLock
                                      ? "TwoLock"
                                      : "LockFree";
                         });

}  // namespace
}  // namespace ulipc
