// Departure accounting for the sharded pool: pool_disconnected is every
// worker's termination condition, so each client must be counted EXACTLY
// once no matter how it leaves. The regression pinned here is
// leave-then-crash: a client whose kDisconnect was served but that died
// before deregistering its liveness seat used to be counted twice — once
// by the serving worker, once by the crash reaper — shutting the pool down
// one real departure early (and stranding any client still connected).
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "protocols/bsw.hpp"
#include "runtime/server_pool.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

struct DepartureOut {
  std::atomic<std::uint32_t> b_resume{0};
  std::atomic<std::uint32_t> reaped_clients{0};
};

class PoolDepartureTest : public ::testing::Test {
 protected:
  void build(std::uint32_t shards, std::uint32_t clients) {
    ShmChannel::Config cfg;
    cfg.max_clients = clients;
    cfg.queue_capacity = 64;
    cfg.shards = shards;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
    out_region_ = ShmRegion::create_anonymous(4096);
    out_ = new (out_region_.base()) DepartureOut();
  }

  ChildProcess spawn_worker(std::uint32_t shard) {
    ChildProcess w = ChildProcess::spawn([&, shard] {
      ServerPoolOptions o;
      o.expected_clients = 2;
      o.liveness_timeout_ns = 20'000'000;
      o.steal_batch = 0;
      const PoolWorkerResult r =
          run_pool_worker(*channel_, Bsw<NativePlatform>(), shard, o);
      out_->reaped_clients.fetch_add(r.reaped_clients,
                                     std::memory_order_acq_rel);
      return 0;
    });
    channel_->register_worker_pid(shard, static_cast<std::uint32_t>(w.pid()));
    return w;
  }

  ShmRegion region_;
  ShmRegion out_region_;
  std::optional<ShmChannel> channel_;
  DepartureOut* out_ = nullptr;
};

TEST_F(PoolDepartureTest, ServedDisconnectThenDeathCountsExactlyOnce) {
  build(2, 2);
  constexpr std::uint64_t kMessages = 50;

  std::vector<ChildProcess> workers;
  workers.push_back(spawn_worker(0));
  workers.push_back(spawn_worker(1));

  // Client A: clean protocol-level disconnect (the worker serves the
  // kDisconnect and counts it), then exits WITHOUT deregistering its
  // liveness seat — so its corpse also trips the crash reaper.
  ChildProcess a = ChildProcess::spawn([&] {
    NativePlatform plat;
    Bsw<NativePlatform> proto;
    pool_client_connect(plat, proto, *channel_, 0,
                        PlacementPolicy::kLeastLoaded, /*forced_shard=*/0);
    const std::uint64_t ok =
        pool_client_echo_loop(plat, proto, *channel_, 0, kMessages);
    PoolShardMap& map = channel_->shard_map();
    NativeEndpoint& srv = channel_->shard_endpoint(map.assignment(0));
    client_disconnect(plat, proto, srv, channel_->client_endpoint(0), 0);
    // Deliberately NO map.unplace / deregister_client: leave-then-crash.
    return ok == kMessages ? 0 : 1;
  });
  channel_->register_client_pid(0, static_cast<std::uint32_t>(a.pid()));

  // Client B: stays connected until A's corpse has definitely been reaped,
  // then leaves cleanly. Pre-fix, the double count shut the pool down
  // while B was still connected and B's disconnect was never answered.
  ChildProcess b = ChildProcess::spawn([&] {
    NativePlatform plat;
    Bsw<NativePlatform> proto;
    pool_client_connect(plat, proto, *channel_, 1,
                        PlacementPolicy::kLeastLoaded, /*forced_shard=*/1);
    std::uint64_t ok =
        pool_client_echo_loop(plat, proto, *channel_, 1, kMessages);
    while (out_->b_resume.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ok += pool_client_echo_loop(plat, proto, *channel_, 1, kMessages);
    pool_client_disconnect(plat, proto, *channel_, 1);
    return ok == 2 * kMessages ? 0 : 1;
  });
  channel_->register_client_pid(1, static_cast<std::uint32_t>(b.pid()));

  EXPECT_EQ(a.join(), 0) << "client A lost replies";
  // A is dead with its seat still registered. Give the reapers more than
  // one liveness timeout to notice and reclaim the corpse while B is still
  // connected — the window the double count lived in.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (channel_->client_pid(0) != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "A's corpse was never reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  out_->b_resume.store(1, std::memory_order_release);

  EXPECT_EQ(b.join(), 0) << "client B lost replies (pool shut down early?)";
  for (auto& w : workers) {
    EXPECT_EQ(w.join(), 0) << "worker did not terminate cleanly";
  }

  // Exact accounting: two clients, two departures, one corpse reaped.
  EXPECT_EQ(channel_->header().pool_disconnected.load(), 2u)
      << "leave-then-crash was double-counted";
  EXPECT_EQ(out_->reaped_clients.load(), 1u)
      << "exactly one worker reclaims A's seat";
  EXPECT_EQ(channel_->header().client_departed[0].load(), 1u);
  EXPECT_EQ(channel_->client_pid(0), 0u) << "A's seat must be vacated";
}

}  // namespace
}  // namespace ulipc
