// WaitSet suite: the readiness plane under real processes. Covers backend
// resolution (probe + ULIPC_FORCE_EVENTFD_BRIDGE), the single-worker
// fan-in echo over many channels on BOTH backends, membership changes
// while a waiter is blocked, and a SIGKILLed doorbell-armed client whose
// member slot is reclaimed by the recovery sweep. The lost-wakeup shape at
// every arm/recheck/block edge is pinned separately in
// tests/explore/waitset_explore_test.cpp.
#include <poll.h>
#include <stdlib.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "protocols/bsw.hpp"
#include "protocols/detail.hpp"
#include "runtime/shm_channel.hpp"
#include "runtime/waitset.hpp"
#include "shm/futex_waitv.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

/// Env guard: forces (or clears) ULIPC_FORCE_EVENTFD_BRIDGE for one test
/// body and restores the prior state on exit, so tests cannot leak the
/// override into each other.
class ForceBridgeEnv {
 public:
  explicit ForceBridgeEnv(const char* value) {
    const char* prev = getenv(kVar);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    if (value != nullptr) {
      setenv(kVar, value, 1);
    } else {
      unsetenv(kVar);
    }
  }
  ~ForceBridgeEnv() {
    if (had_) {
      setenv(kVar, saved_.c_str(), 1);
    } else {
      unsetenv(kVar);
    }
  }

 private:
  static constexpr const char* kVar = "ULIPC_FORCE_EVENTFD_BRIDGE";
  bool had_ = false;
  std::string saved_;
};

TEST(WaitSetBackendTest, ResolutionHonorsProbeAndEnv) {
  {
    ForceBridgeEnv env(nullptr);  // no override: probe decides kAuto
    const WaitSetBackend resolved =
        WaitSet::resolve_backend(WaitSetBackend::kAuto);
    if (futex_waitv_available()) {
      EXPECT_EQ(resolved, WaitSetBackend::kFutexWaitv);
    } else {
      EXPECT_EQ(resolved, WaitSetBackend::kEventfdBridge);
    }
    // An explicit bridge request always sticks.
    EXPECT_EQ(WaitSet::resolve_backend(WaitSetBackend::kEventfdBridge),
              WaitSetBackend::kEventfdBridge);
  }
  {
    ForceBridgeEnv env("ON");
    EXPECT_EQ(WaitSet::resolve_backend(WaitSetBackend::kAuto),
              WaitSetBackend::kEventfdBridge);
  }
  {
    // "0" and "OFF" mean not forced.
    ForceBridgeEnv env("0");
    if (futex_waitv_available()) {
      EXPECT_EQ(WaitSet::resolve_backend(WaitSetBackend::kAuto),
                WaitSetBackend::kFutexWaitv);
    }
  }
}

/// Builds N independent single-client channels on anonymous regions.
struct ChannelFarm {
  explicit ChannelFarm(std::uint32_t n, std::uint32_t queue_capacity = 64) {
    ShmChannel::Config cfg;
    cfg.max_clients = 1;
    cfg.queue_capacity = queue_capacity;
    cfg.payload_max_bytes = 0;
    regions.reserve(n);
    chans.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      regions.push_back(
          ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg)));
      chans.push_back(ShmChannel::create(regions.back(), cfg));
    }
  }
  std::vector<ShmChannel*> ptrs() {
    std::vector<ShmChannel*> p;
    for (ShmChannel& ch : chans) p.push_back(&ch);
    return p;
  }
  std::vector<ShmRegion> regions;
  std::vector<ShmChannel> chans;
};

class WaitSetFaninTest : public ::testing::TestWithParam<WaitSetBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, WaitSetFaninTest,
                         ::testing::Values(WaitSetBackend::kFutexWaitv,
                                           WaitSetBackend::kEventfdBridge),
                         [](const auto& param_info) {
                           return std::string(
                               waitset_backend_name(param_info.param));
                         });

// One waitset worker process serves 12 channels' echo clients end to end:
// every round trip verified, the server's aggregate-wait accounting sane,
// and every channel's node pool whole afterwards.
TEST_P(WaitSetFaninTest, SingleWorkerServesManyChannels) {
  if (GetParam() == WaitSetBackend::kFutexWaitv &&
      !futex_waitv_available()) {
    GTEST_SKIP() << "kernel lacks futex_waitv";
  }
  constexpr std::uint32_t kChannels = 12;
  constexpr std::uint64_t kMessages = 40;
  ChannelFarm farm(kChannels);
  std::vector<std::uint32_t> free0;
  for (ShmChannel& ch : farm.chans) {
    free0.push_back(ch.node_pool().free_count());
  }

  struct Out {
    std::uint64_t echo_messages = 0;
    std::uint64_t waits = 0;
    std::uint64_t ready_members = 0;
    std::uint64_t doorbell_arms = 0;
    std::uint32_t disconnected = 0;
    bool gave_up = true;
  };
  ShmRegion out_region = ShmRegion::create_anonymous(4096);
  auto* out = new (out_region.base()) Out();

  ChildProcess server = ChildProcess::spawn([&] {
    NativePlatform plat;
    FaninOptions fo;
    fo.backend = GetParam();
    fo.liveness_timeout_ns = 5'000'000'000;
    auto ptrs = farm.ptrs();
    const FaninResult fr =
        run_waitset_fanin_server(plat, ptrs, kChannels, fo);
    out->echo_messages = fr.server.echo_messages;
    out->waits = fr.waits;
    out->ready_members = fr.ready_members;
    out->doorbell_arms = plat.counters().doorbell_arms;
    out->disconnected = fr.disconnected;
    out->gave_up = fr.gave_up;
    return fr.gave_up ? 1 : 0;
  });

  std::vector<ChildProcess> clients;
  for (std::uint32_t c = 0; c < kChannels; ++c) {
    clients.push_back(ChildProcess::spawn([&, c] {
      NativePlatform plat;
      Bsw<NativePlatform> proto;
      NativeEndpoint& srv = farm.chans[c].server_endpoint();
      NativeEndpoint& mine = farm.chans[c].client_endpoint(0);
      client_connect(plat, proto, srv, mine, 0);
      const std::uint64_t ok =
          client_echo_loop(plat, proto, srv, mine, 0, kMessages);
      client_disconnect(plat, proto, srv, mine, 0);
      return ok == kMessages ? 0 : 1;
    }));
  }

  for (auto& c : clients) EXPECT_EQ(c.join(), 0);
  EXPECT_EQ(server.join(), 0);
  EXPECT_FALSE(out->gave_up);
  EXPECT_EQ(out->disconnected, kChannels);
  EXPECT_EQ(out->echo_messages, kChannels * kMessages);
  EXPECT_GT(out->waits, 0u);
  EXPECT_GE(out->ready_members, out->waits);  // every wait claimed >= 1
  EXPECT_GT(out->doorbell_arms, 0u);
  for (std::uint32_t c = 0; c < kChannels; ++c) {
    EXPECT_EQ(farm.chans[c].node_pool().free_count(), free0[c])
        << "channel " << c << " leaked nodes";
  }
}

class WaitSetChunkRotationTest
    : public ::testing::TestWithParam<WaitSetBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, WaitSetChunkRotationTest,
                         ::testing::Values(WaitSetBackend::kFutexWaitv,
                                           WaitSetBackend::kEventfdBridge),
                         [](const auto& param_info) {
                           return std::string(
                               waitset_backend_name(param_info.param));
                         });

// More members than one futex_waitv can watch: the control word occupies a
// waitv slot, so kFutexWaitvMax (128) members already overflow one call and
// the waiter falls back to chunk rotation (bridge backend: the one-word
// rotating FUTEX_WAIT scan). Pins the guarantees that path must keep:
//  * a ring landing in a chunk the waiter is NOT currently parked on still
//    wakes it (the between-slice rescan bounds the latency to one slice);
//  * membership churn on both sides of the chunk boundary — which shifts
//    where the split falls — leaves removed members resting and re-added
//    members immediately waitable;
//  * an all-members burst is claimed exactly once per member across
//    however many aggregate wake rounds it takes, with no pool leaks.
TEST_P(WaitSetChunkRotationTest, FanInAndChurnPastOneWaitvChunk) {
  if (GetParam() == WaitSetBackend::kFutexWaitv &&
      !futex_waitv_available()) {
    GTEST_SKIP() << "kernel lacks futex_waitv";
  }
  constexpr std::uint32_t kMembers = 140;  // 141 blocking words: two chunks
  ChannelFarm farm(kMembers, /*queue_capacity=*/8);
  NativePlatform plat;
  WaitSetOptions opts;
  opts.backend = GetParam();
  WaitSet ws(plat, opts);
  std::vector<std::uint32_t> free0;
  for (std::uint32_t i = 0; i < kMembers; ++i) {
    free0.push_back(farm.chans[i].node_pool().free_count());
    ASSERT_TRUE(ws.add(&farm.chans[i].server_endpoint(), i));
  }
  ASSERT_EQ(ws.size(), kMembers);

  const auto ring = [&](std::uint32_t i) {
    detail::enqueue_and_wake(plat, farm.chans[i].server_endpoint(),
                             Message(Op::kEcho, 0, static_cast<double>(i)));
  };
  const auto drain = [&](std::uint64_t tag) {
    Message m;
    ASSERT_TRUE(farm.chans[tag].server_endpoint().queue->dequeue(&m));
    EXPECT_DOUBLE_EQ(m.value, static_cast<double>(tag));
  };

  // Probe indices straddling the 128-word boundary. The waiter settles
  // into the rotation first (25 ms >> the 2 ms scan slice), so most rings
  // land while it is parked on some OTHER chunk's words.
  const std::uint32_t probes[] = {0, 64, 126, 127, 128, 129, kMembers - 1};
  for (const std::uint32_t p : probes) {
    std::thread producer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      ring(p);
    });
    std::vector<std::uint64_t> ready;
    const Status st = ws.wait(plat.time_ns() + 10'000'000'000, &ready);
    producer.join();
    ASSERT_EQ(st, Status::kOk) << "probe member " << p << " never woke us";
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], p);
    drain(ready[0]);
  }

  // Churn across the boundary: removing a low member shifts the split by
  // one (a former second-chunk word migrates into the first chunk);
  // removing a high member shrinks the tail chunk.
  NativeEndpoint& low = farm.chans[5].server_endpoint();
  NativeEndpoint& high = farm.chans[130].server_endpoint();
  ASSERT_TRUE(ws.remove(&low));
  ASSERT_TRUE(ws.remove(&high));
  EXPECT_FALSE(doorbell_is_armed(low.doorbell));
  EXPECT_TRUE(plat.tas_awake(high));  // resting: producers pay no V
  EXPECT_EQ(ws.size(), kMembers - 2);
  ASSERT_TRUE(ws.add(&low, 5));
  ASSERT_TRUE(ws.add(&high, 130));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ring(130);
  });
  std::vector<std::uint64_t> ready;
  ASSERT_EQ(ws.wait(plat.time_ns() + 10'000'000'000, &ready), Status::kOk);
  producer.join();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 130u);
  drain(130);

  // Burst fan-in: every member rings, then aggregate waits claim each tag
  // exactly once.
  std::vector<bool> seen(kMembers, false);
  for (std::uint32_t i = 0; i < kMembers; ++i) ring(i);
  std::uint32_t claimed = 0;
  while (claimed < kMembers) {
    ready.clear();
    ASSERT_EQ(ws.wait(plat.time_ns() + 10'000'000'000, &ready), Status::kOk);
    for (const std::uint64_t tag : ready) {
      ASSERT_LT(tag, kMembers);
      ASSERT_FALSE(seen[tag]) << "tag " << tag << " claimed twice";
      seen[tag] = true;
      drain(tag);
      ++claimed;
    }
  }

  for (std::uint32_t i = 0; i < kMembers; ++i) {
    ASSERT_TRUE(ws.remove(&farm.chans[i].server_endpoint()));
    EXPECT_EQ(farm.chans[i].node_pool().free_count(), free0[i])
        << "channel " << i << " leaked nodes";
  }
  EXPECT_EQ(ws.size(), 0u);
}

// Membership changes must take effect against a BLOCKED waiter: an add()
// becomes rearm-able traffic the waiter sees without re-entering wait()
// from scratch, and a remove() restores the member to the resting
// single-consumer state (doorbell disarmed, awake set, no banked token).
TEST(WaitSetMembershipTest, AddAndRemoveWhileWaiterBlocked) {
  ChannelFarm farm(2);
  NativePlatform plat;
  NativeEndpoint& a = farm.chans[0].server_endpoint();
  NativeEndpoint& b = farm.chans[1].server_endpoint();

  WaitSet ws(plat);
  ASSERT_TRUE(ws.add(&a, /*tag=*/100));
  ASSERT_FALSE(ws.add(&a, /*tag=*/101));  // duplicate endpoint

  std::atomic<bool> got_b{false};
  std::thread waiter([&] {
    std::vector<std::uint64_t> ready;
    const Status st = ws.wait(plat.time_ns() + 10'000'000'000, &ready);
    ASSERT_EQ(st, Status::kOk);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 200u);
    got_b.store(true, std::memory_order_release);
  });

  // Let the waiter arm and block, then grow the set under it and produce
  // into the NEW member only.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(ws.add(&b, /*tag=*/200));
  detail::enqueue_and_wake(plat, b, Message(Op::kEcho, 0, 1.0));
  waiter.join();
  ASSERT_TRUE(got_b.load(std::memory_order_acquire));
  Message m;
  ASSERT_TRUE(b.queue->dequeue(&m));

  // Remove while a waiter is blocked: the waiter must survive (ungated,
  // snapshot rebuilt) and b must leave in the resting state.
  std::thread waiter2([&] {
    std::vector<std::uint64_t> ready;
    const Status st = ws.wait(plat.time_ns() + 10'000'000'000, &ready);
    ASSERT_EQ(st, Status::kOk);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 100u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(ws.remove(&b));
  EXPECT_FALSE(ws.remove(&b));  // already gone
  EXPECT_FALSE(doorbell_is_armed(b.doorbell));
  // Resting single-consumer state: awake is set, so a producer pays no V.
  EXPECT_TRUE(plat.tas_awake(b));
  detail::enqueue_and_wake(plat, a, Message(Op::kEcho, 0, 2.0));
  waiter2.join();
  ASSERT_TRUE(a.queue->dequeue(&m));
  ASSERT_TRUE(ws.remove(&a));
  EXPECT_EQ(ws.size(), 0u);
}

// kick() ungates a blocked waiter without any member being ready: the
// waiter rechecks (a spurious ungate, counted), re-arms, and blocks again
// until the deadline.
TEST(WaitSetMembershipTest, KickUngatesAndCountsSpurious) {
  ChannelFarm farm(1);
  NativePlatform plat;
  WaitSet ws(plat);
  ASSERT_TRUE(ws.add(&farm.chans[0].server_endpoint(), 7));
  const std::uint64_t spurious0 = plat.counters().spurious_ungates;

  std::thread kicker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ws.kick();
  });
  std::vector<std::uint64_t> ready;
  const Status st = ws.wait(plat.time_ns() + 200'000'000, &ready);
  kicker.join();
  EXPECT_EQ(st, Status::kTimeout);
  EXPECT_GT(plat.counters().spurious_ungates, spurious0);
  ASSERT_TRUE(ws.remove(&farm.chans[0].server_endpoint()));
}

// Bridge backend: poll_fd() joins an external poll loop — it becomes
// readable when a member is rung, and a past-deadline wait() claims the
// traffic. The futex_waitv backend has no fd.
TEST(WaitSetBridgeTest, PollFdIntegratesWithExternalPoll) {
  ChannelFarm farm(1);
  NativePlatform plat;
  NativeEndpoint& ep = farm.chans[0].server_endpoint();
  WaitSetOptions opts;
  opts.backend = WaitSetBackend::kEventfdBridge;
  WaitSet ws(plat, opts);
  ASSERT_EQ(ws.backend(), WaitSetBackend::kEventfdBridge);
  ASSERT_GE(ws.poll_fd(), 0);
  ASSERT_TRUE(ws.add(&ep, 1));

  // Arm + publish without blocking: a wait with a past deadline.
  std::vector<std::uint64_t> ready;
  ASSERT_EQ(ws.wait(plat.time_ns() - 1, &ready), Status::kTimeout);

  detail::enqueue_and_wake(plat, ep, Message(Op::kEcho, 0, 3.0));
  struct pollfd pfd = {ws.poll_fd(), POLLIN, 0};
  ASSERT_GT(poll(&pfd, 1, 5000), 0) << "bridge eventfd never fired";
  ASSERT_NE(pfd.revents & POLLIN, 0);

  ASSERT_EQ(ws.wait(plat.time_ns() - 1, &ready), Status::kOk);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 1u);
  Message m;
  ASSERT_TRUE(ep.queue->dequeue(&m));
  ASSERT_TRUE(ws.remove(&ep));

  WaitSet wv(plat);  // auto backend: fd only exists on the bridge
  if (wv.backend() == WaitSetBackend::kFutexWaitv) {
    EXPECT_EQ(wv.poll_fd(), -1);
  }
}

// A client SIGKILLed mid-enqueue on a waitset-armed endpoint: the corpse
// leaves a half-finished enqueue (tail lock held, node linked) and a leaked
// node. The waitset worker's idle path — crash probe + reclaim sweep — must
// repair the queue, recover every node, and the member then detaches back
// to a clean resting state.
TEST(WaitSetCrashTest, SigkilledArmedClientIsSweptAndSlotReclaimed) {
  ChannelFarm farm(2);
  NativePlatform plat;
  NativeEndpoint& victim_ep = farm.chans[0].server_endpoint();
  const std::uint32_t free0 = farm.chans[0].node_pool().free_count();

  WaitSet ws(plat);
  ASSERT_TRUE(ws.add(&victim_ep, 0));
  ASSERT_TRUE(ws.add(&farm.chans[1].server_endpoint(), 1));

  // Arm the doorbells (past-deadline wait = arm + recheck, no block).
  std::vector<std::uint64_t> ready;
  ASSERT_EQ(ws.wait(plat.time_ns() - 1, &ready), Status::kTimeout);
  ASSERT_TRUE(doorbell_is_armed(victim_ep.doorbell));

  ChildProcess victim = ChildProcess::spawn([&] {
    NativePlatform p;
    // One committed message (with its V against the armed doorbell), then
    // die mid-enqueue: node linked, tail lock still held.
    detail::enqueue_and_wake(p, victim_ep, Message(Op::kEcho, 0, 1.0));
    return victim_ep.queue->crash_mid_enqueue_for_test(
               Message(Op::kEcho, 0, 2.0)) != kNullIndex
               ? 0
               : 1;
  });
  farm.chans[0].register_client_pid(
      0, static_cast<std::uint32_t>(victim.pid()));
  ASSERT_EQ(victim.join(), 0);
  ASSERT_TRUE(farm.chans[0].client_crashed(0));

  // The committed message must be claimable through the aggregate wait
  // despite the corpse: the doorbell was rung before the crash.
  ASSERT_EQ(ws.wait(plat.time_ns() + 5'000'000'000, &ready), Status::kOk);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 0u);
  Message m;
  ASSERT_TRUE(victim_ep.queue->dequeue(&m));
  EXPECT_EQ(m.value, 1.0);
  ASSERT_TRUE(victim_ep.queue->dequeue(&m));
  EXPECT_EQ(m.value, 2.0);  // linking is the commit point: not lost

  // The sweep (the fan-in worker's on_idle job) reaps the corpse and
  // vacates the seat; the abandoned tail lock is repaired by the next
  // enqueuer's steal, and the queue must be fully usable again.
  const ShmChannel::ReclaimStats rs = farm.chans[0].reclaim_client(0);
  EXPECT_TRUE(rs.reaped);
  EXPECT_FALSE(farm.chans[0].client_crashed(0));  // seat vacated
  ASSERT_TRUE(victim_ep.queue->enqueue(Message(Op::kEcho, 0, 3.0)));
  if (victim_ep.queue->engine() == QueueEngine::kTwoLock) {
    // Two-lock: that enqueue had to steal the corpse's tail lock. The
    // lock-free engine has no lock to steal — its lagging tail was helped
    // forward instead, observable only through the successful enqueue.
    EXPECT_GE(victim_ep.queue->two_lock().tail_lock().steal_count(), 1u);
  }
  ASSERT_TRUE(victim_ep.queue->dequeue(&m));
  EXPECT_EQ(m.value, 3.0);

  // Detach the member slot: resting state, every node home again.
  ASSERT_TRUE(ws.remove(&victim_ep));
  EXPECT_FALSE(doorbell_is_armed(victim_ep.doorbell));
  EXPECT_EQ(farm.chans[0].node_pool().free_count(), free0);
  ASSERT_TRUE(ws.remove(&farm.chans[1].server_endpoint()));
}

}  // namespace
}  // namespace ulipc
