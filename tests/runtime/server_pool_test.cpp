// Functional tests for the sharded server pool: layout, placement-driven
// echo runs under both policies, and the idle-steal path (a parked worker's
// backlog must be served entirely by a thief).
#include "runtime/server_pool.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "protocols/bsls.hpp"
#include "protocols/bsw.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class ServerPoolTest : public ::testing::Test {
 protected:
  void build(std::uint32_t shards, std::uint32_t clients) {
    ShmChannel::Config cfg;
    cfg.max_clients = clients;
    cfg.queue_capacity = 64;
    cfg.shards = shards;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
};

TEST_F(ServerPoolTest, PoolChannelLayout) {
  build(2, 4);
  EXPECT_EQ(channel_->num_shards(), 2u);
  EXPECT_EQ(channel_->shard_map().count(), 2u);
  EXPECT_NE(&channel_->shard_endpoint(0), &channel_->shard_endpoint(1));
  EXPECT_NE(&channel_->shard_endpoint(0), &channel_->server_endpoint());
  // Shard queues are MPSC and reply queues multi-producer under stealing:
  // no SPSC ring anywhere on a pool channel.
  EXPECT_EQ(channel_->shard_endpoint(0).ring.get(), nullptr);
  EXPECT_EQ(channel_->client_endpoint(0).ring.get(), nullptr);
}

TEST_F(ServerPoolTest, PoolAndDuplexAreMutuallyExclusive) {
  ShmChannel::Config cfg;
  cfg.max_clients = 2;
  cfg.shards = 2;
  cfg.duplex = true;
  ShmRegion region = ShmRegion::create_anonymous(1 << 20);
  EXPECT_THROW((void)ShmChannel::create(region, cfg), InvariantError);
}

// Forks `clients` echo clients against the pool and runs the worker threads
// in-process so the test can assert on the aggregate result directly.
template <typename Proto>
ServerPoolResult run_pool_echo(ShmChannel& channel, std::uint32_t clients,
                               std::uint64_t messages, Proto proto,
                               ServerPoolOptions opts,
                               std::uint32_t forced_shard = kNoShard,
                               std::uint32_t window = 0) {
  opts.expected_clients = clients;
  std::vector<ChildProcess> client_procs;
  for (std::uint32_t i = 0; i < clients; ++i) {
    client_procs.push_back(ChildProcess::spawn([&, i] {
      NativePlatform plat;
      Proto p2 = proto;
      pool_client_connect(plat, p2, channel, i, opts.policy, forced_shard);
      const std::uint64_t ok =
          window == 0
              ? pool_client_echo_loop(plat, p2, channel, i, messages)
              : pool_client_echo_loop_windowed(plat, p2, channel, i,
                                               messages, window);
      pool_client_disconnect(plat, p2, channel, i);
      return ok == messages ? 0 : 1;
    }));
  }
  const ServerPoolResult result = run_server_pool(channel, proto, opts);
  for (auto& c : client_procs) EXPECT_EQ(c.join(), 0);
  return result;
}

TEST_F(ServerPoolTest, TwoShardEchoLeastLoaded) {
  build(2, 4);
  ServerPoolOptions opts;
  opts.steal_batch = 0;  // no stealing: per-worker counts are deterministic
  const ServerPoolResult r =
      run_pool_echo(*channel_, 4, 500, Bsls<NativePlatform>(10), opts);
  EXPECT_EQ(r.echo_messages, 2'000u);
  EXPECT_EQ(r.control_messages, 8u);  // 4 connects + 4 disconnects
  ASSERT_EQ(r.workers.size(), 2u);
  // Least-loaded places 2 clients per shard, and with stealing off each
  // worker serves exactly its own clients' traffic.
  EXPECT_EQ(r.workers[0].server.echo_messages, 1'000u);
  EXPECT_EQ(r.workers[1].server.echo_messages, 1'000u);
  EXPECT_EQ(r.crashed_workers, 0u);
  EXPECT_EQ(r.crashed_clients, 0u);
  EXPECT_GT(r.throughput_msgs_per_ms(), 0.0);
}

TEST_F(ServerPoolTest, RendezvousPolicyEcho) {
  build(3, 6);
  ServerPoolOptions opts;
  opts.policy = PlacementPolicy::kRendezvous;
  const ServerPoolResult r =
      run_pool_echo(*channel_, 6, 300, Bsw<NativePlatform>(), opts);
  EXPECT_EQ(r.echo_messages, 1'800u);
  EXPECT_EQ(r.crashed_workers, 0u);
}

TEST_F(ServerPoolTest, WindowedClientsVerifyAcrossShards) {
  build(2, 4);
  ServerPoolOptions opts;
  const ServerPoolResult r = run_pool_echo(*channel_, 4, 512,
                                           Bsls<NativePlatform>(10), opts,
                                           kNoShard, /*window=*/8);
  EXPECT_EQ(r.echo_messages, 4u * 512u);
}

TEST_F(ServerPoolTest, IdleWorkerStealsFromParkedShard) {
  build(2, 4);
  ServerPoolOptions opts;
  // Worker 0 serves one batch and parks; everything else its clients send
  // must be stolen and answered by worker 1.
  opts.park_worker = 0;
  opts.park_after_messages = 1;
  opts.steal_min_depth = 1;
  opts.liveness_timeout_ns = 2'000'000;  // fast idle ticks -> fast steals
  const std::uint64_t kMessages = 200;
  const ServerPoolResult r =
      run_pool_echo(*channel_, 4, kMessages, Bsls<NativePlatform>(10), opts,
                    /*forced_shard=*/0);
  EXPECT_EQ(r.echo_messages, 4 * kMessages);  // every request answered
  ASSERT_EQ(r.workers.size(), 2u);
  EXPECT_GT(r.workers[1].stolen_messages, 0u);
  EXPECT_GT(r.workers[1].server.echo_messages, 0u);
  // The shard-map victim cells saw the same traffic the thief reported.
  EXPECT_EQ(channel_->shard_map().shards[0].stolen_msgs.load(),
            r.stolen_messages);
  EXPECT_EQ(r.crashed_workers, 0u);
}

}  // namespace
}  // namespace ulipc
