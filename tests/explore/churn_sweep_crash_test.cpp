// Deterministic churn-vs-sweep crashes, pinned via the explore harness: a
// ResilientPoolClient (the scenario engine's client envelope) is SIGKILLed
// at exact queue markers while it churns retries against an unserved pool,
// and the parent then runs the PR-4/PR-1 recovery pair — reclaim_client
// for the seat, sweep_leaked_nodes for the pool — and proves the node pool
// balances. This pins the exact interleavings the chaos scenario
// (scenario.cpp) only hits probabilistically.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "explore/crash_point.hpp"
#include "explore/hooks.hpp"
#include "explore/invariants.hpp"
#include "queue/queue_recovery.hpp"
#include "runtime/resilience.hpp"
#include "runtime/server_pool.hpp"
#include "shm/process.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

using explore::died_at_marker;
using explore::Point;
using explore::run_victim_to_crash;

class ChurnSweepCrashTest : public ::testing::Test {
 protected:
  ChurnSweepCrashTest() {
    ShmChannel::Config cfg;
    cfg.max_clients = 2;
    cfg.queue_capacity = 16;
    cfg.shards = 1;
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
    free0_ = channel_->node_pool().free_count();
  }

  /// Retry-churn config: 1 ms budgets so the unserved connect cycles
  /// through several enqueue attempts fast — the armed marker picks which
  /// attempt (and which instruction inside it) dies.
  static ResilienceConfig churn_config() {
    ResilienceConfig rcfg;
    rcfg.request_deadline_ns = 1'000'000;
    rcfg.max_retries = 10;
    rcfg.backoff_base_ns = 10'000;
    rcfg.backoff_cap_ns = 50'000;
    return rcfg;
  }

  /// The victim body: a resilient connect against a pool nobody serves.
  /// register_client(1) seats the victim's pid first, so the parent's
  /// post-mortem sees a crashed (not vacant) seat.
  void victim_connect() {
    NativePlatform plat;
    ResilientPoolClient c(*channel_, 1, churn_config());
    (void)c.connect(plat, PlacementPolicy::kLeastLoaded);
  }

  RecoveryStats locked_sweep() {
    RobustGuard g(channel_->header().recovery_lock);
    return sweep_leaked_nodes(channel_->node_pool(), channel_->all_queues(),
                              nullptr);
  }

  explore::InvariantReport invariants() {
    return explore::check_invariants(channel_->node_pool(),
                                     channel_->all_queues(), nullptr,
                                     {&channel_->shard_endpoint(0)});
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
  std::uint32_t free0_ = 0;
};

TEST_F(ChurnSweepCrashTest, ClientDeadMidLinkOnThirdRetryIsRepairedAway) {
  // Die INSIDE the tail lock of the third retry's enqueue: two requests
  // published, a third linked but with the tail lagging, the lock held by
  // a corpse. A survivor enqueue must steal + repair, and after the
  // drain + reclaim + sweep the pool must balance with zero true leaks
  // (a linked node is reachable, not leaked).
  ChildProcess victim = run_victim_to_crash(Point::kQEnqueueLinked, 3,
                                            [&] { victim_connect(); });
  ASSERT_TRUE(died_at_marker(victim.join()));
  EXPECT_TRUE(channel_->client_crashed(1));

  NativeEndpoint& shard = channel_->shard_endpoint(0);
  ASSERT_TRUE(shard.queue->enqueue(Message(Op::kEcho, 0, 77.0)))
      << "survivor could not steal the corpse's tail lock";
  // Drain: the victim's three identical kConnect attempts (same tag — the
  // resilience layer re-sends, never re-tags), then the probe.
  Message m;
  std::uint32_t connects = 0;
  std::uint32_t total = 0;
  double last = 0.0;
  while (shard.queue->dequeue(&m)) {
    ++total;
    if (m.opcode == Op::kConnect && m.channel == 1) ++connects;
    last = m.value;
  }
  EXPECT_EQ(connects, 3u) << "the mid-link attempt must be repaired in";
  EXPECT_EQ(total, 4u);
  EXPECT_DOUBLE_EQ(last, 77.0) << "probe must land after the repair";

  const auto rs = channel_->reclaim_client(1);
  EXPECT_TRUE(rs.reaped);
  EXPECT_EQ(rs.nodes_reclaimed, 0u)
      << "every node was reachable; nothing to sweep";
  EXPECT_FALSE(channel_->client_crashed(1)) << "seat must be vacated";
  EXPECT_EQ(locked_sweep().nodes_reclaimed, 0u);
  EXPECT_EQ(channel_->node_pool().free_count(), free0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_F(ChurnSweepCrashTest, ClientDeadBeforeLinkLeaksOneNodeSweepHealsIt) {
  // Die with the second retry's node allocated and filled but NOT yet
  // linked: that node is invisible to every queue — the one shape only
  // the global sweep can heal. Exactly one reclaim, then balance.
  ChildProcess victim = run_victim_to_crash(Point::kQEnqueueNodeReady, 2,
                                            [&] { victim_connect(); });
  ASSERT_TRUE(died_at_marker(victim.join()));

  // One fully-published attempt sits in the shard queue; drain it (the
  // pool never had a worker).
  NativeEndpoint& shard = channel_->shard_endpoint(0);
  Message m;
  std::uint32_t drained = 0;
  while (shard.queue->dequeue(&m)) ++drained;
  EXPECT_EQ(drained, 1u);

  EXPECT_FALSE(invariants().ok())
      << "the unlinked node must read as leaked before recovery";
  // reclaim_client runs the sweep internally (step 2 of its recovery
  // ordering): the one leaked node must come back through it.
  const auto rs = channel_->reclaim_client(1);
  EXPECT_TRUE(rs.reaped);
  EXPECT_EQ(rs.nodes_reclaimed, 1u);
  EXPECT_EQ(locked_sweep().nodes_reclaimed, 0u) << "nothing left to sweep";
  EXPECT_EQ(channel_->node_pool().free_count(), free0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

}  // namespace
}  // namespace ulipc
