// Span stamps under a pinned Figure-4 schedule: replay the paper's
// Interleaving 1 (producer slips its whole enqueue+wake between the
// consumer's C.3 recheck and its C.4 sleep) with tracing at shift 0 and
// assert the emitted phase records reconstruct that exact interleaving —
// send-enqueue < wake-issued < wake-delivered < dequeue in stamp order,
// with a non-zero wake-in-flight phase because the consumer genuinely
// slept. This ties the observability plane to ground truth: the schedule
// is known, so the stamps must tell that story and no other.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "explore/controller.hpp"
#include "explore/hooks.hpp"
#include "obs/span.hpp"
#include "protocols/detail.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

using explore::Controller;
using explore::Options;
using explore::Point;
using explore::Policy;
using explore::TraceEntry;

constexpr std::uint32_t kConsumer = 0;  // spawn order fixes the tids
constexpr std::uint32_t kProducer = 1;

std::ptrdiff_t find_entry(const std::vector<TraceEntry>& trace,
                          std::uint32_t tid, Point p) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].tid == tid && trace[i].point == p) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::vector<std::uint32_t> switch_schedule(std::size_t zeros) {
  std::vector<std::uint32_t> s(zeros, 0);
  s.insert(s.end(), 24, 1);
  return s;
}

Options replay_options(std::vector<std::uint32_t> schedule) {
  Options o;
  o.policy = Policy::kReplay;
  o.replay = std::move(schedule);
  o.step_timeout = std::chrono::milliseconds(2000);
  return o;
}

struct SpanReplayRun {
  bool ran_ok = false;
  bool matched = false;  // schedule landed in the C.3->C.4 window
  std::string schedule;
  std::string trace;
  double value = 0.0;
  std::vector<obs::Span> spans;
};

SpanReplayRun run_traced_interleaving1(
    const std::vector<std::uint32_t>& sched) {
  ShmChannel::Config cfg;
  cfg.max_clients = 4;
  cfg.queue_capacity = 16;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  NativeEndpoint& ep = channel.server_endpoint();

  NativePlatform cons_plat, prod_plat;
  channel.bind_server_obs(cons_plat);    // adopting role: stamps dequeue
  channel.bind_client_obs(prod_plat, 0); // minting role: stamps the send
  prod_plat.set_span_sample_shift(0);    // trace the one send deterministically

  Message m{};
  SpanReplayRun r;
  {
    Controller c(replay_options(sched));
    c.spawn("consumer", [&] {
      detail::dequeue_or_sleep(cons_plat, ep, &m, /*pre_busy_wait=*/false);
    });
    c.spawn("producer", [&] {
      detail::enqueue_and_wake(prod_plat, ep, Message(Op::kEcho, 0, 42.0));
    });
    r.ran_ok = c.run();
    r.trace = c.trace_string();
    r.schedule = c.schedule_string();

    const auto& t = c.trace();
    const std::ptrdiff_t recheck =
        find_entry(t, kConsumer, Point::kProtRecheckEmpty);
    const std::ptrdiff_t wake = find_entry(t, kProducer, Point::kProtPreWake);
    const std::ptrdiff_t sleep = find_entry(t, kConsumer, Point::kProtSleep);
    r.matched = recheck >= 0 && wake >= 0 && sleep >= 0 && recheck < wake &&
                wake < sleep;
  }
  r.value = m.value;

  const obs::ObsHeader& oh = channel.obs();
  std::vector<obs::TraceRecordView> records =
      static_cast<const obs::TraceRing*>(oh.ring_blob(0))->read_all();
  const auto client_recs =
      static_cast<const obs::TraceRing*>(oh.ring_blob(1))->read_all();
  records.insert(records.end(), client_recs.begin(), client_recs.end());
  r.spans = obs::assemble_spans(std::move(records));
  return r;
}

TEST(SpanPhaseReplay, PinnedInterleaving1StampsReconstructTheSchedule) {
  std::optional<SpanReplayRun> found;
  for (std::size_t zeros = 1; zeros <= 20 && !found; ++zeros) {
    SpanReplayRun r = run_traced_interleaving1(switch_schedule(zeros));
    if (r.ran_ok && r.matched) found = std::move(r);
  }
  ASSERT_TRUE(found.has_value())
      << "switch-point scan never produced Interleaving 1";

  // Replay the pinned schedule so the asserted run is deterministic.
  const std::vector<std::uint32_t> pinned =
      explore::parse_schedule(found->schedule);
  const SpanReplayRun r = run_traced_interleaving1(pinned);
  ASSERT_TRUE(r.ran_ok);
  ASSERT_TRUE(r.matched) << "pinned schedule lost the interleaving\n"
                         << r.trace;
  EXPECT_DOUBLE_EQ(r.value, 42.0);

  if (!obs::kTraceCompiledIn) {
    EXPECT_TRUE(r.spans.empty()) << "no span records when ULIPC_TRACE=OFF";
    return;
  }

  // Exactly one span: the producer's single shift-0 send. The consumer
  // never replies in this scenario, so the span is request-leg only.
  ASSERT_EQ(r.spans.size(), 1u);
  const obs::Span& s = r.spans[0];
  ASSERT_NE(s.send, 0u) << "producer must stamp send-enqueue";
  ASSERT_NE(s.wake_issue_req, 0u)
      << "Interleaving 1 pays exactly one V: wake-issued must be stamped";
  ASSERT_NE(s.wake_deliver_req, 0u)
      << "the consumer slept on the banked token: wake-delivered must be "
         "stamped";
  ASSERT_NE(s.dequeue, 0u) << "consumer must stamp the dequeue";
  EXPECT_EQ(s.reply_enqueue, 0u) << "no reply leg in this scenario";
  EXPECT_EQ(s.reply_recv, 0u);
  EXPECT_FALSE(s.complete()) << "request-leg-only spans stay partial";

  // The reconstructed order IS the pinned schedule: enqueue, then the V,
  // then the consumer's sem P return, then the dequeue.
  EXPECT_LT(s.send, s.wake_issue_req);
  EXPECT_LT(s.wake_issue_req, s.wake_deliver_req);
  EXPECT_LT(s.wake_deliver_req, s.dequeue);
  EXPECT_GT(s.wake_in_flight_req(), 0u)
      << "a consumer that really slept has a non-zero wake-in-flight phase";
  EXPECT_EQ(s.queue_residency(), s.dequeue - s.send);

  // Provenance: minted on the client slot, adopted on the server slot.
  EXPECT_EQ(s.client_slot, 1u);
  EXPECT_EQ(s.server_slot, 0u);
}

}  // namespace
}  // namespace ulipc
