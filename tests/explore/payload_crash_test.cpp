// Crash-point mode for the payload plane: fork a victim, SIGKILL it at an
// armed marker inside loan/publish/release, then prove the sweep returns
// the plane to exact free-count conservation and the free-XOR-loaned
// invariant holds. Each test targets one window of the loan lifecycle:
//   * a loan held but never published (dies right after loan()),
//   * a published payload whose message was never sent,
//   * a published payload whose message IS pending in a queue (the sweep
//     must NOT reclaim it until the message is consumed),
//   * mid-release before the free-list commit (slot still loaned),
//   * mid-release after the commit but before the owner stamp is cleared
//     (slot free; the stale stamp is repaired, nothing reclaimed).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>

#include "explore/crash_point.hpp"
#include "explore/hooks.hpp"
#include "explore/invariants.hpp"
#include "protocols/channel.hpp"
#include "protocols/detail.hpp"
#include "queue/payload_pool.hpp"
#include "queue/queue_recovery.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

using explore::died_at_marker;
using explore::Point;
using explore::run_victim_to_crash;

class PayloadCrashTest : public ::testing::Test {
 protected:
  PayloadCrashTest() {
    ShmChannel::Config cfg;
    cfg.max_clients = 4;
    cfg.queue_capacity = 16;  // payload plane is on by default (4 KiB max)
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
    plane_ = channel_->payload_plane();
    pfree0_ = plane_->free_count();
    nfree0_ = channel_->node_pool().free_count();
  }

  NativeEndpoint& ep() { return channel_->server_endpoint(); }

  explore::InvariantReport invariants() {
    return explore::check_invariants(channel_->node_pool(),
                                     channel_->all_queues(), plane_, {&ep()});
  }

  RecoveryStats sweep() {
    return sweep_leaked_nodes(channel_->node_pool(), channel_->all_queues(),
                              plane_);
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
  PayloadPool* plane_ = nullptr;
  std::uint32_t pfree0_ = 0;
  std::uint32_t nfree0_ = 0;
};

TEST_F(PayloadCrashTest, DeathHoldingUnpublishedLoanIsSweptBack) {
  // SIGKILL immediately after loan(): the slot is stamped with the corpse's
  // pid and referenced by nothing. The checker must SEE the dead holder,
  // and the sweep must reclaim exactly that one slot.
  ChildProcess victim = run_victim_to_crash(Point::kPayloadLoaned, 1, [&] {
    (void)plane_->loan(100);
  });
  EXPECT_TRUE(died_at_marker(victim.join()));

  EXPECT_EQ(plane_->loans_outstanding(), 1u);
  EXPECT_FALSE(invariants().ok())
      << "a loan held by a corpse must read as a violation";
  const RecoveryStats stats = sweep();
  EXPECT_EQ(stats.payloads_reclaimed, 1u);
  EXPECT_EQ(plane_->free_count(), pfree0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_F(PayloadCrashTest, DeathAfterPublishWithoutSendIsSweptBack) {
  // The victim publishes but dies before the message carrying the token is
  // ever enqueued: no queue references the slot, its owner is dead, so the
  // sweep reclaims it like any other orphaned loan.
  ChildProcess victim =
      run_victim_to_crash(Point::kPayloadPublished, 1, [&] {
        const std::uint64_t token = plane_->loan(256);
        ASSERT_NE(token, PayloadPool::kNoPayload);
        std::memset(plane_->data(token), 'x', 256);
        plane_->publish(token, 256);
      });
  EXPECT_TRUE(died_at_marker(victim.join()));

  EXPECT_FALSE(invariants().ok());
  const RecoveryStats stats = sweep();
  EXPECT_EQ(stats.payloads_reclaimed, 1u);
  EXPECT_EQ(plane_->free_count(), pfree0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_F(PayloadCrashTest, PendingMessagePinsTheDeadSendersPayload) {
  // The victim publishes AND enqueues the message, then dies before its
  // wake-up V (kProtPreWake). The message is still pending: the sweep must
  // keep the slot alive for the eventual consumer — a dead client's
  // in-flight request is served, not dropped. Only after the message is
  // consumed does the slot become reclaimable.
  ep().awake.clear();  // so the enqueue wins the tas and reaches the V
  ChildProcess victim = run_victim_to_crash(Point::kProtPreWake, 1, [&] {
    NativePlatform plat;
    const std::uint64_t token = plane_->loan(64);
    ASSERT_NE(token, PayloadPool::kNoPayload);
    plane_->write(token, "pinned-by-pending-message");
    detail::enqueue_and_wake(plat, ep(), Message(Op::kEcho, 0, 7.0, token));
  });
  EXPECT_TRUE(died_at_marker(victim.join()));

  RecoveryStats stats = sweep();
  EXPECT_EQ(stats.payloads_reclaimed, 0u)
      << "a pending message must pin its payload slot";
  EXPECT_EQ(plane_->loans_outstanding(), 1u);

  Message m;
  ASSERT_TRUE(ep().queue->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 7.0);
  EXPECT_EQ(plane_->read(m.ext_offset), "pinned-by-pending-message");

  // Delivered now: the stale copies left in the queue's dummy node must
  // not keep pinning it, and the (dead) holder no longer protects it.
  stats = sweep();
  EXPECT_EQ(stats.payloads_reclaimed, 1u);
  EXPECT_EQ(plane_->free_count(), pfree0_);
  EXPECT_EQ(channel_->node_pool().free_count(), nfree0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_F(PayloadCrashTest, DeathMidReleaseBeforeCommitIsSweptBack) {
  // SIGKILL inside release() with the class lock held, BEFORE the
  // free-list commit: the slot is still loaned to the corpse. The sweep
  // must steal the orphaned class lock and reclaim the slot.
  ChildProcess victim =
      run_victim_to_crash(Point::kPayloadReleasing, 1, [&] {
        const std::uint64_t token = plane_->loan(100);
        ASSERT_NE(token, PayloadPool::kNoPayload);
        plane_->release(token);
      });
  EXPECT_TRUE(died_at_marker(victim.join()));

  EXPECT_FALSE(invariants().ok())
      << "a half-released (pre-commit) slot must read as dead-held";
  const RecoveryStats stats = sweep();
  EXPECT_EQ(stats.payloads_reclaimed, 1u);
  EXPECT_EQ(plane_->free_count(), pfree0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_F(PayloadCrashTest, DeathMidReleaseAfterCommitRepairsWithoutReclaim) {
  // SIGKILL after the free-list link (the commit point) but before the
  // owner stamp is cleared and free_count bumped: the slot IS free. The
  // repair path (mark_free) must clear the stale stamp and reseat the
  // class free count — reclaiming it as a leak would double-free.
  ChildProcess victim =
      run_victim_to_crash(Point::kPayloadReleaseLinked, 1, [&] {
        const std::uint64_t token = plane_->loan(100);
        ASSERT_NE(token, PayloadPool::kNoPayload);
        plane_->release(token);
      });
  EXPECT_TRUE(died_at_marker(victim.join()));

  const RecoveryStats stats = sweep();
  EXPECT_EQ(stats.payloads_reclaimed, 0u)
      << "a committed release is complete; reclaiming it would double-free";
  EXPECT_EQ(plane_->free_count(), pfree0_)
      << "mark_free must reseat the interrupted class free count";
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
  EXPECT_EQ(plane_->loans_outstanding(), 0u);
}

}  // namespace
}  // namespace ulipc
