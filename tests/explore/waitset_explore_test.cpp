// The aggregate-wait race discipline pinned as replayable schedules, on
// BOTH waitset backends (futex_waitv and the eventfd bridge).
//
// The WaitSet extends C.1–C.5 one level up (runtime/waitset.hpp): arm the
// member doorbells (clearing awake on the unarmed->armed transition),
// recheck every member queue, and only then block on the doorbell
// snapshots. The two races a producer's V() can run against that cycle:
//
//   * recheck-vs-V — the producer's enqueue+ring lands between the arm
//     pass and the recheck pass: the recheck must CLAIM the member
//     (kWsRecheckHit) and absorb the banked token without ever blocking;
//   * arm-vs-V (the lost-wakeup window) — the whole enqueue+ring lands
//     between kWsRecheckEmpty and kWsBlock: the ring bumped the doorbell
//     generation, so the backend's snapshot compare fails and the block
//     returns immediately (kWsUngate) instead of sleeping on a message
//     that will never ring again.
//
// Each shape is found with the same deterministic switch-point scan the
// Figure-4 suite uses, then replayed twice with identical marker traces.
// A bounded DFS (explore_all) then sweeps every schedule prefix of the
// waiter-vs-producer scenario and requires zero invariant violations on
// both backends.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "explore/controller.hpp"
#include "explore/hooks.hpp"
#include "explore/invariants.hpp"
#include "protocols/detail.hpp"
#include "runtime/shm_channel.hpp"
#include "runtime/waitset.hpp"
#include "shm/futex_waitv.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

using explore::Controller;
using explore::Options;
using explore::Point;
using explore::Policy;
using explore::TraceEntry;

constexpr std::uint32_t kWaiter = 0;  // spawn order fixes the tids
constexpr std::uint32_t kProducer = 1;

std::ptrdiff_t find_entry(const std::vector<TraceEntry>& trace,
                          std::uint32_t tid, Point p) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].tid == tid && trace[i].point == p) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::size_t count_point(const std::vector<TraceEntry>& trace, Point p) {
  std::size_t n = 0;
  for (const TraceEntry& e : trace) n += e.point == p;
  return n;
}

std::vector<std::uint32_t> switch_schedule(std::size_t zeros) {
  std::vector<std::uint32_t> s(zeros, 0);
  s.insert(s.end(), 24, 1);
  return s;
}

Options replay_options(std::vector<std::uint32_t> schedule) {
  Options o;
  o.policy = Policy::kReplay;
  o.replay = std::move(schedule);
  o.step_timeout = std::chrono::milliseconds(2000);
  return o;
}

/// One waiter-vs-producer round through the aggregate wait: the waiter
/// parks a two-member WaitSet, the producer enqueues one message on member
/// A through the full producer protocol (enqueue, tas, V + doorbell ring).
struct WaitSetRun {
  bool ran_ok = false;
  bool recheck_hit_shape = false;  // ring between arm and recheck, no block
  bool blocked_shape = false;      // ring inside the recheck->block window
  std::string trace;
  std::string schedule;
  Status wait_status = Status::kTimeout;
  std::vector<std::uint64_t> ready;
  double value = 0.0;
  std::uint64_t doorbell_arms = 0;
  std::uint64_t waiter_blocks = 0;
  std::uint64_t waiter_absorbs = 0;
  std::uint64_t spurious = 0;
  std::uint32_t sem_residue = 0;
  bool awake_set = false;
  bool invariants_ok = false;
  std::string invariants;
};

WaitSetRun run_waitset_race(WaitSetBackend backend,
                            const std::vector<std::uint32_t>& sched) {
  ShmChannel::Config cfg;
  cfg.max_clients = 2;
  cfg.queue_capacity = 16;
  cfg.payload_max_bytes = 0;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  NativeEndpoint& a = channel.server_endpoint();
  NativeEndpoint& b = channel.client_endpoint(0);  // quiet second member

  NativePlatform wait_plat, prod_plat;
  WaitSetRun r;
  {
    WaitSetOptions wopts;
    wopts.backend = backend;
    WaitSet ws(wait_plat, wopts);
    Message m{};
    {
      Controller c(replay_options(sched));
      c.spawn("waiter", [&] {
        if (!ws.add(&a, 1) || !ws.add(&b, 2)) return;
        r.wait_status =
            ws.wait(wait_plat.time_ns() + 5'000'000'000, &r.ready);
        if (r.wait_status == Status::kOk) (void)a.queue->dequeue(&m);
      });
      c.spawn("producer", [&] {
        detail::enqueue_and_wake(prod_plat, a, Message(Op::kEcho, 0, 42.0));
      });
      r.ran_ok = c.run();
      r.trace = c.trace_string();
      r.schedule = c.schedule_string();

      const auto& t = c.trace();
      const std::ptrdiff_t arm = find_entry(t, kWaiter, Point::kWsArm);
      const std::ptrdiff_t rung = find_entry(t, kProducer, Point::kWsRung);
      const std::ptrdiff_t hit =
          find_entry(t, kWaiter, Point::kWsRecheckHit);
      const std::ptrdiff_t empty =
          find_entry(t, kWaiter, Point::kWsRecheckEmpty);
      const std::ptrdiff_t block = find_entry(t, kWaiter, Point::kWsBlock);
      const std::ptrdiff_t ungate =
          find_entry(t, kWaiter, Point::kWsUngate);
      r.recheck_hit_shape = arm >= 0 && rung >= 0 && hit >= 0 &&
                            arm < rung && rung < hit &&
                            count_point(t, Point::kWsBlock) == 0;
      r.blocked_shape = empty >= 0 && rung >= 0 && block >= 0 &&
                        ungate >= 0 && hit >= 0 && empty < rung &&
                        rung < block && block < ungate && ungate < hit;
    }
    r.value = m.value;
    r.doorbell_arms = wait_plat.counters().doorbell_arms;
    r.waiter_blocks = wait_plat.counters().blocks;
    r.waiter_absorbs = wait_plat.counters().sem_absorbs;
    r.spurious = wait_plat.counters().spurious_ungates;
    // WaitSet destructor detaches both members here: any banked token is
    // absorbed and both endpoints return to the resting state.
  }
  r.sem_residue = a.fsem.value();
  r.awake_set = a.awake.is_set();
  const explore::InvariantReport rep = explore::check_invariants(
      channel.node_pool(), channel.all_queues(), nullptr, {&a, &b});
  r.invariants_ok = rep.ok();
  r.invariants = rep.to_string();
  return r;
}

class WaitSetExploreTest : public ::testing::TestWithParam<WaitSetBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == WaitSetBackend::kFutexWaitv &&
        !futex_waitv_available()) {
      GTEST_SKIP() << "kernel lacks futex_waitv";
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, WaitSetExploreTest,
                         ::testing::Values(WaitSetBackend::kFutexWaitv,
                                           WaitSetBackend::kEventfdBridge),
                         [](const auto& param_info) {
                           return std::string(
                               waitset_backend_name(param_info.param));
                         });

/// Common to both pinned shapes: one arm cycle, exactly one banked token,
/// claimed (not lost), and the members restored to resting state.
void expect_claimed_outcome(const WaitSetRun& r) {
  EXPECT_EQ(r.wait_status, Status::kOk);
  ASSERT_EQ(r.ready.size(), 1u);
  EXPECT_EQ(r.ready[0], 1u) << "member A must be the claimed tag";
  EXPECT_DOUBLE_EQ(r.value, 42.0);
  EXPECT_EQ(r.doorbell_arms, 2u) << "one arm per member, one cycle";
  EXPECT_EQ(r.waiter_absorbs, 1u)
      << "the producer's V is banked against the cleared flag and must be "
         "absorbed by the claim";
  EXPECT_EQ(r.sem_residue, 0u) << "no token may outlive the claim";
  EXPECT_TRUE(r.awake_set) << "claim must restore the resting awake flag";
  EXPECT_TRUE(r.invariants_ok) << r.invariants;
}

// recheck-vs-V: the producer's enqueue+ring lands between the arm pass and
// the recheck pass — the recheck claims the member and the waiter never
// blocks at all.
TEST_P(WaitSetExploreTest, RecheckVsRingPinnedAndReplayable) {
  std::optional<WaitSetRun> found;
  for (std::size_t zeros = 1; zeros <= 24 && !found; ++zeros) {
    WaitSetRun r = run_waitset_race(GetParam(), switch_schedule(zeros));
    if (r.ran_ok && r.recheck_hit_shape) found = std::move(r);
  }
  ASSERT_TRUE(found.has_value())
      << "switch-point scan never produced the recheck-vs-ring shape";

  const std::vector<std::uint32_t> pinned =
      explore::parse_schedule(found->schedule);
  const WaitSetRun first = run_waitset_race(GetParam(), pinned);
  const WaitSetRun second = run_waitset_race(GetParam(), pinned);
  EXPECT_TRUE(first.ran_ok && second.ran_ok);
  EXPECT_TRUE(first.recheck_hit_shape)
      << "pinned schedule lost the shape\n"
      << first.trace;
  EXPECT_EQ(first.trace, second.trace)
      << "same schedule must produce the identical marker trace";

  expect_claimed_outcome(first);
  EXPECT_EQ(first.waiter_blocks, 0u)
      << "the recheck claim must preempt the block entirely";
}

// arm-vs-V, the lost-wakeup window: the producer's whole enqueue+ring
// lands between kWsRecheckEmpty and kWsBlock. The ring bumped the doorbell
// generation, so the backend's snapshot compare fails, the block returns
// immediately, and the next recheck claims the message — the aggregate
// analogue of the C.3 recheck closing the clear-awake -> P() window.
TEST_P(WaitSetExploreTest, ArmVsRingLostWakeupWindowPinned) {
  std::optional<WaitSetRun> found;
  for (std::size_t zeros = 1; zeros <= 24 && !found; ++zeros) {
    WaitSetRun r = run_waitset_race(GetParam(), switch_schedule(zeros));
    if (r.ran_ok && r.blocked_shape) found = std::move(r);
  }
  ASSERT_TRUE(found.has_value())
      << "switch-point scan never produced the arm-vs-ring shape";

  const std::vector<std::uint32_t> pinned =
      explore::parse_schedule(found->schedule);
  const WaitSetRun first = run_waitset_race(GetParam(), pinned);
  const WaitSetRun second = run_waitset_race(GetParam(), pinned);
  EXPECT_TRUE(first.ran_ok && second.ran_ok);
  EXPECT_TRUE(first.blocked_shape) << "pinned schedule lost the shape\n"
                                   << first.trace;
  EXPECT_EQ(first.trace, second.trace)
      << "same schedule must produce the identical marker trace";

  expect_claimed_outcome(first);
  EXPECT_EQ(first.waiter_blocks, 1u)
      << "the waiter must have entered (and immediately left) the block";
}

// Bounded DFS over every schedule prefix of the waiter-vs-producer
// scenario: whatever the interleaving, the message is claimed through the
// aggregate wait, no token leaks, and the channel invariants hold. The
// budget is ULIPC_EXPLORE_BUDGET (CI explore job: 2000; nightly: 20000+).
TEST_P(WaitSetExploreTest, BoundedDfsFindsNoViolations) {
  const std::uint64_t budget = explore::default_budget(192);
  Options base;
  base.step_timeout = std::chrono::milliseconds(2000);

  const std::string name =
      std::string("waitset_dfs_") + waitset_backend_name(GetParam());
  std::uint64_t bad_outcomes = 0;
  std::string last_bad;  // why the most recent bad schedule was rejected
  const explore::DfsStats stats = explore::explore_all(
      name, base, budget, [&](Controller& c) {
        ShmChannel::Config cfg;
        cfg.max_clients = 2;
        cfg.queue_capacity = 16;
        cfg.payload_max_bytes = 0;
        ShmRegion region =
            ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
        ShmChannel channel = ShmChannel::create(region, cfg);
        NativeEndpoint& a = channel.server_endpoint();
        NativeEndpoint& b = channel.client_endpoint(0);

        NativePlatform wait_plat, prod_plat;
        Status st = Status::kTimeout;
        Message m{};
        {
          WaitSetOptions wopts;
          wopts.backend = GetParam();
          WaitSet ws(wait_plat, wopts);
          c.spawn("waiter", [&] {
            if (!ws.add(&a, 1) || !ws.add(&b, 2)) return;
            std::vector<std::uint64_t> ready;
            st = ws.wait(wait_plat.time_ns() + 5'000'000'000, &ready);
            // The recheck reads size_, which the producer reserves before
            // linking the node — a ready verdict can race the link. The
            // scalar consumer protocol absorbs that window, exactly as the
            // fan-in server's drain loop does.
            if (st == Status::kOk) {
              detail::dequeue_or_sleep(wait_plat, a, &m,
                                       /*pre_busy_wait=*/false);
            }
          });
          c.spawn("producer", [&] {
            detail::enqueue_and_wake(prod_plat, a,
                                     Message(Op::kEcho, 0, 42.0));
          });
          if (!c.run()) {
            ++bad_outcomes;
            last_bad = c.timed_out() ? "controller wedge (step timeout)"
                                     : "controller run failed";
            return false;
          }
        }
        const explore::InvariantReport rep = explore::check_invariants(
            channel.node_pool(), channel.all_queues(), nullptr, {&a, &b});
        const bool ok = st == Status::kOk && m.value == 42.0 &&
                        a.fsem.value() == 0 && a.awake.is_set() && rep.ok();
        if (!ok) {
          ++bad_outcomes;
          last_bad = "st=" + std::to_string(static_cast<int>(st)) +
                     " value=" + std::to_string(m.value) +
                     " fsem=" + std::to_string(a.fsem.value()) +
                     " awake=" + std::to_string(a.awake.is_set()) +
                     " invariants=" + rep.to_string();
        }
        return ok;
      });

  EXPECT_FALSE(stats.failed) << "failing schedule: "
                             << stats.failing_schedule << "\nreason: "
                             << last_bad << "\ntrace:\n"
                             << stats.failing_trace;
  EXPECT_EQ(bad_outcomes, 0u);
  EXPECT_GT(stats.schedules, 1u);
  // The prefix tree for two threads over this scenario is small enough
  // that modest budgets exhaust it; record which regime this run was in.
  if (!stats.exhausted) {
    EXPECT_TRUE(stats.budget_hit);
  }
}

}  // namespace
}  // namespace ulipc
