// The paper's Figure-4 interleavings pinned as replayable schedules on the
// NATIVE protocol stack (real MsgQueue, real futex semaphore), TEST_P over
// both queue engines: the interleavings live in the protocol layer (C.1-C.5
// vs P.1-P.3), so each engine must produce the same pinned, replayable
// traces through its own enqueue/dequeue markers.
//
// Each test finds its target interleaving with a deterministic switch-point
// scan: schedules of the form 0^L 1^K run the consumer (tid 0, lowest
// index) until its L-th decision, then hand the floor to the producer(s).
// Some L lands the hand-off exactly at the consumer's C.3 recheck-empty
// marker — the window both paper interleavings live in. The matching
// schedule is then replayed twice and the marker traces must be identical
// (the replayability acceptance criterion, on the native stack).
//
// Scheduling note: these scenarios keep the floor hand-offs at points where
// no thread is inside a kernel wait (wake-up tokens are banked while the
// consumer is parked at a marker, not OS-blocked), so the recorded decision
// widths cannot race a kernel wake-up and replay is exact.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "explore/controller.hpp"
#include "explore/hooks.hpp"
#include "explore/invariants.hpp"
#include "protocols/channel.hpp"
#include "protocols/detail.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

using explore::Controller;
using explore::Options;
using explore::Point;
using explore::Policy;
using explore::TraceEntry;

constexpr std::uint32_t kConsumer = 0;  // spawn order fixes the tids
constexpr std::uint32_t kProducerA = 1;
constexpr std::uint32_t kProducerB = 2;

std::ptrdiff_t find_entry(const std::vector<TraceEntry>& trace,
                          std::uint32_t tid, Point p) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].tid == tid && trace[i].point == p) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::size_t count_point(const std::vector<TraceEntry>& trace, Point p) {
  std::size_t n = 0;
  for (const TraceEntry& e : trace) n += e.point == p;
  return n;
}

/// 0^L 1^24: run the lowest-tid runnable thread for the first `zeros`
/// decisions, then prefer the next one (replay indices clamp to the width,
/// and fall back to 0 once exhausted).
std::vector<std::uint32_t> switch_schedule(std::size_t zeros) {
  std::vector<std::uint32_t> s(zeros, 0);
  s.insert(s.end(), 24, 1);
  return s;
}

Options replay_options(std::vector<std::uint32_t> schedule) {
  Options o;
  o.policy = Policy::kReplay;
  o.replay = std::move(schedule);
  o.step_timeout = std::chrono::milliseconds(2000);
  return o;
}

// ---------------------------------------------------------- Interleaving 1

/// Producer slips its whole enqueue+wake between the consumer's C.3
/// recheck (empty) and its C.4 sleep: the V arrives before the P, the
/// token is banked, and the consumer's sem P must return immediately.
struct Interleaving1Run {
  bool ran_ok = false;
  bool matched = false;
  std::string trace;
  std::string schedule;
  double value = 0.0;
  std::uint64_t producer_wakeups = 0;
  std::uint64_t consumer_blocks = 0;
  std::uint64_t consumer_absorbs = 0;
  std::uint32_t sem_residue = 0;
  bool awake_set = false;
  bool invariants_ok = false;
  std::string invariants;
};

Interleaving1Run run_interleaving1(const std::vector<std::uint32_t>& sched,
                                   QueueEngine engine) {
  ShmChannel::Config cfg;
  cfg.max_clients = 4;
  cfg.queue_capacity = 16;
  cfg.engines.server = cfg.engines.reply = cfg.engines.shard = engine;
  ShmRegion region = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  NativeEndpoint& ep = channel.server_endpoint();

  NativePlatform cons_plat, prod_plat;
  Message m{};
  Interleaving1Run r;
  {
    Controller c(replay_options(sched));
    c.spawn("consumer", [&] {
      detail::dequeue_or_sleep(cons_plat, ep, &m, /*pre_busy_wait=*/false);
    });
    c.spawn("producer", [&] {
      detail::enqueue_and_wake(prod_plat, ep, Message(Op::kEcho, 0, 42.0));
    });
    r.ran_ok = c.run();
    r.trace = c.trace_string();
    r.schedule = c.schedule_string();

    const auto& t = c.trace();
    const std::ptrdiff_t recheck =
        find_entry(t, kConsumer, Point::kProtRecheckEmpty);
    const std::ptrdiff_t wake = find_entry(t, kProducerA, Point::kProtPreWake);
    const std::ptrdiff_t sleep = find_entry(t, kConsumer, Point::kProtSleep);
    r.matched = recheck >= 0 && wake >= 0 && sleep >= 0 && recheck < wake &&
                wake < sleep;
  }
  r.value = m.value;
  r.producer_wakeups = prod_plat.counters().wakeups;
  r.consumer_blocks = cons_plat.counters().blocks;
  r.consumer_absorbs = cons_plat.counters().sem_absorbs;
  r.sem_residue = ep.fsem.value();
  r.awake_set = ep.awake.is_set();
  const explore::InvariantReport rep = explore::check_invariants(
      channel.node_pool(), channel.all_queues(), nullptr, {&ep});
  r.invariants_ok = rep.ok();
  r.invariants = rep.to_string();
  return r;
}

class InterleavingNative : public ::testing::TestWithParam<QueueEngine> {};

TEST_P(InterleavingNative, PaperInterleaving1PinnedAndReplayable) {
  std::optional<Interleaving1Run> found;
  for (std::size_t zeros = 1; zeros <= 20 && !found; ++zeros) {
    Interleaving1Run r = run_interleaving1(switch_schedule(zeros), GetParam());
    if (r.ran_ok && r.matched) found = std::move(r);
  }
  ASSERT_TRUE(found.has_value())
      << "switch-point scan never produced Interleaving 1";

  // Pin it: the recorded schedule must reproduce the identical marker
  // trace, twice.
  const std::vector<std::uint32_t> pinned =
      explore::parse_schedule(found->schedule);
  const Interleaving1Run first = run_interleaving1(pinned, GetParam());
  const Interleaving1Run second = run_interleaving1(pinned, GetParam());
  EXPECT_TRUE(first.ran_ok && second.ran_ok);
  EXPECT_TRUE(first.matched) << "pinned schedule lost the interleaving\n"
                             << first.trace;
  EXPECT_EQ(first.trace, second.trace)
      << "same schedule must produce the identical marker trace";

  // Protocol outcome: the banked V wakes the consumer's P immediately, the
  // message is delivered, and nothing is left over.
  EXPECT_DOUBLE_EQ(first.value, 42.0);
  EXPECT_EQ(first.producer_wakeups, 1u) << "producer saw awake==0, must V";
  EXPECT_EQ(first.consumer_blocks, 1u);
  EXPECT_EQ(first.consumer_absorbs, 0u)
      << "the pending token is consumed by the P itself, not absorbed";
  EXPECT_EQ(first.sem_residue, 0u) << "Interleaving 1 must not bank a token";
  EXPECT_TRUE(first.awake_set) << "C.5 must restore the flag";
  EXPECT_TRUE(first.invariants_ok) << first.invariants;
}

// ---------------------------------------------------------- Interleaving 2

/// Two producers race the consumer's sleep window: only the first tas sees
/// awake==0, so exactly one V is issued for the two messages.
struct Interleaving2Run {
  bool ran_ok = false;
  bool matched = false;
  std::string trace;
  std::string schedule;
  double first_value = 0.0;
  double second_value = 0.0;
  std::uint64_t total_wakeups = 0;
  std::uint64_t consumer_blocks = 0;
  std::uint32_t sem_residue = 0;
  bool invariants_ok = false;
  std::string invariants;
};

Interleaving2Run run_interleaving2(const std::vector<std::uint32_t>& sched,
                                   QueueEngine engine) {
  ShmChannel::Config cfg;
  cfg.max_clients = 4;
  cfg.queue_capacity = 16;
  cfg.engines.server = cfg.engines.reply = cfg.engines.shard = engine;
  ShmRegion region = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  NativeEndpoint& ep = channel.server_endpoint();

  NativePlatform cons_plat, pa_plat, pb_plat;
  Message m1{}, m2{};
  Interleaving2Run r;
  {
    Controller c(replay_options(sched));
    c.spawn("consumer", [&] {
      detail::dequeue_or_sleep(cons_plat, ep, &m1, false);
      detail::dequeue_or_sleep(cons_plat, ep, &m2, false);
    });
    c.spawn("prod-a", [&] {
      detail::enqueue_and_wake(pa_plat, ep, Message(Op::kEcho, 0, 1.0));
    });
    c.spawn("prod-b", [&] {
      detail::enqueue_and_wake(pb_plat, ep, Message(Op::kEcho, 0, 2.0));
    });
    r.ran_ok = c.run();
    r.trace = c.trace_string();
    r.schedule = c.schedule_string();

    const auto& t = c.trace();
    const std::ptrdiff_t enq_a = find_entry(t, kProducerA, Point::kProtEnqueued);
    const std::ptrdiff_t enq_b = find_entry(t, kProducerB, Point::kProtEnqueued);
    const std::ptrdiff_t woke = find_entry(t, kConsumer, Point::kProtWoke);
    r.matched = enq_a >= 0 && enq_b >= 0 && woke >= 0 && enq_a < woke &&
                enq_b < woke && count_point(t, Point::kProtPreWake) == 1;
  }
  r.first_value = m1.value;
  r.second_value = m2.value;
  r.total_wakeups = pa_plat.counters().wakeups + pb_plat.counters().wakeups;
  r.consumer_blocks = cons_plat.counters().blocks;
  r.sem_residue = ep.fsem.value();
  const explore::InvariantReport rep = explore::check_invariants(
      channel.node_pool(), channel.all_queues(), nullptr, {&ep});
  r.invariants_ok = rep.ok();
  r.invariants = rep.to_string();
  return r;
}

TEST_P(InterleavingNative, PaperInterleaving2SingleWakeupPinned) {
  std::optional<Interleaving2Run> found;
  for (std::size_t zeros = 1; zeros <= 20 && !found; ++zeros) {
    Interleaving2Run r = run_interleaving2(switch_schedule(zeros), GetParam());
    if (r.ran_ok && r.matched) found = std::move(r);
  }
  ASSERT_TRUE(found.has_value())
      << "switch-point scan never produced Interleaving 2";

  const std::vector<std::uint32_t> pinned =
      explore::parse_schedule(found->schedule);
  const Interleaving2Run first = run_interleaving2(pinned, GetParam());
  const Interleaving2Run second = run_interleaving2(pinned, GetParam());
  EXPECT_TRUE(first.ran_ok && second.ran_ok);
  EXPECT_TRUE(first.matched) << "pinned schedule lost the interleaving\n"
                             << first.trace;
  EXPECT_EQ(first.trace, second.trace)
      << "same schedule must produce the identical marker trace";

  // Exactly one V for two enqueues: the second producer's tas found the
  // flag already set. Both messages arrive, FIFO, with no residue.
  EXPECT_EQ(first.total_wakeups, 1u);
  EXPECT_DOUBLE_EQ(first.first_value, 1.0);
  EXPECT_DOUBLE_EQ(first.second_value, 2.0);
  EXPECT_EQ(first.consumer_blocks, 1u);
  EXPECT_EQ(first.sem_residue, 0u)
      << "coalesced wake-up must not accumulate counts";
  EXPECT_TRUE(first.invariants_ok) << first.invariants;
}

INSTANTIATE_TEST_SUITE_P(Engines, InterleavingNative,
                         ::testing::Values(QueueEngine::kTwoLock,
                                           QueueEngine::kLockFree),
                         [](const ::testing::TestParamInfo<QueueEngine>& i) {
                           return i.param == QueueEngine::kTwoLock
                                      ? "TwoLock"
                                      : "LockFree";
                         });

}  // namespace
}  // namespace ulipc
