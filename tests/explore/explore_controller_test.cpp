// The schedule controller itself, on toy threads (no native stack): seed
// determinism, schedule replay, bounded DFS enumeration, PCT completion,
// the wait-choice pseudo-decision, and the wedge detector.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "explore/controller.hpp"
#include "explore/hooks.hpp"

namespace ulipc::explore {
namespace {

using Clock = std::chrono::steady_clock;

/// Two incrementers and a reader over a shared counter, each parking at
/// markers — enough decision points for schedules to genuinely differ.
std::string run_toy(const Options& opts, std::string* schedule = nullptr) {
  Controller c(opts);
  std::atomic<int> counter{0};
  c.spawn("inc-a", [&] {
    point(Point::kQEnqueueNodeReady);
    counter.fetch_add(1);
    point(Point::kQEnqueueDone);
  });
  c.spawn("inc-b", [&] {
    point(Point::kQEnqueueNodeReady);
    counter.fetch_add(1);
    point(Point::kQEnqueueDone);
  });
  c.spawn("reader", [&] {
    point(Point::kQDequeueLocked);
    (void)counter.load();
    point(Point::kQDequeueDone);
  });
  EXPECT_TRUE(c.run());
  EXPECT_EQ(counter.load(), 2);
  if (schedule != nullptr) *schedule = c.schedule_string();
  return c.trace_string();
}

TEST(ExploreController, SameSeedProducesIdenticalTraceTwice) {
  Options o;
  o.policy = Policy::kRandom;
  o.seed = 42;
  const std::string first = run_toy(o);
  const std::string second = run_toy(o);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same seed must replay the same schedule";
}

TEST(ExploreController, RecordedScheduleReplaysIdentically) {
  Options o;
  o.policy = Policy::kRandom;
  o.seed = 7;
  std::string schedule;
  const std::string original = run_toy(o, &schedule);

  Options replay;
  replay.policy = Policy::kReplay;
  replay.replay = parse_schedule(schedule);
  EXPECT_EQ(run_toy(replay), original)
      << "schedule file must reproduce the run, schedule=" << schedule;
}

TEST(ExploreController, SeedsActuallyVaryTheSchedule) {
  std::set<std::string> traces;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Options o;
    o.policy = Policy::kRandom;
    o.seed = seed;
    traces.insert(run_toy(o));
  }
  EXPECT_GE(traces.size(), 2u)
      << "8 seeds explored only one interleaving of a racy toy";
}

TEST(ExploreController, ScheduleStringRoundTrips) {
  const std::vector<std::uint32_t> d = {0, 3, 1, 0, 2};
  EXPECT_EQ(parse_schedule(format_schedule(d)), d);
  EXPECT_TRUE(parse_schedule("").empty());
}

TEST(ExploreController, DfsExhaustsToyTreeAndCoversDistinctTraces) {
  std::set<std::string> traces;
  const DfsStats stats = explore_all(
      "toy-dfs", Options{}, /*budget=*/5000, [&](Controller& c) {
        std::atomic<int> counter{0};
        c.spawn("a", [&] {
          point(Point::kQEnqueueNodeReady);
          counter.fetch_add(1);
        });
        c.spawn("b", [&] {
          point(Point::kQEnqueueNodeReady);
          counter.fetch_add(1);
        });
        const bool ok = c.run() && counter.load() == 2;
        traces.insert(c.trace_string());
        return ok;
      });
  EXPECT_TRUE(stats.exhausted) << "toy tree must fit in the budget";
  EXPECT_FALSE(stats.failed);
  EXPECT_FALSE(stats.budget_hit);
  EXPECT_GE(traces.size(), 2u) << "DFS must reach both orderings";
  EXPECT_GE(stats.schedules, traces.size());
}

TEST(ExploreController, DfsReportsFailingScheduleForSeededBug) {
  // A "bug" that only fires in one ordering: b observes a's increment.
  std::atomic<int> shared{0};
  const DfsStats stats = explore_all(
      "toy-bug", Options{}, /*budget=*/5000, [&](Controller& c) {
        shared.store(0);
        bool saw_increment = false;
        c.spawn("a", [&] {
          point(Point::kQEnqueueNodeReady);
          shared.store(1);
          point(Point::kQEnqueueDone);
        });
        c.spawn("b", [&] {
          point(Point::kQDequeueLocked);
          saw_increment = shared.load() == 1;
          point(Point::kQDequeueDone);
        });
        (void)c.run();
        return !saw_increment;  // "invariant": b must not see a's store
      });
  EXPECT_TRUE(stats.failed) << "DFS must find the ordering where b runs "
                               "after a's store";
  EXPECT_FALSE(stats.failing_schedule.empty());
  EXPECT_FALSE(stats.failing_trace.empty());

  // And the reported schedule must reproduce exactly that failing trace.
  Options replay;
  replay.policy = Policy::kReplay;
  replay.replay = parse_schedule(stats.failing_schedule);
  Controller c(replay);
  shared.store(0);
  c.spawn("a", [&] {
    point(Point::kQEnqueueNodeReady);
    shared.store(1);
    point(Point::kQEnqueueDone);
  });
  c.spawn("b", [&] {
    point(Point::kQDequeueLocked);
    (void)shared.load();
    point(Point::kQDequeueDone);
  });
  EXPECT_TRUE(c.run());
  EXPECT_EQ(c.trace_string(), stats.failing_trace);
}

TEST(ExploreController, PctPolicyCompletesAndIsSeedDeterministic) {
  Options o;
  o.policy = Policy::kPct;
  o.seed = 99;
  o.pct_depth = 3;
  o.pct_step_estimate = 16;
  const std::string first = run_toy(o);
  EXPECT_EQ(run_toy(o), first);
}

TEST(ExploreController, WaitChoiceLetsWallClockPassWhileBlocked) {
  // sleeper: parks in a real OS wait between about_to_block/resumed;
  // worker: two markers. The wait-choice slot decides whether the worker
  // runs before or after the sleeper's wall-clock wait finishes.
  const auto scenario = [&](const std::vector<std::uint32_t>& schedule) {
    Options o;
    o.policy = Policy::kReplay;
    o.replay = schedule;
    o.allow_wait_choice = true;
    Controller c(o);
    c.spawn("sleeper", [&] {
      about_to_block(Point::kProtSleep);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      resumed();
      point(Point::kProtWoke);
    });
    c.spawn("worker", [&] {
      point(Point::kProtEnqueued);
      point(Point::kProtWakeDone);
    });
    EXPECT_TRUE(c.run());
    return c.trace_string();
  };
  // Pick the sleeper first; then decision index 1 = the wait-choice slot
  // (runnable = {worker} + wait) -> the sleeper's sleep completes before
  // the worker ever runs.
  const std::string waited = scenario({0, 1});
  EXPECT_EQ(waited,
            "sleeper:prot_sleep sleeper:prot_woke "
            "worker:prot_enqueued worker:prot_wake_done");
  // Same prefix but index 0 = run the worker while the sleeper sleeps.
  const std::string overlapped = scenario({0, 0});
  EXPECT_EQ(overlapped,
            "sleeper:prot_sleep worker:prot_enqueued "
            "worker:prot_wake_done sleeper:prot_woke");
}

TEST(ExploreController, WedgeDetectorAbortsMarkerInsideContendedLock) {
  // Both threads contend one test-and-set lock with a marker inside the
  // critical section — the documented livelock shape. The detector must
  // turn it into a reported timeout instead of a hang.
  Options o;
  o.policy = Policy::kReplay;
  // p1 first; then, with p1 parked INSIDE its critical section, hand the
  // floor to p2 — which spins on the held lock without ever reaching a
  // marker. Scheduling stalls: the detector must fire.
  o.replay = {0, 1};
  o.step_timeout = std::chrono::milliseconds(200);
  Controller c(o);
  std::atomic<int> lock{0};
  for (const char* name : {"p1", "p2"}) {
    c.spawn(name, [&] {
      while (lock.exchange(1) != 0) {
      }
      point(Point::kQEnqueueLinked);  // parked while holding the lock
      lock.store(0);
      point(Point::kQEnqueueDone);
    });
  }
  const auto t0 = Clock::now();
  EXPECT_FALSE(c.run());
  EXPECT_TRUE(c.timed_out());
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(30));
}

}  // namespace
}  // namespace ulipc::explore
