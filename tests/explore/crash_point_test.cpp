// Crash-point mode: fork a victim, SIGKILL it at an armed marker, run the
// recovery machinery, and prove the shared region returns to a sane state
// via explore::check_invariants(). Each test targets one structural hazard
// of the enqueue/dequeue/wake paths:
//   * a node allocated but never linked (dies before the link publication),
//   * a corpse past the link with the tail lagging its linked node (two-lock:
//     dies holding the tail lock; lock-free: dies before its tail swing),
//   * the same, but on the Nth enqueue of a burst (nth-hit arming),
//   * a corpse past the head advance with the detached dummy unreleased
//     (two-lock: inside the head lock; lock-free: past its head CAS),
//   * a producer dying between its tas(awake) and its V.
// The whole suite is TEST_P over the queue engines: both engines reuse the
// same kQ* markers at their analogous linearization steps, so each test
// body proves the same reclaim guarantee against both recovery disciplines
// (lock steal + repair vs announcements + helping).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "explore/crash_point.hpp"
#include "explore/hooks.hpp"
#include "explore/invariants.hpp"
#include "protocols/channel.hpp"
#include "protocols/detail.hpp"
#include "queue/queue_recovery.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

using explore::died_at_marker;
using explore::kMarkerMissed;
using explore::Point;
using explore::run_victim_to_crash;

class CrashPointTest : public ::testing::TestWithParam<QueueEngine> {
 protected:
  CrashPointTest() {
    ShmChannel::Config cfg;
    cfg.max_clients = 4;
    cfg.queue_capacity = 16;
    cfg.engines.server = cfg.engines.reply = cfg.engines.shard = GetParam();
    region_ = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
    channel_.emplace(ShmChannel::create(region_, cfg));
    free0_ = channel_->node_pool().free_count();
  }

  NativeEndpoint& ep() { return channel_->server_endpoint(); }

  explore::InvariantReport invariants() {
    return explore::check_invariants(channel_->node_pool(),
                                     channel_->all_queues(), nullptr, {&ep()});
  }

  ShmRegion region_;
  std::optional<ShmChannel> channel_;
  std::uint32_t free0_ = 0;
};

TEST_P(CrashPointTest, VictimThatNeverReachesTheMarkerReportsMissed) {
  // Arm a marker the enqueue path never passes: the victim runs to
  // completion and the harness must say so instead of reporting a crash.
  ChildProcess victim =
      run_victim_to_crash(Point::kSweepBegin, /*nth=*/1, [&] {
        NativePlatform plat;
        detail::enqueue_and_wake(plat, ep(), Message(Op::kEcho, 0, 1.0));
      });
  const int status = victim.join();
  EXPECT_EQ(status, kMarkerMissed);
  EXPECT_FALSE(died_at_marker(status));
  Message m;
  ASSERT_TRUE(ep().queue->dequeue(&m));
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_P(CrashPointTest, DeathBeforeLinkLeaksOnlyThePrivateNode) {
  // SIGKILL after the node is allocated and filled but before the tail
  // lock: the node is invisible to every queue — exactly what the global
  // sweep exists for.
  ChildProcess victim =
      run_victim_to_crash(Point::kQEnqueueNodeReady, 1, [&] {
        NativePlatform plat;
        detail::enqueue_and_wake(plat, ep(), Message(Op::kEcho, 0, 2.0));
      });
  EXPECT_TRUE(died_at_marker(victim.join()));

  // The checker must SEE the leak before recovery runs...
  EXPECT_FALSE(invariants().ok())
      << "a node allocated by the corpse must read as leaked";
  // ...and the sweep must reclaim exactly that one node.
  const RecoveryStats stats = sweep_leaked_nodes(
      channel_->node_pool(), channel_->all_queues(), nullptr);
  EXPECT_EQ(stats.nodes_reclaimed, 1u);
  EXPECT_EQ(channel_->node_pool().free_count(), free0_);
  EXPECT_TRUE(ep().queue->empty()) << "the message was never published";
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_P(CrashPointTest, DeathInsideTailLockIsStolenAndRepaired) {
  // SIGKILL with the tail lock held and tail_ lagging the linked node: the
  // next enqueuer must steal the lock, repair the tail by walking from
  // head, and append AFTER the victim's message — nothing lost, nothing
  // duplicated.
  ChildProcess victim = run_victim_to_crash(Point::kQEnqueueLinked, 1, [&] {
    NativePlatform plat;
    detail::enqueue_and_wake(plat, ep(), Message(Op::kEcho, 0, 5.0));
  });
  EXPECT_TRUE(died_at_marker(victim.join()));

  ASSERT_TRUE(ep().queue->enqueue(Message(Op::kEcho, 0, 6.0)))
      << "survivor could not steal the corpse's tail lock";
  Message m;
  ASSERT_TRUE(ep().queue->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 5.0) << "victim's linked message must survive";
  ASSERT_TRUE(ep().queue->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 6.0);
  EXPECT_FALSE(ep().queue->dequeue(&m));
  EXPECT_EQ(channel_->node_pool().free_count(), free0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_P(CrashPointTest, NthHitArmingCrashesOnTheNthEnqueue) {
  // The victim survives two full enqueues and dies inside the third's
  // critical section — nth-hit arming reaches crash points deep into a
  // run, not just the first dynamic hit.
  ChildProcess victim = run_victim_to_crash(Point::kQEnqueueLinked, 3, [&] {
    NativePlatform plat;
    for (int i = 1; i <= 5; ++i) {
      detail::enqueue_and_wake(plat, ep(), Message(Op::kEcho, 0, double(i)));
    }
  });
  EXPECT_TRUE(died_at_marker(victim.join()));

  ASSERT_TRUE(ep().queue->enqueue(Message(Op::kEcho, 0, 99.0)));
  double got[4] = {};
  Message m;
  for (double& g : got) {
    ASSERT_TRUE(ep().queue->dequeue(&m));
    g = m.value;
  }
  EXPECT_FALSE(ep().queue->dequeue(&m)) << "enqueues 4 and 5 never happened";
  EXPECT_DOUBLE_EQ(got[0], 1.0);
  EXPECT_DOUBLE_EQ(got[1], 2.0);
  EXPECT_DOUBLE_EQ(got[2], 3.0) << "the mid-link message must be repaired in";
  EXPECT_DOUBLE_EQ(got[3], 99.0);
  EXPECT_EQ(channel_->node_pool().free_count(), free0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_P(CrashPointTest, DeathInsideHeadLockLeaksTheDetachedDummy) {
  // Pre-fill three messages, then SIGKILL the consumer right after it
  // advances head_ (old dummy detached but not yet released, size_ not yet
  // decremented). The next dequeuer steals the head lock and continues;
  // the detached dummy is the one leak, healed by the sweep.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(ep().queue->enqueue(Message(Op::kEcho, 0, double(i))));
  }
  ChildProcess victim =
      run_victim_to_crash(Point::kQDequeueAdvanced, 1, [&] {
        NativePlatform plat;
        Message m;
        (void)plat.dequeue(ep(), &m);
      });
  EXPECT_TRUE(died_at_marker(victim.join()));

  Message m;
  ASSERT_TRUE(ep().queue->dequeue(&m))
      << "survivor could not steal the corpse's head lock";
  EXPECT_DOUBLE_EQ(m.value, 2.0) << "message 1 died with its consumer";
  ASSERT_TRUE(ep().queue->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 3.0);
  EXPECT_FALSE(ep().queue->dequeue(&m));

  EXPECT_FALSE(invariants().ok()) << "the detached dummy must read as leaked";
  const RecoveryStats stats = sweep_leaked_nodes(
      channel_->node_pool(), channel_->all_queues(), nullptr);
  EXPECT_EQ(stats.nodes_reclaimed, 1u);
  EXPECT_EQ(channel_->node_pool().free_count(), free0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

TEST_P(CrashPointTest, DeathBetweenTasAndWakeLeavesConsistentState) {
  // The producer dies AFTER publishing the message and setting the awake
  // flag but BEFORE its V. No token was banked and none is owed: the flag
  // it set means any consumer reaching C.3 (or C.1) finds the message
  // without sleeping. State must be consistent, with nothing to sweep.
  ep().awake.clear();  // a consumer is "about to sleep" (post-C.2 window)
  ChildProcess victim = run_victim_to_crash(Point::kProtPreWake, 1, [&] {
    NativePlatform plat;
    detail::enqueue_and_wake(plat, ep(), Message(Op::kEcho, 0, 4.2));
  });
  EXPECT_TRUE(died_at_marker(victim.join()));

  EXPECT_TRUE(ep().awake.is_set()) << "the victim's tas already ran";
  EXPECT_EQ(ep().fsem.value(), 0u) << "the V never happened";
  EXPECT_EQ(ep().queue->size(), 1u);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();

  Message m;
  ASSERT_TRUE(ep().queue->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 4.2);
  EXPECT_EQ(channel_->node_pool().free_count(), free0_);
  EXPECT_TRUE(invariants().ok()) << invariants().to_string();
}

INSTANTIATE_TEST_SUITE_P(Engines, CrashPointTest,
                         ::testing::Values(QueueEngine::kTwoLock,
                                           QueueEngine::kLockFree),
                         [](const ::testing::TestParamInfo<QueueEngine>& i) {
                           return std::string(queue_engine_name(i.param)) ==
                                          "twolock"
                                      ? "TwoLock"
                                      : "LockFree";
                         });

}  // namespace
}  // namespace ulipc
