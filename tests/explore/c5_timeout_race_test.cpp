// The C.5 timeout race, pinned: a producer that enqueues (and V's) in the
// window between the consumer's timed sleep EXPIRING and the consumer
// restoring its awake flag used to strand both the message (kTimeout with
// traffic queued) and the semaphore token (the next sleeper woke spuriously
// on an empty queue). The fixed timeout path re-runs the dequeue on expiry
// and absorbs the matching token, returning kOk with zero residue.
//
// The schedule needs real time to pass mid-run — the consumer's deadline
// must actually expire while the producer is parked — which is what the
// controller's wait-choice pseudo-decision expresses: with the producer
// frozen at its first marker (node filled, nothing published), "schedule
// nobody" leaves the floor free until the consumer's timer returns it.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "explore/controller.hpp"
#include "explore/hooks.hpp"
#include "explore/invariants.hpp"
#include "protocols/channel.hpp"
#include "protocols/detail.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

using explore::Controller;
using explore::Options;
using explore::Point;
using explore::Policy;
using explore::TraceEntry;

constexpr std::uint32_t kConsumer = 0;
constexpr std::uint32_t kProducer = 1;

std::ptrdiff_t find_entry(const std::vector<TraceEntry>& trace,
                          std::uint32_t tid, Point p) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].tid == tid && trace[i].point == p) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

struct C5Run {
  bool ran_ok = false;
  bool matched = false;
  std::string trace;
  std::string schedule;
  Status status = Status::kTimeout;
  double value = 0.0;
  std::uint64_t consumer_absorbs = 0;
  std::uint64_t consumer_timeouts = 0;
  std::uint64_t producer_wakeups = 0;
  std::uint32_t sem_residue = 0;
  bool awake_set = false;
  bool invariants_ok = false;
  std::string invariants;
};

C5Run run_c5(const std::vector<std::uint32_t>& sched) {
  ShmChannel::Config cfg;
  cfg.max_clients = 4;
  cfg.queue_capacity = 16;
  ShmRegion region = ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  NativeEndpoint& ep = channel.server_endpoint();

  NativePlatform cons_plat, prod_plat;
  Message m{};
  C5Run r;
  {
    Options o;
    o.policy = Policy::kReplay;
    o.replay = sched;
    o.allow_wait_choice = true;  // the race needs the timer to fire mid-run
    o.step_timeout = std::chrono::milliseconds(5000);
    Controller c(o);
    c.spawn("consumer", [&] {
      // 60 ms: long enough that the producer reliably parks at its first
      // marker before expiry, short enough to keep the test quick.
      r.status = detail::dequeue_or_sleep_until(
          cons_plat, ep, &m, /*pre_busy_wait=*/false,
          cons_plat.time_ns() + 60'000'000);
    });
    c.spawn("producer", [&] {
      detail::enqueue_and_wake(prod_plat, ep, Message(Op::kEcho, 0, 7.0));
    });
    r.ran_ok = c.run();
    r.trace = c.trace_string();
    r.schedule = c.schedule_string();

    // The race, in trace order: the consumer's timed sleep expires, THEN
    // the producer publishes and V's, THEN the consumer's expiry recheck
    // absorbs the token.
    const auto& t = c.trace();
    const std::ptrdiff_t timed_out =
        find_entry(t, kConsumer, Point::kProtTimedOut);
    const std::ptrdiff_t wake = find_entry(t, kProducer, Point::kProtPreWake);
    const std::ptrdiff_t absorb = find_entry(t, kConsumer, Point::kProtAbsorb);
    r.matched = timed_out >= 0 && wake >= 0 && absorb >= 0 &&
                timed_out < wake && wake < absorb;
  }
  r.value = m.value;
  r.consumer_absorbs = cons_plat.counters().sem_absorbs;
  r.consumer_timeouts = cons_plat.counters().timeouts;
  r.producer_wakeups = prod_plat.counters().wakeups;
  r.sem_residue = ep.fsem.value();
  r.awake_set = ep.awake.is_set();
  const explore::InvariantReport rep = explore::check_invariants(
      channel.node_pool(), channel.all_queues(), nullptr, {&ep});
  r.invariants_ok = rep.ok();
  r.invariants = rep.to_string();
  return r;
}

/// 0^L, then "wait" / "producer" preferences: value 1 at the decision after
/// the consumer blocks picks the wait-choice slot (floor free, timer runs),
/// and value 1 afterwards hands every following step to the producer.
std::vector<std::uint32_t> c5_schedule(std::size_t zeros) {
  std::vector<std::uint32_t> s(zeros, 0);
  s.insert(s.end(), 24, 1);
  return s;
}

TEST(C5TimeoutRace, ExpiryRecheckDeliversRacedMessageAndAbsorbsToken) {
  std::optional<C5Run> found;
  for (std::size_t zeros = 1; zeros <= 14 && !found; ++zeros) {
    C5Run r = run_c5(c5_schedule(zeros));
    if (r.ran_ok && r.matched) found = std::move(r);
  }
  ASSERT_TRUE(found.has_value())
      << "switch-point scan never produced the C.5 timeout race";

  const std::vector<std::uint32_t> pinned =
      explore::parse_schedule(found->schedule);
  const C5Run first = run_c5(pinned);
  const C5Run second = run_c5(pinned);
  EXPECT_TRUE(first.ran_ok && second.ran_ok);
  EXPECT_TRUE(first.matched) << "pinned schedule lost the race\n"
                             << first.trace;
  EXPECT_EQ(first.trace, second.trace)
      << "same schedule must produce the identical marker trace";

  // The fix, observable: the raced message is DELIVERED (not kTimeout),
  // the banked token is absorbed, and the endpoint is left pristine — no
  // stale token to wake the next sleeper spuriously.
  EXPECT_EQ(first.status, Status::kOk)
      << "expiry recheck must deliver the raced message";
  EXPECT_DOUBLE_EQ(first.value, 7.0);
  EXPECT_EQ(first.consumer_absorbs, 1u) << "the banked V must be absorbed";
  EXPECT_EQ(first.consumer_timeouts, 0u)
      << "a delivered message is not a timeout";
  EXPECT_EQ(first.producer_wakeups, 1u);
  EXPECT_EQ(first.sem_residue, 0u)
      << "stale semaphore token left for the next sleeper";
  EXPECT_TRUE(first.awake_set);
  EXPECT_TRUE(first.invariants_ok) << first.invariants;
}

}  // namespace
}  // namespace ulipc
