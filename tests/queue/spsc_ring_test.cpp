#include "queue/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class SpscRingTest : public ::testing::Test {
 protected:
  SpscRingTest()
      : region_(ShmRegion::create_anonymous(1024 * 1024)),
        arena_(ShmArena::format(region_)) {}

  ShmRegion region_;
  ShmArena arena_;
};

TEST_F(SpscRingTest, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(SpscRing::create(arena_, 5)->capacity(), 8u);
  EXPECT_EQ(SpscRing::create(arena_, 8)->capacity(), 8u);
  EXPECT_EQ(SpscRing::create(arena_, 1)->capacity(), 1u);
}

TEST_F(SpscRingTest, FifoOrder) {
  SpscRing* ring = SpscRing::create(arena_, 16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, static_cast<double>(i))));
  }
  for (int i = 0; i < 10; ++i) {
    Message m;
    ASSERT_TRUE(ring->dequeue(&m));
    EXPECT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
}

TEST_F(SpscRingTest, FullAndEmptyConditions) {
  SpscRing* ring = SpscRing::create(arena_, 4);
  Message m;
  EXPECT_TRUE(ring->empty());
  EXPECT_FALSE(ring->dequeue(&m));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring->enqueue(Message(Op::kEcho, 0, 0.0)));
  }
  EXPECT_FALSE(ring->enqueue(Message(Op::kEcho, 0, 0.0))) << "ring full";
  EXPECT_EQ(ring->size(), 4u);
  EXPECT_TRUE(ring->dequeue(&m));
  EXPECT_TRUE(ring->enqueue(Message(Op::kEcho, 0, 0.0)));
}

TEST_F(SpscRingTest, WrapAroundManyTimes) {
  SpscRing* ring = SpscRing::create(arena_, 4);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, static_cast<double>(i))));
    Message m;
    ASSERT_TRUE(ring->dequeue(&m));
    ASSERT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
}

TEST_F(SpscRingTest, ConcurrentProducerConsumerThreads) {
  SpscRing* ring = SpscRing::create(arena_, 64);
  constexpr int kMessages = 200'000;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      while (!ring->enqueue(Message(Op::kEcho, 0, static_cast<double>(i)))) {
      }
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    while (!ring->dequeue(&m)) {
    }
    ASSERT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
  producer.join();
  EXPECT_TRUE(ring->empty());
}

TEST_F(SpscRingTest, CrossProcess) {
  SpscRing* ring = SpscRing::create(arena_, 32);
  constexpr int kMessages = 50'000;
  ChildProcess producer = ChildProcess::spawn([&] {
    for (int i = 0; i < kMessages; ++i) {
      while (!ring->enqueue(Message(Op::kEcho, 0, static_cast<double>(i)))) {
        sched_yield();
      }
    }
    return 0;
  });
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    while (!ring->dequeue(&m)) sched_yield();
    ASSERT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
  EXPECT_EQ(producer.join(), 0);
}

}  // namespace
}  // namespace ulipc
