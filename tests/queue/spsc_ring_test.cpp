#include "queue/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <thread>

#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class SpscRingTest : public ::testing::Test {
 protected:
  SpscRingTest()
      : region_(ShmRegion::create_anonymous(1024 * 1024)),
        arena_(ShmArena::format(region_)) {}

  ShmRegion region_;
  ShmArena arena_;
};

TEST_F(SpscRingTest, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(SpscRing::create(arena_, 5)->capacity(), 8u);
  EXPECT_EQ(SpscRing::create(arena_, 8)->capacity(), 8u);
  EXPECT_EQ(SpscRing::create(arena_, 1)->capacity(), 1u);
}

TEST_F(SpscRingTest, FifoOrder) {
  SpscRing* ring = SpscRing::create(arena_, 16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, static_cast<double>(i))));
  }
  for (int i = 0; i < 10; ++i) {
    Message m;
    ASSERT_TRUE(ring->dequeue(&m));
    EXPECT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
}

TEST_F(SpscRingTest, FullAndEmptyConditions) {
  SpscRing* ring = SpscRing::create(arena_, 4);
  Message m;
  EXPECT_TRUE(ring->empty());
  EXPECT_FALSE(ring->dequeue(&m));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring->enqueue(Message(Op::kEcho, 0, 0.0)));
  }
  EXPECT_FALSE(ring->enqueue(Message(Op::kEcho, 0, 0.0))) << "ring full";
  EXPECT_EQ(ring->size(), 4u);
  EXPECT_TRUE(ring->dequeue(&m));
  EXPECT_TRUE(ring->enqueue(Message(Op::kEcho, 0, 0.0)));
}

TEST_F(SpscRingTest, WrapAroundManyTimes) {
  SpscRing* ring = SpscRing::create(arena_, 4);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, static_cast<double>(i))));
    Message m;
    ASSERT_TRUE(ring->dequeue(&m));
    ASSERT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
}

TEST_F(SpscRingTest, ConcurrentProducerConsumerThreads) {
  SpscRing* ring = SpscRing::create(arena_, 64);
  constexpr int kMessages = 200'000;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      while (!ring->enqueue(Message(Op::kEcho, 0, static_cast<double>(i)))) {
      }
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    while (!ring->dequeue(&m)) {
    }
    ASSERT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
  producer.join();
  EXPECT_TRUE(ring->empty());
}

TEST_F(SpscRingTest, BatchFifoOrder) {
  SpscRing* ring = SpscRing::create(arena_, 16);
  Message in[10];
  for (int i = 0; i < 10; ++i) in[i] = Message(Op::kEcho, 0, double(i));
  EXPECT_EQ(ring->enqueue_batch(in, 10), 10u);
  EXPECT_EQ(ring->size(), 10u);
  Message out[16];
  EXPECT_EQ(ring->dequeue_batch(out, 16), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(out[i].value, double(i));
  }
  EXPECT_TRUE(ring->empty());
}

TEST_F(SpscRingTest, BatchPartialWhenFull) {
  SpscRing* ring = SpscRing::create(arena_, 4);
  Message in[6];
  for (int i = 0; i < 6; ++i) in[i] = Message(Op::kEcho, 0, double(i));
  EXPECT_EQ(ring->enqueue_batch(in, 6), 4u) << "only the free slots land";
  EXPECT_EQ(ring->enqueue_batch(in + 4, 2), 0u) << "full ring takes nothing";
  Message out[8];
  EXPECT_EQ(ring->dequeue_batch(out, 2), 2u);
  EXPECT_DOUBLE_EQ(out[0].value, 0.0);
  EXPECT_DOUBLE_EQ(out[1].value, 1.0);
  EXPECT_EQ(ring->enqueue_batch(in + 4, 2), 2u) << "space reclaimed";
  // A batch dequeue may return fewer than queued when the consumer's cached
  // producer index is stale (it only reloads when the cache says empty), so
  // collect the remaining 4 messages across calls and check order.
  std::uint32_t collected = 0;
  while (collected < 4) {
    const std::uint32_t k = ring->dequeue_batch(out + collected, 8);
    ASSERT_GT(k, 0u);
    collected += k;
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(out[i].value, double(i + 2)) << "FIFO across batches";
  }
  EXPECT_TRUE(ring->empty());
}

TEST_F(SpscRingTest, BatchZeroCountIsNoOp) {
  SpscRing* ring = SpscRing::create(arena_, 4);
  Message out[4];
  EXPECT_EQ(ring->enqueue_batch(nullptr, 0), 0u);
  EXPECT_EQ(ring->dequeue_batch(nullptr, 0), 0u);
  EXPECT_EQ(ring->dequeue_batch(out, 4), 0u) << "empty ring yields nothing";
  EXPECT_TRUE(ring->empty());
}

TEST_F(SpscRingTest, ScalarAndBatchInterleave) {
  SpscRing* ring = SpscRing::create(arena_, 8);
  Message in[3] = {Message(Op::kEcho, 0, 1.0), Message(Op::kEcho, 0, 2.0),
                   Message(Op::kEcho, 0, 3.0)};
  ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, 0.0)));
  ASSERT_EQ(ring->enqueue_batch(in, 3), 3u);
  ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, 4.0)));
  Message m;
  ASSERT_TRUE(ring->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 0.0);
  Message out[8];
  ASSERT_EQ(ring->dequeue_batch(out, 8), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(out[i].value, double(i + 1));
  }
}

TEST_F(SpscRingTest, IndexOverflowAcrossUint32Wrap) {
  // The 32-bit indices increase monotonically and are compared with
  // wraparound subtraction; full/empty/size must stay correct as both
  // cross UINT32_MAX.
  SpscRing* ring = SpscRing::create(arena_, 8);
  ring->skew_indices_for_test(std::numeric_limits<std::uint32_t>::max() - 3);
  for (int i = 0; i < 100; ++i) {  // crosses the wrap within the first loop
    ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, double(i))));
    ASSERT_EQ(ring->size(), 1u);
    Message m;
    ASSERT_TRUE(ring->dequeue(&m));
    ASSERT_DOUBLE_EQ(m.value, double(i));
    ASSERT_TRUE(ring->empty());
  }
}

TEST_F(SpscRingTest, BatchStraddlesUint32Wrap) {
  SpscRing* ring = SpscRing::create(arena_, 8);
  ring->skew_indices_for_test(std::numeric_limits<std::uint32_t>::max() - 2);
  Message in[8];
  for (int i = 0; i < 8; ++i) in[i] = Message(Op::kEcho, 0, double(i));
  // One batch whose slots span indices UINT32_MAX-2 .. UINT32_MAX+5.
  ASSERT_EQ(ring->enqueue_batch(in, 8), 8u);
  EXPECT_EQ(ring->size(), 8u);
  ASSERT_EQ(ring->enqueue_batch(in, 1), 0u) << "full across the wrap";
  Message out[8];
  ASSERT_EQ(ring->dequeue_batch(out, 8), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(out[i].value, double(i)) << "FIFO across the wrap";
  }
  EXPECT_TRUE(ring->empty());
}

TEST_F(SpscRingTest, DrainDiscardsAndResetsForReuse) {
  SpscRing* ring = SpscRing::create(arena_, 4);
  ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, 1.0)));
  ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, 2.0)));
  Message m;
  ASSERT_TRUE(ring->dequeue(&m));
  EXPECT_EQ(ring->drain(), 1u) << "one message was still queued";
  EXPECT_TRUE(ring->empty());
  EXPECT_EQ(ring->size(), 0u);
  EXPECT_EQ(ring->drain(), 0u) << "second drain finds nothing";
  // The ring must be fully reusable by a new producer/consumer pair —
  // drain() reset both per-side index caches, so neither side can be
  // fooled by a stale view of the other.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring->enqueue(Message(Op::kEcho, 0, double(i))));
    ASSERT_TRUE(ring->dequeue(&m));
    ASSERT_DOUBLE_EQ(m.value, double(i));
  }
}

TEST_F(SpscRingTest, CrossProcess) {
  SpscRing* ring = SpscRing::create(arena_, 32);
  constexpr int kMessages = 50'000;
  ChildProcess producer = ChildProcess::spawn([&] {
    for (int i = 0; i < kMessages; ++i) {
      while (!ring->enqueue(Message(Op::kEcho, 0, static_cast<double>(i)))) {
        sched_yield();
      }
    }
    return 0;
  });
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    while (!ring->dequeue(&m)) sched_yield();
    ASSERT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
  EXPECT_EQ(producer.join(), 0);
}

TEST_F(SpscRingTest, CrossProcessAcrossIndexWrap) {
  // Same producer/consumer split as CrossProcess, but with the indices
  // skewed so the run crosses UINT32_MAX partway through: the wraparound
  // arithmetic must hold under real concurrent access, not just in the
  // single-threaded wrap tests above.
  SpscRing* ring = SpscRing::create(arena_, 32);
  constexpr int kMessages = 50'000;
  ring->skew_indices_for_test(std::numeric_limits<std::uint32_t>::max() -
                              kMessages / 2);
  ChildProcess producer = ChildProcess::spawn([&] {
    Message burst[8];
    int sent = 0;
    while (sent < kMessages) {
      const int n = std::min(8, kMessages - sent);
      for (int i = 0; i < n; ++i) {
        burst[i] = Message(Op::kEcho, 0, static_cast<double>(sent + i));
      }
      std::uint32_t done = 0;
      while (done < static_cast<std::uint32_t>(n)) {
        const std::uint32_t k = ring->enqueue_batch(
            burst + done, static_cast<std::uint32_t>(n) - done);
        if (k == 0) {
          sched_yield();
        } else {
          done += k;
        }
      }
      sent += n;
    }
    return 0;
  });
  Message out[8];
  int received = 0;
  while (received < kMessages) {
    const std::uint32_t k = ring->dequeue_batch(out, 8);
    if (k == 0) {
      sched_yield();
      continue;
    }
    for (std::uint32_t i = 0; i < k; ++i) {
      ASSERT_DOUBLE_EQ(out[i].value, static_cast<double>(received + i));
    }
    received += static_cast<int>(k);
  }
  EXPECT_EQ(producer.join(), 0);
  EXPECT_TRUE(ring->empty());
}

}  // namespace
}  // namespace ulipc
