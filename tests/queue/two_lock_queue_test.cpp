#include "queue/ms_two_lock_queue.hpp"

#include <gtest/gtest.h>

#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class TwoLockQueueTest : public ::testing::Test {
 protected:
  TwoLockQueueTest()
      : region_(ShmRegion::create_anonymous(1024 * 1024)),
        arena_(ShmArena::format(region_)),
        pool_(NodePool::create(arena_, 64)) {}

  TwoLockQueue* make_queue(std::uint32_t capacity = 0) {
    return TwoLockQueue::create(arena_, pool_, capacity);
  }

  ShmRegion region_;
  ShmArena arena_;
  NodePool* pool_;
};

TEST_F(TwoLockQueueTest, StartsEmpty) {
  TwoLockQueue* q = make_queue();
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->size(), 0u);
  Message m;
  EXPECT_FALSE(q->dequeue(&m));
}

TEST_F(TwoLockQueueTest, FifoOrder) {
  TwoLockQueue* q = make_queue();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, static_cast<double>(i))));
  }
  EXPECT_EQ(q->size(), 20u);
  for (int i = 0; i < 20; ++i) {
    Message m;
    ASSERT_TRUE(q->dequeue(&m));
    EXPECT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
  EXPECT_TRUE(q->empty());
}

TEST_F(TwoLockQueueTest, MessageFieldsSurviveTransit) {
  TwoLockQueue* q = make_queue();
  ASSERT_TRUE(q->enqueue(Message(Op::kCompute, 5, 3.75, 0xABCD)));
  Message m;
  ASSERT_TRUE(q->dequeue(&m));
  EXPECT_EQ(m.opcode, Op::kCompute);
  EXPECT_EQ(m.channel, 5u);
  EXPECT_DOUBLE_EQ(m.value, 3.75);
  EXPECT_EQ(m.ext_offset, 0xABCDu);
}

TEST_F(TwoLockQueueTest, CapacityBoundRejectsWhenFull) {
  TwoLockQueue* q = make_queue(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0)));
  }
  EXPECT_FALSE(q->enqueue(Message(Op::kEcho, 0, 0.0))) << "queue full";
  Message m;
  EXPECT_TRUE(q->dequeue(&m));
  EXPECT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0))) << "space reclaimed";
}

TEST_F(TwoLockQueueTest, PoolExhaustionReportsFull) {
  // Pool has 64 nodes; each queue consumes one dummy.
  TwoLockQueue* q = make_queue();
  int enqueued = 0;
  while (q->enqueue(Message(Op::kEcho, 0, 0.0))) ++enqueued;
  EXPECT_EQ(enqueued, 63) << "64 nodes - 1 dummy";
  Message m;
  ASSERT_TRUE(q->dequeue(&m));
  EXPECT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0)))
      << "released node must be reusable";
}

TEST_F(TwoLockQueueTest, NodesRecycleThroughPool) {
  TwoLockQueue* q = make_queue();
  const std::uint32_t free_before = pool_->free_count();
  for (int round = 0; round < 500; ++round) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, static_cast<double>(round))));
    Message m;
    ASSERT_TRUE(q->dequeue(&m));
    EXPECT_DOUBLE_EQ(m.value, static_cast<double>(round));
  }
  EXPECT_EQ(pool_->free_count(), free_before);
}

TEST_F(TwoLockQueueTest, TwoQueuesShareOnePool) {
  TwoLockQueue* a = make_queue();
  TwoLockQueue* b = make_queue();
  ASSERT_TRUE(a->enqueue(Message(Op::kEcho, 0, 1.0)));
  ASSERT_TRUE(b->enqueue(Message(Op::kEcho, 0, 2.0)));
  Message m;
  ASSERT_TRUE(a->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 1.0);
  ASSERT_TRUE(b->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 2.0);
}

TEST_F(TwoLockQueueTest, InterleavedEnqueueDequeue) {
  TwoLockQueue* q = make_queue();
  int next_in = 0;
  int next_out = 0;
  // Sawtooth fill levels exercise the empty<->nonempty transition.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < (round % 5) + 1; ++i) {
      ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, static_cast<double>(next_in++))));
    }
    Message m;
    while (q->dequeue(&m)) {
      EXPECT_DOUBLE_EQ(m.value, static_cast<double>(next_out++));
    }
    EXPECT_EQ(next_in, next_out);
  }
}

TEST_F(TwoLockQueueTest, EmptyProbeConsistentWithDequeue) {
  TwoLockQueue* q = make_queue();
  EXPECT_TRUE(q->empty());
  ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0)));
  EXPECT_FALSE(q->empty());
  Message m;
  ASSERT_TRUE(q->dequeue(&m));
  EXPECT_TRUE(q->empty());
}

}  // namespace
}  // namespace ulipc
