#include "queue/ms_two_lock_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class TwoLockQueueTest : public ::testing::Test {
 protected:
  TwoLockQueueTest()
      : region_(ShmRegion::create_anonymous(1024 * 1024)),
        arena_(ShmArena::format(region_)),
        pool_(NodePool::create(arena_, 64)) {}

  TwoLockQueue* make_queue(std::uint32_t capacity = 0) {
    return TwoLockQueue::create(arena_, pool_, capacity);
  }

  ShmRegion region_;
  ShmArena arena_;
  NodePool* pool_;
};

TEST_F(TwoLockQueueTest, StartsEmpty) {
  TwoLockQueue* q = make_queue();
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->size(), 0u);
  Message m;
  EXPECT_FALSE(q->dequeue(&m));
}

TEST_F(TwoLockQueueTest, FifoOrder) {
  TwoLockQueue* q = make_queue();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, static_cast<double>(i))));
  }
  EXPECT_EQ(q->size(), 20u);
  for (int i = 0; i < 20; ++i) {
    Message m;
    ASSERT_TRUE(q->dequeue(&m));
    EXPECT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
  EXPECT_TRUE(q->empty());
}

TEST_F(TwoLockQueueTest, MessageFieldsSurviveTransit) {
  TwoLockQueue* q = make_queue();
  ASSERT_TRUE(q->enqueue(Message(Op::kCompute, 5, 3.75, 0xABCD)));
  Message m;
  ASSERT_TRUE(q->dequeue(&m));
  EXPECT_EQ(m.opcode, Op::kCompute);
  EXPECT_EQ(m.channel, 5u);
  EXPECT_DOUBLE_EQ(m.value, 3.75);
  EXPECT_EQ(m.ext_offset, 0xABCDu);
}

TEST_F(TwoLockQueueTest, CapacityBoundRejectsWhenFull) {
  TwoLockQueue* q = make_queue(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0)));
  }
  EXPECT_FALSE(q->enqueue(Message(Op::kEcho, 0, 0.0))) << "queue full";
  Message m;
  EXPECT_TRUE(q->dequeue(&m));
  EXPECT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0))) << "space reclaimed";
}

TEST_F(TwoLockQueueTest, PoolExhaustionReportsFull) {
  // Pool has 64 nodes; each queue consumes one dummy.
  TwoLockQueue* q = make_queue();
  int enqueued = 0;
  while (q->enqueue(Message(Op::kEcho, 0, 0.0))) ++enqueued;
  EXPECT_EQ(enqueued, 63) << "64 nodes - 1 dummy";
  Message m;
  ASSERT_TRUE(q->dequeue(&m));
  EXPECT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0)))
      << "released node must be reusable";
}

TEST_F(TwoLockQueueTest, NodesRecycleThroughPool) {
  TwoLockQueue* q = make_queue();
  const std::uint32_t free_before = pool_->free_count();
  for (int round = 0; round < 500; ++round) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, static_cast<double>(round))));
    Message m;
    ASSERT_TRUE(q->dequeue(&m));
    EXPECT_DOUBLE_EQ(m.value, static_cast<double>(round));
  }
  EXPECT_EQ(pool_->free_count(), free_before);
}

TEST_F(TwoLockQueueTest, TwoQueuesShareOnePool) {
  TwoLockQueue* a = make_queue();
  TwoLockQueue* b = make_queue();
  ASSERT_TRUE(a->enqueue(Message(Op::kEcho, 0, 1.0)));
  ASSERT_TRUE(b->enqueue(Message(Op::kEcho, 0, 2.0)));
  Message m;
  ASSERT_TRUE(a->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 1.0);
  ASSERT_TRUE(b->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 2.0);
}

TEST_F(TwoLockQueueTest, InterleavedEnqueueDequeue) {
  TwoLockQueue* q = make_queue();
  int next_in = 0;
  int next_out = 0;
  // Sawtooth fill levels exercise the empty<->nonempty transition.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < (round % 5) + 1; ++i) {
      ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, static_cast<double>(next_in++))));
    }
    Message m;
    while (q->dequeue(&m)) {
      EXPECT_DOUBLE_EQ(m.value, static_cast<double>(next_out++));
    }
    EXPECT_EQ(next_in, next_out);
  }
}

TEST_F(TwoLockQueueTest, EmptyProbeConsistentWithDequeue) {
  TwoLockQueue* q = make_queue();
  EXPECT_TRUE(q->empty());
  ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0)));
  EXPECT_FALSE(q->empty());
  Message m;
  ASSERT_TRUE(q->dequeue(&m));
  EXPECT_TRUE(q->empty());
}

TEST_F(TwoLockQueueTest, BatchFifoAcrossBatchBoundaries) {
  TwoLockQueue* q = make_queue();
  Message in[15];
  for (int i = 0; i < 15; ++i) in[i] = Message(Op::kEcho, 0, double(i));
  EXPECT_EQ(q->enqueue_batch(in, 5), 5u);
  EXPECT_EQ(q->enqueue_batch(in + 5, 5), 5u);
  EXPECT_EQ(q->enqueue_batch(in + 10, 5), 5u);
  EXPECT_EQ(q->size(), 15u);
  Message out[15];
  EXPECT_EQ(q->dequeue_batch(out, 7), 7u);
  EXPECT_EQ(q->dequeue_batch(out + 7, 15), 8u);
  for (int i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(out[i].value, double(i))
        << "order must survive uneven batch boundaries";
  }
  EXPECT_TRUE(q->empty());
}

TEST_F(TwoLockQueueTest, BatchPartialOnCapacityBound) {
  TwoLockQueue* q = make_queue(4);
  Message in[6];
  for (int i = 0; i < 6; ++i) in[i] = Message(Op::kEcho, 0, double(i));
  EXPECT_EQ(q->enqueue_batch(in, 6), 4u) << "capacity caps the batch";
  EXPECT_EQ(q->enqueue_batch(in + 4, 2), 0u) << "full queue takes nothing";
  Message out[8];
  EXPECT_EQ(q->dequeue_batch(out, 8), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(out[i].value, double(i));
  }
}

TEST_F(TwoLockQueueTest, BatchPartialOnPoolExhaustion) {
  // Pool has 64 nodes and the queue consumed one dummy: a 100-message batch
  // must land exactly the 63 that have nodes and report the short count.
  TwoLockQueue* q = make_queue();
  const std::uint32_t free_before = pool_->free_count();
  Message in[100];
  for (int i = 0; i < 100; ++i) in[i] = Message(Op::kEcho, 0, double(i));
  EXPECT_EQ(q->enqueue_batch(in, 100), 63u);
  EXPECT_EQ(q->size(), 63u);
  EXPECT_FALSE(q->enqueue(Message(Op::kEcho, 0, 0.0)));
  Message out[100];
  EXPECT_EQ(q->dequeue_batch(out, 100), 63u);
  for (int i = 0; i < 63; ++i) {
    EXPECT_DOUBLE_EQ(out[i].value, double(i));
  }
  EXPECT_EQ(pool_->free_count(), free_before)
      << "every node (and none of the phantom 37) returned to the pool";
}

TEST_F(TwoLockQueueTest, BatchDequeueOnEmptyAndZeroCounts) {
  TwoLockQueue* q = make_queue();
  Message out[4];
  EXPECT_EQ(q->dequeue_batch(out, 4), 0u);
  EXPECT_EQ(q->enqueue_batch(nullptr, 0), 0u);
  EXPECT_EQ(q->dequeue_batch(nullptr, 0), 0u);
  EXPECT_TRUE(q->empty());
}

TEST_F(TwoLockQueueTest, ScalarAndBatchInterleaveFifo) {
  TwoLockQueue* q = make_queue();
  Message in[3] = {Message(Op::kEcho, 0, 1.0), Message(Op::kEcho, 0, 2.0),
                   Message(Op::kEcho, 0, 3.0)};
  ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, 0.0)));
  ASSERT_EQ(q->enqueue_batch(in, 3), 3u);
  ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, 4.0)));
  Message m;
  ASSERT_TRUE(q->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 0.0);
  Message out[8];
  ASSERT_EQ(q->dequeue_batch(out, 8), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(out[i].value, double(i + 1));
  }
  EXPECT_TRUE(q->empty());
}

TEST_F(TwoLockQueueTest, ThreadedBatchProducerConsumer) {
  NodePool* pool = NodePool::create(arena_, 256);
  TwoLockQueue* q = TwoLockQueue::create(arena_, pool, 128);
  constexpr int kMessages = 50'000;
  std::thread producer([&] {
    Message burst[8];
    int sent = 0;
    while (sent < kMessages) {
      const int n = std::min(8, kMessages - sent);
      for (int i = 0; i < n; ++i) {
        burst[i] = Message(Op::kEcho, 0, static_cast<double>(sent + i));
      }
      std::uint32_t done = 0;
      while (done < static_cast<std::uint32_t>(n)) {
        done += q->enqueue_batch(burst + done,
                                 static_cast<std::uint32_t>(n) - done);
      }
      sent += n;
    }
  });
  Message out[16];
  int received = 0;
  while (received < kMessages) {
    const std::uint32_t k = q->dequeue_batch(out, 16);
    for (std::uint32_t i = 0; i < k; ++i) {
      ASSERT_DOUBLE_EQ(out[i].value, static_cast<double>(received + i));
    }
    received += static_cast<int>(k);
  }
  producer.join();
  EXPECT_TRUE(q->empty());
}

}  // namespace
}  // namespace ulipc
