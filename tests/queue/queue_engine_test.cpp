// Queue-engine selection plane plus the guarantees shared by (and specific
// to) each MsgQueue engine:
//  * ULIPC_QUEUE_ENGINE grammar — bare name, per-topology list, garbage;
//  * value semantics through the facade, identical across engines (TEST_P);
//  * mixed-engine queues sharing one NodePool (the word-copy discipline
//    both engines' node fills follow exists exactly for this);
//  * lock-free crash windows the two-lock suite cannot express: a lagging
//    tail healed by helping instead of lock steal, a SIGKILLed dequeuer's
//    announced node reclaimed by the sweep, and a STALE announcement
//    (node already recycled, tag moved on) that the sweep must refuse.
#include "queue/msg_queue.hpp"

#include <gtest/gtest.h>
#include <sched.h>

#include <cstdlib>

#include "queue/queue_recovery.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

// ---------------------------------------------------- selection grammar

TEST(QueueEnginePolicy, BareNameAppliesToEveryTopology) {
  setenv("ULIPC_QUEUE_ENGINE", "lockfree", 1);
  const QueueEnginePolicy p = QueueEnginePolicy::from_env();
  EXPECT_EQ(p.server, QueueEngine::kLockFree);
  EXPECT_EQ(p.reply, QueueEngine::kLockFree);
  EXPECT_EQ(p.shard, QueueEngine::kLockFree);
  unsetenv("ULIPC_QUEUE_ENGINE");
}

TEST(QueueEnginePolicy, PerTopologyListPinsIndividually) {
  setenv("ULIPC_QUEUE_ENGINE", "server=lockfree,shard=lock-free", 1);
  const QueueEnginePolicy p = QueueEnginePolicy::from_env();
  EXPECT_EQ(p.server, QueueEngine::kLockFree);
  EXPECT_EQ(p.reply, QueueEnginePolicy::defaults().reply);
  EXPECT_EQ(p.shard, QueueEngine::kLockFree);
  unsetenv("ULIPC_QUEUE_ENGINE");
}

TEST(QueueEnginePolicy, GarbageIsIgnoredNotFatal) {
  setenv("ULIPC_QUEUE_ENGINE", "mystery,shard=alien,reply=lf", 1);
  const QueueEnginePolicy p = QueueEnginePolicy::from_env();
  EXPECT_EQ(p.server, QueueEnginePolicy::defaults().server);
  EXPECT_EQ(p.reply, QueueEngine::kLockFree);  // the one valid item
  EXPECT_EQ(p.shard, QueueEnginePolicy::defaults().shard);
  unsetenv("ULIPC_QUEUE_ENGINE");
}

TEST(QueueEnginePolicy, ParseAcceptsDocumentedAliases) {
  QueueEngine e = QueueEngine::kTwoLock;
  EXPECT_TRUE(parse_queue_engine("lock-free", &e));
  EXPECT_EQ(e, QueueEngine::kLockFree);
  EXPECT_TRUE(parse_queue_engine("2lock", &e));
  EXPECT_EQ(e, QueueEngine::kTwoLock);
  EXPECT_FALSE(parse_queue_engine("", &e));
  EXPECT_FALSE(parse_queue_engine("twolockx", &e));
}

// ------------------------------------------------- shared value semantics

class QueueEngineTest : public ::testing::TestWithParam<QueueEngine> {
 protected:
  QueueEngineTest()
      : region_(ShmRegion::create_anonymous(1024 * 1024)),
        arena_(ShmArena::format(region_)),
        pool_(NodePool::create(arena_, 64)) {}

  MsgQueue* make_queue(std::uint32_t capacity = 0) {
    return MsgQueue::create(arena_, pool_, capacity, GetParam());
  }

  ShmRegion region_;
  ShmArena arena_;
  NodePool* pool_;
};

TEST_P(QueueEngineTest, ReportsItsEngine) {
  EXPECT_EQ(make_queue()->engine(), GetParam());
}

TEST_P(QueueEngineTest, FifoThroughFacade) {
  MsgQueue* q = make_queue();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, i)));
  }
  Message m;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q->dequeue(&m));
    EXPECT_DOUBLE_EQ(m.value, double(i));
  }
  EXPECT_FALSE(q->dequeue(&m));
  EXPECT_TRUE(q->empty());
}

TEST_P(QueueEngineTest, CapacityBoundAndSizeTrack) {
  MsgQueue* q = make_queue(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, i)));
  }
  EXPECT_FALSE(q->enqueue(Message(Op::kEcho, 0, 99)));
  EXPECT_EQ(q->size(), 4u);
  Message m;
  ASSERT_TRUE(q->dequeue(&m));
  EXPECT_EQ(q->size(), 3u);
  ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, 4)));
}

TEST_P(QueueEngineTest, BatchRoundTripPreservesOrderAndStamps) {
  MsgQueue* q = make_queue();
  Message in[8];
  for (int i = 0; i < 8; ++i) in[i] = Message(Op::kEcho, 0, i);
  ASSERT_EQ(q->enqueue_batch(in, 8, SpanStamp{7, 100}), 8u);
  Message out[8];
  SpanStamp sp;
  ASSERT_EQ(q->dequeue_batch(out, 8, &sp), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out[i].value, double(i));
  EXPECT_EQ(sp.id, 7u) << "the batch's single stamp must survive transit";
  EXPECT_TRUE(q->empty());
}

TEST_P(QueueEngineTest, SpanStampRidesScalarPath) {
  MsgQueue* q = make_queue();
  ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, 1.0), SpanStamp{42, 7}));
  Message m;
  SpanStamp sp;
  ASSERT_TRUE(q->dequeue(&m, &sp));
  EXPECT_EQ(sp.id, 42u);
  EXPECT_EQ(sp.tick, 7);
}

TEST_P(QueueEngineTest, NodesRecycleThroughSharedPool) {
  MsgQueue* q = make_queue();
  const std::uint32_t free0 = pool_->free_count();
  Message m;
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, round)));
    ASSERT_TRUE(q->dequeue(&m));
  }
  EXPECT_EQ(pool_->free_count(), free0);
}

TEST_P(QueueEngineTest, DrainDiscardsAndBalances) {
  MsgQueue* q = make_queue();
  const std::uint32_t free0 = pool_->free_count();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, i)));
  }
  EXPECT_EQ(q->drain(), 12u);
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(pool_->free_count(), free0);
}

TEST_P(QueueEngineTest, MarkReachableCountsAndConserves) {
  MsgQueue* q = make_queue();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, i)));
  }
  std::vector<char> mark(pool_->capacity(), 0);
  EXPECT_EQ(q->mark_reachable(mark), 5u);
  std::uint32_t marked = 0;
  for (char c : mark) marked += c != 0;
  EXPECT_EQ(marked, 6u) << "5 elements + the dummy";
  EXPECT_EQ(q->size(), 5u) << "a quiescent recount must reseat size exactly";
}

TEST_P(QueueEngineTest, ForEachPendingSkipsTheDummy) {
  MsgQueue* q = make_queue();
  Message m;
  ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, 1.0)));
  ASSERT_TRUE(q->dequeue(&m));  // dummy now holds a stale copy of 1.0
  ASSERT_TRUE(q->enqueue(Message(Op::kEcho, 0, 2.0)));
  double sum = 0.0;
  std::uint32_t visits = 0;
  q->for_each_pending([&](const Message& pm) {
    sum += pm.value;
    ++visits;
  });
  EXPECT_EQ(visits, 1u);
  EXPECT_DOUBLE_EQ(sum, 2.0);
}

// Two queues of DIFFERENT engines drawing from one pool: nodes recycle
// freely across engines, so every fill/copy has to follow the shared
// word-copy discipline (see lf_copy_words) and the lf_next tag must only
// ever move forward. Cross-process ping-pong hammers the recycling.
TEST_P(QueueEngineTest, MixedEnginePingPongSharesOnePool) {
  MsgQueue* request = MsgQueue::create(arena_, pool_, 16, GetParam());
  MsgQueue* reply = MsgQueue::create(
      arena_, pool_, 16,
      GetParam() == QueueEngine::kTwoLock ? QueueEngine::kLockFree
                                          : QueueEngine::kTwoLock);
  constexpr int kRounds = 10'000;
  ChildProcess server = ChildProcess::spawn([&] {
    Message m;
    for (int i = 0; i < kRounds; ++i) {
      while (!request->dequeue(&m)) sched_yield();
      m.value += 0.5;
      while (!reply->enqueue(m)) sched_yield();
    }
    return 0;
  });
  for (int i = 0; i < kRounds; ++i) {
    while (!request->enqueue(Message(Op::kEcho, 0, i))) sched_yield();
    Message m;
    while (!reply->dequeue(&m)) sched_yield();
    ASSERT_DOUBLE_EQ(m.value, i + 0.5);
  }
  EXPECT_EQ(server.join(), 0);
}

INSTANTIATE_TEST_SUITE_P(Engines, QueueEngineTest,
                         ::testing::Values(QueueEngine::kTwoLock,
                                           QueueEngine::kLockFree),
                         [](const ::testing::TestParamInfo<QueueEngine>& i) {
                           return i.param == QueueEngine::kTwoLock
                                      ? "TwoLock"
                                      : "LockFree";
                         });

// ------------------------------------------- lock-free-specific recovery

class LockFreeRecoveryTest : public ::testing::Test {
 protected:
  LockFreeRecoveryTest()
      : region_(ShmRegion::create_anonymous(1024 * 1024)),
        arena_(ShmArena::format(region_)),
        pool_(NodePool::create(arena_, 64)),
        queue_(MsgQueue::create(arena_, pool_, 0, QueueEngine::kLockFree)) {}

  RecoveryStats sweep() {
    return sweep_leaked_nodes(*pool_, {queue_}, nullptr);
  }

  ShmRegion region_;
  ShmArena arena_;
  NodePool* pool_;
  MsgQueue* queue_;
};

// The enqueuer dies after its link CAS, before its tail swing: there is no
// lock to steal — the next operation must HELP the lagging tail forward,
// and the linked message must survive (linking is the commit point).
TEST_F(LockFreeRecoveryTest, LaggingTailIsHealedByHelping) {
  const std::uint32_t free0 = pool_->free_count();
  ASSERT_TRUE(queue_->enqueue(Message(Op::kEcho, 0, 1.0)));
  ChildProcess victim = ChildProcess::spawn([&] {
    return queue_->crash_mid_enqueue_for_test(Message(Op::kEcho, 0, 2.0)) !=
                   kNullIndex
               ? 0
               : 1;
  });
  ASSERT_EQ(victim.join(), 0);

  // The next enqueue lands AFTER the corpse's linked node.
  ASSERT_TRUE(queue_->enqueue(Message(Op::kEcho, 0, 3.0)));
  Message m;
  ASSERT_TRUE(queue_->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 1.0);
  ASSERT_TRUE(queue_->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 2.0) << "linked message lost";
  ASSERT_TRUE(queue_->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 3.0);
  EXPECT_TRUE(queue_->empty());
  EXPECT_EQ(pool_->free_count(), free0);
}

// A dequeue can also heal the lagging tail (the textbook helping path:
// head == tail but tail->next is non-null).
TEST_F(LockFreeRecoveryTest, DequeueHelpsLaggingTail) {
  ChildProcess victim = ChildProcess::spawn([&] {
    return queue_->crash_mid_enqueue_for_test(Message(Op::kEcho, 0, 9.0)) !=
                   kNullIndex
               ? 0
               : 1;
  });
  ASSERT_EQ(victim.join(), 0);
  Message m;
  ASSERT_TRUE(queue_->dequeue(&m));
  EXPECT_DOUBLE_EQ(m.value, 9.0);
  EXPECT_FALSE(queue_->dequeue(&m));
}

// A stale announcement must never reclaim a recycled node: the sweep
// revalidates the announced lf_next tag, and release() bumped it.
TEST_F(LockFreeRecoveryTest, StaleAnnouncementIsRefusedAfterRecycle) {
  // Round-trip one message so some node has cycled through the queue.
  ASSERT_TRUE(queue_->enqueue(Message(Op::kEcho, 0, 1.0)));
  Message m;
  ASSERT_TRUE(queue_->dequeue(&m));
  const std::uint32_t free0 = pool_->free_count();

  // A child claims an announce slot, publishes a FREE node under its
  // CURRENT tag minus one (a tag from the node's previous life), and dies
  // without clearing — modeling a dequeuer whose loser CAS raced a faster
  // winner that already released the node.
  ChildProcess victim = ChildProcess::spawn([&] {
    const int slot = pool_->announce_slot();
    if (slot < 0) return 1;
    const ShmIndex idx = 0;  // any pool node; free ones are fair game
    const std::uint32_t cur =
        lf_tag(pool_->lf_next(idx).load(std::memory_order_acquire));
    pool_->announce_dequeue(slot, idx, cur - 1);
    return 0;
  });
  ASSERT_EQ(victim.join(), 0);

  const RecoveryStats stats = sweep();
  EXPECT_EQ(stats.nodes_reclaimed, 0u)
      << "a stale announcement must fail tag revalidation";
  EXPECT_EQ(pool_->free_count(), free0) << "free node double-released";
}

// An announcement whose tag DOES still match — the announcer died between
// its winning head CAS and release(), leaving the node detached,
// unreachable, and named by its live tag — is exactly what the sweep must
// reclaim. (The same window driven through the real dequeue path, marker
// and all, is covered by CrashPointTest/LockFree; this pins the pool-level
// arithmetic in isolation.)
TEST_F(LockFreeRecoveryTest, DeadAnnouncersDetachedNodeIsReclaimed) {
  const std::uint32_t free0 = pool_->free_count();
  ChildProcess victim = ChildProcess::spawn([&] {
    // Model the post-CAS pre-release state directly: the node is allocated
    // (owner-stamped, off the free list), in no queue, and announced under
    // its current lf_next tag.
    const ShmIndex idx = pool_->allocate();
    if (idx == kNullIndex) return 1;
    const int slot = pool_->announce_slot();
    if (slot < 0) return 1;
    pool_->announce_dequeue(
        slot, idx, lf_tag(pool_->lf_next(idx).load(std::memory_order_acquire)));
    return 0;  // dies without release() or clear_announce()
  });
  ASSERT_EQ(victim.join(), 0);
  ASSERT_EQ(pool_->free_count(), free0 - 1);

  const RecoveryStats stats = sweep();
  EXPECT_EQ(stats.nodes_reclaimed, 1u)
      << "matching-tag announcement of a dead process must reclaim";
  EXPECT_EQ(pool_->free_count(), free0);

  // A second sweep is a no-op: the reclaim released the node (bumping its
  // tag and zeroing its owner), so neither pass can touch it again.
  const RecoveryStats again = sweep();
  EXPECT_EQ(again.nodes_reclaimed, 0u) << "double release through stale slot";
  EXPECT_EQ(pool_->free_count(), free0);
}

}  // namespace
}  // namespace ulipc
