#include "queue/payload_pool.hpp"

#include <gtest/gtest.h>
#include <sched.h>

#include <set>
#include <string>

#include "queue/ms_two_lock_queue.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class PayloadPoolTest : public ::testing::Test {
 protected:
  PayloadPoolTest()
      : region_(ShmRegion::create_anonymous(1 << 20)),
        arena_(ShmArena::format(region_)) {}

  ShmRegion region_;
  ShmArena arena_;
};

TEST_F(PayloadPoolTest, AcquireReleaseCycle) {
  PayloadPool* pool = PayloadPool::create(arena_, 128, 4);
  EXPECT_EQ(pool->capacity(), 4u);
  EXPECT_EQ(pool->free_count(), 4u);
  const std::uint64_t token = pool->acquire();
  ASSERT_NE(token, PayloadPool::kNoPayload);
  EXPECT_EQ(pool->free_count(), 3u);
  pool->release(token);
  EXPECT_EQ(pool->free_count(), 4u);
}

TEST_F(PayloadPoolTest, TokensAreDistinctAndNonZero) {
  PayloadPool* pool = PayloadPool::create(arena_, 64, 8);
  std::set<std::uint64_t> tokens;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t t = pool->acquire();
    ASSERT_NE(t, PayloadPool::kNoPayload);
    EXPECT_TRUE(tokens.insert(t).second);
  }
  EXPECT_EQ(pool->acquire(), PayloadPool::kNoPayload) << "pool exhausted";
}

TEST_F(PayloadPoolTest, WriteReadRoundTrip) {
  PayloadPool* pool = PayloadPool::create(arena_, 64, 2);
  const std::uint64_t token = pool->acquire();
  ASSERT_TRUE(pool->write(token, std::string_view("variable payload!")));
  EXPECT_EQ(pool->read(token), "variable payload!");
}

TEST_F(PayloadPoolTest, RejectsOversizedWrite) {
  PayloadPool* pool = PayloadPool::create(arena_, 16, 2);
  const std::uint64_t token = pool->acquire();
  const std::string big(pool->slot_bytes() + 1, 'x');
  EXPECT_FALSE(pool->write(token, big));
  const std::string fits(pool->slot_bytes(), 'y');
  EXPECT_TRUE(pool->write(token, fits));
  EXPECT_EQ(pool->read(token).size(), fits.size());
}

TEST_F(PayloadPoolTest, SlotsDoNotAlias) {
  PayloadPool* pool = PayloadPool::create(arena_, 64, 4);
  const std::uint64_t a = pool->acquire();
  const std::uint64_t b = pool->acquire();
  ASSERT_TRUE(pool->write(a, std::string_view("aaaa")));
  ASSERT_TRUE(pool->write(b, std::string_view("bbbbbb")));
  EXPECT_EQ(pool->read(a), "aaaa");
  EXPECT_EQ(pool->read(b), "bbbbbb");
}

TEST_F(PayloadPoolTest, TokenTravelsThroughMessage) {
  // The paper's mechanism end-to-end: ext_offset carries the payload.
  PayloadPool* pool = PayloadPool::create(arena_, 128, 4);
  NodePool* nodes = NodePool::create(arena_, 8);
  TwoLockQueue* queue = TwoLockQueue::create(arena_, nodes);

  const std::uint64_t token = pool->acquire();
  ASSERT_TRUE(pool->write(token, std::string_view("hello via ext_offset")));
  ASSERT_TRUE(queue->enqueue(Message(Op::kPut, 0, 1.0, token)));

  Message received;
  ASSERT_TRUE(queue->dequeue(&received));
  EXPECT_EQ(pool->read(received.ext_offset), "hello via ext_offset");
  pool->release(received.ext_offset);
  EXPECT_EQ(pool->free_count(), 4u);
}

TEST_F(PayloadPoolTest, CrossProcessBaton) {
  PayloadPool* pool = PayloadPool::create(arena_, 256, 4);
  NodePool* nodes = NodePool::create(arena_, 8);
  TwoLockQueue* request = TwoLockQueue::create(arena_, nodes);
  TwoLockQueue* reply = TwoLockQueue::create(arena_, nodes);
  constexpr int kRounds = 2'000;

  ChildProcess server = ChildProcess::spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      Message m;
      while (!request->dequeue(&m)) sched_yield();
      // Reuse the slot for the reply: uppercase the text in place.
      std::string text(pool->read(m.ext_offset));
      for (char& c : text) c = static_cast<char>(c - 32 * (c >= 'a' && c <= 'z'));
      pool->write(m.ext_offset, text);
      while (!reply->enqueue(m)) sched_yield();
    }
    return 0;
  });

  for (int i = 0; i < kRounds; ++i) {
    const std::uint64_t token = pool->acquire();
    ASSERT_NE(token, PayloadPool::kNoPayload);
    ASSERT_TRUE(pool->write(token, std::string_view("payload text")));
    while (!request->enqueue(Message(Op::kTask, 0, 0.0, token))) sched_yield();
    Message m;
    while (!reply->dequeue(&m)) sched_yield();
    EXPECT_EQ(pool->read(m.ext_offset), "PAYLOAD TEXT");
    pool->release(m.ext_offset);
  }
  EXPECT_EQ(server.join(), 0);
  EXPECT_EQ(pool->free_count(), 4u);
}

TEST_F(PayloadPoolTest, ManyAcquireReleaseNoLeak) {
  PayloadPool* pool = PayloadPool::create(arena_, 32, 3);
  for (int round = 0; round < 5'000; ++round) {
    const std::uint64_t a = pool->acquire();
    const std::uint64_t b = pool->acquire();
    ASSERT_NE(a, PayloadPool::kNoPayload);
    ASSERT_NE(b, PayloadPool::kNoPayload);
    pool->release(b);
    pool->release(a);
  }
  EXPECT_EQ(pool->free_count(), 3u);
}

}  // namespace
}  // namespace ulipc
