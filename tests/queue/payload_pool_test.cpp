#include "queue/payload_pool.hpp"

#include <gtest/gtest.h>
#include <sched.h>

#include <set>
#include <string>

#include "queue/ms_two_lock_queue.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class PayloadPoolTest : public ::testing::Test {
 protected:
  PayloadPoolTest()
      : region_(ShmRegion::create_anonymous(8u << 20)),
        arena_(ShmArena::format(region_)) {}

  PayloadPool* make(std::uint32_t min_bytes, std::uint32_t max_bytes,
                    std::uint32_t slots_per_class) {
    PayloadPool::Config cfg;
    cfg.min_bytes = min_bytes;
    cfg.max_bytes = max_bytes;
    cfg.slots_per_class = slots_per_class;
    return PayloadPool::create(arena_, cfg);
  }

  ShmRegion region_;
  ShmArena arena_;
};

TEST_F(PayloadPoolTest, LoanReleaseCycle) {
  PayloadPool* pool = make(128, 128, 4);
  EXPECT_EQ(pool->class_count(), 1u);
  EXPECT_EQ(pool->capacity(), 4u);
  EXPECT_EQ(pool->free_count(), 4u);
  const std::uint64_t token = pool->loan(100);
  ASSERT_NE(token, PayloadPool::kNoPayload);
  EXPECT_EQ(pool->free_count(), 3u);
  EXPECT_EQ(pool->loans_outstanding(), 1u);
  pool->release(token);
  EXPECT_EQ(pool->free_count(), 4u);
  EXPECT_EQ(pool->loans_outstanding(), 0u);
}

TEST_F(PayloadPoolTest, GeometricClassLadder) {
  PayloadPool* pool = make(64, 1024, 2);
  ASSERT_EQ(pool->class_count(), 5u);  // 64 128 256 512 1024
  for (std::uint32_t c = 0; c < pool->class_count(); ++c) {
    EXPECT_EQ(pool->class_slot_bytes(c), 64u << c);
    EXPECT_EQ(pool->class_capacity(c), 2u);
    EXPECT_EQ(pool->class_free(c), 2u);
  }
  EXPECT_EQ(pool->capacity(), 10u);
}

TEST_F(PayloadPoolTest, LoanTakesSmallestFittingClass) {
  PayloadPool* pool = make(64, 1024, 2);
  const std::uint64_t small = pool->loan(10);
  const std::uint64_t mid = pool->loan(65);
  const std::uint64_t big = pool->loan(1000);
  ASSERT_NE(small, PayloadPool::kNoPayload);
  ASSERT_NE(mid, PayloadPool::kNoPayload);
  ASSERT_NE(big, PayloadPool::kNoPayload);
  EXPECT_EQ(pool->capacity_of(small), 64u);
  EXPECT_EQ(pool->capacity_of(mid), 128u);
  EXPECT_EQ(pool->capacity_of(big), 1024u);
  EXPECT_EQ(pool->class_free(0), 1u);
  EXPECT_EQ(pool->class_free(1), 1u);
  EXPECT_EQ(pool->class_free(4), 1u);
}

TEST_F(PayloadPoolTest, ExhaustedClassSpillsToLargerClass) {
  PayloadPool* pool = make(64, 256, 2);
  const std::uint64_t a = pool->loan(32);
  const std::uint64_t b = pool->loan(32);
  EXPECT_EQ(pool->capacity_of(a), 64u);
  EXPECT_EQ(pool->capacity_of(b), 64u);
  // Class 0 is dry: the next small loan spills to the 128 B class.
  const std::uint64_t c = pool->loan(32);
  ASSERT_NE(c, PayloadPool::kNoPayload);
  EXPECT_EQ(pool->capacity_of(c), 128u);
  // Oversized request: nothing can serve it.
  EXPECT_EQ(pool->loan(4096), PayloadPool::kNoPayload);
}

TEST_F(PayloadPoolTest, HighWaterTracksPeakLoans) {
  PayloadPool* pool = make(64, 64, 4);
  const std::uint64_t a = pool->loan(8);
  const std::uint64_t b = pool->loan(8);
  const std::uint64_t c = pool->loan(8);
  pool->release(b);
  pool->release(c);
  pool->release(a);
  EXPECT_EQ(pool->class_high_water(0), 3u);
  EXPECT_EQ(pool->loans_outstanding(), 0u);
}

TEST_F(PayloadPoolTest, TokensAreDistinctAndNonZero) {
  PayloadPool* pool = make(64, 64, 8);
  std::set<std::uint64_t> tokens;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t t = pool->loan(64);
    ASSERT_NE(t, PayloadPool::kNoPayload);
    EXPECT_TRUE(tokens.insert(t).second);
  }
  EXPECT_EQ(pool->loan(64), PayloadPool::kNoPayload) << "pool exhausted";
}

TEST_F(PayloadPoolTest, ReusedSlotGetsFreshGeneration) {
  // The generation in the token is what lets the resilience layer use a
  // loan token as a stale-reply dedup tag: a recycled slot must never
  // produce the token of its previous incarnation.
  PayloadPool* pool = make(64, 64, 1);
  const std::uint64_t first = pool->loan(8);
  pool->release(first);
  const std::uint64_t second = pool->loan(8);
  ASSERT_NE(second, PayloadPool::kNoPayload);
  EXPECT_NE(first, second);
  // Same slot though: the offset bits match.
  EXPECT_EQ(first & PayloadPool::kTokenOffsetMask,
            second & PayloadPool::kTokenOffsetMask);
  pool->release(second);
}

TEST_F(PayloadPoolTest, WriteReadRoundTrip) {
  PayloadPool* pool = make(64, 64, 2);
  const std::uint64_t token = pool->loan(32);
  ASSERT_TRUE(pool->write(token, std::string_view("variable payload!")));
  EXPECT_EQ(pool->read(token), "variable payload!");
}

TEST_F(PayloadPoolTest, InPlaceWriteThenPublish) {
  PayloadPool* pool = make(64, 64, 2);
  const std::uint64_t token = pool->loan(13);
  ASSERT_NE(token, PayloadPool::kNoPayload);
  std::memcpy(pool->data(token), "zero-copy lane", 14);
  ASSERT_TRUE(pool->publish(token, 14));
  EXPECT_EQ(pool->read(token), std::string_view("zero-copy lane"));
}

TEST_F(PayloadPoolTest, RejectsOversizedWriteAndPublish) {
  PayloadPool* pool = make(16, 16, 2);
  const std::uint64_t token = pool->loan(16);
  const std::string big(pool->capacity_of(token) + 1, 'x');
  EXPECT_FALSE(pool->write(token, big));
  EXPECT_FALSE(pool->publish(token, pool->capacity_of(token) + 1));
  const std::string fits(pool->capacity_of(token), 'y');
  EXPECT_TRUE(pool->write(token, fits));
  EXPECT_EQ(pool->read(token).size(), fits.size());
}

TEST_F(PayloadPoolTest, SlotsDoNotAlias) {
  PayloadPool* pool = make(64, 64, 4);
  const std::uint64_t a = pool->loan(64);
  const std::uint64_t b = pool->loan(64);
  ASSERT_TRUE(pool->write(a, std::string_view("aaaa")));
  ASSERT_TRUE(pool->write(b, std::string_view("bbbbbb")));
  EXPECT_EQ(pool->read(a), "aaaa");
  EXPECT_EQ(pool->read(b), "bbbbbb");
}

TEST_F(PayloadPoolTest, TokenTravelsThroughMessage) {
  // The paper's mechanism end-to-end: ext_offset carries the payload.
  PayloadPool* pool = make(128, 128, 4);
  NodePool* nodes = NodePool::create(arena_, 8);
  TwoLockQueue* queue = TwoLockQueue::create(arena_, nodes);

  const std::uint64_t token = pool->loan(32);
  ASSERT_TRUE(pool->write(token, std::string_view("hello via ext_offset")));
  ASSERT_TRUE(queue->enqueue(Message(Op::kPut, 0, 1.0, token)));

  Message received;
  ASSERT_TRUE(queue->dequeue(&received));
  EXPECT_EQ(pool->read(received.ext_offset), "hello via ext_offset");
  pool->release(received.ext_offset);
  EXPECT_EQ(pool->free_count(), 4u);
}

TEST_F(PayloadPoolTest, CrossProcessBaton) {
  PayloadPool* pool = make(256, 256, 4);
  NodePool* nodes = NodePool::create(arena_, 8);
  TwoLockQueue* request = TwoLockQueue::create(arena_, nodes);
  TwoLockQueue* reply = TwoLockQueue::create(arena_, nodes);
  constexpr int kRounds = 2'000;

  ChildProcess server = ChildProcess::spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      Message m;
      while (!request->dequeue(&m)) sched_yield();
      // Take the baton, then reuse the loan for the reply: uppercase the
      // text in place.
      pool->adopt(m.ext_offset);
      std::string text(pool->read(m.ext_offset));
      for (char& c : text) c = static_cast<char>(c - 32 * (c >= 'a' && c <= 'z'));
      pool->write(m.ext_offset, text);
      while (!reply->enqueue(m)) sched_yield();
    }
    return 0;
  });

  for (int i = 0; i < kRounds; ++i) {
    const std::uint64_t token = pool->loan(64);
    ASSERT_NE(token, PayloadPool::kNoPayload);
    ASSERT_TRUE(pool->write(token, std::string_view("payload text")));
    while (!request->enqueue(Message(Op::kTask, 0, 0.0, token))) sched_yield();
    Message m;
    while (!reply->dequeue(&m)) sched_yield();
    EXPECT_EQ(pool->read(m.ext_offset), "PAYLOAD TEXT");
    pool->release(m.ext_offset);
  }
  EXPECT_EQ(server.join(), 0);
  EXPECT_EQ(pool->free_count(), 4u);
}

TEST_F(PayloadPoolTest, CrossProcessLoanVisibility) {
  // A loan made in the parent must be visible (owner stamp, published
  // bytes, payload text) through a child's own mapping of the region.
  PayloadPool* pool = make(64, 256, 2);
  const std::uint64_t token = pool->loan(200);
  ASSERT_NE(token, PayloadPool::kNoPayload);
  ASSERT_TRUE(pool->write(token, std::string_view("seen across fork")));
  const std::uint32_t parent_pid = robust_self_pid();

  ChildProcess reader = ChildProcess::spawn([&] {
    if (pool->read(token) != "seen across fork") return 1;
    if (pool->slot_owner(pool->index_of_token(token)) != parent_pid) return 2;
    if (!pool->owns_token(token)) return 3;
    // Child releases — the parent must observe the slot back on the list.
    pool->release(token);
    return 0;
  });
  EXPECT_EQ(reader.join(), 0);
  EXPECT_EQ(pool->free_count(), pool->capacity());
  EXPECT_EQ(pool->slot_owner(pool->index_of_token(token)), 0u);
}

TEST_F(PayloadPoolTest, ManyLoanReleaseNoLeak) {
  PayloadPool* pool = make(32, 32, 3);
  for (int round = 0; round < 5'000; ++round) {
    const std::uint64_t a = pool->loan(32);
    const std::uint64_t b = pool->loan(32);
    ASSERT_NE(a, PayloadPool::kNoPayload);
    ASSERT_NE(b, PayloadPool::kNoPayload);
    pool->release(b);
    pool->release(a);
  }
  EXPECT_EQ(pool->free_count(), 3u);
}

}  // namespace
}  // namespace ulipc
