#include "queue/msg_pool.hpp"

#include <gtest/gtest.h>

#include <set>

#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class NodePoolTest : public ::testing::Test {
 protected:
  NodePoolTest()
      : region_(ShmRegion::create_anonymous(256 * 1024)),
        arena_(ShmArena::format(region_)) {}

  ShmRegion region_;
  ShmArena arena_;
};

TEST_F(NodePoolTest, CapacityAndInitialFreeCount) {
  NodePool* pool = NodePool::create(arena_, 16);
  EXPECT_EQ(pool->capacity(), 16u);
  EXPECT_EQ(pool->free_count(), 16u);
}

TEST_F(NodePoolTest, AllocateAllThenExhaust) {
  NodePool* pool = NodePool::create(arena_, 8);
  std::set<ShmIndex> seen;
  for (int i = 0; i < 8; ++i) {
    const ShmIndex idx = pool->allocate();
    ASSERT_NE(idx, kNullIndex);
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate node handed out";
  }
  EXPECT_EQ(pool->allocate(), kNullIndex);
  EXPECT_EQ(pool->free_count(), 0u);
}

TEST_F(NodePoolTest, ReleaseRecycles) {
  NodePool* pool = NodePool::create(arena_, 2);
  const ShmIndex a = pool->allocate();
  const ShmIndex b = pool->allocate();
  EXPECT_EQ(pool->allocate(), kNullIndex);
  pool->release(a);
  const ShmIndex c = pool->allocate();
  EXPECT_EQ(c, a) << "LIFO free list returns the last released node";
  pool->release(b);
  pool->release(c);
  EXPECT_EQ(pool->free_count(), 2u);
}

TEST_F(NodePoolTest, NodePayloadIsWritable) {
  NodePool* pool = NodePool::create(arena_, 4);
  const ShmIndex idx = pool->allocate();
  pool->node(idx).msg = Message(Op::kEcho, 9, 2.25);
  EXPECT_EQ(pool->node(idx).msg.channel, 9u);
  EXPECT_DOUBLE_EQ(pool->node(idx).msg.value, 2.25);
}

TEST_F(NodePoolTest, ManyCycles) {
  NodePool* pool = NodePool::create(arena_, 4);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    ShmIndex idx[4];
    for (auto& i : idx) {
      i = pool->allocate();
      ASSERT_NE(i, kNullIndex);
    }
    for (const auto i : idx) pool->release(i);
  }
  EXPECT_EQ(pool->free_count(), 4u);
}

}  // namespace
}  // namespace ulipc
