// Model-based randomized testing: the shared-memory queues against a plain
// std::deque reference model, over seeded random operation streams
// (parameterized — each seed is an independent test case).
#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "common/rng.hpp"
#include "queue/ms_two_lock_queue.hpp"
#include "queue/payload_pool.hpp"
#include "queue/spsc_ring.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class ModelBasedTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ModelBasedTest()
      : region_(ShmRegion::create_anonymous(4 * 1024 * 1024)),
        arena_(ShmArena::format(region_)) {}

  ShmRegion region_;
  ShmArena arena_;
};

TEST_P(ModelBasedTest, TwoLockQueueMatchesDeque) {
  Xoshiro256 rng(GetParam());
  constexpr std::uint32_t kCapacity = 16;
  NodePool* pool = NodePool::create(arena_, kCapacity + 1);
  TwoLockQueue* queue = TwoLockQueue::create(arena_, pool, kCapacity);
  std::deque<double> model;

  for (int step = 0; step < 20'000; ++step) {
    if (rng.chance(0.55)) {
      const auto v = static_cast<double>(step);
      const bool ok = queue->enqueue(Message(Op::kEcho, 0, v));
      const bool model_ok = model.size() < kCapacity;
      ASSERT_EQ(ok, model_ok) << "full-condition divergence at " << step;
      if (ok) model.push_back(v);
    } else {
      Message m;
      const bool ok = queue->dequeue(&m);
      ASSERT_EQ(ok, !model.empty()) << "empty-condition divergence at " << step;
      if (ok) {
        ASSERT_DOUBLE_EQ(m.value, model.front());
        model.pop_front();
      }
    }
    ASSERT_EQ(queue->size(), model.size());
    ASSERT_EQ(queue->empty(), model.empty());
  }
}

TEST_P(ModelBasedTest, SpscRingMatchesDeque) {
  Xoshiro256 rng(GetParam() ^ 0x5555);
  SpscRing* ring = SpscRing::create(arena_, 8);
  const std::uint32_t cap = ring->capacity();
  std::deque<double> model;

  for (int step = 0; step < 20'000; ++step) {
    if (rng.chance(0.5)) {
      const auto v = static_cast<double>(step);
      const bool ok = ring->enqueue(Message(Op::kEcho, 0, v));
      ASSERT_EQ(ok, model.size() < cap);
      if (ok) model.push_back(v);
    } else {
      Message m;
      const bool ok = ring->dequeue(&m);
      ASSERT_EQ(ok, !model.empty());
      if (ok) {
        ASSERT_DOUBLE_EQ(m.value, model.front());
        model.pop_front();
      }
    }
    ASSERT_EQ(ring->size(), model.size());
  }
}

TEST_P(ModelBasedTest, PayloadPoolNeverDoubleAllocates) {
  Xoshiro256 rng(GetParam() ^ 0xAAAA);
  PayloadPool::Config pcfg;
  pcfg.min_bytes = 64;
  pcfg.max_bytes = 64;
  pcfg.slots_per_class = 6;
  PayloadPool* pool = PayloadPool::create(arena_, pcfg);
  std::set<std::uint64_t> live;

  for (int step = 0; step < 20'000; ++step) {
    if (rng.chance(0.5)) {
      const std::uint64_t token = pool->loan(48);
      if (live.size() < 6) {
        ASSERT_NE(token, PayloadPool::kNoPayload);
        ASSERT_TRUE(live.insert(token).second) << "token handed out twice";
        pool->write(token, std::to_string(step));
      } else {
        ASSERT_EQ(token, PayloadPool::kNoPayload);
      }
    } else if (!live.empty()) {
      // Release a pseudo-random live token.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      pool->release(*it);
      live.erase(it);
    }
    ASSERT_EQ(pool->free_count(), 6u - live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelBasedTest,
                         ::testing::Values(1, 2, 3, 17, 257, 65537, 0xC0FFEE),
                         [](const ::testing::TestParamInfo<std::uint64_t>& p) {
                           return "seed" + std::to_string(p.param);
                         });

}  // namespace
}  // namespace ulipc
