// Concurrency properties of the Michael & Scott two-lock queue:
//  * no message lost or duplicated under MPMC stress;
//  * FIFO preserved per producer (the queue is globally FIFO, so each
//    producer's messages must come out in its send order);
//  * works across real process boundaries (fork + anonymous shared region).
#include <gtest/gtest.h>
#include <sched.h>

#include <atomic>
#include <thread>
#include <vector>

#include "queue/ms_two_lock_queue.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

struct MpmcParam {
  int producers;
  int consumers;
  int messages_per_producer;
};

class MpmcStressTest : public ::testing::TestWithParam<MpmcParam> {};

TEST_P(MpmcStressTest, NoLossNoDupFifoPerProducer) {
  const MpmcParam param = GetParam();
  ShmRegion region = ShmRegion::create_anonymous(8 * 1024 * 1024);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(
      arena, static_cast<std::uint32_t>(param.producers * 64 + 8));
  TwoLockQueue* q = TwoLockQueue::create(arena, pool);

  const int total = param.producers * param.messages_per_producer;
  std::atomic<int> consumed{0};
  // received[p] collects sequence numbers seen from producer p, in arrival
  // order, per consumer; we validate monotonicity per (producer, consumer)
  // then global completeness.
  std::vector<std::vector<std::vector<int>>> received(
      static_cast<std::size_t>(param.consumers),
      std::vector<std::vector<int>>(static_cast<std::size_t>(param.producers)));

  std::vector<std::thread> threads;
  for (int c = 0; c < param.consumers; ++c) {
    threads.emplace_back([&, c] {
      Message m;
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (q->dequeue(&m)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          received[static_cast<std::size_t>(c)][m.channel].push_back(
              static_cast<int>(m.value));
        }
      }
    });
  }
  for (int p = 0; p < param.producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < param.messages_per_producer; ++i) {
        const Message m(Op::kEcho, static_cast<std::uint32_t>(p),
                        static_cast<double>(i));
        while (!q->enqueue(m)) {
          std::this_thread::yield();  // pool momentarily exhausted
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(consumed.load(), total);
  EXPECT_TRUE(q->empty());

  // Single-consumer FIFO check: with one consumer the per-producer streams
  // must be exactly 0..n-1 in order. With multiple consumers, each
  // consumer's view of one producer must be strictly increasing.
  std::vector<int> counts(static_cast<std::size_t>(param.producers), 0);
  for (int c = 0; c < param.consumers; ++c) {
    for (int p = 0; p < param.producers; ++p) {
      const auto& seq = received[static_cast<std::size_t>(c)]
                                [static_cast<std::size_t>(p)];
      for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_LT(seq[i - 1], seq[i])
            << "per-producer order violated (p=" << p << ", c=" << c << ")";
      }
      counts[static_cast<std::size_t>(p)] += static_cast<int>(seq.size());
    }
  }
  for (int p = 0; p < param.producers; ++p) {
    EXPECT_EQ(counts[static_cast<std::size_t>(p)], param.messages_per_producer)
        << "lost or duplicated messages from producer " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MpmcStressTest,
    ::testing::Values(MpmcParam{1, 1, 20'000}, MpmcParam{2, 1, 10'000},
                      MpmcParam{4, 1, 5'000}, MpmcParam{1, 2, 20'000},
                      MpmcParam{2, 2, 10'000}, MpmcParam{4, 4, 5'000}),
    [](const ::testing::TestParamInfo<MpmcParam>& pinfo) {
      return std::to_string(pinfo.param.producers) + "p" +
             std::to_string(pinfo.param.consumers) + "c";
    });

TEST(QueueCrossProcess, ProducerChildConsumerParent) {
  ShmRegion region = ShmRegion::create_anonymous(4 * 1024 * 1024);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(arena, 128);
  TwoLockQueue* q = TwoLockQueue::create(arena, pool, 64);
  constexpr int kMessages = 50'000;

  ChildProcess producer = ChildProcess::spawn([&] {
    for (int i = 0; i < kMessages; ++i) {
      while (!q->enqueue(Message(Op::kEcho, 0, static_cast<double>(i)))) {
        sched_yield();
      }
    }
    return 0;
  });

  int expected = 0;
  while (expected < kMessages) {
    Message m;
    if (q->dequeue(&m)) {
      ASSERT_DOUBLE_EQ(m.value, static_cast<double>(expected))
          << "cross-process FIFO violated";
      ++expected;
    }
  }
  EXPECT_EQ(producer.join(), 0);
  EXPECT_TRUE(q->empty());
}

TEST(QueueCrossProcess, BidirectionalPingPong) {
  ShmRegion region = ShmRegion::create_anonymous(4 * 1024 * 1024);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(arena, 64);
  TwoLockQueue* request = TwoLockQueue::create(arena, pool, 16);
  TwoLockQueue* reply = TwoLockQueue::create(arena, pool, 16);
  constexpr int kRounds = 20'000;

  ChildProcess server = ChildProcess::spawn([&] {
    Message m;
    for (int i = 0; i < kRounds; ++i) {
      while (!request->dequeue(&m)) sched_yield();
      m.value += 1.0;
      while (!reply->enqueue(m)) sched_yield();
    }
    return 0;
  });

  for (int i = 0; i < kRounds; ++i) {
    while (!request->enqueue(Message(Op::kEcho, 0, static_cast<double>(i)))) {
      sched_yield();
    }
    Message m;
    while (!reply->dequeue(&m)) sched_yield();
    ASSERT_DOUBLE_EQ(m.value, static_cast<double>(i) + 1.0);
  }
  EXPECT_EQ(server.join(), 0);
}

}  // namespace
}  // namespace ulipc
