// Concurrency properties every queue engine must share (TEST_P over the
// MsgQueue engines — M&S two-lock and M&S lock-free):
//  * no message lost or duplicated under MPMC stress;
//  * FIFO preserved per producer (the queue is globally FIFO, so each
//    producer's messages must come out in its send order);
//  * works across real process boundaries (fork + anonymous shared region).
#include <gtest/gtest.h>
#include <sched.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "queue/msg_queue.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

const QueueEngine kEngines[] = {QueueEngine::kTwoLock,
                                QueueEngine::kLockFree};

std::string engine_suffix(QueueEngine e) {
  return e == QueueEngine::kTwoLock ? "TwoLock" : "LockFree";
}

struct MpmcParam {
  int producers;
  int consumers;
  int messages_per_producer;
};

class MpmcStressTest
    : public ::testing::TestWithParam<std::tuple<QueueEngine, MpmcParam>> {};

TEST_P(MpmcStressTest, NoLossNoDupFifoPerProducer) {
  const QueueEngine engine = std::get<0>(GetParam());
  const MpmcParam param = std::get<1>(GetParam());
  ShmRegion region = ShmRegion::create_anonymous(8 * 1024 * 1024);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(
      arena, static_cast<std::uint32_t>(param.producers * 64 + 8));
  MsgQueue* q = MsgQueue::create(arena, pool, 0, engine);

  const int total = param.producers * param.messages_per_producer;
  std::atomic<int> consumed{0};
  // received[p] collects sequence numbers seen from producer p, in arrival
  // order, per consumer; we validate monotonicity per (producer, consumer)
  // then global completeness.
  std::vector<std::vector<std::vector<int>>> received(
      static_cast<std::size_t>(param.consumers),
      std::vector<std::vector<int>>(static_cast<std::size_t>(param.producers)));

  std::vector<std::thread> threads;
  for (int c = 0; c < param.consumers; ++c) {
    threads.emplace_back([&, c] {
      Message m;
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (q->dequeue(&m)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          received[static_cast<std::size_t>(c)][m.channel].push_back(
              static_cast<int>(m.value));
        }
      }
    });
  }
  for (int p = 0; p < param.producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < param.messages_per_producer; ++i) {
        const Message m(Op::kEcho, static_cast<std::uint32_t>(p),
                        static_cast<double>(i));
        while (!q->enqueue(m)) {
          std::this_thread::yield();  // pool momentarily exhausted
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(consumed.load(), total);
  EXPECT_TRUE(q->empty());

  // Single-consumer FIFO check: with one consumer the per-producer streams
  // must be exactly 0..n-1 in order. With multiple consumers, each
  // consumer's view of one producer must be strictly increasing.
  std::vector<int> counts(static_cast<std::size_t>(param.producers), 0);
  for (int c = 0; c < param.consumers; ++c) {
    for (int p = 0; p < param.producers; ++p) {
      const auto& seq = received[static_cast<std::size_t>(c)]
                                [static_cast<std::size_t>(p)];
      for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_LT(seq[i - 1], seq[i])
            << "per-producer order violated (p=" << p << ", c=" << c << ")";
      }
      counts[static_cast<std::size_t>(p)] += static_cast<int>(seq.size());
    }
  }
  for (int p = 0; p < param.producers; ++p) {
    EXPECT_EQ(counts[static_cast<std::size_t>(p)], param.messages_per_producer)
        << "lost or duplicated messages from producer " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MpmcStressTest,
    ::testing::Combine(
        ::testing::ValuesIn(kEngines),
        ::testing::Values(MpmcParam{1, 1, 20'000}, MpmcParam{2, 1, 10'000},
                          MpmcParam{4, 1, 5'000}, MpmcParam{1, 2, 20'000},
                          MpmcParam{2, 2, 10'000}, MpmcParam{4, 4, 5'000})),
    [](const ::testing::TestParamInfo<std::tuple<QueueEngine, MpmcParam>>&
           pinfo) {
      return engine_suffix(std::get<0>(pinfo.param)) +
             std::to_string(std::get<1>(pinfo.param).producers) + "p" +
             std::to_string(std::get<1>(pinfo.param).consumers) + "c";
    });

class QueueCrossProcess : public ::testing::TestWithParam<QueueEngine> {};

TEST_P(QueueCrossProcess, ProducerChildConsumerParent) {
  ShmRegion region = ShmRegion::create_anonymous(4 * 1024 * 1024);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(arena, 128);
  MsgQueue* q = MsgQueue::create(arena, pool, 64, GetParam());
  constexpr int kMessages = 50'000;

  ChildProcess producer = ChildProcess::spawn([&] {
    for (int i = 0; i < kMessages; ++i) {
      while (!q->enqueue(Message(Op::kEcho, 0, static_cast<double>(i)))) {
        sched_yield();
      }
    }
    return 0;
  });

  int expected = 0;
  while (expected < kMessages) {
    Message m;
    if (q->dequeue(&m)) {
      ASSERT_DOUBLE_EQ(m.value, static_cast<double>(expected))
          << "cross-process FIFO violated";
      ++expected;
    }
  }
  EXPECT_EQ(producer.join(), 0);
  EXPECT_TRUE(q->empty());
}

TEST_P(QueueCrossProcess, BidirectionalPingPong) {
  ShmRegion region = ShmRegion::create_anonymous(4 * 1024 * 1024);
  ShmArena arena = ShmArena::format(region);
  NodePool* pool = NodePool::create(arena, 64);
  MsgQueue* request = MsgQueue::create(arena, pool, 16, GetParam());
  MsgQueue* reply = MsgQueue::create(arena, pool, 16, GetParam());
  constexpr int kRounds = 20'000;

  ChildProcess server = ChildProcess::spawn([&] {
    Message m;
    for (int i = 0; i < kRounds; ++i) {
      while (!request->dequeue(&m)) sched_yield();
      m.value += 1.0;
      while (!reply->enqueue(m)) sched_yield();
    }
    return 0;
  });

  for (int i = 0; i < kRounds; ++i) {
    while (!request->enqueue(Message(Op::kEcho, 0, static_cast<double>(i)))) {
      sched_yield();
    }
    Message m;
    while (!reply->dequeue(&m)) sched_yield();
    ASSERT_DOUBLE_EQ(m.value, static_cast<double>(i) + 1.0);
  }
  EXPECT_EQ(server.join(), 0);
}

INSTANTIATE_TEST_SUITE_P(Engines, QueueCrossProcess,
                         ::testing::ValuesIn(kEngines),
                         [](const ::testing::TestParamInfo<QueueEngine>& i) {
                           return engine_suffix(i.param);
                         });

}  // namespace
}  // namespace ulipc
