// Span-plane assembly suite. The fork-based half runs one traced echo
// round trip across a real process boundary (server child, client parent)
// and asserts the assembler stitches the two rings' records into exactly
// one complete span with monotonic phase stamps. The synthetic half feeds
// the assembler hand-built and ring-wrapped record sets to prove the
// documented tolerance: torn tails and wrapped-away edges degrade a span
// to partial (complete() == false) without corrupting its neighbours.
#include "obs/span.hpp"

#include <unistd.h>

#include <vector>

#include <gtest/gtest.h>

#include "protocols/bsls.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc::obs {
namespace {

std::vector<TraceRecordView> ring_records(const ObsHeader& oh,
                                          std::uint32_t slot) {
  const auto* ring = static_cast<const TraceRing*>(oh.ring_blob(slot));
  return ring->read_all();
}

// One traced echo exchange between a forked server and the client in the
// parent. Shift 0 traces the echo send; the shift is raised before the
// disconnect so exactly one span is minted — the assembler must stitch it
// complete from the two processes' rings.
TEST(SpanAssembly, ForkedEchoStitchesExactlyOneCompleteSpan) {
  ShmChannel::Config cfg;
  cfg.max_clients = 1;
  cfg.queue_capacity = 16;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  ASSERT_TRUE(channel.has_obs());

  ChildProcess server = ChildProcess::spawn([&] {
    NativePlatform plat;
    channel.bind_server_obs(plat);
    Bsls<NativePlatform> proto(20);
    auto reply_ep = [&](std::uint32_t id) -> NativeEndpoint& {
      return channel.client_endpoint(id);
    };
    const ServerResult r =
        run_echo_server(plat, proto, channel.server_endpoint(), reply_ep, 1);
    return r.echo_messages == 1 ? 0 : 1;
  });

  NativePlatform plat;
  channel.bind_client_obs(plat, 0);
  plat.set_span_sample_shift(0);  // trace the echo send unconditionally
  Bsls<NativePlatform> proto(20);
  NativeEndpoint& srv = channel.server_endpoint();
  NativeEndpoint& mine = channel.client_endpoint(0);
  Message ans;
  proto.send(plat, srv, mine, Message(Op::kEcho, 0, 42.0), &ans);
  ASSERT_EQ(ans.opcode, Op::kEcho);
  ASSERT_EQ(ans.value, 42.0);
  // Decimation counter is at 1 after the echo: any non-zero shift skips the
  // disconnect send, so the echo stays the run's only minted span.
  plat.set_span_sample_shift(20);
  proto.send(plat, srv, mine, Message(Op::kDisconnect, 0, 0.0), &ans);
  ASSERT_EQ(ans.opcode, Op::kDisconnect);
  ASSERT_EQ(server.join(), 0);

  const ObsHeader& oh = channel.obs();
  std::vector<TraceRecordView> records = ring_records(oh, 0);
  const std::vector<TraceRecordView> client_recs = ring_records(oh, 1);
  records.insert(records.end(), client_recs.begin(), client_recs.end());

  const std::vector<Span> spans = assemble_spans(std::move(records));
  if (!kTraceCompiledIn) {
    EXPECT_TRUE(spans.empty()) << "no span records when ULIPC_TRACE=OFF";
    return;
  }

  ASSERT_EQ(spans.size(), 1u) << "one traced send -> one span";
  const Span& s = spans[0];
  EXPECT_TRUE(s.complete());
  // Backbone edges strictly present and monotonic across both processes
  // (invariant TSC makes the comparison meaningful).
  ASSERT_NE(s.send, 0u);
  ASSERT_NE(s.dequeue, 0u);
  ASSERT_NE(s.reply_enqueue, 0u);
  ASSERT_NE(s.reply_recv, 0u);
  EXPECT_LE(s.send, s.dequeue);
  EXPECT_LE(s.dequeue, s.reply_enqueue);
  EXPECT_LE(s.reply_enqueue, s.reply_recv);
  // Provenance: minted by the client (this process, obs slot 1), adopted by
  // the server child's ring (slot 0) — i.e. genuinely cross-process.
  EXPECT_EQ(span_pid(s.id), static_cast<std::uint32_t>(::getpid()));
  EXPECT_EQ(s.client_slot, 1u);
  EXPECT_EQ(s.server_slot, 0u);
  EXPECT_EQ(s.total(), s.reply_recv - s.send);
}

// ---- synthetic tolerance cases (independent of ULIPC_TRACE: these drive
// the assembler directly on hand-built records) ----

TraceRecordView rec(TraceEvent e, std::uint64_t tsc, std::uint64_t span,
                    std::uint16_t slot = 0) {
  TraceRecordView v;
  v.event = e;
  v.tsc = tsc;
  v.arg_b = span;
  v.slot = slot;
  return v;
}

TEST(SpanAssembly, WrappedAwayEdgeLeavesPartialSpanWithoutPoisoningOthers) {
  const std::uint64_t torn = make_span_id(100, 1, 1);
  const std::uint64_t whole = make_span_id(100, 1, 2);
  std::vector<TraceRecordView> records = {
      // Span `torn` lost its kSpanSend to a ring wrap: only the server-side
      // edges and the terminal survive.
      rec(TraceEvent::kSpanDequeue, 20, torn, /*slot=*/0),
      rec(TraceEvent::kSpanReplyEnqueue, 30, torn, 0),
      rec(TraceEvent::kSpanReplyRecv, 40, torn, 1),
      // Span `whole` has its full backbone.
      rec(TraceEvent::kSpanSend, 50, whole, 1),
      rec(TraceEvent::kSpanDequeue, 60, whole, 0),
      rec(TraceEvent::kSpanReplyEnqueue, 70, whole, 0),
      rec(TraceEvent::kSpanReplyRecv, 80, whole, 1),
  };
  const std::vector<Span> spans = assemble_spans(std::move(records));
  ASSERT_EQ(spans.size(), 2u);
  // Output is ordered by send tick; the torn span (send == 0) sorts first.
  EXPECT_EQ(spans[0].id, torn);
  EXPECT_FALSE(spans[0].complete());
  EXPECT_EQ(spans[0].dequeue, 20u) << "surviving edges stay intact";
  EXPECT_EQ(spans[0].service(), 10u);
  EXPECT_EQ(spans[1].id, whole);
  EXPECT_TRUE(spans[1].complete());
  EXPECT_EQ(spans[1].total(), 30u);
}

TEST(SpanAssembly, DuplicateAndLateRecordsNeverOverwriteAnEdge) {
  const std::uint64_t id = make_span_id(7, 2, 9);
  std::vector<TraceRecordView> records = {
      rec(TraceEvent::kSpanSend, 10, id, 1),
      rec(TraceEvent::kSpanDequeue, 20, id, 0),
      // A replayed tail re-delivers the send with a later tsc: the first
      // record in tsc order must win.
      rec(TraceEvent::kSpanSend, 99, id, 3),
      rec(TraceEvent::kSpanReplyEnqueue, 30, id, 0),
      rec(TraceEvent::kSpanReplyRecv, 40, id, 1),
  };
  const std::vector<Span> spans = assemble_spans(std::move(records));
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].complete());
  EXPECT_EQ(spans[0].send, 10u);
  EXPECT_EQ(spans[0].client_slot, 1u) << "slot follows the winning record";
}

TEST(SpanAssembly, WakeRecordsClassifyByLegAcrossTheDequeueEdge) {
  const std::uint64_t id = make_span_id(3, 1, 4);
  std::vector<TraceRecordView> records = {
      rec(TraceEvent::kSpanSend, 10, id, 1),
      rec(TraceEvent::kSpanWakeIssue, 12, id, 1),    // request-leg V()
      rec(TraceEvent::kSpanWakeDeliver, 15, id, 0),  // server sem_p return
      rec(TraceEvent::kSpanDequeue, 20, id, 0),
      rec(TraceEvent::kSpanReplyEnqueue, 30, id, 0),
      rec(TraceEvent::kSpanWakeIssue, 32, id, 0),    // reply-leg V()
      rec(TraceEvent::kSpanWakeDeliver, 35, id, 1),  // client sem_p return
      rec(TraceEvent::kSpanReplyRecv, 40, id, 1),
  };
  const std::vector<Span> spans = assemble_spans(std::move(records));
  ASSERT_EQ(spans.size(), 1u);
  const Span& s = spans[0];
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.wake_issue_req, 12u);
  EXPECT_EQ(s.wake_deliver_req, 15u);
  EXPECT_EQ(s.wake_issue_rep, 32u);
  EXPECT_EQ(s.wake_deliver_rep, 35u);
  EXPECT_EQ(s.wake_in_flight_req(), 3u);
  EXPECT_EQ(s.wake_in_flight_rep(), 3u);
}

// A real TraceRing wrapped past capacity: the assembler over the surviving
// lap must still produce complete spans for the newest requests and at most
// partial ones for the wrapped-away oldest — never a mis-stitched span.
TEST(SpanAssembly, RingWrapDegradesOldestSpansToPartialOnly) {
  std::vector<char> blob(TraceRing::bytes_for(8));
  TraceRing* ring = TraceRing::format(blob.data(), 8);
  // Four spans x four backbone edges = 16 records into an 8-slot ring: the
  // two oldest spans wrap away entirely, the third may be torn.
  for (std::uint32_t i = 1; i <= 4; ++i) {
    const std::uint64_t id = make_span_id(50, 0, i);
    ring->emit(TraceEvent::kSpanSend, 0, 0, id);
    ring->emit(TraceEvent::kSpanDequeue, 0, 0, id);
    ring->emit(TraceEvent::kSpanReplyEnqueue, 0, 0, id);
    ring->emit(TraceEvent::kSpanReplyRecv, 0, 0, id);
  }
  EXPECT_EQ(ring->records_dropped(), 8u);
  const std::vector<Span> spans = assemble_spans(ring->read_all());
  ASSERT_FALSE(spans.empty());
  std::uint32_t complete = 0;
  for (const Span& s : spans) {
    if (s.complete()) ++complete;
    // Whatever survived, every present backbone edge must be ordered.
    if (s.send && s.dequeue) {
      EXPECT_LE(s.send, s.dequeue);
    }
    if (s.dequeue && s.reply_enqueue) {
      EXPECT_LE(s.dequeue, s.reply_enqueue);
    }
    if (s.reply_enqueue && s.reply_recv) {
      EXPECT_LE(s.reply_enqueue, s.reply_recv);
    }
  }
  // The newest two spans fit entirely in the surviving lap.
  EXPECT_GE(complete, 2u);
  EXPECT_LE(spans.size(), 4u);
}

}  // namespace
}  // namespace ulipc::obs
