// RateTracker guards the --watch display against every way a counter delta
// can lie: first sight, a reset_series() generation bump, a backwards
// counter (racy re-bind that kept the generation), and a non-advancing
// clock. The pinned regression: a generation bump between refreshes used
// to be differenced as (new_small - old_big), printing a ~2^64 msgs/s
// spike in the watch column.
#include "obs/rate_tracker.hpp"

#include <cstdint>

#include <gtest/gtest.h>

namespace ulipc::obs {
namespace {

constexpr std::int64_t kSec = 1'000'000'000;

TEST(RateTracker, FirstSightIsInvalidThenSteadyRatesAreExact) {
  RateTracker t;
  EXPECT_FALSE(t.update(0, 1, 1000, 10, 1 * kSec).valid)
      << "no baseline yet: nothing to difference against";

  const RateSample s = t.update(0, 1, 3000, 30, 2 * kSec);
  ASSERT_TRUE(s.valid);
  EXPECT_DOUBLE_EQ(s.msgs_per_s, 2000.0);
  EXPECT_DOUBLE_EQ(s.wakeups_per_s, 20.0);

  // Half-second refresh: the dt normalization must use the real interval.
  const RateSample h = t.update(0, 1, 3500, 35, 2 * kSec + kSec / 2);
  ASSERT_TRUE(h.valid);
  EXPECT_DOUBLE_EQ(h.msgs_per_s, 1000.0);
  EXPECT_DOUBLE_EQ(h.wakeups_per_s, 10.0);
}

TEST(RateTracker, GenerationBumpInvalidatesExactlyOneRefresh) {
  RateTracker t;
  (void)t.update(0, 1, 5'000'000, 100, 1 * kSec);
  ASSERT_TRUE(t.update(0, 1, 6'000'000, 200, 2 * kSec).valid);

  // reset_series(): generation 1 -> 2, counters restart near zero. The
  // naive delta (50 - 6'000'000) is the ~2^64 spike this type exists to
  // suppress.
  const RateSample cross = t.update(0, 2, 50, 1, 3 * kSec);
  EXPECT_FALSE(cross.valid) << "a rate across a generation bump is a lie";

  // One refresh later the new series has a clean baseline again.
  const RateSample after = t.update(0, 2, 1050, 11, 4 * kSec);
  ASSERT_TRUE(after.valid);
  EXPECT_DOUBLE_EQ(after.msgs_per_s, 1000.0);
  EXPECT_DOUBLE_EQ(after.wakeups_per_s, 10.0);
}

TEST(RateTracker, BackwardsCounterWithSameGenerationRebaselines) {
  // A process that re-bind()s fast enough to reuse the generation still
  // must not produce a negative-as-unsigned rate.
  RateTracker t;
  (void)t.update(0, 7, 900, 90, 1 * kSec);
  const RateSample back = t.update(0, 7, 100, 90, 2 * kSec);
  EXPECT_FALSE(back.valid);
  // The backwards snapshot became the new baseline: next refresh is clean.
  const RateSample next = t.update(0, 7, 600, 95, 3 * kSec);
  ASSERT_TRUE(next.valid);
  EXPECT_DOUBLE_EQ(next.msgs_per_s, 500.0);
  EXPECT_DOUBLE_EQ(next.wakeups_per_s, 5.0);
}

TEST(RateTracker, NonAdvancingClockNeverDividesByZero) {
  RateTracker t;
  (void)t.update(0, 1, 100, 1, 1 * kSec);
  const RateSample stuck = t.update(0, 1, 200, 2, 1 * kSec);
  EXPECT_FALSE(stuck.valid) << "dt == 0 must re-baseline, not divide";
}

TEST(RateTracker, SlotsAreIndependent) {
  RateTracker t;
  (void)t.update(0, 1, 1000, 10, 1 * kSec);
  (void)t.update(3, 5, 40, 4, 1 * kSec);
  // A generation bump on slot 3 must not disturb slot 0's baseline.
  EXPECT_FALSE(t.update(3, 6, 0, 0, 2 * kSec).valid);
  const RateSample s0 = t.update(0, 1, 2000, 20, 2 * kSec);
  ASSERT_TRUE(s0.valid);
  EXPECT_DOUBLE_EQ(s0.msgs_per_s, 1000.0);
}

}  // namespace
}  // namespace ulipc::obs
