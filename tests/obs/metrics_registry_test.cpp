// Metrics-registry suite: bucket math round-trips, percentile accuracy,
// the seqlock under a hostile writer (torture loop — also the TSan target
// for the registry's memory ordering), and cross-process visibility of a
// slot written by a forked child through a real ShmChannel binding.
#include "obs/metrics.hpp"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "obs/histogram.hpp"
#include "runtime/native_platform.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc::obs {
namespace {

TEST(HistBuckets, IndexBoundRoundTrip) {
  // Every bucket's own lower bound must land back in that bucket, and the
  // value just below the next bucket's lower bound must too.
  for (std::uint32_t i = 0; i < HistBuckets::kBuckets; ++i) {
    const std::uint64_t lo = HistBuckets::lower_bound(i);
    EXPECT_EQ(HistBuckets::index_of(lo), i) << "lower bound of bucket " << i;
    if (i + 1 < HistBuckets::kBuckets) {
      const std::uint64_t next = HistBuckets::lower_bound(i + 1);
      ASSERT_GT(next, lo) << "bounds must be strictly increasing";
      EXPECT_EQ(HistBuckets::index_of(next - 1), i)
          << "top value of bucket " << i;
    }
  }
}

TEST(HistBuckets, CoversFullRangeMonotonically) {
  EXPECT_EQ(HistBuckets::index_of(0), 0u);
  EXPECT_EQ(HistBuckets::index_of(~std::uint64_t{0}),
            HistBuckets::kBuckets - 1);
  // Exact counting below the linear threshold.
  for (std::uint64_t v = 0; v < HistBuckets::kLinear; ++v) {
    EXPECT_EQ(HistBuckets::index_of(v), v);
  }
}

TEST(HistBuckets, RelativeWidthBounded) {
  // Past the linear region every bucket is <= 12.5% of its lower bound wide
  // (3 mantissa bits) — the histogram's accuracy contract.
  for (std::uint32_t i = HistBuckets::kLinear; i + 1 < HistBuckets::kBuckets;
       ++i) {
    const double lo = static_cast<double>(HistBuckets::lower_bound(i));
    const double hi = static_cast<double>(HistBuckets::upper_bound(i));
    EXPECT_LE((hi - lo) / lo, 0.125 + 1e-9) << "bucket " << i;
  }
}

TEST(LogHistogram, PercentileWithinBucketWidth) {
  LogHistogram h;
  // Uniform 1..10000: p50 ~ 5000, p99 ~ 9900 — within 12.5% after bucketing.
  for (std::uint64_t v = 1; v <= 10'000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 10'000u);
  EXPECT_NEAR(s.mean(), 5000.5, 5000.5 * 0.125);
  EXPECT_NEAR(s.percentile(50), 5000.0, 5000.0 * 0.125);
  EXPECT_NEAR(s.percentile(99), 9900.0, 9900.0 * 0.125);
  EXPECT_NEAR(s.percentile(100), 10'000.0, 10'000.0 * 0.125);
}

TEST(LogHistogram, WeightedRecordMatchesRepeated) {
  LogHistogram a;
  LogHistogram b;
  a.record(1234, 7);
  for (int i = 0; i < 7; ++i) b.record(1234);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.snapshot().sum, b.snapshot().sum);
  EXPECT_DOUBLE_EQ(a.snapshot().percentile(50), b.snapshot().percentile(50));
}

TEST(MetricSlot, BindBumpsGenerationAndZeroes) {
  MetricSlot slot{};
  slot.counters.sends += 5;
  slot.hist(HistKind::kRoundTripNs).record(100);
  slot.bind(SlotRole::kClient, 42);

  SlotSnapshot s;
  ASSERT_TRUE(slot.read_snapshot(&s));
  EXPECT_EQ(s.role, SlotRole::kClient);
  EXPECT_EQ(s.pid, 42u);
  EXPECT_EQ(s.generation, 1u);
  EXPECT_EQ(s.counters.sends, 0u) << "bind must zero the series";
  EXPECT_EQ(s.h(HistKind::kRoundTripNs).count, 0u);

  slot.reset_series();
  ASSERT_TRUE(slot.read_snapshot(&s));
  EXPECT_EQ(s.generation, 2u);
  EXPECT_EQ(s.pid, 42u) << "reset_series keeps ownership";
}

// Seqlock torture: one writer alternates hot-path adds with structural
// resets; a reader hammers read_snapshot. Invariant checked on every
// successful snapshot: within one generation the counter series is
// monotonic (a torn read across a reset would show generation g with
// counters from generation g-1 — i.e. a value DROP at equal generation).
TEST(MetricSlot, SeqlockTortureKeepsSnapshotsCoherent) {
  MetricSlot slot{};
  slot.bind(SlotRole::kServer, 1);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 64; ++i) {
        ++slot.counters.sends;
        slot.hist(HistKind::kRoundTripNs).record(1000 + i);
      }
      slot.reset_series();
    }
  });

  std::uint32_t prev_gen = 0;
  std::uint64_t prev_sends = 0;
  std::uint64_t coherent = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    SlotSnapshot s;
    if (!slot.read_snapshot(&s)) continue;  // writer kept resetting; retry
    ++coherent;
    ASSERT_GE(s.generation, prev_gen) << "generation must be monotonic";
    if (s.generation == prev_gen) {
      ASSERT_GE(s.counters.sends, prev_sends)
          << "counter dropped inside one generation: torn across a reset";
    }
    ASSERT_LE(s.counters.sends, 64u) << "counters from a stale generation";
    prev_gen = s.generation;
    prev_sends = s.counters.sends;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(coherent, 0u) << "reader never got a coherent snapshot";
}

// A forked child binds its slot through the real channel API and runs the
// hot-path update; the parent (a different process) must observe the
// child's identity and counts through the shared mapping.
TEST(MetricsRegistry, CrossProcessVisibilityThroughChannel) {
  ShmChannel::Config cfg;
  cfg.max_clients = 1;
  cfg.queue_capacity = 16;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  ASSERT_TRUE(channel.has_obs());

  constexpr std::uint64_t kSends = 12'345;
  ChildProcess child = ChildProcess::spawn([&] {
    NativePlatform plat;
    channel.bind_client_obs(plat, 0);
    for (std::uint64_t i = 0; i < kSends; ++i) {
      ++plat.counters().sends;
      plat.obs_round_trip(2'000, 1);
    }
    return 0;
  });
  const auto child_pid = static_cast<std::uint32_t>(child.pid());
  ASSERT_EQ(child.join(), 0);

  SlotSnapshot s;
  ASSERT_TRUE(
      channel.obs().slot(channel.client_obs_slot(0)).read_snapshot(&s));
  EXPECT_EQ(s.role, SlotRole::kClient);
  EXPECT_EQ(s.pid, child_pid);
  EXPECT_EQ(s.counters.sends, kSends);
  EXPECT_EQ(s.h(HistKind::kRoundTripNs).count, kSends);
  EXPECT_NEAR(s.h(HistKind::kRoundTripNs).percentile(50), 2'000.0,
              2'000.0 * 0.125);

  // The server slot was never bound: it must read as unbound and empty.
  SlotSnapshot srv;
  ASSERT_TRUE(
      channel.obs().slot(channel.server_obs_slot()).read_snapshot(&srv));
  EXPECT_FALSE(srv.bound());
  EXPECT_EQ(srv.counters.sends, 0u);
}

TEST(MetricsRegistry, ObsHeaderLayoutIsSelfContained) {
  ShmChannel::Config cfg;
  cfg.max_clients = 2;
  cfg.queue_capacity = 16;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);

  const ObsHeader& oh = channel.obs();
  EXPECT_EQ(oh.magic, ObsHeader::kMagic);
  EXPECT_EQ(oh.version, ObsHeader::kVersion);
  // server + clients + duplex threads, plus the shared recovery ring.
  EXPECT_EQ(oh.slot_count, 1u + 2u * cfg.max_clients);
  EXPECT_EQ(oh.ring_count(), oh.slot_count + 1u);
  EXPECT_EQ(oh.trace_compiled != 0, kTraceCompiledIn);
  // The stamped calibration must be usable (positive tick ratio).
  const double ns_per_tick = std::bit_cast<double>(
      oh.tsc_ns_per_tick_bits.load(std::memory_order_relaxed));
  EXPECT_GT(ns_per_tick, 0.0);
}

}  // namespace
}  // namespace ulipc::obs
