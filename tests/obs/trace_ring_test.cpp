// Trace-ring suite: emit/readback fidelity, wrap-around keeping only the
// newest lap, torn-record rejection under a concurrent writer, and the
// recovery satellite — reclaiming a dead client must bump the channel's
// RecoveryCounters and (when tracing is compiled in) log a kRecovery event
// to the shared recovery ring.
#include "obs/trace_ring.hpp"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "queue/msg_pool.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc::obs {
namespace {

/// A ring formatted over heap storage (the shm path is covered by the
/// channel test below; the protocol is identical).
class RingFixture {
 public:
  explicit RingFixture(std::uint32_t capacity)
      : blob_(TraceRing::bytes_for(capacity)),
        ring_(TraceRing::format(blob_.data(), capacity)) {}
  TraceRing& ring() { return *ring_; }

 private:
  std::vector<char> blob_;
  TraceRing* ring_;
};

TEST(TraceRing, EmitReadbackPreservesOrderAndPayload) {
  RingFixture f(16);
  for (std::uint32_t i = 0; i < 10; ++i) {
    f.ring().emit(TraceEvent::kEnqueue, /*slot_id=*/3, /*a=*/i,
                  /*b=*/100 + i);
  }
  const auto recs = f.ring().read_all();
  ASSERT_EQ(recs.size(), 10u);
  std::uint64_t prev_tsc = 0;
  for (std::uint32_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].seqno, i + 1);
    EXPECT_EQ(recs[i].event, TraceEvent::kEnqueue);
    EXPECT_EQ(recs[i].slot, 3u);
    EXPECT_EQ(recs[i].arg_a, i);
    EXPECT_EQ(recs[i].arg_b, 100u + i);
    EXPECT_GE(recs[i].tsc, prev_tsc) << "timestamps must be non-decreasing";
    prev_tsc = recs[i].tsc;
  }
}

TEST(TraceRing, WrapKeepsOnlyTheNewestLap) {
  constexpr std::uint32_t kCap = 8;
  RingFixture f(kCap);
  constexpr std::uint64_t kTotal = 3 * kCap + 5;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    f.ring().emit(TraceEvent::kDequeue, 0, static_cast<std::uint32_t>(i));
  }
  const auto recs = f.ring().read_all();
  ASSERT_EQ(recs.size(), kCap) << "a full ring returns exactly one lap";
  for (std::uint32_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(recs[i].seqno, kTotal - kCap + i + 1)
        << "oldest surviving record must be head - capacity";
  }
}

TEST(TraceRing, EmptyRingReadsEmpty) {
  RingFixture f(8);
  EXPECT_TRUE(f.ring().read_all().empty());
}

// Reader racing a fast writer: every record the reader accepts must be
// internally consistent (seqno names its position and arg_a echoes the
// seqno the writer stored), i.e. overwrites are detected, never blended.
TEST(TraceRing, ConcurrentReaderNeverSeesTornRecords) {
  constexpr std::uint32_t kCap = 16;  // small: maximum overwrite pressure
  RingFixture f(kCap);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // arg_a mirrors the 1-based seqno so the reader can cross-check.
      f.ring().emit(TraceEvent::kSleepBegin, 7, ++i);
    }
  });

  std::uint64_t validated = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    for (const TraceRecordView& v : f.ring().read_all()) {
      ASSERT_EQ(v.arg_a, v.seqno)
          << "payload from one lap, seqno from another: torn record";
      ASSERT_EQ(v.event, TraceEvent::kSleepBegin);
      ASSERT_EQ(v.slot, 7u);
      ++validated;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(validated, 0u) << "reader never validated a single record";
}

// Satellite: reclaiming a crashed client is recorded in the registry's
// RecoveryCounters and in the shared recovery ring (ring index slot_count),
// so post-mortem `ulipc-stat` runs can see that recovery happened at all.
TEST(TraceRing, ReclaimOfDeadClientIsRecordedInRegistry) {
  ShmChannel::Config cfg;
  cfg.max_clients = 1;
  cfg.queue_capacity = 16;
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);
  ASSERT_TRUE(channel.has_obs());

  // Child leaks one pool node (allocate, then exit before linking it).
  ChildProcess victim = ChildProcess::spawn([&] {
    return channel.node_pool().allocate() != kNullIndex ? 0 : 1;
  });
  channel.register_client_pid(0, static_cast<std::uint32_t>(victim.pid()));
  ASSERT_EQ(victim.join(), 0);
  ASSERT_TRUE(channel.client_crashed(0));

  const ShmChannel::ReclaimStats rs = channel.reclaim_client(0);
  EXPECT_EQ(rs.nodes_reclaimed, 1u);

  const ObsHeader& oh = channel.obs();
  EXPECT_EQ(oh.recovery.sweeps.load(), 1u);
  EXPECT_EQ(oh.recovery.nodes_reclaimed.load(), rs.nodes_reclaimed);
  EXPECT_EQ(oh.recovery.drained_messages.load(), rs.drained_messages);

  const auto* recovery_ring =
      static_cast<const TraceRing*>(oh.ring_blob(oh.slot_count));
  const auto recs = recovery_ring->read_all();
  if (kTraceCompiledIn) {
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].event, TraceEvent::kRecovery);
    EXPECT_EQ(recs[0].slot, 0u) << "arg: which client seat was swept";
  } else {
    EXPECT_TRUE(recs.empty()) << "no emission when ULIPC_TRACE=OFF";
  }

  // A second sweep of the (now clean) seat still counts as a sweep pass
  // but reclaims nothing.
  channel.register_client_pid(0, static_cast<std::uint32_t>(victim.pid()));
  const ShmChannel::ReclaimStats rs2 = channel.reclaim_client(0);
  EXPECT_EQ(rs2.nodes_reclaimed, 0u);
  EXPECT_EQ(oh.recovery.sweeps.load(), 2u);
  EXPECT_EQ(oh.recovery.nodes_reclaimed.load(), rs.nodes_reclaimed);
}

}  // namespace
}  // namespace ulipc::obs
