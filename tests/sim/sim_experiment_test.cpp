#include "sim/sim_experiment.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ulipc::sim {
namespace {

struct ExpParam {
  ProtocolKind protocol;
  std::uint32_t clients;
};

class EchoExperimentTest : public ::testing::TestWithParam<ExpParam> {};

TEST_P(EchoExperimentTest, AllRepliesVerifiedOnSgi) {
  SimExperimentConfig cfg;
  cfg.machine = Machine::sgi_indy();
  cfg.policy = cfg.machine.default_policy;
  cfg.protocol = GetParam().protocol;
  cfg.clients = GetParam().clients;
  cfg.messages_per_client = 300;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_EQ(r.verified_replies,
            static_cast<std::uint64_t>(cfg.clients) * cfg.messages_per_client);
  EXPECT_EQ(r.server.echo_messages,
            static_cast<std::uint64_t>(cfg.clients) * cfg.messages_per_client);
  EXPECT_GT(r.throughput_msgs_per_ms, 0.0);
  EXPECT_GT(r.end_time_ns, 0);
}

TEST_P(EchoExperimentTest, AllRepliesVerifiedOnIbm) {
  SimExperimentConfig cfg;
  cfg.machine = Machine::ibm_p4();
  cfg.policy = cfg.machine.default_policy;
  cfg.protocol = GetParam().protocol;
  cfg.clients = GetParam().clients;
  cfg.messages_per_client = 300;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_EQ(r.verified_replies,
            static_cast<std::uint64_t>(cfg.clients) * cfg.messages_per_client);
}

TEST_P(EchoExperimentTest, AllRepliesVerifiedOnMultiprocessor) {
  SimExperimentConfig cfg;
  cfg.machine = Machine::sgi_challenge(4);
  cfg.policy = cfg.machine.default_policy;
  cfg.protocol = GetParam().protocol;
  cfg.clients = GetParam().clients;
  cfg.messages_per_client = 200;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_EQ(r.verified_replies,
            static_cast<std::uint64_t>(cfg.clients) * cfg.messages_per_client);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsTimesClients, EchoExperimentTest,
    ::testing::Values(ExpParam{ProtocolKind::kBss, 1},
                      ExpParam{ProtocolKind::kBss, 3},
                      ExpParam{ProtocolKind::kBsw, 1},
                      ExpParam{ProtocolKind::kBsw, 3},
                      ExpParam{ProtocolKind::kBswy, 1},
                      ExpParam{ProtocolKind::kBswy, 3},
                      ExpParam{ProtocolKind::kBsls, 1},
                      ExpParam{ProtocolKind::kBsls, 3},
                      ExpParam{ProtocolKind::kSysv, 1},
                      ExpParam{ProtocolKind::kSysv, 3}),
    [](const ::testing::TestParamInfo<ExpParam>& pinfo) {
      return std::string(protocol_name(pinfo.param.protocol)) +
             std::to_string(pinfo.param.clients);
    });

TEST(SimExperiment, DeterministicAcrossRuns) {
  SimExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kBsls;
  cfg.clients = 3;
  cfg.messages_per_client = 200;
  const SimExperimentResult a = run_sim_experiment(cfg);
  const SimExperimentResult b = run_sim_experiment(cfg);
  EXPECT_EQ(a.end_time_ns, b.end_time_ns);
  EXPECT_DOUBLE_EQ(a.throughput_msgs_per_ms, b.throughput_msgs_per_ms);
  EXPECT_EQ(a.client_stats_total.yields, b.client_stats_total.yields);
  EXPECT_EQ(a.server_counters.blocks, b.server_counters.blocks);
}

TEST(SimExperiment, BssNeverBlocks) {
  SimExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kBss;
  cfg.clients = 2;
  cfg.messages_per_client = 200;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_EQ(r.server_counters.blocks, 0u);
  EXPECT_EQ(r.client_counters_total.blocks, 0u);
  EXPECT_EQ(r.server_counters.wakeups, 0u);
}

TEST(SimExperiment, BswBlocksOnUniprocessor) {
  SimExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kBsw;
  cfg.clients = 1;
  cfg.messages_per_client = 200;
  const SimExperimentResult r = run_sim_experiment(cfg);
  // Synchronous single-client BSW: client and server block every round trip
  // (the 4-syscall regime of paper 3.1).
  EXPECT_GT(r.client_counters_total.blocks, cfg.messages_per_client / 2);
  EXPECT_GT(r.server_counters.blocks, cfg.messages_per_client / 2);
  EXPECT_GT(r.client_counters_total.wakeups, 0u);
}

TEST(SimExperiment, BslsSpinCountersPopulated) {
  SimExperimentConfig cfg;
  // Fixed bound: the 3%-fallthrough claim is tied to the paper's
  // MAX_SPIN = 20 (adaptive BSLS retunes the bound away from it).
  cfg.protocol = ProtocolKind::kBslsFixed;
  cfg.clients = 1;
  cfg.messages_per_client = 300;
  cfg.max_spin = 20;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_GT(r.client_counters_total.spin_entries, 0u);
  EXPECT_GT(r.client_counters_total.spin_iters, 0u);
  // Paper: at MAX_SPIN=20 a single client blocks only ~3% of the time.
  const double fallthrough_rate =
      static_cast<double>(r.client_counters_total.spin_fallthroughs) /
      static_cast<double>(r.client_counters_total.spin_entries);
  EXPECT_LT(fallthrough_rate, 0.10);
}

TEST(SimExperiment, BslsMaxSpinZeroActsLikeBswy) {
  SimExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kBslsFixed;  // adaptive would raise the bound
  cfg.clients = 1;
  cfg.messages_per_client = 200;
  cfg.max_spin = 0;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_EQ(r.verified_replies, cfg.messages_per_client);
  EXPECT_EQ(r.client_counters_total.polls, 0u);
}

TEST(SimExperiment, HandoffModeCompletes) {
  SimExperimentConfig cfg;
  cfg.machine = Machine::linux_486();
  cfg.policy = PolicyKind::kModYield;
  cfg.protocol = ProtocolKind::kBswy;
  cfg.clients = 2;
  cfg.messages_per_client = 200;
  cfg.use_handoff = true;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_EQ(r.verified_replies, 400u);
  EXPECT_GT(r.client_stats_total.handoffs, 0u);
}

TEST(SimExperiment, ServerWorkReducesThroughput) {
  SimExperimentConfig base;
  base.protocol = ProtocolKind::kBss;
  base.clients = 1;
  base.messages_per_client = 200;
  SimExperimentConfig loaded = base;
  loaded.server_work_us = 200.0;
  const double fast = run_sim_experiment(base).throughput_msgs_per_ms;
  const double slow = run_sim_experiment(loaded).throughput_msgs_per_ms;
  EXPECT_LT(slow, fast * 0.8);
}

TEST(SimExperiment, TickOnlyLinuxReproduces33msLatency) {
  // Paper 6: unpatched Linux 1.0.32 showed ~33 ms BSS response instead of
  // the expected ~120 us.
  SimExperimentConfig cfg;
  cfg.machine = Machine::linux_486();
  cfg.policy = PolicyKind::kTickOnly;
  cfg.protocol = ProtocolKind::kBss;
  cfg.clients = 1;
  cfg.messages_per_client = 50;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_GT(r.round_trip_us, 10'000.0) << "expected multi-ms round trips";
  EXPECT_LT(r.round_trip_us, 100'000.0);
}

TEST(SimExperiment, ModYieldLinuxRestores120usLatency) {
  SimExperimentConfig cfg;
  cfg.machine = Machine::linux_486();
  cfg.policy = PolicyKind::kModYield;
  cfg.protocol = ProtocolKind::kBss;
  cfg.clients = 1;
  cfg.messages_per_client = 300;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_GT(r.round_trip_us, 60.0);
  EXPECT_LT(r.round_trip_us, 240.0) << "paper: ~120 us on the 486";
}

TEST(SimExperiment, SgiSingleClientMatchesPaperLatency) {
  // Figure 2a: ~119 us round trip at one client.
  SimExperimentConfig cfg;
  cfg.machine = Machine::sgi_indy();
  cfg.protocol = ProtocolKind::kBss;
  cfg.clients = 1;
  cfg.messages_per_client = 500;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_GT(r.round_trip_us, 95.0);
  EXPECT_LT(r.round_trip_us, 145.0);
  // ~2-3 yields per round trip per process (paper reports ~2.5).
  const double ypm = r.client_yields_per_message(cfg.messages_per_client);
  EXPECT_GE(ypm, 1.5);
  EXPECT_LE(ypm, 3.5);
}

TEST(SimExperiment, IbmSingleClientMatchesPaperThroughput) {
  // Figure 2b: ~32 msgs/ms at one client.
  SimExperimentConfig cfg;
  cfg.machine = Machine::ibm_p4();
  cfg.protocol = ProtocolKind::kBss;
  cfg.clients = 1;
  cfg.messages_per_client = 500;
  const SimExperimentResult r = run_sim_experiment(cfg);
  EXPECT_GT(r.throughput_msgs_per_ms, 25.0);
  EXPECT_LT(r.throughput_msgs_per_ms, 40.0);
}

}  // namespace
}  // namespace ulipc::sim
