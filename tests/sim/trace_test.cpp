// Schedule tracing: event recording, ordering, formatting, and the
// enable/disable switch.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"

namespace ulipc::sim {
namespace {

Machine tiny_machine() {
  Machine m;
  m.name = "trace-test";
  m.cpus = 1;
  m.costs = Costs{};
  m.costs.quantum = 1'000'000'000;
  m.yield_cost_points = {{1, 1'000}};
  m.default_policy = PolicyKind::kFixed;
  return m;
}

TEST(Trace, DisabledByDefault) {
  SimKernel k(tiny_machine());
  k.spawn("p", [&] { k.yield_syscall(); });
  k.run();
  EXPECT_TRUE(k.trace().empty());
}

TEST(Trace, RecordsLifecycleEvents) {
  SimKernel k(tiny_machine());
  k.enable_trace(true);
  SimSemaphore sem;
  k.spawn("a", [&] { k.sem_p(sem); });
  k.spawn("b", [&] { k.sem_v(sem); });
  k.run();
  const auto& t = k.trace();
  ASSERT_FALSE(t.empty());

  auto count = [&](TraceKind kind) {
    return std::count_if(t.begin(), t.end(),
                         [&](const TraceEvent& e) { return e.kind == kind; });
  };
  EXPECT_EQ(count(TraceKind::kDispatch), 3) << "a, b, a-again";
  EXPECT_EQ(count(TraceKind::kBlock), 1);
  EXPECT_EQ(count(TraceKind::kWake), 1);
  EXPECT_EQ(count(TraceKind::kExit), 2);
}

TEST(Trace, TimesNonDecreasingPerCpu) {
  SimKernel k(tiny_machine());
  k.enable_trace(true);
  for (int i = 0; i < 3; ++i) {
    k.spawn("p", [&] {
      for (int j = 0; j < 5; ++j) k.yield_syscall();
    });
  }
  k.run();
  std::int64_t prev = 0;
  for (const TraceEvent& e : k.trace()) {
    if (e.cpu != 0) continue;  // single CPU anyway
    EXPECT_GE(e.time_ns, prev);
    prev = e.time_ns;
  }
}

TEST(Trace, BlockEventNamesPid) {
  SimKernel k(tiny_machine());
  k.enable_trace(true);
  SimSemaphore sem;
  k.spawn("waiter", [&] { k.sem_p(sem); });
  k.spawn("poster", [&] { k.sem_v(sem); });
  k.run();
  const auto it =
      std::find_if(k.trace().begin(), k.trace().end(), [](const TraceEvent& e) {
        return e.kind == TraceKind::kBlock;
      });
  ASSERT_NE(it, k.trace().end());
  EXPECT_EQ(it->pid, 0);
}

TEST(Trace, FormatContainsKindAndPid) {
  const TraceEvent e{1234, 7, 0, TraceKind::kYieldSwitch, 2};
  const std::string s = format_trace_event(e);
  EXPECT_NE(s.find("1234"), std::string::npos);
  EXPECT_NE(s.find("pid7"), std::string::npos);
  EXPECT_NE(s.find("yield-switch"), std::string::npos);
}

TEST(Trace, AllKindNamesDistinct) {
  const TraceKind kinds[] = {
      TraceKind::kDispatch, TraceKind::kYieldNoop, TraceKind::kYieldSwitch,
      TraceKind::kPreempt,  TraceKind::kBlock,     TraceKind::kWake,
      TraceKind::kSleep,    TraceKind::kTimerFire, TraceKind::kHandoff,
      TraceKind::kExit};
  std::set<std::string> names;
  for (const TraceKind kind : kinds) {
    EXPECT_TRUE(names.insert(trace_kind_name(kind)).second);
  }
}

}  // namespace
}  // namespace ulipc::sim
