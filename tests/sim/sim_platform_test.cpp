// SimPlatform: cost accounting, per-process counters, and the platform
// split of busy_wait/poll_queue (yield on uniprocessor, delay slice on
// multiprocessor, handoff when enabled).
#include "sim/sim_platform.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "sim/machine.hpp"
#include "sim/sim_kernel.hpp"

namespace ulipc::sim {
namespace {

Machine cost_machine(int cpus = 1) {
  Machine m;
  m.name = "cost-test";
  m.cpus = cpus;
  m.costs = Costs{};
  m.costs.enqueue = 100;
  m.costs.dequeue = 200;
  m.costs.empty_check = 10;
  m.costs.tas = 5;
  m.costs.ctx_switch = 1'000;
  m.costs.semop = 400;
  m.costs.wake = 50;
  m.costs.poll_slice = 7'000;
  m.costs.quantum = 1'000'000'000;
  m.yield_cost_points = {{1, 3'000}};
  m.default_policy = PolicyKind::kFixed;
  return m;
}

TEST(SimPlatform, ChargesConfiguredCosts) {
  SimKernel k(cost_machine());
  SimPlatform plat(k);
  SimEndpoint ep;
  k.spawn("p", [&] {
    Message m;
    plat.enqueue(ep, Message(Op::kEcho, 0, 1.0));  // 100
    plat.dequeue(ep, &m);                          // 200
    plat.queue_empty(ep);                          // 10
    plat.tas_awake(ep);                            // 5
    plat.clear_awake(ep);                          // 5
    plat.set_awake(ep);                            // 5
    plat.work_us(2.0);                             // 2000
  });
  k.run();
  EXPECT_EQ(k.process(0).stats.cpu_ns, 100 + 200 + 10 + 3 * 5 + 2'000);
}

TEST(SimPlatform, FailedOpsStillCharge) {
  SimKernel k(cost_machine());
  SimPlatform plat(k);
  SimEndpoint ep(1);  // capacity 1
  k.spawn("p", [&] {
    Message m;
    EXPECT_FALSE(plat.dequeue(ep, &m));                          // 200
    EXPECT_TRUE(plat.enqueue(ep, Message(Op::kEcho, 0, 1.0)));   // 100
    EXPECT_FALSE(plat.enqueue(ep, Message(Op::kEcho, 0, 2.0)));  // 100 (full)
  });
  k.run();
  EXPECT_EQ(k.process(0).stats.cpu_ns, 200 + 100 + 100);
}

TEST(SimPlatform, UniprocessorBusyWaitIsYield) {
  SimKernel k(cost_machine(1));
  SimPlatform plat(k);
  SimEndpoint ep;
  k.spawn("p", [&] { plat.busy_wait(ep); });
  k.run();
  EXPECT_EQ(k.process(0).stats.yields, 1u);
}

TEST(SimPlatform, MultiprocessorBusyWaitIsPollSlice) {
  SimKernel k(cost_machine(2));
  SimPlatform plat(k);
  SimEndpoint ep;
  k.spawn("p", [&] { plat.busy_wait(ep); });
  k.run();
  EXPECT_EQ(k.process(0).stats.yields, 0u) << "no syscall on MP busy-wait";
  EXPECT_EQ(k.process(0).stats.cpu_ns, 7'000);
}

TEST(SimPlatform, HandoffModeRoutesBusyWait) {
  SimKernel k(cost_machine(1));
  SimPlatform plat(k);
  plat.use_handoff(true);
  SimEndpoint ep;
  int partner_ran = 0;
  k.spawn("caller", [&] { plat.busy_wait(ep); });
  ep.partner_pid = k.spawn("partner", [&] { partner_ran = 1; });
  k.run();
  EXPECT_EQ(k.process(0).stats.handoffs, 1u);
  EXPECT_EQ(k.process(0).stats.yields, 0u);
  EXPECT_EQ(partner_ran, 1);
}

TEST(SimPlatform, CountersBelongToCurrentProcess) {
  SimKernel k(cost_machine());
  SimPlatform plat(k);  // one platform shared by both fibers
  k.spawn("a", [&] { plat.counters().sends = 11; });
  k.spawn("b", [&] { plat.counters().sends = 22; });
  k.run();
  EXPECT_EQ(k.process(0).counters.sends, 11u);
  EXPECT_EQ(k.process(1).counters.sends, 22u);
}

TEST(SimPlatform, TimeNsIsVirtual) {
  SimKernel k(cost_machine());
  SimPlatform plat(k);
  std::int64_t before = -1;
  std::int64_t after = -1;
  k.spawn("p", [&] {
    before = plat.time_ns();
    plat.work_us(1'000.0);  // 1 ms virtual
    after = plat.time_ns();
  });
  k.run();
  EXPECT_EQ(after - before, 1'000'000);
}

TEST(SimPlatform, SleepSecondsIsVirtual) {
  SimKernel k(cost_machine());
  SimPlatform plat(k);
  k.spawn("p", [&] { plat.sleep_seconds(2); });
  const auto wall0 = std::chrono::steady_clock::now();
  k.run();
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall0)
                           .count();
  EXPECT_GE(k.now(), 2'000'000'000);
  EXPECT_LT(wall_ms, 1'000) << "virtual sleep must not consume wall time";
}

TEST(SimPlatform, SatisfiesPlatformConcept) {
  static_assert(Platform<SimPlatform>);
  SUCCEED();
}

}  // namespace
}  // namespace ulipc::sim
