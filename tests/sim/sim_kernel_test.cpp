#include "sim/sim_kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace ulipc::sim {
namespace {

/// Machine with round numbers for precise accounting tests.
Machine test_machine(int cpus = 1) {
  Machine m;
  m.name = "test";
  m.cpus = cpus;
  m.costs = Costs{};
  m.costs.ctx_switch = 1'000;
  m.costs.semop = 2'000;
  m.costs.wake = 500;
  m.costs.msgsnd = 3'000;
  m.costs.msgrcv = 3'000;
  m.costs.handoff = 800;
  m.costs.quantum = 100'000;
  m.costs.poll_slice = 25'000;
  m.yield_cost_points = {{1, 4'000}};  // flat 4 us
  m.default_policy = PolicyKind::kFixed;
  m.defer_base_ns = 10'000;
  return m;
}

TEST(SimKernel, RunsSingleProcessToCompletion) {
  SimKernel k(test_machine());
  int ran = 0;
  k.spawn("solo", [&] {
    k.op_sync();
    k.op_finish(OpKind::kCharge, 5'000);
    ran = 1;
  });
  k.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(k.process(0).state, ProcState::kDone);
  // ctx_switch (dispatch) + 5 us of work.
  EXPECT_EQ(k.now(), 6'000);
  EXPECT_EQ(k.process(0).stats.cpu_ns, 5'000);
}

TEST(SimKernel, ChargeAccumulatesTime) {
  SimKernel k(test_machine());
  k.spawn("p", [&] {
    for (int i = 0; i < 10; ++i) {
      k.op_sync();
      k.op_finish(OpKind::kCharge, 1'000);
    }
  });
  k.run();
  EXPECT_EQ(k.process(0).stats.cpu_ns, 10'000);
}

TEST(SimKernel, FixedPolicyYieldRotates) {
  SimKernel k(test_machine());
  std::vector<int> order;
  for (int pid = 0; pid < 2; ++pid) {
    k.spawn("p" + std::to_string(pid), [&, pid] {
      for (int i = 0; i < 3; ++i) {
        order.push_back(pid);
        k.yield_syscall();
      }
    });
  }
  k.run();
  // Round-robin: 0 1 0 1 0 1.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(k.process(0).stats.yields, 3u);
  EXPECT_GE(k.process(0).stats.voluntary_switches, 2u);
}

TEST(SimKernel, TickOnlyPolicyIgnoresYield) {
  Machine m = test_machine();
  m.default_policy = PolicyKind::kTickOnly;
  SimKernel k(m);
  std::vector<int> order;
  for (int pid = 0; pid < 2; ++pid) {
    k.spawn("p", [&, pid] {
      for (int i = 0; i < 3; ++i) {
        order.push_back(pid);
        k.yield_syscall();
      }
    });
  }
  k.run();
  // All of p0 first (yields are no-ops; total work < quantum).
  EXPECT_EQ(order, (std::vector<int>{0, 0, 0, 1, 1, 1}));
}

TEST(SimKernel, AgingPolicyDefersThenSwitches) {
  Machine m = test_machine();
  m.default_policy = PolicyKind::kAging;
  m.defer_base_ns = 10'000;  // flat (defer_scaled_by_ready defaults true;
  m.defer_scaled_by_ready = false;  // with 1 other ready it is the same)
  SimKernel k(m);
  std::vector<int> order;
  for (int pid = 0; pid < 2; ++pid) {
    k.spawn("p", [&, pid] {
      for (int i = 0; i < 6; ++i) {
        order.push_back(pid);
        k.yield_syscall();
      }
    });
  }
  k.run();
  // Each yield costs 4 us; the slice threshold is 10 us, so the third yield
  // of each slice switches: runs of 3 per process.
  EXPECT_EQ(order, (std::vector<int>{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1}));
}

TEST(SimKernel, QuantumPreemptsAtOpBoundary) {
  Machine m = test_machine();
  m.default_policy = PolicyKind::kTickOnly;
  m.costs.quantum = 10'000;
  SimKernel k(m);
  std::vector<int> order;
  for (int pid = 0; pid < 2; ++pid) {
    k.spawn("p", [&, pid] {
      for (int i = 0; i < 4; ++i) {
        order.push_back(pid);
        k.op_sync();
        k.op_finish(OpKind::kCharge, 6'000);  // two ops exceed the quantum
      }
    });
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1, 1, 0, 0, 1, 1}));
  EXPECT_GE(k.process(0).stats.involuntary_switches, 1u);
}

TEST(SimKernel, SemaphoreTransfersCount) {
  SimKernel k(test_machine());
  SimSemaphore sem;
  std::vector<std::string> events;
  k.spawn("consumer", [&] {
    events.push_back("c:wait");
    k.sem_p(sem);
    events.push_back("c:woke");
  });
  k.spawn("producer", [&] {
    events.push_back("p:post");
    k.sem_v(sem);
    events.push_back("p:after-post");
  });
  k.run();
  // V readies the consumer but does NOT force a reschedule: the producer
  // continues to its next line first.
  EXPECT_EQ(events, (std::vector<std::string>{"c:wait", "p:post",
                                              "p:after-post", "c:woke"}));
  EXPECT_EQ(sem.count, 0);
  EXPECT_EQ(sem.total_posts, 1u);
  EXPECT_EQ(sem.total_waits, 1u);
}

TEST(SimKernel, SemaphoreCountsAccumulate) {
  SimKernel k(test_machine());
  SimSemaphore sem;
  k.spawn("p", [&] {
    for (int i = 0; i < 5; ++i) k.sem_v(sem);
    for (int i = 0; i < 5; ++i) k.sem_p(sem);  // none may block
  });
  k.run();
  EXPECT_EQ(sem.count, 0);
  EXPECT_EQ(sem.max_count_seen, 5);
  EXPECT_EQ(k.process(0).stats.blocks, 0u);
}

TEST(SimKernel, SemaphoreWakesInFifoOrder) {
  SimKernel k(test_machine());
  SimSemaphore sem;
  std::vector<int> wake_order;
  for (int pid = 0; pid < 3; ++pid) {
    k.spawn("w", [&, pid] {
      k.sem_p(sem);
      wake_order.push_back(pid);
    });
  }
  k.spawn("poster", [&] {
    for (int i = 0; i < 3; ++i) k.sem_v(sem);
  });
  k.run();
  EXPECT_EQ(wake_order, (std::vector<int>{0, 1, 2}));
}

TEST(SimKernel, SleepAdvancesVirtualTime) {
  SimKernel k(test_machine());
  k.spawn("sleeper", [&] { k.sleep_ns(1'000'000'000); });
  k.run();
  EXPECT_GE(k.now(), 1'000'000'000);
  // Real time was obviously far less; virtual sleep is free.
}

TEST(SimKernel, SleepersWakeInTimeOrder) {
  SimKernel k(test_machine());
  std::vector<int> wake_order;
  k.spawn("late", [&] {
    k.sleep_ns(2'000'000);
    wake_order.push_back(1);
  });
  k.spawn("early", [&] {
    k.sleep_ns(1'000'000);
    wake_order.push_back(0);
  });
  k.run();
  EXPECT_EQ(wake_order, (std::vector<int>{0, 1}));
}

TEST(SimKernel, DeadlockDetected) {
  SimKernel k(test_machine());
  SimSemaphore sem;
  k.spawn("stuck", [&] { k.sem_p(sem); });
  EXPECT_THROW(k.run(), SimDeadlock);
}

TEST(SimKernel, DeadlockMessageNamesProcesses) {
  SimKernel k(test_machine());
  SimSemaphore sem;
  k.spawn("alice", [&] { k.sem_p(sem); });
  try {
    k.run();
    FAIL() << "expected SimDeadlock";
  } catch (const SimDeadlock& e) {
    EXPECT_NE(std::string(e.what()).find("alice"), std::string::npos);
  }
}

TEST(SimKernel, OpGuardTripsAsTimeout) {
  SimKernel k(test_machine());
  k.set_max_ops(100);
  k.spawn("spinner", [&] {
    for (;;) {
      k.op_sync();
      k.op_finish(OpKind::kCharge, 10);
    }
  });
  EXPECT_THROW(k.run(), SimTimeout);
}

TEST(SimKernel, VirtualTimeGuardTrips) {
  SimKernel k(test_machine());
  k.set_max_virtual_ns(1'000'000);
  k.spawn("spinner", [&] {
    for (;;) {
      k.op_sync();
      k.op_finish(OpKind::kCharge, 100'000);
    }
  });
  EXPECT_THROW(k.run(), SimTimeout);
}

// ------------------------------------------------------------------ handoff

TEST(SimKernel, HandoffToSpecificPid) {
  SimKernel k(test_machine());
  std::vector<int> order;
  k.spawn("a", [&] {
    order.push_back(0);
    k.handoff_syscall(2);  // jump the queue: c runs next, not b
    order.push_back(0);
  });
  k.spawn("b", [&] { order.push_back(1); });
  k.spawn("c", [&] { order.push_back(2); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 0}));
  EXPECT_EQ(k.process(0).stats.handoffs, 1u);
}

TEST(SimKernel, HandoffAnyRotates) {
  SimKernel k(test_machine());
  std::vector<int> order;
  k.spawn("a", [&] {
    order.push_back(0);
    k.handoff_syscall(kPidAny);
    order.push_back(0);
  });
  k.spawn("b", [&] { order.push_back(1); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0}));
}

TEST(SimKernel, HandoffToBlockedTargetIsNoop) {
  SimKernel k(test_machine());
  SimSemaphore sem;
  std::vector<std::string> events;
  k.spawn("blocked", [&] {
    k.sem_p(sem);
    events.push_back("blocked:woke");
  });
  k.spawn("caller", [&] {
    k.handoff_syscall(0);  // target is blocked: costly no-op, caller keeps CPU
    events.push_back("caller:after");
    k.sem_v(sem);
  });
  k.run();
  EXPECT_EQ(events[0], "caller:after");
}

TEST(SimKernel, HandoffSelfActsLikeYield) {
  SimKernel k(test_machine());  // kFixed: yield switches
  std::vector<int> order;
  k.spawn("a", [&] {
    order.push_back(0);
    k.handoff_syscall(kPidSelf);
    order.push_back(0);
  });
  k.spawn("b", [&] { order.push_back(1); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0}));
}

// ------------------------------------------------------------ message queue

TEST(SimKernel, MsgQueueDeliversInOrder) {
  SimKernel k(test_machine());
  SimMsgQueue q;
  std::vector<double> got;
  k.spawn("recv", [&] {
    for (int i = 0; i < 3; ++i) {
      Message m;
      k.msgq_rcv(q, 0, &m);
      got.push_back(m.value);
    }
  });
  k.spawn("send", [&] {
    for (int i = 0; i < 3; ++i) {
      k.msgq_snd(q, 1, Message(Op::kEcho, 0, static_cast<double>(i)));
    }
  });
  k.run();
  EXPECT_EQ(got, (std::vector<double>{0.0, 1.0, 2.0}));
}

TEST(SimKernel, MsgQueueMtypeSelection) {
  SimKernel k(test_machine());
  SimMsgQueue q;
  double got = 0.0;
  k.spawn("main", [&] {
    k.msgq_snd(q, 7, Message(Op::kEcho, 0, 7.0));
    k.msgq_snd(q, 9, Message(Op::kEcho, 0, 9.0));
    Message m;
    k.msgq_rcv(q, 9, &m);
    got = m.value;
  });
  k.run();
  EXPECT_DOUBLE_EQ(got, 9.0);
  EXPECT_EQ(q.messages.size(), 1u);  // the mtype-7 message remains
}

// ------------------------------------------------------------ multiprocessor

TEST(SimKernel, MultiprocessorRunsInParallelVirtualTime) {
  SimKernel k(test_machine(2));
  for (int i = 0; i < 2; ++i) {
    k.spawn("w", [&] {
      k.op_sync();
      k.op_finish(OpKind::kCharge, 50'000);
    });
  }
  k.run();
  // Both ran concurrently: final time ~ one ctx switch + 50 us, not 100 us.
  EXPECT_LT(k.now(), 60'000);
}

TEST(SimKernel, MultiprocessorCausalOrdering) {
  // A cross-CPU producer/consumer via shared plain state, touched only at
  // op boundaries: the consumer must observe the producer's writes in
  // virtual-time order.
  SimKernel k(test_machine(2));
  int shared = 0;
  std::vector<int> seen;
  k.spawn("producer", [&] {
    for (int i = 1; i <= 5; ++i) {
      k.op_sync();
      shared = i;
      k.op_finish(OpKind::kCharge, 10'000);
    }
  });
  k.spawn("observer", [&] {
    for (int i = 0; i < 5; ++i) {
      k.op_sync();
      seen.push_back(shared);
      k.op_finish(OpKind::kCharge, 10'000);
    }
  });
  k.run();
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LE(seen[i - 1], seen[i]) << "observer saw time run backwards";
  }
}

TEST(SimKernel, WakeDispatchesToIdleCpu) {
  SimKernel k(test_machine(2));
  SimSemaphore sem;
  std::int64_t woke_at = 0;
  k.spawn("sleeper", [&] {
    k.sem_p(sem);
    woke_at = k.now();
    k.op_sync();
    k.op_finish(OpKind::kCharge, 1'000);
  });
  k.spawn("worker", [&] {
    k.op_sync();
    k.op_finish(OpKind::kCharge, 30'000);
    k.sem_v(sem);
    k.op_sync();
    k.op_finish(OpKind::kCharge, 30'000);  // keeps its own CPU busy
  });
  k.run();
  // The sleeper was re-dispatched to the idle CPU immediately after the V,
  // not after the worker finished.
  EXPECT_LT(woke_at, 50'000);
}

// -------------------------------------------------------------- determinism

TEST(SimKernel, IdenticalRunsProduceIdenticalTraces) {
  auto build_and_run = [](std::vector<TraceEvent>* out) {
    SimKernel k(test_machine());
    k.enable_trace(true);
    SimSemaphore sem;
    k.spawn("a", [&] {
      for (int i = 0; i < 10; ++i) {
        k.yield_syscall();
        k.sem_v(sem);
      }
    });
    k.spawn("b", [&] {
      for (int i = 0; i < 10; ++i) {
        k.sem_p(sem);
        k.yield_syscall();
      }
    });
    k.run();
    *out = k.trace();
  };
  std::vector<TraceEvent> t1;
  std::vector<TraceEvent> t2;
  build_and_run(&t1);
  build_and_run(&t2);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
}

// ------------------------------------------------------------------ op hook

TEST(SimKernel, OpHookForcesPreemption) {
  SimKernel k(test_machine());
  std::vector<int> order;
  int charges = 0;
  k.set_op_hook([&](OpKind kind, int pid) -> std::optional<int> {
    if (kind == OpKind::kCharge && pid == 0 && ++charges == 2) {
      return kPidAny;  // preempt pid 0 after its second charge
    }
    return std::nullopt;
  });
  k.spawn("a", [&] {
    for (int i = 0; i < 3; ++i) {
      order.push_back(0);
      k.op_sync();
      k.op_finish(OpKind::kCharge, 100);
    }
  });
  k.spawn("b", [&] { order.push_back(1); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1, 0}));
}

TEST(SimKernel, OpHookDirectedSwitch) {
  SimKernel k(test_machine());
  std::vector<int> order;
  k.set_op_hook([&](OpKind kind, int pid) -> std::optional<int> {
    if (kind == OpKind::kCharge && pid == 0) return 2;  // run pid 2 next
    return std::nullopt;
  });
  k.spawn("a", [&] {
    order.push_back(0);
    k.op_sync();
    k.op_finish(OpKind::kCharge, 100);
    order.push_back(0);
  });
  k.spawn("b", [&] { order.push_back(1); });
  k.spawn("c", [&] { order.push_back(2); });
  k.run();
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2) << "hook must route control to pid 2";
}

TEST(SimKernel, StatsCountSyscalls) {
  SimKernel k(test_machine());
  SimSemaphore sem;
  k.spawn("p", [&] {
    k.yield_syscall();
    k.sem_v(sem);
    k.sem_p(sem);
    k.sleep_ns(1'000);
  });
  k.run();
  EXPECT_EQ(k.process(0).stats.syscalls, 4u);
}

}  // namespace
}  // namespace ulipc::sim
