#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace ulipc::sim {
namespace {

TEST(YieldCostCurve, InterpolatesBetweenPoints) {
  Machine m;
  m.yield_cost_points = {{1, 10'000}, {3, 30'000}};
  EXPECT_EQ(m.yield_cost(1), 10'000);
  EXPECT_EQ(m.yield_cost(2), 20'000);
  EXPECT_EQ(m.yield_cost(3), 30'000);
}

TEST(YieldCostCurve, ClampsBelowFirstPoint) {
  Machine m;
  m.yield_cost_points = {{2, 8'000}, {4, 16'000}};
  EXPECT_EQ(m.yield_cost(0), 8'000);
  EXPECT_EQ(m.yield_cost(1), 8'000);
}

TEST(YieldCostCurve, ExtrapolatesWithLastSlope) {
  Machine m;
  m.yield_cost_points = {{1, 10'000}, {2, 12'000}, {4, 16'000}};
  // Last slope: (16000-12000)/(4-2) = 2000 per process.
  EXPECT_EQ(m.yield_cost(6), 20'000);
  EXPECT_EQ(m.yield_cost(10), 28'000);
}

TEST(YieldCostCurve, EmptyCurveFallsBack) {
  Machine m;
  m.yield_cost_points.clear();
  EXPECT_GT(m.yield_cost(1), 0);
}

TEST(MachinePresets, SgiMatchesTable1) {
  const Machine m = Machine::sgi_indy();
  EXPECT_EQ(m.cpus, 1);
  // Table 1: enqueue/dequeue pair = 3 us.
  EXPECT_EQ(m.costs.enqueue + m.costs.dequeue, 3'000);
  // Table 1: single-process yield loop trip = 16 us.
  EXPECT_EQ(m.yield_cost(1), 16'000);
  EXPECT_EQ(m.default_policy, PolicyKind::kAging);
  EXPECT_FALSE(m.defer_scaled_by_ready);
}

TEST(MachinePresets, IbmIsDerivedButSane) {
  const Machine m = Machine::ibm_p4();
  EXPECT_EQ(m.cpus, 1);
  // Faster machine than the Indy on the paper's numbers.
  EXPECT_LT(m.costs.ctx_switch, Machine::sgi_indy().costs.ctx_switch);
  // Steep scan growth is the roll-off mechanism.
  EXPECT_GT(m.yield_cost(7), 5 * m.yield_cost(2));
  EXPECT_TRUE(m.defer_scaled_by_ready);
  EXPECT_GT(m.fixed_yield_cost_ns, 0);
}

TEST(MachinePresets, LinuxDefaultsToPatchedYield) {
  const Machine m = Machine::linux_486();
  EXPECT_EQ(m.default_policy, PolicyKind::kModYield);
  // Slower CPU than the 133 MHz machines.
  EXPECT_GT(m.costs.enqueue, Machine::sgi_indy().costs.enqueue);
}

TEST(MachinePresets, ChallengeIsMultiprocessor) {
  const Machine m = Machine::sgi_challenge(8);
  EXPECT_EQ(m.cpus, 8);
  EXPECT_EQ(m.costs.poll_slice, 25'000) << "paper 5: 25 us poll slices";
  // Cross-CPU queue ops are dearer than the uniprocessor's.
  EXPECT_GT(m.costs.enqueue, Machine::sgi_indy().costs.enqueue);
}

TEST(PolicyNames, AllDistinct) {
  EXPECT_STREQ(policy_name(PolicyKind::kAging), "aging");
  EXPECT_STREQ(policy_name(PolicyKind::kFixed), "fixed-priority");
  EXPECT_STREQ(policy_name(PolicyKind::kTickOnly), "tick-only");
  EXPECT_STREQ(policy_name(PolicyKind::kModYield), "modified-yield");
}

}  // namespace
}  // namespace ulipc::sim
