// Figure-shape regression tests: quick versions of the paper's qualitative
// claims, pinned down as unit tests so calibration regressions in
// src/sim/machine.cpp fail CI rather than silently bending the benches.
// (The bench binaries check the same claims at full scale.)
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"
#include "sim/sim_experiment.hpp"

namespace ulipc::sim {
namespace {

double thr(const Machine& m, PolicyKind pol, ProtocolKind proto, int clients,
           std::uint32_t max_spin = 20, double work = 0.0,
           bool handoff = false) {
  SimExperimentConfig cfg;
  cfg.machine = m;
  cfg.policy = pol;
  cfg.protocol = proto;
  cfg.clients = static_cast<std::uint32_t>(clients);
  cfg.messages_per_client = 400;
  cfg.max_spin = max_spin;
  cfg.server_work_us = work;
  cfg.use_handoff = handoff;
  return run_sim_experiment(cfg).throughput_msgs_per_ms;
}

TEST(FigureShapes, Fig2SgiBssRisesWithClients) {
  const Machine m = Machine::sgi_indy();
  const double t1 = thr(m, PolicyKind::kAging, ProtocolKind::kBss, 1);
  const double t6 = thr(m, PolicyKind::kAging, ProtocolKind::kBss, 6);
  EXPECT_GT(t6, t1 * 1.1);
}

TEST(FigureShapes, Fig2IbmBssFallsWithClients) {
  const Machine m = Machine::ibm_p4();
  const double t1 = thr(m, PolicyKind::kAging, ProtocolKind::kBss, 1);
  const double t6 = thr(m, PolicyKind::kAging, ProtocolKind::kBss, 6);
  EXPECT_LT(t6, t1 * 0.75);
}

TEST(FigureShapes, Fig2UserLevelBeatsKernelMediated) {
  for (const Machine& m : {Machine::sgi_indy(), Machine::ibm_p4()}) {
    const double bss = thr(m, PolicyKind::kAging, ProtocolKind::kBss, 1);
    const double sysv = thr(m, PolicyKind::kAging, ProtocolKind::kSysv, 1);
    EXPECT_GT(bss, sysv * 1.4) << m.name;
  }
}

TEST(FigureShapes, Fig3FixedPriorityGains) {
  const Machine sgi = Machine::sgi_indy();
  const double gain_sgi = thr(sgi, PolicyKind::kFixed, ProtocolKind::kBss, 1) /
                          thr(sgi, PolicyKind::kAging, ProtocolKind::kBss, 1);
  EXPECT_GT(gain_sgi, 1.25);  // paper: +50%
  EXPECT_LT(gain_sgi, 1.80);
  const Machine ibm = Machine::ibm_p4();
  const double gain_ibm = thr(ibm, PolicyKind::kFixed, ProtocolKind::kBss, 1) /
                          thr(ibm, PolicyKind::kAging, ProtocolKind::kBss, 1);
  EXPECT_GT(gain_ibm, 1.15);  // paper: +30%
  EXPECT_LT(gain_ibm, 1.50);
}

TEST(FigureShapes, Fig6BswMatchesSysv) {
  const Machine m = Machine::sgi_indy();
  const double bsw = thr(m, PolicyKind::kAging, ProtocolKind::kBsw, 1);
  const double sysv = thr(m, PolicyKind::kAging, ProtocolKind::kSysv, 1);
  EXPECT_GT(bsw / sysv, 0.8);
  EXPECT_LT(bsw / sysv, 1.3);
}

TEST(FigureShapes, Fig8BswyHelpsThenDegrades) {
  const Machine m = Machine::sgi_indy();
  EXPECT_GT(thr(m, PolicyKind::kAging, ProtocolKind::kBswy, 1),
            thr(m, PolicyKind::kAging, ProtocolKind::kBsw, 1) * 1.1);
  EXPECT_LT(thr(m, PolicyKind::kAging, ProtocolKind::kBswy, 6),
            thr(m, PolicyKind::kAging, ProtocolKind::kBss, 6));
}

TEST(FigureShapes, Fig10MoreSpinNeverMuchWorse) {
  const Machine m = Machine::sgi_indy();
  // BSLS_FIXED: the MAX_SPIN sweep is only meaningful with the paper's
  // constant bound (adaptive BSLS would retune both runs to the same value).
  const double spin1 =
      thr(m, PolicyKind::kAging, ProtocolKind::kBslsFixed, 1, 1);
  const double spin20 =
      thr(m, PolicyKind::kAging, ProtocolKind::kBslsFixed, 1, 20);
  EXPECT_GT(spin20, spin1 * 0.98);
}

TEST(FigureShapes, Fig11BslsCollapsesBeyondCliff) {
  const Machine m = Machine::sgi_challenge(8);
  const double pre =
      thr(m, m.default_policy, ProtocolKind::kBslsFixed, 3, 5, 25.0);
  const double post =
      thr(m, m.default_policy, ProtocolKind::kBslsFixed, 8, 5, 25.0);
  const double bss_post =
      thr(m, m.default_policy, ProtocolKind::kBss, 8, 20, 25.0);
  EXPECT_LT(post, pre * 0.6) << "collapse missing";
  EXPECT_LT(post, bss_post * 0.75) << "BSS must stay healthy";
}

TEST(FigureShapes, Fig12ModYieldMakesBswyMatchBss) {
  const Machine m = Machine::linux_486();
  const double bss = thr(m, PolicyKind::kModYield, ProtocolKind::kBss, 1);
  const double bswy = thr(m, PolicyKind::kModYield, ProtocolKind::kBswy, 1);
  EXPECT_GT(bswy, bss * 0.9);
  const double handoff =
      thr(m, PolicyKind::kModYield, ProtocolKind::kBswy, 1, 20, 0.0, true);
  EXPECT_GT(handoff / bswy, 0.85);
  EXPECT_LT(handoff / bswy, 1.15) << "handoff matches, does not improve";
}

TEST(FigureShapes, Fig12TickOnlyIsMilliseconds) {
  SimExperimentConfig cfg;
  cfg.machine = Machine::linux_486();
  cfg.policy = PolicyKind::kTickOnly;
  cfg.protocol = ProtocolKind::kBss;
  cfg.clients = 1;
  cfg.messages_per_client = 30;
  EXPECT_GT(run_sim_experiment(cfg).round_trip_us, 10'000.0);
}

}  // namespace
}  // namespace ulipc::sim
