#include "shm/offset_ptr.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace ulipc {
namespace {

struct Node {
  int value = 0;
  OffsetPtr<Node> next;
};

TEST(OffsetPtr, NullByDefault) {
  OffsetPtr<int> p;
  EXPECT_EQ(p.get(), nullptr);
  EXPECT_FALSE(p);
  EXPECT_TRUE(p == nullptr);
}

TEST(OffsetPtr, SetAndGet) {
  int x = 5;
  OffsetPtr<int> p;
  p = &x;
  ASSERT_TRUE(p);
  EXPECT_EQ(p.get(), &x);
  EXPECT_EQ(*p, 5);
  p = nullptr;
  EXPECT_FALSE(p);
}

TEST(OffsetPtr, SurvivesBlockRelocation) {
  // The core property: an offset pointer copied byte-for-byte together with
  // its target remains valid at the new address.
  std::vector<char> block_a(1024);
  std::vector<char> block_b(1024);
  auto* node = new (block_a.data()) Node{41, {}};
  auto* ptr = new (block_a.data() + 512) OffsetPtr<Node>();
  ptr->set(node);
  std::memcpy(block_b.data(), block_a.data(), block_a.size());
  auto* moved_ptr = reinterpret_cast<OffsetPtr<Node>*>(block_b.data() + 512);
  ASSERT_TRUE(*moved_ptr);
  EXPECT_EQ(moved_ptr->get(), reinterpret_cast<Node*>(block_b.data()));
  EXPECT_EQ((*moved_ptr)->value, 41);
}

TEST(OffsetPtr, CopySemanticsPreserveTarget) {
  int x = 1;
  OffsetPtr<int> a;
  a = &x;
  OffsetPtr<int> b(a);  // b at a different address must still point at x
  EXPECT_EQ(b.get(), &x);
  OffsetPtr<int> c;
  c = a;
  EXPECT_EQ(c.get(), &x);
}

TEST(OffsetPtr, EqualityComparesTargets) {
  int x = 1;
  int y = 2;
  OffsetPtr<int> a;
  OffsetPtr<int> b;
  a = &x;
  b = &x;
  EXPECT_TRUE(a == b);
  b = &y;
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == &x);
}

TEST(OffsetPtr, IntrusiveListTraversal) {
  std::vector<char> block(sizeof(Node) * 3);
  auto* n0 = new (block.data()) Node{0, {}};
  auto* n1 = new (block.data() + sizeof(Node)) Node{1, {}};
  auto* n2 = new (block.data() + 2 * sizeof(Node)) Node{2, {}};
  n0->next = n1;
  n1->next = n2;
  int sum = 0;
  for (Node* n = n0; n != nullptr; n = n->next.get()) sum += n->value;
  EXPECT_EQ(sum, 3);
}

TEST(ShmIndexConstants, NullIndexDistinct) {
  EXPECT_EQ(kNullIndex, 0xFFFFFFFFu);
  const ShmIndex idx = 0;
  EXPECT_NE(idx, kNullIndex);
}

}  // namespace
}  // namespace ulipc
