#include "shm/futex_semaphore.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

TEST(FutexSemaphore, InitialValue) {
  FutexSemaphore s(3);
  EXPECT_EQ(s.value(), 3u);
  EXPECT_TRUE(s.try_wait());
  EXPECT_TRUE(s.try_wait());
  EXPECT_TRUE(s.try_wait());
  EXPECT_FALSE(s.try_wait());
}

TEST(FutexSemaphore, PostIncrementsCount) {
  FutexSemaphore s;
  s.post();
  s.post();
  EXPECT_EQ(s.value(), 2u);
  s.wait();  // must not block
  EXPECT_EQ(s.value(), 1u);
}

TEST(FutexSemaphore, CountingAccumulatesBeyondOne) {
  // The protocols depend on true counting semantics (a V with no waiter
  // must remain pending).
  FutexSemaphore s;
  for (int i = 0; i < 100; ++i) s.post();
  EXPECT_EQ(s.value(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.try_wait());
  EXPECT_FALSE(s.try_wait());
}

TEST(FutexSemaphore, WaitBlocksUntilPost) {
  FutexSemaphore s;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    s.wait();
    woke.store(true);
  });
  // Give the waiter a chance to block; it must not wake on its own.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(woke.load());
  s.post();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(FutexSemaphore, PingPongBetweenThreads) {
  FutexSemaphore ping;
  FutexSemaphore pong;
  constexpr int kRounds = 2'000;
  std::thread other([&] {
    for (int i = 0; i < kRounds; ++i) {
      ping.wait();
      pong.post();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    ping.post();
    pong.wait();
  }
  other.join();
  EXPECT_EQ(ping.value(), 0u);
  EXPECT_EQ(pong.value(), 0u);
}

TEST(FutexSemaphore, ManyProducersOneConsumer) {
  FutexSemaphore s;
  constexpr int kProducers = 4;
  constexpr int kPostsEach = 1'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPostsEach; ++i) s.post();
    });
  }
  for (int i = 0; i < kProducers * kPostsEach; ++i) s.wait();
  for (auto& t : producers) t.join();
  EXPECT_EQ(s.value(), 0u);
  EXPECT_FALSE(s.try_wait());
}

TEST(FutexSemaphore, SharedAcrossProcesses) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  auto* sems = new (region.base()) FutexSemaphore[2];
  constexpr int kRounds = 500;
  ChildProcess child = ChildProcess::spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      sems[0].wait();
      sems[1].post();
    }
    return 0;
  });
  for (int i = 0; i < kRounds; ++i) {
    sems[0].post();
    sems[1].wait();
  }
  EXPECT_EQ(child.join(), 0);
  EXPECT_EQ(sems[0].value(), 0u);
  EXPECT_EQ(sems[1].value(), 0u);
}

TEST(FutexSemaphore, WaiterCountReturnsToZero) {
  FutexSemaphore s;
  std::thread waiter([&] { s.wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  s.post();
  waiter.join();
  EXPECT_EQ(s.waiter_count(), 0u);
}

}  // namespace
}  // namespace ulipc
