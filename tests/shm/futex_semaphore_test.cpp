#include "shm/futex_semaphore.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

TEST(FutexSemaphore, InitialValue) {
  FutexSemaphore s(3);
  EXPECT_EQ(s.value(), 3u);
  EXPECT_TRUE(s.try_wait());
  EXPECT_TRUE(s.try_wait());
  EXPECT_TRUE(s.try_wait());
  EXPECT_FALSE(s.try_wait());
}

TEST(FutexSemaphore, PostIncrementsCount) {
  FutexSemaphore s;
  s.post();
  s.post();
  EXPECT_EQ(s.value(), 2u);
  s.wait();  // must not block
  EXPECT_EQ(s.value(), 1u);
}

TEST(FutexSemaphore, CountingAccumulatesBeyondOne) {
  // The protocols depend on true counting semantics (a V with no waiter
  // must remain pending).
  FutexSemaphore s;
  for (int i = 0; i < 100; ++i) s.post();
  EXPECT_EQ(s.value(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.try_wait());
  EXPECT_FALSE(s.try_wait());
}

TEST(FutexSemaphore, WaitBlocksUntilPost) {
  FutexSemaphore s;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    s.wait();
    woke.store(true);
  });
  // Give the waiter a chance to block; it must not wake on its own.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(woke.load());
  s.post();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(FutexSemaphore, PingPongBetweenThreads) {
  FutexSemaphore ping;
  FutexSemaphore pong;
  constexpr int kRounds = 2'000;
  std::thread other([&] {
    for (int i = 0; i < kRounds; ++i) {
      ping.wait();
      pong.post();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    ping.post();
    pong.wait();
  }
  other.join();
  EXPECT_EQ(ping.value(), 0u);
  EXPECT_EQ(pong.value(), 0u);
}

TEST(FutexSemaphore, ManyProducersOneConsumer) {
  FutexSemaphore s;
  constexpr int kProducers = 4;
  constexpr int kPostsEach = 1'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPostsEach; ++i) s.post();
    });
  }
  for (int i = 0; i < kProducers * kPostsEach; ++i) s.wait();
  for (auto& t : producers) t.join();
  EXPECT_EQ(s.value(), 0u);
  EXPECT_FALSE(s.try_wait());
}

TEST(FutexSemaphore, SharedAcrossProcesses) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  auto* sems = new (region.base()) FutexSemaphore[2];
  constexpr int kRounds = 500;
  ChildProcess child = ChildProcess::spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      sems[0].wait();
      sems[1].post();
    }
    return 0;
  });
  for (int i = 0; i < kRounds; ++i) {
    sems[0].post();
    sems[1].wait();
  }
  EXPECT_EQ(child.join(), 0);
  EXPECT_EQ(sems[0].value(), 0u);
  EXPECT_EQ(sems[1].value(), 0u);
}

TEST(FutexSemaphore, TimedWaitExpiresWithoutPost) {
  FutexSemaphore s;
  const std::int64_t t0 = futex_clock_ns();
  EXPECT_FALSE(s.timed_wait(20'000'000));  // 20 ms
  const std::int64_t elapsed = futex_clock_ns() - t0;
  EXPECT_GE(elapsed, 20'000'000);          // honored the full timeout
  EXPECT_LT(elapsed, 2'000'000'000);       // ...but not wildly more
  EXPECT_EQ(s.waiter_count(), 0u);
}

TEST(FutexSemaphore, TimedWaitZeroAndNegativeAreTryWait) {
  FutexSemaphore s;
  EXPECT_FALSE(s.timed_wait(0));
  EXPECT_FALSE(s.timed_wait(-5));
  s.post();
  EXPECT_TRUE(s.timed_wait(0));
  EXPECT_FALSE(s.try_wait());
}

TEST(FutexSemaphore, TimedWaitWakesOnPostBeforeDeadline) {
  FutexSemaphore s;
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    // Deadline far beyond the post; failure here means a lost wake-up.
    acquired.store(s.timed_wait(2'000'000'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  s.post();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(s.value(), 0u);
  EXPECT_EQ(s.waiter_count(), 0u);
}

TEST(FutexSemaphore, NoLostUnitUnderPostTimeoutRace) {
  // Hammer the post/expiry race: a waiter with a tiny timeout races a
  // poster. Whatever interleaving occurs, the unit must never vanish —
  // either the waiter got it (timed_wait true) or it is still on the
  // semaphore.
  FutexSemaphore s;
  int acquired = 0;
  int leftover = 0;
  for (int round = 0; round < 200; ++round) {
    std::thread poster([&] { s.post(); });
    const bool got = s.timed_wait(50'000);  // 50 us: expires mid-race often
    poster.join();
    if (got) {
      ++acquired;
    } else {
      // Timed out; the posted unit must still be there.
      ASSERT_TRUE(s.try_wait()) << "post lost in round " << round;
      ++leftover;
    }
    ASSERT_EQ(s.value(), 0u);
  }
  EXPECT_EQ(acquired + leftover, 200);
}

TEST(FutexSemaphore, TimedWaitAcrossProcesses) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  auto* s = new (region.base()) FutexSemaphore();
  ChildProcess child = ChildProcess::spawn([&] {
    // Child posts after a short nap; parent's deadline is far longer.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    s->post();
    return 0;
  });
  EXPECT_TRUE(s->timed_wait(2'000'000'000));
  EXPECT_EQ(child.join(), 0);
}

TEST(FutexSemaphore, WaiterCountReturnsToZero) {
  FutexSemaphore s;
  std::thread waiter([&] { s.wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  s.post();
  waiter.join();
  EXPECT_EQ(s.waiter_count(), 0u);
}

}  // namespace
}  // namespace ulipc
