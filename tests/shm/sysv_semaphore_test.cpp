#include "shm/sysv_semaphore.hpp"

#include <gtest/gtest.h>
#include <time.h>

#include <chrono>

#include "shm/process.hpp"

namespace ulipc {
namespace {

TEST(SysvSemaphore, CreateWithInitialValues) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(3, 2);
  EXPECT_GE(set.id(), 0);
  EXPECT_EQ(set.count(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(SysvSemaphoreSet::value(set.handle(i)), 2);
  }
}

TEST(SysvSemaphore, PostAndWait) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(1);
  const SysvSemHandle h = set.handle(0);
  EXPECT_EQ(SysvSemaphoreSet::value(h), 0);
  SysvSemaphoreSet::post(h);
  SysvSemaphoreSet::post(h);
  EXPECT_EQ(SysvSemaphoreSet::value(h), 2);
  SysvSemaphoreSet::wait(h);
  EXPECT_EQ(SysvSemaphoreSet::value(h), 1);
}

TEST(SysvSemaphore, TryWaitNonBlocking) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(1);
  const SysvSemHandle h = set.handle(0);
  EXPECT_FALSE(SysvSemaphoreSet::try_wait(h));
  SysvSemaphoreSet::post(h);
  EXPECT_TRUE(SysvSemaphoreSet::try_wait(h));
  EXPECT_FALSE(SysvSemaphoreSet::try_wait(h));
}

TEST(SysvSemaphore, IndependentSemaphoresInSet) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(2);
  SysvSemaphoreSet::post(set.handle(0));
  EXPECT_EQ(SysvSemaphoreSet::value(set.handle(0)), 1);
  EXPECT_EQ(SysvSemaphoreSet::value(set.handle(1)), 0);
}

TEST(SysvSemaphore, CrossProcessPingPong) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(2);
  const SysvSemHandle ping = set.handle(0);
  const SysvSemHandle pong = set.handle(1);
  constexpr int kRounds = 300;
  ChildProcess child = ChildProcess::spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      SysvSemaphoreSet::wait(ping);
      SysvSemaphoreSet::post(pong);
    }
    return 0;
  });
  for (int i = 0; i < kRounds; ++i) {
    SysvSemaphoreSet::post(ping);
    SysvSemaphoreSet::wait(pong);
  }
  EXPECT_EQ(child.join(), 0);
  EXPECT_EQ(SysvSemaphoreSet::value(ping), 0);
  EXPECT_EQ(SysvSemaphoreSet::value(pong), 0);
}

TEST(SysvSemaphore, TimedWaitExpiresWithoutPost) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(1);
  const SysvSemHandle h = set.handle(0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(SysvSemaphoreSet::timed_wait(h, 20'000'000));  // 20 ms
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(19));
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

TEST(SysvSemaphore, TimedWaitZeroIsTryWait) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(1);
  const SysvSemHandle h = set.handle(0);
  EXPECT_FALSE(SysvSemaphoreSet::timed_wait(h, 0));
  EXPECT_FALSE(SysvSemaphoreSet::timed_wait(h, -1));
  SysvSemaphoreSet::post(h);
  EXPECT_TRUE(SysvSemaphoreSet::timed_wait(h, 0));
  EXPECT_EQ(SysvSemaphoreSet::value(h), 0);
}

TEST(SysvSemaphore, TimedWaitWakesOnCrossProcessPost) {
  SysvSemaphoreSet set = SysvSemaphoreSet::create(1);
  const SysvSemHandle h = set.handle(0);
  ChildProcess child = ChildProcess::spawn([&] {
    timespec nap{0, 20'000'000};  // 20 ms
    nanosleep(&nap, nullptr);
    SysvSemaphoreSet::post(h);
    return 0;
  });
  EXPECT_TRUE(SysvSemaphoreSet::timed_wait(h, 2'000'000'000));
  EXPECT_EQ(child.join(), 0);
  EXPECT_EQ(SysvSemaphoreSet::value(h), 0);
}

TEST(SysvSemaphore, MoveTransfersOwnership) {
  SysvSemaphoreSet a = SysvSemaphoreSet::create(1);
  const int id = a.id();
  SysvSemaphoreSet b = std::move(a);
  EXPECT_EQ(b.id(), id);
  EXPECT_EQ(a.id(), -1);  // NOLINT(bugprone-use-after-move)
  // The set must still be usable through b.
  SysvSemaphoreSet::post(b.handle(0));
  EXPECT_EQ(SysvSemaphoreSet::value(b.handle(0)), 1);
}

}  // namespace
}  // namespace ulipc
