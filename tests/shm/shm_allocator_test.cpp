#include "shm/shm_allocator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {
namespace {

class ArenaTest : public ::testing::Test {
 protected:
  ArenaTest() : region_(ShmRegion::create_anonymous(64 * 1024)) {}
  ShmRegion region_;
};

TEST_F(ArenaTest, FormatAndAttach) {
  ShmArena a = ShmArena::format(region_);
  EXPECT_EQ(a.capacity(), region_.size());
  EXPECT_GT(a.used(), 0u);
  ShmArena b = ShmArena::attach(region_);
  EXPECT_EQ(b.capacity(), a.capacity());
  EXPECT_EQ(b.used(), a.used());
}

TEST_F(ArenaTest, AttachUnformattedThrows) {
  // Region is zero-filled: no valid magic.
  EXPECT_THROW(ShmArena::attach(region_), InvariantError);
}

TEST_F(ArenaTest, AllocationsAreAligned) {
  ShmArena a = ShmArena::format(region_);
  for (const std::uint64_t align : {8ull, 16ull, 64ull, 256ull}) {
    void* p = a.allocate(10, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
  }
}

TEST_F(ArenaTest, AllocationsDisjoint) {
  ShmArena a = ShmArena::format(region_);
  char* p1 = static_cast<char*>(a.allocate(100));
  char* p2 = static_cast<char*>(a.allocate(100));
  EXPECT_GE(p2, p1 + 100);
}

TEST_F(ArenaTest, ExhaustionThrowsBadAlloc) {
  ShmArena a = ShmArena::format(region_);
  EXPECT_THROW(a.allocate(region_.size() * 2), std::bad_alloc);
  // A small allocation still succeeds afterwards (cursor unchanged by the
  // failed attempt).
  EXPECT_NE(a.allocate(16), nullptr);
}

TEST_F(ArenaTest, ConstructRunsConstructor) {
  ShmArena a = ShmArena::format(region_);
  struct Pair {
    int x;
    int y;
    Pair(int a_, int b_) : x(a_), y(b_) {}
  };
  Pair* p = a.construct<Pair>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST_F(ArenaTest, ConstructArrayValueInitializes) {
  ShmArena a = ShmArena::format(region_);
  int* arr = a.construct_array<int>(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(arr[i], 0);
}

TEST_F(ArenaTest, OffsetRoundTrip) {
  ShmArena a = ShmArena::format(region_);
  int* p = a.construct<int>(7);
  const std::uint64_t off = a.to_offset(p);
  EXPECT_EQ(a.from_offset<int>(off), p);
  EXPECT_EQ(*a.from_offset<int>(off), 7);
}

TEST_F(ArenaTest, ConcurrentAllocationsDoNotOverlap) {
  ShmArena a = ShmArena::format(region_);
  constexpr int kThreads = 4;
  constexpr int kAllocs = 50;
  std::vector<std::vector<char*>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAllocs; ++i) {
        results[static_cast<std::size_t>(t)].push_back(
            static_cast<char*>(a.allocate(64, 64)));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<char*> all;
  for (const auto& v : results) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i], all[i - 1] + 64) << "allocations overlap";
  }
}

}  // namespace
}  // namespace ulipc
