// AwakeFlag, Spinlock, RobustSpinlock, ShmBarrier.
#include <gtest/gtest.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "shm/process.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_barrier.hpp"
#include "shm/shm_region.hpp"
#include "shm/spinlock.hpp"
#include "shm/tas_flag.hpp"

namespace ulipc {
namespace {

// ---------------------------------------------------------------- AwakeFlag

TEST(AwakeFlag, StartsAwake) {
  AwakeFlag f;
  EXPECT_TRUE(f.is_set());
}

TEST(AwakeFlag, TasReturnsPrevious) {
  AwakeFlag f;
  EXPECT_TRUE(f.tas());  // was set
  f.clear();
  EXPECT_FALSE(f.is_set());
  EXPECT_FALSE(f.tas());  // was clear -> "I should wake the consumer"
  EXPECT_TRUE(f.is_set()) << "tas must set the flag";
  EXPECT_TRUE(f.tas());  // second producer sees it already set
}

TEST(AwakeFlag, OnlyOneThreadWinsTas) {
  // Interleaving 2's fix: of N producers racing on a cleared flag, exactly
  // one observes 0.
  for (int round = 0; round < 50; ++round) {
    AwakeFlag f;
    f.clear();
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        if (!f.tas()) winners.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(winners.load(), 1);
  }
}

TEST(AwakeFlag, ExplicitInitialState) {
  AwakeFlag asleep(false);
  EXPECT_FALSE(asleep.is_set());
  AwakeFlag awake(true);
  EXPECT_TRUE(awake.is_set());
}

// ----------------------------------------------------------------- Spinlock

TEST(Spinlock, BasicLockUnlock) {
  Spinlock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, MutualExclusionCounters) {
  Spinlock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        SpinGuard g(lock);
        ++counter;  // data race iff the lock is broken
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(Spinlock, CrossProcessMutualExclusion) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  struct Shared {
    Spinlock lock;
    long counter;
  };
  auto* shared = new (region.base()) Shared{};
  constexpr int kIncrements = 20'000;
  ChildProcess child = ChildProcess::spawn([&] {
    for (int i = 0; i < kIncrements; ++i) {
      SpinGuard g(shared->lock);
      ++shared->counter;
    }
    return 0;
  });
  for (int i = 0; i < kIncrements; ++i) {
    SpinGuard g(shared->lock);
    ++shared->counter;
  }
  EXPECT_EQ(child.join(), 0);
  EXPECT_EQ(shared->counter, 2L * kIncrements);
}

// --------------------------------------------------------- RobustSpinlock

TEST(RobustSpinlock, BasicLockUnlockStampsOwner) {
  RobustSpinlock lock;
  EXPECT_EQ(lock.owner(), 0u);
  EXPECT_FALSE(lock.lock());  // ordinary acquisition, not a steal
  EXPECT_EQ(lock.owner(), robust_self_pid());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_EQ(lock.owner(), 0u);
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RobustSpinlock, SelfPidMatchesGetpid) {
  EXPECT_EQ(robust_self_pid(), static_cast<std::uint32_t>(::getpid()));
}

TEST(RobustSpinlock, ProcessAliveProbe) {
  EXPECT_TRUE(process_alive(static_cast<std::uint32_t>(::getpid())));
  EXPECT_FALSE(process_alive(0));
  // A freshly reaped child is definitively dead.
  ChildProcess child = ChildProcess::spawn([] { return 0; });
  const auto pid = static_cast<std::uint32_t>(child.pid());
  EXPECT_EQ(child.join(), 0);
  EXPECT_FALSE(process_alive(pid));
}

TEST(RobustSpinlock, MutualExclusionCounters) {
  // Threads of one process share a pid; the steal path must never fire.
  RobustSpinlock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        RobustGuard g(lock);
        EXPECT_FALSE(g.stolen());
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
  EXPECT_EQ(lock.steal_count(), 0u);
}

TEST(RobustSpinlock, StealsFromDeadOwner) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  auto* lock = new (region.base()) RobustSpinlock();
  ChildProcess victim = ChildProcess::spawn([&] {
    return lock->lock() ? 1 : 0;  // acquire normally, die holding it
  });
  ASSERT_EQ(victim.join(), 0);
  ASSERT_NE(lock->owner(), 0u);
  ASSERT_NE(lock->owner(), robust_self_pid());

  EXPECT_TRUE(lock->lock()) << "acquisition from a corpse must report steal";
  EXPECT_EQ(lock->owner(), robust_self_pid());
  EXPECT_EQ(lock->steal_count(), 1u);
  lock->unlock();
}

TEST(RobustSpinlock, DoesNotStealFromLiveOwner) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  struct Shared {
    RobustSpinlock lock;
    std::atomic<int> holder_ready;
    std::atomic<int> release;
  };
  auto* shared = new (region.base()) Shared{};
  ChildProcess holder = ChildProcess::spawn([&] {
    if (shared->lock.lock()) return 1;
    shared->holder_ready.store(1);
    while (shared->release.load() == 0) {
      timespec nap{0, 500'000};
      nanosleep(&nap, nullptr);
    }
    shared->lock.unlock();
    return 0;
  });
  while (shared->holder_ready.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The holder is alive and parked on the lock; contenders must spin, not
  // steal — even well past the probe interval.
  EXPECT_FALSE(shared->lock.try_lock());
  std::thread contender([&] {
    const bool stolen = shared->lock.lock();
    EXPECT_FALSE(stolen) << "stole a live process's lock";
    shared->lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(shared->lock.steal_count(), 0u);
  shared->release.store(1);
  contender.join();
  EXPECT_EQ(holder.join(), 0);
  EXPECT_EQ(shared->lock.steal_count(), 0u);
}

TEST(RobustSpinlock, CrossProcessMutualExclusion) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  struct Shared {
    RobustSpinlock lock;
    long counter;
  };
  auto* shared = new (region.base()) Shared{};
  constexpr int kIncrements = 20'000;
  ChildProcess child = ChildProcess::spawn([&] {
    for (int i = 0; i < kIncrements; ++i) {
      RobustGuard g(shared->lock);
      ++shared->counter;
    }
    return 0;
  });
  for (int i = 0; i < kIncrements; ++i) {
    RobustGuard g(shared->lock);
    ++shared->counter;
  }
  EXPECT_EQ(child.join(), 0);
  EXPECT_EQ(shared->counter, 2L * kIncrements);
  EXPECT_EQ(shared->lock.steal_count(), 0u);
}

// --------------------------------------------------------------- ShmBarrier

TEST(ShmBarrier, ThreadsMeet) {
  ShmBarrier barrier;
  barrier.init(4);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      // Every arrival must observe all 4 pre-barrier increments.
      EXPECT_EQ(before.load(), 4);
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), 4);
}

TEST(ShmBarrier, ReusableAcrossRounds) {
  ShmBarrier barrier;
  barrier.init(2);
  std::atomic<int> phase{0};
  std::thread other([&] {
    for (int round = 0; round < 10; ++round) {
      barrier.arrive_and_wait();
      phase.fetch_add(1);
      barrier.arrive_and_wait();
    }
  });
  for (int round = 0; round < 10; ++round) {
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
    EXPECT_GE(phase.load(), round + 1);
  }
  other.join();
  EXPECT_EQ(phase.load(), 10);
}

TEST(ShmBarrier, AcrossProcesses) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  struct Shared {
    ShmBarrier barrier;
    std::atomic<int> stage;
  };
  auto* shared = new (region.base()) Shared{};
  shared->barrier.init(2);
  ChildProcess child = ChildProcess::spawn([&] {
    shared->stage.store(1);
    shared->barrier.arrive_and_wait();
    return shared->stage.load() == 1 ? 0 : 1;
  });
  shared->barrier.arrive_and_wait();
  EXPECT_EQ(shared->stage.load(), 1);
  EXPECT_EQ(child.join(), 0);
}

TEST(ShmBarrier, SinglePartyNeverBlocks) {
  ShmBarrier barrier;
  barrier.init(1);
  for (int i = 0; i < 5; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

}  // namespace
}  // namespace ulipc
