// AwakeFlag, Spinlock, ShmBarrier.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "shm/process.hpp"
#include "shm/shm_barrier.hpp"
#include "shm/shm_region.hpp"
#include "shm/spinlock.hpp"
#include "shm/tas_flag.hpp"

namespace ulipc {
namespace {

// ---------------------------------------------------------------- AwakeFlag

TEST(AwakeFlag, StartsAwake) {
  AwakeFlag f;
  EXPECT_TRUE(f.is_set());
}

TEST(AwakeFlag, TasReturnsPrevious) {
  AwakeFlag f;
  EXPECT_TRUE(f.tas());  // was set
  f.clear();
  EXPECT_FALSE(f.is_set());
  EXPECT_FALSE(f.tas());  // was clear -> "I should wake the consumer"
  EXPECT_TRUE(f.is_set()) << "tas must set the flag";
  EXPECT_TRUE(f.tas());  // second producer sees it already set
}

TEST(AwakeFlag, OnlyOneThreadWinsTas) {
  // Interleaving 2's fix: of N producers racing on a cleared flag, exactly
  // one observes 0.
  for (int round = 0; round < 50; ++round) {
    AwakeFlag f;
    f.clear();
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        if (!f.tas()) winners.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(winners.load(), 1);
  }
}

TEST(AwakeFlag, ExplicitInitialState) {
  AwakeFlag asleep(false);
  EXPECT_FALSE(asleep.is_set());
  AwakeFlag awake(true);
  EXPECT_TRUE(awake.is_set());
}

// ----------------------------------------------------------------- Spinlock

TEST(Spinlock, BasicLockUnlock) {
  Spinlock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, MutualExclusionCounters) {
  Spinlock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        SpinGuard g(lock);
        ++counter;  // data race iff the lock is broken
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(Spinlock, CrossProcessMutualExclusion) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  struct Shared {
    Spinlock lock;
    long counter;
  };
  auto* shared = new (region.base()) Shared{};
  constexpr int kIncrements = 20'000;
  ChildProcess child = ChildProcess::spawn([&] {
    for (int i = 0; i < kIncrements; ++i) {
      SpinGuard g(shared->lock);
      ++shared->counter;
    }
    return 0;
  });
  for (int i = 0; i < kIncrements; ++i) {
    SpinGuard g(shared->lock);
    ++shared->counter;
  }
  EXPECT_EQ(child.join(), 0);
  EXPECT_EQ(shared->counter, 2L * kIncrements);
}

// --------------------------------------------------------------- ShmBarrier

TEST(ShmBarrier, ThreadsMeet) {
  ShmBarrier barrier;
  barrier.init(4);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      // Every arrival must observe all 4 pre-barrier increments.
      EXPECT_EQ(before.load(), 4);
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), 4);
}

TEST(ShmBarrier, ReusableAcrossRounds) {
  ShmBarrier barrier;
  barrier.init(2);
  std::atomic<int> phase{0};
  std::thread other([&] {
    for (int round = 0; round < 10; ++round) {
      barrier.arrive_and_wait();
      phase.fetch_add(1);
      barrier.arrive_and_wait();
    }
  });
  for (int round = 0; round < 10; ++round) {
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
    EXPECT_GE(phase.load(), round + 1);
  }
  other.join();
  EXPECT_EQ(phase.load(), 10);
}

TEST(ShmBarrier, AcrossProcesses) {
  ShmRegion region = ShmRegion::create_anonymous(4096);
  struct Shared {
    ShmBarrier barrier;
    std::atomic<int> stage;
  };
  auto* shared = new (region.base()) Shared{};
  shared->barrier.init(2);
  ChildProcess child = ChildProcess::spawn([&] {
    shared->stage.store(1);
    shared->barrier.arrive_and_wait();
    return shared->stage.load() == 1 ? 0 : 1;
  });
  shared->barrier.arrive_and_wait();
  EXPECT_EQ(shared->stage.load(), 1);
  EXPECT_EQ(child.join(), 0);
}

TEST(ShmBarrier, SinglePartyNeverBlocks) {
  ShmBarrier barrier;
  barrier.init(1);
  for (int i = 0; i < 5; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

}  // namespace
}  // namespace ulipc
