#include "shm/shm_region.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "shm/process.hpp"

namespace ulipc {
namespace {

TEST(ShmRegion, AnonymousCreateAndWrite) {
  ShmRegion r = ShmRegion::create_anonymous(4096);
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.size(), 4096u);
  std::memset(r.base(), 0xAB, r.size());
  EXPECT_EQ(*r.at<unsigned char>(100), 0xAB);
}

TEST(ShmRegion, AnonymousSharedAcrossFork) {
  ShmRegion r = ShmRegion::create_anonymous(4096);
  auto* flag = new (r.base()) std::atomic<int>(0);
  ChildProcess child = ChildProcess::spawn([&] {
    flag->store(77);
    return 0;
  });
  EXPECT_EQ(child.join(), 0);
  EXPECT_EQ(flag->load(), 77);
}

TEST(ShmRegion, NamedCreateOpenRoundTrip) {
  const std::string name = "/ulipc_test_" + std::to_string(getpid());
  {
    ShmRegion creator = ShmRegion::create_named(name, 8192);
    *creator.at<int>(0) = 1234;
    ShmRegion opener = ShmRegion::open_named(name);
    EXPECT_EQ(opener.size(), 8192u);
    EXPECT_EQ(*opener.at<int>(0), 1234);
    *opener.at<int>(4) = 99;
    EXPECT_EQ(*creator.at<int>(4), 99);
  }
  // Creator destroyed -> name unlinked.
  EXPECT_THROW(ShmRegion::open_named(name), SysError);
}

TEST(ShmRegion, CreateNamedRefusesDuplicate) {
  const std::string name = "/ulipc_dup_" + std::to_string(getpid());
  ShmRegion first = ShmRegion::create_named(name, 4096);
  EXPECT_THROW(ShmRegion::create_named(name, 4096), SysError);
}

TEST(ShmRegion, OpenMissingThrows) {
  EXPECT_THROW(ShmRegion::open_named("/ulipc_definitely_missing_xyz"),
               SysError);
}

TEST(ShmRegion, MoveTransfersOwnership) {
  ShmRegion a = ShmRegion::create_anonymous(4096);
  void* base = a.base();
  ShmRegion b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.base(), base);
  ShmRegion c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.base(), base);
}

TEST(ShmRegion, DefaultIsInvalid) {
  ShmRegion r;
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r.size(), 0u);
}

}  // namespace
}  // namespace ulipc
