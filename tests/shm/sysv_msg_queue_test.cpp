#include "shm/sysv_msg_queue.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "queue/message.hpp"
#include "shm/process.hpp"

namespace ulipc {
namespace {

TEST(SysvMsgQueue, SendReceiveRoundTrip) {
  SysvMsgQueue q = SysvMsgQueue::create();
  const Message out(Op::kEcho, 3, 1.5);
  q.send(1, &out, sizeof(out));
  Message in;
  const std::size_t n = q.receive(0, &in, sizeof(in));
  EXPECT_EQ(n, sizeof(Message));
  EXPECT_EQ(in.opcode, Op::kEcho);
  EXPECT_EQ(in.channel, 3u);
  EXPECT_DOUBLE_EQ(in.value, 1.5);
}

TEST(SysvMsgQueue, FifoWithinType) {
  SysvMsgQueue q = SysvMsgQueue::create();
  for (int i = 0; i < 10; ++i) {
    const Message m(Op::kEcho, 0, static_cast<double>(i));
    q.send(1, &m, sizeof(m));
  }
  for (int i = 0; i < 10; ++i) {
    Message m;
    q.receive(1, &m, sizeof(m));
    EXPECT_DOUBLE_EQ(m.value, static_cast<double>(i));
  }
}

TEST(SysvMsgQueue, TypeSelection) {
  SysvMsgQueue q = SysvMsgQueue::create();
  const Message a(Op::kEcho, 0, 1.0);
  const Message b(Op::kEcho, 0, 2.0);
  q.send(5, &a, sizeof(a));
  q.send(9, &b, sizeof(b));
  Message got;
  q.receive(9, &got, sizeof(got));  // select type 9 first
  EXPECT_DOUBLE_EQ(got.value, 2.0);
  q.receive(0, &got, sizeof(got));
  EXPECT_DOUBLE_EQ(got.value, 1.0);
}

TEST(SysvMsgQueue, TryReceiveOnEmpty) {
  SysvMsgQueue q = SysvMsgQueue::create();
  Message m;
  std::size_t n = 0;
  EXPECT_FALSE(q.try_receive(0, &m, sizeof(m), &n));
  const Message out(Op::kEcho, 0, 7.0);
  q.send(1, &out, sizeof(out));
  EXPECT_TRUE(q.try_receive(0, &m, sizeof(m), &n));
  EXPECT_EQ(n, sizeof(Message));
  EXPECT_DOUBLE_EQ(m.value, 7.0);
}

TEST(SysvMsgQueue, VariableLengthPayloads) {
  SysvMsgQueue q = SysvMsgQueue::create();
  const std::string payload = "hello sysv";
  q.send(1, payload.data(), payload.size());
  char buf[64] = {};
  const std::size_t n = q.receive(0, buf, sizeof(buf));
  EXPECT_EQ(n, payload.size());
  EXPECT_EQ(std::string(buf, n), payload);
}

TEST(SysvMsgQueue, BlockingReceiveAcrossProcesses) {
  SysvMsgQueue q = SysvMsgQueue::create();
  ChildProcess child = ChildProcess::spawn([&] {
    SysvMsgQueue attached = SysvMsgQueue::attach(q.id());
    Message m;
    attached.receive(0, &m, sizeof(m));  // blocks until parent sends
    return m.value == 42.0 ? 0 : 1;
  });
  const Message m(Op::kEcho, 0, 42.0);
  q.send(1, &m, sizeof(m));
  EXPECT_EQ(child.join(), 0);
}

TEST(SysvMsgQueue, AttachDoesNotOwn) {
  SysvMsgQueue owner = SysvMsgQueue::create();
  {
    SysvMsgQueue borrowed = SysvMsgQueue::attach(owner.id());
    EXPECT_EQ(borrowed.id(), owner.id());
  }  // borrowed destroyed: must NOT remove the queue
  const Message m(Op::kEcho, 0, 1.0);
  EXPECT_NO_THROW(owner.send(1, &m, sizeof(m)));
}

}  // namespace
}  // namespace ulipc
