#include "shm/process.hpp"

#include <gtest/gtest.h>
#include <sched.h>
#include <signal.h>
#include <unistd.h>

#include <stdexcept>

namespace ulipc {
namespace {

TEST(ChildProcess, ExitCodePropagates) {
  ChildProcess c = ChildProcess::spawn([] { return 7; });
  EXPECT_EQ(c.join(), 7);
}

TEST(ChildProcess, ZeroExit) {
  ChildProcess c = ChildProcess::spawn([] { return 0; });
  EXPECT_EQ(c.join(), 0);
}

TEST(ChildProcess, UncaughtExceptionExits42) {
  ChildProcess c = ChildProcess::spawn(
      []() -> int { throw std::runtime_error("child boom"); });
  EXPECT_EQ(c.join(), 42);
}

TEST(ChildProcess, PidIsChildNotParent) {
  ChildProcess c = ChildProcess::spawn([] { return 0; });
  EXPECT_GT(c.pid(), 0);
  EXPECT_NE(c.pid(), getpid());
  c.join();
}

TEST(ChildProcess, JoinableLifecycle) {
  ChildProcess c = ChildProcess::spawn([] { return 0; });
  EXPECT_TRUE(c.joinable());
  c.join();
  EXPECT_FALSE(c.joinable());
}

TEST(ChildProcess, KillReportsSignal) {
  ChildProcess c = ChildProcess::spawn([] {
    pause();  // wait for a signal forever
    return 0;
  });
  c.kill();
  EXPECT_EQ(c.join(), -SIGKILL);
}

TEST(ChildProcess, MoveTransfersChild) {
  ChildProcess a = ChildProcess::spawn([] { return 3; });
  ChildProcess b = std::move(a);
  EXPECT_FALSE(a.joinable());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.join(), 3);
}

TEST(ChildProcess, JoinAllPreservesOrder) {
  std::vector<ChildProcess> children;
  for (int i = 0; i < 5; ++i) {
    children.push_back(ChildProcess::spawn([i] { return i; }));
  }
  const std::vector<int> codes = join_all(children);
  ASSERT_EQ(codes.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(codes[static_cast<std::size_t>(i)], i);
}

TEST(CtxSwitches, SelfCountsNonNegativeAndMonotonic) {
  const CtxSwitches a = ctx_switches_self();
  EXPECT_GE(a.voluntary, 0);
  EXPECT_GE(a.involuntary, 0);
  // Force at least one voluntary switch.
  for (int i = 0; i < 100; ++i) sched_yield();
  usleep(1000);
  const CtxSwitches b = ctx_switches_self();
  EXPECT_GE(b.voluntary, a.voluntary);
  const CtxSwitches d = b - a;
  EXPECT_GE(d.voluntary, 0);
}

}  // namespace
}  // namespace ulipc
