// Online statistics: Welford mean/variance, fixed-bucket histograms, and
// exact-percentile sample sets for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ulipc {

/// Numerically stable single-pass mean/variance (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const OnlineStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; gives exact percentiles. Fine for benchmark-sized
/// sample counts (we cap benchmark samples well below memory limits).
class SampleSet {
 public:
  explicit SampleSet(std::size_t reserve = 0) { samples_.reserve(reserve); }

  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    stats_.add(x);
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const OnlineStats& stats() const noexcept { return stats_; }

  /// Exact percentile by linear interpolation; p in [0, 100].
  [[nodiscard]] double percentile(double p) {
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
  }

  [[nodiscard]] double median() { return percentile(50.0); }

 private:
  std::vector<double> samples_;
  OnlineStats stats_;
  bool sorted_ = true;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp to
/// the end buckets. Used for latency distributions in the benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double x) noexcept {
    std::size_t idx = 0;
    if (x >= hi_) {
      idx = counts_.size() - 1;
    } else if (x > lo_) {
      idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                     static_cast<double>(counts_.size()));
      idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept {
    return bucket_lo(i + 1);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ulipc
