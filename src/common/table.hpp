// Text-table and CSV emitters used by every benchmark binary to print the
// paper's tables/figure series in a uniform, diff-friendly format.
#pragma once

#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace ulipc {

/// Column-aligned ASCII table. Build rows, then render to a stream.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  TextTable& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void render(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto line = [&](const std::vector<std::string>& row) {
      os << "|";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : empty_;
        os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
      }
      os << '\n';
    };
    auto rule = [&] {
      os << "+";
      for (const auto w : widths) os << std::string(w + 2, '-') << "+";
      os << '\n';
    };

    rule();
    line(header_);
    rule();
    for (const auto& r : rows_) line(r);
    rule();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

/// Minimal CSV emitter (quotes cells containing separators).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os_ << ',';
      write_cell(cells[i]);
    }
    os_ << '\n';
  }

 private:
  void write_cell(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os_ << cell;
      return;
    }
    os_ << '"';
    for (const char c : cell) {
      if (c == '"') os_ << '"';
      os_ << c;
    }
    os_ << '"';
  }

  std::ostream& os_;
};

}  // namespace ulipc
