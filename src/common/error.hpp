// Error handling: errno-carrying exceptions and check macros.
//
// The library is exception-based at setup/teardown boundaries (region
// creation, process spawning) and error-code based on hot paths (queue
// operations return bool, as in the paper's pseudo-code).
#pragma once

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ulipc {

/// Exception carrying an errno value plus context, thrown by setup-path
/// wrappers around system calls (shm_open, semget, fork, ...).
class SysError : public std::runtime_error {
 public:
  SysError(const std::string& what, int err)
      : std::runtime_error(what + ": " + std::strerror(err) + " (errno " +
                           std::to_string(err) + ")"),
        errno_value_(err) {}

  [[nodiscard]] int errno_value() const noexcept { return errno_value_; }

 private:
  int errno_value_;
};

/// Throws SysError{msg, errno} — call immediately after a failing syscall.
[[noreturn]] inline void throw_errno(const std::string& msg) {
  throw SysError(msg, errno);
}

/// Logic-error check for internal invariants (not user input).
class InvariantError : public std::logic_error {
  using std::logic_error::logic_error;
};

}  // namespace ulipc

/// Checks a setup-path condition; throws SysError with errno context on failure.
#define ULIPC_CHECK_ERRNO(cond, msg) \
  do {                               \
    if (!(cond)) {                   \
      ::ulipc::throw_errno(msg);     \
    }                                \
  } while (0)

/// Checks an internal invariant; throws InvariantError on failure.
#define ULIPC_INVARIANT(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::ulipc::InvariantError(std::string("invariant violated: ") +   \
                                    (msg) + " at " + __FILE__ + ":" +       \
                                    std::to_string(__LINE__));              \
    }                                                                       \
  } while (0)
