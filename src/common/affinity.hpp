// CPU affinity helpers.
//
// The paper's uniprocessor experiments are reproduced natively by pinning
// every process of the benchmark (server + all clients) to a single core,
// which serializes them exactly as a uniprocessor does.
#pragma once

#include <sched.h>
#include <unistd.h>

#include "common/error.hpp"

namespace ulipc {

/// Number of CPUs currently available to this process.
inline int cpu_count() noexcept {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

/// Pins the calling process/thread to a single CPU. Throws on failure.
inline void pin_to_cpu(int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  ULIPC_CHECK_ERRNO(sched_setaffinity(0, sizeof(set), &set) == 0,
                    "sched_setaffinity");
}

/// Pins to CPU (cpu mod cpu_count()) — callers can hand out logical ids
/// freely and still work on small machines.
inline void pin_to_cpu_wrapped(int cpu) { pin_to_cpu(cpu % cpu_count()); }

/// Removes any affinity restriction (all online CPUs allowed).
inline void unpin() {
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int i = 0; i < cpu_count(); ++i) CPU_SET(i, &set);
  ULIPC_CHECK_ERRNO(sched_setaffinity(0, sizeof(set), &set) == 0,
                    "sched_setaffinity(unpin)");
}

}  // namespace ulipc
