// Cache-line geometry and padding helpers.
//
// Shared-memory data structures in this library keep producer-written and
// consumer-written fields on distinct cache lines to avoid false sharing,
// which on the paper's target machines (and on modern x86) costs a coherence
// round-trip per access.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>

namespace ulipc {

// A fixed 64 rather than std::hardware_destructive_interference_size: these
// types live in shared memory mapped by independently compiled binaries, so
// the layout must not vary with compiler flags (-Winterference-size).
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T so that it occupies (at least) one full cache line.
/// Use for per-role fields of cross-process structures (head vs. tail lock,
/// awake flag vs. queue pointers) so writers on different cores do not
/// invalidate each other's lines.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  static_assert(std::is_trivially_destructible_v<T> || true, "usable for any T");
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Pad up to a full line even if T is smaller.
  char pad_[(sizeof(T) % kCacheLineSize) ? kCacheLineSize - (sizeof(T) % kCacheLineSize) : 0]{};
};

/// Rounds n up to the next multiple of `align` (power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

static_assert(align_up(1, 64) == 64);
static_assert(align_up(64, 64) == 64);
static_assert(align_up(65, 64) == 128);
static_assert(align_up(0, 8) == 0);

}  // namespace ulipc
