// EINTR-safe retry helpers.
//
// Chaos mode (tools/ulipc-perf) SIGKILLs workers and clients while traffic
// is running, so every surviving process sees signal storms (SIGCHLD from
// reaped children in the orchestrator, spurious wake-ups under ptrace/
// sanitizers). The shm layer already re-arms its own waits (semop/
// futex_wait/waitpid retry on EINTR with absolute deadlines); these helpers
// close the remaining gaps — plain nanosleep/usleep back-offs, which
// otherwise return early and silently shorten a back-off or a watch
// interval.
#pragma once

#include <time.h>

#include <cerrno>
#include <cstdint>

namespace ulipc {

/// Retries `call` (int-returning, -1 + errno on failure) until it stops
/// failing with EINTR. Returns the final result, errno preserved.
template <typename Fn>
inline int retry_eintr(Fn&& call) noexcept {
  int r;
  do {
    r = call();
  } while (r == -1 && errno == EINTR);
  return r;
}

/// Sleeps the FULL duration even across signal deliveries: nanosleep is
/// re-armed with the kernel-reported remainder until it completes. A plain
/// nanosleep(ts, nullptr) interrupted by a signal returns early — under a
/// SIGCHLD storm that turns an exponential back-off into a busy loop.
inline void sleep_ns_eintr(std::int64_t ns) noexcept {
  if (ns <= 0) return;
  timespec req{};
  req.tv_sec = static_cast<time_t>(ns / 1'000'000'000LL);
  req.tv_nsec = static_cast<long>(ns % 1'000'000'000LL);
  timespec rem{};
  while (nanosleep(&req, &rem) == -1 && errno == EINTR) req = rem;
}

}  // namespace ulipc
