// Wall-clock and delay-loop utilities.
//
// Throughput numbers in the paper are computed from "real elapsed time from
// the first message request until the last client disconnects"; we use
// CLOCK_MONOTONIC for that. The multiprocessor experiments additionally need
// a calibrated busy-wait delay loop ("25 usec" poll slices, paper §5), which
// must burn CPU without making system calls.
#pragma once

#include <cstdint>
#include <ctime>

namespace ulipc {

/// Nanoseconds since an arbitrary monotonic epoch.
inline std::int64_t now_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000LL + ts.tv_nsec;
}

/// CPU time (user+system) consumed by the calling thread, in nanoseconds.
inline std::int64_t thread_cpu_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000LL + ts.tv_nsec;
}

/// Calibrated busy-wait: spins (no syscalls) for approximately `ns`
/// nanoseconds. First use in a process runs a one-time calibration.
class DelayLoop {
 public:
  /// Spins for approximately ns nanoseconds.
  static void spin_ns(std::int64_t ns) noexcept {
    const double ipn = iters_per_ns();
    spin_iters(static_cast<std::uint64_t>(static_cast<double>(ns) * ipn) + 1);
  }

  /// Raw iteration spinner (each iteration is one forced memory update).
  static void spin_iters(std::uint64_t iters) noexcept {
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
      sink = sink + 1;
    }
  }

  /// Iterations of spin_iters() per nanosecond on this machine (cached).
  static double iters_per_ns() noexcept {
    static const double cached = calibrate();
    return cached;
  }

 private:
  static double calibrate() noexcept {
    // Warm up, then time a block big enough to dwarf clock_gettime overhead.
    spin_iters(100'000);
    constexpr std::uint64_t kProbe = 2'000'000;
    const std::int64_t t0 = now_ns();
    spin_iters(kProbe);
    const std::int64_t t1 = now_ns();
    const std::int64_t elapsed = (t1 - t0) > 0 ? (t1 - t0) : 1;
    return static_cast<double>(kProbe) / static_cast<double>(elapsed);
  }
};

/// Raw timestamp counter for trace records: rdtsc where available (one
/// instruction, no syscall, monotonic-enough on modern invariant-TSC
/// hardware), CLOCK_MONOTONIC elsewhere. Ticks are meaningless until
/// converted through a Calibration.
class TscClock {
 public:
#if defined(__x86_64__) || defined(__i386__)
  static constexpr bool kIsRdtsc = true;
  static std::uint64_t now() noexcept { return __builtin_ia32_rdtsc(); }
#else
  static constexpr bool kIsRdtsc = false;
  static std::uint64_t now() noexcept {
    return static_cast<std::uint64_t>(now_ns());
  }
#endif

  /// One-shot steady-clock-vs-TSC ratio measurement: sample both clocks
  /// across a short delay and take the ratio. Converting a tick `t` to
  /// CLOCK_MONOTONIC nanoseconds is then deterministic:
  ///   ns = mono_epoch_ns + (t - tsc_epoch) * ns_per_tick.
  struct Calibration {
    double ns_per_tick = 1.0;
    std::uint64_t tsc_epoch = 0;
    std::int64_t mono_epoch_ns = 0;

    [[nodiscard]] std::int64_t to_mono_ns(std::uint64_t tsc) const noexcept {
      const double dt =
          static_cast<double>(static_cast<std::int64_t>(tsc - tsc_epoch));
      return mono_epoch_ns + static_cast<std::int64_t>(dt * ns_per_tick);
    }
  };

  /// Measures the ratio over ~2 ms (long enough to dwarf the per-sample
  /// cost of either clock). On non-rdtsc fallbacks the ratio is exactly 1.
  static Calibration calibrate() noexcept {
    Calibration c;
    c.tsc_epoch = now();
    c.mono_epoch_ns = now_ns();
    if constexpr (!kIsRdtsc) return c;  // ticks ARE nanoseconds
    const std::int64_t t_end = c.mono_epoch_ns + 2'000'000;
    std::int64_t mono = c.mono_epoch_ns;
    while (mono < t_end) mono = now_ns();
    const std::uint64_t tsc = now();
    const auto dt = static_cast<double>(tsc - c.tsc_epoch);
    c.ns_per_tick =
        dt > 0.0 ? static_cast<double>(mono - c.mono_epoch_ns) / dt : 1.0;
    return c;
  }

  /// Process-wide cached calibration (first use pays the ~2 ms measurement).
  static const Calibration& cached() noexcept {
    static const Calibration c = calibrate();
    return c;
  }
};

/// Simple scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() noexcept { start_ = now_ns(); }
  [[nodiscard]] std::int64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  [[nodiscard]] double elapsed_us() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e3;
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  std::int64_t start_;
};

}  // namespace ulipc
