// Deterministic pseudo-random number generation.
//
// xoshiro256** (Blackman & Vigna) seeded via splitmix64. Used for property
// tests, randomized schedule fuzzing in the simulator, and workload jitter.
// We avoid std::mt19937 in hot simulator paths: xoshiro is 4x faster and its
// state is trivially copyable, which matters for snapshotting sim state.
#pragma once

#include <cstdint>
#include <limits>

namespace ulipc {

/// splitmix64: used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ulipc
