// Fixed-size message format.
//
// The paper: "Each message contains 24 bytes which include: an opcode to
// identify the request type; the channel on which to return the result; and
// a double precision floating point value that serves as an argument."
// Fixed-size messages permit efficient free-pool management; variable-sized
// payloads ride in shared memory and are referenced by `ext_offset`.
#pragma once

#include <cstdint>
#include <type_traits>

namespace ulipc {

/// Request/response opcodes understood by the benchmark & example servers.
enum class Op : std::uint32_t {
  kConnect = 1,     // client announces itself; value carries client id
  kDisconnect = 2,  // client leaves; server replies then forgets the client
  kEcho = 3,        // echo `value` back (the paper's benchmark op)
  kCompute = 4,     // server burns `value` microseconds, then echoes
  kPut = 5,         // examples/kv_store: store value at key ext_offset
  kGet = 6,         // examples/kv_store: load value at key ext_offset
  kTask = 7,        // examples/task_farm: execute task, reply with result
  kError = 255,     // server-side failure indicator in replies
};

struct Message {
  Op opcode = Op::kEcho;
  std::uint32_t channel = 0;  // reply-queue (client) id
  double value = 0.0;         // the f64 argument
  std::uint64_t ext_offset = 0;  // optional: shm offset of a variable payload

  Message() = default;
  Message(Op op, std::uint32_t ch, double v, std::uint64_t ext = 0)
      : opcode(op), channel(ch), value(v), ext_offset(ext) {}
};

static_assert(sizeof(Message) == 24, "paper specifies 24-byte messages");
static_assert(std::is_trivially_copyable_v<Message>,
              "messages are memcpy'd through queues");

/// Causal-trace stamp that rides NEXT TO a message through the queues —
/// never inside the 24-byte wire format above, which stays exactly the
/// paper's layout. `id` is the span id minted at send (0 = untraced), and
/// `tick` is the sender's TSC at the stamping enqueue, so the receiver can
/// compute queue-residency without a second clock read on the send side.
/// Queues must (re)write the stamp on every enqueue, zeroed when untraced,
/// so a recycled node or lapped ring slot never leaks a stale span id.
struct SpanStamp {
  std::uint64_t id = 0;
  std::int64_t tick = 0;

  [[nodiscard]] bool traced() const noexcept { return id != 0; }
};

static_assert(sizeof(SpanStamp) == 16);
static_assert(std::is_trivially_copyable_v<SpanStamp>,
              "stamps are memcpy'd through queues alongside messages");

}  // namespace ulipc
