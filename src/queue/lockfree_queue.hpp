// Michael & Scott lock-free concurrent FIFO queue, shared-memory resident.
//
// The non-blocking half of the PODC'96 pair (the two-lock half is
// queue/ms_two_lock_queue.hpp). Nodes come from the same bounded NodePool;
// links are {tag:32, index:32} words (MsgNode::lf_next) CASed directly, so
// the structure is position independent and ABA-safe up to 2^32 rewrites
// of one link (DESIGN.md §18 records the caveat). head_/tail_ are counted
// the same way.
//
// Differences from the textbook version, required by our setting:
//  * bounded capacity via the same CAS-reserve on size_ as the two-lock
//    engine — reserve first, so a crash mid-enqueue can only leave size_
//    OVER-counting (fail-safe: a spurious non-empty probe, never a lost
//    wake-up). mark_reachable() heals the counter when it can prove the
//    queue quiescent (see below);
//  * crash-robustness replaces lock stealing with the algorithm's native
//    helping: a dead enqueuer's lagging tail is swung forward by the next
//    operation, so there is no repair path at all. The dequeue-side crash
//    window (old dummy detached but not yet released) is covered by the
//    pool's dequeue announcements (msg_pool.hpp): intent is published
//    before each head CAS, the winner additionally owner-stamps the dummy
//    right after winning, and the sweep reclaims announced nodes of dead
//    dequeuers after tag revalidation;
//  * validated reads: the message is copied out BEFORE the head CAS and
//    discarded if the CAS fails. The copy can race a recycler refilling
//    the node, so msg/span bytes move through relaxed atomic word copies
//    (lf_copy_words) on both the fill and the copy-out side — the real
//    publication ordering is the release link-CAS / acquire link-load
//    pair, exactly like the two-lock engine's next_ref discipline;
//  * explore markers reuse the kQ* points at the analogous linearization
//    steps (node ready / linked / done; pre-CAS snapshot / head advanced /
//    released), so the PR-5 crash-point suite and the Figure-4 replays run
//    unchanged against this engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/cacheline.hpp"
#include "explore/hooks.hpp"
#include "queue/message.hpp"
#include "queue/msg_pool.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

class LockFreeQueue {
 public:
  /// Builds a queue in `arena` (see TwoLockQueue::create for the
  /// contract). Prefer MsgQueue::create (queue/msg_queue.hpp), which
  /// placement-builds either engine behind one facade.
  static LockFreeQueue* create(ShmArena& arena, NodePool* pool,
                               std::uint32_t capacity = 0) {
    auto* q = arena.construct<LockFreeQueue>();
    q->init(pool, capacity);
    return q;
  }

  LockFreeQueue() = default;
  LockFreeQueue(const LockFreeQueue&) = delete;
  LockFreeQueue& operator=(const LockFreeQueue&) = delete;

  /// Second-phase constructor (the facade placement-news then inits).
  void init(NodePool* pool, std::uint32_t capacity) {
    pool_.set(pool);
    capacity_ = capacity == 0 ? std::numeric_limits<std::uint32_t>::max()
                              : capacity;
    const ShmIndex dummy = pool->allocate();
    ULIPC_INVARIANT(dummy != kNullIndex, "pool exhausted creating queue");
    pool->node(dummy).owner_pid = 0;  // the dummy belongs to the queue
    // lf_next keeps its release-time {tag, null} — the tag must only ever
    // move forward over a node's lifetime.
    const std::uint64_t lf =
        pool->lf_next(dummy).load(std::memory_order_relaxed);
    ULIPC_INVARIANT(lf_idx(lf) == kNullIndex, "fresh node with a live link");
    head_.value.store(lf_pack(0, dummy), std::memory_order_release);
    tail_.value.store(lf_pack(0, dummy), std::memory_order_release);
  }

  bool enqueue(const Message& msg, SpanStamp stamp = {}) noexcept {
    // Reserve capacity first so we never strand an allocated node, and so
    // a crash anywhere past this point leaves size_ over-counting, never
    // under (see header comment).
    std::uint32_t sz = size_.load(std::memory_order_relaxed);
    do {
      if (sz >= capacity_) return false;
    } while (!size_.compare_exchange_weak(sz, sz + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed));
    NodePool& pool = *pool_;
    const ShmIndex idx = pool.allocate();
    if (idx == kNullIndex) {
      size_.fetch_sub(1, std::memory_order_release);
      return false;
    }
    fill_node(pool, idx, msg, stamp);
    explore::point(explore::Point::kQEnqueueNodeReady);
    link_node(pool, idx);
    explore::point(explore::Point::kQEnqueueDone);
    return true;
  }

  /// Appends up to `n` messages with ONE link CAS: reserves capacity,
  /// pre-links the private chain, splices its head onto the tail node,
  /// then swings tail_ to the chain's last node (helpers may get there
  /// first, one hop at a time — both outcomes converge). Crash invariant
  /// matches scalar enqueue: after the splice the whole chain is reachable.
  std::uint32_t enqueue_batch(const Message* msgs, std::uint32_t n,
                              SpanStamp stamp = {}) noexcept {
    if (n == 0) return 0;
    std::uint32_t sz = size_.load(std::memory_order_relaxed);
    std::uint32_t want;
    do {
      if (sz >= capacity_) return 0;
      want = std::min(n, capacity_ - sz);
    } while (!size_.compare_exchange_weak(sz, sz + want,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed));
    NodePool& pool = *pool_;
    ShmIndex first = kNullIndex;
    ShmIndex last = kNullIndex;
    std::uint32_t got = 0;
    for (; got < want; ++got) {
      const ShmIndex idx = pool.allocate();
      if (idx == kNullIndex) break;  // pool exhausted: splice what we have
      fill_node(pool, idx, msgs[got], got == 0 ? stamp : SpanStamp{});
      if (first == kNullIndex) {
        first = idx;
      } else {
        // Private chain link: tag-bump like a public link so a stale CAS
        // from this node's previous life keeps failing.
        const std::uint64_t lf =
            pool.lf_next(last).load(std::memory_order_relaxed);
        pool.lf_next(last).store(lf_pack(lf_tag(lf) + 1, idx),
                                 std::memory_order_release);
      }
      last = idx;
    }
    if (got < want) size_.fetch_sub(want - got, std::memory_order_release);
    if (got == 0) return 0;
    explore::point(explore::Point::kQEnqueueNodeReady);
    link_chain(pool, first, last);
    explore::point(explore::Point::kQEnqueueDone);
    return got;
  }

  bool dequeue(Message* out, SpanStamp* stamp = nullptr) noexcept {
    NodePool& pool = *pool_;
    const int slot = pool.announce_slot();
    Message msg;
    SpanStamp sp;
    for (;;) {
      const std::uint64_t h = head_.value.load(std::memory_order_acquire);
      const std::uint64_t t = tail_.value.load(std::memory_order_acquire);
      const std::uint64_t next =
          pool.lf_next(lf_idx(h)).load(std::memory_order_acquire);
      if (h != head_.value.load(std::memory_order_acquire)) continue;
      if (lf_idx(next) == kNullIndex) return false;  // only the dummy
      if (lf_idx(h) == lf_idx(t)) {
        // Tail lags behind a linked node (its enqueuer stalled or died):
        // help it forward — the lock-free replacement for the two-lock
        // engine's repair_tail_from_head.
        std::uint64_t expect = t;
        tail_.value.compare_exchange_strong(
            expect, lf_pack(lf_tag(t) + 1, lf_idx(next)),
            std::memory_order_release, std::memory_order_relaxed);
        continue;
      }
      // Validated read: copy out before the CAS, discard on failure.
      lf_copy_words(&msg, &pool.node(lf_idx(next)).msg, sizeof(Message));
      lf_copy_words(&sp, &pool.node(lf_idx(next)).span, sizeof(SpanStamp));
      explore::point(explore::Point::kQDequeueLocked);
      // Publish detach intent before committing (crash cover — see
      // NodePool's announcement block comment).
      pool.announce_dequeue(slot, lf_idx(h), lf_tag(next));
      std::uint64_t expect = h;
      if (head_.value.compare_exchange_strong(
              expect, lf_pack(lf_tag(h) + 1, lf_idx(next)),
              std::memory_order_acq_rel, std::memory_order_relaxed)) {
        // The old dummy is exclusively ours now; the stamp covers the
        // announcement-exhausted fallback and makes the generic
        // unmarked+dead-owner sweep rule apply too.
        std::atomic_ref<std::uint32_t>(pool.node(lf_idx(h)).owner_pid)
            .store(robust_self_pid(), std::memory_order_relaxed);
        explore::point(explore::Point::kQDequeueAdvanced);
        size_.fetch_sub(1, std::memory_order_release);
        pool.release(lf_idx(h));
        pool.clear_announce(slot);
        explore::point(explore::Point::kQDequeueDone);
        *out = msg;
        if (stamp != nullptr) *stamp = sp;
        return true;
      }
      pool.clear_announce(slot);
    }
  }

  /// Lock-free dequeue commits one node per CAS, so the batch variant is
  /// the scalar loop — there is no lock acquisition to amortize. (An
  /// LCRQ-style segmented ring would batch for real; DESIGN.md §18 leaves
  /// it as the named next step.) Returns how many were removed; `stamp`
  /// receives the LAST traced stamp like the two-lock engine.
  std::uint32_t dequeue_batch(Message* out, std::uint32_t max,
                              SpanStamp* stamp = nullptr) noexcept {
    if (stamp != nullptr) *stamp = SpanStamp{};
    SpanStamp sp;
    std::uint32_t got = 0;
    while (got < max && dequeue(out + got, &sp)) {
      if (stamp != nullptr && sp.traced()) *stamp = sp;
      ++got;
    }
    return got;
  }

  [[nodiscard]] bool empty() const noexcept {
    return size_.load(std::memory_order_acquire) == 0;
  }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  // ---- recovery interface (see queue/queue_recovery.hpp) ----

  /// Marks every node reachable from head_ (dummy included). No locks
  /// exist to freeze the queue, so the walk is bounded and conservative:
  /// it may mark nodes a racing dequeuer just detached (their releaser
  /// will return them — marking only means "not leaked"). size_ is
  /// reseated ONLY when the walk can prove quiescence (head, size, and
  /// the walked tail's link all stable across the walk); a busy queue's
  /// counter heals at the next quiet sweep instead. Returns the counted
  /// elements (walk length minus the dummy).
  std::uint32_t mark_reachable(std::vector<char>& mark) noexcept {
    NodePool& pool = *pool_;
    const std::uint64_t h0 = head_.value.load(std::memory_order_acquire);
    const std::uint32_t sz0 = size_.load(std::memory_order_acquire);
    std::uint32_t visited = 0;
    ShmIndex i = lf_idx(h0);
    ShmIndex last = i;
    while (i != kNullIndex && visited <= pool.capacity()) {
      mark[i] = 1;
      ++visited;
      last = i;
      i = lf_idx(pool.lf_next(i).load(std::memory_order_acquire));
    }
    const std::uint32_t count = visited > 0 ? visited - 1 : 0;
    const bool quiescent =
        head_.value.load(std::memory_order_acquire) == h0 &&
        size_.load(std::memory_order_acquire) == sz0 &&
        lf_idx(pool.lf_next(last).load(std::memory_order_acquire)) ==
            kNullIndex;
    if (quiescent && sz0 != count) {
      // Heal the over-count a dead enqueuer leaves between its capacity
      // reservation and its link CAS. Quiescence can still be spoofed by
      // a reserver parked for the whole walk — same exposure as the
      // two-lock engine's reseat, whose locks also cannot see parked
      // reservations (DESIGN.md §18).
      size_.store(count, std::memory_order_release);
    }
    return count;
  }

  /// Visits every PENDING message (dummy skipped) for payload pinning.
  /// Same bounded, conservative walk as mark_reachable — an extra visit
  /// pins a payload slot for one sweep, never unpins one.
  template <typename Fn>
  void for_each_pending(Fn&& fn) noexcept {
    NodePool& pool = *pool_;
    std::uint32_t visited = 0;
    ShmIndex i = lf_idx(head_.value.load(std::memory_order_acquire));
    if (i != kNullIndex) {
      i = lf_idx(pool.lf_next(i).load(std::memory_order_acquire));
    }
    for (; i != kNullIndex && visited < pool.capacity();
         i = lf_idx(pool.lf_next(i).load(std::memory_order_acquire))) {
      fn(pool.node(i).msg);
      ++visited;
    }
  }

  std::uint32_t drain() noexcept {
    Message scratch;
    std::uint32_t n = 0;
    while (dequeue(&scratch)) ++n;
    return n;
  }

  /// TEST ONLY: models the worst-case enqueuer death — the node is linked
  /// (message durable, like the two-lock version dying with the tail lock
  /// held) but tail_ is left lagging for the next operation to help
  /// forward. Calling process must exit immediately.
  [[gnu::noinline]] ShmIndex crash_mid_enqueue_for_test(
      const Message& msg) noexcept {
    size_.fetch_add(1, std::memory_order_acquire);
    NodePool& pool = *pool_;
    const ShmIndex idx = pool.allocate();
    if (idx == kNullIndex) return kNullIndex;
    fill_node(pool, idx, msg, SpanStamp{});
    for (;;) {
      const std::uint64_t t = tail_.value.load(std::memory_order_acquire);
      const std::uint64_t next =
          pool.lf_next(lf_idx(t)).load(std::memory_order_acquire);
      if (lf_idx(next) != kNullIndex) {
        std::uint64_t expect = t;
        tail_.value.compare_exchange_strong(
            expect, lf_pack(lf_tag(t) + 1, lf_idx(next)),
            std::memory_order_release, std::memory_order_relaxed);
        continue;
      }
      std::uint64_t expect = next;
      if (pool.lf_next(lf_idx(t)).compare_exchange_strong(
              expect, lf_pack(lf_tag(next) + 1, idx),
              std::memory_order_release, std::memory_order_relaxed)) {
        // Deliberately no tail swing.
        return idx;
      }
    }
  }

 private:
  static void fill_node(NodePool& pool, ShmIndex idx, const Message& msg,
                        SpanStamp stamp) noexcept {
    MsgNode& node = pool.node(idx);
    lf_copy_words(&node.msg, &msg, sizeof(Message));
    lf_copy_words(&node.span, &stamp, sizeof(SpanStamp));
    // node.next (free-list link) was already nulled by allocate();
    // lf_next keeps its {tag, null} from release() — never reset the tag.
  }

  void link_node(NodePool& pool, ShmIndex idx) noexcept {
    link_chain(pool, idx, idx);
  }

  /// Splices the private chain first..last after the current tail node and
  /// swings tail_ to `last`.
  void link_chain(NodePool& pool, ShmIndex first, ShmIndex last) noexcept {
    for (;;) {
      const std::uint64_t t = tail_.value.load(std::memory_order_acquire);
      const std::uint64_t next =
          pool.lf_next(lf_idx(t)).load(std::memory_order_acquire);
      if (t != tail_.value.load(std::memory_order_acquire)) continue;
      if (lf_idx(next) != kNullIndex) {
        // Tail lags: help it one hop, then retry.
        std::uint64_t expect = t;
        tail_.value.compare_exchange_strong(
            expect, lf_pack(lf_tag(t) + 1, lf_idx(next)),
            std::memory_order_release, std::memory_order_relaxed);
        continue;
      }
      std::uint64_t expect = next;
      if (pool.lf_next(lf_idx(t)).compare_exchange_strong(
              expect, lf_pack(lf_tag(next) + 1, first),
              std::memory_order_release, std::memory_order_relaxed)) {
        explore::point(explore::Point::kQEnqueueLinked);
        // Swing tail to the chain's end; helpers advancing one hop at a
        // time make this CAS best-effort.
        std::uint64_t te = t;
        tail_.value.compare_exchange_strong(
            te, lf_pack(lf_tag(t) + 1, last), std::memory_order_release,
            std::memory_order_relaxed);
        return;
      }
    }
  }

  // Consumer side, producer side, and the shared size counter each own
  // their cache line(s), mirroring the two-lock engine's layout audit.
  CacheAligned<std::atomic<std::uint64_t>> head_;
  CacheAligned<std::atomic<std::uint64_t>> tail_;
  alignas(kCacheLineSize) std::atomic<std::uint32_t> size_{0};
  std::uint32_t capacity_ = 0;
  OffsetPtr<NodePool> pool_;

  static_assert(sizeof(CacheAligned<std::atomic<std::uint64_t>>) ==
                    kCacheLineSize,
                "head/tail words must each own a full cache line");
};

static_assert(alignof(LockFreeQueue) == kCacheLineSize,
              "queue must be line-aligned for the member asserts to hold");

}  // namespace ulipc
