// Variable-size message payloads in shared memory.
//
// The paper (§2.1): "The interface uses fixed sized messages to permit
// efficient free-pool management. Variable sized messages can be
// accommodated by using one of the fields of the fixed sized message to
// point to a variable sized component in shared memory."
//
// PayloadPool manages fixed-capacity payload slots in a shared arena; a
// Message's ext_offset field carries the slot's arena offset across the
// queue. Ownership is a simple baton: the sender acquires and fills a slot,
// the receiver reads it and either releases it or reuses it for the reply
// (the kv_store example replies in place).
//
// Slots are cache-line aligned and the free list is index-linked under a
// RobustSpinlock (same discipline as NodePool), so the pool works across
// address spaces AND survives a slot holder dying mid-operation: every
// acquired slot is stamped with its holder's pid, a stolen lock triggers a
// free-count recount, and the recovery sweep (queue/queue_recovery.hpp)
// returns slots orphaned by corpses.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/cacheline.hpp"
#include "common/error.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

class PayloadPool {
 public:
  /// Offset value that never names a valid slot (0 = "no payload", matching
  /// a default-constructed Message).
  static constexpr std::uint64_t kNoPayload = 0;

  /// Carves a pool of `slots` payload buffers of `slot_bytes` each out of
  /// `arena`. slot_bytes is rounded up to a cache line.
  static PayloadPool* create(ShmArena& arena, std::uint32_t slot_bytes,
                             std::uint32_t slots) {
    ULIPC_INVARIANT(slots > 0, "payload pool needs at least one slot");
    auto* pool = arena.construct<PayloadPool>();
    pool->slot_bytes_ = static_cast<std::uint32_t>(
        align_up(slot_bytes + sizeof(SlotHeader), kCacheLineSize) -
        sizeof(SlotHeader));
    pool->slot_count_ = slots;
    const std::uint64_t stride = sizeof(SlotHeader) + pool->slot_bytes_;
    char* base = static_cast<char*>(
        arena.allocate(stride * slots, kCacheLineSize));
    pool->slots_.set(base);
    pool->arena_base_offset_ = arena.to_offset(base);
    for (std::uint32_t i = 0; i < slots; ++i) {
      auto* hdr = reinterpret_cast<SlotHeader*>(base + i * stride);
      hdr->next_free = (i + 1 < slots) ? i + 1 : kNullIndex;
      hdr->owner_pid = 0;
      hdr->used_bytes = 0;
    }
    pool->free_head_ = 0;
    pool->free_count_ = slots;
    return pool;
  }

  PayloadPool() = default;
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// Claims a slot; returns its ext_offset token, or kNoPayload if the pool
  /// is exhausted (callers back off exactly like on a full queue). The slot
  /// is stamped with the caller's pid until release().
  std::uint64_t acquire() noexcept {
    RobustGuard g(lock_.value);
    if (g.stolen()) recount_free_locked();
    if (free_head_ == kNullIndex) return kNoPayload;
    const ShmIndex idx = free_head_;
    SlotHeader* hdr = header(idx);
    free_head_ = hdr->next_free;
    hdr->next_free = kNullIndex;
    hdr->owner_pid = robust_self_pid();
    hdr->used_bytes = 0;
    --free_count_;
    return token_of(idx);
  }

  /// Returns a slot to the pool.
  void release(std::uint64_t token) noexcept {
    const ShmIndex idx = index_of(token);
    RobustGuard g(lock_.value);
    if (g.stolen()) recount_free_locked();
    header(idx)->owner_pid = 0;
    header(idx)->next_free = free_head_;
    free_head_ = idx;
    ++free_count_;
  }

  /// Re-stamps the slot with the calling process's pid. The receive side of
  /// a baton pass calls this so the slot is reclaimed against the *current*
  /// holder's life, not the (possibly already dead) sender's.
  void adopt(std::uint64_t token) noexcept {
    header(index_of(token))->owner_pid = robust_self_pid();
  }

  /// Raw data pointer and capacity of a slot.
  [[nodiscard]] char* data(std::uint64_t token) noexcept {
    return reinterpret_cast<char*>(header(index_of(token)) + 1);
  }
  [[nodiscard]] std::uint32_t slot_bytes() const noexcept {
    return slot_bytes_;
  }

  /// Copies `bytes` into the slot; records the length. Returns false if the
  /// payload does not fit.
  bool write(std::uint64_t token, const void* src, std::uint32_t bytes) noexcept {
    if (bytes > slot_bytes_) return false;
    SlotHeader* hdr = header(index_of(token));
    std::memcpy(hdr + 1, src, bytes);
    hdr->used_bytes = bytes;
    return true;
  }

  bool write(std::uint64_t token, std::string_view text) noexcept {
    return write(token, text.data(), static_cast<std::uint32_t>(text.size()));
  }

  /// View of the bytes previously written to the slot.
  [[nodiscard]] std::string_view read(std::uint64_t token) noexcept {
    SlotHeader* hdr = header(index_of(token));
    return std::string_view(reinterpret_cast<const char*>(hdr + 1),
                            hdr->used_bytes);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return slot_count_; }
  [[nodiscard]] std::uint32_t free_count() const noexcept {
    return free_count_;
  }

  // ---- recovery primitives (see queue/queue_recovery.hpp) ----

  /// The free-list lock, for recovery tooling and tests.
  [[nodiscard]] RobustSpinlock& lock() noexcept { return lock_.value; }

  /// Slot index for a token — lets the recovery sweep mark slots referenced
  /// by messages still sitting in queues.
  [[nodiscard]] ShmIndex index_of_token(std::uint64_t token) const noexcept {
    return index_of(token);
  }

  /// True if the token plausibly names a slot of this pool (recovery sweeps
  /// see arbitrary ext_offset values, including kNoPayload).
  [[nodiscard]] bool owns_token(std::uint64_t token) const noexcept {
    if (token < arena_base_offset_) return false;
    const std::uint64_t rel = token - arena_base_offset_;
    return rel % stride() == 0 && rel / stride() < slot_count_;
  }

  /// Marks every slot currently on the free list in `mark` (capacity()
  /// entries) and repairs free_count_.
  void mark_free(std::vector<char>& mark) noexcept {
    RobustGuard g(lock_.value);
    std::uint32_t count = 0;
    for (ShmIndex i = free_head_;
         i != kNullIndex && count < slot_count_; i = header(i)->next_free) {
      mark[i] = 1;
      ++count;
    }
    free_count_ = count;
  }

  /// Releases every slot that is NOT marked (neither free nor referenced by
  /// a queued message) and whose holder is dead per `is_alive`. Returns the
  /// number reclaimed. Caller serializes sweeps.
  template <typename LivenessFn>
  std::uint32_t reclaim_unmarked_dead(const std::vector<char>& mark,
                                      LivenessFn&& is_alive) noexcept {
    std::uint32_t reclaimed = 0;
    for (ShmIndex i = 0; i < slot_count_; ++i) {
      if (mark[i]) continue;
      const std::uint32_t owner = header(i)->owner_pid;
      if (owner != 0 && !is_alive(owner)) {
        release(token_of(i));
        ++reclaimed;
      }
    }
    return reclaimed;
  }

 private:
  struct SlotHeader {
    ShmIndex next_free;
    std::uint32_t owner_pid;   // 0 while free; else current holder
    std::uint32_t used_bytes;
  };

  [[nodiscard]] std::uint64_t stride() const noexcept {
    return sizeof(SlotHeader) + slot_bytes_;
  }
  [[nodiscard]] SlotHeader* header(ShmIndex idx) noexcept {
    return reinterpret_cast<SlotHeader*>(slots_.get() + idx * stride());
  }
  [[nodiscard]] const SlotHeader* header(ShmIndex idx) const noexcept {
    return reinterpret_cast<const SlotHeader*>(slots_.get() + idx * stride());
  }
  // Tokens are arena offsets of the slot header, so they are meaningful in
  // every process and 0 stays free for kNoPayload.
  [[nodiscard]] std::uint64_t token_of(ShmIndex idx) const noexcept {
    return arena_base_offset_ + idx * stride();
  }
  [[nodiscard]] ShmIndex index_of(std::uint64_t token) const noexcept {
    return static_cast<ShmIndex>((token - arena_base_offset_) / stride());
  }

  /// Walks the free list under the (already held) lock and resets
  /// free_count_ — the only field a corpse can leave stale here.
  void recount_free_locked() noexcept {
    std::uint32_t count = 0;
    for (ShmIndex i = free_head_;
         i != kNullIndex && count < slot_count_; i = header(i)->next_free) {
      ++count;
    }
    free_count_ = count;
  }

  CacheAligned<RobustSpinlock> lock_;
  ShmIndex free_head_ = kNullIndex;
  std::uint32_t free_count_ = 0;
  std::uint32_t slot_count_ = 0;
  std::uint32_t slot_bytes_ = 0;
  std::uint64_t arena_base_offset_ = 0;
  OffsetPtr<char> slots_;
};

}  // namespace ulipc
