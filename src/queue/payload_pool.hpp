// Zero-copy variable-size payload plane in shared memory.
//
// The paper (§2.1): "The interface uses fixed sized messages to permit
// efficient free-pool management. Variable sized messages can be
// accommodated by using one of the fields of the fixed sized message to
// point to a variable sized component in shared memory."
//
// PayloadPool is the loaned-buffer realization of that sentence: a client
// loans a buffer of the size it actually needs, writes the payload IN PLACE
// (no copy through a staging buffer), publishes the byte count, and sends
// only the slot's token in Message::ext_offset. The receiver consumes the
// bytes in place and either releases the slot or reuses the loan for its
// reply (the kv_store example replies in place — the "ownership baton").
//
// Size classes: slots come in geometric size classes (64 B, 128 B, … up to
// a configured maximum, 1 MiB by default wherever benches sweep), each
// class with its own index-linked free list under its own RobustSpinlock —
// concurrent clients loaning different sizes never serialize on one lock,
// and a loan takes the smallest class that fits (falling back to larger
// classes when the ideal one is exhausted, exactly like a segregated-fit
// allocator).
//
// Tokens: a token is `generation << kTokenGenShift | arena offset of the
// slot header`. The offset makes the token meaningful in every process
// (arena offsets are mapping-address independent); the per-slot generation,
// bumped on every loan, makes tokens unique across slot reuse — which is
// what lets the resilience layer use the loan token itself as its
// stale-reply dedup tag. 0 (kNoPayload) is never a valid token because
// offset 0 is the arena header.
//
// Crash safety (same discipline as NodePool):
//  * every loaned slot is stamped with the holder's pid; the recovery sweep
//    (queue/queue_recovery.hpp) releases slots whose holder died and whose
//    token is referenced by no live message;
//  * a stolen class lock triggers a free-list recount for that class;
//  * release() commits by the single free_head store, with the owner stamp
//    cleared only AFTER the commit: dying before the commit leaves a
//    dead-owned loan (swept), dying after leaves a free-listed slot with a
//    stale owner stamp, which mark_free() repairs on the next walk.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/cacheline.hpp"
#include "common/error.hpp"
#include "explore/hooks.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

class PayloadPool {
 public:
  /// Offset value that never names a valid slot (0 = "no payload", matching
  /// a default-constructed Message).
  static constexpr std::uint64_t kNoPayload = 0;

  /// Hard ceiling on size classes: 64 B .. 1 MiB geometric is 15 classes.
  static constexpr std::uint32_t kMaxClasses = 16;

  /// Token layout: low kTokenGenShift bits carry the slot header's arena
  /// offset, the high bits the slot generation. 2^40 bytes of arena is far
  /// beyond any region this library maps; 2^24 generations wrap harmlessly
  /// (a dedup tag only needs to differ from the previous incarnation).
  static constexpr std::uint32_t kTokenGenShift = 40;
  static constexpr std::uint64_t kTokenOffsetMask =
      (std::uint64_t{1} << kTokenGenShift) - 1;

  struct Config {
    std::uint32_t min_bytes = 64;        // smallest class (rounded to >= 16)
    std::uint32_t max_bytes = 1u << 20;  // largest class
    std::uint32_t slots_per_class = 8;   // uniform per-class slot count
  };

  /// Arena bytes create() will consume for `cfg` (pool header + slot
  /// storage + per-allocation alignment), for region sizing.
  static std::size_t bytes_for(const Config& cfg) {
    std::size_t bytes = sizeof(PayloadPool) + kCacheLineSize;
    std::uint32_t cls = class_bytes_floor(cfg.min_bytes);
    for (std::uint32_t c = 0; c < kMaxClasses && cls <= cfg.max_bytes;
         ++c, cls <<= 1) {
      bytes += cfg.slots_per_class * stride_for(cls) + kCacheLineSize;
    }
    return bytes;
  }

  /// Carves the size-class plane out of `arena`.
  static PayloadPool* create(ShmArena& arena, const Config& cfg) {
    ULIPC_INVARIANT(cfg.slots_per_class > 0 &&
                        cfg.min_bytes <= cfg.max_bytes,
                    "bad payload plane config");
    auto* pool = arena.construct<PayloadPool>();
    std::uint32_t cls = class_bytes_floor(cfg.min_bytes);
    std::uint32_t n = 0;
    std::uint32_t base_index = 0;
    for (; n < kMaxClasses && cls <= cfg.max_bytes; ++n, cls <<= 1) {
      SizeClass& sc = pool->classes_[n];
      sc.slot_bytes = cls;
      sc.slot_count = cfg.slots_per_class;
      sc.base_index = base_index;
      const std::uint64_t stride = stride_for(cls);
      char* base = static_cast<char*>(
          arena.allocate(stride * cfg.slots_per_class, kCacheLineSize));
      sc.base_offset = arena.to_offset(base);
      for (std::uint32_t i = 0; i < cfg.slots_per_class; ++i) {
        auto* hdr = reinterpret_cast<SlotHeader*>(base + i * stride);
        hdr->next_free = (i + 1 < cfg.slots_per_class) ? i + 1 : kNullIndex;
        hdr->owner_pid = 0;
        hdr->used_bytes = 0;
        hdr->generation = 0;
        hdr->size_class = n;
        hdr->span_id = 0;
      }
      sc.free_head = 0;
      sc.free_count = cfg.slots_per_class;
      sc.loaned_high_water = 0;
      if (n == 0) {
        pool->plane_base_.set(base);
        pool->plane_base_offset_ = sc.base_offset;
      }
      base_index += cfg.slots_per_class;
    }
    ULIPC_INVARIANT(n > 0, "payload plane needs at least one size class");
    pool->class_count_ = n;
    pool->slot_count_ = base_index;
    return pool;
  }

  PayloadPool() = default;
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  // ---- loan / publish / release ----

  /// Loans a buffer of at least `bytes` capacity from the smallest class
  /// that fits (spilling to larger classes when it is exhausted). Returns
  /// the slot's token, or kNoPayload when no class can serve the request
  /// (callers back off exactly like on a full queue). The slot is stamped
  /// with the caller's pid until release().
  [[nodiscard]] std::uint64_t loan(std::uint32_t bytes) noexcept {
    for (std::uint32_t c = class_for(bytes); c < class_count_; ++c) {
      SizeClass& sc = classes_[c];
      std::uint64_t token = kNoPayload;
      {
        RobustGuard g(sc.lock.value);
        if (g.stolen()) recount_free_locked(sc);
        if (sc.free_head == kNullIndex) continue;
        const ShmIndex local = sc.free_head;
        SlotHeader* hdr = class_header(sc, local);
        sc.free_head = hdr->next_free;
        hdr->next_free = kNullIndex;
        hdr->owner_pid = robust_self_pid();
        hdr->used_bytes = 0;
        hdr->span_id = 0;
        ++hdr->generation;
        --sc.free_count;
        const std::uint32_t loaned = sc.slot_count - sc.free_count;
        if (loaned > sc.loaned_high_water) sc.loaned_high_water = loaned;
        token = token_of(sc, local, hdr->generation);
      }
      explore::point(explore::Point::kPayloadLoaned);
      return token;
    }
    return kNoPayload;
  }

  /// Publishes the bytes written in place: records the length so receivers
  /// (and read()) know the payload extent. Call after filling data(token)
  /// and before sending the token. Returns false if `bytes` exceeds the
  /// slot's class capacity (nothing is recorded).
  bool publish(std::uint64_t token, std::uint32_t bytes) noexcept {
    SlotHeader* hdr = header_of(token);
    if (bytes > classes_[hdr->size_class].slot_bytes) return false;
    hdr->used_bytes = bytes;
    explore::point(explore::Point::kPayloadPublished);
    return true;
  }

  /// Returns a slot to its class's free list. The free_head store is the
  /// commit point; the owner stamp is cleared after it and repaired by
  /// mark_free() if the releaser dies in between.
  void release(std::uint64_t token) noexcept {
    SlotHeader* hdr = header_of(token);
    SizeClass& sc = classes_[hdr->size_class];
    const ShmIndex local = local_index(sc, token);
    {
      RobustGuard g(sc.lock.value);
      if (g.stolen()) recount_free_locked(sc);
      explore::point(explore::Point::kPayloadReleasing);
      hdr->next_free = sc.free_head;
      sc.free_head = local;  // commit: the slot is free from here on
      explore::point(explore::Point::kPayloadReleaseLinked);
      hdr->owner_pid = 0;
      hdr->used_bytes = 0;
      ++sc.free_count;
    }
    explore::point(explore::Point::kPayloadReleased);
  }

  /// Re-stamps the slot with the calling process's pid. The receive side of
  /// a baton pass calls this so the slot is reclaimed against the *current*
  /// holder's life, not the (possibly already dead) sender's.
  void adopt(std::uint64_t token) noexcept {
    header_of(token)->owner_pid = robust_self_pid();
  }

  /// Mirrors a causal span id (obs/span.hpp) into the slot header, tying
  /// the loaned payload to the request's trace. Diagnostic metadata only:
  /// the loaner calls this while it logically holds/tracks the loan, and
  /// nothing on the protocol paths ever reads it back.
  void set_span(std::uint64_t token, std::uint64_t span_id) noexcept {
    header_of(token)->span_id = span_id;
  }

  /// The mirrored span id (0 = untraced, or the slot was re-loaned since).
  [[nodiscard]] std::uint64_t span_of(std::uint64_t token) const noexcept {
    return header_of(token)->span_id;
  }

  // ---- in-place access ----

  /// Raw data pointer of a loaned slot (write here, then publish()).
  [[nodiscard]] char* data(std::uint64_t token) noexcept {
    return reinterpret_cast<char*>(header_of(token) + 1);
  }

  /// Byte capacity of the slot the token names (its class size).
  [[nodiscard]] std::uint32_t capacity_of(std::uint64_t token) const noexcept {
    return classes_[header_of(token)->size_class].slot_bytes;
  }

  /// Copy-in convenience: writes `bytes` into the slot and publishes the
  /// length. Returns false if the payload does not fit the slot's class.
  bool write(std::uint64_t token, const void* src,
             std::uint32_t bytes) noexcept {
    SlotHeader* hdr = header_of(token);
    if (bytes > classes_[hdr->size_class].slot_bytes) return false;
    std::memcpy(hdr + 1, src, bytes);
    hdr->used_bytes = bytes;
    return true;
  }

  bool write(std::uint64_t token, std::string_view text) noexcept {
    return write(token, text.data(), static_cast<std::uint32_t>(text.size()));
  }

  /// View of the published bytes.
  [[nodiscard]] std::string_view read(std::uint64_t token) const noexcept {
    const SlotHeader* hdr = header_of(token);
    return std::string_view(reinterpret_cast<const char*>(hdr + 1),
                            hdr->used_bytes);
  }

  // ---- accounting (racy snapshots; safe from read-only mappings) ----

  [[nodiscard]] std::uint32_t capacity() const noexcept { return slot_count_; }
  [[nodiscard]] std::uint32_t free_count() const noexcept {
    std::uint32_t n = 0;
    for (std::uint32_t c = 0; c < class_count_; ++c) {
      n += classes_[c].free_count;
    }
    return n;
  }
  [[nodiscard]] std::uint32_t class_count() const noexcept {
    return class_count_;
  }
  [[nodiscard]] std::uint32_t class_slot_bytes(std::uint32_t c) const noexcept {
    return classes_[c].slot_bytes;
  }
  [[nodiscard]] std::uint32_t class_capacity(std::uint32_t c) const noexcept {
    return classes_[c].slot_count;
  }
  [[nodiscard]] std::uint32_t class_free(std::uint32_t c) const noexcept {
    return classes_[c].free_count;
  }
  /// Most slots of class `c` ever loaned out simultaneously.
  [[nodiscard]] std::uint32_t class_high_water(std::uint32_t c) const noexcept {
    return classes_[c].loaned_high_water;
  }
  /// Slots currently out on loan across all classes.
  [[nodiscard]] std::uint32_t loans_outstanding() const noexcept {
    return slot_count_ - free_count();
  }

  // ---- recovery primitives (see queue/queue_recovery.hpp) ----

  /// Slot index for a token — lets the recovery sweep mark slots referenced
  /// by messages still sitting in queues. Indices are global across
  /// classes (0 .. capacity()-1).
  [[nodiscard]] ShmIndex index_of_token(std::uint64_t token) const noexcept {
    const std::uint64_t off = token & kTokenOffsetMask;
    for (std::uint32_t c = 0; c < class_count_; ++c) {
      const SizeClass& sc = classes_[c];
      const std::uint64_t stride = stride_for(sc.slot_bytes);
      if (off >= sc.base_offset &&
          off < sc.base_offset + stride * sc.slot_count) {
        return sc.base_index +
               static_cast<ShmIndex>((off - sc.base_offset) / stride);
      }
    }
    return kNullIndex;
  }

  /// True if the token plausibly names a slot of this pool (recovery sweeps
  /// see arbitrary ext_offset values, including kNoPayload). Generation is
  /// deliberately ignored: a stale-generation token still pins its slot.
  [[nodiscard]] bool owns_token(std::uint64_t token) const noexcept {
    const std::uint64_t off = token & kTokenOffsetMask;
    if (off == 0) return false;
    for (std::uint32_t c = 0; c < class_count_; ++c) {
      const SizeClass& sc = classes_[c];
      const std::uint64_t stride = stride_for(sc.slot_bytes);
      if (off >= sc.base_offset &&
          off < sc.base_offset + stride * sc.slot_count) {
        return (off - sc.base_offset) % stride == 0;
      }
    }
    return false;
  }

  /// The pid stamped on a slot (0 = free), for invariant checking.
  [[nodiscard]] std::uint32_t slot_owner(ShmIndex global) const noexcept {
    return global_header(global)->owner_pid;
  }

  /// Marks every slot currently on a free list in `mark` (capacity()
  /// entries, global indices), repairs per-class free counts, and clears
  /// owner stamps left behind by a releaser that died after the list
  /// commit but before the stamp clear.
  void mark_free(std::vector<char>& mark) noexcept {
    for (std::uint32_t c = 0; c < class_count_; ++c) {
      SizeClass& sc = classes_[c];
      RobustGuard g(sc.lock.value);
      std::uint32_t count = 0;
      for (ShmIndex i = sc.free_head;
           i != kNullIndex && count < sc.slot_count;
           i = class_header(sc, i)->next_free) {
        mark[sc.base_index + i] = 1;
        class_header(sc, i)->owner_pid = 0;  // repair a mid-release corpse
        ++count;
      }
      sc.free_count = count;
    }
  }

  /// Releases every slot that is NOT marked (neither free nor referenced by
  /// a queued message) and whose holder is dead per `is_alive`. Returns the
  /// number reclaimed. Caller serializes sweeps.
  template <typename LivenessFn>
  std::uint32_t reclaim_unmarked_dead(const std::vector<char>& mark,
                                      LivenessFn&& is_alive) noexcept {
    std::uint32_t reclaimed = 0;
    for (std::uint32_t c = 0; c < class_count_; ++c) {
      SizeClass& sc = classes_[c];
      for (ShmIndex i = 0; i < sc.slot_count; ++i) {
        if (mark[sc.base_index + i]) continue;
        SlotHeader* hdr = class_header(sc, i);
        const std::uint32_t owner = hdr->owner_pid;
        if (owner != 0 && !is_alive(owner)) {
          release(token_of(sc, i, hdr->generation));
          ++reclaimed;
        }
      }
    }
    return reclaimed;
  }

 private:
  struct SlotHeader {
    ShmIndex next_free;         // class-local link; kNullIndex while loaned
    std::uint32_t owner_pid;    // 0 while free; else current holder
    std::uint32_t used_bytes;   // published payload extent
    std::uint32_t generation;   // bumped on every loan (token uniqueness)
    std::uint32_t size_class;   // index into classes_
    std::uint32_t pad_;         // keep header 8-byte multiple
    std::uint64_t span_id;      // causal span mirror (0 = untraced); see
                                // set_span() — diagnostic only, never read
                                // by the protocol paths
  };
  static_assert(sizeof(SlotHeader) % 8 == 0, "slot data must stay aligned");

  /// One size class: its own lock, free list, and slot region. Cache-line
  /// aligned so two classes' lock words never false-share.
  struct alignas(kCacheLineSize) SizeClass {
    CacheAligned<RobustSpinlock> lock;
    ShmIndex free_head = kNullIndex;
    std::uint32_t free_count = 0;
    std::uint32_t slot_count = 0;
    std::uint32_t slot_bytes = 0;
    std::uint32_t base_index = 0;        // first global slot index
    std::uint32_t loaned_high_water = 0;
    std::uint64_t base_offset = 0;       // arena offset of the slot region
  };

  /// Smallest power of two >= 16 that is <= `bytes` (class ladder start).
  static constexpr std::uint32_t class_bytes_floor(std::uint32_t bytes) {
    std::uint32_t b = 16;
    while (b < bytes) b <<= 1;
    return b;
  }

  /// Bytes from one slot header to the next: header + data, rounded so
  /// every slot's data area starts cache-line-offset consistent.
  static constexpr std::uint64_t stride_for(std::uint32_t slot_bytes) {
    return align_up(sizeof(SlotHeader) + slot_bytes, kCacheLineSize);
  }

  /// Index of the smallest class whose slots fit `bytes`.
  [[nodiscard]] std::uint32_t class_for(std::uint32_t bytes) const noexcept {
    std::uint32_t c = 0;
    while (c < class_count_ && classes_[c].slot_bytes < bytes) ++c;
    return c;
  }

  /// Arena offset -> pointer, via the stored class-0 region anchor (every
  /// class region lives in the same contiguous mapping).
  [[nodiscard]] char* at(std::uint64_t arena_off) const noexcept {
    return plane_base_.get() +
           (static_cast<std::int64_t>(arena_off) -
            static_cast<std::int64_t>(plane_base_offset_));
  }

  [[nodiscard]] SlotHeader* class_header(const SizeClass& sc,
                                         ShmIndex local) const noexcept {
    return reinterpret_cast<SlotHeader*>(
        at(sc.base_offset + local * stride_for(sc.slot_bytes)));
  }

  [[nodiscard]] SlotHeader* header_of(std::uint64_t token) const noexcept {
    return reinterpret_cast<SlotHeader*>(at(token & kTokenOffsetMask));
  }

  [[nodiscard]] SlotHeader* global_header(ShmIndex global) const noexcept {
    for (std::uint32_t c = 0; c < class_count_; ++c) {
      const SizeClass& sc = classes_[c];
      if (global >= sc.base_index && global < sc.base_index + sc.slot_count) {
        return class_header(sc, global - sc.base_index);
      }
    }
    return nullptr;
  }

  [[nodiscard]] ShmIndex local_index(const SizeClass& sc,
                                     std::uint64_t token) const noexcept {
    return static_cast<ShmIndex>(((token & kTokenOffsetMask) - sc.base_offset) /
                                 stride_for(sc.slot_bytes));
  }

  [[nodiscard]] std::uint64_t token_of(const SizeClass& sc, ShmIndex local,
                                       std::uint32_t generation) const noexcept {
    const std::uint64_t off =
        sc.base_offset + local * stride_for(sc.slot_bytes);
    return (std::uint64_t{generation & 0xFFFFFFu} << kTokenGenShift) | off;
  }

  /// Walks one class's free list under the (already held) lock and resets
  /// its free count — the only field a corpse can leave stale here.
  void recount_free_locked(SizeClass& sc) noexcept {
    std::uint32_t count = 0;
    for (ShmIndex i = sc.free_head;
         i != kNullIndex && count < sc.slot_count;
         i = class_header(sc, i)->next_free) {
      ++count;
    }
    sc.free_count = count;
  }

  SizeClass classes_[kMaxClasses];
  std::uint32_t class_count_ = 0;
  std::uint32_t slot_count_ = 0;
  std::uint64_t plane_base_offset_ = 0;  // arena offset of class 0's region
  OffsetPtr<char> plane_base_;           // mapped address of the same
};

}  // namespace ulipc
