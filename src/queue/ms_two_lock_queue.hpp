// Michael & Scott two-lock concurrent FIFO queue, shared-memory resident.
//
// The paper: "The evaluation software uses a common implementation of the
// Michael and Scott two-lock queue [9]". The algorithm (PODC'96) keeps a
// dummy node so that enqueuers (tail lock) and dequeuers (head lock) never
// touch the same node except at the empty<->nonempty transition, which is
// safe because an enqueuer writes node.next only after fully initializing
// the node, and the dequeuer reads head->next under the head lock.
//
// Differences from the textbook version, required by our setting:
//  * nodes come from a bounded NodePool in the same shared region and are
//    linked by 32-bit indices (position independent);
//  * the queue is bounded: enqueue() returns false on a full queue (node
//    pool exhausted or per-queue capacity reached) — the paper's protocols
//    handle that with sleep(1) flow control;
//  * a size counter supports the capacity bound and the empty()/size()
//    probes the BSLS protocol polls;
//  * batched variants (enqueue_batch/dequeue_batch) amortize one lock
//    acquisition over a whole burst: the enqueuer pre-links the node chain
//    outside the lock and splices it with two writes, the dequeuer walks
//    the list once under the head lock and releases the detached nodes
//    after dropping it;
//  * the empty<->nonempty hand-off is the one point where the two critical
//    sections touch without a common lock: the enqueuer link-publishes
//    old_tail->next under the TAIL lock while a dequeuer reads it under the
//    HEAD lock. That store is therefore a release and every dequeue-side
//    read of a possibly-live next link an acquire (next_ref()), which also
//    orders the node's msg writes before the consumer's copy-out. Links of
//    nodes that are private (pre-linked chain, detached run, both locks
//    held) stay plain accesses;
//  * the head/tail locks are RobustSpinlocks: if a process dies inside a
//    critical section, the next contender steals the lock after a liveness
//    probe and runs a repair path. The enqueue critical section orders its
//    two writes (link chain, then advance tail) so the only possible
//    mid-update state is "tail lags the last linked node". Crucially, a
//    stale tail_ must never be DEREFERENCED during repair: while the tail
//    lock sat with the corpse, dequeuers may have drained past the lagging
//    tail and released the node it names back to the free list (whose next
//    links are free-list links). repair_tail_from_head() therefore
//    recomputes the last node by walking from head_ under BOTH locks.
//    Lock order wherever both are taken: tail, then head (the steal path
//    already holds tail; dequeue takes head alone and never tail, so the
//    ordering cannot deadlock). The dequeue critical section is
//    single-assignment (head_ = next) — batched or not — and needs no
//    structural repair; a corpse can only leak its detached nodes and leave
//    size_ stale, both healed by the recovery sweep
//    (queue/queue_recovery.hpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/cacheline.hpp"
#include "explore/hooks.hpp"
#include "queue/message.hpp"
#include "queue/msg_pool.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

class TwoLockQueue {
 public:
  /// Builds a queue in `arena`, drawing nodes from `pool` (which must live
  /// in the same region). `capacity` bounds the number of queued messages;
  /// 0 means "bounded only by pool exhaustion".
  static TwoLockQueue* create(ShmArena& arena, NodePool* pool,
                              std::uint32_t capacity = 0) {
    auto* q = arena.construct<TwoLockQueue>();
    q->init(pool, capacity);
    return q;
  }

  TwoLockQueue() = default;
  TwoLockQueue(const TwoLockQueue&) = delete;
  TwoLockQueue& operator=(const TwoLockQueue&) = delete;

  /// Second-phase constructor (the MsgQueue facade placement-news the
  /// engine of its choice and then inits it).
  void init(NodePool* pool, std::uint32_t capacity) {
    pool_.set(pool);
    capacity_ = capacity == 0 ? std::numeric_limits<std::uint32_t>::max()
                              : capacity;
    const ShmIndex dummy = pool->allocate();
    ULIPC_INVARIANT(dummy != kNullIndex, "pool exhausted creating queue");
    pool->node(dummy).next = kNullIndex;
    pool->node(dummy).owner_pid = 0;  // the dummy belongs to the queue
    head_.value = dummy;
    tail_.value = dummy;
  }

  /// Appends a message. Returns false (queue full) if the capacity bound is
  /// reached or the node pool is exhausted. `stamp` rides in the node next
  /// to the message (default: untraced); it is written before the link
  /// publication, so the dequeuer's acquire read of the next link orders it
  /// exactly like the msg bytes.
  bool enqueue(const Message& msg, SpanStamp stamp = {}) noexcept {
    // Reserve capacity first so we never strand an allocated node.
    std::uint32_t sz = size_.load(std::memory_order_relaxed);
    do {
      if (sz >= capacity_) return false;
    } while (!size_.compare_exchange_weak(sz, sz + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed));

    NodePool& pool = *pool_;
    const ShmIndex node_idx = pool.allocate();
    if (node_idx == kNullIndex) {
      size_.fetch_sub(1, std::memory_order_release);
      return false;
    }
    MsgNode& node = pool.node(node_idx);
    // Word stores, not plain assignment: in a mixed-engine pool a slow
    // lock-free dequeuer may still be (atomically) reading this recycled
    // node's bytes — see lf_copy_words in queue/msg_pool.hpp.
    lf_copy_words(&node.msg, &msg, sizeof(Message));
    lf_copy_words(&node.span, &stamp, sizeof(SpanStamp));
    node.next = kNullIndex;
    explore::point(explore::Point::kQEnqueueNodeReady);
    {
      RobustGuard g(tail_lock_.value);
      if (g.stolen()) repair_tail_from_head(pool);
      next_ref(pool.node(tail_.value))
          .store(node_idx, std::memory_order_release);
      explore::point(explore::Point::kQEnqueueLinked);
      tail_.value = node_idx;
    }
    explore::point(explore::Point::kQEnqueueDone);
    return true;
  }

  /// Appends up to `n` messages with ONE tail-lock acquisition: reserves
  /// capacity, allocates and pre-links the whole chain outside the lock,
  /// then splices it in with the same two ordered writes as a scalar
  /// enqueue (so the crash invariant is unchanged — tail can only lag the
  /// last linked node). Returns how many were appended; fewer than `n`
  /// (possibly 0) when the capacity bound or the node pool runs out. The
  /// batch carries at most one stamp, on its first node — span fidelity
  /// degrades to one-sample-per-batch on batched paths.
  std::uint32_t enqueue_batch(const Message* msgs, std::uint32_t n,
                              SpanStamp stamp = {}) noexcept {
    if (n == 0) return 0;
    std::uint32_t sz = size_.load(std::memory_order_relaxed);
    std::uint32_t want;
    do {
      if (sz >= capacity_) return 0;
      want = std::min(n, capacity_ - sz);
    } while (!size_.compare_exchange_weak(sz, sz + want,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed));

    NodePool& pool = *pool_;
    ShmIndex first = kNullIndex;
    ShmIndex last = kNullIndex;
    std::uint32_t got = 0;
    for (; got < want; ++got) {
      const ShmIndex idx = pool.allocate();
      if (idx == kNullIndex) break;  // pool exhausted: splice what we have
      MsgNode& node = pool.node(idx);
      lf_copy_words(&node.msg, &msgs[got], sizeof(Message));
      const SpanStamp sp = got == 0 ? stamp : SpanStamp{};
      lf_copy_words(&node.span, &sp, sizeof(SpanStamp));
      node.next = kNullIndex;
      if (first == kNullIndex) {
        first = idx;
      } else {
        pool.node(last).next = idx;
      }
      last = idx;
    }
    if (got < want) {
      size_.fetch_sub(want - got, std::memory_order_release);
    }
    if (got == 0) return 0;
    {
      RobustGuard g(tail_lock_.value);
      if (g.stolen()) repair_tail_from_head(pool);
      next_ref(pool.node(tail_.value)).store(first, std::memory_order_release);
      explore::point(explore::Point::kQEnqueueLinked);
      tail_.value = last;
    }
    explore::point(explore::Point::kQEnqueueDone);
    return got;
  }

  /// Removes the oldest message into *out. Returns false if empty. When
  /// `stamp` is non-null it receives the node's span stamp (id 0 =
  /// untraced).
  bool dequeue(Message* out, SpanStamp* stamp = nullptr) noexcept {
    NodePool& pool = *pool_;
    ShmIndex old_head;
    {
      RobustGuard g(head_lock_.value);
      // A steal here needs no structural repair: head_ always points at a
      // valid dummy whose next link is either null or a complete node.
      explore::point(explore::Point::kQDequeueLocked);
      old_head = head_.value;
      const ShmIndex next =
          next_ref(pool.node(old_head)).load(std::memory_order_acquire);
      if (next == kNullIndex) return false;  // only the dummy remains
      *out = pool.node(next).msg;  // new dummy keeps its (copied-out) msg
      if (stamp != nullptr) *stamp = pool.node(next).span;
      // Take ownership of the dummy BEFORE detaching it: once head_
      // advances it is unreachable, and the recovery sweep only reclaims
      // unreachable nodes with a provably-dead owner. The initial dummy's
      // owner is 0 (the queue's), and a later dummy's owner is whichever
      // enqueuer brought it — likely still alive; either way, if we die
      // between the advance and release(), nobody could reclaim it.
      pool.node(old_head).owner_pid = robust_self_pid();
      head_.value = next;
      explore::point(explore::Point::kQDequeueAdvanced);
    }
    size_.fetch_sub(1, std::memory_order_release);
    pool.release(old_head);
    explore::point(explore::Point::kQDequeueDone);
    return true;
  }

  /// Removes up to `max` messages with ONE head-lock acquisition. The
  /// critical section stays a single head_ assignment (after copying the
  /// messages out), so the crash invariant matches scalar dequeue. The
  /// detached nodes — unreachable once head_ advances — are released after
  /// the lock is dropped. Returns how many were removed (0 when empty).
  /// When `stamp` is non-null it receives the LAST traced stamp in the
  /// batch (id 0 if none was traced).
  std::uint32_t dequeue_batch(Message* out, std::uint32_t max,
                              SpanStamp* stamp = nullptr) noexcept {
    if (max == 0) return 0;
    NodePool& pool = *pool_;
    ShmIndex chain;  // old dummy; start of the detached run
    std::uint32_t got = 0;
    {
      RobustGuard g(head_lock_.value);
      explore::point(explore::Point::kQDequeueLocked);
      ShmIndex head = head_.value;
      chain = head;
      // Own every node of the soon-to-be-detached run (see scalar dequeue):
      // the chain holds the old dummy plus nodes owned by their enqueuers,
      // who may be alive — a crash between the head advance and the
      // releases below must leave the run reclaimable by the sweep.
      const std::uint32_t me = robust_self_pid();
      pool.node(head).owner_pid = me;
      if (stamp != nullptr) *stamp = SpanStamp{};
      while (got < max) {
        const ShmIndex next =
            next_ref(pool.node(head)).load(std::memory_order_acquire);
        if (next == kNullIndex) break;
        out[got++] = pool.node(next).msg;
        if (stamp != nullptr && pool.node(next).span.traced()) {
          *stamp = pool.node(next).span;
        }
        head = next;
        pool.node(head).owner_pid = me;
      }
      if (got == 0) return 0;
      head_.value = head;  // the last dequeued node is the new dummy
      explore::point(explore::Point::kQDequeueAdvanced);
    }
    size_.fetch_sub(got, std::memory_order_release);
    // Release the old dummy plus the first got-1 message nodes. Their next
    // links are still intact (release() may repurpose them, so read each
    // link before releasing its node); no other process can reach them.
    for (std::uint32_t i = 0; i < got; ++i) {
      const ShmIndex next = pool.node(chain).next;
      pool.release(chain);
      chain = next;
    }
    explore::point(explore::Point::kQDequeueDone);
    return got;
  }

  /// Cheap emptiness probe (no locks) — what BSLS's poll loop reads.
  [[nodiscard]] bool empty() const noexcept {
    return size_.load(std::memory_order_acquire) == 0;
  }

  /// Racy size snapshot.
  [[nodiscard]] std::uint32_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  // ---- recovery interface (see queue/queue_recovery.hpp) ----

  [[nodiscard]] RobustSpinlock& head_lock() noexcept {
    return head_lock_.value;
  }
  [[nodiscard]] RobustSpinlock& tail_lock() noexcept {
    return tail_lock_.value;
  }

  /// Takes both locks (tail first — the process-wide ordering), repairs
  /// the tail, re-marks every node reachable from head_ (dummy included)
  /// in `mark` (capacity() entries of the node pool), and reseats size_ to
  /// the actual element count. Returns the recounted size.
  std::uint32_t mark_reachable(std::vector<char>& mark) noexcept {
    NodePool& pool = *pool_;
    RobustGuard gt(tail_lock_.value);
    RobustGuard gh(head_lock_.value);
    repair_tail_under_both_locks(pool);
    std::uint32_t visited = 0;
    for (ShmIndex i = head_.value;
         i != kNullIndex && visited <= pool.capacity();
         i = pool.node(i).next) {
      mark[i] = 1;
      ++visited;
    }
    // Elements = everything reachable minus the dummy itself.
    const std::uint32_t count = visited > 0 ? visited - 1 : 0;
    size_.store(count, std::memory_order_release);
    return count;
  }

  /// Visits every PENDING message under both locks — head->next through
  /// tail, skipping the dummy, whose msg is a stale copy of the last
  /// DELIVERED message. The recovery sweep uses this to pin payload slots
  /// referenced by messages still in flight: a delivered message's slot is
  /// protected by its holder's owner stamp instead, so the dummy (and
  /// free-listed nodes, which also retain stale copies) must not pin —
  /// they would leak dead holders' slots forever once traffic stops.
  template <typename Fn>
  void for_each_pending(Fn&& fn) noexcept {
    NodePool& pool = *pool_;
    RobustGuard gt(tail_lock_.value);
    RobustGuard gh(head_lock_.value);
    repair_tail_under_both_locks(pool);
    std::uint32_t visited = 0;
    ShmIndex i = head_.value;
    if (i != kNullIndex) i = pool.node(i).next;  // skip the dummy
    for (; i != kNullIndex && visited < pool.capacity();
         i = pool.node(i).next) {
      fn(pool.node(i).msg);
      ++visited;
    }
  }

  /// Drains every message currently in the queue (discarding them),
  /// releasing their nodes back to the pool. Used when reclaiming a dead
  /// peer's queues. Returns the number of messages discarded.
  std::uint32_t drain() noexcept {
    Message scratch;
    std::uint32_t n = 0;
    while (dequeue(&scratch)) ++n;
    return n;
  }

  /// TEST ONLY: performs the first half of an enqueue — reserves capacity,
  /// allocates and links the node — then returns with the tail lock STILL
  /// HELD and tail_ not advanced. Calling process must exit immediately;
  /// this models a producer dying at the worst possible point of the
  /// critical section. Returns the linked node index. noinline: inlined
  /// into a fork-child lambda, GCC's object-size pass misjudges the
  /// arena-resident queue as size 0 and flags the fetch_add
  /// (-Wstringop-overflow false positive); cold test-only code anyway.
  [[gnu::noinline]] ShmIndex crash_mid_enqueue_for_test(
      const Message& msg) noexcept {
    size_.fetch_add(1, std::memory_order_acquire);
    NodePool& pool = *pool_;
    const ShmIndex node_idx = pool.allocate();
    if (node_idx == kNullIndex) return kNullIndex;
    MsgNode& node = pool.node(node_idx);
    const SpanStamp sp{};
    lf_copy_words(&node.msg, &msg, sizeof(Message));
    lf_copy_words(&node.span, &sp, sizeof(SpanStamp));
    node.next = kNullIndex;
    (void)tail_lock_.value.lock();
    next_ref(pool.node(tail_.value))
        .store(node_idx, std::memory_order_release);
    // Deliberately neither advances tail_ nor unlocks.
    return node_idx;
  }

 private:
  /// Atomic view of a node's next link for the enqueue-side publication and
  /// the dequeue-side reads that may race with it (see the header comment).
  static std::atomic_ref<ShmIndex> next_ref(MsgNode& n) noexcept {
    return std::atomic_ref<ShmIndex>(n.next);
  }
  /// Fixes the one invariant a dead enqueuer can break: tail_ must point
  /// at the last linked node. Caller holds the tail lock; this briefly
  /// takes the head lock too (tail-then-head order) because the stale
  /// tail_ may name a node that dequeuers already released — it must be
  /// recomputed from head_, never followed.
  void repair_tail_from_head(NodePool& pool) noexcept {
    RobustGuard gh(head_lock_.value);
    repair_tail_under_both_locks(pool);
  }

  void repair_tail_under_both_locks(NodePool& pool) noexcept {
    ShmIndex last = head_.value;
    std::uint32_t hops = 0;
    while (pool.node(last).next != kNullIndex && hops <= pool.capacity()) {
      last = pool.node(last).next;
      ++hops;
    }
    tail_.value = last;
  }

  // False-sharing audit: the consumer side (head lock + head offset), the
  // producer side (tail lock + tail offset), and the shared size counter
  // each get their own cache line(s). head_/tail_ are CacheAligned too —
  // the lock and the offset it protects are written by the same role, but
  // the offsets are also READ by the recovery walker and the repair path,
  // and sharing a line with a spinlock word that contending processes CAS
  // on would drag those reads into the contention.
  CacheAligned<RobustSpinlock> head_lock_;
  CacheAligned<ShmIndex> head_{kNullIndex};

  CacheAligned<RobustSpinlock> tail_lock_;
  CacheAligned<ShmIndex> tail_{kNullIndex};

  alignas(kCacheLineSize) std::atomic<std::uint32_t> size_{0};
  std::uint32_t capacity_ = 0;
  OffsetPtr<NodePool> pool_;

  // Layout guarantees: every CacheAligned member spans whole lines and the
  // struct itself is line-aligned, so consecutive members above can never
  // share a line. (offsetof would be more direct, but CacheAligned is not
  // standard-layout; whole-line sizes imply the same separation.)
  static_assert(sizeof(CacheAligned<RobustSpinlock>) % kCacheLineSize == 0,
                "lock padding must fill whole cache lines");
  static_assert(sizeof(CacheAligned<ShmIndex>) == kCacheLineSize,
                "queue offsets must each own a full cache line");
  static_assert(alignof(CacheAligned<RobustSpinlock>) == kCacheLineSize &&
                    alignof(CacheAligned<ShmIndex>) == kCacheLineSize,
                "per-role members must start on a line boundary");
};

static_assert(alignof(TwoLockQueue) == kCacheLineSize,
              "queue must be line-aligned for the member asserts to hold");

}  // namespace ulipc
