// Michael & Scott two-lock concurrent FIFO queue, shared-memory resident.
//
// The paper: "The evaluation software uses a common implementation of the
// Michael and Scott two-lock queue [9]". The algorithm (PODC'96) keeps a
// dummy node so that enqueuers (tail lock) and dequeuers (head lock) never
// touch the same node except at the empty<->nonempty transition, which is
// safe because an enqueuer writes node.next only after fully initializing
// the node, and the dequeuer reads head->next under the head lock.
//
// Differences from the textbook version, required by our setting:
//  * nodes come from a bounded NodePool in the same shared region and are
//    linked by 32-bit indices (position independent);
//  * the queue is bounded: enqueue() returns false on a full queue (node
//    pool exhausted or per-queue capacity reached) — the paper's protocols
//    handle that with sleep(1) flow control;
//  * a size counter supports the capacity bound and the empty()/size()
//    probes the BSLS protocol polls.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "common/cacheline.hpp"
#include "queue/message.hpp"
#include "queue/msg_pool.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/shm_allocator.hpp"
#include "shm/spinlock.hpp"

namespace ulipc {

class TwoLockQueue {
 public:
  /// Builds a queue in `arena`, drawing nodes from `pool` (which must live
  /// in the same region). `capacity` bounds the number of queued messages;
  /// 0 means "bounded only by pool exhaustion".
  static TwoLockQueue* create(ShmArena& arena, NodePool* pool,
                              std::uint32_t capacity = 0) {
    auto* q = arena.construct<TwoLockQueue>();
    q->pool_.set(pool);
    q->capacity_ = capacity == 0 ? std::numeric_limits<std::uint32_t>::max()
                                 : capacity;
    const ShmIndex dummy = pool->allocate();
    ULIPC_INVARIANT(dummy != kNullIndex, "pool exhausted creating queue");
    pool->node(dummy).next = kNullIndex;
    q->head_ = dummy;
    q->tail_ = dummy;
    return q;
  }

  TwoLockQueue() = default;
  TwoLockQueue(const TwoLockQueue&) = delete;
  TwoLockQueue& operator=(const TwoLockQueue&) = delete;

  /// Appends a message. Returns false (queue full) if the capacity bound is
  /// reached or the node pool is exhausted.
  bool enqueue(const Message& msg) noexcept {
    // Reserve capacity first so we never strand an allocated node.
    std::uint32_t sz = size_.load(std::memory_order_relaxed);
    do {
      if (sz >= capacity_) return false;
    } while (!size_.compare_exchange_weak(sz, sz + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed));

    NodePool& pool = *pool_;
    const ShmIndex node_idx = pool.allocate();
    if (node_idx == kNullIndex) {
      size_.fetch_sub(1, std::memory_order_release);
      return false;
    }
    MsgNode& node = pool.node(node_idx);
    node.msg = msg;
    node.next = kNullIndex;
    {
      SpinGuard g(tail_lock_.value);
      pool.node(tail_).next = node_idx;
      tail_ = node_idx;
    }
    return true;
  }

  /// Removes the oldest message into *out. Returns false if empty.
  bool dequeue(Message* out) noexcept {
    NodePool& pool = *pool_;
    ShmIndex old_head;
    {
      SpinGuard g(head_lock_.value);
      old_head = head_;
      const ShmIndex next = pool.node(old_head).next;
      if (next == kNullIndex) return false;  // only the dummy remains
      *out = pool.node(next).msg;  // new dummy keeps its (copied-out) msg
      head_ = next;
    }
    size_.fetch_sub(1, std::memory_order_release);
    pool.release(old_head);
    return true;
  }

  /// Cheap emptiness probe (no locks) — what BSLS's poll loop reads.
  [[nodiscard]] bool empty() const noexcept {
    return size_.load(std::memory_order_acquire) == 0;
  }

  /// Racy size snapshot.
  [[nodiscard]] std::uint32_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

 private:
  // Head (consumer) and tail (producer) state live on separate cache lines
  // so a busy producer does not stall the consumer's probe loop.
  CacheAligned<Spinlock> head_lock_;
  ShmIndex head_ = kNullIndex;
  char pad0_[kCacheLineSize - sizeof(ShmIndex)]{};

  CacheAligned<Spinlock> tail_lock_;
  ShmIndex tail_ = kNullIndex;
  char pad1_[kCacheLineSize - sizeof(ShmIndex)]{};

  alignas(kCacheLineSize) std::atomic<std::uint32_t> size_{0};
  std::uint32_t capacity_ = 0;
  OffsetPtr<NodePool> pool_;
};

}  // namespace ulipc
