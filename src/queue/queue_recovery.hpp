// Recovery sweep: reclaim queue nodes and payload slots orphaned by dead
// processes.
//
// A process can die (SIGKILL, crash) at any instruction while holding
// resources that live in shared memory:
//   * a queue node it allocated but had not yet linked into a queue
//     (enqueue), or had just unlinked but not yet released (dequeue);
//   * a payload slot referenced by a message it never managed to send.
// Locks heal locally (RobustSpinlock steal + per-structure repair), but
// orphaned *nodes* are invisible to any single critical section — finding
// them requires a global view. sweep_leaked_nodes() builds that view:
//
//   1. mark every node on the pool's free list          (pool.mark_free)
//   2. mark every node reachable from each queue        (q->mark_reachable,
//      which also repairs a lagging tail and reseats the size counter)
//   3. a node that is neither free nor reachable is leaked; release it iff
//      its stamped owner is dead — a LIVE owner may be microseconds from
//      linking it in.
// Payload slots get the same treatment, with "reachable" meaning
// "referenced by the ext_offset of a message still pending in a queue";
// delivered payloads are guarded by their holder's owner-pid stamp.
//
// Concurrency: steps run under the structures' own locks, so the sweep is
// safe against live producers/consumers. But two concurrent sweeps could
// double-release the same leaked node — callers must serialize sweeps (the
// duplex server runs them from a single recovery point).
#pragma once

#include <cstdint>
#include <vector>

#include "explore/hooks.hpp"
#include "queue/msg_queue.hpp"
#include "queue/msg_pool.hpp"
#include "queue/payload_pool.hpp"
#include "shm/robust_spinlock.hpp"

namespace ulipc {

struct RecoveryStats {
  std::uint32_t nodes_reclaimed = 0;    // leaked queue nodes returned
  std::uint32_t payloads_reclaimed = 0; // leaked payload slots returned
};

/// Sweeps `pool` (and optionally `payloads`) for nodes/slots leaked by dead
/// processes. `queues` must list EVERY queue drawing from `pool` — a queue
/// left out would have its in-flight nodes misread as leaks. `is_alive` is
/// a liveness oracle (pid -> bool); tests inject failures through it.
/// Callers must serialize sweeps against each other.
template <typename LivenessFn>
RecoveryStats sweep_leaked_nodes(NodePool& pool,
                                 const std::vector<MsgQueue*>& queues,
                                 PayloadPool* payloads,
                                 LivenessFn&& is_alive) {
  RecoveryStats stats;
  explore::point(explore::Point::kSweepBegin);

  std::vector<char> node_mark(pool.capacity(), 0);
  pool.mark_free(node_mark);
  for (MsgQueue* q : queues) q->mark_reachable(node_mark);
  explore::point(explore::Point::kSweepMarked);

  if (payloads != nullptr) {
    std::vector<char> slot_mark(payloads->capacity(), 0);
    payloads->mark_free(slot_mark);
    // A payload is in play iff it is free-listed or referenced by a message
    // still PENDING in some queue (a dead sender's in-flight request will
    // be served; its slot must survive until the reply is consumed, and
    // the reply message re-pins it). Delivered messages — queue dummies and
    // free-listed nodes retain stale copies of those — must NOT pin: the
    // live holder of a delivered payload is protected by the owner stamp
    // (loan/adopt), and a dead holder's slot has to be reclaimable, or
    // every drained queue would leak its last messages' slots forever.
    for (MsgQueue* q : queues) {
      q->for_each_pending([&](const Message& m) {
        if (m.ext_offset != PayloadPool::kNoPayload &&
            payloads->owns_token(m.ext_offset)) {
          slot_mark[payloads->index_of_token(m.ext_offset)] = 1;
        }
      });
    }
    stats.payloads_reclaimed =
        payloads->reclaim_unmarked_dead(slot_mark, is_alive);
  }

  // Lock-free dequeue announcements first: a dequeuer that died between
  // its winning head CAS and release() published the node here pre-CAS
  // (see NodePool::announce_dequeue). Reclaiming announced nodes releases
  // them (owner := 0), so the generic owner-stamp pass below cannot
  // double-release the same node.
  stats.nodes_reclaimed += pool.reclaim_announced_dead(node_mark, is_alive);
  stats.nodes_reclaimed += pool.reclaim_unmarked_dead(node_mark, is_alive);
  explore::point(explore::Point::kSweepDone);
  return stats;
}

/// Convenience overload probing real process liveness via kill(pid, 0).
inline RecoveryStats sweep_leaked_nodes(
    NodePool& pool, const std::vector<MsgQueue*>& queues,
    PayloadPool* payloads = nullptr) {
  return sweep_leaked_nodes(pool, queues, payloads,
                            [](std::uint32_t pid) {
                              return process_alive(pid);
                            });
}

}  // namespace ulipc
