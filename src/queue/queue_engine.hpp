// Queue-engine selection: which concurrent FIFO implementation backs each
// endpoint topology of a channel.
//
// The paper's evaluation uses the Michael & Scott two-lock queue, and that
// remains the default engine. PR-4's idle-steal made pool shards genuinely
// multi-consumer, and BENCH_baseline.json shows the two-lock design is the
// contention ceiling there (~48 ns uncontended vs ~2.5 us under contended
// ping-pong) — so the lock-free M&S engine (queue/lockfree_queue.hpp) can
// be swapped in per topology behind the MsgQueue facade
// (queue/msg_queue.hpp) without touching the protocol stack.
//
// Selection layers, strongest last:
//   1. compile-time default    ULIPC_DEFAULT_QUEUE_ENGINE (CMake cache var,
//                              baked in as a string macro);
//   2. process environment     ULIPC_QUEUE_ENGINE — either one engine name
//                              applied to every topology ("lockfree"), or a
//                              comma list of per-topology overrides
//                              ("server=lockfree,reply=twolock,shard=lockfree");
//   3. explicit per-channel    ShmChannel::Config::engines.
// CI pins engines via layer 2 so every suite runs against both; benches pin
// via layer 2 or 3 so both engines' numbers land in the trajectory.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string_view>

namespace ulipc {

enum class QueueEngine : std::uint8_t {
  kTwoLock = 0,   // M&S two-lock (paper default): robust spinlocks + repair
  kLockFree = 1,  // M&S lock-free: tagged-index CAS links + helping
};

constexpr const char* queue_engine_name(QueueEngine e) noexcept {
  switch (e) {
    case QueueEngine::kTwoLock: return "twolock";
    case QueueEngine::kLockFree: return "lockfree";
  }
  return "?";
}

/// Parses an engine name ("twolock"/"lockfree"). Returns false (and leaves
/// *out untouched) on anything else.
inline bool parse_queue_engine(std::string_view s, QueueEngine* out) noexcept {
  if (s == "twolock" || s == "two-lock" || s == "2lock") {
    *out = QueueEngine::kTwoLock;
    return true;
  }
  if (s == "lockfree" || s == "lock-free" || s == "lf") {
    *out = QueueEngine::kLockFree;
    return true;
  }
  return false;
}

// Compile-time default, overridable from CMake:
//   cmake -DULIPC_DEFAULT_QUEUE_ENGINE=lockfree
#ifndef ULIPC_DEFAULT_QUEUE_ENGINE
#define ULIPC_DEFAULT_QUEUE_ENGINE "twolock"
#endif

/// Per-topology engine choice. The three topologies have genuinely
/// different contention shapes, so they are pinned independently:
///   server — the shared MPSC receive endpoint (every client produces);
///   reply  — client reply + duplex request endpoints (topologically SPSC;
///            the SpscRing fast path still fronts whichever engine backs
///            the overflow queue);
///   shard  — pool shard receive endpoints, MPMC since PR-4's idle-steal
///            lets any worker consume any shard (the two-lock engine's
///            worst case).
struct QueueEnginePolicy {
  QueueEngine server = QueueEngine::kTwoLock;
  QueueEngine reply = QueueEngine::kTwoLock;
  QueueEngine shard = QueueEngine::kTwoLock;

  /// The compile-time default for every topology.
  static QueueEnginePolicy defaults() noexcept {
    QueueEnginePolicy p;
    QueueEngine def = QueueEngine::kTwoLock;
    (void)parse_queue_engine(ULIPC_DEFAULT_QUEUE_ENGINE, &def);
    p.server = p.reply = p.shard = def;
    return p;
  }

  /// defaults() with the ULIPC_QUEUE_ENGINE environment override applied.
  /// Grammar: a bare engine name sets all three topologies; a comma list of
  /// `topology=engine` pairs (topologies: server, reply, shard) sets them
  /// individually. Unknown names/keys are ignored — a bench box with a
  /// stale variable must not change behavior silently into a crash.
  static QueueEnginePolicy from_env() noexcept {
    QueueEnginePolicy p = defaults();
    const char* env = std::getenv("ULIPC_QUEUE_ENGINE");
    if (env == nullptr || *env == '\0') return p;
    std::string_view rest(env);
    QueueEngine all = QueueEngine::kTwoLock;
    if (parse_queue_engine(rest, &all)) {
      p.server = p.reply = p.shard = all;
      return p;
    }
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      std::string_view item = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) continue;
      const std::string_view key = item.substr(0, eq);
      QueueEngine e = QueueEngine::kTwoLock;
      if (!parse_queue_engine(item.substr(eq + 1), &e)) continue;
      if (key == "server") {
        p.server = e;
      } else if (key == "reply") {
        p.reply = e;
      } else if (key == "shard") {
        p.shard = e;
      }
    }
    return p;
  }
};

}  // namespace ulipc
