// MsgQueue: the engine-dispatching facade every layer above queue/ talks
// to. A channel's endpoints hold OffsetPtr<MsgQueue>; which concurrent
// FIFO actually backs each endpoint is a per-topology QueueEnginePolicy
// decision (queue/queue_engine.hpp).
//
// Shared memory forbids vtables (a vptr is an absolute address valid in
// one mapping only), so dispatch is a stored engine tag plus a switch over
// a union of the concrete engines — placement-new'd into place and
// two-phase init'd. Both engines are trivially destructible arena objects;
// the union members' lifetimes end with the mapping, like every other shm
// structure here.
//
// The dispatch surface is exactly the Queue concept the protocol stack and
// the recovery sweep already consumed from TwoLockQueue; engine-specific
// surfaces (the two-lock engine's head_lock()/tail_lock()) are reachable
// through the checked downcast accessors for tests that need them.
#pragma once

#include <cstdint>
#include <new>
#include <vector>

#include "common/cacheline.hpp"
#include "queue/lockfree_queue.hpp"
#include "queue/message.hpp"
#include "queue/ms_two_lock_queue.hpp"
#include "queue/msg_pool.hpp"
#include "queue/queue_engine.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

class MsgQueue {
 public:
  /// Builds a queue of the requested engine in `arena`. Same contract as
  /// the engines' own create(): nodes from `pool`, `capacity` 0 = bounded
  /// only by pool exhaustion.
  static MsgQueue* create(ShmArena& arena, NodePool* pool,
                          std::uint32_t capacity = 0,
                          QueueEngine engine = QueueEngine::kTwoLock) {
    auto* q = arena.construct<MsgQueue>();
    q->engine_ = static_cast<std::uint32_t>(engine);
    switch (engine) {
      case QueueEngine::kTwoLock:
        new (&q->impl_.two_lock) TwoLockQueue();
        q->impl_.two_lock.init(pool, capacity);
        break;
      case QueueEngine::kLockFree:
        new (&q->impl_.lock_free) LockFreeQueue();
        q->impl_.lock_free.init(pool, capacity);
        break;
    }
    return q;
  }

  MsgQueue() = default;
  MsgQueue(const MsgQueue&) = delete;
  MsgQueue& operator=(const MsgQueue&) = delete;

  [[nodiscard]] QueueEngine engine() const noexcept {
    return static_cast<QueueEngine>(engine_);
  }

  bool enqueue(const Message& msg, SpanStamp stamp = {}) noexcept {
    if (engine() == QueueEngine::kLockFree) {
      return impl_.lock_free.enqueue(msg, stamp);
    }
    return impl_.two_lock.enqueue(msg, stamp);
  }

  std::uint32_t enqueue_batch(const Message* msgs, std::uint32_t n,
                              SpanStamp stamp = {}) noexcept {
    if (engine() == QueueEngine::kLockFree) {
      return impl_.lock_free.enqueue_batch(msgs, n, stamp);
    }
    return impl_.two_lock.enqueue_batch(msgs, n, stamp);
  }

  bool dequeue(Message* out, SpanStamp* stamp = nullptr) noexcept {
    if (engine() == QueueEngine::kLockFree) {
      return impl_.lock_free.dequeue(out, stamp);
    }
    return impl_.two_lock.dequeue(out, stamp);
  }

  std::uint32_t dequeue_batch(Message* out, std::uint32_t max,
                              SpanStamp* stamp = nullptr) noexcept {
    if (engine() == QueueEngine::kLockFree) {
      return impl_.lock_free.dequeue_batch(out, max, stamp);
    }
    return impl_.two_lock.dequeue_batch(out, max, stamp);
  }

  [[nodiscard]] bool empty() const noexcept {
    if (engine() == QueueEngine::kLockFree) return impl_.lock_free.empty();
    return impl_.two_lock.empty();
  }

  [[nodiscard]] std::uint32_t size() const noexcept {
    if (engine() == QueueEngine::kLockFree) return impl_.lock_free.size();
    return impl_.two_lock.size();
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    if (engine() == QueueEngine::kLockFree) return impl_.lock_free.capacity();
    return impl_.two_lock.capacity();
  }

  // ---- recovery interface (see queue/queue_recovery.hpp) ----

  std::uint32_t mark_reachable(std::vector<char>& mark) noexcept {
    if (engine() == QueueEngine::kLockFree) {
      return impl_.lock_free.mark_reachable(mark);
    }
    return impl_.two_lock.mark_reachable(mark);
  }

  template <typename Fn>
  void for_each_pending(Fn&& fn) noexcept {
    if (engine() == QueueEngine::kLockFree) {
      impl_.lock_free.for_each_pending(static_cast<Fn&&>(fn));
      return;
    }
    impl_.two_lock.for_each_pending(static_cast<Fn&&>(fn));
  }

  std::uint32_t drain() noexcept {
    if (engine() == QueueEngine::kLockFree) return impl_.lock_free.drain();
    return impl_.two_lock.drain();
  }

  /// TEST ONLY — see the engines' crash_mid_enqueue_for_test.
  ShmIndex crash_mid_enqueue_for_test(const Message& msg) noexcept {
    if (engine() == QueueEngine::kLockFree) {
      return impl_.lock_free.crash_mid_enqueue_for_test(msg);
    }
    return impl_.two_lock.crash_mid_enqueue_for_test(msg);
  }

  // ---- engine-specific escape hatches (tests, invariant checkers) ----

  [[nodiscard]] TwoLockQueue& two_lock() {
    ULIPC_INVARIANT(engine() == QueueEngine::kTwoLock, "engine mismatch");
    return impl_.two_lock;
  }
  [[nodiscard]] LockFreeQueue& lock_free() {
    ULIPC_INVARIANT(engine() == QueueEngine::kLockFree, "engine mismatch");
    return impl_.lock_free;
  }

 private:
  union Impl {
    // The facade constructs exactly one member via placement new; an empty
    // ctor/dtor pair keeps the union itself trivially constructible.
    Impl() {}   // NOLINT(modernize-use-equals-default)
    ~Impl() {}  // NOLINT(modernize-use-equals-default)
    TwoLockQueue two_lock;
    LockFreeQueue lock_free;
  };

  // The tag gets its own line so probes of it never false-share with the
  // engines' hot head/tail lines (both engines line-align their members).
  alignas(kCacheLineSize) std::uint32_t engine_ =
      static_cast<std::uint32_t>(QueueEngine::kTwoLock);
  Impl impl_;

  static_assert(alignof(TwoLockQueue) == kCacheLineSize &&
                    alignof(LockFreeQueue) == kCacheLineSize,
                "union keeps the engines' line alignment");
};

static_assert(alignof(MsgQueue) == kCacheLineSize,
              "facade must preserve engine alignment guarantees");

}  // namespace ulipc
