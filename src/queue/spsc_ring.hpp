// Single-producer / single-consumer ring buffer (Lamport queue).
//
// The channel topology makes every *reply* queue strictly SPSC: exactly one
// server (thread) produces replies, and exactly one client consumes them.
// The same holds for the duplex per-client *request* queues (one client
// produces, one server thread consumes). Only the shared server receive
// queue is MPSC and needs the two-lock queue. This ring is therefore the
// reply-direction fast path: no locks at all — one atomic index per side,
// each written by exactly one process — with the two-lock queue kept as an
// overflow fallback (see NativePlatform's endpoint routing).
//
// Also used by ablation benches to quantify what the two-lock queue costs
// relative to the cheapest possible correct queue, and by the task_farm
// example for its result channels.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"
#include "common/error.hpp"
#include "explore/hooks.hpp"
#include "queue/message.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

class SpscRing {
 public:
  /// One ring slot: the wire message plus its causal-trace stamp (see
  /// SpanStamp in queue/message.hpp). The stamp is written on every
  /// enqueue — zeroed when untraced — so a lapped slot never replays a
  /// stale span id.
  struct Slot {
    Message msg;
    SpanStamp span;
  };

  /// Builds a ring with `capacity` slots (rounded up to a power of two) in
  /// `arena`.
  static SpscRing* create(ShmArena& arena, std::uint32_t capacity) {
    std::uint32_t cap = 1;
    while (cap < capacity) cap <<= 1;
    auto* ring = arena.construct<SpscRing>();
    auto* slots = arena.construct_array<Slot>(cap);
    ring->slots_.set(slots);
    ring->mask_ = cap - 1;
    return ring;
  }

  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full. `stamp` is stored next to the
  /// message (default: untraced).
  bool enqueue(const Message& msg, SpanStamp stamp = {}) noexcept {
    const std::uint32_t head = head_.load(std::memory_order_relaxed);
    const std::uint32_t tail = tail_cache_;
    if (head - tail > mask_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    slots_.get()[head & mask_] = Slot{msg, stamp};
    explore::point(explore::Point::kRingEnqueueSlot);
    head_.store(head + 1, std::memory_order_release);
    explore::point(explore::Point::kRingEnqueuePublished);
    return true;
  }

  /// Producer side, batched: appends up to `n` messages with ONE index
  /// publication. Returns how many fit (0 when full). A batch carries at
  /// most one stamp, on its first message — span fidelity degrades to
  /// one-sample-per-batch on batched paths, which the span assembler
  /// tolerates as partial spans.
  std::uint32_t enqueue_batch(const Message* msgs, std::uint32_t n,
                              SpanStamp stamp = {}) noexcept {
    if (n == 0) return 0;
    const std::uint32_t head = head_.load(std::memory_order_relaxed);
    std::uint32_t free = mask_ + 1 - (head - tail_cache_);
    if (free < n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      free = mask_ + 1 - (head - tail_cache_);
      if (free == 0) return 0;
    }
    const std::uint32_t k = std::min(n, free);
    Slot* slots = slots_.get();
    for (std::uint32_t i = 0; i < k; ++i) {
      slots[(head + i) & mask_] = Slot{msgs[i], i == 0 ? stamp : SpanStamp{}};
    }
    explore::point(explore::Point::kRingEnqueueSlot);
    head_.store(head + k, std::memory_order_release);
    explore::point(explore::Point::kRingEnqueuePublished);
    return k;
  }

  /// Consumer side. Returns false when empty. When `stamp` is non-null it
  /// receives the slot's span stamp (id 0 = untraced).
  bool dequeue(Message* out, SpanStamp* stamp = nullptr) noexcept {
    const std::uint32_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    const Slot& s = slots_.get()[tail & mask_];
    *out = s.msg;
    if (stamp != nullptr) *stamp = s.span;
    explore::point(explore::Point::kRingDequeueCopy);
    tail_.store(tail + 1, std::memory_order_release);
    explore::point(explore::Point::kRingDequeuePublished);
    return true;
  }

  /// Consumer side, batched: removes up to `max` messages with ONE index
  /// publication. Returns how many were taken (0 when empty). May return
  /// fewer than are queued: the producer index is re-read only when the
  /// cached copy says empty, so a stale cache bounds the batch — callers
  /// wanting more simply call again. When `stamp` is non-null it receives
  /// the LAST traced stamp in the batch (id 0 if none was traced).
  std::uint32_t dequeue_batch(Message* out, std::uint32_t max,
                              SpanStamp* stamp = nullptr) noexcept {
    if (max == 0) return 0;
    const std::uint32_t tail = tail_.load(std::memory_order_relaxed);
    std::uint32_t avail = head_cache_ - tail;
    if (avail == 0) {
      head_cache_ = head_.load(std::memory_order_acquire);
      avail = head_cache_ - tail;
      if (avail == 0) return 0;
    }
    const std::uint32_t k = std::min(max, avail);
    const Slot* slots = slots_.get();
    if (stamp != nullptr) *stamp = SpanStamp{};
    for (std::uint32_t i = 0; i < k; ++i) {
      const Slot& s = slots[(tail + i) & mask_];
      out[i] = s.msg;
      if (stamp != nullptr && s.span.traced()) *stamp = s.span;
    }
    explore::point(explore::Point::kRingDequeueCopy);
    tail_.store(tail + k, std::memory_order_release);
    explore::point(explore::Point::kRingDequeuePublished);
    return k;
  }

  [[nodiscard]] bool empty() const noexcept {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return mask_ + 1; }

  /// Recovery only: discards every queued message and resets both per-side
  /// index caches. Requires BOTH the producer and the consumer to be
  /// quiesced (dead or stopped) — it writes fields normally owned by each
  /// side. Returns the number of messages discarded.
  std::uint32_t drain() noexcept {
    const std::uint32_t head = head_.load(std::memory_order_acquire);
    const std::uint32_t tail = tail_.load(std::memory_order_acquire);
    tail_.store(head, std::memory_order_release);
    head_cache_ = head;
    tail_cache_ = head;
    return head - tail;
  }

  /// TEST ONLY: repositions both indices of an EMPTY, quiesced ring to
  /// `base`, so tests can exercise behaviour as the 32-bit indices approach
  /// and cross the unsigned wrap.
  void skew_indices_for_test(std::uint32_t base) {
    ULIPC_INVARIANT(empty(), "skew_indices_for_test requires an empty ring");
    head_.store(base, std::memory_order_release);
    tail_.store(base, std::memory_order_release);
    head_cache_ = base;
    tail_cache_ = base;
  }

 private:
  // Producer line: head index + consumer-index cache.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> head_{0};
  std::uint32_t tail_cache_ = 0;

  // Consumer line: tail index + producer-index cache.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> tail_{0};
  std::uint32_t head_cache_ = 0;

  alignas(kCacheLineSize) std::uint32_t mask_ = 0;
  OffsetPtr<Slot> slots_;
};

}  // namespace ulipc
