// Single-producer / single-consumer ring buffer (Lamport queue).
//
// An alternative transport for the common channel topology where exactly one
// client writes a request queue... no — the request queue is MPSC in the
// multi-client setup, but every *reply* queue is strictly SPSC (server
// produces, one client consumes). The ring needs no locks at all: one
// atomic index per side, each written by exactly one process.
//
// Used by ablation benches to quantify what the two-lock queue costs
// relative to the cheapest possible correct queue, and by the task_farm
// example for its result channels.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"
#include "common/error.hpp"
#include "queue/message.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

class SpscRing {
 public:
  /// Builds a ring with `capacity` slots (rounded up to a power of two) in
  /// `arena`.
  static SpscRing* create(ShmArena& arena, std::uint32_t capacity) {
    std::uint32_t cap = 1;
    while (cap < capacity) cap <<= 1;
    auto* ring = arena.construct<SpscRing>();
    auto* slots = arena.construct_array<Message>(cap);
    ring->slots_.set(slots);
    ring->mask_ = cap - 1;
    return ring;
  }

  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool enqueue(const Message& msg) noexcept {
    const std::uint32_t head = head_.load(std::memory_order_relaxed);
    const std::uint32_t tail = tail_cache_;
    if (head - tail > mask_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    slots_.get()[head & mask_] = msg;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool dequeue(Message* out) noexcept {
    const std::uint32_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    *out = slots_.get()[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const noexcept {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return mask_ + 1; }

 private:
  // Producer line: head index + consumer-index cache.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> head_{0};
  std::uint32_t tail_cache_ = 0;

  // Consumer line: tail index + producer-index cache.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> tail_{0};
  std::uint32_t head_cache_ = 0;

  alignas(kCacheLineSize) std::uint32_t mask_ = 0;
  OffsetPtr<Message> slots_;
};

}  // namespace ulipc
