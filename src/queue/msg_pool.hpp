// Free pool of queue nodes in shared memory.
//
// "The interface uses fixed sized messages to permit efficient free-pool
// management." Nodes are identified by 32-bit indices into a contiguous
// array (see ShmIndex in shm/offset_ptr.hpp); links are indices, never
// pointers, so the structure is valid at any mapping address.
//
// The free list is a LIFO protected by a RobustSpinlock. Producers
// allocate, consumers release; both may live in different processes — and
// may die at any instruction. Crash-safety measures:
//  * every allocated node is stamped with its allocator's pid, so a
//    recovery sweep can tell "in flight on a live process" from "orphaned
//    by a corpse" (see queue/queue_recovery.hpp);
//  * a stolen free-list lock triggers recount_free_locked(), which repairs
//    free_count_ after a death inside allocate()/release() (the list links
//    themselves stay consistent at every intermediate step — the only
//    damage a corpse can do here is a stale counter or a leaked node, and
//    leaked nodes are reclaimed by the sweep).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"
#include "queue/message.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

/// One queue node: an intrusive link, the allocator's pid (0 while the
/// node sits on the free list), the message payload, and the causal-trace
/// stamp riding next to it (see SpanStamp in queue/message.hpp — the stamp
/// is per-node metadata precisely so the wire Message stays 24 bytes).
///
/// `next` is the two-lock engine's link AND the free-list link (a node is
/// never in both roles at once). `lf_next` is the lock-free engine's link:
/// a {tag:32, index:32} word CASed without any lock, where the tag bumps on
/// every write — each link publication and each release() — so a stale CAS
/// against a recycled node can never succeed (ABA window = 2^32 writes of
/// one node's link, an accepted caveat documented in DESIGN.md §18). The
/// tag doubles as the node's generation for crash-ownership announcements
/// (see DequeueAnnounce below). Always access lf_next through
/// std::atomic_ref.
struct MsgNode {
  ShmIndex next = kNullIndex;
  std::uint32_t owner_pid = 0;
  std::uint64_t lf_next = 0;
  Message msg;
  SpanStamp span;
};
static_assert(alignof(MsgNode) >= 8 && sizeof(MsgNode) % 8 == 0,
              "lf_next and the word-copied msg/span need 8-byte alignment");

/// Packing helpers for the {tag:32, index:32} words used by lf_next, the
/// lock-free queue's head/tail, and the dequeue announcements.
constexpr std::uint64_t lf_pack(std::uint32_t tag, ShmIndex idx) noexcept {
  return (static_cast<std::uint64_t>(tag) << 32) | idx;
}
constexpr std::uint32_t lf_tag(std::uint64_t w) noexcept {
  return static_cast<std::uint32_t>(w >> 32);
}
constexpr ShmIndex lf_idx(std::uint64_t w) noexcept {
  return static_cast<ShmIndex>(w & 0xFFFFFFFFu);
}

/// Relaxed atomic word copy for node msg/span bytes. The lock-free engine
/// reads a node's payload BEFORE its head CAS validates the read, so that
/// copy can race a recycler refilling the node — and since one pool may
/// feed queues of both engines, EVERY fill of a pool node (either engine)
/// must use word stores too, or the plain store would race the lock-free
/// reader's atomic load. Ordering is never carried here: publication is
/// the engines' release link-store / acquire link-load pair.
inline void lf_copy_words(void* dst, const void* src,
                          std::size_t bytes) noexcept {
  auto* d = static_cast<std::uint64_t*>(dst);
  auto* s = static_cast<std::uint64_t*>(const_cast<void*>(src));
  for (std::size_t i = 0; i < bytes / 8; ++i) {
    std::atomic_ref<std::uint64_t>(d[i]).store(
        std::atomic_ref<std::uint64_t>(s[i]).load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}
static_assert(sizeof(Message) % 8 == 0 && alignof(Message) >= 8,
              "Message must word-copy cleanly");
static_assert(sizeof(SpanStamp) % 8 == 0 && alignof(SpanStamp) >= 8,
              "SpanStamp must word-copy cleanly");

/// One lock-free dequeue announcement slot (see NodePool::announce_*): the
/// claiming thread's pid plus a {lf_next tag, node index} word naming the
/// node it is about to detach with a head CAS. The two-lock engine stamps
/// owner_pid on the old dummy BEFORE advancing head — safe under the head
/// lock, but a data hazard without it (a slow loser's late stamp could land
/// on a node a third process already recycled). Lock-free dequeuers instead
/// publish intent here pre-CAS and the recovery sweep reclaims an announced
/// node only when every announcer of it is dead AND the node's lf_next tag
/// still equals the announced tag (i.e. nobody released it since).
struct DequeueAnnounce {
  std::uint32_t pid = 0;
  std::uint32_t pad = 0;
  std::uint64_t val = 0;  // lf_pack(tag, idx); 0 = no announcement
};

class NodePool {
 public:
  /// Carves a pool of `capacity` nodes out of `arena`; returns the pool,
  /// which lives (header + node array) inside the arena.
  static NodePool* create(ShmArena& arena, std::uint32_t capacity) {
    auto* pool = arena.construct<NodePool>();
    auto* nodes = arena.construct_array<MsgNode>(capacity);
    pool->nodes_.set(nodes);
    pool->capacity_ = capacity;
    // Thread every node onto the free list.
    for (std::uint32_t i = 0; i < capacity; ++i) {
      nodes[i].next = (i + 1 < capacity) ? i + 1 : kNullIndex;
      nodes[i].owner_pid = 0;
      nodes[i].lf_next = lf_pack(0, kNullIndex);
    }
    pool->free_head_ = 0;
    pool->free_count_ = capacity;
    return pool;
  }

  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  /// Pops a node; returns kNullIndex when the pool is exhausted. The node
  /// is stamped with the caller's pid until release().
  ShmIndex allocate() noexcept {
    RobustGuard g(lock_.value);
    if (g.stolen()) recount_free_locked();
    const ShmIndex idx = free_head_;
    if (idx == kNullIndex) return kNullIndex;
    free_head_ = node(idx).next;
    node(idx).next = kNullIndex;
    node(idx).owner_pid = robust_self_pid();
    --free_count_;
    return idx;
  }

  /// Returns a node to the pool. Also retires the node's lock-free link:
  /// the tag bump (under the pool lock, atomically — stale validated
  /// readers may still be loading the word) is what makes every
  /// outstanding CAS expecting the old link fail, and what invalidates any
  /// dequeue announcement naming this node.
  void release(ShmIndex idx) noexcept {
    RobustGuard g(lock_.value);
    if (g.stolen()) recount_free_locked();
    release_locked(idx);
  }

  [[nodiscard]] MsgNode& node(ShmIndex idx) noexcept {
    return nodes_.get()[idx];
  }
  [[nodiscard]] const MsgNode& node(ShmIndex idx) const noexcept {
    return nodes_.get()[idx];
  }

  /// Atomic view of a node's lock-free link (see MsgNode::lf_next).
  [[nodiscard]] std::atomic_ref<std::uint64_t> lf_next(ShmIndex idx) noexcept {
    return std::atomic_ref<std::uint64_t>(node(idx).lf_next);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Racy snapshot of free node count (diagnostics).
  [[nodiscard]] std::uint32_t free_count() const noexcept {
    return free_count_;
  }

  /// The free-list lock, for recovery tooling and tests.
  [[nodiscard]] RobustSpinlock& lock() noexcept { return lock_.value; }

  // ---- lock-free dequeue announcements ----
  //
  // The lock-free engine's dequeue has a crash window the owner-pid stamp
  // cannot cover: between winning the head CAS and release(), the detached
  // old dummy is reachable from nowhere and its owner_pid is whichever
  // enqueuer brought it (likely alive). A dequeuer therefore announces
  // (node, lf_next tag) BEFORE each CAS attempt and clears the slot only
  // AFTER the release. The sweep reclaims an announced node iff every
  // process announcing it is dead, the node is neither free nor reachable,
  // and its lf_next tag still equals the announced tag — a live loser's
  // stale announcement merely defers the reclaim to a later sweep, and the
  // release-side tag bump makes double-reclaims structurally impossible.
  // Slots are claimed per thread (one live announcement per thread);
  // dead claimants' slots are stolen. On the (never observed) exhaustion
  // of all slots a dequeuer proceeds unannounced: the post-CAS owner stamp
  // in the lock-free engine still covers everything but the single
  // instruction between the CAS and that stamp.

  static constexpr std::uint32_t kAnnounceSlots = 64;

  /// Claims (or re-finds) an announcement slot for the calling thread.
  /// Returns kNoAnnounceSlot when all slots are held by live processes.
  static constexpr int kNoAnnounceSlot = -1;
  int announce_slot() noexcept {
    struct Cache {
      NodePool* pool = nullptr;
      std::uint32_t pid = 0;
      int slot = kNoAnnounceSlot;
    };
    thread_local Cache cache;
    const std::uint32_t me = robust_self_pid();
    if (cache.pool == this && cache.pid == me &&
        cache.slot != kNoAnnounceSlot) {
      return cache.slot;
    }
    for (std::uint32_t s = 0; s < kAnnounceSlots; ++s) {
      std::atomic_ref<std::uint32_t> pid(announce_[s].pid);
      std::uint32_t cur = pid.load(std::memory_order_acquire);
      if (cur == me) {
        // A forked child inherits the parent's cached slot pointer but not
        // its pid; conversely after fork the PARENT's slot shows our pid
        // only if we claimed it ourselves. Either way matching pid = ours.
        cache = {this, me, static_cast<int>(s)};
        return cache.slot;
      }
      if (cur != 0 && process_alive(cur)) continue;
      if (pid.compare_exchange_strong(cur, me, std::memory_order_acq_rel)) {
        // Stolen from a corpse: its stale announcement (if any) must not
        // survive under our name.
        std::atomic_ref<std::uint64_t>(announce_[s].val)
            .store(0, std::memory_order_release);
        cache = {this, me, static_cast<int>(s)};
        return cache.slot;
      }
    }
    return kNoAnnounceSlot;
  }

  void announce_dequeue(int slot, ShmIndex idx, std::uint32_t tag) noexcept {
    if (slot == kNoAnnounceSlot) return;
    std::atomic_ref<std::uint64_t>(announce_[slot].val)
        .store(lf_pack(tag, idx), std::memory_order_release);
  }

  void clear_announce(int slot) noexcept {
    if (slot == kNoAnnounceSlot) return;
    std::atomic_ref<std::uint64_t>(announce_[slot].val)
        .store(0, std::memory_order_release);
  }

  /// Recovery: reclaims nodes announced by dead dequeuers (see the block
  /// comment above). `mark` is the free+reachable set the sweep computed;
  /// a marked node is either still in a queue (the announcer died before
  /// its CAS) or already back on the free list — both untouchable here.
  /// Returns the number reclaimed. Caller serializes sweeps.
  template <typename LivenessFn>
  std::uint32_t reclaim_announced_dead(const std::vector<char>& mark,
                                       LivenessFn&& is_alive) noexcept {
    std::uint32_t reclaimed = 0;
    for (std::uint32_t s = 0; s < kAnnounceSlots; ++s) {
      const std::uint32_t pid =
          std::atomic_ref<std::uint32_t>(announce_[s].pid)
              .load(std::memory_order_acquire);
      if (pid == 0 || is_alive(pid)) continue;
      const std::uint64_t val =
          std::atomic_ref<std::uint64_t>(announce_[s].val)
              .load(std::memory_order_acquire);
      if (val == 0) continue;
      const ShmIndex idx = lf_idx(val);
      if (idx >= capacity_ || mark[idx]) continue;
      // A LIVE announcer of the same node is (or may be) the CAS winner
      // that actually holds the release duty — it just hasn't released
      // yet. Defer; its clear/overwrite or death resolves the next sweep.
      bool live_claim = false;
      for (std::uint32_t t = 0; t < kAnnounceSlots && !live_claim; ++t) {
        if (t == s) continue;
        const std::uint32_t tp =
            std::atomic_ref<std::uint32_t>(announce_[t].pid)
                .load(std::memory_order_acquire);
        if (tp == 0 || !is_alive(tp)) continue;
        const std::uint64_t tv =
            std::atomic_ref<std::uint64_t>(announce_[t].val)
                .load(std::memory_order_acquire);
        live_claim = tv != 0 && lf_idx(tv) == idx;
      }
      if (live_claim) continue;
      {
        RobustGuard g(lock_.value);
        if (g.stolen()) recount_free_locked();
        // Tag revalidation under the pool lock: a release since the
        // announcement bumped the tag (including a reclaim of this same
        // node via another dead announcer's slot earlier this loop).
        if (lf_tag(lf_next(idx).load(std::memory_order_relaxed)) !=
            lf_tag(val)) {
          continue;
        }
        release_locked(idx);
        ++reclaimed;
      }
      // The corpse's slot is spent: free it for live threads to claim.
      std::atomic_ref<std::uint64_t>(announce_[s].val)
          .store(0, std::memory_order_release);
      std::atomic_ref<std::uint32_t>(announce_[s].pid)
          .store(0, std::memory_order_release);
    }
    return reclaimed;
  }

  // ---- recovery primitives (see queue/queue_recovery.hpp) ----

  /// Marks every index currently on the free list in `mark` (which must
  /// have capacity() entries) and repairs free_count_.
  void mark_free(std::vector<char>& mark) noexcept {
    RobustGuard g(lock_.value);
    std::uint32_t count = 0;
    for (ShmIndex i = free_head_;
         i != kNullIndex && count < capacity_; i = node(i).next) {
      mark[i] = 1;
      ++count;
    }
    free_count_ = count;
  }

  /// Releases every node that is NOT marked (neither free nor reachable
  /// from a queue) and whose owner is dead per `is_alive`. Returns the
  /// number reclaimed. Caller must serialize sweeps (one recovery sweep at
  /// a time) and pass a `mark` freshly produced by mark_free + the queues'
  /// mark_reachable.
  template <typename LivenessFn>
  std::uint32_t reclaim_unmarked_dead(const std::vector<char>& mark,
                                      LivenessFn&& is_alive) noexcept {
    std::uint32_t reclaimed = 0;
    for (ShmIndex i = 0; i < capacity_; ++i) {
      if (mark[i]) continue;
      const std::uint32_t owner = node(i).owner_pid;
      if (owner != 0 && !is_alive(owner)) {
        release(i);
        ++reclaimed;
      }
    }
    return reclaimed;
  }

 private:
  /// release() body, pool lock already held.
  void release_locked(ShmIndex idx) noexcept {
    const std::uint64_t lf = lf_next(idx).load(std::memory_order_relaxed);
    lf_next(idx).store(lf_pack(lf_tag(lf) + 1, kNullIndex),
                       std::memory_order_release);
    node(idx).owner_pid = 0;
    node(idx).next = free_head_;
    free_head_ = idx;
    ++free_count_;
  }

  /// Walks the free list under the (already held) lock and resets
  /// free_count_ — the only field a corpse can leave stale.
  void recount_free_locked() noexcept {
    std::uint32_t count = 0;
    for (ShmIndex i = free_head_;
         i != kNullIndex && count < capacity_; i = node(i).next) {
      ++count;
    }
    free_count_ = count;
  }

  CacheAligned<RobustSpinlock> lock_;
  ShmIndex free_head_ = kNullIndex;
  std::uint32_t free_count_ = 0;
  std::uint32_t capacity_ = 0;
  OffsetPtr<MsgNode> nodes_;
  alignas(kCacheLineSize) DequeueAnnounce announce_[kAnnounceSlots] = {};
};

}  // namespace ulipc
