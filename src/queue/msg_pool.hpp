// Free pool of queue nodes in shared memory.
//
// "The interface uses fixed sized messages to permit efficient free-pool
// management." Nodes are identified by 32-bit indices into a contiguous
// array (see ShmIndex in shm/offset_ptr.hpp); links are indices, never
// pointers, so the structure is valid at any mapping address.
//
// The free list is a LIFO protected by a RobustSpinlock. Producers
// allocate, consumers release; both may live in different processes — and
// may die at any instruction. Crash-safety measures:
//  * every allocated node is stamped with its allocator's pid, so a
//    recovery sweep can tell "in flight on a live process" from "orphaned
//    by a corpse" (see queue/queue_recovery.hpp);
//  * a stolen free-list lock triggers recount_free_locked(), which repairs
//    free_count_ after a death inside allocate()/release() (the list links
//    themselves stay consistent at every intermediate step — the only
//    damage a corpse can do here is a stale counter or a leaked node, and
//    leaked nodes are reclaimed by the sweep).
#pragma once

#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"
#include "queue/message.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_allocator.hpp"

namespace ulipc {

/// One queue node: an intrusive link, the allocator's pid (0 while the
/// node sits on the free list), the message payload, and the causal-trace
/// stamp riding next to it (see SpanStamp in queue/message.hpp — the stamp
/// is per-node metadata precisely so the wire Message stays 24 bytes).
struct MsgNode {
  ShmIndex next = kNullIndex;
  std::uint32_t owner_pid = 0;
  Message msg;
  SpanStamp span;
};

class NodePool {
 public:
  /// Carves a pool of `capacity` nodes out of `arena`; returns the pool,
  /// which lives (header + node array) inside the arena.
  static NodePool* create(ShmArena& arena, std::uint32_t capacity) {
    auto* pool = arena.construct<NodePool>();
    auto* nodes = arena.construct_array<MsgNode>(capacity);
    pool->nodes_.set(nodes);
    pool->capacity_ = capacity;
    // Thread every node onto the free list.
    for (std::uint32_t i = 0; i < capacity; ++i) {
      nodes[i].next = (i + 1 < capacity) ? i + 1 : kNullIndex;
      nodes[i].owner_pid = 0;
    }
    pool->free_head_ = 0;
    pool->free_count_ = capacity;
    return pool;
  }

  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  /// Pops a node; returns kNullIndex when the pool is exhausted. The node
  /// is stamped with the caller's pid until release().
  ShmIndex allocate() noexcept {
    RobustGuard g(lock_.value);
    if (g.stolen()) recount_free_locked();
    const ShmIndex idx = free_head_;
    if (idx == kNullIndex) return kNullIndex;
    free_head_ = node(idx).next;
    node(idx).next = kNullIndex;
    node(idx).owner_pid = robust_self_pid();
    --free_count_;
    return idx;
  }

  /// Returns a node to the pool.
  void release(ShmIndex idx) noexcept {
    RobustGuard g(lock_.value);
    if (g.stolen()) recount_free_locked();
    node(idx).owner_pid = 0;
    node(idx).next = free_head_;
    free_head_ = idx;
    ++free_count_;
  }

  [[nodiscard]] MsgNode& node(ShmIndex idx) noexcept {
    return nodes_.get()[idx];
  }
  [[nodiscard]] const MsgNode& node(ShmIndex idx) const noexcept {
    return nodes_.get()[idx];
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Racy snapshot of free node count (diagnostics).
  [[nodiscard]] std::uint32_t free_count() const noexcept {
    return free_count_;
  }

  /// The free-list lock, for recovery tooling and tests.
  [[nodiscard]] RobustSpinlock& lock() noexcept { return lock_.value; }

  // ---- recovery primitives (see queue/queue_recovery.hpp) ----

  /// Marks every index currently on the free list in `mark` (which must
  /// have capacity() entries) and repairs free_count_.
  void mark_free(std::vector<char>& mark) noexcept {
    RobustGuard g(lock_.value);
    std::uint32_t count = 0;
    for (ShmIndex i = free_head_;
         i != kNullIndex && count < capacity_; i = node(i).next) {
      mark[i] = 1;
      ++count;
    }
    free_count_ = count;
  }

  /// Releases every node that is NOT marked (neither free nor reachable
  /// from a queue) and whose owner is dead per `is_alive`. Returns the
  /// number reclaimed. Caller must serialize sweeps (one recovery sweep at
  /// a time) and pass a `mark` freshly produced by mark_free + the queues'
  /// mark_reachable.
  template <typename LivenessFn>
  std::uint32_t reclaim_unmarked_dead(const std::vector<char>& mark,
                                      LivenessFn&& is_alive) noexcept {
    std::uint32_t reclaimed = 0;
    for (ShmIndex i = 0; i < capacity_; ++i) {
      if (mark[i]) continue;
      const std::uint32_t owner = node(i).owner_pid;
      if (owner != 0 && !is_alive(owner)) {
        release(i);
        ++reclaimed;
      }
    }
    return reclaimed;
  }

 private:
  /// Walks the free list under the (already held) lock and resets
  /// free_count_ — the only field a corpse can leave stale.
  void recount_free_locked() noexcept {
    std::uint32_t count = 0;
    for (ShmIndex i = free_head_;
         i != kNullIndex && count < capacity_; i = node(i).next) {
      ++count;
    }
    free_count_ = count;
  }

  CacheAligned<RobustSpinlock> lock_;
  ShmIndex free_head_ = kNullIndex;
  std::uint32_t free_count_ = 0;
  std::uint32_t capacity_ = 0;
  OffsetPtr<MsgNode> nodes_;
};

}  // namespace ulipc
