// Free pool of queue nodes in shared memory.
//
// "The interface uses fixed sized messages to permit efficient free-pool
// management." Nodes are identified by 32-bit indices into a contiguous
// array (see ShmIndex in shm/offset_ptr.hpp); links are indices, never
// pointers, so the structure is valid at any mapping address.
//
// The free list is a spinlock-protected LIFO. Producers allocate, consumers
// release; both may live in different processes.
#pragma once

#include <cstdint>

#include "common/cacheline.hpp"
#include "queue/message.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/shm_allocator.hpp"
#include "shm/spinlock.hpp"

namespace ulipc {

/// One queue node: an intrusive link plus the message payload.
struct MsgNode {
  ShmIndex next = kNullIndex;
  Message msg;
};

class NodePool {
 public:
  /// Carves a pool of `capacity` nodes out of `arena`; returns the pool,
  /// which lives (header + node array) inside the arena.
  static NodePool* create(ShmArena& arena, std::uint32_t capacity) {
    auto* pool = arena.construct<NodePool>();
    auto* nodes = arena.construct_array<MsgNode>(capacity);
    pool->nodes_.set(nodes);
    pool->capacity_ = capacity;
    // Thread every node onto the free list.
    for (std::uint32_t i = 0; i < capacity; ++i) {
      nodes[i].next = (i + 1 < capacity) ? i + 1 : kNullIndex;
    }
    pool->free_head_ = 0;
    pool->free_count_ = capacity;
    return pool;
  }

  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  /// Pops a node; returns kNullIndex when the pool is exhausted.
  ShmIndex allocate() noexcept {
    SpinGuard g(lock_.value);
    const ShmIndex idx = free_head_;
    if (idx == kNullIndex) return kNullIndex;
    free_head_ = node(idx).next;
    node(idx).next = kNullIndex;
    --free_count_;
    return idx;
  }

  /// Returns a node to the pool.
  void release(ShmIndex idx) noexcept {
    SpinGuard g(lock_.value);
    node(idx).next = free_head_;
    free_head_ = idx;
    ++free_count_;
  }

  [[nodiscard]] MsgNode& node(ShmIndex idx) noexcept {
    return nodes_.get()[idx];
  }
  [[nodiscard]] const MsgNode& node(ShmIndex idx) const noexcept {
    return nodes_.get()[idx];
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Racy snapshot of free node count (diagnostics).
  [[nodiscard]] std::uint32_t free_count() const noexcept {
    return free_count_;
  }

 private:
  CacheAligned<Spinlock> lock_;
  ShmIndex free_head_ = kNullIndex;
  std::uint32_t free_count_ = 0;
  std::uint32_t capacity_ = 0;
  OffsetPtr<MsgNode> nodes_;
};

}  // namespace ulipc
