#include "runtime/shm_channel.hpp"

#include <bit>
#include <vector>

#include "common/cacheline.hpp"
#include "common/clock.hpp"
#include "queue/queue_recovery.hpp"

namespace ulipc {

namespace {

std::uint32_t round_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Total bytes of the observability block (header + slots + rings), with
/// each sub-array cache-line aligned.
std::size_t obs_block_bytes(const ShmChannel::Config& cfg) {
  const std::uint32_t slot_count = 1 + 2 * cfg.max_clients;
  const std::uint32_t ring_cap = round_pow2(cfg.trace_ring_capacity);
  const std::size_t ring_stride =
      align_up(obs::TraceRing::bytes_for(ring_cap), kCacheLineSize);
  std::size_t bytes = align_up(sizeof(obs::ObsHeader), kCacheLineSize);
  bytes = align_up(bytes + slot_count * sizeof(obs::MetricSlot),
                   kCacheLineSize);
  bytes += (slot_count + 1) * ring_stride;  // +1: the shared recovery ring
  return bytes;
}

/// Concrete per-class slot count for a config (0 = auto-size so every
/// client can hold a couple of loans concurrently).
std::uint32_t payload_slots_per_class(const ShmChannel::Config& cfg) {
  if (cfg.payload_slots_per_class != 0) return cfg.payload_slots_per_class;
  return 2 * cfg.max_clients + 4;
}

PayloadPool::Config payload_plane_config(const ShmChannel::Config& cfg) {
  PayloadPool::Config pc;
  pc.min_bytes = 64;
  pc.max_bytes = cfg.payload_max_bytes;
  pc.slots_per_class = payload_slots_per_class(cfg);
  return pc;
}

}  // namespace

std::size_t ShmChannel::required_bytes(const Config& cfg) {
  // Header + pool header + nodes + (1 + clients) * (endpoint + queue),
  // each rounded up for alignment, plus generous slack.
  const std::size_t queues =
      cfg.max_clients + 1 + (cfg.duplex ? cfg.max_clients : 0) + cfg.shards;
  const std::size_t pool_nodes = queues * (cfg.queue_capacity + 2);
  std::size_t bytes = sizeof(ArenaHeader) + sizeof(ShmChannelHeader);
  bytes += sizeof(NodePool) + pool_nodes * sizeof(MsgNode);
  bytes += queues * (sizeof(NativeEndpoint) + sizeof(MsgQueue));
  // SPSC rings on every endpoint except the server's (slot count is the
  // queue capacity rounded up to a power of two).
  std::size_t ring_slots = 1;
  while (ring_slots < cfg.queue_capacity) ring_slots <<= 1;
  bytes +=
      (queues - 1) * (sizeof(SpscRing) + ring_slots * sizeof(SpscRing::Slot));
  bytes += (2 * queues + 8) * 2 * kCacheLineSize;  // alignment slack
  bytes += obs_block_bytes(cfg);                   // metrics + trace rings
  if (cfg.payload_max_bytes > 0) {
    bytes += PayloadPool::bytes_for(payload_plane_config(cfg));
  }
  return align_up(bytes * 2, 4096);                // 2x safety margin
}

ShmChannel ShmChannel::create(ShmRegion& region, const Config& cfg) {
  ULIPC_INVARIANT(cfg.max_clients >= 1 && cfg.max_clients <= kMaxClients,
                  "bad max_clients");
  ULIPC_INVARIANT(cfg.shards <= kMaxShards && cfg.shards <= cfg.max_clients,
                  "bad shard count");
  ULIPC_INVARIANT(cfg.shards == 0 || !cfg.duplex,
                  "pool and duplex channels are mutually exclusive");
  ShmChannel ch;
  ch.arena_ = ShmArena::format(region);
  ch.header_ = ch.arena_.construct<ShmChannelHeader>();
  ch.header_->magic = ShmChannelHeader::kMagic;
  ch.header_->max_clients = cfg.max_clients;
  ch.header_->queue_capacity = cfg.queue_capacity;
  ch.header_->barrier.init(cfg.max_clients);

  // One semaphore per endpoint: index 0 for the server, 1..n for client
  // reply endpoints, n+1..2n for duplex request endpoints (or, on pool
  // channels, n+1..n+shards for the shard receive endpoints).
  const int sem_count = static_cast<int>(cfg.max_clients) * (cfg.duplex ? 2 : 1) +
                        1 + static_cast<int>(cfg.shards);
  ch.sem_set_ = SysvSemaphoreSet::create(sem_count);
  ch.header_->sysv_sem_id = ch.sem_set_.id();
  ch.owns_sysv_ = true;

  const std::uint32_t pool_nodes =
      (cfg.max_clients * (cfg.duplex ? 2u : 1u) + 1 + cfg.shards) *
      (cfg.queue_capacity + 2);
  NodePool* pool = NodePool::create(ch.arena_, pool_nodes);
  ch.header_->node_pool_offset = ch.arena_.to_offset(pool);

  // `with_ring` marks the endpoint's traffic as topologically SPSC (one
  // fixed producer process/thread, one fixed consumer), enabling the
  // lock-free fast path. That holds for every client reply endpoint (the
  // one server replies, the one owning client reads) and for the duplex
  // request endpoints (one client writes, one server thread reads) — but
  // NOT for the shared server receive endpoint, which all clients write.
  auto build_endpoint = [&](std::uint32_t id, int sem_index, bool with_ring,
                            QueueEngine engine) {
    auto* ep = ch.arena_.construct<NativeEndpoint>();
    ep->queue.set(
        MsgQueue::create(ch.arena_, pool, cfg.queue_capacity, engine));
    if (with_ring) {
      ep->ring.set(SpscRing::create(ch.arena_, cfg.queue_capacity));
    }
    ep->id = id;
    ep->vsem = ch.sem_set_.handle(sem_index);
    return ch.arena_.to_offset(ep);
  };

  // On pool channels the reply direction is NOT single-producer: an idle
  // worker that steals a client's request answers it from a different
  // thread/process than the shard owner, so replies must go through the
  // MP-safe two-lock queue — no SPSC reply rings.
  const bool reply_ring = cfg.shards == 0;
  ch.header_->srv_ep_offset =
      build_endpoint(0, 0, /*with_ring=*/false, cfg.engines.server);
  for (std::uint32_t i = 0; i < cfg.max_clients; ++i) {
    ch.header_->client_ep_offset[i] =
        build_endpoint(i, static_cast<int>(i) + 1, reply_ring,
                       cfg.engines.reply);
  }
  if (cfg.duplex) {
    for (std::uint32_t i = 0; i < cfg.max_clients; ++i) {
      ch.header_->client_req_ep_offset[i] = build_endpoint(
          i, static_cast<int>(cfg.max_clients + i) + 1, /*with_ring=*/true,
          cfg.engines.reply);
    }
  }
  if (cfg.shards > 0) {
    ch.header_->num_shards = cfg.shards;
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
      ch.header_->shard_ep_offset[s] = build_endpoint(
          s, static_cast<int>(cfg.max_clients + s) + 1, /*with_ring=*/false,
          cfg.engines.shard);
    }
    ch.header_->shard_map.init(cfg.shards);
  }

  // Observability block: one contiguous allocation holding the registry
  // header, the per-participant metric slots, and the per-participant trace
  // rings plus the shared recovery ring. Internal offsets are relative to
  // the ObsHeader, so a read-only attacher only needs header_->obs_offset.
  {
    const std::uint32_t slot_count = 1 + 2 * cfg.max_clients;
    const std::uint32_t ring_cap = round_pow2(cfg.trace_ring_capacity);
    const std::uint64_t ring_stride =
        align_up(obs::TraceRing::bytes_for(ring_cap), kCacheLineSize);
    const std::uint64_t slots_off =
        align_up(sizeof(obs::ObsHeader), kCacheLineSize);
    const std::uint64_t rings_off = align_up(
        slots_off + slot_count * sizeof(obs::MetricSlot), kCacheLineSize);
    const std::uint64_t total = rings_off + (slot_count + 1) * ring_stride;

    const std::uint64_t obs_off =
        ch.arena_.allocate_offset(total, kCacheLineSize);
    auto* oh = new (ch.arena_.from_offset<char>(obs_off)) obs::ObsHeader();
    oh->magic = obs::ObsHeader::kMagic;
    oh->version = obs::ObsHeader::kVersion;
    oh->slot_count = slot_count;
    oh->ring_capacity = ring_cap;
    oh->trace_compiled = obs::kTraceCompiledIn ? 1 : 0;
    oh->slots_offset = slots_off;
    oh->rings_offset = rings_off;
    oh->ring_stride = ring_stride;
    for (std::uint32_t s = 0; s < slot_count; ++s) {
      new (&oh->slot(s)) obs::MetricSlot();
    }
    for (std::uint32_t r = 0; r < slot_count + 1; ++r) {
      obs::TraceRing::format(oh->ring_blob(r), ring_cap);
    }

    // Stamp the creator's TSC calibration so every attached process (and
    // the export tool) converts trace timestamps on the same scale.
    const TscClock::Calibration cal = TscClock::cached();
    oh->tsc_ns_per_tick_bits.store(
        std::bit_cast<std::uint64_t>(cal.ns_per_tick),
        std::memory_order_release);
    oh->tsc_epoch.store(cal.tsc_epoch, std::memory_order_release);
    oh->mono_epoch_ns.store(cal.mono_epoch_ns, std::memory_order_release);

    ch.header_->obs_offset = obs_off;
  }

  // Zero-copy payload plane: size-class loan buffers next to the node pool,
  // referenced by Message::ext_offset tokens.
  if (cfg.payload_max_bytes > 0) {
    PayloadPool* plane =
        PayloadPool::create(ch.arena_, payload_plane_config(cfg));
    ch.header_->payload_plane_offset = ch.arena_.to_offset(plane);
  }

  if (cfg.create_sysv_queues) {
    ch.owned_queues_.push_back(SysvMsgQueue::create());
    ch.header_->sysv_request_qid = ch.owned_queues_.back().id();
    for (std::uint32_t i = 0; i < cfg.max_clients; ++i) {
      ch.owned_queues_.push_back(SysvMsgQueue::create());
      ch.header_->sysv_reply_qid[i] = ch.owned_queues_.back().id();
    }
  }
  return ch;
}

ShmChannel ShmChannel::attach(const ShmRegion& region) {
  ShmChannel ch;
  ch.arena_ = ShmArena::attach(region);
  // The header is the arena's first allocation: directly after ArenaHeader,
  // cache-line aligned.
  auto* hdr = ch.arena_.from_offset<ShmChannelHeader>(
      align_up(sizeof(ArenaHeader), kCacheLineSize));
  ULIPC_INVARIANT(hdr->magic == ShmChannelHeader::kMagic,
                  "not a ulipc channel region");
  ch.header_ = hdr;
  ch.owns_sysv_ = false;
  return ch;
}

ShmChannel::ReclaimStats ShmChannel::reclaim_client(std::uint32_t i) noexcept {
  ReclaimStats stats;
  RobustGuard g(header_->recovery_lock);
  // Re-check under the lock: another recoverer may already have vacated
  // the seat (e.g. two server threads both timing out on the same corpse).
  if (header_->client_peer[i].pid.load(std::memory_order_acquire) == 0) {
    return stats;
  }

  // Step 1: discard traffic addressed to / queued by the dead client. Its
  // reply queue holds answers nobody will read; its duplex request queue
  // holds requests nobody is waiting on. Rings drain too — and the ring
  // drain also resets the per-side index caches, so a reconnecting client
  // reusing this seat starts from coherent indices (drain() requires both
  // sides quiesced: the client is dead and the server has stopped serving
  // this seat before reclaiming it).
  stats.drained_messages += client_endpoint(i).queue->drain();
  if (SpscRing* r = client_endpoint(i).ring.get()) {
    stats.drained_messages += r->drain();
  }
  if (header_->client_req_ep_offset[i] != 0) {
    stats.drained_messages += client_request_endpoint(i).queue->drain();
    if (SpscRing* r = client_request_endpoint(i).ring.get()) {
      stats.drained_messages += r->drain();
    }
  }

  // Step 2: sweep the shared node pool for nodes the corpse leaked between
  // allocate() and a queue link (or between unlink and release()), and the
  // payload plane for loans the corpse never released. Every queue of the
  // channel participates in the reachability mark — a queue left out would
  // have its in-flight nodes misread as leaks.
  const RecoveryStats swept =
      sweep_leaked_nodes(node_pool(), all_queues(), payload_plane());
  stats.nodes_reclaimed = swept.nodes_reclaimed;
  stats.payloads_reclaimed = swept.payloads_reclaimed;

  // Step 3: vacate the seat — the crash has been fully absorbed.
  header_->client_peer[i].pid.store(0, std::memory_order_release);
  stats.reaped = true;

  publish_recovery(i, stats.drained_messages, stats.nodes_reclaimed,
                   stats.payloads_reclaimed);
  return stats;
}

std::vector<MsgQueue*> ShmChannel::all_queues() {
  std::vector<MsgQueue*> queues;
  queues.push_back(server_endpoint().queue.get());
  for (std::uint32_t c = 0; c < header_->max_clients; ++c) {
    queues.push_back(client_endpoint(c).queue.get());
    if (header_->client_req_ep_offset[c] != 0) {
      queues.push_back(client_request_endpoint(c).queue.get());
    }
  }
  for (std::uint32_t s = 0; s < header_->num_shards; ++s) {
    queues.push_back(shard_endpoint(s).queue.get());
  }
  return queues;
}

void ShmChannel::publish_recovery(std::uint32_t participant,
                                  std::uint32_t drained,
                                  std::uint32_t nodes_reclaimed,
                                  std::uint32_t payloads_reclaimed) noexcept {
  // The recovery lock the caller holds serializes every writer of these
  // counters and of the shared recovery ring (ring index slot_count);
  // recovery is cold-path, so it is emitted even in trace-disabled builds.
  if (!has_obs()) return;
  obs::ObsHeader& oh = obs();
  ++oh.recovery.sweeps;
  oh.recovery.drained_messages += drained;
  oh.recovery.nodes_reclaimed += nodes_reclaimed;
  oh.recovery.payload_slots_reclaimed += payloads_reclaimed;
  auto* ring = static_cast<obs::TraceRing*>(oh.ring_blob(oh.slot_count));
  ring->emit(obs::TraceEvent::kRecovery,
             static_cast<std::uint16_t>(participant), drained,
             nodes_reclaimed);
}

ShmChannel::~ShmChannel() = default;

}  // namespace ulipc
