#include "runtime/shm_channel.hpp"

#include "common/cacheline.hpp"

namespace ulipc {

std::size_t ShmChannel::required_bytes(const Config& cfg) {
  // Header + pool header + nodes + (1 + clients) * (endpoint + queue),
  // each rounded up for alignment, plus generous slack.
  const std::size_t queues =
      cfg.max_clients + 1 + (cfg.duplex ? cfg.max_clients : 0);
  const std::size_t pool_nodes = queues * (cfg.queue_capacity + 2);
  std::size_t bytes = sizeof(ArenaHeader) + sizeof(ShmChannelHeader);
  bytes += sizeof(NodePool) + pool_nodes * sizeof(MsgNode);
  bytes += queues * (sizeof(NativeEndpoint) + sizeof(TwoLockQueue));
  bytes += (queues + 8) * 2 * kCacheLineSize;  // alignment slack
  return align_up(bytes * 2, 4096);            // 2x safety margin
}

ShmChannel ShmChannel::create(ShmRegion& region, const Config& cfg) {
  ULIPC_INVARIANT(cfg.max_clients >= 1 && cfg.max_clients <= kMaxClients,
                  "bad max_clients");
  ShmChannel ch;
  ch.arena_ = ShmArena::format(region);
  ch.header_ = ch.arena_.construct<ShmChannelHeader>();
  ch.header_->magic = ShmChannelHeader::kMagic;
  ch.header_->max_clients = cfg.max_clients;
  ch.header_->queue_capacity = cfg.queue_capacity;
  ch.header_->barrier.init(cfg.max_clients);

  // One semaphore per endpoint: index 0 for the server, 1..n for client
  // reply endpoints, n+1..2n for duplex request endpoints.
  const int sem_count = static_cast<int>(cfg.max_clients) * (cfg.duplex ? 2 : 1) + 1;
  ch.sem_set_ = SysvSemaphoreSet::create(sem_count);
  ch.header_->sysv_sem_id = ch.sem_set_.id();
  ch.owns_sysv_ = true;

  const std::uint32_t pool_nodes =
      (cfg.max_clients * (cfg.duplex ? 2u : 1u) + 1) * (cfg.queue_capacity + 2);
  NodePool* pool = NodePool::create(ch.arena_, pool_nodes);

  auto build_endpoint = [&](std::uint32_t id, int sem_index) {
    auto* ep = ch.arena_.construct<NativeEndpoint>();
    ep->queue.set(TwoLockQueue::create(ch.arena_, pool, cfg.queue_capacity));
    ep->id = id;
    ep->vsem = ch.sem_set_.handle(sem_index);
    return ch.arena_.to_offset(ep);
  };

  ch.header_->srv_ep_offset = build_endpoint(0, 0);
  for (std::uint32_t i = 0; i < cfg.max_clients; ++i) {
    ch.header_->client_ep_offset[i] =
        build_endpoint(i, static_cast<int>(i) + 1);
  }
  if (cfg.duplex) {
    for (std::uint32_t i = 0; i < cfg.max_clients; ++i) {
      ch.header_->client_req_ep_offset[i] = build_endpoint(
          i, static_cast<int>(cfg.max_clients + i) + 1);
    }
  }

  if (cfg.create_sysv_queues) {
    ch.owned_queues_.push_back(SysvMsgQueue::create());
    ch.header_->sysv_request_qid = ch.owned_queues_.back().id();
    for (std::uint32_t i = 0; i < cfg.max_clients; ++i) {
      ch.owned_queues_.push_back(SysvMsgQueue::create());
      ch.header_->sysv_reply_qid[i] = ch.owned_queues_.back().id();
    }
  }
  return ch;
}

ShmChannel ShmChannel::attach(const ShmRegion& region) {
  ShmChannel ch;
  ch.arena_ = ShmArena::attach(region);
  // The header is the arena's first allocation: directly after ArenaHeader,
  // cache-line aligned.
  auto* hdr = ch.arena_.from_offset<ShmChannelHeader>(
      align_up(sizeof(ArenaHeader), kCacheLineSize));
  ULIPC_INVARIANT(hdr->magic == ShmChannelHeader::kMagic,
                  "not a ulipc channel region");
  ch.header_ = hdr;
  ch.owns_sysv_ = false;
  return ch;
}

ShmChannel::~ShmChannel() = default;

}  // namespace ulipc
