// Scenario engine: named workload mixes over the pool stack, with an
// optional chaos mode that SIGKILLs workers and clients mid-load and
// asserts recovery SLOs.
//
// The paper evaluates its protocols under one workload — steady synchronous
// echo round trips. The FreeBSD IPC analysis (PAPERS.md) makes the case
// that IPC performance claims only hold up under workload sweeps; and our
// own recovery machinery (PRs 1/4/5) has so far been proven only in pinned
// schedules, never under live traffic. run_scenario() closes both gaps:
// each ScenarioSpec forks a real worker pool and real client processes,
// drives one of the named workload shapes through the resilience layer
// (runtime/resilience.hpp), optionally kills processes mid-run, and then
// audits the wreckage against three SLOs:
//
//   * no lost replies — every SURVIVING client verified every request it
//     attempted (killed clients are excluded: their in-flight requests are
//     served and their replies legitimately die with them);
//   * bounded orphan drain — after a worker SIGKILL, survivors retire the
//     dead shard and drain its backlog within chaos.orphan_drain_bound_ns;
//   * node conservation — after the run (and the final reclaim + sweep),
//     the channel's node pool holds exactly as many free nodes as before
//     the first message: nothing leaked, nothing double-freed.
//
// Chaos has two trigger mechanisms, selected at compile time:
//   * explore builds (ULIPC_EXPLORE_ENABLED, e.g. tools/ulipc-perf):
//     victims arm a PR-5 crash point (explore::arm_crash) and SIGKILL
//     themselves at the nth protocol enqueue — deterministic per process;
//   * default builds (tests/runtime/scenario_test): the parent SIGKILLs
//     the victims once aggregate verified progress crosses
//     chaos.kill_after_replies.
//
// Every run yields a ScenarioResult whose json() line is what ulipc-perf
// prints and record_bench.sh folds into BENCH_trajectory.jsonl.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/resilience.hpp"

namespace ulipc {

/// The named workload shapes.
enum class Workload : std::uint8_t {
  kRequestResponse = 0,  // synchronous echo round trips
  kStreaming,            // windowed batched sends (one-way-ish pipelining)
  kFanIn,                // many clients converging on one worker shard
  kBursty,               // on/off arrivals: bursts separated by idle gaps
  kParetoCompute,        // kCompute with pareto-distributed server work
  kChurn,                // high-rate connect/disconnect cycles
};

constexpr const char* workload_name(Workload w) noexcept {
  switch (w) {
    case Workload::kRequestResponse: return "request-response";
    case Workload::kStreaming: return "streaming";
    case Workload::kFanIn: return "fan-in";
    case Workload::kBursty: return "bursty";
    case Workload::kParetoCompute: return "pareto-compute";
    case Workload::kChurn: return "churn";
  }
  return "?";
}

/// Chaos-mode knobs. All zero (the default) = no chaos.
struct ChaosConfig {
  std::uint32_t kill_workers = 0;  // SIGKILL this many workers mid-load
                                   // (always leaves at least one alive)
  std::uint32_t kill_clients = 0;  // SIGKILL this many clients mid-load
  std::uint64_t kill_after_replies = 50;  // progress before the kill: the
      // parent-kill path waits for this many aggregate verified replies;
      // the explore path arms the nth protocol-enqueue crash point with it
  std::int64_t orphan_drain_bound_ns = 5'000'000'000;  // drain SLO bound

  [[nodiscard]] bool enabled() const noexcept {
    return kill_workers > 0 || kill_clients > 0;
  }
};

/// One named scenario: topology, workload shape, and resilience/chaos
/// configuration. Everything is bounded — a scenario cannot hang CI.
struct ScenarioSpec {
  std::string name;
  Workload workload = Workload::kRequestResponse;
  std::uint32_t workers = 2;
  std::uint32_t clients = 4;
  std::uint64_t messages = 500;   // data requests per client per cycle
  std::uint32_t window = 32;      // streaming batch / bursty burst size
  std::uint32_t cycles = 1;       // connect..traffic..disconnect rounds
  double work_us = 0.0;           // fixed kCompute weight (0 = kEcho)
  double pareto_alpha = 1.5;      // pareto-compute shape
  double pareto_xm_us = 1.0;      // pareto-compute scale (minimum work)
  double pareto_cap_us = 200.0;   // pareto-compute tail cap
  std::int64_t burst_off_ns = 2'000'000;  // bursty: idle gap between bursts
  std::uint32_t queue_capacity = 256;
  std::uint64_t seed = 42;
  // Payload plane: when payload_max > 0, every data request loans a
  // pareto(alpha)-distributed payload of [payload_min, payload_max] bytes,
  // written in place and batoned back by the echo (ulipc-perf flag:
  // --payload-dist pareto:alpha,min,max). Exhausted plane = payload-less
  // fallback, never a stall.
  double payload_alpha = 1.2;
  std::uint32_t payload_min = 0;
  std::uint32_t payload_max = 0;
  ResilienceConfig resilience;
  ChaosConfig chaos;

  [[nodiscard]] bool payloads() const noexcept { return payload_max > 0; }
};

/// What one run produced, including the SLO verdicts.
struct ScenarioResult {
  std::string name;
  Workload workload = Workload::kRequestResponse;
  bool completed = false;          // orchestration itself finished cleanly
                                   // (children joined with expected states)
  std::uint64_t attempted = 0;     // logical requests issued by survivors
  std::uint64_t verified = 0;      // round trips verified by survivors
  std::uint64_t retries = 0;       // resilience re-sends (survivors)
  std::uint64_t sheds = 0;         // admission refusals (survivors)
  std::uint64_t stale_dropped = 0; // superseded replies discarded
  std::uint32_t workers_killed = 0;
  std::uint32_t clients_killed = 0;
  std::int64_t orphan_drain_ns = 0;  // worker death -> dead shard drained
  std::int64_t elapsed_ns = 0;
  double msgs_per_ms = 0.0;
  std::uint64_t payload_bytes = 0;  // payload bytes verified end-to-end
  double bytes_per_s = 0.0;

  bool slo_no_lost_replies = false;
  bool slo_orphan_drain = false;
  bool slo_nodes_conserved = false;
  bool slo_payloads_conserved = false;

  [[nodiscard]] bool slo_pass() const noexcept {
    return completed && slo_no_lost_replies && slo_orphan_drain &&
           slo_nodes_conserved && slo_payloads_conserved;
  }

  /// One machine-readable line (what `[scenario]` output and the bench
  /// trajectory carry).
  [[nodiscard]] std::string json() const;
};

/// Forks the pool and the clients, drives the workload, applies chaos,
/// audits the SLOs. Synchronous; bounded by the spec's deadlines.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Fan-in over the readiness plane (runtime/waitset.hpp): ONE worker
/// process parks a single WaitSet across `channels` independent
/// single-client channels — a topology run_scenario cannot express, since
/// its client count is bounded by kMaxClients on one channel. Each client
/// process drives a synchronous echo loop on its own channel; the SLOs are
/// the scenario engine's no-lost-replies and node-conservation checks,
/// audited per channel. The result's json() line carries the scenario name
/// "fanin-waitset" and folds into BENCH_trajectory.jsonl like any other.
struct FaninScenarioSpec {
  std::string name = "fanin-waitset";
  std::uint32_t channels = 64;     // one client process per channel
  std::uint64_t messages = 100;    // echo round trips per client
  std::uint32_t queue_capacity = 64;
  std::int64_t liveness_timeout_ns = 20'000'000'000;  // server idle bound
  std::uint64_t seed = 42;
};

ScenarioResult run_fanin_scenario(const FaninScenarioSpec& spec);

/// The named scenario set ulipc-perf exposes (ISSUE acceptance: >= 5 named
/// scenarios plus the churn+chaos one). `quick` shrinks message counts for
/// smoke runs; `seed` perturbs jitter and pareto draws.
std::vector<ScenarioSpec> builtin_scenarios(bool quick, std::uint64_t seed);

}  // namespace ulipc
