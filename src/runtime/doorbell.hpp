// Per-endpoint doorbell word: the shared-memory half of the readiness
// plane (runtime/waitset.hpp).
//
// Layout of the 32-bit word (lives next to the endpoint's awake flag in
// the channel arena):
//
//   bit 0      armed   — some waiter may be blocked on an aggregate wait
//                        that includes this endpoint
//   bits 1..31 ring generation — bumped by 2 on every V(), so a bump can
//                        never flip the armed bit
//
// Producer side: doorbell_ring() rides the existing V() path
// (NativePlatform::sem_v). The generation bump is one uncontended RMW on a
// path that already pays a wake syscall, and the futex wake is issued ONLY
// when the armed bit was set — endpoints never placed in a waitset keep
// the paper's exact syscall profile.
//
// Waiter side: doorbell_arm() is an idempotent fetch_or of the armed bit
// that returns the post-arm word value. The waiter records that value as
// its `expected` snapshot and hands it to futex_waitv (or the eventfd
// bridge scan): any ring between arm and block bumps the generation, the
// kernel compare fails (EAGAIN == wake), and the arm -> recheck -> block
// window is closed — the same shape as the C.3 recheck closing the
// clear-awake -> P() window, one level up.
#pragma once

#include <atomic>
#include <cstdint>

#include "explore/hooks.hpp"
#include "shm/futex.hpp"

namespace ulipc {

inline constexpr std::uint32_t kDoorbellArmedBit = 1u;
inline constexpr std::uint32_t kDoorbellGenStep = 2u;

/// Arms the doorbell (idempotent) and returns the word value the waiter
/// should expect unchanged while it blocks.
inline std::uint32_t doorbell_arm(std::atomic<std::uint32_t>& w) noexcept {
  return w.fetch_or(kDoorbellArmedBit, std::memory_order_seq_cst) |
         kDoorbellArmedBit;
}

/// Clears the armed bit (member claimed or detached from the waitset).
inline void doorbell_disarm(std::atomic<std::uint32_t>& w) noexcept {
  w.fetch_and(~kDoorbellArmedBit, std::memory_order_seq_cst);
}

[[nodiscard]] inline bool doorbell_is_armed(
    const std::atomic<std::uint32_t>& w) noexcept {
  return (w.load(std::memory_order_seq_cst) & kDoorbellArmedBit) != 0;
}

/// Producer ring: bump the generation; wake the aggregate waiter iff one
/// was armed. The explore markers fire only on the armed branch, so suites
/// that never build a WaitSet see byte-identical marker traces.
inline void doorbell_ring(std::atomic<std::uint32_t>& w) noexcept {
  const std::uint32_t old =
      w.fetch_add(kDoorbellGenStep, std::memory_order_seq_cst);
  if ((old & kDoorbellArmedBit) != 0) {
    explore::point(explore::Point::kWsRung);
    futex_wake_all(&w);
    explore::point(explore::Point::kWsRingWakeDone);
  }
}

}  // namespace ulipc
