// Client-side resilience for pool channels: bounded retry with jittered
// exponential backoff, per-request deadline budgets, and graceful
// degradation under overload.
//
// The pool's recovery machinery (server_pool.hpp) makes worker death
// transparent *eventually*: survivors retire the dead shard, re-place its
// clients, and drain the orphaned backlog within one liveness timeout. But
// a request that was sitting in the dead worker's queue when it was
// SIGKILLed gets served long after its sender expected the reply, and a
// request enqueued INTO the retirement race may be answered by a straggler
// re-drain a timeout later. A client that blocks forever on one reply
// cannot ride through that; a client that re-sends blindly floods the pool
// with duplicates.
//
// ResilientPoolClient turns every operation into a bounded-time loop:
//
//   * deadline budgets — each attempt gets cfg.request_deadline_ns,
//     threaded through the protocol-layer *_until ops (enqueue_and_wake_
//     until / dequeue_or_sleep_until), so neither a full request queue nor
//     a missing reply can block past the budget;
//   * bounded retry — on expiry the request is re-sent (same payload, same
//     tag) after a jittered exponential backoff, up to cfg.max_retries
//     times; the assignment is re-read from the shard map first, so a
//     re-placement after a worker death redirects the retry;
//   * stale-reply dedup — every logical request carries a unique tag in
//     Message.ext_offset, echoed verbatim by the server. The receive loop
//     discards replies whose tag does not match the in-flight request:
//     those are answers to an earlier attempt of a request that was
//     ALSO served (e.g. first attempt was drained off the dead shard after
//     we had already retried). Duplicated echo/compute requests are
//     idempotent by construction; duplicated disconnects are deduplicated
//     server-side (client_departed exchange guard in serve_batch);
//   * graceful degradation — with cfg.shed_watermark > 0, a data request
//     whose target shard is deeper than the watermark is refused
//     immediately with RequestOutcome::kOverloaded instead of joining an
//     unbounded flow-control sleep. The caller decides whether to back
//     off and re-issue; the pool never sees the shed request at all.
//
// All sleeps go through sleep_ns_eintr (common/retry.hpp): chaos mode
// delivers signal storms, and an interrupted nanosleep must not silently
// turn an exponential backoff into a busy loop.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "obs/hooks.hpp"
#include "protocols/detail.hpp"
#include "protocols/shard_map.hpp"
#include "queue/payload_pool.hpp"
#include "runtime/shm_channel.hpp"

namespace ulipc {

struct ResilienceConfig {
  std::int64_t request_deadline_ns = 200'000'000;  // per-attempt budget
  std::uint32_t max_retries = 50;                  // re-sends after expiry
  std::int64_t backoff_base_ns = 100'000;          // first retry delay
  std::int64_t backoff_cap_ns = 10'000'000;        // exponential ceiling
  double backoff_jitter = 0.5;   // each delay drawn from [d*(1-j), d]
  std::uint64_t shed_watermark = 0;  // shard depth that trips kOverloaded;
                                     // 0 disables admission shedding
  std::uint64_t seed = 0x5ca1ab1e;   // jitter RNG seed
};

/// Outcome of one logical request (possibly several attempts).
enum class RequestOutcome : std::uint8_t {
  kOk = 0,        // verified reply received
  kOverloaded,    // shed at admission: target shard over the watermark
  kTimedOut,      // every attempt's deadline expired
};

constexpr const char* request_outcome_name(RequestOutcome o) noexcept {
  switch (o) {
    case RequestOutcome::kOk: return "ok";
    case RequestOutcome::kOverloaded: return "overloaded";
    case RequestOutcome::kTimedOut: return "timed-out";
  }
  return "?";
}

/// Per-client resilience event counts (the obs counters carry retries and
/// sheds too; this struct adds the dedup/re-placement detail).
struct ResilienceStats {
  std::uint64_t requests = 0;       // logical requests issued
  std::uint64_t retries = 0;        // extra attempts after a deadline expiry
  std::uint64_t sheds = 0;          // requests refused at admission
  std::uint64_t stale_dropped = 0;  // replies to superseded attempts
  std::uint64_t replacements = 0;   // self re-placements (shard retired)
};

/// A pool client whose every operation is bounded in time. One instance per
/// client id; not thread-safe (one logical request in flight at a time, the
/// synchronous shape every scenario workload uses).
class ResilientPoolClient {
 public:
  ResilientPoolClient(ShmChannel& channel, std::uint32_t id,
                      const ResilienceConfig& cfg = {})
      : channel_(channel),
        id_(id),
        cfg_(cfg),
        rng_(cfg.seed ^ (std::uint64_t{id} << 32 | id)) {}

  [[nodiscard]] const ResilienceStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  /// Jittered exponential backoff before retry attempt `attempt` (>= 1):
  /// base * 2^(attempt-1), capped, then jittered down by up to
  /// cfg.backoff_jitter. Exposed for tests.
  [[nodiscard]] std::int64_t backoff_ns(std::uint32_t attempt) noexcept {
    std::int64_t d = cfg_.backoff_base_ns;
    for (std::uint32_t i = 1; i < attempt && d < cfg_.backoff_cap_ns; ++i) {
      d *= 2;
    }
    if (d > cfg_.backoff_cap_ns) d = cfg_.backoff_cap_ns;
    const double scale = 1.0 - cfg_.backoff_jitter * rng_.uniform01();
    return static_cast<std::int64_t>(static_cast<double>(d) * scale);
  }

  /// Connect: place onto a shard (unless already placed — a retry after a
  /// partial connect keeps its seat), take the liveness seat, then the
  /// kConnect round trip under the usual retry/deadline envelope. Connects
  /// are never shed: an admission refusal would strand the placement.
  template <typename P>
  RequestOutcome connect(P& p, PlacementPolicy policy) {
    policy_ = policy;
    channel_.register_client(id_);
    Message ans;
    return roundtrip(p, Op::kConnect, 0.0, &ans, /*sheddable=*/false);
  }

  /// One synchronous data request (kEcho or kCompute). On kOk, `*ans` holds
  /// the verified reply. kOverloaded means the request was never sent.
  template <typename P>
  RequestOutcome request(P& p, Op op, double value, Message* ans) {
    return roundtrip(p, op, value, ans, /*sheddable=*/true);
  }

  /// One synchronous data request carrying a published payload loan. The
  /// token rides in ext_offset, where it doubles as the stale-reply dedup
  /// tag: tokens carry the slot's loan generation, so a reply echoing the
  /// token of a superseded attempt against a since-recycled slot can never
  /// match the in-flight request.
  ///
  /// Loan ownership: on kOk the loan is the caller's again — consume the
  /// reply payload in place, then release. On kOverloaded (never sent) or
  /// kTimedOut (every attempt expired), this method has already released
  /// the loan — exactly once — and the caller must not touch the token
  /// again. `loan_t0` is the obs::loan_made() timestamp, threaded through
  /// so the internal release keeps the hold-time histogram matched.
  template <typename P>
  RequestOutcome request_loaned(P& p, Op op, double value,
                                std::uint64_t token, Message* ans,
                                std::int64_t loan_t0 = 0) {
    const RequestOutcome o =
        roundtrip_tagged(p, op, value, token, ans, /*sheddable=*/true);
    if (o != RequestOutcome::kOk) {
      PayloadPool* plane = channel_.payload_plane();
      if (plane != nullptr && plane->owns_token(token)) {
        plane->release(token);
        obs::loan_released(p, loan_t0);
      }
    } else if constexpr (requires { p.obs_last_span_id(); }) {
      // Span mirror: tie the loan to the request's causal span (the span
      // id of this platform's last send — the request we just completed;
      // 0 when that send was unsampled). Written only on kOk, while the
      // loan is unambiguously the caller's again, so a re-loaned slot can
      // never be scribbled on.
      PayloadPool* plane = channel_.payload_plane();
      if (plane != nullptr && plane->owns_token(token)) {
        plane->set_span(token, p.obs_last_span_id());
      }
    }
    return o;
  }

  /// Disconnect: the kDisconnect round trip (retried like any other — the
  /// server dedups repeats via client_departed), then release the placement
  /// slot and the liveness seat. Best-effort: even on kTimedOut the local
  /// teardown proceeds, so a dead pool cannot wedge a departing client.
  template <typename P>
  RequestOutcome disconnect(P& p) {
    Message ans;
    const RequestOutcome o =
        roundtrip(p, Op::kDisconnect, 0.0, &ans, /*sheddable=*/false);
    channel_.shard_map().unplace(id_);
    channel_.deregister_client(id_);
    return o;
  }

 private:
  /// Re-reads the assignment, re-placing if the shard map retired it (or it
  /// was never placed). Returns the live shard, or kNoShard when the pool
  /// has no active shard left (caller backs off and retries).
  std::uint32_t ensure_placed() noexcept {
    PoolShardMap& map = channel_.shard_map();
    std::uint32_t s = map.assignment(id_);
    if (s != kNoShard && map.state(s) == PoolShardMap::kActive) return s;
    const bool had = s != kNoShard;
    s = map.place(id_, policy_);
    if (s != kNoShard && had) ++stats_.replacements;
    return s;
  }

  template <typename P>
  RequestOutcome roundtrip(P& p, Op op, double value, Message* ans,
                           bool sheddable) {
    // The dedup tag rides in ext_offset, which serve_one_request echoes
    // verbatim for every op the pool serves. Unique per logical request,
    // shared by all its attempts: any attempt's reply settles the request.
    return roundtrip_tagged(p, op, value, ++seq_, ans, sheddable);
  }

  template <typename P>
  RequestOutcome roundtrip_tagged(P& p, Op op, double value,
                                  std::uint64_t tag, Message* ans,
                                  bool sheddable) {
    ++stats_.requests;
    const Message msg(op, id_, value, tag);
    NativeEndpoint& mine = channel_.client_endpoint(id_);
    for (std::uint32_t attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
      if (attempt > 0) {
        ++stats_.retries;
        ++p.counters().retries;
        sleep_ns_eintr(backoff_ns(attempt));
      }
      const std::uint32_t s = ensure_placed();
      if (s == kNoShard) continue;  // no active shard yet; back off
      NativeEndpoint& srv = channel_.shard_endpoint(s);
      if (sheddable && cfg_.shed_watermark > 0 &&
          srv.queue->size() > cfg_.shed_watermark) {
        ++stats_.sheds;
        ++p.counters().sheds;
        return RequestOutcome::kOverloaded;
      }
      const std::int64_t deadline = p.time_ns() + cfg_.request_deadline_ns;
      if (detail::enqueue_and_wake_until(p, srv, msg, deadline) !=
          Status::kOk) {
        continue;  // request queue stayed full for the whole budget
      }
      ++p.counters().sends;
      // Drain replies until ours arrives or the budget runs out. Replies
      // carrying another tag belong to a superseded attempt (the original
      // WAS eventually served — e.g. migrated off a dead shard after we
      // had retried); drop them so they cannot satisfy a later request.
      while (detail::dequeue_or_sleep_until(p, mine, ans,
                                            /*pre_busy_wait=*/false,
                                            deadline) == Status::kOk) {
        ++p.counters().receives;
        if (ans->ext_offset == tag && ans->channel == id_) {
          return RequestOutcome::kOk;
        }
        ++stats_.stale_dropped;
      }
    }
    return RequestOutcome::kTimedOut;
  }

  ShmChannel& channel_;
  std::uint32_t id_;
  ResilienceConfig cfg_;
  PlacementPolicy policy_ = PlacementPolicy::kLeastLoaded;
  Xoshiro256 rng_;
  std::uint64_t seq_ = 0;
  ResilienceStats stats_;
};

}  // namespace ulipc
