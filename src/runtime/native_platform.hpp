// NativePlatform: the Platform-concept implementation over real operating
// system facilities — this is the deployable library.
//
//   queues     : Michael & Scott two-lock queues in shared memory
//   awake flag : seq_cst test-and-set word in shared memory
//   semaphore  : futex-based (modern) or SysV (the paper's primitive),
//                selected per platform instance
//   yield      : sched_yield(2)
//   busy_wait  : sched_yield on a uniprocessor configuration, calibrated
//                25 us delay slice on a multiprocessor one (paper §2.1/§5)
//
// One NativePlatform instance lives in each process (its counters are
// process-local); endpoints live in shared memory and are shared by all.
#pragma once

#include <sched.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>

#include "common/clock.hpp"
#include "common/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_ring.hpp"
#include "protocols/platform.hpp"
#include "queue/msg_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "runtime/doorbell.hpp"
#include "shm/futex_semaphore.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/sysv_semaphore.hpp"
#include "shm/tas_flag.hpp"

namespace ulipc {

/// Which counting-semaphore implementation endpoints block on.
enum class SemKind : std::uint8_t {
  kFutex,  // futex-based; V on an uncontended semaphore costs no syscall
  kSysv,   // SysV semop; the paper's primitive ("similar weight to the four
           // SysV message queue calls")
};

/// The paper's Q[x], resident in shared memory: a queue, its awake flag,
/// and the semaphore its consumer sleeps on (both kinds are embedded; the
/// platform's SemKind selects which one is used).
///
/// Endpoints whose traffic is topologically single-producer/single-consumer
/// (every reply endpoint, and the duplex per-client request endpoints) also
/// carry a lock-free SpscRing as the fast path; `ring` stays unset on the
/// MPSC server receive endpoint. Routing (see enqueue/dequeue below) keeps
/// FIFO order across the two structures: the producer uses the ring only
/// while the overflow queue (a MsgQueue of either engine) is empty, and
/// the consumer always drains the ring before the overflow queue, so a
/// message in the overflow
/// queue is always newer than everything in the ring.
struct NativeEndpoint {
  OffsetPtr<MsgQueue> queue;
  OffsetPtr<SpscRing> ring;  // null on MPSC endpoints
  AwakeFlag awake;
  FutexSemaphore fsem;
  SysvSemHandle vsem;
  std::uint32_t id = 0;
  // Telemetry stamp: TSC tick at the last wake-carrying enqueue, written by
  // the producer on the V() path and consumed by the post-sleep dequeuer to
  // measure the cross-process enqueue-to-dequeue handoff latency (invariant
  // TSC makes ticks comparable across processes; each reader converts with
  // its own cached calibration). Messages stay 24 bytes.
  std::atomic<std::int64_t> last_wake_tick{0};
  // Span-plane wake attribution (obs/span.hpp): when the V() below pays a
  // wake for a freshly enqueued TRACED message, the producer stamps the
  // span id and issue tick here; the sleeper consumes (and clears) the pair
  // on sem_p return to emit the wake-delivered edge and the
  // kWakeInFlightNs sample. Same relaxed, consume-on-every-exit discipline
  // as last_wake_tick — a stamp that outlives its wake must not be
  // attributed to a later one.
  std::atomic<std::uint64_t> last_wake_span{0};
  std::atomic<std::int64_t> last_wake_span_tick{0};
  // Readiness-plane doorbell (runtime/doorbell.hpp): armed bit + ring
  // generation. Rung by every V() below; armed only while a WaitSet holds
  // this endpoint as a member, so non-multiplexed endpoints pay one
  // uncontended RMW on an already-syscall-bearing path and nothing else.
  std::atomic<std::uint32_t> doorbell{0};
};

class NativePlatform {
 public:
  using Endpoint = NativeEndpoint;

  struct Config {
    SemKind sem = SemKind::kFutex;
    bool multiprocessor = false;       // busy_wait: delay loop vs yield
    std::int64_t poll_slice_ns = 25'000;
    std::int64_t full_sleep_ns = 1'000'000'000;  // paper: sleep(1)
  };

  NativePlatform() = default;
  explicit NativePlatform(const Config& cfg) : cfg_(cfg) {}

  // Copies get an independent local metric slot carrying over the counter
  // values (the pre-registry behavior of copying a plain counters struct);
  // an external registry binding is deliberately NOT inherited — two
  // platforms writing one single-writer slot would corrupt it.
  NativePlatform(const NativePlatform& o)
      : cfg_(o.cfg_), tsc_ns_per_tick_(o.tsc_ns_per_tick_) {
    counters().restore(o.slot_->counters.snapshot());
  }
  NativePlatform& operator=(const NativePlatform& o) {
    if (this != &o) {
      cfg_ = o.cfg_;
      local_ = std::make_shared<obs::MetricSlot>();
      slot_ = local_.get();
      ring_ = nullptr;
      slot_id_ = 0;
      tsc_ns_per_tick_ = o.tsc_ns_per_tick_;
      // Span state follows the obs binding, not the counter values: a
      // fresh unbound platform minting under default decimation.
      span_adopt_ = false;
      span_shift_ = kSpanSampleShift;
      span_pid_bits_ = 0;
      span_last_sent_ = 0;
      last_span_id_ = 0;
      span_adopted_ = SpanStamp{};
      counters().restore(o.slot_->counters.snapshot());
    }
    return *this;
  }
  NativePlatform(NativePlatform&&) = default;
  NativePlatform& operator=(NativePlatform&&) = default;

  // ---- queue ----
  //
  // FIFO across ring + overflow queue: only the single producer decides
  // where a message lands, and it spills to the overflow queue exactly when
  // the ring is full or the overflow queue is non-empty. Overflow observed
  // empty (acquire read of its size) means every older message has already
  // been copied out by the consumer, so a fresh ring enqueue cannot
  // overtake anything.

  // Every enqueue peeks a span stamp first (a mint, the adopted inbound
  // span for a reply, or untraced — see span_next_stamp) and COMMITS it via
  // span_note_sent only once the message actually landed: a failed enqueue
  // must neither consume the adopted span nor emit phase records.

  bool enqueue(Endpoint& ep, const Message& msg) noexcept {
    const SpanStamp st = span_next_stamp();
    if (SpscRing* r = ep.ring.get();
        r && ep.queue->empty() && r->enqueue(msg, st)) {
      span_note_sent(ep, st);
      return true;
    }
    if (ep.queue->enqueue(msg, st)) {
      span_note_sent(ep, st);
      return true;
    }
    return false;
  }
  bool dequeue(Endpoint& ep, Message* out) noexcept {
    SpanStamp st{};
    SpanStamp* sp = obs::kTraceCompiledIn ? &st : nullptr;
    if (SpscRing* r = ep.ring.get(); r && r->dequeue(out, sp)) {
      span_note_received(ep, st);
      return true;
    }
    if (ep.queue->dequeue(out, sp)) {
      span_note_received(ep, st);
      return true;
    }
    return false;
  }
  bool queue_empty(Endpoint& ep) noexcept {
    SpscRing* r = ep.ring.get();
    return (!r || r->empty()) && ep.queue->empty();
  }

  std::uint32_t enqueue_batch(Endpoint& ep, const Message* msgs,
                              std::uint32_t n) noexcept {
    // One stamp per batch, on the first message that lands (fidelity
    // degrades to one sampled span per flush on batched paths).
    const SpanStamp st = span_next_stamp();
    std::uint32_t done = 0;
    if (SpscRing* r = ep.ring.get(); r && ep.queue->empty()) {
      done = r->enqueue_batch(msgs, n, st);
      if (done == n) {
        if (done != 0) span_note_sent(ep, st);
        return done;
      }
    }
    done += ep.queue->enqueue_batch(msgs + done, n - done,
                                    done == 0 ? st : SpanStamp{});
    if (done != 0) span_note_sent(ep, st);
    return done;
  }
  std::uint32_t dequeue_batch(Endpoint& ep, Message* out,
                              std::uint32_t max) noexcept {
    SpanStamp ring_st{};
    SpanStamp q_st{};
    SpanStamp* rsp = obs::kTraceCompiledIn ? &ring_st : nullptr;
    std::uint32_t got = 0;
    if (SpscRing* r = ep.ring.get()) {
      got = r->dequeue_batch(out, max, rsp);
      if (got == max) {
        span_note_received(ep, ring_st);
        return got;
      }
    }
    SpanStamp* qsp = obs::kTraceCompiledIn ? &q_st : nullptr;
    got += ep.queue->dequeue_batch(out + got, max - got, qsp);
    // Overflow-queue messages are always newer than the ring's (the FIFO
    // routing rule), so the queue's stamp is the batch's last traced one.
    span_note_received(ep, q_st.traced() ? q_st : ring_st);
    return got;
  }

  // ---- awake flag ----

  bool tas_awake(Endpoint& ep) noexcept { return ep.awake.tas(); }
  void clear_awake(Endpoint& ep) noexcept { ep.awake.clear(); }
  void set_awake(Endpoint& ep) noexcept { ep.awake.set(); }
  bool awake_is_set(Endpoint& ep) noexcept { return ep.awake.is_set(); }

  // ---- semaphore ----

  void sem_p(Endpoint& ep) {
    if (cfg_.sem == SemKind::kFutex) {
      ep.fsem.wait();
    } else {
      SysvSemaphoreSet::wait(ep.vsem);
    }
  }
  void sem_v(Endpoint& ep) {
    if (cfg_.sem == SemKind::kFutex) {
      ep.fsem.post();
    } else {
      SysvSemaphoreSet::post(ep.vsem);
    }
    // Ring AFTER the token is banked: an aggregate waiter ungated by this
    // ring claims the member with tas + sem_p, and the P must find (or be
    // about to receive) the V just posted.
#ifndef ULIPC_AB_NO_DOORBELL  // A/B escape hatch, never defined in builds
    doorbell_ring(ep.doorbell);
#endif
  }

  /// Timed P against an absolute time_ns() (CLOCK_MONOTONIC) deadline.
  /// Returns false iff the deadline passed without acquiring a unit.
  bool sem_p_until(Endpoint& ep, std::int64_t deadline_ns) {
    if (deadline_ns == kNoDeadline) {
      sem_p(ep);
      return true;
    }
    const std::int64_t budget = deadline_ns - time_ns();
    if (cfg_.sem == SemKind::kFutex) {
      return ep.fsem.timed_wait(budget);
    }
    return SysvSemaphoreSet::timed_wait(ep.vsem, budget);
  }

  // ---- scheduling ----

  void yield() noexcept { sched_yield(); }

  void busy_wait(Endpoint&) noexcept {
    if (cfg_.multiprocessor) {
      DelayLoop::spin_ns(cfg_.poll_slice_ns);
    } else {
      sched_yield();
    }
  }

  void poll_queue(Endpoint& ep) noexcept { busy_wait(ep); }

  void sleep_seconds(int secs) noexcept {
    // The paper's queue-full back-off is sleep(1); the configured duration
    // lets tests exercise the flow-control path without 1 s stalls.
    sleep_ns_eintr(cfg_.full_sleep_ns * secs);
  }

  /// Flow-control back-off clamped to an absolute deadline: sleeps the
  /// configured full_sleep_ns quantum or the remaining budget, whichever is
  /// smaller, and returns immediately once the deadline has passed. Keeps
  /// a timed send from overshooting its deadline by (up to) a whole
  /// quantum — the sender re-checks the deadline right after this returns.
  void sleep_capped(std::int64_t deadline_ns) noexcept {
    std::int64_t total = cfg_.full_sleep_ns;
    if (deadline_ns != kNoDeadline) {
      const std::int64_t remaining = deadline_ns - time_ns();
      if (remaining <= 0) return;
      total = std::min(total, remaining);
    }
    sleep_ns_eintr(total);
  }

  void fence() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void work_us(double us) noexcept {
    DelayLoop::spin_ns(static_cast<std::int64_t>(us * 1'000.0));
  }

  [[nodiscard]] std::int64_t time_ns() noexcept { return now_ns(); }

  obs::LiveCounters& counters() noexcept { return slot_->counters; }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // ---- observability ----
  //
  // By default every platform writes a private heap-allocated MetricSlot
  // (the old process-local counters, now externally snapshotable). Binding
  // redirects all metrics — and, when compiled in, trace records — to a
  // slot/ring pair inside the channel's shm registry, making this
  // platform's activity visible to ulipc-stat. One platform instance per
  // slot: the registry cells are single-writer.

  void bind_obs(obs::MetricSlot* slot, obs::TraceRing* ring,
                std::uint16_t slot_id,
                obs::SlotRole role = obs::SlotRole::kUnbound) noexcept {
    slot_ = slot != nullptr ? slot : local_.get();
    ring_ = ring;
    slot_id_ = slot_id;
    // Span plane: serving roles ADOPT inbound spans (their next send is the
    // reply closing the request leg); originating roles mint fresh ids and
    // treat inbound stamps as span terminals. The unbound default keeps a
    // bare platform minting like a client, which is what the protocol unit
    // tests exercise.
    span_adopt_ = role == obs::SlotRole::kServer ||
                  role == obs::SlotRole::kDuplexThread ||
                  role == obs::SlotRole::kPoolWorker;
    span_pid_bits_ = 0;  // re-derive: bind may follow a fork / slot change
    span_adopted_ = SpanStamp{};
    span_last_sent_ = 0;
    if (const char* env = std::getenv("ULIPC_SPAN_SHIFT")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v >= 0) {
        set_span_sample_shift(static_cast<std::uint32_t>(v));
      }
    }
    // Warm the process-wide TSC calibration here, outside any timed loop:
    // obs_rt_end() converts ticks to ns and must never pay the one-shot
    // ~2 ms measurement inside the first round trip it instruments.
    tsc_ns_per_tick_ = TscClock::cached().ns_per_tick;
  }

  /// Span mint rate = 1 in 2^shift sends (0 traces every send — tests and
  /// the smoke jobs use that via ULIPC_SPAN_SHIFT=0).
  void set_span_sample_shift(std::uint32_t shift) noexcept {
    span_shift_ = std::min(shift, 20u);
  }

  /// Span id of this platform's most recent traced send (0 when the last
  /// send was unsampled). The resilience layer mirrors it into the payload
  /// slot header of loaned requests right after the send.
  [[nodiscard]] std::uint64_t obs_last_span_id() const noexcept {
    return last_span_id_;
  }

  [[nodiscard]] obs::MetricSlot& metrics() noexcept { return *slot_; }
  [[nodiscard]] obs::TraceRing* trace_ring() noexcept { return ring_; }

  void obs_trace(obs::TraceEvent ev, std::uint32_t a = 0,
                 std::uint64_t b = 0) noexcept {
    if constexpr (obs::kTraceCompiledIn) {
      if (ring_ != nullptr) ring_->emit(ev, slot_id_, a, b);
    } else {
      (void)ev;
      (void)a;
      (void)b;
    }
  }

  // Hook methods called from the protocol templates (see obs/hooks.hpp).
  // The timing hooks are DECIMATED: even with rdtsc (~15 ns/read here, vs
  // ~26 ns for a vDSO clock_gettime), timestamping every round trip and
  // every sleep costs several percent of a ~110 ns/msg batched round trip.
  // Sampling 1-in-2^k with the histogram weight scaled by 2^k keeps the
  // recorded totals and the percentile shape (the workload is stationary
  // over any 16-event stretch) while cutting the clock reads to noise.
  // Counter updates are never sampled — they are exact.
  static constexpr std::uint32_t kRtSampleShift = 4;     // time 1 in 16
  static constexpr std::uint32_t kSleepSampleShift = 4;  // time 1 in 16
  static constexpr std::uint32_t kWakeSampleShift = 2;   // stamp 1 in 4
  static constexpr std::uint32_t kBatchSampleShift = 2;  // hist 1 in 4

  void obs_enqueue(Endpoint& ep) noexcept {
    obs_trace(obs::TraceEvent::kEnqueue, ep.id);
  }
  void obs_dequeue(Endpoint& ep) noexcept {
    obs_trace(obs::TraceEvent::kDequeue, ep.id);
  }
  void obs_wakeup_sent(Endpoint& ep) noexcept {
    if ((wake_decim_++ & ((1u << kWakeSampleShift) - 1)) == 0) {
      ep.last_wake_tick.store(static_cast<std::int64_t>(TscClock::now()),
                              std::memory_order_relaxed);
    }
    if constexpr (obs::kTraceCompiledIn) {
      // Wake-issued edge: attribute this V() to the traced message we JUST
      // enqueued (span_note_sent armed span_last_sent_; every send rewrites
      // it, so a wake paid for a later untraced message never lands on a
      // stale span). Tick stored before id: a consumer that sees the id
      // sees a tick no older than its wake.
      if (span_last_sent_ != 0) {
        ep.last_wake_span_tick.store(static_cast<std::int64_t>(TscClock::now()),
                                     std::memory_order_relaxed);
        ep.last_wake_span.store(span_last_sent_, std::memory_order_relaxed);
        obs_trace(obs::TraceEvent::kSpanWakeIssue, ep.id, span_last_sent_);
        span_last_sent_ = 0;
      }
    }
    obs_trace(obs::TraceEvent::kWakeupSent, ep.id);
  }
  /// Returns the sleep-entry tick, or -1 when this sleep is not sampled.
  std::int64_t obs_sleep_begin(Endpoint& ep) noexcept {
    obs_trace(obs::TraceEvent::kSleepBegin, ep.id);
    if ((sleep_decim_++ & ((1u << kSleepSampleShift) - 1)) != 0) return -1;
    return static_cast<std::int64_t>(TscClock::now());
  }
  void obs_sleep_end(Endpoint& ep, std::int64_t t0, bool timed_out) noexcept {
    // The wake stamp is consumed (and cleared) on EVERY sleep exit, sampled
    // or not: a stamp left behind by an unsampled exit would otherwise be
    // read many wake-ups later as an absurdly long handoff latency.
    const std::int64_t stamp =
        ep.last_wake_tick.load(std::memory_order_relaxed);
    if (stamp != 0) ep.last_wake_tick.store(0, std::memory_order_relaxed);
    if constexpr (obs::kTraceCompiledIn) {
      // Wake-delivered edge: consume the span wake stamp under the same
      // every-exit discipline. A timed-out exit still clears it (the wake
      // it names was absorbed or raced away) but emits nothing.
      const std::uint64_t wspan =
          ep.last_wake_span.load(std::memory_order_relaxed);
      if (wspan != 0) {
        ep.last_wake_span.store(0, std::memory_order_relaxed);
        if (!timed_out) {
          const std::int64_t wtick =
              ep.last_wake_span_tick.load(std::memory_order_relaxed);
          const auto wnow = static_cast<std::int64_t>(TscClock::now());
          if (wnow > wtick) {
            slot_->hist(obs::HistKind::kWakeInFlightNs)
                .record(obs_ticks_to_ns(wnow - wtick));
          }
          obs_trace(obs::TraceEvent::kSpanWakeDeliver, ep.id, wspan);
        }
      }
    }
    if (t0 >= 0) {
      const auto now = static_cast<std::int64_t>(TscClock::now());
      slot_->hist(obs::HistKind::kSleepNs)
          .record(obs_ticks_to_ns(now - t0),
                  std::uint64_t{1} << kSleepSampleShift);
      if (!timed_out && stamp != 0 && now > stamp) {
        slot_->hist(obs::HistKind::kWakeLatencyNs)
            .record(obs_ticks_to_ns(now - stamp));
      }
    }
    obs_trace(obs::TraceEvent::kSleepEnd, ep.id, timed_out ? 1 : 0);
  }
  void obs_batch_flush(Endpoint& ep, std::uint32_t n) noexcept {
    if ((batch_decim_++ & ((1u << kBatchSampleShift) - 1)) == 0) {
      slot_->hist(obs::HistKind::kBatchSize)
          .record(n, std::uint64_t{1} << kBatchSampleShift);
    }
    obs_trace(obs::TraceEvent::kBatchFlush, ep.id, n);
  }
  void obs_spin(Endpoint& ep, std::uint32_t iters, bool exhausted) noexcept {
    if ((spin_decim_++ & ((1u << kBatchSampleShift) - 1)) == 0) {
      slot_->hist(obs::HistKind::kSpinIters)
          .record(iters, std::uint64_t{1} << kBatchSampleShift);
    }
    if (exhausted) obs_trace(obs::TraceEvent::kSpinExhausted, ep.id, iters);
  }
  void obs_round_trip(std::int64_t ns, std::uint64_t weight) noexcept {
    slot_->hist(obs::HistKind::kRoundTripNs)
        .record(static_cast<std::uint64_t>(ns > 0 ? ns : 0), weight);
  }
  /// Payload-plane loan made; returns the loan tick (-1 when unsampled).
  /// The counter is exact, the hold-time histogram is decimated like the
  /// other timing hooks.
  [[nodiscard]] std::int64_t obs_loan_made() noexcept {
    ++counters().loans;
    if ((loan_decim_++ & ((1u << kBatchSampleShift) - 1)) != 0) return -1;
    return static_cast<std::int64_t>(TscClock::now());
  }
  void obs_loan_released(std::int64_t t0) noexcept {
    ++counters().loan_releases;
    if (t0 <= 0) return;
    const auto now = static_cast<std::int64_t>(TscClock::now());
    slot_->hist(obs::HistKind::kLoanHoldNs)
        .record(obs_ticks_to_ns(now - t0),
                std::uint64_t{1} << kBatchSampleShift);
  }

  // Round-trip bracket (obs::round_trip_begin/end): rdtsc, not
  // clock_gettime — this pair runs INSIDE the latency it measures, and two
  // vDSO clock reads per window are a measurable fraction of a ~100 ns/msg
  // batched round trip. Ticks convert to ns at record time via the cached
  // process calibration (lazily measured if nothing bound this platform).
  /// Returns the round-trip start tick, or -1 when this one is skipped by
  /// the sampling decimation.
  [[nodiscard]] std::int64_t obs_rt_begin() noexcept {
    if ((rt_decim_++ & ((1u << kRtSampleShift) - 1)) != 0) return -1;
    return static_cast<std::int64_t>(TscClock::now());
  }
  void obs_rt_end(std::int64_t t0, std::uint64_t count) noexcept {
    if (t0 < 0 || count == 0) return;
    const auto dt = static_cast<std::int64_t>(TscClock::now()) - t0;
    const auto dt_ns = static_cast<std::int64_t>(obs_ticks_to_ns(dt));
    obs_round_trip(dt_ns / static_cast<std::int64_t>(count),
                   count << kRtSampleShift);
  }

  // Decimated span minting: a fresh span is traced for 1 in 2^span_shift_
  // sends (default 1 in 32; ULIPC_SPAN_SHIFT / set_span_sample_shift
  // override). Adopting roles never mint — they either carry the adopted
  // inbound span into their reply or send untraced.
  static constexpr std::uint32_t kSpanSampleShift = 5;

 private:
  // ---- span plane (obs/span.hpp) ----

  /// Peeks the stamp the NEXT enqueue should carry. Pure peek: the adopted
  /// span and the decimation counter state are only committed by
  /// span_note_sent after a successful enqueue (a mint that never lands
  /// just wastes one 24-bit sequence number).
  [[nodiscard]] SpanStamp span_next_stamp() noexcept {
#ifdef ULIPC_AB_NO_SPANMINT  // A/B escape hatch, never defined in builds
    return SpanStamp{};
#endif
    if constexpr (obs::kTraceCompiledIn) {
      if (span_adopt_) {
        if (!span_adopted_.traced()) return SpanStamp{};
        return SpanStamp{span_adopted_.id,
                         static_cast<std::int64_t>(TscClock::now())};
      }
      if ((span_decim_++ & ((1u << span_shift_) - 1)) != 0) return SpanStamp{};
      return SpanStamp{span_mint_id(),
                       static_cast<std::int64_t>(TscClock::now())};
    } else {
      return SpanStamp{};
    }
  }

  /// Commits a successful send of a message stamped `st`. An adopting role
  /// sending its adopted span emits the service-done/reply-enqueue edge and
  /// releases the span; anyone else emits the send-enqueue edge of a fresh
  /// span. Also arms the wake-issued attribution for obs_wakeup_sent —
  /// rewritten on EVERY send (0 when untraced) so only the wake paid for
  /// this exact message can be attributed to the span.
  void span_note_sent(Endpoint& ep, const SpanStamp& st) noexcept {
    if constexpr (obs::kTraceCompiledIn) {
      span_last_sent_ = st.id;
      last_span_id_ = st.id;  // 0 too: "last send untraced" is meaningful
      if (!st.traced()) return;
      if (span_adopt_ && st.id == span_adopted_.id) {
        slot_->hist(obs::HistKind::kServiceNs)
            .record(obs_ticks_to_ns(st.tick - span_adopt_tick_));
        obs_trace(obs::TraceEvent::kSpanReplyEnqueue, ep.id, st.id);
        span_adopted_ = SpanStamp{};
      } else {
        obs_trace(obs::TraceEvent::kSpanSend, ep.id, st.id);
      }
    } else {
      (void)ep;
      (void)st;
    }
  }

  /// Commits a dequeue that surfaced a traced stamp. An adopting role
  /// records queue residency (sender's enqueue tick -> now, cross-process
  /// via invariant TSC) and holds the span until its reply send; a
  /// terminal role records the reply path and closes the span.
  void span_note_received(Endpoint& ep, const SpanStamp& st) noexcept {
    if constexpr (obs::kTraceCompiledIn) {
      if (!st.traced()) return;
      const auto now = static_cast<std::int64_t>(TscClock::now());
      if (span_adopt_) {
        slot_->hist(obs::HistKind::kQueueResidencyNs)
            .record(obs_ticks_to_ns(now - st.tick));
        obs_trace(obs::TraceEvent::kSpanDequeue, ep.id, st.id);
        span_adopted_ = st;
        span_adopt_tick_ = now;
      } else {
        slot_->hist(obs::HistKind::kReplyPathNs)
            .record(obs_ticks_to_ns(now - st.tick));
        obs_trace(obs::TraceEvent::kSpanReplyRecv, ep.id, st.id);
      }
    } else {
      (void)ep;
      (void)st;
    }
  }

  /// Mints the next span id: | pid | slot | seq | (see obs::make_span_id).
  /// The pid half is derived lazily so forked children stamp their own.
  [[nodiscard]] std::uint64_t span_mint_id() noexcept {
    if (span_pid_bits_ == 0) {
      span_pid_bits_ = obs::make_span_id(
          static_cast<std::uint32_t>(::getpid()), slot_id_, 0);
    }
    return span_pid_bits_ | (++span_seq_ & 0xffffffu);
  }

  /// Tick delta -> ns via the process calibration (fetched lazily so
  /// never-bound platforms only pay the one-shot measurement if they
  /// actually record; bind_obs() pre-warms it). Negative deltas clamp to 0.
  [[nodiscard]] std::uint64_t obs_ticks_to_ns(std::int64_t dticks) noexcept {
    if (dticks <= 0) return 0;
    if (tsc_ns_per_tick_ == 0.0) {
      tsc_ns_per_tick_ = TscClock::cached().ns_per_tick;
    }
    return static_cast<std::uint64_t>(static_cast<double>(dticks) *
                                      tsc_ns_per_tick_);
  }

  Config cfg_{};
  std::shared_ptr<obs::MetricSlot> local_ = std::make_shared<obs::MetricSlot>();
  obs::MetricSlot* slot_ = local_.get();
  obs::TraceRing* ring_ = nullptr;
  std::uint16_t slot_id_ = 0;
  double tsc_ns_per_tick_ = 0.0;  // 0 = calibration not yet fetched
  std::uint32_t rt_decim_ = 0;    // timing-hook decimation counters
  std::uint32_t sleep_decim_ = 0;
  std::uint32_t wake_decim_ = 0;
  std::uint32_t batch_decim_ = 0;
  std::uint32_t spin_decim_ = 0;
  std::uint32_t loan_decim_ = 0;

  // Span-plane state (single-writer, like the decimation counters above:
  // one platform instance per thread).
  bool span_adopt_ = false;  // role adopts inbound spans (serving side)
  std::uint32_t span_shift_ = kSpanSampleShift;
  std::uint32_t span_decim_ = 0;
  std::uint32_t span_seq_ = 0;        // 24-bit mint sequence
  std::uint64_t span_pid_bits_ = 0;   // cached pid|slot id half (0 = unset)
  std::uint64_t span_last_sent_ = 0;  // arms wake-issued attribution
  std::uint64_t last_span_id_ = 0;    // payload-mirror accessor backing
  SpanStamp span_adopted_{};          // inbound span being serviced
  std::int64_t span_adopt_tick_ = 0;  // local dequeue tick of the adoption
};

static_assert(Platform<NativePlatform>);

}  // namespace ulipc
