// NativePlatform: the Platform-concept implementation over real operating
// system facilities — this is the deployable library.
//
//   queues     : Michael & Scott two-lock queues in shared memory
//   awake flag : seq_cst test-and-set word in shared memory
//   semaphore  : futex-based (modern) or SysV (the paper's primitive),
//                selected per platform instance
//   yield      : sched_yield(2)
//   busy_wait  : sched_yield on a uniprocessor configuration, calibrated
//                25 us delay slice on a multiprocessor one (paper §2.1/§5)
//
// One NativePlatform instance lives in each process (its counters are
// process-local); endpoints live in shared memory and are shared by all.
#pragma once

#include <sched.h>
#include <time.h>

#include <atomic>
#include <cstdint>

#include "common/clock.hpp"
#include "protocols/platform.hpp"
#include "queue/ms_two_lock_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "shm/futex_semaphore.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/sysv_semaphore.hpp"
#include "shm/tas_flag.hpp"

namespace ulipc {

/// Which counting-semaphore implementation endpoints block on.
enum class SemKind : std::uint8_t {
  kFutex,  // futex-based; V on an uncontended semaphore costs no syscall
  kSysv,   // SysV semop; the paper's primitive ("similar weight to the four
           // SysV message queue calls")
};

/// The paper's Q[x], resident in shared memory: a queue, its awake flag,
/// and the semaphore its consumer sleeps on (both kinds are embedded; the
/// platform's SemKind selects which one is used).
///
/// Endpoints whose traffic is topologically single-producer/single-consumer
/// (every reply endpoint, and the duplex per-client request endpoints) also
/// carry a lock-free SpscRing as the fast path; `ring` stays unset on the
/// MPSC server receive endpoint. Routing (see enqueue/dequeue below) keeps
/// FIFO order across the two structures: the producer uses the ring only
/// while the overflow two-lock queue is empty, and the consumer always
/// drains the ring before the overflow queue, so a message in the overflow
/// queue is always newer than everything in the ring.
struct NativeEndpoint {
  OffsetPtr<TwoLockQueue> queue;
  OffsetPtr<SpscRing> ring;  // null on MPSC endpoints
  AwakeFlag awake;
  FutexSemaphore fsem;
  SysvSemHandle vsem;
  std::uint32_t id = 0;
};

class NativePlatform {
 public:
  using Endpoint = NativeEndpoint;

  struct Config {
    SemKind sem = SemKind::kFutex;
    bool multiprocessor = false;       // busy_wait: delay loop vs yield
    std::int64_t poll_slice_ns = 25'000;
    std::int64_t full_sleep_ns = 1'000'000'000;  // paper: sleep(1)
  };

  NativePlatform() = default;
  explicit NativePlatform(const Config& cfg) : cfg_(cfg) {}

  // ---- queue ----
  //
  // FIFO across ring + overflow queue: only the single producer decides
  // where a message lands, and it spills to the overflow queue exactly when
  // the ring is full or the overflow queue is non-empty. Overflow observed
  // empty (acquire read of its size) means every older message has already
  // been copied out by the consumer, so a fresh ring enqueue cannot
  // overtake anything.

  bool enqueue(Endpoint& ep, const Message& msg) noexcept {
    if (SpscRing* r = ep.ring.get();
        r && ep.queue->empty() && r->enqueue(msg)) {
      return true;
    }
    return ep.queue->enqueue(msg);
  }
  bool dequeue(Endpoint& ep, Message* out) noexcept {
    if (SpscRing* r = ep.ring.get(); r && r->dequeue(out)) return true;
    return ep.queue->dequeue(out);
  }
  bool queue_empty(Endpoint& ep) noexcept {
    SpscRing* r = ep.ring.get();
    return (!r || r->empty()) && ep.queue->empty();
  }

  std::uint32_t enqueue_batch(Endpoint& ep, const Message* msgs,
                              std::uint32_t n) noexcept {
    std::uint32_t done = 0;
    if (SpscRing* r = ep.ring.get(); r && ep.queue->empty()) {
      done = r->enqueue_batch(msgs, n);
      if (done == n) return done;
    }
    return done + ep.queue->enqueue_batch(msgs + done, n - done);
  }
  std::uint32_t dequeue_batch(Endpoint& ep, Message* out,
                              std::uint32_t max) noexcept {
    std::uint32_t got = 0;
    if (SpscRing* r = ep.ring.get()) {
      got = r->dequeue_batch(out, max);
      if (got == max) return got;
    }
    return got + ep.queue->dequeue_batch(out + got, max - got);
  }

  // ---- awake flag ----

  bool tas_awake(Endpoint& ep) noexcept { return ep.awake.tas(); }
  void clear_awake(Endpoint& ep) noexcept { ep.awake.clear(); }
  void set_awake(Endpoint& ep) noexcept { ep.awake.set(); }
  bool awake_is_set(Endpoint& ep) noexcept { return ep.awake.is_set(); }

  // ---- semaphore ----

  void sem_p(Endpoint& ep) {
    if (cfg_.sem == SemKind::kFutex) {
      ep.fsem.wait();
    } else {
      SysvSemaphoreSet::wait(ep.vsem);
    }
  }
  void sem_v(Endpoint& ep) {
    if (cfg_.sem == SemKind::kFutex) {
      ep.fsem.post();
    } else {
      SysvSemaphoreSet::post(ep.vsem);
    }
  }

  /// Timed P against an absolute time_ns() (CLOCK_MONOTONIC) deadline.
  /// Returns false iff the deadline passed without acquiring a unit.
  bool sem_p_until(Endpoint& ep, std::int64_t deadline_ns) {
    if (deadline_ns == kNoDeadline) {
      sem_p(ep);
      return true;
    }
    const std::int64_t budget = deadline_ns - time_ns();
    if (cfg_.sem == SemKind::kFutex) {
      return ep.fsem.timed_wait(budget);
    }
    return SysvSemaphoreSet::timed_wait(ep.vsem, budget);
  }

  // ---- scheduling ----

  void yield() noexcept { sched_yield(); }

  void busy_wait(Endpoint&) noexcept {
    if (cfg_.multiprocessor) {
      DelayLoop::spin_ns(cfg_.poll_slice_ns);
    } else {
      sched_yield();
    }
  }

  void poll_queue(Endpoint& ep) noexcept { busy_wait(ep); }

  void sleep_seconds(int secs) noexcept {
    // The paper's queue-full back-off is sleep(1); the configured duration
    // lets tests exercise the flow-control path without 1 s stalls.
    const std::int64_t total = cfg_.full_sleep_ns * secs;
    timespec ts{};
    ts.tv_sec = total / 1'000'000'000LL;
    ts.tv_nsec = total % 1'000'000'000LL;
    nanosleep(&ts, nullptr);
  }

  void fence() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void work_us(double us) noexcept {
    DelayLoop::spin_ns(static_cast<std::int64_t>(us * 1'000.0));
  }

  [[nodiscard]] std::int64_t time_ns() noexcept { return now_ns(); }

  ProtocolCounters& counters() noexcept { return counters_; }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_{};
  ProtocolCounters counters_{};
};

static_assert(Platform<NativePlatform>);

}  // namespace ulipc
