// NativePlatform: the Platform-concept implementation over real operating
// system facilities — this is the deployable library.
//
//   queues     : Michael & Scott two-lock queues in shared memory
//   awake flag : seq_cst test-and-set word in shared memory
//   semaphore  : futex-based (modern) or SysV (the paper's primitive),
//                selected per platform instance
//   yield      : sched_yield(2)
//   busy_wait  : sched_yield on a uniprocessor configuration, calibrated
//                25 us delay slice on a multiprocessor one (paper §2.1/§5)
//
// One NativePlatform instance lives in each process (its counters are
// process-local); endpoints live in shared memory and are shared by all.
#pragma once

#include <sched.h>
#include <time.h>

#include <atomic>
#include <cstdint>

#include "common/clock.hpp"
#include "protocols/platform.hpp"
#include "queue/ms_two_lock_queue.hpp"
#include "shm/futex_semaphore.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/sysv_semaphore.hpp"
#include "shm/tas_flag.hpp"

namespace ulipc {

/// Which counting-semaphore implementation endpoints block on.
enum class SemKind : std::uint8_t {
  kFutex,  // futex-based; V on an uncontended semaphore costs no syscall
  kSysv,   // SysV semop; the paper's primitive ("similar weight to the four
           // SysV message queue calls")
};

/// The paper's Q[x], resident in shared memory: a queue, its awake flag,
/// and the semaphore its consumer sleeps on (both kinds are embedded; the
/// platform's SemKind selects which one is used).
struct NativeEndpoint {
  OffsetPtr<TwoLockQueue> queue;
  AwakeFlag awake;
  FutexSemaphore fsem;
  SysvSemHandle vsem;
  std::uint32_t id = 0;
};

class NativePlatform {
 public:
  using Endpoint = NativeEndpoint;

  struct Config {
    SemKind sem = SemKind::kFutex;
    bool multiprocessor = false;       // busy_wait: delay loop vs yield
    std::int64_t poll_slice_ns = 25'000;
    std::int64_t full_sleep_ns = 1'000'000'000;  // paper: sleep(1)
  };

  NativePlatform() = default;
  explicit NativePlatform(const Config& cfg) : cfg_(cfg) {}

  // ---- queue ----

  bool enqueue(Endpoint& ep, const Message& msg) noexcept {
    return ep.queue->enqueue(msg);
  }
  bool dequeue(Endpoint& ep, Message* out) noexcept {
    return ep.queue->dequeue(out);
  }
  bool queue_empty(Endpoint& ep) noexcept { return ep.queue->empty(); }

  // ---- awake flag ----

  bool tas_awake(Endpoint& ep) noexcept { return ep.awake.tas(); }
  void clear_awake(Endpoint& ep) noexcept { ep.awake.clear(); }
  void set_awake(Endpoint& ep) noexcept { ep.awake.set(); }
  bool awake_is_set(Endpoint& ep) noexcept { return ep.awake.is_set(); }

  // ---- semaphore ----

  void sem_p(Endpoint& ep) {
    if (cfg_.sem == SemKind::kFutex) {
      ep.fsem.wait();
    } else {
      SysvSemaphoreSet::wait(ep.vsem);
    }
  }
  void sem_v(Endpoint& ep) {
    if (cfg_.sem == SemKind::kFutex) {
      ep.fsem.post();
    } else {
      SysvSemaphoreSet::post(ep.vsem);
    }
  }

  /// Timed P against an absolute time_ns() (CLOCK_MONOTONIC) deadline.
  /// Returns false iff the deadline passed without acquiring a unit.
  bool sem_p_until(Endpoint& ep, std::int64_t deadline_ns) {
    if (deadline_ns == kNoDeadline) {
      sem_p(ep);
      return true;
    }
    const std::int64_t budget = deadline_ns - time_ns();
    if (cfg_.sem == SemKind::kFutex) {
      return ep.fsem.timed_wait(budget);
    }
    return SysvSemaphoreSet::timed_wait(ep.vsem, budget);
  }

  // ---- scheduling ----

  void yield() noexcept { sched_yield(); }

  void busy_wait(Endpoint&) noexcept {
    if (cfg_.multiprocessor) {
      DelayLoop::spin_ns(cfg_.poll_slice_ns);
    } else {
      sched_yield();
    }
  }

  void poll_queue(Endpoint& ep) noexcept { busy_wait(ep); }

  void sleep_seconds(int secs) noexcept {
    // The paper's queue-full back-off is sleep(1); the configured duration
    // lets tests exercise the flow-control path without 1 s stalls.
    const std::int64_t total = cfg_.full_sleep_ns * secs;
    timespec ts{};
    ts.tv_sec = total / 1'000'000'000LL;
    ts.tv_nsec = total % 1'000'000'000LL;
    nanosleep(&ts, nullptr);
  }

  void fence() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void work_us(double us) noexcept {
    DelayLoop::spin_ns(static_cast<std::int64_t>(us * 1'000.0));
  }

  [[nodiscard]] std::int64_t time_ns() noexcept { return now_ns(); }

  ProtocolCounters& counters() noexcept { return counters_; }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_{};
  ProtocolCounters counters_{};
};

static_assert(Platform<NativePlatform>);

}  // namespace ulipc
