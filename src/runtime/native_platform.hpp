// NativePlatform: the Platform-concept implementation over real operating
// system facilities — this is the deployable library.
//
//   queues     : Michael & Scott two-lock queues in shared memory
//   awake flag : seq_cst test-and-set word in shared memory
//   semaphore  : futex-based (modern) or SysV (the paper's primitive),
//                selected per platform instance
//   yield      : sched_yield(2)
//   busy_wait  : sched_yield on a uniprocessor configuration, calibrated
//                25 us delay slice on a multiprocessor one (paper §2.1/§5)
//
// One NativePlatform instance lives in each process (its counters are
// process-local); endpoints live in shared memory and are shared by all.
#pragma once

#include <sched.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "common/clock.hpp"
#include "common/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "protocols/platform.hpp"
#include "queue/ms_two_lock_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "shm/futex_semaphore.hpp"
#include "shm/offset_ptr.hpp"
#include "shm/sysv_semaphore.hpp"
#include "shm/tas_flag.hpp"

namespace ulipc {

/// Which counting-semaphore implementation endpoints block on.
enum class SemKind : std::uint8_t {
  kFutex,  // futex-based; V on an uncontended semaphore costs no syscall
  kSysv,   // SysV semop; the paper's primitive ("similar weight to the four
           // SysV message queue calls")
};

/// The paper's Q[x], resident in shared memory: a queue, its awake flag,
/// and the semaphore its consumer sleeps on (both kinds are embedded; the
/// platform's SemKind selects which one is used).
///
/// Endpoints whose traffic is topologically single-producer/single-consumer
/// (every reply endpoint, and the duplex per-client request endpoints) also
/// carry a lock-free SpscRing as the fast path; `ring` stays unset on the
/// MPSC server receive endpoint. Routing (see enqueue/dequeue below) keeps
/// FIFO order across the two structures: the producer uses the ring only
/// while the overflow two-lock queue is empty, and the consumer always
/// drains the ring before the overflow queue, so a message in the overflow
/// queue is always newer than everything in the ring.
struct NativeEndpoint {
  OffsetPtr<TwoLockQueue> queue;
  OffsetPtr<SpscRing> ring;  // null on MPSC endpoints
  AwakeFlag awake;
  FutexSemaphore fsem;
  SysvSemHandle vsem;
  std::uint32_t id = 0;
  // Telemetry stamp: TSC tick at the last wake-carrying enqueue, written by
  // the producer on the V() path and consumed by the post-sleep dequeuer to
  // measure the cross-process enqueue-to-dequeue handoff latency (invariant
  // TSC makes ticks comparable across processes; each reader converts with
  // its own cached calibration). Messages stay 24 bytes.
  std::atomic<std::int64_t> last_wake_tick{0};
};

class NativePlatform {
 public:
  using Endpoint = NativeEndpoint;

  struct Config {
    SemKind sem = SemKind::kFutex;
    bool multiprocessor = false;       // busy_wait: delay loop vs yield
    std::int64_t poll_slice_ns = 25'000;
    std::int64_t full_sleep_ns = 1'000'000'000;  // paper: sleep(1)
  };

  NativePlatform() = default;
  explicit NativePlatform(const Config& cfg) : cfg_(cfg) {}

  // Copies get an independent local metric slot carrying over the counter
  // values (the pre-registry behavior of copying a plain counters struct);
  // an external registry binding is deliberately NOT inherited — two
  // platforms writing one single-writer slot would corrupt it.
  NativePlatform(const NativePlatform& o)
      : cfg_(o.cfg_), tsc_ns_per_tick_(o.tsc_ns_per_tick_) {
    counters().restore(o.slot_->counters.snapshot());
  }
  NativePlatform& operator=(const NativePlatform& o) {
    if (this != &o) {
      cfg_ = o.cfg_;
      local_ = std::make_shared<obs::MetricSlot>();
      slot_ = local_.get();
      ring_ = nullptr;
      slot_id_ = 0;
      tsc_ns_per_tick_ = o.tsc_ns_per_tick_;
      counters().restore(o.slot_->counters.snapshot());
    }
    return *this;
  }
  NativePlatform(NativePlatform&&) = default;
  NativePlatform& operator=(NativePlatform&&) = default;

  // ---- queue ----
  //
  // FIFO across ring + overflow queue: only the single producer decides
  // where a message lands, and it spills to the overflow queue exactly when
  // the ring is full or the overflow queue is non-empty. Overflow observed
  // empty (acquire read of its size) means every older message has already
  // been copied out by the consumer, so a fresh ring enqueue cannot
  // overtake anything.

  bool enqueue(Endpoint& ep, const Message& msg) noexcept {
    if (SpscRing* r = ep.ring.get();
        r && ep.queue->empty() && r->enqueue(msg)) {
      return true;
    }
    return ep.queue->enqueue(msg);
  }
  bool dequeue(Endpoint& ep, Message* out) noexcept {
    if (SpscRing* r = ep.ring.get(); r && r->dequeue(out)) return true;
    return ep.queue->dequeue(out);
  }
  bool queue_empty(Endpoint& ep) noexcept {
    SpscRing* r = ep.ring.get();
    return (!r || r->empty()) && ep.queue->empty();
  }

  std::uint32_t enqueue_batch(Endpoint& ep, const Message* msgs,
                              std::uint32_t n) noexcept {
    std::uint32_t done = 0;
    if (SpscRing* r = ep.ring.get(); r && ep.queue->empty()) {
      done = r->enqueue_batch(msgs, n);
      if (done == n) return done;
    }
    return done + ep.queue->enqueue_batch(msgs + done, n - done);
  }
  std::uint32_t dequeue_batch(Endpoint& ep, Message* out,
                              std::uint32_t max) noexcept {
    std::uint32_t got = 0;
    if (SpscRing* r = ep.ring.get()) {
      got = r->dequeue_batch(out, max);
      if (got == max) return got;
    }
    return got + ep.queue->dequeue_batch(out + got, max - got);
  }

  // ---- awake flag ----

  bool tas_awake(Endpoint& ep) noexcept { return ep.awake.tas(); }
  void clear_awake(Endpoint& ep) noexcept { ep.awake.clear(); }
  void set_awake(Endpoint& ep) noexcept { ep.awake.set(); }
  bool awake_is_set(Endpoint& ep) noexcept { return ep.awake.is_set(); }

  // ---- semaphore ----

  void sem_p(Endpoint& ep) {
    if (cfg_.sem == SemKind::kFutex) {
      ep.fsem.wait();
    } else {
      SysvSemaphoreSet::wait(ep.vsem);
    }
  }
  void sem_v(Endpoint& ep) {
    if (cfg_.sem == SemKind::kFutex) {
      ep.fsem.post();
    } else {
      SysvSemaphoreSet::post(ep.vsem);
    }
  }

  /// Timed P against an absolute time_ns() (CLOCK_MONOTONIC) deadline.
  /// Returns false iff the deadline passed without acquiring a unit.
  bool sem_p_until(Endpoint& ep, std::int64_t deadline_ns) {
    if (deadline_ns == kNoDeadline) {
      sem_p(ep);
      return true;
    }
    const std::int64_t budget = deadline_ns - time_ns();
    if (cfg_.sem == SemKind::kFutex) {
      return ep.fsem.timed_wait(budget);
    }
    return SysvSemaphoreSet::timed_wait(ep.vsem, budget);
  }

  // ---- scheduling ----

  void yield() noexcept { sched_yield(); }

  void busy_wait(Endpoint&) noexcept {
    if (cfg_.multiprocessor) {
      DelayLoop::spin_ns(cfg_.poll_slice_ns);
    } else {
      sched_yield();
    }
  }

  void poll_queue(Endpoint& ep) noexcept { busy_wait(ep); }

  void sleep_seconds(int secs) noexcept {
    // The paper's queue-full back-off is sleep(1); the configured duration
    // lets tests exercise the flow-control path without 1 s stalls.
    sleep_ns_eintr(cfg_.full_sleep_ns * secs);
  }

  /// Flow-control back-off clamped to an absolute deadline: sleeps the
  /// configured full_sleep_ns quantum or the remaining budget, whichever is
  /// smaller, and returns immediately once the deadline has passed. Keeps
  /// a timed send from overshooting its deadline by (up to) a whole
  /// quantum — the sender re-checks the deadline right after this returns.
  void sleep_capped(std::int64_t deadline_ns) noexcept {
    std::int64_t total = cfg_.full_sleep_ns;
    if (deadline_ns != kNoDeadline) {
      const std::int64_t remaining = deadline_ns - time_ns();
      if (remaining <= 0) return;
      total = std::min(total, remaining);
    }
    sleep_ns_eintr(total);
  }

  void fence() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void work_us(double us) noexcept {
    DelayLoop::spin_ns(static_cast<std::int64_t>(us * 1'000.0));
  }

  [[nodiscard]] std::int64_t time_ns() noexcept { return now_ns(); }

  obs::LiveCounters& counters() noexcept { return slot_->counters; }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // ---- observability ----
  //
  // By default every platform writes a private heap-allocated MetricSlot
  // (the old process-local counters, now externally snapshotable). Binding
  // redirects all metrics — and, when compiled in, trace records — to a
  // slot/ring pair inside the channel's shm registry, making this
  // platform's activity visible to ulipc-stat. One platform instance per
  // slot: the registry cells are single-writer.

  void bind_obs(obs::MetricSlot* slot, obs::TraceRing* ring,
                std::uint16_t slot_id) noexcept {
    slot_ = slot != nullptr ? slot : local_.get();
    ring_ = ring;
    slot_id_ = slot_id;
    // Warm the process-wide TSC calibration here, outside any timed loop:
    // obs_rt_end() converts ticks to ns and must never pay the one-shot
    // ~2 ms measurement inside the first round trip it instruments.
    tsc_ns_per_tick_ = TscClock::cached().ns_per_tick;
  }

  [[nodiscard]] obs::MetricSlot& metrics() noexcept { return *slot_; }
  [[nodiscard]] obs::TraceRing* trace_ring() noexcept { return ring_; }

  void obs_trace(obs::TraceEvent ev, std::uint32_t a = 0,
                 std::uint64_t b = 0) noexcept {
    if constexpr (obs::kTraceCompiledIn) {
      if (ring_ != nullptr) ring_->emit(ev, slot_id_, a, b);
    } else {
      (void)ev;
      (void)a;
      (void)b;
    }
  }

  // Hook methods called from the protocol templates (see obs/hooks.hpp).
  // The timing hooks are DECIMATED: even with rdtsc (~15 ns/read here, vs
  // ~26 ns for a vDSO clock_gettime), timestamping every round trip and
  // every sleep costs several percent of a ~110 ns/msg batched round trip.
  // Sampling 1-in-2^k with the histogram weight scaled by 2^k keeps the
  // recorded totals and the percentile shape (the workload is stationary
  // over any 16-event stretch) while cutting the clock reads to noise.
  // Counter updates are never sampled — they are exact.
  static constexpr std::uint32_t kRtSampleShift = 4;     // time 1 in 16
  static constexpr std::uint32_t kSleepSampleShift = 4;  // time 1 in 16
  static constexpr std::uint32_t kWakeSampleShift = 2;   // stamp 1 in 4
  static constexpr std::uint32_t kBatchSampleShift = 2;  // hist 1 in 4

  void obs_enqueue(Endpoint& ep) noexcept {
    obs_trace(obs::TraceEvent::kEnqueue, ep.id);
  }
  void obs_dequeue(Endpoint& ep) noexcept {
    obs_trace(obs::TraceEvent::kDequeue, ep.id);
  }
  void obs_wakeup_sent(Endpoint& ep) noexcept {
    if ((wake_decim_++ & ((1u << kWakeSampleShift) - 1)) == 0) {
      ep.last_wake_tick.store(static_cast<std::int64_t>(TscClock::now()),
                              std::memory_order_relaxed);
    }
    obs_trace(obs::TraceEvent::kWakeupSent, ep.id);
  }
  /// Returns the sleep-entry tick, or -1 when this sleep is not sampled.
  std::int64_t obs_sleep_begin(Endpoint& ep) noexcept {
    obs_trace(obs::TraceEvent::kSleepBegin, ep.id);
    if ((sleep_decim_++ & ((1u << kSleepSampleShift) - 1)) != 0) return -1;
    return static_cast<std::int64_t>(TscClock::now());
  }
  void obs_sleep_end(Endpoint& ep, std::int64_t t0, bool timed_out) noexcept {
    // The wake stamp is consumed (and cleared) on EVERY sleep exit, sampled
    // or not: a stamp left behind by an unsampled exit would otherwise be
    // read many wake-ups later as an absurdly long handoff latency.
    const std::int64_t stamp =
        ep.last_wake_tick.load(std::memory_order_relaxed);
    if (stamp != 0) ep.last_wake_tick.store(0, std::memory_order_relaxed);
    if (t0 >= 0) {
      const auto now = static_cast<std::int64_t>(TscClock::now());
      slot_->hist(obs::HistKind::kSleepNs)
          .record(obs_ticks_to_ns(now - t0),
                  std::uint64_t{1} << kSleepSampleShift);
      if (!timed_out && stamp != 0 && now > stamp) {
        slot_->hist(obs::HistKind::kWakeLatencyNs)
            .record(obs_ticks_to_ns(now - stamp));
      }
    }
    obs_trace(obs::TraceEvent::kSleepEnd, ep.id, timed_out ? 1 : 0);
  }
  void obs_batch_flush(Endpoint& ep, std::uint32_t n) noexcept {
    if ((batch_decim_++ & ((1u << kBatchSampleShift) - 1)) == 0) {
      slot_->hist(obs::HistKind::kBatchSize)
          .record(n, std::uint64_t{1} << kBatchSampleShift);
    }
    obs_trace(obs::TraceEvent::kBatchFlush, ep.id, n);
  }
  void obs_spin(Endpoint& ep, std::uint32_t iters, bool exhausted) noexcept {
    if ((spin_decim_++ & ((1u << kBatchSampleShift) - 1)) == 0) {
      slot_->hist(obs::HistKind::kSpinIters)
          .record(iters, std::uint64_t{1} << kBatchSampleShift);
    }
    if (exhausted) obs_trace(obs::TraceEvent::kSpinExhausted, ep.id, iters);
  }
  void obs_round_trip(std::int64_t ns, std::uint64_t weight) noexcept {
    slot_->hist(obs::HistKind::kRoundTripNs)
        .record(static_cast<std::uint64_t>(ns > 0 ? ns : 0), weight);
  }
  /// Payload-plane loan made; returns the loan tick (-1 when unsampled).
  /// The counter is exact, the hold-time histogram is decimated like the
  /// other timing hooks.
  [[nodiscard]] std::int64_t obs_loan_made() noexcept {
    ++counters().loans;
    if ((loan_decim_++ & ((1u << kBatchSampleShift) - 1)) != 0) return -1;
    return static_cast<std::int64_t>(TscClock::now());
  }
  void obs_loan_released(std::int64_t t0) noexcept {
    ++counters().loan_releases;
    if (t0 <= 0) return;
    const auto now = static_cast<std::int64_t>(TscClock::now());
    slot_->hist(obs::HistKind::kLoanHoldNs)
        .record(obs_ticks_to_ns(now - t0),
                std::uint64_t{1} << kBatchSampleShift);
  }

  // Round-trip bracket (obs::round_trip_begin/end): rdtsc, not
  // clock_gettime — this pair runs INSIDE the latency it measures, and two
  // vDSO clock reads per window are a measurable fraction of a ~100 ns/msg
  // batched round trip. Ticks convert to ns at record time via the cached
  // process calibration (lazily measured if nothing bound this platform).
  /// Returns the round-trip start tick, or -1 when this one is skipped by
  /// the sampling decimation.
  [[nodiscard]] std::int64_t obs_rt_begin() noexcept {
    if ((rt_decim_++ & ((1u << kRtSampleShift) - 1)) != 0) return -1;
    return static_cast<std::int64_t>(TscClock::now());
  }
  void obs_rt_end(std::int64_t t0, std::uint64_t count) noexcept {
    if (t0 < 0 || count == 0) return;
    const auto dt = static_cast<std::int64_t>(TscClock::now()) - t0;
    const auto dt_ns = static_cast<std::int64_t>(obs_ticks_to_ns(dt));
    obs_round_trip(dt_ns / static_cast<std::int64_t>(count),
                   count << kRtSampleShift);
  }

 private:
  /// Tick delta -> ns via the process calibration (fetched lazily so
  /// never-bound platforms only pay the one-shot measurement if they
  /// actually record; bind_obs() pre-warms it). Negative deltas clamp to 0.
  [[nodiscard]] std::uint64_t obs_ticks_to_ns(std::int64_t dticks) noexcept {
    if (dticks <= 0) return 0;
    if (tsc_ns_per_tick_ == 0.0) {
      tsc_ns_per_tick_ = TscClock::cached().ns_per_tick;
    }
    return static_cast<std::uint64_t>(static_cast<double>(dticks) *
                                      tsc_ns_per_tick_);
  }

  Config cfg_{};
  std::shared_ptr<obs::MetricSlot> local_ = std::make_shared<obs::MetricSlot>();
  obs::MetricSlot* slot_ = local_.get();
  obs::TraceRing* ring_ = nullptr;
  std::uint16_t slot_id_ = 0;
  double tsc_ns_per_tick_ = 0.0;  // 0 = calibration not yet fetched
  std::uint32_t rt_decim_ = 0;    // timing-hook decimation counters
  std::uint32_t sleep_decim_ = 0;
  std::uint32_t wake_decim_ = 0;
  std::uint32_t batch_decim_ = 0;
  std::uint32_t spin_decim_ = 0;
  std::uint32_t loan_decim_ = 0;
};

static_assert(Platform<NativePlatform>);

}  // namespace ulipc
