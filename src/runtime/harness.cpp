#include "runtime/harness.hpp"

#include <unistd.h>

#include <vector>

#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "runtime/sysv_transport.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {

namespace {

NativePlatform make_platform(const NativeRunConfig& cfg) {
  NativePlatform::Config pc;
  pc.sem = cfg.sem;
  pc.multiprocessor = cfg.multiprocessor_waits;
  pc.full_sleep_ns = cfg.full_sleep_ns;
  return NativePlatform(pc);
}

void maybe_pin(const NativeRunConfig& cfg, int logical_cpu) {
  if (cfg.pin_single_cpu) {
    pin_to_cpu(0);  // serialize everyone on one core: the uniprocessor rig
  } else {
    pin_to_cpu_wrapped(logical_cpu);
  }
}

int server_main(const NativeRunConfig& cfg, ShmChannel& ch) {
  maybe_pin(cfg, 0);
  ch.register_server();
  ShmReport& report = ch.header().server_report;
  report.ctx_start = ctx_switches_self();
  report.wall_start_ns = now_ns();

  if (cfg.protocol == ProtocolKind::kSysv) {
    SysvTransport transport(ch);
    report.server = transport.run_server(cfg.clients, cfg.server_work_us);
  } else {
    NativePlatform plat = make_platform(cfg);
    ch.bind_server_obs(plat);
    with_protocol<NativePlatform>(cfg.protocol, cfg.max_spin, [&](auto proto) {
      auto reply_ep = [&](std::uint32_t id) -> NativeEndpoint& {
        return ch.client_endpoint(id);
      };
      report.server = run_echo_server(plat, proto, ch.server_endpoint(),
                                      reply_ep, cfg.clients);
    });
    report.counters = plat.counters().snapshot();
  }

  report.ctx_end = ctx_switches_self();
  report.wall_end_ns = now_ns();
  ch.deregister_server();
  return 0;
}

int client_main(const NativeRunConfig& cfg, ShmChannel& ch, std::uint32_t id) {
  maybe_pin(cfg, static_cast<int>(id) + 1);
  ShmReport& report = ch.header().client_report[id];
  report.ctx_start = ctx_switches_self();
  report.wall_start_ns = now_ns();

  if (cfg.protocol == ProtocolKind::kSysv) {
    SysvTransport transport(ch);
    transport.client_connect(id);
    ch.barrier().arrive_and_wait();
    report.verified = transport.client_echo_loop(id, cfg.messages_per_client);
    transport.client_disconnect(id);
  } else {
    NativePlatform plat = make_platform(cfg);
    ch.bind_client_obs(plat, id);
    with_protocol<NativePlatform>(cfg.protocol, cfg.max_spin, [&](auto proto) {
      NativeEndpoint& mine = ch.client_endpoint(id);
      NativeEndpoint& srv = ch.server_endpoint();
      client_connect(plat, proto, srv, mine, id);
      ch.barrier().arrive_and_wait();
      report.verified = client_echo_loop(plat, proto, srv, mine, id,
                                         cfg.messages_per_client,
                                         cfg.server_work_us);
      client_disconnect(plat, proto, srv, mine, id);
    });
    report.counters = plat.counters().snapshot();
  }

  report.ctx_end = ctx_switches_self();
  report.wall_end_ns = now_ns();
  ch.deregister_client(id);
  return 0;
}

}  // namespace

NativeRunResult run_native_experiment(const NativeRunConfig& cfg) {
  ULIPC_INVARIANT(cfg.clients >= 1 && cfg.clients <= kMaxClients,
                  "client count out of range");

  // Calibrate the delay loop before forking so children inherit the value.
  DelayLoop::iters_per_ns();

  ShmChannel::Config cc;
  cc.max_clients = cfg.clients;
  cc.queue_capacity = cfg.queue_capacity;
  cc.create_sysv_queues = (cfg.protocol == ProtocolKind::kSysv);
  ShmRegion region =
      ShmRegion::create_anonymous(ShmChannel::required_bytes(cc));
  ShmChannel channel = ShmChannel::create(region, cc);

  const std::int64_t t0 = now_ns();

  std::vector<ChildProcess> children;
  children.push_back(
      ChildProcess::spawn([&] { return server_main(cfg, channel); }));
  for (std::uint32_t i = 0; i < cfg.clients; ++i) {
    children.push_back(
        ChildProcess::spawn([&, i] { return client_main(cfg, channel, i); }));
    // Seat the child pid from the parent: registration is visible before
    // the client issues its first operation, so a crash at any point of its
    // life is attributable.
    channel.register_client_pid(
        i, static_cast<std::uint32_t>(children.back().pid()));
  }

  const std::vector<int> codes = join_all(children);

  NativeRunResult result;
  result.wall_ms = static_cast<double>(now_ns() - t0) / 1e6;
  result.all_children_ok = true;
  for (const int code : codes) {
    if (code != 0) result.all_children_ok = false;
  }

  const ShmChannelHeader& hdr = channel.header();
  result.server = hdr.server_report.server;
  result.throughput_msgs_per_ms = result.server.throughput_msgs_per_ms();
  result.server_counters = hdr.server_report.counters;
  result.server_ctx = hdr.server_report.ctx_delta();
  for (std::uint32_t i = 0; i < cfg.clients; ++i) {
    const ShmReport& r = hdr.client_report[i];
    result.verified_replies += r.verified;
    result.client_counters_total += r.counters;
    const CtxSwitches d = r.ctx_delta();
    result.client_ctx_total.voluntary += d.voluntary;
    result.client_ctx_total.involuntary += d.involuntary;
  }
  return result;
}

}  // namespace ulipc
