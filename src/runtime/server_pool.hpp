// ServerPool: N workers, each owning one receive-queue shard of a pool
// channel — the multiprocessor scale-out the paper measures in Figure 11,
// built on the same endpoints, protocols, and recovery machinery as the
// single-queue server.
//
// Topology: a pool channel (ShmChannel::Config::shards > 0) lays out one
// MPSC receive endpoint per worker next to the classic per-client reply
// endpoints. Clients pick a shard at connect time through the shared
// PoolShardMap (least-loaded or rendezvous placement) and re-read their
// assignment before every request, so re-placement after a worker death is
// transparent to them. Replies go through the two-lock queues only (no SPSC
// rings): stealing and migration make the reply direction multi-producer.
//
// Each worker loop:
//   * receives on its own shard with the protocol's timed receive, then
//     drains up to kServerBatch more without blocking (one lock pass);
//   * serves requests and flushes replies in contiguous per-client runs
//     (one batched enqueue + at most one wake per run), bounded by the
//     liveness timeout so a dead client's full queue cannot wedge it;
//   * on an idle tick (timed receive expired): reaps crashed workers and
//     clients, re-drains retired shards for stragglers, and steals a
//     bounded batch from the most-loaded live shard.
//
// Worker-death recovery ordering (under the channel recovery lock):
//   retire the shard (placement stops offering it) -> re-place its clients
//   onto survivors -> drain + serve the orphaned backlog (those requests
//   came from live clients; discarding them would hang senders) -> sweep
//   leaked pool nodes -> vacate the worker seat. A request enqueued into
//   the retired queue by a client that raced the retire is picked up by the
//   straggler re-drain within one liveness timeout.
//
// Termination: disconnects are scattered across workers, so no single
// worker sees them all — every disconnect (served or reaped) bumps the
// header's pool_disconnected, and each worker exits once it reaches
// expected_clients.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/error.hpp"
#include "explore/hooks.hpp"
#include "protocols/channel.hpp"
#include "protocols/detail.hpp"
#include "protocols/shard_map.hpp"
#include "queue/queue_recovery.hpp"
#include "runtime/native_platform.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/robust_spinlock.hpp"

namespace ulipc {

struct ServerPoolOptions {
  std::uint32_t expected_clients = 0;  // run ends after this many leave
  std::int64_t liveness_timeout_ns = 50'000'000;  // idle-tick period
  PlacementPolicy policy = PlacementPolicy::kLeastLoaded;
  std::uint32_t steal_batch = 16;      // max messages per steal pass;
                                       // 0 disables the idle steal path
  std::uint32_t steal_min_depth = 2;   // only rob victims at least this deep
  // Test hooks: worker `park_worker` stops serving its own shard after
  // `park_after_messages` echoes (it keeps watching the termination count,
  // serving nothing), and raises `park_signal` — giving fault-injection
  // tests a deterministic point to SIGKILL it with a known backlog, and the
  // steal test a worker whose queue only thieves can empty.
  std::uint32_t park_worker = kNoShard;
  std::uint64_t park_after_messages = 0;
  std::atomic<std::uint32_t>* park_signal = nullptr;
  // External shutdown flag (chaos runs): when clients are SIGKILLed mid-
  // load, pool_disconnected can never reach expected_clients, so the
  // orchestrator raises this once it has finished its own recovery sweep.
  // nullptr (the default) keeps the disconnect-count termination only.
  std::atomic<std::uint32_t>* stop_flag = nullptr;
};

/// One reaped worker, as observed by the survivor that did the reaping.
struct WorkerCrashEvent {
  std::uint32_t shard = 0;
  std::uint32_t pid = 0;
  std::uint32_t clients_replaced = 0;
  std::uint32_t migrated_messages = 0;
  std::uint32_t nodes_reclaimed = 0;
  std::uint32_t payloads_reclaimed = 0;
};

struct PoolWorkerResult {
  std::uint32_t shard = 0;
  ServerResult server;  // per-worker served counts + throughput window
  std::uint64_t steal_passes = 0;
  std::uint64_t stolen_messages = 0;
  std::uint64_t migrated_messages = 0;
  std::uint32_t reaped_workers = 0;
  std::uint32_t reaped_clients = 0;
  std::vector<WorkerCrashEvent> crash_events;
};

/// Aggregate of a whole pool run (sum of the workers, with the throughput
/// window spanning the earliest first-request to the latest disconnect).
struct ServerPoolResult {
  std::uint64_t echo_messages = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t steal_passes = 0;
  std::uint64_t stolen_messages = 0;
  std::uint64_t migrated_messages = 0;
  std::uint32_t crashed_workers = 0;
  std::uint32_t crashed_clients = 0;
  std::int64_t first_request_ns = 0;
  std::int64_t last_disconnect_ns = 0;
  std::vector<PoolWorkerResult> workers;

  [[nodiscard]] double throughput_msgs_per_ms() const noexcept;
};

/// Sums per-worker results into the pool aggregate.
ServerPoolResult aggregate_pool_results(std::vector<PoolWorkerResult> workers);

/// Runs one pool worker on shard `shard` until expected_clients have left.
/// Callable from a thread of a pool process or from a dedicated forked
/// process (the SIGKILL tests need real per-worker pids). `proto` shapes
/// the receive path (e.g. BSLS pre-spin); replies always use the batched
/// guarded wake-up. Clients must use a protocol whose send wakes a sleeping
/// consumer (any of the BSW family — not pure spinning).
template <typename Proto>
PoolWorkerResult run_pool_worker(ShmChannel& channel, Proto proto,
                                 std::uint32_t shard,
                                 const ServerPoolOptions& opts,
                                 const NativePlatform::Config& pcfg = {}) {
  ULIPC_INVARIANT(opts.expected_clients > 0, "pool run needs a client count");
  ULIPC_INVARIANT(shard < channel.num_shards(), "bad shard index");
  NativePlatform p(pcfg);
  channel.bind_pool_worker_obs(p, shard);
  if (channel.worker_pid(shard) !=
      static_cast<std::uint32_t>(robust_self_pid())) {
    channel.register_worker(shard);
  }

  ShmChannelHeader& hdr = channel.header();
  PoolShardMap& map = channel.shard_map();
  NativeEndpoint& my_ep = channel.shard_endpoint(shard);
  PoolWorkerResult result;
  result.shard = shard;

  Message in[kServerBatch];
  Message out[kServerBatch];
  bool parked = false;

  // Serves `got` requests from `reqs`, flushing replies grouped by
  // contiguous same-client runs — the batched server-loop shape, with each
  // flush bounded by the liveness timeout (a dead client's full reply queue
  // must not wedge a live worker; its dropped nodes are swept at reap).
  const auto serve_batch = [&](const Message* reqs, std::uint32_t got) {
    std::uint32_t i = 0;
    std::uint32_t newly_disconnected = 0;
    while (i < got) {
      const std::uint32_t cid = reqs[i].channel;
      std::uint32_t n = 0;
      while (i < got && reqs[i].channel == cid) {
        // Departure bookkeeping for the crash reaper (see
        // ShmChannelHeader::client_departed): record it BEFORE the reply
        // goes out, so a client that dies the instant it reads the
        // disconnect ack can never be double-counted as a crash departure.
        // exchange, not store: a resilient client that timed out waiting
        // for its disconnect ack re-sends kDisconnect, and the duplicate
        // must not bump pool_disconnected a second time (that would shut
        // the pool down before the remaining clients finish).
        bool duplicate_disconnect = false;
        if (reqs[i].opcode == Op::kDisconnect) {
          duplicate_disconnect =
              hdr.client_departed[cid].exchange(1, std::memory_order_acq_rel)
              != 0;
        } else if (reqs[i].opcode == Op::kConnect) {
          hdr.client_departed[cid].store(0, std::memory_order_release);
        }
        out[n++] = serve_one_request(p, reqs[i++], result.server,
                                     newly_disconnected);
        if (duplicate_disconnect && newly_disconnected > 0) {
          --newly_disconnected;
        }
      }
      const Status st = detail::enqueue_batch_and_wake_until(
          p, channel.client_endpoint(cid), out, n,
          p.time_ns() + opts.liveness_timeout_ns);
      if (st == Status::kOk) p.counters().replies += n;
    }
    if (newly_disconnected > 0) {
      hdr.pool_disconnected.fetch_add(newly_disconnected,
                                      std::memory_order_acq_rel);
    }
  };

  // Non-blocking drain-and-serve of an endpoint until empty. Used for the
  // orphan backlog at reap time and the retired-shard straggler sweep.
  const auto drain_and_serve = [&](NativeEndpoint& ep) {
    std::uint32_t total = 0;
    for (;;) {
      const std::uint32_t k = p.dequeue_batch(ep, in, kServerBatch);
      if (k == 0) break;
      p.counters().receives += k;
      serve_batch(in, k);
      total += k;
    }
    return total;
  };

  const auto reap_worker = [&](std::uint32_t s) {
    RobustGuard g(hdr.recovery_lock);
    // Re-check under the lock: another survivor may have reaped it, or the
    // seat may have been re-seated by a replacement worker.
    const std::uint32_t pid = channel.worker_pid(s);
    if (pid == 0 || process_alive(pid)) return;

    WorkerCrashEvent ev;
    ev.shard = s;
    ev.pid = pid;
    // Ordering (see file comment): retire -> re-place -> drain+serve ->
    // sweep -> vacate.
    map.retire(s);
    explore::point(explore::Point::kPoolRetired);
    NativeEndpoint& dead_ep = channel.shard_endpoint(s);
    // Nobody sleeps on a retired shard's semaphore again; a raised awake
    // flag spares racing producers the pointless V().
    p.set_awake(dead_ep);
    ev.clients_replaced = map.replace_clients_of(s, opts.policy);
    explore::point(explore::Point::kPoolReplaced);
    ev.migrated_messages = drain_and_serve(dead_ep);
    explore::point(explore::Point::kPoolDrained);
    map.shards[s].migrated_msgs.fetch_add(ev.migrated_messages,
                                          std::memory_order_relaxed);
    p.counters().migrated_msgs += ev.migrated_messages;
    result.migrated_messages += ev.migrated_messages;
    const RecoveryStats swept = sweep_leaked_nodes(
        channel.node_pool(), channel.all_queues(), channel.payload_plane());
    ev.nodes_reclaimed = swept.nodes_reclaimed;
    ev.payloads_reclaimed = swept.payloads_reclaimed;
    explore::point(explore::Point::kPoolSwept);
    channel.deregister_worker(s);
    explore::point(explore::Point::kPoolVacated);
    channel.publish_recovery(s, ev.migrated_messages, ev.nodes_reclaimed,
                             ev.payloads_reclaimed);
    ++result.reaped_workers;
    result.crash_events.push_back(ev);
  };

  const auto idle_tick = [&] {
    // 1. Crashed workers: retire, re-place, migrate, sweep.
    for (std::uint32_t s = 0; s < hdr.num_shards; ++s) {
      if (s != shard && channel.worker_crashed(s)) reap_worker(s);
    }
    // 2. Straggler re-drain: a client that read its (old) assignment just
    // before the retire may have enqueued into the dead queue after the
    // migration drain. Idempotent re-drains bound the stranding to one
    // liveness timeout. The cheap empty check keeps the common case
    // lock-free; the drain itself serializes under the recovery lock.
    for (std::uint32_t s = 0; s < hdr.num_shards; ++s) {
      if (map.state(s) != PoolShardMap::kRetired) continue;
      if (p.queue_empty(channel.shard_endpoint(s))) continue;
      RobustGuard g(hdr.recovery_lock);
      const std::uint32_t n = drain_and_serve(channel.shard_endpoint(s));
      map.shards[s].migrated_msgs.fetch_add(n, std::memory_order_relaxed);
      p.counters().migrated_msgs += n;
      result.migrated_messages += n;
    }
    // 3. Crashed clients: reclaim_client re-checks under the recovery lock,
    // so only one worker counts the corpse as a departure.
    for (std::uint32_t c = 0; c < hdr.max_clients; ++c) {
      if (!channel.client_crashed(c)) continue;
      const ShmChannel::ReclaimStats rs = channel.reclaim_client(c);
      if (rs.reaped) {
        map.unplace(c);
        ++result.reaped_clients;
        // Leave-then-crash: a client that already had its kDisconnect
        // served was counted by that worker; counting the corpse again
        // would overshoot pool_disconnected and shut the pool down early.
        if (hdr.client_departed[c].load(std::memory_order_acquire) == 0) {
          hdr.pool_disconnected.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    }
    // 4. Bounded steal from the most-loaded live shard: an idle worker
    // must not strand behind a skewed placement. dequeue_batch is
    // multi-consumer-safe (head lock), and replies from here are why pool
    // reply endpoints carry no SPSC ring.
    if (opts.steal_batch == 0) return;
    std::uint32_t victim = kNoShard;
    std::uint64_t victim_depth = 0;
    for (std::uint32_t s = 0; s < hdr.num_shards; ++s) {
      if (s == shard || map.state(s) != PoolShardMap::kActive) continue;
      const std::uint64_t depth = channel.shard_endpoint(s).queue->size();
      if (depth >= opts.steal_min_depth && depth > victim_depth) {
        victim = s;
        victim_depth = depth;
      }
    }
    if (victim == kNoShard) return;
    const std::uint32_t k =
        p.dequeue_batch(channel.shard_endpoint(victim), in,
                        std::min(opts.steal_batch, kServerBatch));
    if (k == 0) return;
    p.counters().receives += k;
    ++p.counters().steals;
    p.counters().stolen_msgs += k;
    map.shards[victim].steal_passes.fetch_add(1, std::memory_order_relaxed);
    map.shards[victim].stolen_msgs.fetch_add(k, std::memory_order_relaxed);
    ++result.steal_passes;
    result.stolen_messages += k;
    serve_batch(in, k);
  };

  const auto done = [&] {
    return hdr.pool_disconnected.load(std::memory_order_acquire) >=
               opts.expected_clients ||
           (opts.stop_flag != nullptr &&
            opts.stop_flag->load(std::memory_order_acquire) != 0);
  };

  // Maintenance (reap/re-drain/steal) must run even when this worker never
  // goes idle: under saturated load the timed receive never expires, and a
  // crashed peer would otherwise stay unreaped until traffic happened to
  // pause — unbounded, which the chaos scenarios' orphan-drain SLO forbids.
  // The forced tick bounds the gap between maintenance passes to one
  // liveness window regardless of load.
  std::int64_t next_tick = p.time_ns() + opts.liveness_timeout_ns;
  while (!done()) {
    if (parked) {  // test hook: serve nothing, just watch for termination
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    const std::int64_t now = p.time_ns();
    if (now >= next_tick) {
      idle_tick();
      next_tick = p.time_ns() + opts.liveness_timeout_ns;
    }
    const std::int64_t deadline = now + opts.liveness_timeout_ns;
    const Status st = proto.receive_until(p, my_ep, &in[0], deadline);
    if (st != Status::kOk) {
      idle_tick();
      next_tick = p.time_ns() + opts.liveness_timeout_ns;
      continue;
    }
    // The protocol's timed receive delivered the burst head (and counted
    // the receive); drain the rest of the burst without blocking.
    const std::uint32_t got = 1 + p.dequeue_batch(my_ep, in + 1,
                                                  kServerBatch - 1);
    if (got > 1) {
      ++p.counters().batch_dequeues;
      p.counters().receives += got - 1;
    }
    serve_batch(in, got);
    if (opts.park_worker == shard &&
        result.server.echo_messages >= opts.park_after_messages) {
      parked = true;
      if (opts.park_signal != nullptr) {
        opts.park_signal->store(1, std::memory_order_release);
      }
    }
  }
  if constexpr (requires { proto.flush(p); }) {
    proto.flush(p);
  }
  channel.deregister_worker(shard);
  return result;
}

/// Thread-per-shard pool runner: one worker thread per shard of `channel`,
/// each with its own platform, protocol copy, and obs slot. `pin_workers`
/// spreads the threads over the host's CPUs (wrapped on small machines).
template <typename Proto>
ServerPoolResult run_server_pool(ShmChannel& channel, Proto proto,
                                 const ServerPoolOptions& opts,
                                 const NativePlatform::Config& pcfg = {},
                                 bool pin_workers = false) {
  const std::uint32_t n = channel.num_shards();
  ULIPC_INVARIANT(n >= 1, "not a pool channel");
  std::vector<PoolWorkerResult> results(n);
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    workers.emplace_back([&, s] {
      if (pin_workers) pin_to_cpu_wrapped(static_cast<int>(s));
      results[s] = run_pool_worker(channel, proto, s, opts, pcfg);
    });
  }
  for (auto& w : workers) w.join();
  return aggregate_pool_results(std::move(results));
}

// ---- client side ----

/// Connect handshake against the pool: place (or force) a shard through the
/// shared map, then the usual synchronous kConnect against that shard.
template <typename P, typename Proto>
void pool_client_connect(P& p, Proto& proto, ShmChannel& channel,
                         std::uint32_t id, PlacementPolicy policy,
                         std::uint32_t forced_shard = kNoShard) {
  PoolShardMap& map = channel.shard_map();
  const std::uint32_t s = forced_shard != kNoShard
                              ? map.assign(id, forced_shard)
                              : map.place(id, policy);
  ULIPC_INVARIANT(s != kNoShard, "no active shard to place client on");
  client_connect(p, proto, channel.shard_endpoint(s),
                 channel.client_endpoint(id), id);
}

/// The echo barrage against a pool: identical to client_echo_loop except
/// the request endpoint is re-resolved through the shard map every message,
/// so a re-placement (after a worker death) redirects the very next send.
template <typename P, typename Proto>
std::uint64_t pool_client_echo_loop(P& p, Proto& proto, ShmChannel& channel,
                                    std::uint32_t id, std::uint64_t n,
                                    double work_us = 0.0) {
  std::uint64_t verified = 0;
  PoolShardMap& map = channel.shard_map();
  NativeEndpoint& mine = channel.client_endpoint(id);
  const Op op = work_us > 0.0 ? Op::kCompute : Op::kEcho;
  for (std::uint64_t i = 0; i < n; ++i) {
    NativeEndpoint& srv = channel.shard_endpoint(map.assignment(id));
    const double arg = work_us > 0.0 ? work_us : static_cast<double>(i);
    Message ans;
    const std::int64_t rt0 = obs::round_trip_begin(p);
    proto.send(p, srv, mine, Message(op, id, arg), &ans);
    obs::round_trip_end(p, rt0);
    if (ans.opcode == op && ans.value == arg && ans.channel == id) {
      ++verified;
    }
  }
  return verified;
}

/// Windowed variant: `window` requests in flight per batch. Replies to one
/// window may arrive out of order when a thief answers part of it, so
/// verification is order-insensitive: count + value-sum of the answers must
/// match the window (echo values are distinct, so a permuted window still
/// verifies and a corrupted one does not).
template <typename P, typename Proto>
std::uint64_t pool_client_echo_loop_windowed(P& p, Proto& proto,
                                             ShmChannel& channel,
                                             std::uint32_t id, std::uint64_t n,
                                             std::uint32_t window,
                                             double work_us = 0.0) {
  constexpr std::uint32_t kMaxWindow = 128;
  window = std::clamp<std::uint32_t>(window, 1, kMaxWindow);
  Message reqs[kMaxWindow];
  Message answers[kMaxWindow];
  std::uint64_t verified = 0;
  PoolShardMap& map = channel.shard_map();
  NativeEndpoint& mine = channel.client_endpoint(id);
  const Op op = work_us > 0.0 ? Op::kCompute : Op::kEcho;
  for (std::uint64_t base = 0; base < n; base += window) {
    NativeEndpoint& srv = channel.shard_endpoint(map.assignment(id));
    const auto w = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(window, n - base));
    double sent_sum = 0.0;
    for (std::uint32_t i = 0; i < w; ++i) {
      const double arg =
          work_us > 0.0 ? work_us : static_cast<double>(base + i);
      reqs[i] = Message(op, id, arg);
      sent_sum += arg;
    }
    const std::int64_t rt0 = obs::round_trip_begin(p);
    proto.send_batch(p, srv, mine, reqs, w, answers);
    obs::round_trip_end(p, rt0, w);
    std::uint32_t good = 0;
    double got_sum = 0.0;
    for (std::uint32_t i = 0; i < w; ++i) {
      if (answers[i].opcode == op && answers[i].channel == id) {
        ++good;
        got_sum += answers[i].value;
      }
    }
    if (good == w && got_sum == sent_sum) verified += w;
  }
  return verified;
}

/// Payload-bearing windowed variant: every request of the window loans a
/// `next_bytes()`-sized payload from the channel's plane, writes it in
/// place, and sends the token in ext_offset; the echo batons each loan back
/// (possibly permuted across the window) and the loop releases it after the
/// batch verifies. An exhausted plane degrades that request to payload-less
/// rather than stalling the window. `*bytes_moved` accumulates the payload
/// bytes of replies that came back.
template <typename P, typename Proto, typename SizeFn>
std::uint64_t pool_client_echo_loop_windowed_loaned(
    P& p, Proto& proto, ShmChannel& channel, std::uint32_t id,
    std::uint64_t n, std::uint32_t window, SizeFn&& next_bytes,
    std::uint64_t* bytes_moved) {
  constexpr std::uint32_t kMaxWindow = 128;
  window = std::clamp<std::uint32_t>(window, 1, kMaxWindow);
  Message reqs[kMaxWindow];
  Message answers[kMaxWindow];
  std::uint64_t tokens[kMaxWindow];
  std::int64_t loan_t0[kMaxWindow];
  std::uint64_t verified = 0;
  PayloadPool* plane = channel.payload_plane();
  PoolShardMap& map = channel.shard_map();
  NativeEndpoint& mine = channel.client_endpoint(id);
  for (std::uint64_t base = 0; base < n; base += window) {
    NativeEndpoint& srv = channel.shard_endpoint(map.assignment(id));
    const auto w = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(window, n - base));
    double sent_sum = 0.0;
    for (std::uint32_t i = 0; i < w; ++i) {
      const auto arg = static_cast<double>(base + i);
      const std::uint32_t sz = next_bytes();
      std::uint64_t token = PayloadPool::kNoPayload;
      if (plane != nullptr && sz > 0) token = plane->loan(sz);
      if (token != PayloadPool::kNoPayload) {
        loan_t0[i] = obs::loan_made(p);
        std::memset(plane->data(token), static_cast<int>('a' + i % 26), sz);
        plane->publish(token, sz);
      } else {
        loan_t0[i] = 0;
      }
      tokens[i] = token;
      reqs[i] = Message(Op::kEcho, id, arg, token);
      sent_sum += arg;
    }
    const std::int64_t rt0 = obs::round_trip_begin(p);
    proto.send_batch(p, srv, mine, reqs, w, answers);
    obs::round_trip_end(p, rt0, w);
    std::uint32_t good = 0;
    double got_sum = 0.0;
    for (std::uint32_t i = 0; i < w; ++i) {
      if (answers[i].opcode == Op::kEcho && answers[i].channel == id) {
        ++good;
        got_sum += answers[i].value;
      }
      const std::uint64_t tok = answers[i].ext_offset;
      if (plane == nullptr || tok == PayloadPool::kNoPayload ||
          !plane->owns_token(tok)) {
        continue;
      }
      // The window may come back permuted: find the loan this reply
      // batons back to close its hold-time measurement.
      for (std::uint32_t j = 0; j < w; ++j) {
        if (tokens[j] == tok) {
          *bytes_moved += plane->read(tok).size();
          plane->release(tok);
          obs::loan_released(p, loan_t0[j]);
          tokens[j] = PayloadPool::kNoPayload;
          break;
        }
      }
    }
    if (good == w && got_sum == sent_sum) verified += w;
  }
  return verified;
}

/// Disconnect handshake: kDisconnect to the current shard, then release the
/// placement slot and the liveness seat (so the exiting process does not
/// read as crashed and get double-counted as a departure).
template <typename P, typename Proto>
void pool_client_disconnect(P& p, Proto& proto, ShmChannel& channel,
                            std::uint32_t id) {
  PoolShardMap& map = channel.shard_map();
  NativeEndpoint& srv = channel.shard_endpoint(map.assignment(id));
  client_disconnect(p, proto, srv, channel.client_endpoint(id), id);
  map.unplace(id);
  channel.deregister_client(id);
}

}  // namespace ulipc
