#include "runtime/waitset.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "explore/hooks.hpp"
#include "obs/metrics.hpp"
#include "protocols/detail.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/futex.hpp"
#include "shm/futex_waitv.hpp"

namespace ulipc {

namespace {

/// How long the bridge (and the >FUTEX_WAITV_MAX chunk rotation) blocks on
/// one word before rescanning the rest. Bounds the extra wake latency a
/// ring on a not-currently-watched word can suffer.
constexpr std::int64_t kScanSliceNs = 2'000'000;  // 2 ms

bool force_bridge_env() noexcept {
  const char* env = std::getenv("ULIPC_FORCE_EVENTFD_BRIDGE");
  if (env == nullptr || env[0] == '\0') return false;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "OFF") != 0 &&
         std::strcmp(env, "off") != 0;
}

}  // namespace

// ---- eventfd bridge ----
//
// A helper thread in the WAITING process. Each round the waiter publishes
// its blocking snapshot ({word, expected} pairs) and blocks in poll(2) on
// the eventfd; the bridge scans the snapshot and, between scans, parks in a
// short plain FUTEX_WAIT on one word at a time (rotating), so it wakes
// promptly when the watched word rings and within one slice otherwise. Any
// changed word => write the eventfd and wait for the next round.
//
// Lost-wake safety does not rest on the bridge's latency: the waiter
// rearmed and rechecked every queue before publishing, so a ring the
// bridge has not noticed yet is always re-observed by the scan (the word
// value stays != expected until the waiter re-arms). Stale eventfd counts
// from a previous round surface as one spurious ungate — counted, benign.
struct WaitSet::Bridge {
  int efd = -1;
  std::thread thr;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::uint64_t> round{0};
  std::atomic<bool> shutdown{false};
  std::vector<std::atomic<std::uint32_t>*> words;  // published snapshot
  std::vector<std::uint32_t> expected;

  void main() {
    std::uint64_t seen = 0;
    std::vector<std::atomic<std::uint32_t>*> w;
    std::vector<std::uint32_t> exp;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] {
          return shutdown.load(std::memory_order_relaxed) ||
                 round.load(std::memory_order_relaxed) != seen;
        });
        if (shutdown.load(std::memory_order_relaxed)) return;
        w = words;
        exp = expected;
        seen = round.load(std::memory_order_relaxed);
      }
      std::size_t rot = 0;
      while (!shutdown.load(std::memory_order_relaxed) &&
             round.load(std::memory_order_relaxed) == seen) {
        bool changed = false;
        for (std::size_t i = 0; i < w.size(); ++i) {
          if (w[i]->load(std::memory_order_seq_cst) != exp[i]) {
            changed = true;
            break;
          }
        }
        if (changed) {
          eventfd_write(efd, 1);
          break;  // round consumed; wait for the next publish
        }
        if (!w.empty()) {
          futex_wait_for(w[rot], exp[rot], kScanSliceNs);
          rot = (rot + 1) % w.size();
        }
      }
    }
  }
};

WaitSet::WaitSet(NativePlatform& plat, const WaitSetOptions& opts)
    : plat_(&plat), backend_(resolve_backend(opts.backend)) {
  if (backend_ == WaitSetBackend::kEventfdBridge) {
    bridge_ = std::make_unique<Bridge>();
    bridge_->efd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    ULIPC_INVARIANT(bridge_->efd >= 0, "eventfd creation failed");
    bridge_->thr = std::thread([b = bridge_.get()] { b->main(); });
  }
}

WaitSet::~WaitSet() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (Member& m : members_) detach_locked(m);
    members_.clear();
  }
  if (bridge_) {
    bridge_->shutdown.store(true, std::memory_order_relaxed);
    bridge_->cv.notify_one();
    if (bridge_->thr.joinable()) bridge_->thr.join();
    if (bridge_->efd >= 0) close(bridge_->efd);
  }
}

WaitSetBackend WaitSet::resolve_backend(WaitSetBackend requested) noexcept {
  if (requested == WaitSetBackend::kEventfdBridge) return requested;
  if (requested == WaitSetBackend::kAuto && force_bridge_env()) {
    return WaitSetBackend::kEventfdBridge;
  }
  return futex_waitv_available() ? WaitSetBackend::kFutexWaitv
                                 : WaitSetBackend::kEventfdBridge;
}

int WaitSet::poll_fd() const noexcept {
  return bridge_ ? bridge_->efd : -1;
}

std::size_t WaitSet::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return members_.size();
}

bool WaitSet::add(NativeEndpoint* ep, std::uint64_t tag) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Member& m : members_) {
      if (m.ep == ep) return false;
    }
    members_.push_back(Member{ep, tag, 0, false});
  }
  kick();  // a blocked waiter's snapshot predates this member
  return true;
}

bool WaitSet::remove(NativeEndpoint* ep) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::find_if(members_.begin(), members_.end(),
                           [ep](const Member& m) { return m.ep == ep; });
    if (it == members_.end()) return false;
    detach_locked(*it);
    members_.erase(it);
  }
  kick();
  return true;
}

/// Claims a ready member (called under mu_ with its queue known non-empty):
/// tas restores the awake flag FIRST — stopping later producers from
/// V()ing — and tas==1 proves a producer's tas ran after our arm cleared
/// the flag, so exactly one V is banked or in flight; absorb it so the
/// count cannot accumulate (at most one token per arm cycle: only the
/// first producer to see awake==0 pays the V).
void WaitSet::claim_locked(Member& m) {
  if (plat_->tas_awake(*m.ep)) {
    ++plat_->counters().sem_absorbs;
    explore::about_to_block(explore::Point::kWsAbsorb);
    plat_->sem_p(*m.ep);
    explore::resumed();
  }
  doorbell_disarm(m.ep->doorbell);
  m.armed = false;
}

/// Restores a member to the resting single-consumer state on detach. The
/// per-member `armed` bool is load-bearing: running the tas/absorb
/// discipline on an UNARMED member (awake already set, no token owed)
/// would absorb a token that does not exist and block forever.
void WaitSet::detach_locked(Member& m) {
  if (!m.armed) return;
  if (plat_->tas_awake(*m.ep)) {
    ++plat_->counters().sem_absorbs;
    explore::about_to_block(explore::Point::kWsAbsorb);
    plat_->sem_p(*m.ep);
    explore::resumed();
  }
  doorbell_disarm(m.ep->doorbell);
  m.armed = false;
}

Status WaitSet::wait(std::int64_t deadline_ns,
                     std::vector<std::uint64_t>* ready) {
  if (ready != nullptr) ready->clear();
  bool just_woke = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      // Arm pass (aggregate C.2). clear_awake only on the unarmed->armed
      // transition: re-clearing an armed member whose producer already set
      // the flag and banked its V would let a SECOND producer V again —
      // token accumulation. Already-armed members (previous wait timed out
      // or was kicked) just refresh their doorbell snapshot.
      for (Member& m : members_) {
        m.expected = doorbell_arm(m.ep->doorbell);
        if (!m.armed) {
          plat_->clear_awake(*m.ep);
          m.armed = true;
          ++plat_->counters().doorbell_arms;
          explore::point(explore::Point::kWsArm);
        }
      }
      plat_->fence();  // order the arms before the recheck (SB pattern)
      // Recheck pass (aggregate C.3): claim every ready member.
      std::uint32_t nready = 0;
      for (Member& m : members_) {
        if (!plat_->queue_empty(*m.ep)) {
          explore::point(explore::Point::kWsRecheckHit);
          claim_locked(m);
          if (ready != nullptr) ready->push_back(m.tag);
          ++nready;
        }
      }
      if (nready > 0) {
        plat_->metrics().hist(obs::HistKind::kMembersReady).record(nready);
        return Status::kOk;
      }
      if (just_woke) {
        ++plat_->counters().spurious_ungates;
        explore::point(explore::Point::kWsSpurious);
      }
      just_woke = false;
      explore::point(explore::Point::kWsRecheckEmpty);
      // Blocking snapshot: the control doorbell plus every member's.
      blk_words_.clear();
      blk_expected_.clear();
      blk_words_.push_back(&ctrl_);
      blk_expected_.push_back(ctrl_.load(std::memory_order_seq_cst));
      for (const Member& m : members_) {
        blk_words_.push_back(&m.ep->doorbell);
        blk_expected_.push_back(m.expected);
      }
    }
    // Publish before the deadline check so an external epoll user (bridge
    // backend) gets the eventfd armed even from a past-deadline poll call.
    if (backend_ == WaitSetBackend::kEventfdBridge) publish_bridge();
    if (deadline_ns != kNoDeadline && plat_->time_ns() >= deadline_ns) {
      ++plat_->counters().timeouts;
      explore::point(explore::Point::kWsTimedOut);
      return Status::kTimeout;  // members stay armed; next wait resumes
    }
    ++plat_->counters().blocks;
    explore::about_to_block(explore::Point::kWsBlock);
    const bool timed_out = block(deadline_ns);
    explore::resumed();
    if (timed_out) {
      // Loop once more: the arm pass refreshes snapshots and the recheck
      // runs before the deadline check returns kTimeout — the aggregate
      // analogue of the scalar expiry recheck (a producer that raced the
      // timer delivers its message now instead of leaving a stale token).
      explore::point(explore::Point::kWsTimedOut);
    } else {
      explore::point(explore::Point::kWsUngate);
      just_woke = true;
    }
  }
}

bool WaitSet::block(std::int64_t deadline_ns) {
  if (backend_ == WaitSetBackend::kEventfdBridge) {
    return block_bridge(deadline_ns);
  }
  return block_waitv(deadline_ns);
}

bool WaitSet::block_waitv(std::int64_t deadline_ns) {
  const auto n = static_cast<std::uint32_t>(blk_words_.size());
  FutexWaitvEntry wv[kFutexWaitvMax];
  if (n <= kFutexWaitvMax) {
    for (std::uint32_t i = 0; i < n; ++i) {
      futex_waitv_set(wv[i], blk_words_[i], blk_expected_[i]);
    }
    for (;;) {
      const std::int64_t abs = deadline_ns == kNoDeadline ? -1 : deadline_ns;
      const long rc = futex_waitv_block(wv, n, abs);
      if (rc >= 0) return false;           // woken by a ring
      if (errno == EAGAIN) return false;   // a word already changed == wake
      if (errno == EINTR) continue;        // signal: re-arm, deadline is abs
      if (errno == ETIMEDOUT) return true;
      return false;  // unexpected errno: surface as a spurious wake — the
                     // recheck either finds work or blocks again
    }
  }
  // More members than one futex_waitv can carry: rotate through chunks
  // with short slices, rescanning everything between slices so a ring in
  // an unwatched chunk is seen within kScanSliceNs.
  for (;;) {
    for (std::uint32_t base = 0; base < n; base += kFutexWaitvMax) {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (blk_words_[i]->load(std::memory_order_seq_cst) !=
            blk_expected_[i]) {
          return false;
        }
      }
      const std::uint32_t k = std::min(kFutexWaitvMax, n - base);
      for (std::uint32_t i = 0; i < k; ++i) {
        futex_waitv_set(wv[i], blk_words_[base + i], blk_expected_[base + i]);
      }
      std::int64_t slice = futex_clock_ns() + kScanSliceNs;
      if (deadline_ns != kNoDeadline) {
        slice = std::min(slice, deadline_ns);
      }
      const long rc = futex_waitv_block(wv, k, slice);
      if (rc >= 0 || errno == EAGAIN) return false;
      // EINTR and ETIMEDOUT both advance to the next chunk.
      if (deadline_ns != kNoDeadline && futex_clock_ns() >= deadline_ns) {
        return true;
      }
    }
  }
}

void WaitSet::publish_bridge() {
  Bridge& b = *bridge_;
  {
    std::lock_guard<std::mutex> lk(b.mu);
    b.words = blk_words_;
    b.expected = blk_expected_;
    b.round.fetch_add(1, std::memory_order_relaxed);
  }
  b.cv.notify_one();
}

bool WaitSet::block_bridge(std::int64_t deadline_ns) {
  pollfd pfd{};
  pfd.fd = bridge_->efd;
  pfd.events = POLLIN;
  for (;;) {
    int timeout_ms = -1;
    if (deadline_ns != kNoDeadline) {
      const std::int64_t remaining = deadline_ns - plat_->time_ns();
      if (remaining <= 0) return true;
      timeout_ms = static_cast<int>(std::min<std::int64_t>(
          (remaining + 999'999) / 1'000'000, INT_MAX));
    }
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      eventfd_t v = 0;
      (void)eventfd_read(bridge_->efd, &v);  // drain (nonblocking)
      return false;
    }
    if (rc == 0) return true;
    if (errno != EINTR) return false;  // poll error: spurious wake, recheck
  }
}

// ---- single-worker fan-in server ----

FaninResult run_waitset_fanin_server(NativePlatform& plat,
                                     const std::vector<ShmChannel*>& channels,
                                     std::uint32_t expected_disconnects,
                                     const FaninOptions& opts) {
  FaninResult r;
  WaitSetOptions wopts;
  wopts.backend = opts.backend;
  WaitSet ws(plat, wopts);
  for (std::size_t i = 0; i < channels.size(); ++i) {
    ws.add(&channels[i]->server_endpoint(), i);
  }
  std::vector<std::uint64_t> ready;
  Message in[kServerBatch];
  Message out[kServerBatch];
  std::uint32_t disconnected = 0;
  while (disconnected < expected_disconnects) {
    const Status st =
        ws.wait(plat.time_ns() + opts.liveness_timeout_ns, &ready);
    ++r.waits;
    if (st == Status::kTimeout) {
      if (opts.on_idle) {
        disconnected += opts.on_idle();
        continue;
      }
      r.gave_up = true;
      break;
    }
    r.ready_members += ready.size();
    for (const std::uint64_t tag : ready) {
      ShmChannel* ch = channels[tag];
      NativeEndpoint& srv = ch->server_endpoint();
      // Drain the claimed member completely: producers that enqueue during
      // the drain see awake set and bank no wake; stragglers that land
      // after the final empty check are caught by the next wait's recheck.
      for (;;) {
        const std::uint32_t got = plat.dequeue_batch(srv, in, kServerBatch);
        if (got == 0) break;
        plat.counters().receives += got;
        ++plat.counters().batch_dequeues;
        std::uint32_t i = 0;
        while (i < got) {
          const std::uint32_t cid = in[i].channel;
          std::uint32_t n = 0;
          while (i < got && in[i].channel == cid) {
            out[n++] = serve_one_request(plat, in[i++], r.server,
                                         disconnected);
          }
          // Bounded reply so a dead client's full reply queue cannot wedge
          // the whole fan-in worker (same rule as run_echo_server_timed).
          (void)detail::enqueue_batch_and_wake_until(
              plat, ch->client_endpoint(cid), out, n,
              plat.time_ns() + opts.liveness_timeout_ns);
          plat.counters().replies += n;
        }
      }
    }
  }
  r.disconnected = disconnected;
  return r;
}

}  // namespace ulipc
