// Thread-per-client server — the paper's alternative architecture:
//
//   "an alternative architecture might be to have a server thread per
//    client, but that would require two queues per client to implement the
//    full-duplex virtual connection." (paper §2.1)
//
// One kernel thread per connected client, each owning a private full-duplex
// pair (the channel's duplex request endpoint + the client's reply
// endpoint). Requests never contend on a shared queue, and each thread can
// block independently — at the cost of one thread (and two queues) per
// client.
//
// Clients use the ordinary protocol API, just aimed at their private
// request endpoint instead of the shared server endpoint:
//
//   client_connect(plat, proto, channel.client_request_endpoint(id),
//                  channel.client_endpoint(id), id);
//
// The bench `abl_duplex` compares this against the paper's shared-queue
// single-threaded server.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "protocols/channel.hpp"
#include "runtime/native_platform.hpp"
#include "runtime/shm_channel.hpp"

namespace ulipc {

/// One observed peer-death event: which client seat died, which
/// registration incarnation it was, and what its reclaim recovered.
struct ClientCrashEvent {
  std::uint32_t client_id = 0;
  std::uint32_t generation = 0;
  std::uint32_t drained_messages = 0;
  std::uint32_t nodes_reclaimed = 0;
};

/// Crash-handling knobs for the duplex server.
struct DuplexServerOptions {
  /// 0 = trust peers completely (the seed behavior: block forever on the
  /// request queue). Nonzero: a server thread that sees no traffic for
  /// this long probes its client's liveness (via the channel's PeerSlot
  /// registry) and, if the client died without disconnecting, reclaims its
  /// queues and leaked pool nodes and retires the connection.
  std::int64_t liveness_timeout_ns = 0;
};

/// Aggregate outcome of a duplex-server run.
struct DuplexServerResult {
  std::uint64_t echo_messages = 0;
  std::int64_t first_request_ns = 0;
  std::int64_t last_disconnect_ns = 0;
  ProtocolCounters counters;  // summed over all threads

  // Crash accounting (liveness_timeout_ns > 0 only).
  std::uint32_t crashed_clients = 0;
  std::vector<ClientCrashEvent> crash_events;

  [[nodiscard]] double throughput_msgs_per_ms() const noexcept {
    const std::int64_t window = last_disconnect_ns - first_request_ns;
    if (window <= 0) return 0.0;
    return static_cast<double>(echo_messages) /
           (static_cast<double>(window) / 1e6);
  }
};

/// Runs one server thread per client until each client disconnects — or,
/// with opts.liveness_timeout_ns set, until it disconnects or dies.
/// `platform_config` is instantiated per thread (counters are thread-local).
/// Proto must be copyable; each thread gets its own instance.
template <typename Proto>
DuplexServerResult run_duplex_server(ShmChannel& channel, Proto proto,
                                     std::uint32_t clients,
                                     const NativePlatform::Config& pc = {},
                                     const DuplexServerOptions& opts = {}) {
  struct PerThread {
    ServerResult result;
    ProtocolCounters counters;
    bool crashed = false;
    ClientCrashEvent event;
  };
  std::vector<PerThread> slots(clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::uint32_t i = 0; i < clients; ++i) {
      threads.emplace_back([&channel, &slots, proto, pc, opts, i]() mutable {
        NativePlatform plat(pc);
        channel.bind_duplex_obs(plat, i);
        NativeEndpoint& request = channel.client_request_endpoint(i);
        auto reply_ep = [&](std::uint32_t id) -> NativeEndpoint& {
          return channel.client_endpoint(id);
        };
        if (opts.liveness_timeout_ns > 0) {
          // On each quiet period, probe this thread's one client; a corpse
          // is reclaimed (queues drained, leaked nodes swept — serialized
          // across threads by the channel's recovery lock) and counted as
          // its disconnect.
          auto probe = [&]() -> std::uint32_t {
            if (!channel.client_crashed(i)) return 0;
            ClientCrashEvent& ev = slots[i].event;
            ev.client_id = i;
            ev.generation = channel.client_generation(i);
            const ShmChannel::ReclaimStats rs = channel.reclaim_client(i);
            ev.drained_messages = rs.drained_messages;
            ev.nodes_reclaimed = rs.nodes_reclaimed;
            slots[i].crashed = true;
            return 1;
          };
          slots[i].result = run_echo_server_timed(
              plat, proto, request, reply_ep, /*clients=*/1,
              opts.liveness_timeout_ns, probe);
        } else {
          // The generic server loop, scoped to exactly one client.
          slots[i].result =
              run_echo_server(plat, proto, request, reply_ep, /*clients=*/1);
        }
        slots[i].counters = plat.counters().snapshot();
      });
    }
    for (auto& t : threads) t.join();
  }

  DuplexServerResult total;
  for (const PerThread& s : slots) {
    total.echo_messages += s.result.echo_messages;
    total.counters += s.counters;
    if (s.result.first_request_ns != 0 &&
        (total.first_request_ns == 0 ||
         s.result.first_request_ns < total.first_request_ns)) {
      total.first_request_ns = s.result.first_request_ns;
    }
    total.last_disconnect_ns =
        std::max(total.last_disconnect_ns, s.result.last_disconnect_ns);
    if (s.crashed) {
      ++total.crashed_clients;
      total.crash_events.push_back(s.event);
    }
  }
  return total;
}

}  // namespace ulipc
