// Kernel-mediated baseline transport: the same echo service over SysV
// message queues (paper §2.2's comparison curve).
//
// Architecture mirrors the shared-memory channels: one request queue into
// the server, one reply queue per client; requests carry the reply-channel
// id. Blocking comes for free from msgrcv — exactly the 4-syscalls-per-
// round-trip regime the user-level protocols try to beat.
#pragma once

#include <cstdint>

#include "protocols/channel.hpp"
#include "runtime/shm_channel.hpp"
#include "shm/sysv_msg_queue.hpp"

namespace ulipc {

class SysvTransport {
 public:
  /// The channel must have been created with create_sysv_queues = true.
  explicit SysvTransport(ShmChannel& channel) : channel_(&channel) {}

  /// Server loop: runs until `expected_clients` clients have connected and
  /// disconnected; returns the measurement window and message count.
  ServerResult run_server(std::uint32_t expected_clients, double work_us = 0.0);

  // Client side.
  void client_connect(std::uint32_t id);
  std::uint64_t client_echo_loop(std::uint32_t id, std::uint64_t n);
  void client_disconnect(std::uint32_t id);

 private:
  ShmChannel* channel_;
};

}  // namespace ulipc
