// Shared-memory channel layout: everything a server and up to kMaxClients
// clients need, carved out of one region.
//
// Layout (all inside one ShmArena, discoverable from the header at the
// arena's first allocation):
//   header { magic, config, endpoint offsets, SysV ids, barrier, reports }
//   node pool (shared by all queues)
//   server endpoint + queue
//   per-client endpoint + queue
//
// The same region works for fork()-children (anonymous mapping) and for
// unrelated processes (named POSIX shm + attach()), because all internal
// references are offset-based.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "protocols/channel.hpp"
#include "protocols/platform.hpp"
#include "queue/msg_pool.hpp"
#include "queue/ms_two_lock_queue.hpp"
#include "runtime/native_platform.hpp"
#include "shm/process.hpp"
#include "shm/shm_allocator.hpp"
#include "shm/shm_barrier.hpp"
#include "shm/shm_region.hpp"
#include "shm/sysv_msg_queue.hpp"
#include "shm/sysv_semaphore.hpp"

namespace ulipc {

inline constexpr std::uint32_t kMaxClients = 16;

/// Per-process measurement report written into shared memory at the end of
/// a run (children cannot return rich values through exit codes).
struct ShmReport {
  ServerResult server;          // server process only
  std::uint64_t verified = 0;   // clients: correctly echoed replies
  ProtocolCounters counters;
  CtxSwitches ctx_start;
  CtxSwitches ctx_end;
  std::int64_t wall_start_ns = 0;
  std::int64_t wall_end_ns = 0;

  [[nodiscard]] CtxSwitches ctx_delta() const noexcept {
    return ctx_end - ctx_start;
  }
};

struct ShmChannelHeader {
  static constexpr std::uint64_t kMagic = 0x756c6970'63636831ULL;
  std::uint64_t magic = 0;
  std::uint32_t max_clients = 0;
  std::uint32_t queue_capacity = 0;
  ShmBarrier barrier;

  std::uint64_t srv_ep_offset = 0;
  std::uint64_t client_ep_offset[kMaxClients] = {};      // reply direction
  std::uint64_t client_req_ep_offset[kMaxClients] = {};  // duplex only

  // SysV object ids (semaphores for endpoints; message queues for the
  // kernel-mediated baseline transport). Valid process-wide on this host.
  int sysv_sem_id = -1;
  int sysv_request_qid = -1;
  int sysv_reply_qid[kMaxClients] = {};

  ShmReport server_report;
  ShmReport client_report[kMaxClients];
};

/// Creates/attaches the channel structures. The creator owns the SysV
/// objects (they are removed when the creator's ShmChannel is destroyed).
class ShmChannel {
 public:
  struct Config {
    std::uint32_t max_clients = 4;
    std::uint32_t queue_capacity = 64;
    bool create_sysv_queues = false;  // allocate the SysV baseline transport
    bool duplex = false;  // also build per-client *request* endpoints for
                          // the thread-per-client server architecture
                          // ("two queues per client to implement the
                          //  full-duplex virtual connection", paper 2.1)
  };

  /// Formats `region` and builds all channel structures inside it.
  static ShmChannel create(ShmRegion& region, const Config& cfg);

  /// Attaches to a channel previously built in `region` (e.g. from a
  /// process that mapped the same named shm object).
  static ShmChannel attach(const ShmRegion& region);

  ShmChannel(ShmChannel&&) = default;
  ShmChannel& operator=(ShmChannel&&) = default;
  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;
  ~ShmChannel();

  [[nodiscard]] ShmChannelHeader& header() noexcept { return *header_; }
  [[nodiscard]] NativeEndpoint& server_endpoint() noexcept {
    return *arena_.from_offset<NativeEndpoint>(header_->srv_ep_offset);
  }
  [[nodiscard]] NativeEndpoint& client_endpoint(std::uint32_t i) noexcept {
    return *arena_.from_offset<NativeEndpoint>(header_->client_ep_offset[i]);
  }

  /// Duplex channels only: the request queue into client i's server thread.
  /// Throws InvariantError on a channel built without duplex = true.
  [[nodiscard]] NativeEndpoint& client_request_endpoint(std::uint32_t i) {
    ULIPC_INVARIANT(header_->client_req_ep_offset[i] != 0,
                    "channel was not created with duplex = true");
    return *arena_.from_offset<NativeEndpoint>(
        header_->client_req_ep_offset[i]);
  }
  [[nodiscard]] ShmBarrier& barrier() noexcept { return header_->barrier; }

  [[nodiscard]] SysvMsgQueue request_queue() const {
    return SysvMsgQueue::attach(header_->sysv_request_qid);
  }
  [[nodiscard]] SysvMsgQueue reply_queue(std::uint32_t i) const {
    return SysvMsgQueue::attach(header_->sysv_reply_qid[i]);
  }

  /// Estimates the arena bytes needed for a given configuration.
  static std::size_t required_bytes(const Config& cfg);

 private:
  ShmChannel() = default;

  ShmArena arena_;
  ShmChannelHeader* header_ = nullptr;
  bool owns_sysv_ = false;
  SysvSemaphoreSet sem_set_;                 // owner only
  std::vector<SysvMsgQueue> owned_queues_;   // owner only
};

}  // namespace ulipc
