// Shared-memory channel layout: everything a server and up to kMaxClients
// clients need, carved out of one region.
//
// Layout (all inside one ShmArena, discoverable from the header at the
// arena's first allocation):
//   header { magic, config, endpoint offsets, SysV ids, barrier, reports }
//   node pool (shared by all queues)
//   server endpoint + queue
//   per-client endpoint + queue
//
// The same region works for fork()-children (anonymous mapping) and for
// unrelated processes (named POSIX shm + attach()), because all internal
// references are offset-based.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "protocols/channel.hpp"
#include "protocols/platform.hpp"
#include "protocols/shard_map.hpp"
#include "queue/msg_pool.hpp"
#include "queue/msg_queue.hpp"
#include "queue/payload_pool.hpp"
#include "queue/queue_engine.hpp"
#include "runtime/native_platform.hpp"
#include "shm/process.hpp"
#include "shm/robust_spinlock.hpp"
#include "shm/shm_allocator.hpp"
#include "shm/shm_barrier.hpp"
#include "shm/shm_region.hpp"
#include "shm/sysv_msg_queue.hpp"
#include "shm/sysv_semaphore.hpp"

namespace ulipc {

inline constexpr std::uint32_t kMaxClients = 16;

/// Upper bound on server-pool receive shards (one per worker). A channel's
/// actual shard count is Config::shards <= min(kMaxShards, max_clients).
inline constexpr std::uint32_t kMaxShards = 8;

/// The placement table embedded in ShmChannelHeader (see shard_map.hpp).
using PoolShardMap = ShardMap<kMaxShards, kMaxClients>;

/// Per-process measurement report written into shared memory at the end of
/// a run (children cannot return rich values through exit codes).
struct ShmReport {
  ServerResult server;          // server process only
  std::uint64_t verified = 0;   // clients: correctly echoed replies
  ProtocolCounters counters;
  CtxSwitches ctx_start;
  CtxSwitches ctx_end;
  std::int64_t wall_start_ns = 0;
  std::int64_t wall_end_ns = 0;

  [[nodiscard]] CtxSwitches ctx_delta() const noexcept {
    return ctx_end - ctx_start;
  }
};

/// Liveness registry entry for one channel participant. `pid` is 0 while
/// the seat is vacant (never connected, or cleanly deregistered); a nonzero
/// pid naming a dead process means the participant crashed and its
/// resources need reclaiming. `generation` bumps on every (re)registration
/// so a reconnecting client is distinguishable from the incarnation that
/// crashed in its seat.
struct PeerSlot {
  std::atomic<std::uint32_t> pid{0};
  std::atomic<std::uint32_t> generation{0};
};

struct ShmChannelHeader {
  static constexpr std::uint64_t kMagic = 0x756c6970'63636831ULL;
  std::uint64_t magic = 0;
  std::uint32_t max_clients = 0;
  std::uint32_t queue_capacity = 0;
  ShmBarrier barrier;

  // Who is (supposed to be) alive on this channel, and the lock that
  // serializes recovery sweeps (a RobustSpinlock so recovery itself
  // survives the recoverer dying).
  PeerSlot server_peer;
  PeerSlot client_peer[kMaxClients];
  RobustSpinlock recovery_lock;
  std::uint64_t node_pool_offset = 0;

  std::uint64_t srv_ep_offset = 0;
  std::uint64_t client_ep_offset[kMaxClients] = {};      // reply direction
  std::uint64_t client_req_ep_offset[kMaxClients] = {};  // duplex only

  // SysV object ids (semaphores for endpoints; message queues for the
  // kernel-mediated baseline transport). Valid process-wide on this host.
  int sysv_sem_id = -1;
  int sysv_request_qid = -1;
  int sysv_reply_qid[kMaxClients] = {};

  ShmReport server_report;
  ShmReport client_report[kMaxClients];

  // Offset of the obs::ObsHeader block (metrics registry + trace rings);
  // 0 on regions formatted by pre-observability binaries.
  std::uint64_t obs_offset = 0;

  // Offset of the zero-copy payload plane (queue/payload_pool.hpp); 0 when
  // the channel was created with payload_max_bytes == 0.
  std::uint64_t payload_plane_offset = 0;

  // ---- server pool: sharded receive ----
  //
  // num_shards == 0 is the classic single-receive-queue channel. A pool
  // channel carves one MPSC receive endpoint per worker out of the same
  // arena, publishes the worker liveness registry next to the client one,
  // and embeds the placement table every participant consults.
  std::uint32_t num_shards = 0;
  std::uint64_t shard_ep_offset[kMaxShards] = {};
  PeerSlot worker_peer[kMaxShards];
  PoolShardMap shard_map;
  // Pool-wide count of clients that left (clean disconnects served by any
  // worker, plus crashed clients reaped on an idle tick): every worker's
  // termination condition, since no single worker sees all disconnects.
  std::atomic<std::uint32_t> pool_disconnected{0};
  // One flag per client seat, set when a worker serves the seat's
  // kDisconnect and cleared again on kConnect. Lets the crash reaper tell
  // "disconnected cleanly, then died before deregistering its peer slot"
  // from "crashed while connected": the first kind was already counted in
  // pool_disconnected by the worker that served the disconnect, so the
  // reaper must reclaim the seat WITHOUT counting a second departure.
  std::atomic<std::uint8_t> client_departed[kMaxClients] = {};
};

/// Creates/attaches the channel structures. The creator owns the SysV
/// objects (they are removed when the creator's ShmChannel is destroyed).
class ShmChannel {
 public:
  struct Config {
    std::uint32_t max_clients = 4;
    std::uint32_t queue_capacity = 64;
    bool create_sysv_queues = false;  // allocate the SysV baseline transport
    bool duplex = false;  // also build per-client *request* endpoints for
                          // the thread-per-client server architecture
                          // ("two queues per client to implement the
                          //  full-duplex virtual connection", paper 2.1)
    std::uint32_t trace_ring_capacity = 1024;  // records per trace ring
                                               // (rounded up to a power of 2)
    std::uint32_t shards = 0;  // > 0 builds a server-pool channel with one
                               // receive queue per worker; mutually
                               // exclusive with duplex (the pool reuses the
                               // duplex obs-slot range), and <= max_clients
    // Zero-copy payload plane: size classes 64 B .. payload_max_bytes
    // (geometric), payload_slots_per_class slots each (0 = auto-size from
    // max_clients). payload_max_bytes == 0 builds no plane at all.
    std::uint32_t payload_max_bytes = 4096;
    std::uint32_t payload_slots_per_class = 0;
    // Which queue engine backs each endpoint topology (see
    // queue/queue_engine.hpp). Defaults honor the compile-time default plus
    // the ULIPC_QUEUE_ENGINE environment override, so CI/bench pinning
    // needs no code change; embedders can still set fields explicitly.
    QueueEnginePolicy engines = QueueEnginePolicy::from_env();
  };

  /// Formats `region` and builds all channel structures inside it.
  static ShmChannel create(ShmRegion& region, const Config& cfg);

  /// Attaches to a channel previously built in `region` (e.g. from a
  /// process that mapped the same named shm object).
  static ShmChannel attach(const ShmRegion& region);

  ShmChannel(ShmChannel&&) = default;
  ShmChannel& operator=(ShmChannel&&) = default;
  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;
  ~ShmChannel();

  [[nodiscard]] ShmChannelHeader& header() noexcept { return *header_; }
  [[nodiscard]] NativeEndpoint& server_endpoint() noexcept {
    return *arena_.from_offset<NativeEndpoint>(header_->srv_ep_offset);
  }
  [[nodiscard]] NativeEndpoint& client_endpoint(std::uint32_t i) noexcept {
    return *arena_.from_offset<NativeEndpoint>(header_->client_ep_offset[i]);
  }

  /// Duplex channels only: the request queue into client i's server thread.
  /// Throws InvariantError on a channel built without duplex = true.
  [[nodiscard]] NativeEndpoint& client_request_endpoint(std::uint32_t i) {
    ULIPC_INVARIANT(header_->client_req_ep_offset[i] != 0,
                    "channel was not created with duplex = true");
    return *arena_.from_offset<NativeEndpoint>(
        header_->client_req_ep_offset[i]);
  }
  [[nodiscard]] ShmBarrier& barrier() noexcept { return header_->barrier; }

  // ---- server pool ----

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return header_->num_shards;
  }
  /// Pool channels only: the receive endpoint worker `s` owns. All of a
  /// shard's clients (and any thief worker's dequeue_batch) share it, so it
  /// is MPSC and carries no SPSC ring.
  [[nodiscard]] NativeEndpoint& shard_endpoint(std::uint32_t s) {
    ULIPC_INVARIANT(s < header_->num_shards && header_->shard_ep_offset[s] != 0,
                    "not a pool channel / bad shard index");
    return *arena_.from_offset<NativeEndpoint>(header_->shard_ep_offset[s]);
  }
  [[nodiscard]] PoolShardMap& shard_map() noexcept {
    return header_->shard_map;
  }

  /// The node pool all of this channel's queues draw from.
  [[nodiscard]] NodePool& node_pool() noexcept {
    return *arena_.from_offset<NodePool>(header_->node_pool_offset);
  }

  /// The zero-copy payload plane, or nullptr on channels created with
  /// payload_max_bytes == 0 (every recovery call site passes this pointer
  /// straight through, so plane-less channels keep the old behavior).
  [[nodiscard]] PayloadPool* payload_plane() noexcept {
    if (header_->payload_plane_offset == 0) return nullptr;
    return arena_.from_offset<PayloadPool>(header_->payload_plane_offset);
  }
  [[nodiscard]] bool has_payload_plane() const noexcept {
    return header_->payload_plane_offset != 0;
  }

  // ---- observability ----

  /// False on regions formatted by binaries predating the registry.
  [[nodiscard]] bool has_obs() const noexcept {
    return header_->obs_offset != 0;
  }
  [[nodiscard]] obs::ObsHeader& obs() noexcept {
    return *arena_.from_offset<obs::ObsHeader>(header_->obs_offset);
  }
  [[nodiscard]] const obs::ObsHeader& obs() const noexcept {
    return *arena_.from_offset<const obs::ObsHeader>(header_->obs_offset);
  }

  // Metric-slot / trace-ring index convention (matches ObsHeader's doc):
  // 0 = server, 1..n = clients, n+1..2n = duplex server threads.
  [[nodiscard]] static std::uint32_t server_obs_slot() noexcept { return 0; }
  [[nodiscard]] std::uint32_t client_obs_slot(std::uint32_t i) const noexcept {
    return 1 + i;
  }
  [[nodiscard]] std::uint32_t duplex_obs_slot(std::uint32_t i) const noexcept {
    return 1 + header_->max_clients + i;
  }

  /// Claims an obs slot for the calling process/thread and points the
  /// platform's telemetry at it. No-ops (platform stays on its private
  /// local slot) when the region has no obs block.
  void bind_server_obs(NativePlatform& p) noexcept {
    bind_obs_slot(p, server_obs_slot(), obs::SlotRole::kServer);
  }
  void bind_client_obs(NativePlatform& p, std::uint32_t i) noexcept {
    bind_obs_slot(p, client_obs_slot(i), obs::SlotRole::kClient);
  }
  void bind_duplex_obs(NativePlatform& p, std::uint32_t i) noexcept {
    bind_obs_slot(p, duplex_obs_slot(i), obs::SlotRole::kDuplexThread);
  }
  /// Pool workers reuse the duplex slot range (pool and duplex channels are
  /// mutually exclusive, and shards <= max_clients keeps it in bounds).
  void bind_pool_worker_obs(NativePlatform& p, std::uint32_t s) noexcept {
    bind_obs_slot(p, duplex_obs_slot(s), obs::SlotRole::kPoolWorker);
  }
  /// Scenario-engine clients (ulipc-perf) take the client slot but tag it
  /// with the loadgen role, so ulipc-stat can tell synthetic traffic apart.
  void bind_loadgen_obs(NativePlatform& p, std::uint32_t i) noexcept {
    bind_obs_slot(p, client_obs_slot(i), obs::SlotRole::kLoadgen);
  }

  // ---- peer liveness registry ----

  /// Registers the calling process in the server seat.
  void register_server() noexcept { seat(header_->server_peer, robust_self_pid()); }
  /// Registers the calling process in client seat `i`.
  void register_client(std::uint32_t i) noexcept {
    seat(header_->client_peer[i], robust_self_pid());
  }
  /// Registers an arbitrary pid in client seat `i` — lets a parent register
  /// a child right at spawn, with no window where a crash is invisible.
  void register_client_pid(std::uint32_t i, std::uint32_t pid) noexcept {
    seat(header_->client_peer[i], pid);
  }
  /// Clean departure: vacates the seat so the peer no longer reads as
  /// crashed once its process exits.
  void deregister_server() noexcept {
    header_->server_peer.pid.store(0, std::memory_order_release);
  }
  void deregister_client(std::uint32_t i) noexcept {
    header_->client_peer[i].pid.store(0, std::memory_order_release);
  }

  [[nodiscard]] std::uint32_t client_pid(std::uint32_t i) const noexcept {
    return header_->client_peer[i].pid.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t client_generation(std::uint32_t i) const noexcept {
    return header_->client_peer[i].generation.load(std::memory_order_acquire);
  }

  /// True iff client seat `i` is occupied by a process that no longer
  /// exists — i.e. the client died without deregistering.
  [[nodiscard]] bool client_crashed(std::uint32_t i) const noexcept {
    const std::uint32_t pid =
        header_->client_peer[i].pid.load(std::memory_order_acquire);
    return pid != 0 && !process_alive(pid);
  }
  [[nodiscard]] bool server_crashed() const noexcept {
    const std::uint32_t pid =
        header_->server_peer.pid.load(std::memory_order_acquire);
    return pid != 0 && !process_alive(pid);
  }

  // ---- pool worker liveness registry (mirrors the client registry) ----

  void register_worker(std::uint32_t s) noexcept {
    seat(header_->worker_peer[s], robust_self_pid());
  }
  void register_worker_pid(std::uint32_t s, std::uint32_t pid) noexcept {
    seat(header_->worker_peer[s], pid);
  }
  void deregister_worker(std::uint32_t s) noexcept {
    header_->worker_peer[s].pid.store(0, std::memory_order_release);
  }
  [[nodiscard]] std::uint32_t worker_pid(std::uint32_t s) const noexcept {
    return header_->worker_peer[s].pid.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t worker_generation(std::uint32_t s) const noexcept {
    return header_->worker_peer[s].generation.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool worker_crashed(std::uint32_t s) const noexcept {
    const std::uint32_t pid =
        header_->worker_peer[s].pid.load(std::memory_order_acquire);
    return pid != 0 && !process_alive(pid);
  }

  /// What reclaim_client() recovered.
  struct ReclaimStats {
    std::uint32_t drained_messages = 0;  // messages discarded from the dead
                                         // client's queues
    std::uint32_t nodes_reclaimed = 0;   // leaked queue nodes swept back
    std::uint32_t payloads_reclaimed = 0;  // leaked payload loans swept back
    bool reaped = false;  // this call vacated the seat (false = a concurrent
                          // recoverer got there first)
  };

  /// Reclaims everything a crashed client left behind: drains its reply
  /// queue (and duplex request queue), sweeps the node pool for nodes the
  /// corpse leaked mid-operation, and vacates its seat. Serialized against
  /// concurrent reclaims by the header's recovery lock; safe to run while
  /// other clients keep trafficking the channel.
  ReclaimStats reclaim_client(std::uint32_t i) noexcept;

  /// Every MsgQueue drawing from this channel's node pool — the exact
  /// list a recovery sweep must mark (a queue left out would have its
  /// in-flight nodes misread as leaks). Includes shard queues on pool
  /// channels.
  [[nodiscard]] std::vector<MsgQueue*> all_queues();

  /// Publishes one recovery event (counters + the shared recovery ring).
  /// Caller must hold the header's recovery lock, which serializes every
  /// writer of these cells.
  void publish_recovery(std::uint32_t participant, std::uint32_t drained,
                        std::uint32_t nodes_reclaimed,
                        std::uint32_t payloads_reclaimed = 0) noexcept;

  [[nodiscard]] SysvMsgQueue request_queue() const {
    return SysvMsgQueue::attach(header_->sysv_request_qid);
  }
  [[nodiscard]] SysvMsgQueue reply_queue(std::uint32_t i) const {
    return SysvMsgQueue::attach(header_->sysv_reply_qid[i]);
  }

  /// Estimates the arena bytes needed for a given configuration.
  static std::size_t required_bytes(const Config& cfg);

 private:
  ShmChannel() = default;

  void bind_obs_slot(NativePlatform& p, std::uint32_t slot_index,
                     obs::SlotRole role) noexcept {
    if (!has_obs()) return;
    obs::ObsHeader& oh = obs();
    oh.slot(slot_index).bind(role, robust_self_pid());
    p.bind_obs(&oh.slot(slot_index),
               static_cast<obs::TraceRing*>(oh.ring_blob(slot_index)),
               static_cast<std::uint16_t>(slot_index), role);
  }

  static void seat(PeerSlot& slot, std::uint32_t pid) noexcept {
    slot.generation.fetch_add(1, std::memory_order_acq_rel);
    slot.pid.store(pid, std::memory_order_release);
  }

  ShmArena arena_;
  ShmChannelHeader* header_ = nullptr;
  bool owns_sysv_ = false;
  SysvSemaphoreSet sem_set_;                 // owner only
  std::vector<SysvMsgQueue> owned_queues_;   // owner only
};

}  // namespace ulipc
