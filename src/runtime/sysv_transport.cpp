#include "runtime/sysv_transport.hpp"

#include "common/clock.hpp"
#include "common/error.hpp"

namespace ulipc {

namespace {
constexpr long kRequestType = 1;
constexpr long kReplyType = 1;
}  // namespace

ServerResult SysvTransport::run_server(std::uint32_t expected_clients,
                                       double work_us) {
  SysvMsgQueue request = channel_->request_queue();
  ServerResult result;
  std::uint32_t disconnected = 0;
  while (disconnected < expected_clients) {
    Message msg;
    request.receive(0, &msg, sizeof(msg));
    switch (msg.opcode) {
      case Op::kConnect:
        ++result.control_messages;
        break;
      case Op::kDisconnect:
        ++result.control_messages;
        ++disconnected;
        result.last_disconnect_ns = now_ns();
        break;
      default:
        if (result.echo_messages == 0) result.first_request_ns = now_ns();
        ++result.echo_messages;
        if (work_us > 0.0) {
          DelayLoop::spin_ns(static_cast<std::int64_t>(work_us * 1'000.0));
        }
        break;
    }
    channel_->reply_queue(msg.channel).send(kReplyType, &msg, sizeof(msg));
  }
  return result;
}

void SysvTransport::client_connect(std::uint32_t id) {
  SysvMsgQueue request = channel_->request_queue();
  SysvMsgQueue reply = channel_->reply_queue(id);
  const Message msg(Op::kConnect, id, 0.0);
  request.send(kRequestType, &msg, sizeof(msg));
  Message ans;
  reply.receive(0, &ans, sizeof(ans));
  ULIPC_INVARIANT(ans.opcode == Op::kConnect, "sysv connect not acknowledged");
}

std::uint64_t SysvTransport::client_echo_loop(std::uint32_t id,
                                              std::uint64_t n) {
  SysvMsgQueue request = channel_->request_queue();
  SysvMsgQueue reply = channel_->reply_queue(id);
  std::uint64_t verified = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto arg = static_cast<double>(i);
    const Message msg(Op::kEcho, id, arg);
    request.send(kRequestType, &msg, sizeof(msg));
    Message ans;
    reply.receive(0, &ans, sizeof(ans));
    if (ans.opcode == Op::kEcho && ans.value == arg && ans.channel == id) {
      ++verified;
    }
  }
  return verified;
}

void SysvTransport::client_disconnect(std::uint32_t id) {
  SysvMsgQueue request = channel_->request_queue();
  SysvMsgQueue reply = channel_->reply_queue(id);
  const Message msg(Op::kDisconnect, id, 0.0);
  request.send(kRequestType, &msg, sizeof(msg));
  Message ans;
  reply.receive(0, &ans, sizeof(ans));
  ULIPC_INVARIANT(ans.opcode == Op::kDisconnect,
                  "sysv disconnect not acknowledged");
}

}  // namespace ulipc
