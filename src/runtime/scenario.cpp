// Scenario engine implementation: fork the pool, fork the clients, drive
// the named workload, optionally kill processes mid-load, audit the SLOs.
// See scenario.hpp for the contract.
#include "runtime/scenario.hpp"

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/affinity.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "explore/hooks.hpp"
#include "obs/hooks.hpp"
#include "protocols/bsw.hpp"
#include "runtime/server_pool.hpp"
#include "runtime/waitset.hpp"
#include "shm/process.hpp"
#include "shm/shm_region.hpp"

namespace ulipc {

namespace {

/// Per-client progress cells in a MAP_SHARED region: written incrementally
/// by the client processes so the counts survive a SIGKILL and so the
/// parent can watch aggregate progress (the parent-kill chaos trigger).
struct ClientCell {
  std::atomic<std::uint64_t> attempted{0};
  std::atomic<std::uint64_t> verified{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> sheds{0};
  std::atomic<std::uint64_t> stale{0};
  std::atomic<std::uint64_t> bytes{0};  // payload bytes verified end-to-end
};

struct ScenarioShared {
  std::atomic<std::uint32_t> stop{0};  // ServerPoolOptions::stop_flag
  ClientCell clients[kMaxClients];
};

double pareto_us(Xoshiro256& rng, const ScenarioSpec& spec) {
  const double u = rng.uniform01();
  const double w =
      spec.pareto_xm_us * std::pow(1.0 - u, -1.0 / spec.pareto_alpha);
  return w > spec.pareto_cap_us ? spec.pareto_cap_us : w;
}

/// Pareto-distributed payload size in [payload_min, payload_max] — the
/// heavy-tailed "mostly small keys, occasional megabyte blob" shape real
/// IPC payloads follow.
std::uint32_t pareto_bytes(Xoshiro256& rng, const ScenarioSpec& spec) {
  const double xm = spec.payload_min > 0 ? spec.payload_min : 1.0;
  const double u = rng.uniform01();
  const double x = xm * std::pow(1.0 - u, -1.0 / spec.payload_alpha);
  const auto cap = static_cast<double>(spec.payload_max);
  return static_cast<std::uint32_t>(x > cap ? cap : x);
}

/// Streaming clients bypass the resilience layer: the windowed batched
/// echo loop is the throughput shape (one lock pass + one coalesced wake
/// per window), and the streaming scenario runs without chaos.
int run_streaming_client(const ScenarioSpec& spec, std::uint32_t id,
                         ScenarioShared& sh, ShmChannel& channel,
                         NativePlatform& p) {
  Bsw<NativePlatform> proto;
  ClientCell& cell = sh.clients[id];
  Xoshiro256 rng(spec.seed * 0x2545f4914f6cdd1dULL + id);
  bool ok = true;
  for (std::uint32_t cy = 0; cy < spec.cycles; ++cy) {
    channel.register_client(id);
    pool_client_connect(p, proto, channel, id, PlacementPolicy::kLeastLoaded);
    cell.attempted.fetch_add(spec.messages, std::memory_order_relaxed);
    std::uint64_t v = 0;
    if (spec.payloads()) {
      std::uint64_t bytes = 0;
      v = pool_client_echo_loop_windowed_loaned(
          p, proto, channel, id, spec.messages, spec.window,
          [&] { return pareto_bytes(rng, spec); }, &bytes);
      cell.bytes.fetch_add(bytes, std::memory_order_relaxed);
    } else {
      v = pool_client_echo_loop_windowed(
          p, proto, channel, id, spec.messages, spec.window, spec.work_us);
    }
    cell.verified.fetch_add(v, std::memory_order_relaxed);
    ok &= v == spec.messages;
    pool_client_disconnect(p, proto, channel, id);
  }
  return ok ? 0 : 1;
}

/// One resilient client process: `cycles` rounds of connect -> workload
/// loop -> disconnect, every operation bounded by the resilience config.
/// Chaos victims ignore the cycle budget and loop until killed — by their
/// own armed crash point (explore builds) or by the parent (default
/// builds) — so the kill always lands on a live, mid-traffic process.
int run_client(const ScenarioSpec& spec, std::uint32_t id, bool victim,
               ScenarioShared& sh, ShmChannel& channel,
               const NativePlatform::Config& pcfg) {
  NativePlatform p(pcfg);
  channel.bind_loadgen_obs(p, id);
#ifdef ULIPC_EXPLORE_ENABLED
  if (victim) {
    explore::arm_crash(
        explore::Point::kProtEnqueued,
        static_cast<std::uint32_t>(spec.chaos.kill_after_replies));
  }
#endif
  if (spec.workload == Workload::kStreaming) {
    return run_streaming_client(spec, id, sh, channel, p);
  }

  ResilienceConfig rcfg = spec.resilience;
  rcfg.seed ^= spec.seed;
  ResilientPoolClient client(channel, id, rcfg);
  Xoshiro256 rng(spec.seed * 0x9e3779b97f4a7c15ULL + id);
  ClientCell& cell = sh.clients[id];
  PayloadPool* plane = spec.payloads() ? channel.payload_plane() : nullptr;
  bool ok = true;

  // One resilient data request, loaning a payload when the spec asks for
  // one. A shed or timed-out loaned request has its loan released by the
  // resilience layer, so every retry round loans afresh; an exhausted
  // plane falls back to a payload-less request rather than stalling.
  const auto issue = [&](Op op, double arg, std::uint32_t psz,
                         Message* ans) {
    std::uint64_t token = PayloadPool::kNoPayload;
    if (plane != nullptr && psz > 0) token = plane->loan(psz);
    if (token == PayloadPool::kNoPayload) {
      return client.request(p, op, arg, ans);
    }
    const std::int64_t lt0 = obs::loan_made(p);
    std::memset(plane->data(token), static_cast<int>('a' + psz % 26), psz);
    plane->publish(token, psz);
    const RequestOutcome o =
        client.request_loaned(p, op, arg, token, ans, lt0);
    if (o == RequestOutcome::kOk) {
      // The verified reply batons the loan back (the echo is in place —
      // same slot, same bytes): consume, then release exactly once here.
      if (plane->read(ans->ext_offset).size() == psz) {
        cell.bytes.fetch_add(psz, std::memory_order_relaxed);
      }
      plane->release(ans->ext_offset);
      obs::loan_released(p, lt0);
    }
    return o;
  };

  for (std::uint32_t cy = 0; ok && (victim || cy < spec.cycles); ++cy) {
    if (client.connect(p, PlacementPolicy::kLeastLoaded) !=
        RequestOutcome::kOk) {
      ok = false;
      break;
    }
    for (std::uint64_t i = 0; ok && (victim || i < spec.messages); ++i) {
      Op op = spec.work_us > 0.0 ? Op::kCompute : Op::kEcho;
      double arg =
          spec.work_us > 0.0 ? spec.work_us : static_cast<double>(i);
      if (spec.workload == Workload::kParetoCompute) {
        op = Op::kCompute;
        arg = pareto_us(rng, spec);
      }
      const std::uint32_t psz =
          spec.payloads() ? pareto_bytes(rng, spec) : 0;
      cell.attempted.fetch_add(1, std::memory_order_relaxed);
      Message ans;
      RequestOutcome o = issue(op, arg, psz, &ans);
      while (o == RequestOutcome::kOverloaded) {
        // Shed = delayed, never lost: back off, then re-issue the same
        // logical request (a fresh tag; the shed one was never sent).
        sleep_ns_eintr(rcfg.backoff_base_ns);
        o = issue(op, arg, psz, &ans);
      }
      if (o == RequestOutcome::kOk && ans.value == arg &&
          ans.channel == id) {
        cell.verified.fetch_add(1, std::memory_order_relaxed);
      } else {
        ok = false;
      }
      if (spec.workload == Workload::kBursty && spec.window > 0 &&
          (i + 1) % spec.window == 0) {
        sleep_ns_eintr(spec.burst_off_ns);
      }
    }
    if (ok) ok = client.disconnect(p) == RequestOutcome::kOk;
    cell.retries.store(client.stats().retries, std::memory_order_relaxed);
    cell.sheds.store(client.stats().sheds, std::memory_order_relaxed);
    cell.stale.store(client.stats().stale_dropped,
                     std::memory_order_relaxed);
  }
  return ok ? 0 : 1;
}

}  // namespace

std::string ScenarioResult::json() const {
  const auto b = [](bool v) { return v ? "true" : "false"; };
  char num[64];
  std::ostringstream os;
  os << "{\"scenario\":\"" << name << "\",\"workload\":\""
     << workload_name(workload) << "\",\"completed\":" << b(completed)
     << ",\"attempted\":" << attempted << ",\"verified\":" << verified
     << ",\"retries\":" << retries << ",\"sheds\":" << sheds
     << ",\"stale_dropped\":" << stale_dropped
     << ",\"workers_killed\":" << workers_killed
     << ",\"clients_killed\":" << clients_killed;
  std::snprintf(num, sizeof(num), "%.3f",
                static_cast<double>(orphan_drain_ns) / 1e6);
  os << ",\"orphan_drain_ms\":" << num;
  std::snprintf(num, sizeof(num), "%.3f",
                static_cast<double>(elapsed_ns) / 1e6);
  os << ",\"elapsed_ms\":" << num;
  std::snprintf(num, sizeof(num), "%.2f", msgs_per_ms);
  os << ",\"msgs_per_ms\":" << num;
  os << ",\"payload_bytes\":" << payload_bytes;
  std::snprintf(num, sizeof(num), "%.0f", bytes_per_s);
  os << ",\"bytes_per_s\":" << num;
  os << ",\"slo\":{\"no_lost_replies\":" << b(slo_no_lost_replies)
     << ",\"orphan_drain\":" << b(slo_orphan_drain)
     << ",\"nodes_conserved\":" << b(slo_nodes_conserved)
     << ",\"payloads_conserved\":" << b(slo_payloads_conserved)
     << ",\"pass\":" << b(slo_pass()) << "}}";
  return os.str();
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ULIPC_INVARIANT(spec.workers >= 1 && spec.workers <= kMaxShards,
                  "scenario worker count out of range");
  ULIPC_INVARIANT(spec.clients >= 1 && spec.clients <= kMaxClients,
                  "scenario client count out of range");
  ULIPC_INVARIANT(spec.chaos.kill_workers < spec.workers,
                  "chaos must leave at least one worker alive");
  ULIPC_INVARIANT(spec.chaos.kill_clients < spec.clients,
                  "chaos must leave at least one client alive");

  ScenarioResult res;
  res.name = spec.name;
  res.workload = spec.workload;
  res.workers_killed = spec.chaos.kill_workers;
  res.clients_killed = spec.chaos.kill_clients;

  ShmChannel::Config cfg;
  cfg.max_clients = spec.clients;
  cfg.queue_capacity = spec.queue_capacity;
  cfg.shards = spec.workers;
  if (spec.payloads()) cfg.payload_max_bytes = spec.payload_max;
  // ULIPC_SCENARIO_SHM names the channel's region so external tools
  // (ulipc-stat --watch/--spans) can attach to the live run; default stays
  // anonymous. With --quick each scenario reuses the name serially (the
  // region is unlinked between runs).
  const char* shm_name = std::getenv("ULIPC_SCENARIO_SHM");
  ShmRegion region =
      shm_name != nullptr
          ? ShmRegion::create_named(shm_name, ShmChannel::required_bytes(cfg))
          : ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg));
  ShmChannel channel = ShmChannel::create(region, cfg);

  ShmRegion shared_region =
      ShmRegion::create_anonymous(sizeof(ScenarioShared));
  auto* shared = new (shared_region.base()) ScenarioShared();

  const std::uint32_t free0 = channel.node_pool().free_count();
  const std::uint32_t pfree0 = channel.has_payload_plane()
                                   ? channel.payload_plane()->free_count()
                                   : 0;

  NativePlatform::Config pcfg;
  pcfg.multiprocessor = cpu_count() > 1;
  NativePlatform parent_p(pcfg);

  ServerPoolOptions wopts;
  wopts.expected_clients = spec.clients * spec.cycles;
  wopts.liveness_timeout_ns = 20'000'000;
  wopts.stop_flag = &shared->stop;

  // Workers first (victims are the low shards; the invariant above
  // guarantees survivors). Seats are taken by the parent at spawn so a
  // victim killed arbitrarily early still reads as crashed.
  std::vector<ChildProcess> workers;
  for (std::uint32_t s = 0; s < spec.workers; ++s) {
    const bool victim = s < spec.chaos.kill_workers;
    workers.push_back(ChildProcess::spawn([&, s, victim] {
#ifdef ULIPC_EXPLORE_ENABLED
      if (victim) {
        explore::arm_crash(
            explore::Point::kProtEnqueued,
            static_cast<std::uint32_t>(spec.chaos.kill_after_replies));
      }
#else
      (void)victim;
#endif
      (void)run_pool_worker(channel, Bsw<NativePlatform>{}, s, wopts, pcfg);
      return 0;
    }));
    channel.register_worker_pid(
        s, static_cast<std::uint32_t>(workers.back().pid()));
  }

  const std::int64_t t0 = parent_p.time_ns();
  std::vector<ChildProcess> clients;
  for (std::uint32_t c = 0; c < spec.clients; ++c) {
    const bool victim = c < spec.chaos.kill_clients;
    clients.push_back(ChildProcess::spawn(
        [&, c, victim] { return run_client(spec, c, victim, *shared,
                                           channel, pcfg); }));
    channel.register_client_pid(
        c, static_cast<std::uint32_t>(clients.back().pid()));
  }

  bool completed = true;
  if (spec.chaos.enabled()) {
#ifndef ULIPC_EXPLORE_ENABLED
    // Parent-kill trigger: wait until the survivors have verified enough
    // replies that the kill lands mid-load, then SIGKILL the victims (who
    // loop until killed, so they are guaranteed to still be running).
    const std::int64_t wait_cap = parent_p.time_ns() + 60'000'000'000LL;
    for (;;) {
      std::uint64_t sum = 0;
      for (std::uint32_t c = spec.chaos.kill_clients; c < spec.clients;
           ++c) {
        sum += shared->clients[c].verified.load(std::memory_order_acquire);
      }
      if (sum >= spec.chaos.kill_after_replies) break;
      if (parent_p.time_ns() > wait_cap) {
        completed = false;
        break;
      }
      sleep_ns_eintr(1'000'000);
    }
    for (std::uint32_t s = 0; s < spec.chaos.kill_workers; ++s) {
      workers[s].kill();
    }
    for (std::uint32_t c = 0; c < spec.chaos.kill_clients; ++c) {
      clients[c].kill();
    }
#endif
    // Victim workers must die by SIGKILL (self-armed or parent-sent).
    for (std::uint32_t s = 0; s < spec.chaos.kill_workers; ++s) {
      completed &= workers[s].join() == -SIGKILL;
    }
    // Orphan-drain SLO: from the moment the last victim worker is
    // certainly dead, survivors must retire every victim shard and leave
    // its queue empty within the bound.
    const std::int64_t t_dead = parent_p.time_ns();
    bool drained = spec.chaos.kill_workers == 0;
    while (!drained &&
           parent_p.time_ns() - t_dead < spec.chaos.orphan_drain_bound_ns) {
      drained = true;
      for (std::uint32_t s = 0; s < spec.chaos.kill_workers; ++s) {
        drained &=
            channel.shard_map().state(s) == PoolShardMap::kRetired &&
            channel.shard_endpoint(s).queue->size() == 0;
      }
      if (!drained) sleep_ns_eintr(1'000'000);
    }
    res.orphan_drain_ns = parent_p.time_ns() - t_dead;
    res.slo_orphan_drain = drained;
    for (std::uint32_t c = 0; c < spec.chaos.kill_clients; ++c) {
      completed &= clients[c].join() == -SIGKILL;
    }
  } else {
    res.slo_orphan_drain = true;  // trivially: nothing to drain
  }

  // Surviving clients run to completion (every operation they issue is
  // deadline-bounded, so this join cannot hang past the retry budget).
  for (std::uint32_t c = spec.chaos.kill_clients; c < spec.clients; ++c) {
    completed &= clients[c].join() == 0;
  }
  const std::int64_t t_end = parent_p.time_ns();
  shared->stop.store(1, std::memory_order_release);
  for (std::uint32_t s = spec.chaos.kill_workers; s < spec.workers; ++s) {
    completed &= workers[s].join() == 0;
  }

  // Post-mortem accounting (survivors only: a killed client's in-flight
  // requests were served, but its replies legitimately died with it).
  bool none_lost = true;
  for (std::uint32_t c = spec.chaos.kill_clients; c < spec.clients; ++c) {
    const ClientCell& cell = shared->clients[c];
    const std::uint64_t att = cell.attempted.load(std::memory_order_acquire);
    const std::uint64_t ver = cell.verified.load(std::memory_order_acquire);
    res.attempted += att;
    res.verified += ver;
    res.retries += cell.retries.load(std::memory_order_acquire);
    res.sheds += cell.sheds.load(std::memory_order_acquire);
    res.stale_dropped += cell.stale.load(std::memory_order_acquire);
    res.payload_bytes += cell.bytes.load(std::memory_order_acquire);
    none_lost &= att == ver && att > 0;
  }
  res.slo_no_lost_replies = none_lost;
  res.elapsed_ns = t_end - t0;
  if (res.elapsed_ns > 0) {
    res.msgs_per_ms = static_cast<double>(res.verified) /
                      (static_cast<double>(res.elapsed_ns) / 1e6);
    res.bytes_per_s = static_cast<double>(res.payload_bytes) /
                      (static_cast<double>(res.elapsed_ns) / 1e9);
  }

  // Node-conservation SLO: drain what the dead left behind (replies
  // addressed to corpses, requests stranded in retired queues), reclaim
  // any still-occupied corpse seats, run the sweep, and require the free
  // list to hold exactly its initial population again.
  Message leftover;
  for (MsgQueue* q : channel.all_queues()) {
    while (q->dequeue(&leftover)) {
    }
  }
  for (std::uint32_t c = 0; c < spec.clients; ++c) {
    if (channel.client_crashed(c)) {
      (void)channel.reclaim_client(c);
      channel.shard_map().unplace(c);
    }
  }
  for (std::uint32_t s = 0; s < spec.workers; ++s) {
    if (channel.worker_crashed(s)) {
      channel.shard_map().retire(s);
      channel.deregister_worker(s);
    }
  }
  {
    RobustGuard g(channel.header().recovery_lock);
    (void)sweep_leaked_nodes(channel.node_pool(), channel.all_queues(),
                             channel.payload_plane());
  }
  res.slo_nodes_conserved = channel.node_pool().free_count() == free0;
  // Payload-slot conservation: every loan — including those of SIGKILLed
  // clients, reclaimed by the sweep just above — is back on a free list.
  res.slo_payloads_conserved =
      !channel.has_payload_plane() ||
      channel.payload_plane()->free_count() == pfree0;
  res.completed = completed;
  // ULIPC_SCENARIO_LINGER_MS holds the (named) region mapped after the run
  // so a post-hoc `ulipc-stat --spans` can still assemble the rings.
  if (const char* linger = std::getenv("ULIPC_SCENARIO_LINGER_MS")) {
    char* end = nullptr;
    const long ms = std::strtol(linger, &end, 10);
    if (end != linger && ms > 0) {
      std::printf("[scenario] lingering %ld ms — inspect with: ulipc-stat %s\n",
                  ms, shm_name != nullptr ? shm_name : "<anonymous>");
      std::fflush(stdout);
      sleep_ns_eintr(ms * 1'000'000);
    }
  }
  return res;
}

ScenarioResult run_fanin_scenario(const FaninScenarioSpec& spec) {
  ULIPC_INVARIANT(spec.channels >= 1, "fanin scenario needs a channel");
  ULIPC_INVARIANT(spec.messages >= 1, "fanin scenario needs traffic");

  ScenarioResult res;
  res.name = spec.name;
  res.workload = Workload::kFanIn;

  // One single-client channel per client process; the waitset is what lets
  // one worker serve them all. Regions are anonymous and fork-inherited.
  ShmChannel::Config cfg;
  cfg.max_clients = 1;
  cfg.queue_capacity = spec.queue_capacity;
  cfg.payload_max_bytes = 0;  // echo-only: no payload plane per channel
  std::vector<ShmRegion> regions;
  std::vector<ShmChannel> chans;
  regions.reserve(spec.channels);
  chans.reserve(spec.channels);
  for (std::uint32_t c = 0; c < spec.channels; ++c) {
    regions.push_back(
        ShmRegion::create_anonymous(ShmChannel::required_bytes(cfg)));
    chans.push_back(ShmChannel::create(regions.back(), cfg));
  }
  std::vector<std::uint32_t> free0(spec.channels);
  for (std::uint32_t c = 0; c < spec.channels; ++c) {
    free0[c] = chans[c].node_pool().free_count();
  }

  // Per-client progress cells (attempted/verified), SIGKILL-durable like
  // the pool scenarios' ClientCell.
  ShmRegion cells_region = ShmRegion::create_anonymous(
      spec.channels * sizeof(std::atomic<std::uint64_t>) * 2);
  auto* cells =
      static_cast<std::atomic<std::uint64_t>*>(cells_region.base());
  for (std::uint32_t c = 0; c < 2 * spec.channels; ++c) {
    new (&cells[c]) std::atomic<std::uint64_t>(0);
  }

  NativePlatform::Config pcfg;
  pcfg.multiprocessor = cpu_count() > 1;
  NativePlatform parent_p(pcfg);

  ChildProcess server = ChildProcess::spawn([&] {
    NativePlatform p(pcfg);
    chans[0].bind_server_obs(p);  // waitset counters land in channel 0's obs
    std::vector<ShmChannel*> ptrs;
    ptrs.reserve(spec.channels);
    for (ShmChannel& ch : chans) ptrs.push_back(&ch);
    FaninOptions fo;
    fo.liveness_timeout_ns = spec.liveness_timeout_ns;
    const FaninResult fr =
        run_waitset_fanin_server(p, ptrs, spec.channels, fo);
    return fr.gave_up || fr.disconnected != spec.channels ? 2 : 0;
  });

  const std::int64_t t0 = parent_p.time_ns();
  std::vector<ChildProcess> clients;
  clients.reserve(spec.channels);
  for (std::uint32_t c = 0; c < spec.channels; ++c) {
    clients.push_back(ChildProcess::spawn([&, c] {
      NativePlatform p(pcfg);
      chans[c].bind_client_obs(p, 0);
      Bsw<NativePlatform> proto;
      NativeEndpoint& srv = chans[c].server_endpoint();
      NativeEndpoint& mine = chans[c].client_endpoint(0);
      client_connect(p, proto, srv, mine, 0);
      cells[2 * c].store(spec.messages, std::memory_order_release);
      const std::uint64_t v =
          client_echo_loop(p, proto, srv, mine, 0, spec.messages);
      cells[2 * c + 1].store(v, std::memory_order_release);
      client_disconnect(p, proto, srv, mine, 0);
      chans[c].deregister_client(0);
      return v == spec.messages ? 0 : 1;
    }));
    chans[c].register_client_pid(
        0, static_cast<std::uint32_t>(clients.back().pid()));
  }

  bool completed = true;
  for (ChildProcess& c : clients) completed &= c.join() == 0;
  const std::int64_t t_end = parent_p.time_ns();
  completed &= server.join() == 0;

  bool none_lost = true;
  for (std::uint32_t c = 0; c < spec.channels; ++c) {
    const std::uint64_t att = cells[2 * c].load(std::memory_order_acquire);
    const std::uint64_t ver =
        cells[2 * c + 1].load(std::memory_order_acquire);
    res.attempted += att;
    res.verified += ver;
    none_lost &= att == ver && att > 0;
  }
  res.slo_no_lost_replies = none_lost;
  res.slo_orphan_drain = true;       // trivially: no chaos, nothing orphaned
  res.slo_payloads_conserved = true; // trivially: no payload plane
  bool conserved = true;
  for (std::uint32_t c = 0; c < spec.channels; ++c) {
    conserved &= chans[c].node_pool().free_count() == free0[c];
  }
  res.slo_nodes_conserved = conserved;
  res.elapsed_ns = t_end - t0;
  if (res.elapsed_ns > 0) {
    res.msgs_per_ms = static_cast<double>(res.verified) /
                      (static_cast<double>(res.elapsed_ns) / 1e6);
  }
  res.completed = completed;
  return res;
}

std::vector<ScenarioSpec> builtin_scenarios(bool quick, std::uint64_t seed) {
  const std::uint64_t m = quick ? 1 : 4;
  std::vector<ScenarioSpec> v;

  ScenarioSpec rr;
  rr.name = "request-response";
  rr.workload = Workload::kRequestResponse;
  rr.workers = 2;
  rr.clients = 4;
  rr.messages = 300 * m;
  rr.seed = seed;
  v.push_back(rr);

  ScenarioSpec st;
  st.name = "streaming";
  st.workload = Workload::kStreaming;
  st.workers = 2;
  st.clients = 4;
  st.messages = 1024 * m;
  st.window = 32;
  st.seed = seed;
  v.push_back(st);

  ScenarioSpec fi;
  fi.name = "fan-in";
  fi.workload = Workload::kFanIn;
  fi.workers = 1;
  fi.clients = 8;
  fi.messages = 200 * m;
  fi.seed = seed;
  v.push_back(fi);

  ScenarioSpec bu;
  bu.name = "bursty";
  bu.workload = Workload::kBursty;
  bu.workers = 2;
  bu.clients = 4;
  bu.messages = 200 * m;
  bu.window = 16;
  bu.burst_off_ns = 1'000'000;
  bu.seed = seed;
  v.push_back(bu);

  ScenarioSpec pc;
  pc.name = "pareto-compute";
  pc.workload = Workload::kParetoCompute;
  pc.workers = 2;
  pc.clients = 4;
  pc.messages = 150 * m;
  pc.pareto_cap_us = quick ? 50.0 : 200.0;
  pc.seed = seed;
  v.push_back(pc);

  ScenarioSpec ch;
  ch.name = "churn";
  ch.workload = Workload::kChurn;
  ch.workers = 2;
  ch.clients = 6;
  ch.cycles = 8;
  ch.messages = 25 * m;
  ch.seed = seed;
  v.push_back(ch);

  ScenarioSpec cc;
  cc.name = "churn-chaos";
  cc.workload = Workload::kChurn;
  cc.workers = 3;
  cc.clients = 6;
  cc.cycles = 6;
  cc.messages = 30 * m;
  cc.seed = seed;
  cc.resilience.request_deadline_ns = 100'000'000;
  cc.chaos.kill_workers = 1;
  cc.chaos.kill_clients = 1;
  cc.chaos.kill_after_replies = 40;
  v.push_back(cc);

  return v;
}

}  // namespace ulipc
