// WaitSet: the readiness plane — one worker blocks on MANY endpoints.
//
// The paper's protocols block each consumer on exactly one semaphore per
// queue, so a process serving many channels needs a thread per channel.
// The WaitSet aggregates per-endpoint doorbell words (runtime/doorbell.hpp,
// one 32-bit word next to each endpoint's awake flag) into a single wait a
// lone worker parks on; a V() on ANY member rings that member's doorbell
// and ungates the set.
//
// The aggregate wait extends the C.1–C.5 race discipline one level up:
//
//   arm      for every member: arm the doorbell (record the word value as
//            the blocking snapshot) and — on the unarmed->armed transition
//            only — clear the member's awake flag (the aggregate C.2).
//            Re-arming an already-armed member refreshes the snapshot but
//            MUST NOT re-clear awake: a producer that already set the flag
//            and banked its V would otherwise let a second producer V
//            again, accumulating tokens.
//   fence    order the arms before the recheck (same SB pattern as C.2/C.3).
//   recheck  every member queue (the aggregate C.3): any non-empty member
//            is CLAIMED — tas(awake) restores the flag, and tas==1 means a
//            producer's tas ran after our clear, so exactly one V is banked
//            or in flight and is absorbed (the aggregate Interleaving-3
//            fix). At most one token exists per arm cycle because only the
//            first producer to see awake==0 pays the V.
//   block    only if no member was ready (the aggregate C.4): hand the
//            doorbell snapshots to the backend. A ring between arm and
//            block bumped a generation, the snapshot compare fails, and
//            the block returns immediately — the lost-wakeup window is
//            closed by the kernel-side compare, not by timing.
//
// Backends (probed at runtime, ULIPC_FORCE_EVENTFD_BRIDGE forces the
// second; see WaitSet::resolve_backend):
//   * kFutexWaitv — one futex_waitv(2) call over all member doorbells
//     (chunk-rotated above FUTEX_WAITV_MAX members);
//   * kEventfdBridge — a helper thread scans the published snapshot and
//     signals an eventfd, so the wait degrades to poll(2) on one fd AND
//     the fd (poll_fd()) can join an ordinary epoll loop. The bridge uses
//     only plain FUTEX_WAIT slices, so it is the full fallback path for
//     kernels without futex_waitv.
//
// Threading contract: wait() is single-waiter (one fan-in worker per
// WaitSet); add()/remove()/kick() may be called concurrently from other
// threads and ungate an in-flight wait via the control doorbell. Member
// endpoints' regions must stay mapped until the WaitSet is destroyed or a
// later wait()/remove() has completed — a blocked waiter (and the bridge
// thread) still reads the doorbell words of just-removed members.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "protocols/channel.hpp"
#include "protocols/platform.hpp"
#include "runtime/doorbell.hpp"
#include "runtime/native_platform.hpp"

namespace ulipc {

class ShmChannel;

enum class WaitSetBackend : std::uint8_t {
  kAuto = 0,       // futex_waitv if the kernel has it, else the bridge
  kFutexWaitv,     // one multi-word futex wait (Linux >= 5.16)
  kEventfdBridge,  // helper thread + eventfd; epoll-compatible
};

constexpr const char* waitset_backend_name(WaitSetBackend b) noexcept {
  switch (b) {
    case WaitSetBackend::kAuto: return "auto";
    case WaitSetBackend::kFutexWaitv: return "futex_waitv";
    case WaitSetBackend::kEventfdBridge: return "eventfd_bridge";
  }
  return "?";
}

struct WaitSetOptions {
  WaitSetBackend backend = WaitSetBackend::kAuto;
};

class WaitSet {
 public:
  explicit WaitSet(NativePlatform& plat, const WaitSetOptions& opts = {});
  ~WaitSet();
  WaitSet(const WaitSet&) = delete;
  WaitSet& operator=(const WaitSet&) = delete;

  /// Adds an endpoint with a caller-chosen tag (reported by wait()).
  /// Returns false on a duplicate endpoint. Ungates an in-flight wait so
  /// the new member is armed promptly.
  bool add(NativeEndpoint* ep, std::uint64_t tag);

  /// Detaches an endpoint, restoring it to the resting single-consumer
  /// state (awake set, no banked token): if the member was armed and a
  /// producer committed a V since, that token is absorbed here. Safe while
  /// a waiter is blocked — it is ungated and rebuilds its snapshot.
  bool remove(NativeEndpoint* ep);

  /// Blocks until at least one member has queued messages or `deadline_ns`
  /// (absolute, platform time_ns(); kNoDeadline blocks forever) passes.
  /// On kOk, `ready` (may be null) holds the tags of every CLAIMED member —
  /// each claimed member's awake flag is restored and its wake token (if
  /// any) absorbed, so the caller just drains the queues. A deadline in the
  /// past degenerates to a non-blocking poll (arm + recheck, no block).
  /// Members stay armed across a kTimeout return; the next wait() resumes
  /// the cycle.
  Status wait(std::int64_t deadline_ns, std::vector<std::uint64_t>* ready);

  /// Rings the control doorbell: an in-flight wait() returns from its
  /// block and rechecks (a shutdown flag checked by the caller's loop, a
  /// membership change it hasn't seen). Cheap, any thread.
  void kick() noexcept { doorbell_ring(ctrl_); }

  [[nodiscard]] WaitSetBackend backend() const noexcept { return backend_; }

  /// Bridge backend only: an eventfd that becomes readable when some
  /// member MAY be ready, for use in an external epoll/poll loop. After it
  /// fires, call wait() with a past deadline to claim-and-drain, then
  /// wait() (or another past-deadline poll) to re-arm and republish. -1 on
  /// the futex_waitv backend.
  [[nodiscard]] int poll_fd() const noexcept;

  [[nodiscard]] std::size_t size() const;

  /// Resolves kAuto (and an unavailable kFutexWaitv request) to a concrete
  /// backend: ULIPC_FORCE_EVENTFD_BRIDGE (any value but "0"/"OFF") forces
  /// the bridge, otherwise futex_waitv when the kernel has it.
  static WaitSetBackend resolve_backend(WaitSetBackend requested) noexcept;

 private:
  struct Member {
    NativeEndpoint* ep = nullptr;
    std::uint64_t tag = 0;
    std::uint32_t expected = 0;  // doorbell snapshot for the next block
    bool armed = false;          // we cleared awake and not yet claimed
  };
  struct Bridge;

  void claim_locked(Member& m);
  void detach_locked(Member& m);
  bool block(std::int64_t deadline_ns);  // true == timed out
  bool block_waitv(std::int64_t deadline_ns);
  bool block_bridge(std::int64_t deadline_ns);
  void publish_bridge();

  NativePlatform* plat_;
  WaitSetBackend backend_;
  mutable std::mutex mu_;
  std::vector<Member> members_;
  // Control doorbell: process-local word always included in the blocking
  // snapshot, rung by add/remove/kick to ungate a stale-snapshot waiter.
  // Its armed bit is set once and never cleared (ring-always is harmless
  // and saves re-arming every round).
  std::atomic<std::uint32_t> ctrl_{kDoorbellArmedBit};
  // Blocking snapshot, rebuilt under mu_ each round and read outside it —
  // single-waiter contract (only the wait() thread touches these).
  std::vector<std::atomic<std::uint32_t>*> blk_words_;
  std::vector<std::uint32_t> blk_expected_;
  std::unique_ptr<Bridge> bridge_;
};

// ---- single-worker fan-in server ----

struct FaninOptions {
  /// Per-wait liveness bound: a wait() that times out invokes on_idle (or
  /// gives up when none is set).
  std::int64_t liveness_timeout_ns = 2'000'000'000;
  WaitSetBackend backend = WaitSetBackend::kAuto;
  /// Idle probe: reclaim crashed clients etc.; returns how many clients to
  /// count as departed. Unset => the server gives up on an idle timeout.
  std::function<std::uint32_t()> on_idle;
};

struct FaninResult {
  ServerResult server;
  std::uint64_t waits = 0;          // wait() returns (incl. timeouts)
  std::uint64_t ready_members = 0;  // claimed members across all waits
  std::uint32_t disconnected = 0;
  bool gave_up = false;  // idle timeout with no on_idle probe
};

/// One worker, one WaitSet, N channels: serves every channel's MPSC server
/// endpoint through a single aggregate wait, replying on the per-client
/// reply endpoints, until `expected_disconnects` clients have left. This is
/// the fan-in architecture the ROADMAP's readiness-plane item asks for —
/// channel count is bounded by the waitset, not by threads.
FaninResult run_waitset_fanin_server(NativePlatform& plat,
                                     const std::vector<ShmChannel*>& channels,
                                     std::uint32_t expected_disconnects,
                                     const FaninOptions& opts = {});

}  // namespace ulipc
