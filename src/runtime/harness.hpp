// Fork-based benchmark harness: the paper's measurement rig on real
// processes.
//
// The parent builds the shared channel, forks one server and n client
// processes (optionally pinning every process to one core to reproduce the
// uniprocessor setting), the clients connect / barrier / barrage / and
// disconnect, and every process writes its report (throughput window,
// protocol counters, getrusage context switches) into shared memory for the
// parent to aggregate.
#pragma once

#include <cstdint>

#include "protocols/protocol_set.hpp"
#include "runtime/native_platform.hpp"
#include "runtime/shm_channel.hpp"

namespace ulipc {

struct NativeRunConfig {
  ProtocolKind protocol = ProtocolKind::kBsls;
  SemKind sem = SemKind::kFutex;
  std::uint32_t clients = 1;
  std::uint64_t messages_per_client = 20'000;
  std::uint32_t max_spin = 20;           // BSLS only
  std::uint32_t queue_capacity = 64;
  bool pin_single_cpu = false;           // uniprocessor emulation
  bool multiprocessor_waits = false;     // busy_wait: delay loop vs yield
  double server_work_us = 0.0;
  std::int64_t full_sleep_ns = 1'000'000'000;
};

struct NativeRunResult {
  ServerResult server;
  double throughput_msgs_per_ms = 0.0;
  std::uint64_t verified_replies = 0;    // must equal clients * messages
  ProtocolCounters server_counters;
  ProtocolCounters client_counters_total;
  CtxSwitches server_ctx;
  CtxSwitches client_ctx_total;
  double wall_ms = 0.0;                  // parent-observed wall time
  bool all_children_ok = false;
};

/// Runs one full experiment; blocks until every child exits.
NativeRunResult run_native_experiment(const NativeRunConfig& cfg);

}  // namespace ulipc
