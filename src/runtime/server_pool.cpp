#include "runtime/server_pool.hpp"

namespace ulipc {

double ServerPoolResult::throughput_msgs_per_ms() const noexcept {
  const std::int64_t window = last_disconnect_ns - first_request_ns;
  if (window <= 0) return 0.0;
  return static_cast<double>(echo_messages) /
         (static_cast<double>(window) / 1e6);
}

ServerPoolResult aggregate_pool_results(
    std::vector<PoolWorkerResult> workers) {
  ServerPoolResult r;
  for (const PoolWorkerResult& w : workers) {
    r.echo_messages += w.server.echo_messages;
    r.control_messages += w.server.control_messages;
    r.steal_passes += w.steal_passes;
    r.stolen_messages += w.stolen_messages;
    r.migrated_messages += w.migrated_messages;
    r.crashed_workers += w.reaped_workers;
    r.crashed_clients += w.reaped_clients;
    // The pool's throughput window spans the earliest first request to the
    // latest departure seen by any worker (the paper's measurement basis,
    // per worker and then widened).
    if (w.server.first_request_ns != 0 &&
        (r.first_request_ns == 0 ||
         w.server.first_request_ns < r.first_request_ns)) {
      r.first_request_ns = w.server.first_request_ns;
    }
    r.last_disconnect_ns =
        std::max(r.last_disconnect_ns, w.server.last_disconnect_ns);
  }
  r.workers = std::move(workers);
  return r;
}

}  // namespace ulipc
