// Counter-rate computation across ulipc-stat --watch refreshes.
//
// A rate is a delta between two snapshots of a monotonically increasing
// counter — except the counters are NOT monotone across a slot's lifetime:
// MetricSlot::reset_series() (and a new process re-bind()ing the slot)
// bumps the slot generation and restarts the counters from zero. A naive
// delta across that boundary shows up as a huge negative (or, unsigned, a
// ~2^64 positive) spike in the watch display. The tracker therefore keys
// every baseline by (slot, generation) and refuses to produce a rate for
// any interval it cannot prove clean: first sight of a slot, a generation
// change, a counter that moved backwards (a racy re-bind that kept the
// generation), or a non-advancing clock all just re-baseline and report
// the sample as invalid for one refresh.
#pragma once

#include <cstdint>
#include <vector>

namespace ulipc::obs {

struct RateSample {
  bool valid = false;  // false: re-baselined, no trustworthy interval yet
  double msgs_per_s = 0.0;
  double wakeups_per_s = 0.0;
};

class RateTracker {
 public:
  /// Feeds one slot snapshot; returns the rates over the interval since
  /// the previous clean snapshot of the same (slot, generation), or an
  /// invalid sample when the interval spans a reset/re-bind.
  RateSample update(std::uint32_t slot, std::uint32_t generation,
                    std::uint64_t msgs, std::uint64_t wakeups,
                    std::int64_t now_ns) {
    if (slot >= prev_.size()) prev_.resize(slot + 1);
    Baseline& b = prev_[slot];
    RateSample out;
    const bool clean = b.seen && b.generation == generation &&
                       msgs >= b.msgs && wakeups >= b.wakeups &&
                       now_ns > b.t_ns;
    if (clean) {
      const double dt_s = static_cast<double>(now_ns - b.t_ns) / 1e9;
      out.valid = true;
      out.msgs_per_s = static_cast<double>(msgs - b.msgs) / dt_s;
      out.wakeups_per_s = static_cast<double>(wakeups - b.wakeups) / dt_s;
    }
    b.seen = true;
    b.generation = generation;
    b.msgs = msgs;
    b.wakeups = wakeups;
    b.t_ns = now_ns;
    return out;
  }

 private:
  struct Baseline {
    bool seen = false;
    std::uint32_t generation = 0;
    std::uint64_t msgs = 0;
    std::uint64_t wakeups = 0;
    std::int64_t t_ns = 0;
  };
  std::vector<Baseline> prev_;
};

}  // namespace ulipc::obs
