// Per-process lock-free binary trace ring.
//
// Fixed 32-byte records (tsc timestamp, event id, slot id, two args) in a
// power-of-two ring inside the shared mapping. One writer per ring (the
// process/thread bound to the matching MetricSlot); any number of readers,
// in-process or attached from outside. The writer never blocks and never
// syscalls: payload stores are relaxed, then the record's sequence number
// and the ring head are released. A reader validates each record's seqno
// after copying — a record overwritten mid-copy has a seqno from a later
// lap and is discarded, so torn reads are detected, not prevented.
//
// Rings are ALWAYS laid out in the shm block (the cross-binary layout must
// not depend on compile flags); only EMISSION is compiled out when
// ULIPC_TRACE=OFF, which makes the hot-path cost exactly zero there.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/clock.hpp"

namespace ulipc::obs {

#if defined(ULIPC_TRACE_ENABLED)
inline constexpr bool kTraceCompiledIn = true;
#else
inline constexpr bool kTraceCompiledIn = false;
#endif

/// Protocol-edge event ids (the `arg` meaning is per-event).
enum class TraceEvent : std::uint16_t {
  kNone = 0,
  kEnqueue,        // arg_a = endpoint id
  kDequeue,        // arg_a = endpoint id
  kSleepBegin,     // arg_a = endpoint id            (step C.4 entry)
  kSleepEnd,       // arg_a = endpoint id, arg_b = 1 iff timed out
  kWakeupSent,     // arg_a = endpoint id            (producer paid the V)
  kSpinExhausted,  // arg_a = endpoint id, arg_b = iterations spun
  kBatchFlush,     // arg_a = endpoint id, arg_b = messages in the chunk
  kRecovery,       // arg_a = client seat, arg_b = nodes + messages reclaimed

  // Span plane (obs/span.hpp): causal phase edges of one traced request.
  // For all of these arg_a = endpoint id and arg_b = the 64-bit span id;
  // the record's own tsc IS the phase stamp. A full scalar round trip
  // emits, in causal order: kSpanSend (client) -> kSpanWakeIssue (client)
  // -> kSpanWakeDeliver (server) -> kSpanDequeue (server) ->
  // kSpanReplyEnqueue (server) -> kSpanWakeIssue (server, the reply wake)
  // -> kSpanWakeDeliver (client) -> kSpanReplyRecv (client). The wake pair
  // can be absent on either leg when the receiver never slept.
  kSpanSend,          // send-enqueue of a fresh traced request
  kSpanWakeIssue,     // wake paid (sem V) for the traced message just sent
  kSpanWakeDeliver,   // sleeper's sem_p returned for that wake
  kSpanDequeue,       // server dequeued the traced request
  kSpanReplyEnqueue,  // service done; reply enqueued for the same span
  kSpanReplyRecv,     // client dequeued the traced reply (span terminal)
};

constexpr const char* trace_event_name(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kNone: return "none";
    case TraceEvent::kEnqueue: return "enqueue";
    case TraceEvent::kDequeue: return "dequeue";
    case TraceEvent::kSleepBegin: return "sleep-begin";
    case TraceEvent::kSleepEnd: return "sleep-end";
    case TraceEvent::kWakeupSent: return "wakeup-sent";
    case TraceEvent::kSpinExhausted: return "spin-exhausted";
    case TraceEvent::kBatchFlush: return "batch-flush";
    case TraceEvent::kRecovery: return "recovery";
    case TraceEvent::kSpanSend: return "span-send";
    case TraceEvent::kSpanWakeIssue: return "span-wake-issue";
    case TraceEvent::kSpanWakeDeliver: return "span-wake-deliver";
    case TraceEvent::kSpanDequeue: return "span-dequeue";
    case TraceEvent::kSpanReplyEnqueue: return "span-reply-enqueue";
    case TraceEvent::kSpanReplyRecv: return "span-reply-recv";
  }
  return "?";
}

/// One ring record. All fields atomic so cross-process readers copy them
/// without UB; `seqno` is 1-based (0 = never written) and doubles as the
/// torn-read detector.
struct TraceRecord {
  std::atomic<std::uint64_t> tsc{0};
  std::atomic<std::uint64_t> seqno{0};
  std::atomic<std::uint32_t> arg_a{0};
  std::atomic<std::uint16_t> event{0};
  std::atomic<std::uint16_t> slot{0};
  std::atomic<std::uint64_t> arg_b{0};
};
static_assert(sizeof(TraceRecord) == 32, "trace records are fixed 32-byte");

/// Plain-value copy of a validated record.
struct TraceRecordView {
  std::uint64_t tsc = 0;
  std::uint64_t seqno = 0;
  TraceEvent event = TraceEvent::kNone;
  std::uint16_t slot = 0;
  std::uint32_t arg_a = 0;
  std::uint64_t arg_b = 0;
};

/// The ring header; records follow immediately (one contiguous blob, laid
/// out by ObsHeader). `capacity` is a power of two fixed at creation.
struct alignas(64) TraceRing {
  std::uint64_t capacity = 0;
  std::atomic<std::uint64_t> head{0};  // total records ever emitted

  static constexpr std::size_t bytes_for(std::uint32_t capacity) noexcept {
    return sizeof(TraceRing) + capacity * sizeof(TraceRecord);
  }

  /// Formats a blob of bytes_for(capacity) bytes in place.
  static TraceRing* format(void* blob, std::uint32_t capacity) noexcept {
    auto* r = new (blob) TraceRing();
    r->capacity = capacity;
    TraceRecord* recs = r->records();
    for (std::uint32_t i = 0; i < capacity; ++i) new (&recs[i]) TraceRecord();
    return r;
  }

  [[nodiscard]] TraceRecord* records() noexcept {
    return reinterpret_cast<TraceRecord*>(this + 1);
  }
  [[nodiscard]] const TraceRecord* records() const noexcept {
    return reinterpret_cast<const TraceRecord*>(this + 1);
  }

  /// Writer side (single writer; or serialized by an external lock, whose
  /// acquire/release ordering then covers the relaxed head load). The
  /// per-record protocol is a tiny seqlock: seqno drops to 0 before the
  /// payload is overwritten and becomes i+1 only after, so a reader that
  /// sees the same valid seqno on both sides of its copy knows the payload
  /// was stable in between.
  void emit(TraceEvent ev, std::uint16_t slot_id, std::uint32_t a = 0,
            std::uint64_t b = 0) noexcept {
    const std::uint64_t i = head.load(std::memory_order_relaxed);
    TraceRecord& r = records()[i & (capacity - 1)];
    r.seqno.store(0, std::memory_order_release);  // invalidate old lap
    r.tsc.store(TscClock::now(), std::memory_order_relaxed);
    r.event.store(static_cast<std::uint16_t>(ev), std::memory_order_relaxed);
    r.slot.store(slot_id, std::memory_order_relaxed);
    r.arg_a.store(a, std::memory_order_relaxed);
    r.arg_b.store(b, std::memory_order_relaxed);
    r.seqno.store(i + 1, std::memory_order_release);
    head.store(i + 1, std::memory_order_release);
  }

  /// How many records this ring has overwritten (lost to wrap) so far.
  /// Derived, not stored: `head` counts every record ever emitted and the
  /// ring only retains the last `capacity` of them, so anything beyond
  /// capacity has been silently replaced by a later lap.
  [[nodiscard]] std::uint64_t records_dropped() const noexcept {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    return h > capacity ? h - capacity : 0;
  }

  /// Reader side: copies every still-valid record, oldest first. A record
  /// is valid iff its seqno names exactly the lap that owns its position
  /// both before and after the payload copy — an overwrite in progress (or
  /// completed) shows seqno 0 / a later lap and the record is discarded.
  [[nodiscard]] std::vector<TraceRecordView> read_all() const {
    std::vector<TraceRecordView> out;
    const std::uint64_t h = head.load(std::memory_order_acquire);
    if (h == 0) return out;
    const std::uint64_t first = h > capacity ? h - capacity : 0;
    out.reserve(static_cast<std::size_t>(h - first));
    for (std::uint64_t s = first; s < h; ++s) {
      const TraceRecord& r = records()[s & (capacity - 1)];
      TraceRecordView v;
      v.seqno = r.seqno.load(std::memory_order_acquire);
      if (v.seqno != s + 1) continue;  // overtaken by a later lap (or unborn)
      v.tsc = r.tsc.load(std::memory_order_relaxed);
      v.event =
          static_cast<TraceEvent>(r.event.load(std::memory_order_relaxed));
      v.slot = r.slot.load(std::memory_order_relaxed);
      v.arg_a = r.arg_a.load(std::memory_order_relaxed);
      v.arg_b = r.arg_b.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (r.seqno.load(std::memory_order_relaxed) != s + 1) continue;
      out.push_back(v);
    }
    return out;
  }
};

static_assert(sizeof(TraceRing) == 64,
              "ring header must stay layout-compatible across binaries");

}  // namespace ulipc::obs
