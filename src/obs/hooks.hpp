// Observability hook dispatch for the protocol templates.
//
// Protocols call these free functions at their edges (enqueue, dequeue,
// sleep, wake, spin-exhausted, batch flush). Platforms that implement the
// matching obs_* methods (NativePlatform) get metrics + trace emission;
// platforms that don't (the deterministic simulator) compile every hook to
// nothing — detected with `if constexpr (requires ...)`, so this header has
// no dependency on the metrics/trace machinery itself.
#pragma once

#include <cstdint>

namespace ulipc::obs {

/// Producer paid the V() that wakes this endpoint's consumer.
template <typename P, typename Ep>
inline void wakeup_sent(P& p, Ep& ep) noexcept {
  if constexpr (requires { p.obs_wakeup_sent(ep); }) p.obs_wakeup_sent(ep);
}

/// A message (or the head of a burst) landed on the endpoint's queue.
template <typename P, typename Ep>
inline void enqueued(P& p, Ep& ep) noexcept {
  if constexpr (requires { p.obs_enqueue(ep); }) p.obs_enqueue(ep);
}

/// A message (or the head of a burst) was taken off the endpoint's queue.
template <typename P, typename Ep>
inline void dequeued(P& p, Ep& ep) noexcept {
  if constexpr (requires { p.obs_dequeue(ep); }) p.obs_dequeue(ep);
}

/// Consumer is entering the C.4 sleep. Returns the platform timestamp the
/// matching sleep_end() call needs (0 on platforms without hooks).
template <typename P, typename Ep>
inline std::int64_t sleep_begin(P& p, Ep& ep) noexcept {
  if constexpr (requires { p.obs_sleep_begin(ep); }) {
    return p.obs_sleep_begin(ep);
  } else {
    return 0;
  }
}

/// Consumer came back from the C.4 sleep (woken or timed out).
template <typename P, typename Ep>
inline void sleep_end(P& p, Ep& ep, std::int64_t t0, bool timed_out) noexcept {
  if constexpr (requires { p.obs_sleep_end(ep, t0, timed_out); }) {
    p.obs_sleep_end(ep, t0, timed_out);
  }
}

/// A batch enqueue pass moved `n` messages in one flush.
template <typename P, typename Ep>
inline void batch_flush(P& p, Ep& ep, std::uint32_t n) noexcept {
  if constexpr (requires { p.obs_batch_flush(ep, n); }) {
    p.obs_batch_flush(ep, n);
  }
}

/// A bounded-spin pass ran `iters` iterations; `exhausted` iff it gave up
/// with the queue still empty (the paper's fall-through-to-blocking case).
template <typename P, typename Ep>
inline void spin(P& p, Ep& ep, std::uint32_t iters, bool exhausted) noexcept {
  if constexpr (requires { p.obs_spin(ep, iters, exhausted); }) {
    p.obs_spin(ep, iters, exhausted);
  }
}

/// Timestamp for a round-trip measurement — but only on platforms that will
/// actually record it, so un-instrumented builds pay no clock reads. The
/// platform picks the cheapest clock it has (rdtsc on NativePlatform): this
/// pair sits inside the latency being measured, so its own cost is the
/// instrument distorting the instrumented.
template <typename P>
inline std::int64_t round_trip_begin(P& p) noexcept {
  if constexpr (requires { p.obs_rt_begin(); }) {
    return p.obs_rt_begin();
  } else {
    return 0;
  }
}

/// Records `count` round trips begun at `t0`: each is credited the
/// per-message share, weighted so percentiles stay per-message.
template <typename P>
inline void round_trip_end(P& p, std::int64_t t0,
                           std::uint64_t count = 1) noexcept {
  if constexpr (requires { p.obs_rt_end(t0, count); }) {
    p.obs_rt_end(t0, count);
  }
}

/// A payload buffer was loaned. Returns the loan timestamp the matching
/// loan_released() call wants (-1 when this loan's timing is not sampled,
/// 0 on platforms without hooks — counters stay exact either way).
template <typename P>
inline std::int64_t loan_made(P& p) noexcept {
  if constexpr (requires { p.obs_loan_made(); }) {
    return p.obs_loan_made();
  } else {
    if constexpr (requires { ++p.counters().loans; }) ++p.counters().loans;
    return 0;
  }
}

/// The loan begun at `t0` was released (by either side of the baton).
template <typename P>
inline void loan_released(P& p, std::int64_t t0) noexcept {
  if constexpr (requires { p.obs_loan_released(t0); }) {
    p.obs_loan_released(t0);
  } else {
    if constexpr (requires { ++p.counters().loan_releases; }) {
      ++p.counters().loan_releases;
    }
  }
}

}  // namespace ulipc::obs
